package dynaddr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"

	"dynaddr"
)

// Example demonstrates the library's three-call workflow: generate a
// synthetic RIPE-Atlas-shaped world, run the paper's analysis pipeline,
// and query the report.
func Example() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 20160314
	cfg.Scale = 0.2

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})

	// Ground truth says DTAG (AS3320) renumbers daily; the pipeline
	// must find a Table 5 row saying exactly that.
	for _, row := range report.Table5 {
		if row.ASN == 3320 && row.D == 24 {
			fmt.Println("DTAG renumbers every 24 hours")
		}
	}
	// Output: DTAG renumbers every 24 hours
}

// ExampleLiveFromBatch demonstrates the streaming analysis engine:
// records flow into a live ingester one at a time, and the paper's
// answers are available at any moment — byte-identical to what the
// batch pipeline concludes from the same records.
func ExampleLiveFromBatch() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 20160314
	cfg.Scale = 0.2

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ing := dynaddr.NewIngester(dynaddr.StreamConfig{
		Shards:   4,
		Pfx2AS:   world.Dataset.Pfx2AS,
		Analysis: true,
	})
	defer ing.Close()
	if err := dynaddr.ReplayDataset(world.Dataset, ing); err != nil {
		log.Fatal(err)
	}

	live, err := ing.Analysis()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range live.Table5 {
		if row.ASN == 3320 && row.D == 24 {
			fmt.Println("DTAG renumbers every 24 hours — seen live")
		}
	}

	// The same answer, computed in batch from the finished dataset.
	ref := dynaddr.LiveFromBatch(world.Dataset, dynaddr.LiveOptions{})
	a, _ := json.Marshal(live)
	b, _ := json.Marshal(ref)
	fmt.Println("streaming == batch:", bytes.Equal(a, b))
	// Output:
	// DTAG renumbers every 24 hours — seen live
	// streaming == batch: true
}
