package dynaddr_test

import (
	"fmt"
	"log"

	"dynaddr"
)

// Example demonstrates the library's three-call workflow: generate a
// synthetic RIPE-Atlas-shaped world, run the paper's analysis pipeline,
// and query the report.
func Example() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 20160314
	cfg.Scale = 0.2

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})

	// Ground truth says DTAG (AS3320) renumbers daily; the pipeline
	// must find a Table 5 row saying exactly that.
	for _, row := range report.Table5 {
		if row.ASN == 3320 && row.D == 24 {
			fmt.Println("DTAG renumbers every 24 hours")
		}
	}
	// Output: DTAG renumbers every 24 hours
}
