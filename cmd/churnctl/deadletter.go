package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/stream"
)

// deadletterMain implements churnctl -deadletter: inspect and drain the
// ingest tier's per-shard quarantine logs.
//
//	churnctl -deadletter status -wal-dir DIR     # offline: read the logs
//	churnctl -deadletter status -url URL         # online: GET /api/v1/live/deadletter
//	churnctl -deadletter list -wal-dir DIR       # every entry, one JSON line each
//	churnctl -deadletter drain -wal-dir DIR -url URL
//
// drain replays every replayable entry (records quarantined after
// apply-side rejection, preserved in their canonical encoding) into the
// server at -url through the ordinary producer path, then truncates the
// quarantine logs — including entries that were never replayable
// (undecodable payloads kept for inspection), which are reported and
// dropped. Offline operations read the WAL directory directly: run them
// against a stopped atlasd.
func deadletterMain(op, walDir, url string) {
	switch op {
	case "status":
		deadletterStatus(walDir, url)
	case "list":
		if walDir == "" {
			fatal(fmt.Errorf("-deadletter list requires -wal-dir"))
		}
		err := stream.ReadDeadLetters(walDir, func(shard int, seq uint64, e stream.DeadLetterEntry) error {
			line, err := json.Marshal(struct {
				Shard int    `json:"shard"`
				Seq   uint64 `json:"seq"`
				stream.DeadLetterEntry
			}{shard, seq, e})
			if err != nil {
				return err
			}
			fmt.Println(string(line))
			return nil
		})
		if err != nil {
			fatal(err)
		}
	case "drain":
		if walDir == "" || url == "" {
			fatal(fmt.Errorf("-deadletter drain requires both -wal-dir and -url"))
		}
		deadletterDrain(walDir, url)
	default:
		fatal(fmt.Errorf("unknown -deadletter operation %q (want status, list, or drain)", op))
	}
}

func deadletterStatus(walDir, url string) {
	switch {
	case url != "":
		resp, err := http.Get(url + "/api/v1/live/deadletter")
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET /api/v1/live/deadletter: %s", resp.Status))
		}
		var st stream.DeadLetterStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			fatal(err)
		}
		printDeadLetterStatus(st.Total, st.ByReason)
		for _, s := range st.Samples {
			fmt.Printf("  recent: shard %d %s/%s probe %d %s\n", s.Shard, s.Kind, s.Reason, s.Probe, s.Detail)
		}
	case walDir != "":
		total := int64(0)
		byReason := map[string]int64{}
		err := stream.ReadDeadLetters(walDir, func(shard int, seq uint64, e stream.DeadLetterEntry) error {
			total++
			byReason[e.Reason]++
			return nil
		})
		if err != nil {
			fatal(err)
		}
		printDeadLetterStatus(total, byReason)
	default:
		fatal(fmt.Errorf("-deadletter status requires -wal-dir or -url"))
	}
}

func printDeadLetterStatus(total int64, byReason map[string]int64) {
	fmt.Printf("dead letters: %d\n", total)
	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Printf("  %-14s %d\n", r, byReason[r])
	}
}

func deadletterDrain(walDir, url string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	producer := atlasapi.NewStreamProducer(ctx, url, atlasapi.WithCodec(atlasapi.CodecBinary))
	var replayed, skipped int
	err := stream.ReadDeadLetters(walDir, func(shard int, seq uint64, e stream.DeadLetterEntry) error {
		if !e.Replayable {
			skipped++
			return nil
		}
		if err := e.Replay(producer); err != nil {
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		fatal(err)
	}
	// The flush must succeed before the logs are truncated: a shedding or
	// unreachable server aborts the drain with the quarantine intact.
	// Re-running after a partial delivery is safe — the server's apply
	// path drops already-applied records as stale duplicates.
	if err := producer.Flush(); err != nil {
		fatal(err)
	}
	if err := stream.TruncateDeadLetters(walDir); err != nil {
		fatal(err)
	}
	fmt.Printf("churnctl: drained dead letters: %d replayed to %s, %d unreplayable dropped\n", replayed, url, skipped)
	if skipped > 0 {
		fmt.Fprintln(os.Stderr, "churnctl: note: unreplayable entries are undecodable payloads; use -deadletter list before draining to preserve them")
	}
}
