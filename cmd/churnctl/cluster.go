package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"dynaddr/internal/cluster"
)

// clusterMain implements churnctl -cluster: operator visibility into a
// multi-node atlasd cluster through its coordinator.
//
//	churnctl -cluster status -url http://coordinator:8042
//
// status prints one row per peer: node ID, state (ready, starting,
// degraded, down — from the peer's /readyz as the coordinator sees it),
// the partitions it owns, its stream version, and its URL.
func clusterMain(op, url string) {
	if url == "" {
		fatal(fmt.Errorf("-cluster %s requires -url (the coordinator)", op))
	}
	switch op {
	case "status":
		clusterStatus(url)
	default:
		fatal(fmt.Errorf("unknown -cluster operation %q (want status)", op))
	}
}

func clusterStatus(url string) {
	resp, err := http.Get(strings.TrimSuffix(url, "/") + "/api/v1/cluster/status")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET /api/v1/cluster/status: %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var st cluster.StatusReply
	if err := json.Unmarshal(body, &st); err != nil {
		fatal(fmt.Errorf("bad status body: %w", err))
	}

	fmt.Printf("cluster: %d partitions, %d peers", st.TotalPartitions, len(st.Peers))
	if st.Rebalancing {
		fmt.Print(", REBALANCING (queries shed until it completes)")
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "PEER\tSTATE\tPARTITIONS\tVERSION\tURL")
	down := 0
	for _, p := range st.Peers {
		if !p.Ready {
			down++
		}
		parts := make([]string, len(p.Partitions))
		for i, pt := range p.Partitions {
			parts[i] = fmt.Sprint(pt)
		}
		pl := strings.Join(parts, ",")
		if pl == "" {
			pl = "-"
		}
		state := p.State
		if p.Error != "" && p.State != "ready" {
			state += " (" + p.Error + ")"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\tgen=%d seq=%d\t%s\n",
			p.ID, state, pl, p.Version.Generation, p.Version.Seq, p.URL)
	}
	w.Flush()
	if down > 0 {
		os.Exit(1)
	}
}
