// Command churnctl runs the dynamic-address analysis pipeline over a
// dataset directory (written by cmd/atlasgen) and prints the requested
// table or figure from the paper.
//
// Usage:
//
//	churnctl -data DIR [-parallel N] [-stages LIST] [table1|table2|table5|table6|table7|fig1..fig9|linktype|admin|churn|metrics|all]
//
// With no artefact argument, churnctl prints a short summary. The
// analysis runs on the staged parallel engine; -parallel bounds its
// worker pool (default GOMAXPROCS) and -stages restricts the run to a
// comma-separated stage subset plus dependencies (default all).
//
// When scraping with -url, the -retry-* flags tune per-fetch retries
// and their jittered exponential backoff, and -allow-failures sets the
// per-scrape error budget: that many probes may fail permanently and be
// skipped (yielding a partial dataset, reported on stderr) before the
// scrape aborts. SIGINT/SIGTERM cancel a scrape promptly.
//
// With -live-analysis (requires -url), churnctl instead queries a live
// atlasd's streaming analysis endpoint and renders the paper answers
// the ingester maintains incrementally — no dataset is scraped and no
// local analysis runs:
//
//	churnctl -url http://host:8042 -live-analysis [table5|table6|table7|fig6|fig7|fig8|churn|summary|all]
//
// With -deadletter, churnctl inspects and drains the ingest tier's
// quarantine logs instead of running any analysis:
//
//	churnctl -deadletter status -url http://host:8042   # live counts
//	churnctl -deadletter status -wal-dir DIR            # offline counts
//	churnctl -deadletter list -wal-dir DIR              # entries as JSON lines
//	churnctl -deadletter drain -wal-dir DIR -url URL    # replay + truncate
//
// With -cluster, churnctl talks to a multi-node cluster's coordinator:
//
//	churnctl -cluster status -url http://coordinator:8042
//
// prints one row per peer — node ID, readiness state, owned
// partitions, stream version — and exits nonzero if any peer is not
// ready.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"dynaddr"
	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/core"
	"dynaddr/internal/tables"
)

func main() {
	data := flag.String("data", "", "dataset directory")
	url := flag.String("url", "", "scrape an atlasd server instead of loading a directory")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	svgDir := flag.String("svg", "", "also write every figure as SVG into this directory")
	parallel := flag.Int("parallel", 0, "analysis worker-pool size (0 = GOMAXPROCS)")
	stagesFlag := flag.String("stages", "", "comma-separated analysis stages to run (empty or \"all\" = every stage)")
	retryMax := flag.Int("retry-max", 0, "scrape: retries per failed fetch (0 = default 2)")
	retryBase := flag.Duration("retry-base", 0, "scrape: first backoff delay (0 = default 200ms)")
	retryCap := flag.Duration("retry-cap", 0, "scrape: backoff delay ceiling (0 = default 5s)")
	allowFailures := flag.Int("allow-failures", 0, "scrape: probes allowed to fail before aborting (-1 = unlimited)")
	liveAnalysis := flag.Bool("live-analysis", false, "query a live atlasd's streaming analysis endpoint (requires -url); no dataset is scraped")
	deadletter := flag.String("deadletter", "", "dead-letter operation: status (-wal-dir or -url), list (-wal-dir), or drain (-wal-dir and -url)")
	walDir := flag.String("wal-dir", "", "atlasd WAL directory for offline -deadletter operations (stop the server first)")
	clusterOp := flag.String("cluster", "", "cluster operation against a coordinator at -url: status (per-peer ownership, version, readiness)")
	flag.Parse()

	if *deadletter != "" {
		deadletterMain(*deadletter, *walDir, *url)
		return
	}

	if *clusterOp != "" {
		clusterMain(*clusterOp, *url)
		return
	}

	if *liveAnalysis {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "churnctl: -live-analysis requires -url")
			os.Exit(2)
		}
		what := "summary"
		if flag.NArg() > 0 {
			what = flag.Arg(0)
		}
		liveAnalysisMain(*url, *csv, what)
		return
	}

	stages, err := dynaddr.ParseStages(*stagesFlag)
	if err != nil {
		fatal(err)
	}

	var ds *dynaddr.Dataset
	switch {
	case *data != "" && *url != "":
		fmt.Fprintln(os.Stderr, "churnctl: -data and -url are mutually exclusive")
		os.Exit(2)
	case *data != "":
		ds, err = dynaddr.LoadDataset(*data)
	case *url != "":
		// Ctrl-C aborts the scrape promptly, mid-request or mid-backoff.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		client := &atlasapi.Client{
			BaseURL:       *url,
			Retries:       *retryMax,
			Backoff:       backoff.Policy{Base: *retryBase, Max: *retryCap},
			AllowFailures: *allowFailures,
		}
		client.Months, err = client.FetchMonthsContext(ctx)
		if err == nil {
			var srep *atlasapi.ScrapeReport
			ds, srep, err = client.ScrapeAllContext(ctx)
			// The report goes to stderr — stdout stays artefact-only —
			// and only when it has something to say, so clean scrapes
			// remain byte-comparable with -data runs.
			if srep != nil && (srep.Partial() || err != nil) {
				fmt.Fprintln(os.Stderr, "churnctl:", srep)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "churnctl: one of -data or -url is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	rep, err := dynaddr.NewAnalyzer(
		dynaddr.WithParallelism(*parallel),
		dynaddr.WithStages(stages...),
	).Analyze(ds)
	if err != nil {
		fatal(err)
	}
	names := dynaddr.ProfileNames(dynaddr.PaperProfiles())

	if *svgDir != "" {
		written, err := core.WriteFigureSVGs(rep, names, *svgDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("churnctl: wrote %d figures to %s\n", len(written), *svgDir)
	}

	what := "summary"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	emit := func(t *tables.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	artefacts := map[string]func(){
		"table1":    func() { emit(renderTable1(ds, rep)) },
		"table2":    func() { emit(rep.RenderTable2()) },
		"table5":    func() { emit(rep.RenderTable5(names)) },
		"table6":    func() { emit(rep.RenderTable6(names)) },
		"table7":    func() { emit(rep.RenderTable7(names)) },
		"fig1":      func() { emit(rep.RenderFigure1()) },
		"fig2":      func() { emit(rep.RenderFigure2(names)) },
		"fig3":      func() { emit(rep.RenderFigure3(names)) },
		"fig4":      func() { emit(rep.RenderHourHists(names)) },
		"fig5":      func() { emit(rep.RenderHourHists(names)) },
		"fig6":      func() { emit(rep.RenderFigure6()) },
		"fig7":      func() { emit(rep.RenderFigure7(names)) },
		"fig8":      func() { emit(rep.RenderFigure8(names)) },
		"fig9":      func() { emit(rep.RenderFigure9(names)) },
		"linktype":  func() { emit(rep.RenderLinkTypes(names)) },
		"admin":     func() { emit(rep.RenderAdminEvents(names)) },
		"churn":     func() { emit(rep.RenderChurnAndV6()) },
		"country":   func() { emit(rep.RenderByCountry(3)) },
		"blacklist": func() { emit(core.RenderBlacklist(core.AdviseBlacklist(rep, 5), names)) },
		"lease":     func() { emit(core.RenderLeaseEstimates(core.EstimateLeases(rep.Outage, rep.Filter), names)) },
		"metrics": func() {
			// The sequential engine leaves Report.Metrics nil.
			if rep.Metrics == nil {
				fmt.Println("no engine metrics recorded (run with -parallel)")
				return
			}
			emit(renderMetrics(rep.Metrics))
		},
	}

	switch what {
	case "probe":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "churnctl: probe needs an ID: churnctl -data DIR probe 1234")
			os.Exit(2)
		}
		id, convErr := strconv.Atoi(flag.Arg(1))
		if convErr != nil {
			fatal(convErr)
		}
		drilldown(ds, rep, names, atlasdata.ProbeID(id))
	case "summary":
		fmt.Printf("dataset: %d probes, %d geo-analyzable, %d AS-analyzable\n",
			len(ds.Probes), len(rep.Filter.GeoProbes), len(rep.Filter.ASProbes))
		fmt.Printf("periodic AS rows: %d; outage AS rows: %d; total changes: %d (%.0f%% cross-BGP)\n",
			len(rep.Table5), len(rep.Table6), rep.Table7All.Changes, rep.Table7All.FracBGP()*100)
	case "all":
		order := []string{"table1", "table2", "table5", "table6", "table7",
			"fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
			"country", "linktype", "admin", "churn", "blacklist", "lease"}
		for _, k := range order {
			artefacts[k]()
		}
	default:
		fn, ok := artefacts[what]
		if !ok {
			var known []string
			for k := range artefacts {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "churnctl: unknown artefact %q; known: %v\n", what, known)
			os.Exit(2)
		}
		fn()
	}
}

// liveAnalysisMain fetches the streaming engine's paper answers from a
// running atlasd (-live with analysis on) and renders them with the
// same table shapes the batch pipeline prints — no dataset is scraped
// and no local analysis runs, so the output reflects exactly what the
// ingester holds at the moment of the query.
func liveAnalysisMain(baseURL string, csv bool, what string) {
	resp, err := http.Get(baseURL + "/api/v1/live/analysis")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fatal(fmt.Errorf("server at %s runs without the live analysis engine (atlasd -live -analysis)", baseURL))
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		fatal(fmt.Errorf("GET /api/v1/live/analysis: %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var res dynaddr.LiveResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		fatal(err)
	}
	names := dynaddr.ProfileNames(dynaddr.PaperProfiles())

	emit := func(t *tables.Table) {
		var err error
		if csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}
	artefacts := map[string]func(){
		"table5": func() { emit(res.RenderTable5(names)) },
		"table6": func() { emit(res.RenderTable6(names)) },
		"table7": func() { emit(res.RenderTable7(names)) },
		"fig6":   func() { emit(res.RenderFigure6()) },
		"fig7":   func() { emit(res.RenderFigure7(names)) },
		"fig8":   func() { emit(res.RenderFigure8(names)) },
		"churn":  func() { emit(res.RenderChurn()) },
	}
	switch what {
	case "summary":
		fmt.Printf("live: %d analyzable probes, %d AS-analyzable\n", res.Probes, res.ASProbes)
		fmt.Printf("periodic AS rows: %d; outage AS rows: %d; total changes: %d (%.0f%% cross-BGP)\n",
			len(res.Table5), len(res.Table6), res.Table7All.Changes, res.Table7All.FracBGP()*100)
	case "all":
		for _, k := range []string{"table5", "table6", "table7", "fig6", "fig7", "fig8", "churn"} {
			artefacts[k]()
		}
	default:
		fn, ok := artefacts[what]
		if !ok {
			var known []string
			for k := range artefacts {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "churnctl: unknown live artefact %q; known: %v (plus summary, all)\n", what, known)
			os.Exit(2)
		}
		fn()
	}
}

// renderTable1 reproduces the paper's Table 1: a sample connection log
// with computed address durations, using the analyzable probe with the
// most 24h-quantised durations (a DTAG-style daily renumberer).
func renderTable1(ds *dynaddr.Dataset, rep *dynaddr.Report) *tables.Table {
	best, bestCount := int64(-1), -1
	for id, view := range rep.Filter.Views {
		count := 0
		for _, d := range core.V4Durations(view.Entries) {
			if core.QuantizeHours(d.Hours()) == 24 {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = int64(id), count
		}
	}
	t := tables.New("Table 1: sample connection log (first five days)",
		"ID", "Start", "End", "IPAddress", "Dur(h)")
	if best < 0 {
		return t
	}
	view := rep.Filter.Views[atlasdata.ProbeID(best)]
	entries := view.Entries
	limit := 10
	for i, e := range entries {
		if i >= limit {
			break
		}
		dur := "NA"
		if i > 0 && i+1 < len(entries) && i+1 < limit {
			if entries[i+1].Addr != e.Addr && entries[i-1].Addr != e.Addr {
				dur = fmt.Sprintf("%.1f", e.End.Sub(e.Start).Hours())
			}
		}
		t.AddRow(fmt.Sprintf("%d", e.Probe), e.Start.String(), e.End.String(), e.Addr.String(), dur)
	}
	return t
}

// drilldown prints one probe's story: metadata, filtering verdict, and
// — when analyzable — its address changes with the outage cause the
// pipeline assigned to each gap, plus the periodicity classification.
func drilldown(ds *dynaddr.Dataset, rep *dynaddr.Report, names core.NameFunc, id atlasdata.ProbeID) {
	meta, ok := ds.Probes[id]
	if !ok {
		fmt.Printf("probe %d: not in dataset\n", id)
		return
	}
	fmt.Printf("probe %d: country=%s version=v%d tags=%v connected=%.1f days\n",
		id, meta.Country, meta.Version, meta.Tags, meta.ConnectedDays)

	var category string
	for _, c := range core.Categories {
		for _, pid := range rep.Filter.ByCategory[c] {
			if pid == id {
				category = c.String()
			}
		}
	}
	fmt.Printf("filtering: %s\n", category)

	view, analyzable := rep.Filter.Views[id]
	if !analyzable {
		fmt.Printf("sessions: %d (not analyzable; no further detail)\n", len(ds.ConnLogs[id]))
		return
	}
	if view.ASN != 0 {
		fmt.Printf("home AS: %s (AS%d)\n", names(uint32(view.ASN)), view.ASN)
	} else {
		fmt.Println("home AS: multiple (cross-AS changes discarded from AS-level analysis)")
	}
	durations := core.V4Durations(view.Entries)
	fmt.Printf("sessions: %d, address changes: %d, bounded durations: %d\n",
		len(view.Entries), len(view.Changes), len(durations))

	if pp, isPeriodic := core.ClassifyPeriodic(durations); isPeriodic {
		fmt.Printf("periodic: yes, d=%.0fh (f=%.2f, MAX<=d=%v, harmonic=%v)\n",
			pp.D, pp.Frac, pp.MaxLeD, pp.Harmonic)
	} else {
		fmt.Println("periodic: no")
	}

	if rep.Outage != nil {
		var nw, pw, no, changed int
		for _, g := range rep.Outage.Gaps[id] {
			switch g.Cause {
			case core.NetworkCause:
				nw++
			case core.PowerCause:
				pw++
			default:
				no++
			}
			if g.Changed {
				changed++
			}
		}
		fmt.Printf("gaps: %d network-outage, %d power-outage, %d no-outage; %d with an address change\n",
			nw, pw, no, changed)
		if st, ok := rep.Outage.Stats[id]; ok {
			if p, has := st.PacNetwork(); has {
				fmt.Printf("P(ac|nw) = %.2f over %d outages\n", p, st.NetworkGaps)
			}
			if p, has := st.PacPower(); has {
				fmt.Printf("P(ac|pw) = %.2f over %d outages\n", p, st.PowerGaps)
			}
		}
	}

	fmt.Println("\nlast 5 address changes:")
	changes := view.Changes
	start := 0
	if len(changes) > 5 {
		start = len(changes) - 5
	}
	for _, ch := range changes[start:] {
		fmt.Printf("  %s  %s -> %s\n", ch.NextStart, ch.From, ch.To)
	}
}

// renderMetrics tabulates the engine's per-stage execution record.
func renderMetrics(m *dynaddr.RunMetrics) *tables.Table {
	t := tables.New(fmt.Sprintf("Engine metrics (%d workers)", m.Parallelism),
		"Stage", "Wall", "Records")
	for _, s := range m.Stages {
		t.AddRow(s.Stage, s.Wall.String(), fmt.Sprintf("%d", s.Records))
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "churnctl:", err)
	os.Exit(1)
}
