// Command wirepack converts records from the batch tier's text/JSON
// wire formats into a framed binary batch for POST
// /api/v2/stream/records (Content-Type application/x-atlas-binary).
// It exists so shell pipelines — CI smoke tests, operators replaying a
// captured v1 payload — can exercise the binary ingest path without a
// Go client:
//
//	wirepack -kind probes   < archive.json    > batch.bin
//	wirepack -kind connlogs -probe 206 < history.txt > batch.bin
//	wirepack -kind kroot    < results.ndjson  > batch.bin
//	wirepack -kind uptime   < results.ndjson  > batch.bin
//
// The output is a plain concatenation of internal/wire frames — the
// same layout as a WAL segment — so batches for different kinds can be
// concatenated and POSTed together.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/wire"
)

func main() {
	kind := flag.String("kind", "", "input format: probes (archive JSON), connlogs (connection-history text), kroot or uptime (NDJSON results)")
	probe := flag.Int("probe", 0, "probe ID the connlogs belong to (required with -kind connlogs)")
	flag.Parse()

	var w wire.BatchWriter
	var err error
	switch *kind {
	case "probes":
		var probes []atlasdata.ProbeMeta
		if probes, err = atlasapi.ParseProbeArchive(os.Stdin); err == nil {
			for _, m := range probes {
				if err = w.Meta(m); err != nil {
					break
				}
			}
		}
	case "connlogs":
		if *probe <= 0 {
			fatal(fmt.Errorf("-kind connlogs requires -probe"))
		}
		var entries []atlasdata.ConnLogEntry
		if entries, err = atlasapi.ParseConnectionHistory(os.Stdin, atlasdata.ProbeID(*probe)); err == nil {
			for _, e := range entries {
				if err = w.ConnLog(e); err != nil {
					break
				}
			}
		}
	case "kroot":
		var rounds []atlasdata.KRootRound
		if rounds, err = atlasapi.ParseKRootResults(os.Stdin); err == nil {
			for _, k := range rounds {
				if err = w.KRoot(k); err != nil {
					break
				}
			}
		}
	case "uptime":
		var recs []atlasdata.UptimeRecord
		if recs, err = atlasapi.ParseUptimeResults(os.Stdin); err == nil {
			for _, u := range recs {
				if err = w.Uptime(u); err != nil {
					break
				}
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "wirepack: -kind must be probes, connlogs, kroot or uptime")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(w.Bytes()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wirepack: %d records, %d bytes\n", w.Records(), w.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wirepack:", err)
	os.Exit(1)
}
