// Command atlasgen generates a synthetic RIPE-Atlas-shaped dataset —
// connection logs, k-root ping rounds, SOS-uptime records, the probe
// archive, and monthly pfx2as snapshots — into a directory that
// cmd/churnctl can analyze.
//
// Usage:
//
//	atlasgen -out DIR [-seed N] [-scale F] [-truth FILE]
//
// The same seed and scale always produce byte-identical datasets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dynaddr"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Uint64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1.0, "probe population scale factor")
	truthPath := flag.String("truth", "", "optional path for the ground-truth journal (JSON)")
	heartbeat := flag.Duration("heartbeat", 0, "k-root heartbeat cadence (0 = config default)")
	wire := flag.Bool("wire", false, "assign addresses via the protocol exchanges (PPPoE/IPCP, DHCP messages) instead of behavioural models")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "atlasgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dynaddr.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	if *heartbeat > 0 {
		cfg.KRootHeartbeat = dynaddr.FromStd(*heartbeat)
	}
	cfg.WireBackends = *wire

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := dynaddr.SaveDataset(world.Dataset, *out); err != nil {
		fatal(err)
	}

	var conns, rounds, ups int
	for _, c := range world.Dataset.ConnLogs {
		conns += len(c)
	}
	for _, r := range world.Dataset.KRoot {
		rounds += len(r)
	}
	for _, u := range world.Dataset.Uptime {
		ups += len(u)
	}
	fmt.Printf("atlasgen: wrote %s: %d probes, %d connections, %d k-root rounds, %d uptime records\n",
		*out, len(world.Dataset.Probes), conns, rounds, ups)

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(world.Truth); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("atlasgen: wrote ground truth to %s\n", *truthPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atlasgen:", err)
	os.Exit(1)
}
