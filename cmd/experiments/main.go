// Command experiments regenerates every table and figure of the paper
// from a freshly generated paper-scale world, and prints a
// paper-vs-measured comparison for each experiment's shape criteria —
// the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-artefacts]
package main

import (
	"flag"
	"fmt"
	"os"

	"dynaddr"
	"dynaddr/internal/core"
	"dynaddr/internal/stats"
)

type check struct {
	id       string
	name     string
	paper    string
	measured string
	pass     bool
}

func main() {
	seed := flag.Uint64("seed", 20160314, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	artefacts := flag.Bool("artefacts", false, "also print every rendered table and figure")
	flag.Parse()

	cfg := dynaddr.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	world, err := dynaddr.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	rep := dynaddr.Analyze(world.Dataset, dynaddr.Options{})
	names := dynaddr.Names(world)

	checks := runChecks(rep)
	fmt.Println("| ID | Check | Paper | Measured | Verdict |")
	fmt.Println("|----|-------|-------|----------|---------|")
	failures := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass {
			verdict = "DIVERGES"
			failures++
		}
		fmt.Printf("| %s | %s | %s | %s | %s |\n", c.id, c.name, c.paper, c.measured, verdict)
	}
	fmt.Printf("\n%d/%d shape checks pass\n", len(checks)-failures, len(checks))

	if *artefacts {
		fmt.Println()
		rep.RenderTable2().Render(os.Stdout)
		fmt.Println()
		rep.RenderTable5(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderTable6(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderTable7(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure1().Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure2(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure3(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderHourHists(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure6().Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure7(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure8(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderFigure9(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderLinkTypes(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderAdminEvents(names).Render(os.Stdout)
		fmt.Println()
		rep.RenderChurnAndV6().Render(os.Stdout)
	}

	if failures > 0 {
		os.Exit(1)
	}
}

func runChecks(rep *dynaddr.Report) []check {
	var out []check
	add := func(id, name, paper, measured string, pass bool) {
		out = append(out, check{id, name, paper, measured, pass})
	}

	// ---- Table 2 ----
	geo, as := len(rep.Filter.GeoProbes), len(rep.Filter.ASProbes)
	add("T2", "filtering yields nested analyzable sets",
		"3,038 geographic > 2,272 AS-level",
		fmt.Sprintf("%d geographic > %d AS-level", geo, as),
		geo > as && as > 0)
	nonEmpty := true
	for _, c := range []core.Category{core.CatNeverChanged, core.CatDualStack,
		core.CatIPv6Only, core.CatTaggedMultihomed, core.CatBehaviouralMultihomed} {
		if rep.Table2[c] == 0 {
			nonEmpty = false
		}
	}
	add("T2", "every filter category populated", "all rows non-zero",
		fmt.Sprintf("never=%d dual=%d v6=%d tagged=%d behavioural=%d",
			rep.Table2[core.CatNeverChanged], rep.Table2[core.CatDualStack],
			rep.Table2[core.CatIPv6Only], rep.Table2[core.CatTaggedMultihomed],
			rep.Table2[core.CatBehaviouralMultihomed]),
		nonEmpty)

	// ---- Table 5 ----
	findRow := func(asn uint32, d float64) (core.ASPeriodicRow, bool) {
		for _, r := range rep.Table5 {
			if r.ASN == asn && r.D == d {
				return r, true
			}
		}
		return core.ASPeriodicRow{}, false
	}
	orange, okO := findRow(3215, 168)
	add("T5", "Orange periodic at one week",
		"d=168h, 111/122 periodic",
		fmt.Sprintf("d=168h, %d/%d periodic", orange.NPeriodic, orange.N),
		okO && float64(orange.NPeriodic) > 0.5*float64(orange.N))
	dtag, okD := findRow(3320, 24)
	add("T5", "DTAG periodic at 24h",
		"d=24h, 51/63 periodic, 96% f>0.5",
		fmt.Sprintf("d=24h, %d/%d periodic, %.0f%% f>0.5", dtag.NPeriodic, dtag.N, dtag.FracOver50*100),
		okD && dtag.FracOver50 > 0.6)
	bt, okB := findRow(2856, 337)
	add("T5", "BT weakly periodic at two weeks",
		"d=337h, 13/67 periodic (partial deployment)",
		fmt.Sprintf("d=337h, %d/%d periodic", bt.NPeriodic, bt.N),
		okB && bt.NPeriodic < bt.N/2)
	noLGI := true
	for _, r := range rep.Table5 {
		if r.ASN == 6830 || r.ASN == 701 {
			noLGI = false
		}
	}
	add("T5", "LGI and Verizon absent (not periodic)", "absent", boolStr(noLGI), noLGI)
	week := rep.Table5All[1]
	day := rep.Table5All[0]
	add("T5", "weekly schedules overrun less than daily",
		"MAX<=d: 94% weekly vs 44% daily",
		fmt.Sprintf("MAX<=d: %.0f%% weekly vs %.0f%% daily", week.FracMaxLeD*100, day.FracMaxLeD*100),
		week.FracMaxLeD >= day.FracMaxLeD)
	add("T5", "harmonics explain most overruns",
		"Harmonic: 98% weekly, 90% daily",
		fmt.Sprintf("Harmonic: %.0f%% weekly, %.0f%% daily", week.FracHarmonic*100, day.FracHarmonic*100),
		week.FracHarmonic > 0.7 && day.FracHarmonic > 0.7)

	// ---- Figure 1 ----
	var eu, na *core.ASCDF
	for i := range rep.Figure1 {
		switch rep.Figure1[i].Label {
		case "EU":
			eu = &rep.Figure1[i]
		case "NA":
			na = &rep.Figure1[i]
		}
	}
	if eu != nil && na != nil {
		euShort := cdfAt(eu.CDF, 200)
		naShort := cdfAt(na.CDF, 200)
		add("F1", "EU day-scale durations vs NA week+-scale",
			"EU mode at 24h (f=0.16); NA majority beyond 50 days",
			fmt.Sprintf("EU mass<=200h %.2f; NA mass<=200h %.2f", euShort, naShort),
			euShort > naShort && naShort < 0.5)
	} else {
		add("F1", "EU and NA present", "both", "missing", false)
	}

	// ---- Figure 2 ----
	members := map[uint32]bool{}
	for _, c := range rep.Figure2 {
		members[c.ASN] = true
	}
	add("F2", "top-AS set holds Orange, DTAG, BT, LGI",
		"Orange, DTAG, BT, LGI, Verizon",
		fmt.Sprintf("%v", keysOf(members)),
		members[3215] && members[3320] && members[2856] && members[6830])
	add("F2", "Orange spends most time at one week",
		"55% of total duration at 168h",
		fmt.Sprintf("%.0f%% at 168h", massAt(rep, 3215, 168)*100),
		massAt(rep, 3215, 168) > 0.35)
	add("F2", "DTAG spends most time at 24h",
		"76% of total duration at 24h",
		fmt.Sprintf("%.0f%% at 24h", massAt(rep, 3320, 24)*100),
		massAt(rep, 3320, 24) > 0.5)

	// ---- Figure 3 ----
	germanDaily := 0
	for _, c := range rep.Figure3 {
		g := groupTTF(rep, c.ASN)
		if g.MassAt(24) > 0.25 {
			germanDaily++
		}
	}
	add("F3", "several German ISPs renumber daily",
		"DTAG 77%, Telefonica 76%/74%, Vodafone 29% at 24h",
		fmt.Sprintf("%d of %d German ASes with f_24 > 0.25", germanDaily, len(rep.Figure3)),
		germanDaily >= 2)
	kabelStable := true
	for _, c := range rep.Figure3 {
		if c.ASN == 31334 || c.ASN == 29562 {
			if g := groupTTF(rep, c.ASN); g.FractionAtMost(336) > 0.5 {
				kabelStable = false
			}
		}
	}
	add("F3", "Kabel ISPs keep addresses beyond two weeks",
		">90% of time in durations over two weeks", boolStr(kabelStable), kabelStable)

	// ---- Figures 4/5 ----
	var dtagHist, orangeHist *core.HourHist
	for i := range rep.HourHists {
		switch rep.HourHists[i].ASN {
		case 3320:
			dtagHist = &rep.HourHists[i]
		case 3215:
			orangeHist = &rep.HourHists[i]
		}
	}
	if dtagHist != nil && orangeHist != nil {
		dn := nightShare(dtagHist)
		on := maxSixHourShare(orangeHist)
		add("F4/F5", "DTAG synchronised at night, Orange free-running",
			"~3/4 of DTAG changes in hours 0-6; Orange even",
			fmt.Sprintf("DTAG night share %.0f%%; Orange max 6h-window %.0f%%", dn*100, on*100),
			dn > 0.55 && on < 0.6)
	} else {
		add("F4/F5", "hour histograms for DTAG and Orange", "both", "missing", false)
	}

	// ---- Figure 6 ----
	add("F6", "firmware pushes detected from reboot spikes",
		"5 pushes in 2015",
		fmt.Sprintf("%d detected at days %v", len(rep.Figure6FirmwareDays), rep.Figure6FirmwareDays),
		len(rep.Figure6FirmwareDays) >= 4 && len(rep.Figure6FirmwareDays) <= 6)

	// ---- Figures 7/8 and Table 6 ----
	orangePac := meanPac(rep, 3215, false)
	lgiPac := meanPac(rep, 6830, false)
	add("F7", "PPP ISPs renumber on network outages, DHCP ISPs do not",
		"half of Orange/DTAG probes at P=1; LGI/Verizon low",
		fmt.Sprintf("mean P(ac|nw): Orange %.2f, LGI %.2f", orangePac, lgiPac),
		orangePac > 0.6 && lgiPac < 0.35)
	orangePw := meanPac(rep, 3215, true)
	lgiPw := meanPac(rep, 6830, true)
	add("F8", "power outages behave like network outages",
		"Orange/DTAG high, LGI/Verizon low",
		fmt.Sprintf("mean P(ac|pw): Orange %.2f, LGI %.2f", orangePw, lgiPw),
		orangePw > 0.5 && lgiPw < 0.4)
	var t6Orange *core.ASOutageRow
	for i := range rep.Table6 {
		if rep.Table6[i].ASN == 3215 {
			t6Orange = &rep.Table6[i]
		}
	}
	if t6Orange != nil {
		add("T6", "Orange's probes renumber on both outage kinds",
			"79% nw>0.8, 77% pw>0.8",
			fmt.Sprintf("%.0f%% nw>0.8, %.0f%% pw>0.8", t6Orange.NwOver80*100, t6Orange.PwOver80*100),
			t6Orange.NwOver80 > 0.5 && t6Orange.PwOver80 > 0.3)
	} else {
		add("T6", "Orange in Table 6", "present", "missing", false)
	}
	european := true
	for _, r := range rep.Table6 {
		if r.ASN == 701 || r.ASN == 7922 {
			european = false
		}
	}
	add("T6", "heavy outage-renumbering is European",
		"all Table 6 ISPs in Europe", boolStr(european), european)

	// ---- Figure 9 ----
	orangeBins := binsFor(rep, 3215)
	lgiBins := binsFor(rep, 6830)
	oShort := shortShare(orangeBins)
	lShort := shortShare(lgiBins)
	lLong := longShare(lgiBins)
	add("F9", "Orange renumbers even sub-5-minute outages",
		"91% of <5m outages renumbered",
		fmt.Sprintf("%.0f%% of sub-hour outages renumbered", oShort*100),
		oShort > 0.6)
	add("F9", "LGI keeps addresses across short outages",
		"<3% of <=1h outages renumbered",
		fmt.Sprintf("%.0f%% of sub-hour outages renumbered", lShort*100),
		lShort < 0.1)
	add("F9", "LGI renumbering grows with outage duration",
		">25% of >=12h outages renumbered",
		fmt.Sprintf("%.0f%% of >=12h outages renumbered", lLong*100),
		lLong > 0.15 && lLong > lShort)

	// ---- Table 7 ----
	all := rep.Table7All
	add("T7", "about half of changes cross BGP prefixes",
		"48.9% of 166,644 changes",
		fmt.Sprintf("%.1f%% of %d changes", all.FracBGP()*100, all.Changes),
		all.FracBGP() > 0.25 && all.FracBGP() < 0.75)
	oFrac := fracOf(rep, 3215)
	dFrac := fracOf(rep, 3320)
	add("T7", "Orange spreads prefixes more than DTAG",
		"68% vs 24%",
		fmt.Sprintf("%.0f%% vs %.0f%%", oFrac*100, dFrac*100),
		oFrac > dFrac)
	add("T7", "a third of changes escape even the enclosing /8",
		"33.5% across /8s, below the 48.9% across BGP prefixes",
		fmt.Sprintf("%.1f%% across /8s, %.1f%% across BGP", all.FracS8()*100, all.FracBGP()*100),
		all.FracS8() > 0.1 && all.FracS8() < all.FracBGP())

	// ---- Extensions (paper §8 future work, built here) ----
	linkOf := func(asn uint32) core.LinkType {
		for _, r := range rep.LinkTypes {
			if r.ASN == asn {
				return r.Type
			}
		}
		return core.LinkUnknown
	}
	add("X1", "link-type inference separates Orange (PPP) from LGI (DHCP)",
		"§5.3: outage response reveals the access technology",
		fmt.Sprintf("Orange=%v LGI=%v", linkOf(3215), linkOf(6830)),
		linkOf(3215) == core.LinkPPP && linkOf(6830) == core.LinkDHCP)
	adminOK := len(rep.AdminEvents) >= 1
	for _, e := range rep.AdminEvents {
		if e.ASN != 200090 {
			adminOK = false
		}
	}
	add("X2", "administrative renumbering detected, no false alarms",
		"paper found one instance in 2015",
		fmt.Sprintf("%d event(s): %+v", len(rep.AdminEvents), rep.AdminEvents),
		adminOK)
	add("X3", "dynamic renumbering drives daily address-set churn",
		"Richter et al.: ~8%/day across the whole IPv4 space",
		fmt.Sprintf("%.0f%%/day over a renumbering-heavy probe population", rep.ChurnMean*100),
		rep.ChurnMean > 0.05 && rep.ChurnMean < 0.95)
	if rep.V6 != nil {
		add("X4", "client IPv6 addresses are mostly ephemeral",
			"Plonka & Berger: >90% ephemeral; RFC 4941 rotates daily",
			fmt.Sprintf("%.0f%% ephemeral, %d rotating probes", rep.V6.EphemeralShare*100, rep.V6.RotatingProbes),
			rep.V6.EphemeralShare > 0.8 && rep.V6.RotatingProbes > 0)
	}

	// X8: regenerate a smaller world with wire-level protocol backends
	// (real PPPoE/IPCP and DHCP exchanges) and require the headline
	// shape to survive the substitution.
	wireCfg := dynaddr.DefaultConfig()
	wireCfg.Seed = 8
	wireCfg.Scale = 0.3
	wireCfg.WireBackends = true
	if wireWorld, err := dynaddr.Generate(wireCfg); err == nil {
		wireRep := dynaddr.Analyze(wireWorld.Dataset, dynaddr.Options{})
		found := false
		for _, row := range wireRep.Table5 {
			if row.ASN == 3320 && row.D == 24 {
				found = true
			}
		}
		add("X8", "protocol-level assignment reproduces the shapes",
			"§2's PPPoE/IPCP and DHCP mechanisms, run as actual packet exchanges",
			fmt.Sprintf("wire-mode world: DTAG 24h row present = %v (%d Table 5 rows)", found, len(wireRep.Table5)),
			found)
	} else {
		add("X8", "protocol-level assignment reproduces the shapes", "wire world generates",
			fmt.Sprintf("generation failed: %v", err), false)
	}

	return out
}

func boolStr(b bool) string {
	if b {
		return "holds"
	}
	return "violated"
}

func cdfAt(cdf []stats.Point, hours float64) float64 {
	var y float64
	for _, p := range cdf {
		if p.X <= hours {
			y = p.Y
		}
	}
	return y
}

func keysOf(m map[uint32]bool) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	return out
}

func groupTTF(rep *dynaddr.Report, asn uint32) interface {
	MassAt(float64) float64
	FractionAtMost(float64) float64
} {
	ttfs := core.ProbeTTFs(rep.Filter)
	return core.GroupTTF(ttfs, core.ByAS(rep.Filter)[asn])
}

func massAt(rep *dynaddr.Report, asn uint32, d float64) float64 {
	return groupTTF(rep, asn).MassAt(d)
}

func meanPac(rep *dynaddr.Report, asn uint32, power bool) float64 {
	s := rep.Outage.PacSample(core.ByAS(rep.Filter)[asn], power)
	if s.Len() == 0 {
		return -1
	}
	return s.Mean()
}

func binsFor(rep *dynaddr.Report, asn uint32) []core.DurationBinRow {
	return rep.Outage.DurationBins(rep.Filter, core.ByAS(rep.Filter)[asn])
}

func shortShare(bins []core.DurationBinRow) float64 {
	total, ren := 0, 0
	for i := 0; i < 5 && i < len(bins); i++ {
		total += bins[i].Total
		ren += bins[i].Renumbered
	}
	if total == 0 {
		return -1
	}
	return float64(ren) / float64(total)
}

func longShare(bins []core.DurationBinRow) float64 {
	total, ren := 0, 0
	for i := 8; i < len(bins); i++ {
		total += bins[i].Total
		ren += bins[i].Renumbered
	}
	if total == 0 {
		return -1
	}
	return float64(ren) / float64(total)
}

func fracOf(rep *dynaddr.Report, asn uint32) float64 {
	for _, r := range rep.Table7ByAS {
		if r.ASN == asn {
			return r.FracBGP()
		}
	}
	return -1
}

func nightShare(h *core.HourHist) float64 {
	in, total := 0, 0
	for hr, c := range h.Hours {
		total += c
		if hr < 6 {
			in += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

func maxSixHourShare(h *core.HourHist) float64 {
	total := 0
	for _, c := range h.Hours {
		total += c
	}
	if total == 0 {
		return 1
	}
	best := 0.0
	for lo := 0; lo <= 18; lo++ {
		in := 0
		for hr := lo; hr < lo+6; hr++ {
			in += h.Hours[hr]
		}
		if f := float64(in) / float64(total); f > best {
			best = f
		}
	}
	return best
}
