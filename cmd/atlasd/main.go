// Command atlasd serves a dataset through the RIPE-Atlas-style HTTP
// endpoints (probe archive, per-probe connection-history pages,
// measurement-result streams, pfx2as snapshots) that cmd/churnctl can
// scrape with -url — the collection boundary of the paper's §3.
//
// Usage:
//
//	atlasd -data DIR -addr :8042          # serve a generated dataset
//	atlasd -seed 7 -scale 0.3 -addr :8042 # generate in memory and serve
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dynaddr"
	"dynaddr/internal/atlasapi"
)

func main() {
	data := flag.String("data", "", "dataset directory to serve (mutually exclusive with -seed)")
	seed := flag.Uint64("seed", 0, "generate a world with this seed instead of loading")
	scale := flag.Float64("scale", 0.25, "population scale when generating")
	addr := flag.String("addr", ":8042", "listen address")
	flag.Parse()

	var ds *dynaddr.Dataset
	switch {
	case *data != "" && *seed != 0:
		fmt.Fprintln(os.Stderr, "atlasd: -data and -seed are mutually exclusive")
		os.Exit(2)
	case *data != "":
		loaded, err := dynaddr.LoadDataset(*data)
		if err != nil {
			fatal(err)
		}
		ds = loaded
	case *seed != 0:
		cfg := dynaddr.DefaultConfig()
		cfg.Seed = *seed
		cfg.Scale = *scale
		world, err := dynaddr.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		ds = world.Dataset
	default:
		fmt.Fprintln(os.Stderr, "atlasd: one of -data or -seed is required")
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("atlasd: serving %d probes on %s\n", len(ds.Probes), *addr)
	if err := http.ListenAndServe(*addr, atlasapi.NewServer(ds)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atlasd:", err)
	os.Exit(1)
}
