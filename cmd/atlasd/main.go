// Command atlasd serves a dataset through the RIPE-Atlas-style HTTP
// endpoints (probe archive, per-probe connection-history pages,
// measurement-result streams, pfx2as snapshots) that cmd/churnctl can
// scrape with -url — the collection boundary of the paper's §3. With
// -live it additionally mounts the streaming ingest and incremental
// query endpoints backed by a stream.Ingester: the negotiated v2 batch
// endpoint (POST /api/v2/stream/records, binary or NDJSON by
// Content-Type; body size bounded by -wire-max-batch) plus the
// deprecated v1 per-kind routes, which -wire-v1=false retires with 410.
//
// Usage:
//
//	atlasd -data DIR -addr :8042          # serve a generated dataset
//	atlasd -seed 7 -scale 0.3 -addr :8042 # generate in memory and serve
//	atlasd -seed 7 -live -shards 8        # batch endpoints + live ingest
//	atlasd -live                          # live ingest only (no AS mapping)
//	atlasd -live -wal-dir DIR -fsync 64   # durable ingest, crash-recoverable
//
// With -wal-dir the ingest tier is durable: every record is appended to
// a per-shard write-ahead log before being applied, shards checkpoint
// their state every -checkpoint-every records, and on boot the state is
// recovered from checkpoints plus WAL replay before the live endpoints
// are mounted. /healthz answers as soon as the listener is up;
// /readyz stays 503 until recovery has finished.
//
// The ingest tier is protected by admission control: at most
// -ingest-max-inflight concurrent ingest requests (each waiting up to
// -ingest-max-wait for a slot), shed with 429 + Retry-After beyond
// that, and shed outright while the shard queues are over
// -ingest-highwater full. WAL failures flip shards into read-only
// degraded mode instead of killing the process: /readyz answers 503
// with the degraded-shard count until the background probes re-arm the
// logs, and records that fail decode or validation inside a good batch
// are quarantined to per-shard dead-letter logs (GET
// /api/v1/live/deadletter to inspect, churnctl -deadletter to drain).
//
// The -chaos-* flags wrap every endpoint in the deterministic
// fault-injection middleware (internal/faultinject): request drops,
// injected 503s, truncated response bodies and added latency, for
// exercising scrape clients' retry/backoff/error-budget behaviour
// against a live server. The -fault-wal-* flags inject WAL-level
// failures (ENOSPC, fsync errors) to drive degraded mode end to end:
//
//	atlasd -seed 7 -chaos-drop 0.1 -chaos-truncate 0.05 -chaos-seed 42
//	atlasd -live -wal-dir DIR -fault-wal-enospc-after 1000 -fault-wal-heal-after 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynaddr"
	"dynaddr/internal/atlasapi"
	"dynaddr/internal/faultinject"
	"dynaddr/internal/obs"
	"dynaddr/internal/serve"
	"dynaddr/internal/stream"
	"dynaddr/internal/wal"
)

func main() {
	start := time.Now()
	data := flag.String("data", "", "dataset directory to serve (mutually exclusive with -seed)")
	seed := flag.Uint64("seed", 0, "generate a world with this seed instead of loading")
	scale := flag.Float64("scale", 0.25, "population scale when generating")
	addr := flag.String("addr", ":8042", "listen address")
	live := flag.Bool("live", false, "mount streaming ingest and live query endpoints")
	shards := flag.Int("shards", 4, "ingest shard count in -live mode")
	analysis := flag.Bool("analysis", true, "maintain the live analysis engine in -live mode (GET /api/v1/live/analysis)")
	walDir := flag.String("wal-dir", "", "durable ingest: per-shard WAL and checkpoint directory (requires -live)")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy with -wal-dir: always, off, or an integer N (sync every N appends)")
	ckptEvery := flag.Int("checkpoint-every", 4096, "records between shard checkpoints with -wal-dir (negative disables)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-injection PRNG seed (0 = fixed default)")
	chaosDrop := flag.Float64("chaos-drop", 0, "probability a request's connection is dropped with no response")
	chaosError := flag.Float64("chaos-error", 0, "probability a request gets an injected 503")
	chaosTruncate := flag.Float64("chaos-truncate", 0, "probability a response body is truncated mid-stream")
	chaosDelayProb := flag.Float64("chaos-delay-prob", 0, "probability a request is delayed by -chaos-delay")
	chaosDelay := flag.Duration("chaos-delay", 0, "latency injected when -chaos-delay-prob fires")
	metricsOn := flag.Bool("metrics", true, "expose GET /metrics (Prometheus text format) and instrument the hot paths")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	wireMaxBatch := flag.Int64("wire-max-batch", atlasapi.DefaultMaxBatchBytes, "largest POST /api/v2/stream/records body accepted, in bytes")
	wireV1 := flag.Bool("wire-v1", true, "keep the deprecated /api/v1/stream/* routes mounted (false answers them with 410 Gone)")
	serveCache := flag.Bool("serve-cache", true, "serve live GETs from materialized snapshot generations with ETag caching (requires -live)")
	serveMaxStale := flag.Duration("serve-max-stale", serve.DefaultMaxStaleness, "oldest generation -serve-cache may answer with before refreshing at a barrier")
	ingestMaxInflight := flag.Int("ingest-max-inflight", atlasapi.DefaultMaxInFlight, "admission control: concurrent ingest requests before shedding 429 (negative disables the gate)")
	ingestMaxWait := flag.Duration("ingest-max-wait", atlasapi.DefaultMaxWait, "admission control: bounded queue wait for an ingest slot before shedding (negative sheds immediately)")
	ingestHighWater := flag.Float64("ingest-highwater", atlasapi.DefaultHighWater, "admission control: shard-queue fill fraction above which ingest is shed outright (negative disables)")
	ingestRetryAfter := flag.Duration("ingest-retry-after", atlasapi.DefaultRetryAfter, "Retry-After pacing hint sent with shed and degraded responses")
	faultWALWrites := flag.Int64("fault-wal-enospc-after", -1, "degraded-mode chaos: fail WAL writes with ENOSPC after this many succeed (negative disables; requires -wal-dir)")
	faultWALSyncs := flag.Int64("fault-wal-sync-fail-after", -1, "degraded-mode chaos: fail WAL fsyncs after this many succeed (negative disables; requires -wal-dir)")
	faultWALHeal := flag.Duration("fault-wal-heal-after", 0, "degraded-mode chaos: heal injected WAL faults after this delay (0 = never heal)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator over -peers (routes ingest by partition owner, merges query fan-outs)")
	peersFlag := flag.String("peers", "", "cluster membership as id=url,id=url (required with -coordinator; lets a peer derive its ring share)")
	nodeID := flag.String("node-id", "", "this peer's cluster node ID: mounts the inter-peer endpoints and tags /healthz and /readyz (requires -live and -partitions-total)")
	partsTotal := flag.Int("partitions-total", 0, "cluster-wide partition count; every peer and the coordinator must agree (0 = single-node)")
	partsFlag := flag.String("partitions", "", "partitions this peer owns: comma-separated IDs, 'none' for an empty rebalance target, or empty to derive from -peers/-node-id (all partitions when no -peers); an existing -wal-dir layout always wins")
	flag.Parse()

	if *coordinator {
		runCoordinator(coordOpts{
			addr:       *addr,
			peers:      *peersFlag,
			total:      *partsTotal,
			nodeID:     *nodeID,
			retryAfter: *ingestRetryAfter,
			maxBatch:   *wireMaxBatch,
			metricsOn:  *metricsOn,
			pprofOn:    *pprofOn,
			chaos: faultinject.Config{
				Seed:      *chaosSeed,
				Drop:      *chaosDrop,
				Error:     *chaosError,
				Truncate:  *chaosTruncate,
				DelayProb: *chaosDelayProb,
				DelayBy:   *chaosDelay,
			},
		})
		return
	}

	// A zero seed is a valid world; flag.Visit distinguishes "-seed 0"
	// from the flag never being given.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	var ds *dynaddr.Dataset
	switch {
	case *data != "" && seedSet:
		fmt.Fprintln(os.Stderr, "atlasd: -data and -seed are mutually exclusive")
		os.Exit(2)
	case *data != "":
		loaded, err := dynaddr.LoadDataset(*data)
		if err != nil {
			fatal(err)
		}
		ds = loaded
	case seedSet:
		cfg := dynaddr.DefaultConfig()
		cfg.Seed = *seed
		cfg.Scale = *scale
		world, err := dynaddr.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		ds = world.Dataset
	case !*live:
		fmt.Fprintln(os.Stderr, "atlasd: one of -data, -seed or -live is required")
		flag.Usage()
		os.Exit(2)
	}

	if *walDir != "" && !*live {
		fmt.Fprintln(os.Stderr, "atlasd: -wal-dir requires -live")
		os.Exit(2)
	}
	if (*nodeID != "" || *partsTotal > 0 || *partsFlag != "") && !*live {
		fmt.Fprintln(os.Stderr, "atlasd: -node-id/-partitions-total/-partitions require -live")
		os.Exit(2)
	}
	if *nodeID != "" && *partsTotal <= 0 {
		fmt.Fprintln(os.Stderr, "atlasd: -node-id requires -partitions-total")
		os.Exit(2)
	}
	// reg stays nil with -metrics=false: the instrumented paths all
	// treat a nil registry as "record nothing".
	var reg *obs.Registry
	if *metricsOn {
		reg = obs.NewRegistry()
	}

	scfg := stream.Config{Shards: *shards, CheckpointEvery: *ckptEvery, Metrics: reg, Analysis: *analysis}
	if ds != nil {
		scfg.Pfx2AS = ds.Pfx2AS
	}
	if *partsTotal > 0 {
		scfg.TotalPartitions = *partsTotal
		owned, err := ownedPartitions(*partsFlag, *peersFlag, *nodeID, *partsTotal)
		if err != nil {
			fatal(err)
		}
		// A WAL laid out on disk is the authority on what this peer owns:
		// a rebalance may have moved partitions since the flags were
		// written, and adopting ships data the flags know nothing about.
		if *walDir != "" {
			disk, err := stream.DiscoverPartitions(*walDir)
			if err != nil {
				fatal(err)
			}
			if len(disk) > 0 {
				owned = disk
				fmt.Printf("atlasd: WAL layout owns partitions %v (overriding flags)\n", disk)
			}
		}
		scfg.OwnedPartitions = owned
	}
	if *walDir != "" {
		scfg.WALDir = *walDir
		pol, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fatal(err)
		}
		scfg.Sync = pol
	}
	// WAL fault injection drives shards into degraded mode on demand —
	// the robustness smoke test's disk-full lever. The faults arm when
	// the flag's write/sync budget runs out and (optionally) heal on a
	// timer, after which the shards' background probes re-arm the logs.
	if *faultWALWrites >= 0 || *faultWALSyncs >= 0 {
		if scfg.WALDir == "" {
			fmt.Fprintln(os.Stderr, "atlasd: -fault-wal-* flags require -wal-dir")
			os.Exit(2)
		}
		ffs := faultinject.NewFaultFS(wal.OSFS)
		if *faultWALWrites >= 0 {
			ffs.FailWritesAfter(*faultWALWrites, syscall.ENOSPC)
		}
		if *faultWALSyncs >= 0 {
			ffs.FailSyncsAfter(*faultWALSyncs, syscall.EIO)
		}
		if *faultWALHeal > 0 {
			time.AfterFunc(*faultWALHeal, func() {
				ffs.Heal()
				fmt.Println("atlasd: injected WAL faults healed")
			})
		}
		scfg.FS = ffs
		fmt.Printf("atlasd: WAL fault injection on (enospc-after=%d sync-fail-after=%d heal-after=%v)\n",
			*faultWALWrites, *faultWALSyncs, *faultWALHeal)
	}

	mux := http.NewServeMux()
	if ds != nil {
		as := atlasapi.NewServer(ds)
		as.SetMetrics(reg)
		mux.Handle("/", as)
		fmt.Printf("atlasd: serving %d probes on %s\n", len(ds.Probes), *addr)
	}

	var handler http.Handler = mux
	chaos := faultinject.Config{
		Seed:      *chaosSeed,
		Drop:      *chaosDrop,
		Error:     *chaosError,
		Truncate:  *chaosTruncate,
		DelayProb: *chaosDelayProb,
		DelayBy:   *chaosDelay,
	}
	var injector *faultinject.Injector
	if chaos.Enabled() {
		injector = faultinject.New(chaos, mux)
		handler = injector
		fmt.Printf("atlasd: fault injection on (drop=%.2f error=%.2f truncate=%.2f delay=%v@%.2f seed=%d)\n",
			chaos.Drop, chaos.Error, chaos.Truncate, chaos.DelayBy, chaos.DelayProb, chaos.Seed)
	}

	// Health, metrics and pprof endpoints live on the root mux outside
	// the fault injector (an orchestrator's liveness probe or a scraping
	// Prometheus must never eat an injected 503) and outside the request
	// instrumentation (scrapes of /metrics should not move the request
	// metrics they read). The panic-recovery middleware wraps
	// everything, so one bad request can't take the server down.
	health := &atlasapi.Health{}
	root := http.NewServeMux()
	health.Register(root)
	if reg != nil {
		root.Handle("/metrics", obs.Handler(reg))
	}
	if *pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	root.Handle("/", atlasapi.InstrumentHTTP(reg, handler))

	srv := &http.Server{
		Addr:         *addr,
		Handler:      atlasapi.RecoverPanics(root, nil),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// The live tier mounts after the listener is up: /healthz answers
	// while WAL recovery replays, and /readyz flips to 200 only once the
	// recovered ingest endpoints exist. (ServeMux registration is
	// locked, so mounting after serving has begun is safe; pre-mount
	// requests see 404 and should gate on /readyz.)
	var ing *stream.Ingester
	if *live {
		if scfg.WALDir != "" {
			recovered, st, err := stream.Recover(scfg)
			if err != nil {
				fatal(fmt.Errorf("recovering %s: %w", scfg.WALDir, err))
			}
			ing = recovered
			fmt.Printf("atlasd: recovered ingest state from %s (%d checkpointed probes, %d WAL records replayed, fsync=%s)\n",
				scfg.WALDir, st.CheckpointProbes, st.Replayed, scfg.Sync)
		} else {
			ing = stream.NewIngester(scfg)
		}
		// Admission control gates every ingest route, keyed to the shard
		// queues' fill fraction; /readyz drains the instance while any
		// shard is degraded after a WAL failure.
		adm := atlasapi.NewAdmission(atlasapi.AdmissionConfig{
			MaxInFlight: *ingestMaxInflight,
			MaxWait:     *ingestMaxWait,
			HighWater:   *ingestHighWater,
			RetryAfter:  *ingestRetryAfter,
		}, ing.QueuePressure, reg)
		health.SetDegraded(func() int { return len(ing.DegradedShards()) })
		lsOpts := []atlasapi.LiveOption{
			atlasapi.WithLiveMetrics(reg),
			atlasapi.WithMaxBatchBytes(*wireMaxBatch),
			atlasapi.WithV1Routes(*wireV1),
			atlasapi.WithAdmission(adm),
		}
		if *serveCache {
			tier := serve.NewTier(ing, serve.WithMetrics(reg), serve.WithMaxStaleness(*serveMaxStale))
			lsOpts = append(lsOpts, atlasapi.WithServeTier(tier))
		}
		if *nodeID != "" {
			lsOpts = append(lsOpts, atlasapi.WithClusterNode(*nodeID))
			health.SetNodeID(*nodeID)
		}
		ls := atlasapi.NewLiveServer(ing, lsOpts...)
		mux.Handle(atlasapi.RouteStreamRecords, ls)
		mux.Handle("/api/v1/stream/", ls)
		mux.Handle("/api/v1/live/", ls)
		if *nodeID != "" {
			mux.Handle("/api/v1/cluster/", ls)
			fmt.Printf("atlasd: cluster peer %s owns partitions %v of %d\n",
				*nodeID, ing.OwnedPartitions(), ing.TotalPartitions())
		}
		fmt.Printf("atlasd: live ingest on %s (%d shards, analysis=%v, v1 routes=%v, serve cache=%v max-stale=%v, max-inflight=%d)\n",
			*addr, ing.Shards(), *analysis, *wireV1, *serveCache, *serveMaxStale, *ingestMaxInflight)
	}
	health.SetReady(true)

	// The one-line boot summary: everything an operator needs to match
	// this process against its logs and its /metrics scrape.
	walSummary := "off"
	if scfg.WALDir != "" {
		walSummary = fmt.Sprintf("%s fsync=%s", scfg.WALDir, scfg.Sync)
	}
	fmt.Printf("atlasd: up addr=%s live=%v wal=%s chaos=%v metrics=%v pprof=%v\n",
		*addr, *live, walSummary, chaos.Enabled(), *metricsOn, *pprofOn)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful exit: stop accepting connections and let in-flight ingest
	// requests finish, then drain the shard queues and flush the WALs
	// (Close syncs and closes each shard's log; it does not checkpoint —
	// the next boot replays the tail, which must always work anyway).
	fmt.Println("atlasd: shutting down")
	health.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "atlasd: shutdown:", err)
	}
	ingested := int64(0)
	if ing != nil {
		if err := ing.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "atlasd: draining ingester:", err)
		}
		// After Close the shards are quiescent; the snapshot is the final
		// tally.
		ingested = ing.Snapshot().Records.Total()
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("atlasd: chaos stats: %d requests, %d dropped, %d errored, %d truncated, %d delayed\n",
			st.Requests, st.Drops, st.Errors, st.Truncates, st.Delays)
	}
	fmt.Printf("atlasd: down records_ingested=%d uptime=%s\n",
		ingested, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atlasd:", err)
	os.Exit(1)
}
