package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/cluster"
	"dynaddr/internal/faultinject"
	"dynaddr/internal/obs"
)

// parsePeers reads the -peers flag: "id=url,id=url".
func parsePeers(s string) ([]cluster.Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no peers given (want id=url,id=url)")
	}
	var peers []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q (want id=url)", part)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("no peers given (want id=url,id=url)")
	}
	return peers, nil
}

// ownedPartitions resolves the -partitions flag for a peer:
//
//   - "none"           an empty rebalance target (owns nothing until adopt)
//   - "0,3,5"          an explicit list
//   - "" with -peers   this node's rendezvous share of the ring
//   - "" without       every partition (single peer running the whole space)
func ownedPartitions(partsFlag, peersFlag, nodeID string, total int) ([]int, error) {
	switch {
	case partsFlag == "none":
		return []int{}, nil
	case partsFlag != "":
		var owned []int
		seen := make(map[int]bool)
		for _, f := range strings.Split(partsFlag, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			p, err := strconv.Atoi(f)
			if err != nil || p < 0 || p >= total {
				return nil, fmt.Errorf("bad partition %q (want 0..%d)", f, total-1)
			}
			if seen[p] {
				return nil, fmt.Errorf("partition %d listed twice", p)
			}
			seen[p] = true
			owned = append(owned, p)
		}
		sort.Ints(owned)
		return owned, nil
	case peersFlag != "":
		if nodeID == "" {
			return nil, fmt.Errorf("-peers without -node-id: cannot tell which ring share is ours")
		}
		peers, err := parsePeers(peersFlag)
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(peers))
		for i, p := range peers {
			ids[i] = p.ID
		}
		ring, err := cluster.NewRing(ids, total)
		if err != nil {
			return nil, err
		}
		owned := ring.Partitions(nodeID)
		if owned == nil {
			owned = []int{}
		}
		return owned, nil
	default:
		owned := make([]int, total)
		for p := range owned {
			owned[p] = p
		}
		return owned, nil
	}
}

// coordOpts carries the flag values coordinator mode needs.
type coordOpts struct {
	addr       string
	peers      string
	total      int
	nodeID     string
	retryAfter time.Duration
	maxBatch   int64
	metricsOn  bool
	pprofOn    bool
	chaos      faultinject.Config
}

// runCoordinator is atlasd's -coordinator mode: no local dataset, no
// local ingester — just the cluster front door. The server scaffolding
// mirrors single-node atlasd (health endpoints outside the fault
// injector, instrumented request paths, panic recovery) so operators
// point the same probes and dashboards at either tier.
func runCoordinator(opts coordOpts) {
	start := time.Now()
	peers, err := parsePeers(opts.peers)
	if err != nil {
		fatal(fmt.Errorf("-coordinator: %w", err))
	}
	if opts.total <= 0 {
		fatal(fmt.Errorf("-coordinator requires -partitions-total"))
	}

	var reg *obs.Registry
	if opts.metricsOn {
		reg = obs.NewRegistry()
	}

	coord, err := cluster.New(cluster.Config{
		Peers:           peers,
		TotalPartitions: opts.total,
		RetryAfter:      opts.retryAfter,
		MaxBatchBytes:   opts.maxBatch,
		Client:          &http.Client{Timeout: 30 * time.Second},
	})
	if err != nil {
		fatal(err)
	}

	var handler http.Handler = coord
	var injector *faultinject.Injector
	if opts.chaos.Enabled() {
		injector = faultinject.New(opts.chaos, coord)
		handler = injector
		fmt.Printf("atlasd: fault injection on (drop=%.2f error=%.2f truncate=%.2f delay=%v@%.2f seed=%d)\n",
			opts.chaos.Drop, opts.chaos.Error, opts.chaos.Truncate, opts.chaos.DelayBy, opts.chaos.DelayProb, opts.chaos.Seed)
	}

	health := &atlasapi.Health{}
	if opts.nodeID != "" {
		health.SetNodeID(opts.nodeID)
	}
	root := http.NewServeMux()
	health.Register(root)
	if reg != nil {
		root.Handle("/metrics", obs.Handler(reg))
	}
	if opts.pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	root.Handle("/", atlasapi.InstrumentHTTP(reg, handler))

	srv := &http.Server{
		Addr:         opts.addr,
		Handler:      atlasapi.RecoverPanics(root, nil),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	health.SetReady(true)

	ids := make([]string, len(peers))
	for i, p := range peers {
		ids[i] = p.ID
	}
	fmt.Printf("atlasd: coordinator up addr=%s partitions=%d peers=%s\n",
		opts.addr, opts.total, strings.Join(ids, ","))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("atlasd: shutting down")
	health.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "atlasd: shutdown:", err)
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("atlasd: chaos stats: %d requests, %d dropped, %d errored, %d truncated, %d delayed\n",
			st.Requests, st.Drops, st.Errors, st.Truncates, st.Delays)
	}
	fmt.Printf("atlasd: down uptime=%s\n", time.Since(start).Round(time.Millisecond))
}
