// Blacklist-advisor: the paper's motivating application turned into a
// tool. Given a (synthetic) year of measurements, it answers the
// question blocklist operators implicitly guess at: how long does an
// address-keyed entry keep pointing at the same subscriber in each ISP,
// can the subscriber shed it on demand by rebooting the CPE, and does
// widening the block to the enclosing prefix help?
package main

import (
	"fmt"
	"log"
	"sort"

	"dynaddr"
	"dynaddr/internal/core"
)

func main() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 1606 // the study's venue year, why not
	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})
	names := dynaddr.Names(world)

	advice := core.AdviseBlacklist(report, 5)
	sort.Slice(advice, func(i, j int) bool {
		return advice[i].SuggestedTTL < advice[j].SuggestedTTL
	})

	fmt.Println("Blocklist entry guidance per ISP (shortest-lived first):")
	fmt.Println()
	fmt.Printf("  %-24s %10s %10s %8s %10s %s\n",
		"ISP", "median", "p90", "evade?", "TTL", "prefix-block escape rate")
	for _, a := range advice {
		evade := "no"
		if a.EvadableByReboot {
			evade = "REBOOT"
		}
		fmt.Printf("  %-24s %9.0fh %9.0fh %8s %10v %14.0f%%\n",
			names(a.ASN), a.MedianHoldHours, a.P90HoldHours, evade,
			a.SuggestedTTL, a.PrefixEscapeShare*100)
	}

	fmt.Println()
	fmt.Println("Reading:")
	fmt.Println("  - In daily-renumbering ISPs an address entry is stale within a day, and")
	fmt.Println("    a malicious subscriber can shed it immediately by power-cycling the CPE")
	fmt.Println("    (paper §5.4, §8).")
	fmt.Println("  - Widening the block to the old address's BGP prefix still misses the")
	fmt.Println("    escape-rate share of renumberings (paper §6, Table 7).")
	fmt.Println("  - Long TTLs are only safe in stable-DHCP ISPs like the North American")
	fmt.Println("    cable plants (paper §4.2).")
}
