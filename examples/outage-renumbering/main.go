// Outage-renumbering: contrast how a DHCP ISP and a PPP ISP treat the
// same kinds of customer outages (the paper's §5 and Figure 9).
//
// The example generates a two-ISP world with identical outage processes,
// then shows the conditional probability of an address change by outage
// duration bin for each — the DHCP ISP's curve rises with duration (the
// lease must lapse and the pool must reclaim), while the PPP ISP
// renumbers even sub-minute reconnects.
package main

import (
	"fmt"
	"log"
	"strings"

	"dynaddr"
	"dynaddr/internal/core"
	"dynaddr/internal/isp"
	"dynaddr/internal/outage"
)

func main() {
	sharedOutages := outage.Config{
		PowerPerYear: 25, NetworkPerYear: 45,
		ShortFrac: 0.45, ParetoXm: 120, ParetoAlpha: 0.45,
		MaxDuration: 14 * dynaddr.Day,
	}
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 99
	cfg.Profiles = []dynaddr.Profile{
		{
			Name: "CableCo (DHCP)", ASN: 64001, Country: "NL", Kind: isp.DHCP,
			Lease: 4 * dynaddr.Hour, ReclaimMean: 36 * dynaddr.Hour,
			Outage:      sharedOutages,
			NumPrefixes: 4, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 60,
		},
		{
			Name: "DSLNet (PPPoE+Radius)", ASN: 64002, Country: "DE", Kind: isp.PPP,
			Cohorts:            []isp.Cohort{{Period: 0, Weight: 1}},
			OutageRenumberFrac: 1.0, SameAddrProb: 0.005,
			Outage:      sharedOutages,
			NumPrefixes: 4, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 60,
		},
	}
	// Keep the population plain so every probe exercises the v4 path.
	cfg.IPv6OnlyFrac, cfg.DualStackFrac, cfg.MultihomedFrac, cfg.MoverFrac = 0, 0, 0, 0
	cfg.VersionWeights = [3]float64{0, 0, 1}

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})

	for _, asn := range []uint32{64001, 64002} {
		ids := core.ByAS(report.Filter)[asn]
		name := dynaddr.Names(world)(asn)
		pac := report.Outage.PacSample(ids, false)
		fmt.Printf("%s — %d probes analyzable, mean P(addr change | network outage) = %.2f\n",
			name, len(ids), meanOr(pac.Mean(), pac.Len()))
		bins := report.Outage.DurationBins(report.Filter, ids)
		for _, b := range bins {
			if b.Total == 0 {
				continue
			}
			bar := strings.Repeat("#", int(b.Pct()*40))
			fmt.Printf("  %-7s %5d outages  %3.0f%% renumbered %s\n",
				b.Label, b.Total, b.Pct()*100, bar)
		}
		fmt.Println()
	}
	fmt.Println("Reading: DHCP renumbering rises with outage duration; PPP renumbers regardless.")
}

func meanOr(v float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return v
}
