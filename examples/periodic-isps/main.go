// Periodic-ISPs: detect which ISPs renumber their customers on a fixed
// schedule (the paper's Table 5) and validate every inference against
// the simulator's ground truth — the oracle the paper could only
// approximate through private ISP correspondence.
//
// For each detected (AS, period) row this example reports whether the
// ISP's configured session cap matches the inferred period, and whether
// the inferred change-synchronisation (nightly window vs free-running)
// matches the configured CPE behaviour.
package main

import (
	"fmt"
	"log"

	"dynaddr"
	"dynaddr/internal/core"
)

func main() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 7
	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})
	names := dynaddr.Names(world)

	profiles := dynaddr.PaperProfiles()
	truthPeriods := map[uint32]map[float64]bool{}
	for _, p := range profiles {
		set := map[float64]bool{}
		for _, c := range p.Cohorts {
			if c.Period > 0 {
				set[core.QuantizeHours(c.Period.Hours())] = true
			}
		}
		if len(set) > 0 {
			truthPeriods[uint32(p.ASN)] = set
		}
	}

	fmt.Println("Detected periodic ISPs vs configured ground truth:")
	fmt.Println()
	correct, total := 0, 0
	for _, row := range report.Table5 {
		total++
		verdict := "NOT CONFIGURED PERIODIC (false positive)"
		if set, ok := truthPeriods[row.ASN]; ok {
			if set[row.D] {
				verdict = "matches configured session cap"
				correct++
			} else {
				verdict = fmt.Sprintf("period mismatch (configured %v)", keys(set))
			}
		}
		fmt.Printf("  %-24s d=%4.0fh  %2d/%2d periodic  -> %s\n",
			names(row.ASN), row.D, row.NPeriodic, row.N, verdict)
	}
	fmt.Printf("\n%d/%d Table 5 rows match ground truth\n\n", correct, total)

	fmt.Println("Synchronisation of periodic changes (Figures 4/5):")
	for _, h := range report.HourHists {
		night, totalChanges := 0, 0
		for hr, c := range h.Hours {
			totalChanges += c
			if hr < 6 {
				night += c
			}
		}
		if totalChanges == 0 {
			continue
		}
		style := "free-running (changes spread across the day)"
		if float64(night)/float64(totalChanges) > 0.5 {
			style = "synchronised to a nightly reconnect window"
		}
		fmt.Printf("  %-24s %5d changes at d=%.0fh, %2.0f%% in hours 0-6 GMT: %s\n",
			names(h.ASN), totalChanges, h.D,
			100*float64(night)/float64(totalChanges), style)
	}
}

func keys(m map[float64]bool) []float64 {
	var out []float64
	for k := range m {
		out = append(out, k)
	}
	return out
}
