// Prefix-locality: how far does a customer's new address stray from the
// old one? The paper's §6 finding — half of all address changes land in
// a different BGP prefix, and even /8-wide blocklists leak — decides
// whether blocklisting "the neighbourhood" of a misbehaving address can
// work.
//
// This example measures, for every ISP, the fraction of changes that
// escape the old address's BGP prefix, /16 and /8, then simulates a
// blocklist operator who blocks the offender's enclosing prefix and
// reports how often a single forced re-dial already evades the block.
package main

import (
	"fmt"
	"log"
	"sort"

	"dynaddr"
	"dynaddr/internal/core"
)

func main() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 2016
	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})
	names := dynaddr.Names(world)

	fmt.Println("Prefix escape rates per ISP (share of address changes that leave the old prefix):")
	fmt.Println()
	fmt.Printf("  %-24s %8s  %8s  %8s  %8s\n", "ISP", "changes", "BGP", "/16", "/8")
	rows := report.Table7ByAS
	sort.Slice(rows, func(i, j int) bool { return rows[i].FracBGP() > rows[j].FracBGP() })
	for _, r := range rows {
		if r.Changes < 50 {
			continue
		}
		fmt.Printf("  %-24s %8d  %7.0f%%  %7.0f%%  %7.0f%%\n",
			names(r.ASN), r.Changes, r.FracBGP()*100, r.FracS16()*100, r.FracS8()*100)
	}

	all := report.Table7All
	fmt.Println()
	fmt.Println("Blocklist evasion by one forced address change (reboot or nightly reset):")
	fmt.Printf("  block exact address : evaded by %5.1f%% of changes (any change evades unless the same address returns)\n",
		100*float64(all.Changes-sameAddr(report))/float64(all.Changes))
	fmt.Printf("  block enclosing BGP : evaded by %5.1f%%\n", all.FracBGP()*100)
	fmt.Printf("  block enclosing /16 : evaded by %5.1f%%\n", all.FracS16()*100)
	fmt.Printf("  block enclosing /8  : evaded by %5.1f%%\n", all.FracS8()*100)
	fmt.Println()
	fmt.Println("Reading: even /8-wide blocks fail for a third of observed changes (paper §6).")
}

// sameAddr counts changes where old and new address are identical —
// impossible by construction of an address change, so zero; kept
// explicit to make the "exact address" row's meaning visible.
func sameAddr(rep *core.Report) int { return 0 }
