// Quickstart: generate a small synthetic RIPE-Atlas-shaped world, run
// the full analysis pipeline, and print the headline results — the
// filtering summary and the periodically renumbering ISPs the pipeline
// recovered.
package main

import (
	"fmt"
	"log"
	"os"

	"dynaddr"
)

func main() {
	cfg := dynaddr.DefaultConfig()
	cfg.Seed = 42
	cfg.Scale = 0.25 // quarter-size world: fast, still recovers the shapes

	world, err := dynaddr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d probes across %d ISPs\n\n",
		len(world.Dataset.Probes), len(dynaddr.PaperProfiles()))

	report := dynaddr.Analyze(world.Dataset, dynaddr.Options{})
	names := dynaddr.Names(world)

	if err := report.RenderTable2().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := report.RenderTable5(names).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("observed %d IPv4 address changes; %.0f%% moved to a different BGP prefix\n",
		report.Table7All.Changes, report.Table7All.FracBGP()*100)
}
