package dynaddr

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per artefact) over a paper-scale
// synthetic world, and adds ablation benchmarks for the design choices
// DESIGN.md calls out. Benchmarks attach shape metrics via
// b.ReportMetric so `go test -bench` output doubles as a compact
// reproduction record.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/obs"
	"dynaddr/internal/serve"
	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
	"dynaddr/internal/wire"
)

var (
	benchOnce   sync.Once
	benchWorld  *sim.World
	benchFilter *core.FilterResult
	benchOutage *core.OutageAnalysis
)

func benchSetup(b *testing.B) (*sim.World, *core.FilterResult, *core.OutageAnalysis) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Seed = 77
		w, err := Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchWorld = w
		benchFilter = core.Filter(w.Dataset)
		benchOutage = core.AnalyzeOutages(w.Dataset, benchFilter)
	})
	if benchWorld == nil {
		b.Fatal("bench world failed to build")
	}
	return benchWorld, benchFilter, benchOutage
}

// BenchmarkWorldGeneration measures the substrate itself: simulating the
// full probe population for the study year.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = 0.25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ConnectionLog regenerates Table 1: bounded address
// durations from one daily-renumbered probe's connection log.
func BenchmarkTable1ConnectionLog(b *testing.B) {
	w, res, _ := benchSetup(b)
	// The busiest probe's log stands in for the paper's probe 206.
	var entries []atlasdata.ConnLogEntry
	for _, view := range res.Views {
		if len(view.Entries) > len(entries) {
			entries = view.Entries
		}
	}
	_ = w
	b.ResetTimer()
	var durations int
	for i := 0; i < b.N; i++ {
		durations = len(core.V4Durations(entries))
	}
	b.ReportMetric(float64(durations), "durations")
}

// BenchmarkTable2Filtering regenerates Table 2: the probe-filtering
// pipeline over the whole dataset.
func BenchmarkTable2Filtering(b *testing.B) {
	w, _, _ := benchSetup(b)
	b.ResetTimer()
	var analyzable int
	for i := 0; i < b.N; i++ {
		res := core.Filter(w.Dataset)
		analyzable = len(res.GeoProbes)
	}
	b.ReportMetric(float64(analyzable), "geo-analyzable")
}

// BenchmarkTable5PeriodicASes regenerates Table 5: per-probe periodic
// classification and per-AS aggregation.
func BenchmarkTable5PeriodicASes(b *testing.B) {
	_, res, _ := benchSetup(b)
	b.ResetTimer()
	var rows []core.ASPeriodicRow
	for i := 0; i < b.N; i++ {
		rows = core.PeriodicByAS(res)
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable6OutageProbability regenerates Table 6: the full outage
// pipeline (network/power detection, firmware filtering, association).
func BenchmarkTable6OutageProbability(b *testing.B) {
	w, res, _ := benchSetup(b)
	b.ResetTimer()
	var rows []core.ASOutageRow
	for i := 0; i < b.N; i++ {
		oa := core.AnalyzeOutages(w.Dataset, res)
		rows = core.OutagesByAS(oa, res)
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable7PrefixChanges regenerates Table 7: prefix-change
// classification via month-matched pfx2as lookups.
func BenchmarkTable7PrefixChanges(b *testing.B) {
	w, res, _ := benchSetup(b)
	b.ResetTimer()
	var row core.PrefixChangeRow
	for i := 0; i < b.N; i++ {
		row = core.PrefixChangesAll(w.Dataset, res)
	}
	b.ReportMetric(row.FracBGP()*100, "pct-cross-bgp")
}

// BenchmarkFigure1ContinentCDF regenerates Figure 1: total-time-fraction
// CDFs aggregated by continent.
func BenchmarkFigure1ContinentCDF(b *testing.B) {
	_, res, _ := benchSetup(b)
	b.ResetTimer()
	var curves int
	for i := 0; i < b.N; i++ {
		ttfs := core.ProbeTTFs(res)
		byCont := core.ByContinent(res)
		curves = 0
		for _, ids := range byCont {
			g := core.GroupTTF(ttfs, ids)
			if g.Total() > 0 {
				curves++
			}
		}
	}
	b.ReportMetric(float64(curves), "continents")
}

// BenchmarkFigure2TopASCDF regenerates Figure 2: TTF CDFs for the
// largest ASes.
func BenchmarkFigure2TopASCDF(b *testing.B) {
	_, res, _ := benchSetup(b)
	ttfs := core.ProbeTTFs(res)
	byAS := core.ByAS(res)
	b.ResetTimer()
	var mass float64
	for i := 0; i < b.N; i++ {
		g := core.GroupTTF(ttfs, byAS[3320])
		mass = g.MassAt(24)
	}
	b.ReportMetric(mass*100, "dtag-pct-at-24h")
}

// BenchmarkFigure3GermanyCDF regenerates Figure 3: TTF CDFs for German
// ASes.
func BenchmarkFigure3GermanyCDF(b *testing.B) {
	_, res, _ := benchSetup(b)
	ttfs := core.ProbeTTFs(res)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		byCountry := core.ByCountry(res)
		german := map[uint32][]atlasdata.ProbeID{}
		for _, id := range byCountry["DE"] {
			asn := uint32(res.Views[id].ASN)
			german[asn] = append(german[asn], id)
		}
		n = 0
		for _, ids := range german {
			if core.GroupTTF(ttfs, ids).Total() > 0 {
				n++
			}
		}
	}
	b.ReportMetric(float64(n), "german-ases")
}

// BenchmarkFigure4OrangeHours regenerates Figure 4: Orange's hour-of-day
// histogram of weekly changes.
func BenchmarkFigure4OrangeHours(b *testing.B) {
	_, res, _ := benchSetup(b)
	ids := core.ByAS(res)[3215]
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		h := core.HourHistogram(res, ids, 168)
		total = 0
		for _, c := range h {
			total += c
		}
	}
	b.ReportMetric(float64(total), "changes")
}

// BenchmarkFigure5DTAGHours regenerates Figure 5: DTAG's hour-of-day
// histogram of daily changes.
func BenchmarkFigure5DTAGHours(b *testing.B) {
	_, res, _ := benchSetup(b)
	ids := core.ByAS(res)[3320]
	b.ResetTimer()
	var night float64
	for i := 0; i < b.N; i++ {
		h := core.HourHistogram(res, ids, 24)
		in, total := 0, 0
		for hr, c := range h {
			total += c
			if hr < 6 {
				in += c
			}
		}
		if total > 0 {
			night = float64(in) / float64(total)
		}
	}
	b.ReportMetric(night*100, "pct-night")
}

// BenchmarkFigure6RebootSpikes regenerates Figure 6: reboot detection
// across all probes plus firmware-day detection.
func BenchmarkFigure6RebootSpikes(b *testing.B) {
	w, res, _ := benchSetup(b)
	b.ResetTimer()
	var fwDays int
	for i := 0; i < b.N; i++ {
		reboots := make(map[atlasdata.ProbeID][]core.Reboot, len(res.Views))
		for id := range res.Views {
			reboots[id] = core.DetectReboots(w.Dataset.Uptime[id])
		}
		perDay := core.RebootsPerDay(reboots)
		fwDays = len(core.DetectFirmwareDays(perDay))
	}
	b.ReportMetric(float64(fwDays), "firmware-days")
}

// BenchmarkFigure7PacNetwork regenerates Figure 7: the per-probe
// P(ac|nw) ECDF for the top ASes.
func BenchmarkFigure7PacNetwork(b *testing.B) {
	_, res, oa := benchSetup(b)
	ids := core.ByAS(res)[3215]
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		s := oa.PacSample(ids, false)
		mean = s.Mean()
	}
	b.ReportMetric(mean, "orange-mean-pac-nw")
}

// BenchmarkFigure8PacPower regenerates Figure 8: the per-probe P(ac|pw)
// ECDF (v3 probes only).
func BenchmarkFigure8PacPower(b *testing.B) {
	_, res, oa := benchSetup(b)
	ids := core.ByAS(res)[3215]
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		s := oa.PacSample(ids, true)
		mean = s.Mean()
	}
	b.ReportMetric(mean, "orange-mean-pac-pw")
}

// BenchmarkFigure9DurationBins regenerates Figure 9: renumbering by
// outage-duration bin for the LGI/Orange contrast.
func BenchmarkFigure9DurationBins(b *testing.B) {
	_, res, oa := benchSetup(b)
	lgi := core.ByAS(res)[6830]
	orange := core.ByAS(res)[3215]
	b.ResetTimer()
	var lgiLong float64
	for i := 0; i < b.N; i++ {
		_ = oa.DurationBins(res, orange)
		bins := oa.DurationBins(res, lgi)
		total, ren := 0, 0
		for j := 8; j < len(bins); j++ {
			total += bins[j].Total
			ren += bins[j].Renumbered
		}
		if total > 0 {
			lgiLong = float64(ren) / float64(total)
		}
	}
	b.ReportMetric(lgiLong*100, "lgi-pct-renum-12h-plus")
}

// BenchmarkFullReport runs the entire analysis pipeline end to end.
func BenchmarkFullReport(b *testing.B) {
	w, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(w.Dataset, Options{})
	}
}

// BenchmarkAnalyzeSequential is the staged engine's baseline: the
// deprecated sequential pipeline over the paper-scale world.
func BenchmarkAnalyzeSequential(b *testing.B) {
	w, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(w.Dataset, Options{})
	}
}

// BenchmarkAnalyzeParallel runs the staged engine at several pool
// sizes over the same world. The per-stage wall times land in
// Report.Metrics; the headline comparison is against
// BenchmarkAnalyzeSequential (speedup needs real cores — a single-CPU
// runner shows parity, not gains).
func BenchmarkAnalyzeParallel(b *testing.B) {
	w, _, _ := benchSetup(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			an := NewAnalyzer(WithParallelism(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := an.Analyze(w.Dataset); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRecord / benchRecorder capture a dataset's record stream in
// arrival order so the codec benchmarks can pre-encode it outside the
// timer.
type benchRecord struct {
	kind   int // 0 meta, 1 conn, 2 kroot, 3 uptime
	meta   atlasdata.ProbeMeta
	conn   atlasdata.ConnLogEntry
	kroot  atlasdata.KRootRound
	uptime atlasdata.UptimeRecord
}

type benchRecorder struct{ recs []benchRecord }

func (r *benchRecorder) Meta(m atlasdata.ProbeMeta) error {
	r.recs = append(r.recs, benchRecord{kind: 0, meta: m})
	return nil
}
func (r *benchRecorder) ConnLog(e atlasdata.ConnLogEntry) error {
	r.recs = append(r.recs, benchRecord{kind: 1, conn: e})
	return nil
}
func (r *benchRecorder) KRoot(k atlasdata.KRootRound) error {
	r.recs = append(r.recs, benchRecord{kind: 2, kroot: k})
	return nil
}
func (r *benchRecorder) Uptime(u atlasdata.UptimeRecord) error {
	r.recs = append(r.recs, benchRecord{kind: 3, uptime: u})
	return nil
}

// v1Run is one pre-encoded v1 body: the longest prefix of the stream
// sharing a kind (and, for sessions, a probe — the v1 route is
// per-probe), capped at benchBatch records, exactly the producer's
// batching.
type v1Run struct {
	kind  int
	probe atlasdata.ProbeID
	body  []byte
}

const benchBatch = 1024

func encodeV1Runs(b *testing.B, recs []benchRecord) []v1Run {
	b.Helper()
	var runs []v1Run
	for off := 0; off < len(recs); {
		kind := recs[off].kind
		n := 1
		for off+n < len(recs) && n < benchBatch && recs[off+n].kind == kind {
			if kind == 1 && recs[off+n].conn.Probe != recs[off].conn.Probe {
				break
			}
			n++
		}
		run := recs[off : off+n]
		var buf bytes.Buffer
		var err error
		switch kind {
		case 0:
			probes := make([]atlasdata.ProbeMeta, n)
			for i, r := range run {
				probes[i] = r.meta
			}
			err = atlasapi.WriteProbeArchive(&buf, probes)
		case 1:
			entries := make([]atlasdata.ConnLogEntry, n)
			for i, r := range run {
				entries[i] = r.conn
			}
			err = atlasapi.WriteConnectionHistory(&buf, run[0].conn.Probe, entries)
		case 2:
			rounds := make([]atlasdata.KRootRound, n)
			for i, r := range run {
				rounds[i] = r.kroot
			}
			err = atlasapi.WriteKRootResults(&buf, rounds)
		case 3:
			ups := make([]atlasdata.UptimeRecord, n)
			for i, r := range run {
				ups[i] = r.uptime
			}
			err = atlasapi.WriteUptimeResults(&buf, ups)
		}
		if err != nil {
			b.Fatal(err)
		}
		runs = append(runs, v1Run{kind: kind, probe: recs[off].probeID(), body: buf.Bytes()})
		off += n
	}
	return runs
}

func (r benchRecord) probeID() atlasdata.ProbeID {
	switch r.kind {
	case 0:
		return r.meta.ID
	case 1:
		return r.conn.Probe
	case 2:
		return r.kroot.Probe
	}
	return r.uptime.Probe
}

func encodeWireBatches(b *testing.B, recs []benchRecord) [][]byte {
	b.Helper()
	var batches [][]byte
	var w wire.BatchWriter
	flush := func() {
		if w.Records() > 0 {
			batches = append(batches, append([]byte(nil), w.Bytes()...))
			w.Reset()
		}
	}
	for _, r := range recs {
		var err error
		switch r.kind {
		case 0:
			err = w.Meta(r.meta)
		case 1:
			err = w.ConnLog(r.conn)
		case 2:
			err = w.KRoot(r.kroot)
		case 3:
			err = w.Uptime(r.uptime)
		}
		if err != nil {
			b.Fatal(err)
		}
		if w.Records() >= benchBatch {
			flush()
		}
	}
	flush()
	return batches
}

// ingestV1Runs replays pre-encoded v1 bodies through the v1 decode
// core (the batch tier's text/JSON parsers feeding the typed ingester
// entry points) — the server-side work of the deprecated per-kind
// routes, minus HTTP.
func ingestV1Runs(b *testing.B, ing *stream.Ingester, runs []v1Run) {
	b.Helper()
	for _, run := range runs {
		var err error
		switch run.kind {
		case 0:
			var probes []atlasdata.ProbeMeta
			if probes, err = atlasapi.ParseProbeArchive(bytes.NewReader(run.body)); err == nil {
				for _, m := range probes {
					if err = ing.Meta(m); err != nil {
						break
					}
				}
			}
		case 1:
			var entries []atlasdata.ConnLogEntry
			if entries, err = atlasapi.ParseConnectionHistory(bytes.NewReader(run.body), run.probe); err == nil {
				for _, e := range entries {
					if err = ing.ConnLog(e); err != nil {
						break
					}
				}
			}
		case 2:
			var rounds []atlasdata.KRootRound
			if rounds, err = atlasapi.ParseKRootResults(bytes.NewReader(run.body)); err == nil {
				for _, k := range rounds {
					if err = ing.KRoot(k); err != nil {
						break
					}
				}
			}
		case 3:
			var ups []atlasdata.UptimeRecord
			if ups, err = atlasapi.ParseUptimeResults(bytes.NewReader(run.body)); err == nil {
				for _, u := range ups {
					if err = ing.Uptime(u); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamIngest measures the live-ingest subsystem at several
// shard counts, reporting sustained records/sec:
//
//   - direct: typed in-process replay (no codec — the apply ceiling)
//   - codec=json: the v1 path's decode core over pre-encoded text/JSON
//     bodies, batched exactly like the producer
//   - codec=binary: stream.IngestWire over pre-encoded wire batches —
//     the v2 binary path's decode core
//
// The json/binary pair is the before/after for the wire-format
// redesign (EXPERIMENTS.md); CI asserts binary stays ahead.
func BenchmarkStreamIngest(b *testing.B) {
	w, _, _ := benchSetup(b)
	ds := w.Dataset
	var records int64
	for id := range ds.Probes {
		records += int64(1 + len(ds.ConnLogs[id]) + len(ds.KRoot[id]) + len(ds.Uptime[id]))
	}

	var rec benchRecorder
	if err := ReplayDataset(ds, &rec); err != nil {
		b.Fatal(err)
	}
	v1Runs := encodeV1Runs(b, rec.recs)
	wireBatches := encodeWireBatches(b, rec.recs)

	check := func(b *testing.B, ing *stream.Ingester) {
		b.Helper()
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		if got := ing.Snapshot().Records.Total(); got != records {
			b.Fatalf("ingested %d records, want %d", got, records)
		}
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("direct/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS})
				if err := ReplayDataset(ds, ing); err != nil {
					b.Fatal(err)
				}
				check(b, ing)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
		b.Run(fmt.Sprintf("codec=json/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS})
				ingestV1Runs(b, ing, v1Runs)
				check(b, ing)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
		b.Run(fmt.Sprintf("codec=binary/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS})
				for _, batch := range wireBatches {
					if _, err := ing.IngestWire(ctx, batch); err != nil {
						b.Fatal(err)
					}
				}
				check(b, ing)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
		// codec=binary plus the admission gate exercised per batch the
		// way the HTTP handler does (pressure check, slot claim,
		// release). The delta against the plain codec=binary run is the
		// uncontended admission overhead (target < 2%, EXPERIMENTS.md).
		b.Run(fmt.Sprintf("codec=binary/admission/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS})
				// HighWater above any reachable fill: the benchmark
				// deliberately saturates the shard queues, and a real
				// server would shed here — the point of this run is the
				// per-batch cost of the check itself, so it must probe
				// the queues but never trip.
				adm := atlasapi.NewAdmission(atlasapi.AdmissionConfig{HighWater: 1.01}, ing.QueuePressure, nil)
				for _, batch := range wireBatches {
					release, reason, ok := adm.Admit("v2")
					if !ok {
						b.Fatalf("uncontended admission shed a batch (%s)", reason)
					}
					_, err := ing.IngestWire(ctx, batch)
					release()
					if err != nil {
						b.Fatal(err)
					}
				}
				check(b, ing)
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkStreamIngestInstrumented is BenchmarkStreamIngest with the
// obs registry attached — the pair measures the instrumentation's
// overhead on the ingest hot path (EXPERIMENTS.md; target < 5%
// throughput delta).
func BenchmarkStreamIngestInstrumented(b *testing.B) {
	w, _, _ := benchSetup(b)
	ds := w.Dataset
	var records int64
	for id := range ds.Probes {
		records += int64(1 + len(ds.ConnLogs[id]) + len(ds.KRoot[id]) + len(ds.Uptime[id]))
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS, Metrics: reg})
				if err := ReplayDataset(ds, ing); err != nil {
					b.Fatal(err)
				}
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
				snap := ing.Snapshot()
				if snap.Records.Total() != records {
					b.Fatalf("ingested %d records, want %d", snap.Records.Total(), records)
				}
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkServeConcurrentReaders measures what dashboard-style read
// traffic costs ingest with the serving tier on: the paper-scale record
// stream replays at full speed while N pollers issue conditional GETs
// against the live endpoints at a ~50ms cadence (reusing the ETag from
// their previous poll, the revalidation pattern real dashboards
// produce). The readers=0 run is the baseline; the acceptance target is
// under 5% records/sec regression at readers=1000, which holds because
// reads pin a published generation (two atomic loads) and all pollers
// past the staleness window coalesce into one snapshot barrier.
func BenchmarkServeConcurrentReaders(b *testing.B) {
	w, _, _ := benchSetup(b)
	ds := w.Dataset
	var records int64
	for id := range ds.Probes {
		records += int64(1 + len(ds.ConnLogs[id]) + len(ds.KRoot[id]) + len(ds.Uptime[id]))
	}
	paths := []string{"/api/v1/live/summary", "/api/v1/live/continents"}
	for _, readers := range []int{0, 1000} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			var served, revalidated int64
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: 4, Pfx2AS: ds.Pfx2AS})
				tier := serve.NewTier(ing)
				ls := atlasapi.NewLiveServer(ing, atlasapi.WithServeTier(tier))
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						path := paths[r%len(paths)]
						etag := ""
						for {
							req := httptest.NewRequest(http.MethodGet, path, nil)
							if etag != "" {
								req.Header.Set("If-None-Match", etag)
							}
							rec := httptest.NewRecorder()
							ls.ServeHTTP(rec, req)
							if e := rec.Header().Get("ETag"); e != "" {
								etag = e
							}
							atomic.AddInt64(&served, 1)
							if rec.Code == http.StatusNotModified {
								atomic.AddInt64(&revalidated, 1)
							}
							select {
							case <-stop:
								return
							case <-time.After(50 * time.Millisecond):
							}
						}
					}(r)
				}
				if err := ReplayDataset(ds, ing); err != nil {
					b.Fatal(err)
				}
				close(stop)
				wg.Wait()
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
				if got := ing.Snapshot().Records.Total(); got != records {
					b.Fatalf("ingested %d records, want %d", got, records)
				}
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
			b.ReportMetric(float64(served)/float64(b.N), "reads")
			b.ReportMetric(float64(revalidated)/float64(b.N), "304s")
		})
	}
}

// --- Ablation benchmarks ---

// BenchmarkAblationFirmwareFilter contrasts the power-outage analysis
// with and without firmware-reboot filtering (§5.2): without it,
// firmware installs masquerade as power outages and dilute P(ac|pw).
func BenchmarkAblationFirmwareFilter(b *testing.B) {
	w, res, _ := benchSetup(b)
	run := func(filter bool) float64 {
		reboots := make(map[atlasdata.ProbeID][]core.Reboot, len(res.Views))
		for id := range res.Views {
			reboots[id] = core.DetectReboots(w.Dataset.Uptime[id])
		}
		perDay := core.RebootsPerDay(reboots)
		fwDays := core.DetectFirmwareDays(perDay)
		if !filter {
			fwDays = nil
		}
		count := 0
		for id := range res.Views {
			kept := core.FilterFirmwareReboots(reboots[id], fwDays)
			count += len(core.DetectPowerOutages(kept, w.Dataset.KRoot[id]))
		}
		return float64(count)
	}
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "power-outages-filtered")
	b.ReportMetric(without-with, "false-power-outages-removed")
}

// BenchmarkAblationTTFvsRaw contrasts the paper's total-time-fraction
// metric with a raw duration-count distribution (§4.1). The two
// disagree whenever duration lengths are skewed: counts over-weight
// outage-shortened durations (the paper's Table 1 example) while TTF
// weights each duration by the time actually spent in it, which is what
// makes it the right estimator for "how long will this address last".
func BenchmarkAblationTTFvsRaw(b *testing.B) {
	_, res, _ := benchSetup(b)
	ids := core.ByAS(res)[3320]
	b.ResetTimer()
	var ttfMode, rawMode float64
	for i := 0; i < b.N; i++ {
		var durations []core.AddressDuration
		for _, id := range ids {
			durations = append(durations, core.V4Durations(res.Views[id].Entries)...)
		}
		ttf := core.TTF(durations)
		ttfMode = ttf.MassAt(24)
		// Raw: every duration counts once regardless of length.
		at24, total := 0, 0
		for _, d := range durations {
			total++
			if core.QuantizeHours(d.Hours()) == 24 {
				at24++
			}
		}
		if total > 0 {
			rawMode = float64(at24) / float64(total)
		}
	}
	b.ReportMetric(ttfMode*100, "dtag-mode-ttf-pct")
	b.ReportMetric(rawMode*100, "dtag-mode-rawcount-pct")
}

// BenchmarkAblationMultihomedFilter contrasts address-change counts with
// and without the behavioural multihomed filter (§3.2): uplink
// alternation masquerades as renumbering when the filter is off.
func BenchmarkAblationMultihomedFilter(b *testing.B) {
	w, res, _ := benchSetup(b)
	b.ResetTimer()
	var genuine, naive float64
	for i := 0; i < b.N; i++ {
		genuine = 0
		for _, view := range res.Views {
			genuine += float64(len(view.Changes))
		}
		naive = genuine
		for _, id := range res.ByCategory[core.CatBehaviouralMultihomed] {
			naive += float64(len(core.V4Changes(w.Dataset.ConnLogs[id])))
		}
		for _, id := range res.ByCategory[core.CatTaggedMultihomed] {
			naive += float64(len(core.V4Changes(w.Dataset.ConnLogs[id])))
		}
	}
	b.ReportMetric(genuine, "changes-filtered")
	b.ReportMetric(naive-genuine, "spurious-changes-avoided")
}

// BenchmarkAblationWireVsBehavioural contrasts dataset generation cost
// with protocol-level address assignment (PPPoE/IPCP and DHCP messages
// marshalled per decision) against the behavioural models. The shapes
// agree (see sim's wire tests); this measures what the fidelity costs.
func BenchmarkAblationWireVsBehavioural(b *testing.B) {
	for _, mode := range []struct {
		name string
		wire bool
	}{{"behavioural", false}, {"wire", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Scale = 0.1
			cfg.WireBackends = mode.wire
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
