package dynaddr

import (
	"context"

	"dynaddr/internal/core"
	"dynaddr/internal/engine"
	"dynaddr/internal/stream"
)

// Stage names one node of the staged analysis engine's DAG. Stages
// passed to WithStages are expanded with their transitive dependencies,
// so WithStages(StageFigures) runs filter, ttf, periodic and figures.
type Stage = engine.Stage

// The analysis stages, for WithStages.
const (
	StageFilter     = engine.StageFilter
	StageTTF        = engine.StageTTF
	StagePeriodic   = engine.StagePeriodic
	StageOutage     = engine.StageOutage
	StagePac        = engine.StagePac
	StageLinkType   = engine.StageLinkType
	StagePrefix     = engine.StagePrefix
	StageFigures    = engine.StageFigures
	StageExtensions = engine.StageExtensions
)

// Stages lists every analysis stage in canonical order.
func Stages() []Stage {
	out := make([]Stage, len(engine.All))
	copy(out, engine.All)
	return out
}

// ParseStages parses a comma-separated stage list ("" and "all" mean
// every stage) — the format churnctl's -stages flag accepts.
func ParseStages(s string) ([]Stage, error) { return engine.ParseStages(s) }

// RunMetrics describes how a report was computed: worker-pool size and
// per-stage wall time and record counts. Filled by the Analyzer; nil on
// reports from the deprecated sequential Analyze.
type RunMetrics = core.RunMetrics

// StageMetric is one stage's entry in RunMetrics.
type StageMetric = core.StageMetric

// Analyzer runs the analysis pipeline over datasets on the staged
// parallel engine. Construct it with NewAnalyzer; the zero value is
// also valid and analyzes everything with default options at GOMAXPROCS
// parallelism. An Analyzer is immutable after construction and safe for
// concurrent use.
//
// The report an Analyzer produces is byte-identical to the sequential
// pipeline's (ignoring Report.Metrics), whatever the parallelism.
type Analyzer struct {
	cfg engine.Config
}

// AnalyzerOption configures an Analyzer at construction.
type AnalyzerOption func(*Analyzer)

// NewAnalyzer builds an Analyzer from functional options:
//
//	an := dynaddr.NewAnalyzer(
//		dynaddr.WithTopASes(10),
//		dynaddr.WithParallelism(4),
//	)
//	report, err := an.AnalyzeContext(ctx, ds)
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer {
	a := &Analyzer{}
	for _, o := range opts {
		o(a)
	}
	return a
}

// WithTopASes sets how many ASes Figures 2, 7 and 8 include
// (default 5).
func WithTopASes(n int) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Options.TopASes = n }
}

// WithFigure3Country selects Figure 3's country (default "DE").
func WithFigure3Country(cc string) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Options.Figure3Country = cc }
}

// WithFigure3MinYears sets the minimum total address time for a
// Figure 3 AS, in years (default 3, the paper's bound).
func WithFigure3MinYears(years float64) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Options.Figure3MinYears = years }
}

// WithFigure9ASNs pins Figure 9's contrast ASes; unset picks the
// highest- and lowest-renumbering ASes from Table 6 automatically.
func WithFigure9ASNs(asns ...uint32) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Options.Figure9ASNs = asns }
}

// WithOptions replaces every analysis option at once — the migration
// path for callers holding an Options struct for the deprecated
// Analyze.
func WithOptions(o Options) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Options = o }
}

// WithStages restricts the run to the given stages plus their
// transitive dependencies. Report fields owned by unselected stages
// stay zero. Default: all stages.
func WithStages(stages ...Stage) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Stages = stages }
}

// WithParallelism bounds the worker pool shared by all stages. Zero or
// negative means GOMAXPROCS. One worker still runs the staged engine,
// just serially.
func WithParallelism(n int) AnalyzerOption {
	return func(a *Analyzer) { a.cfg.Parallelism = n }
}

// Analyze runs the selected stages over a dataset. It fails only on
// configuration errors (an unknown stage name).
func (a *Analyzer) Analyze(ds *Dataset) (*Report, error) {
	return a.AnalyzeContext(context.Background(), ds)
}

// AnalyzeContext is Analyze under a context: cancellation is observed
// at stage boundaries and between per-probe tasks, and the run returns
// ctx.Err() without finishing the remaining stages.
func (a *Analyzer) AnalyzeContext(ctx context.Context, ds *Dataset) (*Report, error) {
	return engine.Run(ctx, ds, a.cfg)
}

// Live ingest, re-exported from the streaming subsystem so library
// users reach it without importing internal packages.

// Ingester consumes live Atlas-shaped record streams and maintains
// incrementally updated churn aggregates; see NewIngester.
type Ingester = stream.Ingester

// StreamConfig parameterises a live Ingester (shard count, buffer
// size, pfx2as store).
type StreamConfig = stream.Config

// Snapshot is a consistent point-in-time view of an Ingester's
// analysis state.
type Snapshot = stream.Snapshot

// ASAggregate is one AS's live aggregate within a Snapshot.
type ASAggregate = stream.ASAggregate

// RecordCounts counts ingested records by kind.
type RecordCounts = stream.RecordCounts

// ErrIngesterClosed is returned by ingest calls after Close.
var ErrIngesterClosed = stream.ErrClosed

// NewIngester starts a live ingester; an Ingester satisfies RecordSink,
// so GenerateTo and ReplayDataset can feed it directly.
func NewIngester(cfg StreamConfig) *Ingester { return stream.NewIngester(cfg) }

// RecoverStats summarises what a Recover call restored: shard count,
// probes loaded from checkpoints and WAL records replayed.
type RecoverStats = stream.RecoverStats

// ProbeCursor is a probe's durable resume position — how many records
// of each kind have been made durable, counting rejected ones — which a
// producer uses to skip the already-persisted prefix after a crash.
type ProbeCursor = stream.ProbeCursor

// Recover builds an Ingester from the WAL directory in cfg, restoring
// shard checkpoints and replaying each shard's log tail. On a fresh
// directory it is equivalent to NewIngester with durability enabled.
func Recover(cfg StreamConfig) (*Ingester, *RecoverStats, error) { return stream.Recover(cfg) }
