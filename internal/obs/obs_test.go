package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters is the registry's concurrency contract: N
// goroutines hammering Inc/Add through GetOrCreate lose nothing. Run
// under -race in CI.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the goroutines resolve the instrument once (the hot-path
			// idiom), half re-resolve through the registry every time.
			if w%2 == 0 {
				c := r.Counter("conc_total", "test", L("kind", "held"))
				for i := 0; i < perWorker; i++ {
					c.Inc()
				}
			} else {
				for i := 0; i < perWorker; i++ {
					r.Counter("conc_total", "test", L("kind", "looked-up")).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	held := r.Counter("conc_total", "test", L("kind", "held")).Value()
	looked := r.Counter("conc_total", "test", L("kind", "looked-up")).Value()
	if want := int64(workers / 2 * perWorker); held != want || looked != want {
		t.Errorf("counters lost updates: held=%d looked-up=%d want %d each", held, looked, want)
	}
}

// TestConcurrentHistogram asserts exact totals for parallel Observe:
// count, sum and the bucket distribution must all add up.
func TestConcurrentHistogram(t *testing.T) {
	r := NewRegistry()
	buckets := []float64{1, 2, 4}
	h := r.Histogram("conc_hist", "test", buckets)
	const workers, perWorker = 8, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i % 5)) // 0,1 -> le=1; 2 -> le=2; 3,4 -> le=4
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if h.Count() != total {
		t.Errorf("Count = %d, want %d", h.Count(), total)
	}
	if want := float64(workers) * perWorker / 5 * (0 + 1 + 2 + 3 + 4); math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("gathered %d families, want 1", len(fams))
	}
	m := fams[0].Metrics[0]
	wantBuckets := []int64{total / 5 * 2, total / 5, total / 5 * 2, 0} // le=1, le=2, le=4, +Inf
	for i, want := range wantBuckets {
		if m.BucketCounts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, m.BucketCounts[i], want)
		}
	}
}

func TestConcurrentGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("conc_gauge", "test")
	const workers, per = 8, 2_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Inc()
			}
			for i := 0; i < per/2; i++ {
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if want := float64(workers * per / 2); g.Value() != want {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
}

// TestGetOrCreateIdentity: the same name + labels is the same
// instrument, label order notwithstanding.
func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "test", L("a", "1"), L("b", "2"))
	b := r.Counter("same_total", "test", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order produced distinct instruments")
	}
	c := r.Counter("same_total", "test", L("a", "1"), L("b", "3"))
	if a == c {
		t.Error("different label values shared an instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kindful_total", "test")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("kindful_total", "test")
}

func TestLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("labelled_total", "test", L("shard", "0"))
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different label names did not panic")
		}
	}()
	r.Counter("labelled_total", "test", L("kind", "conn"))
}

// TestNilSafety: nil registry and nil instruments are inert, the
// disabled-instrumentation contract every hot path relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "test")
	g := r.Gauge("x", "test")
	h := r.Histogram("x_seconds", "test", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments retained values")
	}
	if got := r.Gather(); got != nil {
		t.Errorf("nil registry gathered %v", got)
	}
	r.GaugeFunc("x_fn", "test", func() float64 { return 1 })
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7
	r.GaugeFunc("queue_depth", "test", func() float64 { return float64(depth) }, L("shard", "0"))
	fams := r.Gather()
	if len(fams) != 1 || fams[0].Metrics[0].Value != 7 {
		t.Fatalf("gather = %+v, want one gauge at 7", fams)
	}
	depth = 3
	if v := r.Gather()[0].Metrics[0].Value; v != 3 {
		t.Errorf("callback gauge = %v after update, want 3", v)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", "test", []float64{1, 2})
	h.Observe(1)   // on the bound: le=1 (Prometheus buckets are inclusive)
	h.Observe(1.5) // le=2
	h.Observe(99)  // +Inf
	m := r.Gather()[0].Metrics[0]
	want := []int64{1, 1, 1}
	for i, w := range want {
		if m.BucketCounts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, m.BucketCounts[i], w)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}
