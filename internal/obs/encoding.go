// Prometheus text exposition (format version 0.0.4). This file is the
// only place the wire format appears: Gather returns format-agnostic
// snapshots, so swapping the exposition (OpenMetrics, statsd, expvar)
// means replacing this file, nothing else.
package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP string: backslash and newline.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabel escapes a label value: backslash, double quote, newline.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatValue renders a sample value the way Prometheus expects:
// shortest float representation, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} with extra appended last (used for
// the histogram "le" label); no braces when there is nothing to write.
func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range append(labels[:len(labels):len(labels)], extra...) {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(l.Name)
		w.WriteString(`="`)
		escapeLabel.WriteString(w, l.Value)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func writeSample(w *bufio.Writer, name string, labels []Label, value string, extra ...Label) {
	w.WriteString(name)
	writeLabels(w, labels, extra...)
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// WriteText renders the registry in the Prometheus text format:
// families sorted by name, each with its HELP and TYPE lines, series
// sorted by label values, histograms with cumulative buckets ending at
// le="+Inf" plus _sum and _count samples.
func WriteText(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			escapeHelp.WriteString(bw, f.Help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			switch f.Kind {
			case KindCounter, KindGauge:
				writeSample(bw, f.Name, m.Labels, formatValue(m.Value))
			case KindHistogram:
				cum := int64(0)
				for i, c := range m.BucketCounts {
					cum += c
					le := "+Inf"
					if i < len(f.Buckets) {
						le = formatValue(f.Buckets[i])
					}
					writeSample(bw, f.Name+"_bucket", m.Labels,
						strconv.FormatInt(cum, 10), L("le", le))
				}
				writeSample(bw, f.Name+"_sum", m.Labels, formatValue(m.Sum))
				writeSample(bw, f.Name+"_count", m.Labels, strconv.FormatInt(m.Count, 10))
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry's text exposition — mount it on
// GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		// Encoding errors here are broken client connections; there is
		// nobody left to answer.
		_ = WriteText(w, r)
	})
}
