package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exposition byte-for-byte: family
// ordering, label ordering, escaping, and cumulative histogram
// buckets are all part of the format contract.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	r.Counter("aa_total", `help with \ and
newline`, L("path", `a"b\c`)).Inc()
	g := r.Gauge("mm_temp", "a gauge", L("shard", "1"))
	g.Set(2.5)
	h := r.Histogram("hh_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total help with \\ and\nnewline
# TYPE aa_total counter
aa_total{path="a\"b\\c"} 1
# HELP hh_seconds a histogram
# TYPE hh_seconds histogram
hh_seconds_bucket{le="0.1"} 2
hh_seconds_bucket{le="1"} 3
hh_seconds_bucket{le="+Inf"} 4
hh_seconds_sum 3.6
hh_seconds_count 4
# HELP mm_temp a gauge
# TYPE mm_temp gauge
mm_temp{shard="1"} 2.5
# HELP zz_total last family
# TYPE zz_total counter
zz_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteTextSeriesOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "series ordering", L("shard", "2")).Inc()
	r.Counter("s_total", "series ordering", L("shard", "0")).Add(2)
	r.Counter("s_total", "series ordering", L("shard", "1")).Add(3)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP s_total series ordering
# TYPE s_total counter
s_total{shard="0"} 2
s_total{shard="1"} 3
s_total{shard="2"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("series ordering mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "handler test").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
