// Package obs is the repo's dependency-free metrics subsystem: atomic
// counters, gauges and fixed-bucket histograms behind a Registry with
// cheap get-or-create lookup and label support. The serving tier (and
// any future perf PR) instruments its hot paths against this package,
// and the Prometheus text exposition in encoding.go publishes the
// registry over GET /metrics.
//
// Design constraints, in order:
//
//   - Hot-path updates are lock-free: a Counter.Inc is one atomic add,
//     a Histogram.Observe is two atomic adds plus a CAS loop on the
//     float sum. Registry lookups (GetOrCreate) take locks and build
//     label keys, so instrumented code resolves its instruments once
//     and holds the pointers.
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge
//     or *Histogram are no-ops. Disabling instrumentation is therefore
//     "don't create the registry" — no branches at call sites.
//   - No dependencies beyond the standard library, and no globals: a
//     Registry is an explicit value owned by whoever serves it.
//
// Misregistration — the same name with a different kind, label set or
// bucket layout — panics: it is a programming error, caught in any
// test that touches the path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind discriminates the instrument types a family can hold.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in the Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically non-decreasing integer. The zero value is
// usable; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n, which must not be negative (counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil *Gauge discards
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (which may be negative) atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition time) and tracks their sum. Bucket bounds are shared by
// every series of a family. A nil *Histogram discards observations.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	sum    Gauge // float accumulator; reuses the CAS add
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v; len(upper) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0 — the common
// latency-instrumentation idiom.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DefBuckets spans the latencies this system cares about: a tmpfs
// fsync is ~10µs, a slow scrape several seconds.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// family is one metric name: its metadata plus every labelled series.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string  // sorted
	buckets    []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's instrument (or value callback).
type series struct {
	labels []Label // sorted by name
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // gauge callback; nil for stored values
}

// Registry holds metric families and hands out their instruments.
// All methods are safe for concurrent use. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sortedLabels returns the labels sorted by name, and their names.
// Duplicate or empty label names panic.
func sortedLabels(labels []Label) ([]Label, []string) {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	names := make([]string, len(out))
	for i, l := range out {
		if l.Name == "" {
			panic("obs: empty label name")
		}
		if i > 0 && out[i-1].Name == l.Name {
			panic(fmt.Sprintf("obs: duplicate label name %q", l.Name))
		}
		names[i] = l.Name
	}
	return out, names
}

// seriesKey fingerprints a sorted label set. \xff cannot appear in
// valid UTF-8 label text, so the key is unambiguous.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// getOrCreate resolves (creating if needed) the series for one name and
// label set, validating against any existing registration.
func (r *Registry) getOrCreate(name, help string, kind Kind, buckets []float64, labels []Label) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	sorted, names := sortedLabels(labels)

	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, kind: kind,
				labelNames: names, buckets: buckets,
				series: make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if !equalStrings(f.labelNames, names) {
		panic(fmt.Sprintf("obs: metric %q registered with labels %v, requested with %v", name, f.labelNames, names))
	}
	if kind == KindHistogram && !equalFloats(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q registered with different buckets", name))
	}

	key := seriesKey(sorted)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: sorted}
	switch kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.series[key] = s
	return s
}

// Counter returns the counter for name and labels, creating it (and its
// family) on first use. Same name + labels always returns the same
// instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, KindCounter, nil, labels).ctr
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, KindGauge, nil, labels).gauge
}

// Histogram returns the histogram for name and labels with the given
// bucket upper bounds (ascending; +Inf is implicit), creating it on
// first use. Nil buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) || len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q buckets must be non-empty and ascending", name))
	}
	return r.getOrCreate(name, help, KindHistogram, buckets, labels).hist
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// gather time — zero hot-path cost for values something else already
// maintains (a channel's queue depth, a map's size behind a lock).
// fn must be safe to call from any goroutine. Re-registering the same
// name + labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic(fmt.Sprintf("obs: GaugeFunc %q with nil callback", name))
	}
	s := r.getOrCreate(name, help, KindGauge, nil, labels)
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Metric is one series' state at gather time.
type Metric struct {
	Labels []Label // sorted by name
	// Value carries counters (as float) and gauges.
	Value float64
	// Histogram state: per-bucket counts aligned with Family.Buckets
	// plus a final +Inf bucket, NOT cumulative; Sum and Count.
	BucketCounts []int64
	Sum          float64
	Count        int64
}

// Family is one metric name's state at gather time.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Buckets []float64 // histogram upper bounds, +Inf implicit
	Metrics []Metric  // sorted by label fingerprint
}

// Gather snapshots the registry: families sorted by name, series sorted
// by label values, histogram buckets raw (encoders cumulate). Gather is
// wire-format-agnostic by design — the Prometheus text rendering lives
// entirely in encoding.go so the format is swappable.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		ff := Family{Name: f.name, Help: f.help, Kind: f.kind, Buckets: f.buckets}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			m := Metric{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				m.Value = float64(s.ctr.Value())
			case KindGauge:
				if s.fn != nil {
					m.Value = s.fn()
				} else {
					m.Value = s.gauge.Value()
				}
			case KindHistogram:
				m.BucketCounts = make([]int64, len(s.hist.counts))
				for i := range s.hist.counts {
					m.BucketCounts[i] = s.hist.counts[i].Load()
				}
				m.Sum = s.hist.Sum()
				m.Count = s.hist.Count()
			}
			ff.Metrics = append(ff.Metrics, m)
		}
		f.mu.RUnlock()
		out = append(out, ff)
	}
	return out
}
