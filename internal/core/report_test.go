package core

import "testing"

func TestRunOptionsFigure9Pinning(t *testing.T) {
	w, _ := paperWorld(t)
	rep := Run(w.Dataset, Options{Figure9ASNs: []uint32{3320}})
	if len(rep.Figure9) != 1 || rep.Figure9[0].ASN != 3320 {
		t.Errorf("pinned Figure 9 = %+v", rep.Figure9)
	}
}

func TestRunOptionsFigure9Default(t *testing.T) {
	_, rep := paperWorld(t)
	// Default pins the paper's LGI/Orange pair when both exist.
	if len(rep.Figure9) != 2 {
		t.Fatalf("Figure 9 has %d ASes", len(rep.Figure9))
	}
	if rep.Figure9[0].ASN != 6830 || rep.Figure9[1].ASN != 3215 {
		t.Errorf("Figure 9 ASes = %d, %d; want LGI then Orange",
			rep.Figure9[0].ASN, rep.Figure9[1].ASN)
	}
}

func TestRunOptionsTopASes(t *testing.T) {
	w, _ := paperWorld(t)
	rep := Run(w.Dataset, Options{TopASes: 2})
	if len(rep.Figure2) != 2 {
		t.Errorf("TopASes 2 produced %d Figure 2 curves", len(rep.Figure2))
	}
	if len(rep.Figure7) > 2 {
		t.Errorf("TopASes 2 produced %d Figure 7 curves", len(rep.Figure7))
	}
}

func TestRunOptionsFigure3Country(t *testing.T) {
	w, _ := paperWorld(t)
	rep := Run(w.Dataset, Options{Figure3Country: "FR", Figure3MinYears: 1})
	if len(rep.Figure3) == 0 {
		t.Fatal("no French ASes in Figure 3")
	}
	for _, c := range rep.Figure3 {
		// Orange and Free SAS are the French profiles; SFR lacks the
		// total-time floor some seeds.
		if c.ASN != 3215 && c.ASN != 12322 && c.ASN != 15557 {
			t.Errorf("unexpected AS%d in French Figure 3", c.ASN)
		}
	}
}

func TestReportExtensionsPopulated(t *testing.T) {
	_, rep := paperWorld(t)
	if len(rep.LinkTypes) == 0 {
		t.Error("LinkTypes empty")
	}
	if len(rep.AdminEvents) == 0 {
		t.Error("AdminEvents empty")
	}
	if rep.ChurnMean <= 0 {
		t.Error("ChurnMean not computed")
	}
	if rep.V6 == nil || len(rep.V6.Probes) == 0 {
		t.Error("V6 analysis empty")
	}
}
