package core

import (
	"sync"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
)

// The integration tests run the complete analysis over a full
// paper-scale synthetic world and check that the pipeline recovers the
// generative ground truth: the paper's experiment, with the oracle the
// paper could only approximate by private ISP communication.

var (
	worldOnce sync.Once
	world     *sim.World
	report    *Report
)

func paperWorld(t *testing.T) (*sim.World, *Report) {
	t.Helper()
	worldOnce.Do(func() {
		cfg := sim.DefaultConfig()
		cfg.Seed = 20160314
		w, err := sim.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		world = w
		report = Run(w.Dataset, Options{})
	})
	if world == nil {
		t.Fatal("world generation failed earlier")
	}
	return world, report
}

func TestIntegrationTable2Shape(t *testing.T) {
	_, rep := paperWorld(t)
	for _, c := range []Category{CatNeverChanged, CatDualStack, CatIPv6Only,
		CatTaggedMultihomed, CatBehaviouralMultihomed, CatAnalyzable} {
		if rep.Table2[c] == 0 {
			t.Errorf("Table 2 category %q empty", c)
		}
	}
	// The analyzable sets nest: AS-level within geographic.
	if len(rep.Filter.ASProbes) >= len(rep.Filter.GeoProbes) && len(rep.Filter.ASProbes) != len(rep.Filter.GeoProbes) {
		t.Error("AS-level probes must be a subset of geographic probes")
	}
	if len(rep.Filter.ASProbes) == 0 {
		t.Fatal("no AS-analyzable probes")
	}
}

func TestIntegrationFilterRecall(t *testing.T) {
	w, rep := paperWorld(t)
	// Every dual-stack truth probe must have been filtered as dual-stack
	// or IPv6 (never analyzable).
	for id, truth := range w.Truth.Probes {
		if _, analyzable := rep.Filter.Views[id]; !analyzable {
			continue
		}
		switch truth.Special {
		case sim.DualStack, sim.IPv6Only:
			t.Errorf("probe %d (%v) leaked into the analyzable set", id, truth.Special)
		case sim.Multihomed:
			t.Errorf("probe %d (multihomed) leaked into the analyzable set", id)
		}
	}
	// Movers that survive must be flagged multi-AS (cross-AS change).
	for id, truth := range w.Truth.Probes {
		view, ok := rep.Filter.Views[id]
		if !ok || truth.Special != sim.Mover {
			continue
		}
		if !view.MultiAS {
			t.Errorf("mover %d not flagged multi-AS", id)
		}
	}
}

func TestIntegrationTable5RecoversPeriods(t *testing.T) {
	w, rep := paperWorld(t)
	// Ground truth periods per ASN for the headline ISPs.
	wantD := map[uint32]float64{
		3215: 168, // Orange: weekly
		3320: 24,  // DTAG: daily
	}
	found := map[uint32]bool{}
	for _, row := range rep.Table5 {
		if d, ok := wantD[row.ASN]; ok && row.D == d {
			found[row.ASN] = true
			if row.NPeriodic < 3 {
				t.Errorf("AS%d: only %d periodic probes", row.ASN, row.NPeriodic)
			}
			if float64(row.NPeriodic) < 0.5*float64(row.N) {
				t.Errorf("AS%d: periodic share %d/%d too low", row.ASN, row.NPeriodic, row.N)
			}
		}
	}
	for asn := range wantD {
		if !found[asn] {
			t.Errorf("Table 5 missing AS%d at its ground-truth period", asn)
		}
	}
	// Non-periodic ISPs must not appear: LGI (6830), Verizon (701).
	for _, row := range rep.Table5 {
		if row.ASN == 6830 || row.ASN == 701 {
			t.Errorf("non-periodic AS%d appeared in Table 5 (d=%v)", row.ASN, row.D)
		}
	}
	_ = w
}

func TestIntegrationPeriodicPrecision(t *testing.T) {
	w, rep := paperWorld(t)
	// Probes the pipeline classifies as periodic should genuinely have a
	// forced period, and the detected duration should match it.
	correct, wrongD, falsePos := 0, 0, 0
	for id, view := range rep.Filter.Views {
		pp, ok := ClassifyPeriodic(V4Durations(view.Entries))
		if !ok {
			continue
		}
		truth := w.Truth.Probes[id]
		if truth.Special == sim.Mover {
			continue // mixed regimes; anything goes
		}
		switch {
		case truth.Period == 0:
			falsePos++
		case QuantizeHours(truth.Period.Hours()) == pp.D:
			correct++
		default:
			wrongD++
		}
	}
	total := correct + wrongD + falsePos
	if total == 0 {
		t.Fatal("no periodic probes classified")
	}
	if frac := float64(correct) / float64(total); frac < 0.85 {
		t.Errorf("period recovery precision = %.2f (correct=%d wrongD=%d falsePos=%d)",
			frac, correct, wrongD, falsePos)
	}
}

func TestIntegrationHourHistograms(t *testing.T) {
	_, rep := paperWorld(t)
	if len(rep.HourHists) < 2 {
		t.Fatal("need hour histograms for the top two periodic ASes")
	}
	var dtag, orange *HourHist
	for i := range rep.HourHists {
		switch rep.HourHists[i].ASN {
		case 3320:
			dtag = &rep.HourHists[i]
		case 3215:
			orange = &rep.HourHists[i]
		}
	}
	if dtag == nil || orange == nil {
		t.Fatalf("hour histograms cover %v, want DTAG and Orange", []uint32{rep.HourHists[0].ASN, rep.HourHists[1].ASN})
	}
	frac := func(h *HourHist, lo, hi int) float64 {
		in, total := 0, 0
		for hr, c := range h.Hours {
			total += c
			if hr >= lo && hr < hi {
				in += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(in) / float64(total)
	}
	// Figure 5: DTAG concentrates changes in the night window.
	if f := frac(dtag, 0, 6); f < 0.55 {
		t.Errorf("DTAG night-window share = %.2f, want > 0.55", f)
	}
	// Figure 4: Orange spread across the day — no 6-hour stretch holds
	// most changes.
	maxWindow := 0.0
	for lo := 0; lo <= 18; lo++ {
		if f := frac(orange, lo, lo+6); f > maxWindow {
			maxWindow = f
		}
	}
	if maxWindow > 0.6 {
		t.Errorf("Orange max 6h-window share = %.2f, want spread", maxWindow)
	}
}

func TestIntegrationFigure6FirmwareDays(t *testing.T) {
	w, rep := paperWorld(t)
	if len(rep.Figure6FirmwareDays) == 0 {
		t.Fatal("no firmware days detected")
	}
	// Every detected day should be within a day of a true push, and most
	// true pushes should be detected.
	matched := 0
	for _, truthDay := range w.Truth.FirmwareDays {
		for _, got := range rep.Figure6FirmwareDays {
			if got >= truthDay-1 && got <= truthDay+1 {
				matched++
				break
			}
		}
	}
	if matched < len(w.Truth.FirmwareDays)-1 {
		t.Errorf("matched %d/%d firmware pushes; detected %v, truth %v",
			matched, len(w.Truth.FirmwareDays), rep.Figure6FirmwareDays, w.Truth.FirmwareDays)
	}
	for _, got := range rep.Figure6FirmwareDays {
		near := false
		for _, truthDay := range w.Truth.FirmwareDays {
			if got >= truthDay-1 && got <= truthDay+2 {
				near = true
			}
		}
		if !near {
			t.Errorf("spurious firmware day %d (truth %v)", got, w.Truth.FirmwareDays)
		}
	}
}

func TestIntegrationPacSeparatesPPPFromDHCP(t *testing.T) {
	_, rep := paperWorld(t)
	meanPac := func(asn uint32) (float64, int) {
		ids := ByAS(rep.Filter)[asn]
		s := rep.Outage.PacSample(ids, false)
		if s.Len() == 0 {
			return 0, 0
		}
		return s.Mean(), s.Len()
	}
	orange, nOrange := meanPac(3215)
	lgi, nLGI := meanPac(6830)
	if nOrange == 0 || nLGI == 0 {
		t.Fatalf("missing samples: orange=%d lgi=%d", nOrange, nLGI)
	}
	if orange < 0.6 {
		t.Errorf("Orange mean P(ac|nw) = %.2f, want high (PPP renumbers on any outage)", orange)
	}
	if lgi > 0.35 {
		t.Errorf("LGI mean P(ac|nw) = %.2f, want low (DHCP keeps addresses)", lgi)
	}
	if orange <= lgi {
		t.Error("PPP ISP must renumber on outages more than DHCP ISP")
	}
}

func TestIntegrationTable6EuropeanPPP(t *testing.T) {
	_, rep := paperWorld(t)
	if len(rep.Table6) == 0 {
		t.Fatal("Table 6 empty")
	}
	// Orange should appear with a high NwOver80 fraction.
	found := false
	for _, row := range rep.Table6 {
		if row.ASN == 3215 {
			found = true
			if row.NwOver80 < 0.5 {
				t.Errorf("Orange NwOver80 = %.2f, want > 0.5", row.NwOver80)
			}
			if row.PwOver80 == 0 {
				t.Error("Orange PwOver80 = 0, want power outages to renumber too")
			}
		}
	}
	if !found {
		t.Error("Orange missing from Table 6")
	}
}

func TestIntegrationFigure9Contrast(t *testing.T) {
	_, rep := paperWorld(t)
	// Build Figure 9 for the paper's pinned pair regardless of the
	// automatic contrast selection.
	orangeBins := rep.Outage.DurationBins(rep.Filter, ByAS(rep.Filter)[3215])
	lgiBins := rep.Outage.DurationBins(rep.Filter, ByAS(rep.Filter)[6830])

	pctShort := func(bins []DurationBinRow) (float64, int) {
		// Renumbering share over outages shorter than one hour (bins 0-4).
		total, ren := 0, 0
		for i := 0; i < 5; i++ {
			total += bins[i].Total
			ren += bins[i].Renumbered
		}
		if total == 0 {
			return 0, 0
		}
		return float64(ren) / float64(total), total
	}
	pctLong := func(bins []DurationBinRow) (float64, int) {
		total, ren := 0, 0
		for i := 8; i < len(bins); i++ { // 12h and beyond
			total += bins[i].Total
			ren += bins[i].Renumbered
		}
		if total == 0 {
			return 0, 0
		}
		return float64(ren) / float64(total), total
	}

	oShort, oN := pctShort(orangeBins)
	lShort, lN := pctShort(lgiBins)
	if oN == 0 || lN == 0 {
		t.Fatalf("no short outages: orange=%d lgi=%d", oN, lN)
	}
	if oShort < 0.6 {
		t.Errorf("Orange renumbers %.0f%% of sub-hour outages, want most", oShort*100)
	}
	if lShort > 0.1 {
		t.Errorf("LGI renumbers %.0f%% of sub-hour outages, want ~none", lShort*100)
	}
	lLong, lLongN := pctLong(lgiBins)
	if lLongN > 0 && lLong <= lShort {
		t.Errorf("LGI long-outage renumbering (%.2f) should exceed short (%.2f)", lLong, lShort)
	}
}

func TestIntegrationTable7PrefixSpread(t *testing.T) {
	_, rep := paperWorld(t)
	all := rep.Table7All
	if all.Changes == 0 {
		t.Fatal("no address changes in Table 7")
	}
	// Paper: ~49% across BGP prefixes overall.
	if f := all.FracBGP(); f < 0.25 || f > 0.75 {
		t.Errorf("overall cross-BGP fraction = %.2f, want roughly half", f)
	}
	// DTAG and Verizon have the lowest spread; Orange among the highest.
	fracOf := func(asn uint32) (float64, bool) {
		for _, r := range rep.Table7ByAS {
			if r.ASN == asn {
				return r.FracBGP(), true
			}
		}
		return 0, false
	}
	orange, ok1 := fracOf(3215)
	dtag, ok2 := fracOf(3320)
	if !ok1 || !ok2 {
		t.Fatal("Orange or DTAG missing from Table 7")
	}
	if orange <= dtag {
		t.Errorf("Orange cross-prefix (%.2f) should exceed DTAG (%.2f)", orange, dtag)
	}
	if all.Unrouted > all.Changes/100 {
		t.Errorf("unrouted endpoints = %d of %d, want under 1%%", all.Unrouted, all.Changes)
	}
}

func TestIntegrationFigure1ContinentContrast(t *testing.T) {
	_, rep := paperWorld(t)
	var eu, na *ASCDF
	for i := range rep.Figure1 {
		switch rep.Figure1[i].Label {
		case "EU":
			eu = &rep.Figure1[i]
		case "NA":
			na = &rep.Figure1[i]
		}
	}
	if eu == nil || na == nil {
		t.Fatalf("Figure 1 continents = %+v", rep.Figure1)
	}
	fracAt := func(c *ASCDF, hours float64) float64 {
		var y float64
		for _, p := range c.CDF {
			if p.X <= hours {
				y = p.Y
			}
		}
		return y
	}
	// Europe spends much of its time in day-scale durations; North
	// America's mass sits in long durations (paper: >50% beyond 50
	// days).
	if euWeek := fracAt(eu, 200); euWeek < 0.3 {
		t.Errorf("EU mass below ~8 days = %.2f, want substantial", euWeek)
	}
	if naWeek := fracAt(na, 200); naWeek > 0.5 {
		t.Errorf("NA mass below ~8 days = %.2f, want under half", naWeek)
	}
}

func TestIntegrationFigure2Membership(t *testing.T) {
	_, rep := paperWorld(t)
	if len(rep.Figure2) < 4 {
		t.Fatalf("Figure 2 has %d ASes", len(rep.Figure2))
	}
	// The deployment-heavy ASes should dominate: Orange, BT, LGI among
	// the top five.
	members := map[uint32]bool{}
	for _, c := range rep.Figure2 {
		members[c.ASN] = true
	}
	for _, asn := range []uint32{3215, 2856, 6830} {
		if !members[asn] {
			t.Errorf("AS%d missing from Figure 2 top set %v", asn, keys(members))
		}
	}
}

func keys(m map[uint32]bool) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestIntegrationTable5AllRow(t *testing.T) {
	_, rep := paperWorld(t)
	if len(rep.Table5All) != 2 {
		t.Fatal("want All rows at 24h and 168h")
	}
	h24, h168 := rep.Table5All[0], rep.Table5All[1]
	if h24.D != 24 || h168.D != 168 {
		t.Fatalf("All rows = %v, %v", h24.D, h168.D)
	}
	// Paper: 193 probes periodic at 24h, 123 at one week — daily beats
	// weekly only because Germany dominates; in our world Orange is the
	// largest single ISP, so just require both populated.
	if h24.NPeriodic == 0 || h168.NPeriodic == 0 {
		t.Errorf("All rows empty: 24h=%d 168h=%d", h24.NPeriodic, h168.NPeriodic)
	}
	// Weekly schedules rarely overrun the period (paper: 94% MAX<=d);
	// daily ones overrun more.
	if h168.FracMaxLeD < h24.FracMaxLeD {
		t.Errorf("weekly MAX<=d (%.2f) should be at least daily's (%.2f)",
			h168.FracMaxLeD, h24.FracMaxLeD)
	}
}

func TestIntegrationGapCausesAllPresent(t *testing.T) {
	_, rep := paperWorld(t)
	var nw, pw, no, changedNoOutage int
	for _, gaps := range rep.Outage.Gaps {
		for _, g := range gaps {
			switch g.Cause {
			case NetworkCause:
				nw++
			case PowerCause:
				pw++
			default:
				no++
				if g.Changed {
					changedNoOutage++
				}
			}
		}
	}
	if nw == 0 || pw == 0 || no == 0 {
		t.Errorf("gap causes missing: nw=%d pw=%d no=%d", nw, pw, no)
	}
	// Periodic renumbering produces changes without outages.
	if changedNoOutage == 0 {
		t.Error("no address changes without outages; periodic renumbering missing")
	}
}

func TestIntegrationProbeASMatchesTruth(t *testing.T) {
	w, rep := paperWorld(t)
	wrong := 0
	for id, view := range rep.Filter.Views {
		if view.ASN == 0 {
			continue
		}
		truth := w.Truth.Probes[id]
		if truth.Special == sim.Mover {
			continue
		}
		// Sibling-pool operators legitimately map to either ASN.
		if uint32(view.ASN) != uint32(truth.ASN) && view.ASN != 200011 {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d probes mapped to the wrong home AS", wrong)
	}
}

func TestIntegrationReportDeterminism(t *testing.T) {
	w, rep := paperWorld(t)
	rep2 := Run(w.Dataset, Options{})
	if len(rep2.Table5) != len(rep.Table5) {
		t.Error("Table 5 differs across identical runs")
	}
	if rep2.Table7All != rep.Table7All {
		t.Error("Table 7 differs across identical runs")
	}
}

func TestIntegrationDualStackDurationIntuition(t *testing.T) {
	// Sanity on simclock-based duration accounting through the whole
	// pipeline: no analyzable probe has a negative or year-exceeding
	// bounded duration.
	_, rep := paperWorld(t)
	year := (365 * simclock.Day).Hours()
	for id, view := range rep.Filter.Views {
		for _, d := range V4Durations(view.Entries) {
			if d.Hours() <= 0 || d.Hours() > year {
				t.Fatalf("probe %d has absurd duration %.1fh", id, d.Hours())
			}
		}
	}
}

func TestIntegrationVerizonLongDurations(t *testing.T) {
	_, rep := paperWorld(t)
	ttfs := ProbeTTFs(rep.Filter)
	g := GroupTTF(ttfs, ByAS(rep.Filter)[701])
	if g.Total() == 0 {
		t.Skip("no Verizon durations bounded this seed")
	}
	// Paper: Verizon has the longest durations of the top ASes; most of
	// its time mass sits beyond two weeks.
	if f := g.FractionAtMost(14 * 24); f > 0.5 {
		t.Errorf("Verizon mass within two weeks = %.2f, want mostly longer", f)
	}
}

func countProbes(ds *atlasdata.Dataset) int { return len(ds.Probes) }
