package core

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

// Cause classifies what happened during an inter-connection gap,
// following the paper's priority ordering (§3.6): a network outage
// indicated by k-root wins; otherwise a reboot coincident with missing
// pings means a power outage; otherwise the gap had no outage.
type Cause int

// Gap causes.
const (
	NoOutage Cause = iota
	NetworkCause
	PowerCause
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case NetworkCause:
		return "network"
	case PowerCause:
		return "power"
	default:
		return "no-outage"
	}
}

// Gap is one inter-connection gap annotated with its outage cause and
// whether the probe's IPv4 address changed across it.
type Gap struct {
	Probe     atlasdata.ProbeID
	PrevEnd   simclock.Time
	NextStart simclock.Time
	Changed   bool
	Cause     Cause
	// OutageDuration is the detected outage length: the loss-run span
	// for network outages (first to last all-lost round, which the paper
	// notes under-estimates by up to eight minutes but does not
	// correct), the ping gap for power outages, zero otherwise.
	OutageDuration simclock.Duration
}

// gapSlack tolerates detector timestamps leaking slightly outside the
// literal gap (pre-outage rounds are up to one interval before the
// connection actually broke).
const gapSlack = 5 * simclock.Minute

// AssociateGaps walks a probe's IPv4-visible connection entries and
// classifies every inter-connection gap. entries must be time-sorted;
// outages and powers must be time-sorted per their detection order.
func AssociateGaps(entries []atlasdata.ConnLogEntry, networks []NetworkOutage, powers []PowerOutage) []Gap {
	return ClassifyGaps(GapSpans(entries), networks, powers)
}

// GapSpans extracts every inter-connection gap from a probe's
// (time-sorted) connection entries, with the address-change flag set but
// the cause still unclassified — the per-record half of AssociateGaps,
// which the streaming ingester maintains incrementally.
func GapSpans(entries []atlasdata.ConnLogEntry) []Gap {
	var out []Gap
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		g := Gap{
			Probe:     cur.Probe,
			PrevEnd:   prev.End,
			NextStart: cur.Start,
		}
		if prev.IsV4() && cur.IsV4() {
			g.Changed = prev.Addr != cur.Addr
		}
		out = append(out, g)
	}
	return out
}

// ClassifyGaps assigns each gap its outage cause from the surrounding
// evidence — the fold-time half of AssociateGaps, shared by the batch
// pipeline and the streaming analysis fold (which classifies retained
// gap events only at query time, because the power-outage evidence is
// retroactively reshaped by firmware filtering). The input gaps are not
// mutated; a classified copy is returned. gaps, networks and powers must
// each be time-sorted.
func ClassifyGaps(gaps []Gap, networks []NetworkOutage, powers []PowerOutage) []Gap {
	var out []Gap
	ni, pi := 0, 0
	for _, g := range gaps {
		lo, hi := g.PrevEnd.Add(-gapSlack), g.NextStart.Add(gapSlack)

		// Advance cursors past outages that ended before this gap.
		for ni < len(networks) && networks[ni].End.Before(lo) {
			ni++
		}
		for pi < len(powers) && powers[pi].RebootAt.Before(lo) {
			pi++
		}

		switch {
		case ni < len(networks) && !networks[ni].Start.After(hi):
			g.Cause = NetworkCause
			g.OutageDuration = networks[ni].Duration()
		case pi < len(powers) && !powers[pi].RebootAt.After(hi):
			g.Cause = PowerCause
			g.OutageDuration = powers[pi].Duration()
		default:
			g.Cause = NoOutage
			g.OutageDuration = 0
		}
		out = append(out, g)
	}
	return out
}
