package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

func TestDetectAdminRenumberingSynthetic(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	eventDay := 100
	// Eight stable probes that all change address on day 100.
	for p := 1; p <= 8; p++ {
		split := simclock.StudyStart.Add(simclock.Duration(eventDay)*day + simclock.Duration(p)*simclock.Hour)
		entries := []atlasdata.ConnLogEntry{
			v4e(p, simclock.StudyStart, split, "10.0.0."+itoa(p)),
			v4e(p, split.Add(20*simclock.Minute), simclock.StudyEnd.Add(-simclock.Hour), "10.1.0."+itoa(p)),
		}
		ds.Probes[atlasdata.ProbeID(p)] = atlasdata.ProbeMeta{
			ID: atlasdata.ProbeID(p), Country: "DE", Version: atlasdata.V3, ConnectedDays: 360,
		}
		ds.ConnLogs[atlasdata.ProbeID(p)] = entries
	}
	res := Filter(ds)
	events := DetectAdminRenumbering(res)
	if len(events) != 1 {
		t.Fatalf("events = %+v, want exactly one", events)
	}
	if events[0].Day != eventDay || events[0].Probes != 8 || events[0].ASN != 100 {
		t.Errorf("event = %+v", events[0])
	}
	if events[0].FracOfAS != 1.0 {
		t.Errorf("FracOfAS = %v", events[0].FracOfAS)
	}
}

func TestDetectAdminRenumberingIgnoresPeriodic(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	// Eight probes that change every single day (DTAG-style): the daily
	// baseline equals the population, so no day is a spike.
	for p := 1; p <= 8; p++ {
		var entries []atlasdata.ConnLogEntry
		for d := 0; d < 200; d++ {
			start := simclock.StudyStart.Add(simclock.Duration(d)*day + simclock.Duration(p)*simclock.Minute)
			entries = append(entries,
				v4e(p, start, start.Add(23*simclock.Hour), "10.0."+itoa(d/250)+"."+itoa(1+d%250)))
		}
		ds.Probes[atlasdata.ProbeID(p)] = atlasdata.ProbeMeta{
			ID: atlasdata.ProbeID(p), Country: "DE", Version: atlasdata.V3, ConnectedDays: 200,
		}
		ds.ConnLogs[atlasdata.ProbeID(p)] = entries
	}
	res := Filter(ds)
	if events := DetectAdminRenumbering(res); len(events) != 0 {
		t.Errorf("periodic AS produced admin events: %+v", events)
	}
}

func TestIntegrationAdminRenumberingRecovered(t *testing.T) {
	w, rep := paperWorld(t)
	events := DetectAdminRenumbering(rep.Filter)
	// Ground truth: MidBohemia Net (AS200090) renumbers on day 142.
	found := false
	for _, e := range events {
		if e.ASN == 200090 {
			found = true
			if e.Day < 141 || e.Day > 143 {
				t.Errorf("admin event on day %d, configured 142", e.Day)
			}
		} else {
			t.Errorf("spurious admin event: %+v", e)
		}
	}
	if !found {
		t.Error("configured administrative renumbering not detected")
	}
	// Truth journal corroborates: most MidBohemia probes recorded it.
	adminProbes := 0
	for _, truth := range w.Truth.Probes {
		if truth.ISP == "MidBohemia Net" && truth.AdminRenumbered {
			adminProbes++
		}
	}
	if adminProbes < 5 {
		t.Errorf("only %d probes recorded the admin renumbering", adminProbes)
	}
}
