package core

import (
	"sort"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/geo"
	"dynaddr/internal/stats"
)

// This file holds the stage seams the staged analysis engine
// (internal/engine) shares with the sequential Run: each Build* function
// computes one Report artefact from explicit inputs, so the two
// schedulers compose identical code and therefore identical reports.

// StageMetric records one stage's execution: wall time and how many
// records (probes, for per-probe stages) it processed.
type StageMetric struct {
	Stage   string        `json:"stage"`
	Wall    time.Duration `json:"wall_ns"`
	Records int           `json:"records"`
}

// RunMetrics describes how a report was computed: the worker-pool size
// and one entry per executed stage, in the engine's canonical stage
// order. The sequential core.Run leaves Report.Metrics nil; the staged
// engine fills it. Metrics are observability, not results — two reports
// over the same dataset are considered equal regardless of Metrics.
type RunMetrics struct {
	Parallelism int           `json:"parallelism"`
	Stages      []StageMetric `json:"stages"`
}

// Stage returns the metric for a named stage, or nil if it did not run.
func (m *RunMetrics) Stage(name string) *StageMetric {
	if m == nil {
		return nil
	}
	for i := range m.Stages {
		if m.Stages[i].Stage == name {
			return &m.Stages[i]
		}
	}
	return nil
}

// WithDefaults returns a copy of o with zero fields replaced by the
// paper's defaults (TopASes 5, Figure 3 "DE" at 3 years).
func (o Options) WithDefaults() Options {
	o.setDefaults()
	return o
}

// BuildTable2 counts probes per filtering category, in Table 2 order.
func BuildTable2(res *FilterResult) map[Category]int {
	t := make(map[Category]int)
	for _, c := range Categories {
		t[c] = res.Count(c)
	}
	return t
}

// BuildFigure1 aggregates per-probe TTF distributions by continent, in
// the paper's legend order.
func BuildFigure1(res *FilterResult, ttfs map[atlasdata.ProbeID]*stats.Weighted) []ASCDF {
	byCont := ByContinent(res)
	var out []ASCDF
	for _, cont := range geo.Continents {
		ids := byCont[cont]
		if len(ids) == 0 {
			continue
		}
		g := GroupTTF(ttfs, ids)
		out = append(out, ASCDF{
			Label:      string(cont),
			Probes:     len(ids),
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}
	return out
}

// BuildFigure2 selects the topASes ASes by probes yielding at least one
// bounded duration and plots their aggregate TTF CDFs.
func BuildFigure2(res *FilterResult, ttfs map[atlasdata.ProbeID]*stats.Weighted, byAS map[uint32][]atlasdata.ProbeID, topASes int) []ASCDF {
	type asSize struct {
		asn      uint32
		yielding int
	}
	var sizes []asSize
	for asn, ids := range byAS {
		y := 0
		for _, id := range ids {
			if ttfs[id].Len() > 0 {
				y++
			}
		}
		if y > 0 {
			sizes = append(sizes, asSize{asn, y})
		}
	}
	sort.Slice(sizes, func(i, j int) bool {
		if sizes[i].yielding != sizes[j].yielding {
			return sizes[i].yielding > sizes[j].yielding
		}
		return sizes[i].asn < sizes[j].asn
	})
	var out []ASCDF
	for i := 0; i < len(sizes) && i < topASes; i++ {
		asn := sizes[i].asn
		g := GroupTTF(ttfs, byAS[asn])
		out = append(out, ASCDF{
			ASN:        asn,
			Probes:     sizes[i].yielding,
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}
	return out
}

// BuildFigure3 plots TTF CDFs for the ASes of one country whose total
// address time reaches minYears.
func BuildFigure3(res *FilterResult, ttfs map[atlasdata.ProbeID]*stats.Weighted, byAS map[uint32][]atlasdata.ProbeID, country string, minYears float64) []ASCDF {
	countryAS := make(map[uint32][]atlasdata.ProbeID)
	for asn, ids := range byAS {
		var in []atlasdata.ProbeID
		for _, id := range ids {
			if res.Views[id].Meta.Country == country {
				in = append(in, id)
			}
		}
		if len(in) > 0 {
			countryAS[asn] = in
		}
	}
	var f3ASNs []uint32
	for asn, ids := range countryAS {
		g := GroupTTF(ttfs, ids)
		if g.Total()/(24*365) >= minYears {
			f3ASNs = append(f3ASNs, asn)
		}
	}
	sort.Slice(f3ASNs, func(i, j int) bool { return f3ASNs[i] < f3ASNs[j] })
	var out []ASCDF
	for _, asn := range f3ASNs {
		g := GroupTTF(ttfs, countryAS[asn])
		out = append(out, ASCDF{
			ASN:        asn,
			Probes:     len(countryAS[asn]),
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}
	return out
}

// BuildHourHists builds Figures 4/5: hour-of-day histograms for the two
// Table 5 rows with the most periodic probes.
func BuildHourHists(res *FilterResult, byAS map[uint32][]atlasdata.ProbeID, table5 []ASPeriodicRow) []HourHist {
	var out []HourHist
	for i := 0; i < len(table5) && i < 2; i++ {
		row := table5[i]
		out = append(out, HourHist{
			ASN:   row.ASN,
			D:     row.D,
			Hours: HourHistogram(res, byAS[row.ASN], row.D),
		})
	}
	return out
}

// BuildPacFigures builds Figures 7 and 8: P(ac|nw) and P(ac|pw) ECDFs
// for the topASes ASes by probes with enough network outages.
func BuildPacFigures(oa *OutageAnalysis, res *FilterResult, byAS map[uint32][]atlasdata.ProbeID, topASes int) (fig7, fig8 []PacECDF) {
	hasChanges := func(id atlasdata.ProbeID) bool { return len(res.Views[id].Changes) > 0 }
	return BuildPacFiguresFrom(oa.Stats, hasChanges, byAS, topASes)
}

// BuildPacFiguresFrom builds Figures 7 and 8 from a stats map, a
// changed-probe predicate and AS groups — the seam shared with the
// streaming fold. AS selection, ordering and sample gates follow
// BuildPacFigures.
func BuildPacFiguresFrom(all map[atlasdata.ProbeID]ProbeOutageStats, hasChanges func(atlasdata.ProbeID) bool, byAS map[uint32][]atlasdata.ProbeID, topASes int) (fig7, fig8 []PacECDF) {
	type pacSize struct {
		asn uint32
		n   int
	}
	var pacSizes []pacSize
	for asn, ids := range byAS {
		n := 0
		for _, id := range ids {
			st := all[id]
			if hasChanges(id) && st.NetworkGaps >= MinOutagesForPac {
				n++
			}
		}
		if n > 0 {
			pacSizes = append(pacSizes, pacSize{asn, n})
		}
	}
	sort.Slice(pacSizes, func(i, j int) bool {
		if pacSizes[i].n != pacSizes[j].n {
			return pacSizes[i].n > pacSizes[j].n
		}
		return pacSizes[i].asn < pacSizes[j].asn
	})
	for i := 0; i < len(pacSizes) && i < topASes; i++ {
		asn := pacSizes[i].asn
		nw := PacSampleOver(all, byAS[asn], false)
		pw := PacSampleOver(all, byAS[asn], true)
		fig7 = append(fig7, PacECDF{ASN: asn, Probes: nw.Len(), Points: nw.ECDF()})
		fig8 = append(fig8, PacECDF{ASN: asn, Probes: pw.Len(), Points: pw.ECDF()})
	}
	return fig7, fig8
}

// BuildFigure9 picks the contrast ASes (pinned, the paper's LGI/Orange
// pair when present, else the Table 6 extremes) and bins their outages
// by duration.
func BuildFigure9(oa *OutageAnalysis, res *FilterResult, byAS map[uint32][]atlasdata.ProbeID, table6 []ASOutageRow, pinned []uint32) []Figure9AS {
	f9 := pinned
	if len(f9) == 0 {
		if _, okL := byAS[6830]; okL {
			if _, okO := byAS[3215]; okO {
				f9 = []uint32{6830, 3215}
			}
		}
	}
	if len(f9) == 0 && len(table6) > 0 {
		hi, lo := table6[0], table6[0]
		for _, r := range table6 {
			if r.NwOver80 > hi.NwOver80 {
				hi = r
			}
			if r.NwOver80 < lo.NwOver80 {
				lo = r
			}
		}
		f9 = []uint32{lo.ASN, hi.ASN}
	}
	var out []Figure9AS
	for _, asn := range f9 {
		if ids, ok := byAS[asn]; ok {
			out = append(out, Figure9AS{
				ASN:  asn,
				Bins: oa.DurationBins(res, ids),
			})
		}
	}
	return out
}
