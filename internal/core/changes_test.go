package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

func v4e(probe int, start, end simclock.Time, addr string) atlasdata.ConnLogEntry {
	return atlasdata.ConnLogEntry{
		Probe: atlasdata.ProbeID(probe), Start: start, End: end,
		Family: atlasdata.V4, Addr: ip4.MustParseAddr(addr),
	}
}

func v6e(probe int, start, end simclock.Time) atlasdata.ConnLogEntry {
	return atlasdata.ConnLogEntry{
		Probe: atlasdata.ProbeID(probe), Start: start, End: end,
		Family: atlasdata.V6, V6Addr: "2001:db8::1",
	}
}

func TestV4ChangesBasic(t *testing.T) {
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 100, "10.0.0.1"),
		v4e(1, 200, 300, "10.0.0.2"),
		v4e(1, 400, 500, "10.0.0.2"),
		v4e(1, 600, 700, "10.0.0.3"),
	}
	got := V4Changes(entries)
	if len(got) != 2 {
		t.Fatalf("changes = %d, want 2", len(got))
	}
	if got[0].From.String() != "10.0.0.1" || got[0].To.String() != "10.0.0.2" {
		t.Errorf("first change = %v -> %v", got[0].From, got[0].To)
	}
	if got[0].PrevEnd != 100 || got[0].NextStart != 200 {
		t.Errorf("first change gap = [%v, %v]", got[0].PrevEnd, got[0].NextStart)
	}
	if got[1].From.String() != "10.0.0.2" || got[1].To.String() != "10.0.0.3" {
		t.Errorf("second change = %v -> %v", got[1].From, got[1].To)
	}
}

func TestV4ChangesSkipsV6Boundaries(t *testing.T) {
	// An IPv6 session between two different v4 addresses hides the
	// change instant, so no change is recorded across it.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 100, "10.0.0.1"),
		v6e(1, 200, 300),
		v4e(1, 400, 500, "10.0.0.2"),
	}
	if got := V4Changes(entries); len(got) != 0 {
		t.Errorf("changes across v6 = %d, want 0", len(got))
	}
}

func TestV4ChangesEmptyAndSingle(t *testing.T) {
	if got := V4Changes(nil); got != nil {
		t.Error("nil entries should yield nil")
	}
	one := []atlasdata.ConnLogEntry{v4e(1, 0, 100, "10.0.0.1")}
	if got := V4Changes(one); len(got) != 0 {
		t.Error("single entry yields no change")
	}
}

func TestV4DurationsPaperTable1(t *testing.T) {
	// Table 1: eight entries, seven changes, durations known only for
	// the middle six addresses.
	mk := func(sd, sh, sm, ss, ed, eh, em, es int, addr string) atlasdata.ConnLogEntry {
		return v4e(206,
			simclock.Date(2015, 1, sd, sh, sm, ss),
			simclock.Date(2015, 1, ed, eh, em, es), addr)
	}
	entries := []atlasdata.ConnLogEntry{
		// First entry starts in 2014 in the paper; January stands in.
		mk(1, 1, 21, 34, 1, 2, 57, 37, "91.55.174.103"),
		mk(1, 3, 22, 16, 1, 17, 34, 11, "91.55.169.37"),
		mk(1, 18, 0, 54, 1, 18, 42, 31, "91.55.132.252"),
		mk(1, 19, 6, 46, 2, 2, 19, 16, "91.55.155.115"),
		mk(2, 2, 41, 55, 3, 2, 18, 0, "91.55.141.95"),
		mk(3, 2, 43, 14, 4, 2, 16, 59, "91.55.165.167"),
		mk(4, 2, 40, 58, 5, 2, 15, 45, "91.55.163.252"),
		mk(5, 2, 38, 39, 6, 2, 14, 48, "91.55.141.63"),
	}
	durations := V4Durations(entries)
	if len(durations) != 6 {
		t.Fatalf("durations = %d, want 6 (first and last unknown)", len(durations))
	}
	wantHours := []float64{14.2, 0.7, 7.2, 23.6, 23.6, 23.6}
	for i, d := range durations {
		if got := d.Hours(); got < wantHours[i]-0.1 || got > wantHours[i]+0.1 {
			t.Errorf("duration %d = %.1fh, want ~%.1fh", i, got, wantHours[i])
		}
	}
	if durations[0].Addr.String() != "91.55.169.37" {
		t.Errorf("first bounded duration addr = %v", durations[0].Addr)
	}
}

func TestV4DurationsMergesRuns(t *testing.T) {
	// Reconnections keeping the address extend the same duration.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 100, "10.0.0.1"),
		v4e(1, 200, 300, "10.0.0.2"),
		v4e(1, 400, 900, "10.0.0.2"),
		v4e(1, 1000, 1100, "10.0.0.3"),
	}
	durations := V4Durations(entries)
	if len(durations) != 1 {
		t.Fatalf("durations = %d, want 1", len(durations))
	}
	if durations[0].Start != 200 || durations[0].End != 900 {
		t.Errorf("merged duration = [%v, %v], want [200, 900]", durations[0].Start, durations[0].End)
	}
}

func TestV4DurationsV6ResetsSegments(t *testing.T) {
	// v6 entries truncate segments: durations adjacent to a v6 entry
	// have unknown bounds.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 100, "10.0.0.1"),
		v4e(1, 200, 300, "10.0.0.2"),
		v4e(1, 350, 380, "10.0.0.3"),
		v6e(1, 400, 500),
		v4e(1, 600, 700, "10.0.0.4"),
		v4e(1, 800, 900, "10.0.0.5"),
		v4e(1, 950, 990, "10.0.0.6"),
	}
	durations := V4Durations(entries)
	// Segment 1: addrs 1,2,3 -> one bounded (addr 2).
	// Segment 2: addrs 4,5,6 -> one bounded (addr 5).
	if len(durations) != 2 {
		t.Fatalf("durations = %d, want 2", len(durations))
	}
	if durations[0].Addr.String() != "10.0.0.2" || durations[1].Addr.String() != "10.0.0.5" {
		t.Errorf("bounded durations = %v, %v", durations[0].Addr, durations[1].Addr)
	}
}

func TestStripTestingEntry(t *testing.T) {
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 100, "193.0.0.78"),
		v4e(1, 200, 300, "10.0.0.2"),
	}
	stripped, ok := StripTestingEntry(entries)
	if !ok || len(stripped) != 1 || stripped[0].Addr.String() != "10.0.0.2" {
		t.Errorf("StripTestingEntry = %v, %v", stripped, ok)
	}
	same, ok := StripTestingEntry(stripped)
	if ok || len(same) != 1 {
		t.Error("second strip should be a no-op")
	}
	empty, ok := StripTestingEntry(nil)
	if ok || empty != nil {
		t.Error("empty strip should be a no-op")
	}
}
