package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
)

// PrefixChangeRow is one row of the paper's Table 7: for a set of
// address changes, how many crossed a BGP prefix, a /16, and a /8
// boundary.
type PrefixChangeRow struct {
	ASN uint32 // 0 for the all-probes summary row

	Changes  int // total address changes considered
	DiffBGP  int
	DiffS16  int
	DiffS8   int
	Unrouted int // changes whose endpoints had no pfx2as mapping
}

// Fractions of total changes; zero when no changes.
func frac(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// FracBGP returns the share of changes that crossed BGP prefixes.
func (r PrefixChangeRow) FracBGP() float64 { return frac(r.DiffBGP, r.Changes) }

// FracS16 returns the share of changes that crossed /16s.
func (r PrefixChangeRow) FracS16() float64 { return frac(r.DiffS16, r.Changes) }

// FracS8 returns the share of changes that crossed /8s.
func (r PrefixChangeRow) FracS8() float64 { return frac(r.DiffS8, r.Changes) }

// ProbePrefixChanges computes one probe's Table 7 counters. Counters
// are integers, so summing per-probe rows in any order reproduces the
// sequential accumulation exactly — the parallel engine's fan-out seam
// for the prefix stage.
func ProbePrefixChanges(ds *atlasdata.Dataset, view *ProbeView) PrefixChangeRow {
	var row PrefixChangeRow
	analyzePrefixChanges(ds, view, &row)
	return row
}

// Accumulate folds another row's counters into r (the ASN is kept).
func (r *PrefixChangeRow) Accumulate(o PrefixChangeRow) {
	r.Changes += o.Changes
	r.DiffBGP += o.DiffBGP
	r.DiffS16 += o.DiffS16
	r.DiffS8 += o.DiffS8
	r.Unrouted += o.Unrouted
}

// analyzePrefixChanges accumulates Table 7 counters over one probe's
// changes. The BGP prefix of each endpoint comes from the month-matched
// pfx2as snapshot, the paper's §6 procedure.
func analyzePrefixChanges(ds *atlasdata.Dataset, view *ProbeView, row *PrefixChangeRow) {
	for _, ch := range view.Changes {
		_, fromPfx, okFrom := ds.Pfx2AS.Lookup(ch.From, ch.PrevEnd)
		_, toPfx, okTo := ds.Pfx2AS.Lookup(ch.To, ch.NextStart)
		row.Changes++
		if !okFrom || !okTo {
			row.Unrouted++
			continue
		}
		if fromPfx != toPfx {
			row.DiffBGP++
		}
		if ch.From.Slash16() != ch.To.Slash16() {
			row.DiffS16++
		}
		if ch.From.Slash8() != ch.To.Slash8() {
			row.DiffS8++
		}
	}
}

// PrefixChangesAll computes the Table 7 summary row over every
// AS-analyzable probe.
func PrefixChangesAll(ds *atlasdata.Dataset, res *FilterResult) PrefixChangeRow {
	var row PrefixChangeRow
	for _, id := range res.ASProbes {
		analyzePrefixChanges(ds, res.Views[id], &row)
	}
	return row
}

// PrefixChangesByAS computes per-AS Table 7 rows for ASes with at least
// one change, sorted by change count descending then ASN.
func PrefixChangesByAS(ds *atlasdata.Dataset, res *FilterResult) []PrefixChangeRow {
	groups := ByAS(res)
	var rows []PrefixChangeRow
	for asn, ids := range groups {
		row := PrefixChangeRow{ASN: asn}
		for _, id := range ids {
			analyzePrefixChanges(ds, res.Views[id], &row)
		}
		if row.Changes > 0 {
			rows = append(rows, row)
		}
	}
	sortPrefixRows(rows)
	return rows
}

func sortPrefixRows(rows []PrefixChangeRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Changes != rows[j].Changes {
			return rows[i].Changes > rows[j].Changes
		}
		return rows[i].ASN < rows[j].ASN
	})
}

// PrefixAllFrom computes the Table 7 summary row from precomputed
// per-probe rows. Counters are integers, so the result matches
// PrefixChangesAll exactly whatever schedule produced perProbe.
func PrefixAllFrom(res *FilterResult, perProbe map[atlasdata.ProbeID]PrefixChangeRow) PrefixChangeRow {
	return PrefixAllOver(res.ASProbes, perProbe)
}

// PrefixAllOver computes the summary row over an explicit probe list —
// the seam shared with the streaming fold.
func PrefixAllOver(ids []atlasdata.ProbeID, perProbe map[atlasdata.ProbeID]PrefixChangeRow) PrefixChangeRow {
	var row PrefixChangeRow
	for _, id := range ids {
		row.Accumulate(perProbe[id])
	}
	return row
}

// PrefixRowsFrom aggregates precomputed per-probe rows into the per-AS
// Table 7 rows (see PrefixChangesByAS for the ordering contract).
func PrefixRowsFrom(res *FilterResult, perProbe map[atlasdata.ProbeID]PrefixChangeRow) []PrefixChangeRow {
	return PrefixRowsOver(ByAS(res), perProbe)
}

// PrefixRowsOver aggregates per-probe rows into per-AS rows over
// arbitrary AS groups — the seam shared with the streaming fold.
func PrefixRowsOver(groups map[uint32][]atlasdata.ProbeID, perProbe map[atlasdata.ProbeID]PrefixChangeRow) []PrefixChangeRow {
	var rows []PrefixChangeRow
	for asn, ids := range groups {
		row := PrefixChangeRow{ASN: asn}
		for _, id := range ids {
			row.Accumulate(perProbe[id])
		}
		if row.Changes > 0 {
			rows = append(rows, row)
		}
	}
	sortPrefixRows(rows)
	return rows
}
