package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/stats"
)

// periodicThreshold is the paper's classification bound (§4.4): a probe
// is periodic at duration d when its total time fraction at d exceeds
// 0.25 — low enough to tolerate outage-shortened and harmonic-lengthened
// sessions around the true period.
const periodicThreshold = 0.25

// maxSlack is the paper's tolerance when testing whether durations
// exceed the period: d is adjusted to d + 5% (§4.4.2).
const maxSlack = 1.05

// minDurationsForPeriodic guards the classifier against trivial modes: a
// probe with only a handful of bounded durations always concentrates a
// quarter of its mass somewhere. Periodicity needs a recurring pattern.
const minDurationsForPeriodic = 4

// maxPeriodicHours bounds plausible ISP session caps; the longest the
// paper observes is BT's two weeks (337h). Months-long "modes" are
// coincidences of sparse DHCP histories, not policy.
const maxPeriodicHours = 21 * 24

// PeriodicProbe is one probe classified as periodically renumbered.
type PeriodicProbe struct {
	Probe atlasdata.ProbeID
	// D is the periodic duration in (quantised) hours.
	D float64
	// Frac is the probe's total time fraction at D.
	Frac float64
	// MaxHours is the probe's largest bounded address duration, raw.
	MaxHours float64
	// MaxLeD reports MaxHours <= D+5%.
	MaxLeD bool
	// Harmonic reports that every duration is at or under D+5% or within
	// 5% of an integer multiple of D (§4.4.2).
	Harmonic bool
}

// ClassifyPeriodic decides whether one probe is periodic from its
// duration list, returning the dominant periodic duration if so. When
// several quantised durations exceed the threshold (only possible near
// 0.25 each), the one with the largest fraction wins, ties to the longer
// duration (a skipped reset doubles apparent mass at 2d; preferring the
// longer of equals would be wrong, so prefer the shorter — the base
// period — on ties).
func ClassifyPeriodic(durations []AddressDuration) (PeriodicProbe, bool) {
	if len(durations) == 0 {
		return PeriodicProbe{}, false
	}
	hours := make([]float64, len(durations))
	for i, d := range durations {
		hours[i] = d.Hours()
	}
	return ClassifyPeriodicHours(durations[0].Probe, hours)
}

// ClassifyPeriodicHours is ClassifyPeriodic over raw duration lengths in
// hours — the detector-core seam shared with the streaming ingester,
// which maintains each probe's closed-duration list incrementally. The
// list must include every bounded duration, non-positive ones included
// (they count toward the minimum-durations gate exactly as they do in a
// batch duration list, while TTFFromHours skips them).
func ClassifyPeriodicHours(probe atlasdata.ProbeID, hours []float64) (PeriodicProbe, bool) {
	if len(hours) < minDurationsForPeriodic {
		return PeriodicProbe{}, false
	}
	ttf := TTFFromHours(hours)
	var best stats.Point
	found := false
	for _, p := range ttf.Modes(periodicThreshold) {
		if p.X > maxPeriodicHours {
			continue
		}
		if !found || p.Y > best.Y || (p.Y == best.Y && p.X < best.X) {
			best = p
			found = true
		}
	}
	if !found {
		return PeriodicProbe{}, false
	}
	pp := PeriodicProbe{
		Probe:    probe,
		D:        best.X,
		Frac:     best.Y,
		Harmonic: true,
	}
	limit := best.X * maxSlack
	for _, h := range hours {
		if h > pp.MaxHours {
			pp.MaxHours = h
		}
		if h <= limit {
			continue
		}
		// Longer than the period: harmonic only if near a multiple of D.
		k := float64(int(h/best.X + 0.5))
		if k < 2 || h < (k-0.05)*best.X || h > (k+0.05)*best.X {
			pp.Harmonic = false
		}
	}
	pp.MaxLeD = pp.MaxHours <= limit
	return pp, true
}

// ASPeriodicRow is one row of the paper's Table 5: an autonomous system
// and a periodic duration, with the population statistics of the probes
// periodic at that duration.
type ASPeriodicRow struct {
	ASN uint32
	// D is the periodic duration in hours.
	D float64
	// N is the AS's number of probes with at least one address change.
	N int
	// NPeriodic is the number of probes with f_D > 0.25 at this D.
	NPeriodic int
	// FracOver50 and FracOver75 are the shares of NPeriodic with f_D
	// above 0.5 and 0.75.
	FracOver50 float64
	FracOver75 float64
	// FracMaxLeD is the share of NPeriodic whose maximum duration stayed
	// within D+5%.
	FracMaxLeD float64
	// FracHarmonic is the share of NPeriodic all of whose durations are
	// within D+5% or near a multiple of D.
	FracHarmonic float64
}

// Table5MinProbes and Table5MinPeriodic are the paper's row inclusion
// bounds: ASes with at least five changed probes of which at least three
// are periodic at the row's duration.
const (
	Table5MinProbes   = 5
	Table5MinPeriodic = 3
)

// PeriodicByAS computes Table 5 rows over the AS-analyzable probes.
// Rows are sorted by NPeriodic descending, then ASN, then D — the
// paper's presentation order.
func PeriodicByAS(res *FilterResult) []ASPeriodicRow {
	return PeriodicRows(res, ClassifyPeriodicProbes(res))
}

// ClassifyPeriodicProbes runs the per-probe periodic classifier over
// every analyzable probe, returning only the probes that classified as
// periodic. Each probe is independent — the parallel engine's fan-out
// seam for the periodic stage.
func ClassifyPeriodicProbes(res *FilterResult) map[atlasdata.ProbeID]PeriodicProbe {
	perProbe := make(map[atlasdata.ProbeID]PeriodicProbe)
	for id, view := range res.Views {
		if pp, ok := ClassifyPeriodic(V4Durations(view.Entries)); ok {
			perProbe[id] = pp
		}
	}
	return perProbe
}

// PeriodicRows aggregates a precomputed per-probe classification into
// Table 5 rows (see PeriodicByAS for the ordering contract).
func PeriodicRows(res *FilterResult, perProbe map[atlasdata.ProbeID]PeriodicProbe) []ASPeriodicRow {
	return PeriodicRowsOver(ByAS(res), perProbe)
}

// PeriodicRowsOver aggregates a per-probe classification into Table 5
// rows over arbitrary AS groups — the seam shared by the batch pipeline
// (groups from ByAS) and the streaming fold (groups built from per-probe
// event state). Ordering follows PeriodicByAS.
func PeriodicRowsOver(groups map[uint32][]atlasdata.ProbeID, perProbe map[atlasdata.ProbeID]PeriodicProbe) []ASPeriodicRow {
	var rows []ASPeriodicRow
	for asn, ids := range groups {
		if len(ids) < Table5MinProbes {
			continue
		}
		byD := make(map[float64][]PeriodicProbe)
		for _, id := range ids {
			if pp, ok := perProbe[id]; ok {
				byD[pp.D] = append(byD[pp.D], pp)
			}
		}
		for d, pps := range byD {
			if len(pps) < Table5MinPeriodic {
				continue
			}
			row := ASPeriodicRow{ASN: asn, D: d, N: len(ids), NPeriodic: len(pps)}
			var over50, over75, maxLe, harmonic int
			for _, pp := range pps {
				if pp.Frac > 0.5 {
					over50++
				}
				if pp.Frac > 0.75 {
					over75++
				}
				if pp.MaxLeD {
					maxLe++
				}
				if pp.Harmonic {
					harmonic++
				}
			}
			n := float64(len(pps))
			row.FracOver50 = float64(over50) / n
			row.FracOver75 = float64(over75) / n
			row.FracMaxLeD = float64(maxLe) / n
			row.FracHarmonic = float64(harmonic) / n
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].NPeriodic != rows[j].NPeriodic {
			return rows[i].NPeriodic > rows[j].NPeriodic
		}
		if rows[i].ASN != rows[j].ASN {
			return rows[i].ASN < rows[j].ASN
		}
		return rows[i].D < rows[j].D
	})
	return rows
}

// PeriodicAll computes the Table 5 "All" summary row for one duration d
// (hours) across every AS-analyzable probe.
func PeriodicAll(res *FilterResult, d float64) ASPeriodicRow {
	return PeriodicAllFrom(res, ClassifyPeriodicProbes(res), d)
}

// PeriodicAllFrom computes the "All" row from a precomputed per-probe
// classification, so one classification pass serves every summary
// duration.
func PeriodicAllFrom(res *FilterResult, perProbe map[atlasdata.ProbeID]PeriodicProbe, d float64) ASPeriodicRow {
	return PeriodicAllOver(res.ASProbes, perProbe, d)
}

// PeriodicAllOver computes the "All" row over an explicit probe list —
// the seam shared with the streaming fold, whose AS-analyzable set comes
// from per-probe event state rather than a FilterResult.
func PeriodicAllOver(ids []atlasdata.ProbeID, perProbe map[atlasdata.ProbeID]PeriodicProbe, d float64) ASPeriodicRow {
	row := ASPeriodicRow{D: d, N: len(ids)}
	var over50, over75, maxLe, harmonic int
	for _, id := range ids {
		pp, ok := perProbe[id]
		if !ok || pp.D != d {
			continue
		}
		row.NPeriodic++
		if pp.Frac > 0.5 {
			over50++
		}
		if pp.Frac > 0.75 {
			over75++
		}
		if pp.MaxLeD {
			maxLe++
		}
		if pp.Harmonic {
			harmonic++
		}
	}
	if row.NPeriodic > 0 {
		n := float64(row.NPeriodic)
		row.FracOver50 = float64(over50) / n
		row.FracOver75 = float64(over75) / n
		row.FracMaxLeD = float64(maxLe) / n
		row.FracHarmonic = float64(harmonic) / n
	}
	return row
}

// HourHistogram counts, per GMT hour of day, the endings of address
// durations whose quantised length equals d hours, across the given
// probes — Figures 4 and 5. The change instant is taken as the end of
// the last connection using the address, the moment the session was
// torn down.
func HourHistogram(res *FilterResult, ids []atlasdata.ProbeID, d float64) [24]int {
	var hist [24]int
	for _, id := range ids {
		view, ok := res.Views[id]
		if !ok {
			continue
		}
		for _, dur := range V4Durations(view.Entries) {
			if QuantizeHours(dur.Hours()) == d {
				hist[dur.End.HourOfDay()]++
			}
		}
	}
	return hist
}
