// Package core implements the paper's analysis pipeline: address-change
// extraction from connection logs (§3.1), probe filtering (§3.2-3.3,
// Table 2), the total-time-fraction metric and periodic-renumbering
// detection (§4, Table 5, Figures 1-5), outage detection and
// outage-to-gap association (§3.4-3.6, §5, Table 6, Figures 6-9), and
// dynamic-prefix analysis (§6, Table 7).
package core

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// AddressChange is one observed IPv4 address change: two consecutive
// IPv4 connection-log entries with different peer addresses. The change
// happened somewhere inside the inter-connection gap (PrevEnd,
// NextStart).
type AddressChange struct {
	Probe   atlasdata.ProbeID
	From    ip4.Addr
	To      ip4.Addr
	PrevEnd simclock.Time
	// NextStart is when the first connection from the new address began.
	NextStart simclock.Time
}

// V4Changes extracts address changes from a probe's connection log.
// Only directly consecutive IPv4 entries count: if an IPv6 session
// intervenes, we cannot tell when (or whether, exactly once) the IPv4
// address changed, which is the paper's reason for filtering dual-stack
// probes (§3.2).
func V4Changes(entries []atlasdata.ConnLogEntry) []AddressChange {
	var out []AddressChange
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		if !prev.IsV4() || !cur.IsV4() {
			continue
		}
		if prev.Addr == cur.Addr {
			continue
		}
		out = append(out, AddressChange{
			Probe:     cur.Probe,
			From:      prev.Addr,
			To:        cur.Addr,
			PrevEnd:   prev.End,
			NextStart: cur.Start,
		})
	}
	return out
}

// AddressDuration is the span for which one IPv4 address stayed assigned
// to a probe, bounded by an observed change on both sides. Durations of
// the first and last addresses in a log are unknown (paper Table 1) and
// are never emitted.
type AddressDuration struct {
	Probe atlasdata.ProbeID
	Addr  ip4.Addr
	// Start is when the address was first observed in use (start of the
	// first connection using it); End is the end of the last connection
	// using it.
	Start simclock.Time
	End   simclock.Time
}

// Duration returns the assignment span.
func (d AddressDuration) Duration() simclock.Duration { return d.End.Sub(d.Start) }

// Hours returns the assignment span in hours, the unit of the paper's
// duration plots.
func (d AddressDuration) Hours() float64 { return d.Duration().Hours() }

// V4Durations extracts bounded address durations from a probe's
// connection log: maximal runs of consecutive IPv4 entries sharing an
// address, where both the run's beginning and end are delimited by an
// observed IPv4 address change. Runs adjacent to the log boundaries or
// to IPv6 entries have unknown extent and are dropped.
func V4Durations(entries []atlasdata.ConnLogEntry) []AddressDuration {
	var out []AddressDuration
	// Split into maximal segments of consecutive IPv4 entries; v6
	// entries make neighbouring run boundaries unknowable.
	segStart := -1
	flush := func(end int) {
		if segStart < 0 {
			return
		}
		seg := entries[segStart:end]
		segStart = -1
		// Group into address runs.
		runEnd := len(seg)
		type run struct {
			addr       ip4.Addr
			start, end simclock.Time
		}
		var runs []run
		for i := 0; i < runEnd; {
			j := i
			for j < runEnd && seg[j].Addr == seg[i].Addr {
				j++
			}
			runs = append(runs, run{addr: seg[i].Addr, start: seg[i].Start, end: seg[j-1].End})
			i = j
		}
		// Interior runs are bounded by changes on both sides.
		for k := 1; k < len(runs)-1; k++ {
			out = append(out, AddressDuration{
				Probe: seg[0].Probe,
				Addr:  runs[k].addr,
				Start: runs[k].start,
				End:   runs[k].end,
			})
		}
	}
	for i, e := range entries {
		if e.IsV4() {
			if segStart < 0 {
				segStart = i
			}
			continue
		}
		flush(i)
	}
	flush(len(entries))
	return out
}

// StripTestingEntry removes a leading connection-log entry whose address
// is the RIPE NCC testing address 193.0.0.78 (paper §3.3). It reports
// whether an entry was removed.
func StripTestingEntry(entries []atlasdata.ConnLogEntry) ([]atlasdata.ConnLogEntry, bool) {
	if len(entries) > 0 && entries[0].IsV4() && entries[0].Addr == ip4.TestingAddr {
		return entries[1:], true
	}
	return entries, false
}
