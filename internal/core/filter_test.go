package core

import (
	"testing"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/simclock"
)

// buildDS assembles a dataset with one routed /16 per AS used in tests.
func buildDS(t *testing.T) *atlasdata.Dataset {
	t.Helper()
	ds := atlasdata.NewDataset()
	tbl, err := pfx2as.NewTable([]pfx2as.Entry{
		{Prefix: ip4.MustParsePrefix("10.0.0.0/16"), ASN: asdb.ASN(100)},
		{Prefix: ip4.MustParsePrefix("10.1.0.0/16"), ASN: asdb.ASN(100)},
		{Prefix: ip4.MustParsePrefix("20.0.0.0/16"), ASN: asdb.ASN(200)},
		{Prefix: ip4.MustParsePrefix("193.0.0.0/21"), ASN: asdb.ASN(3333)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for m := pfx2as.Month(201501); m <= 201512; m++ {
		ds.Pfx2AS.Put(m, tbl)
	}
	return ds
}

func addProbe(ds *atlasdata.Dataset, id int, version atlasdata.ProbeVersion, tags []string, entries ...atlasdata.ConnLogEntry) {
	pid := atlasdata.ProbeID(id)
	var secs int64
	for _, e := range entries {
		secs += int64(e.End.Sub(e.Start))
	}
	ds.Probes[pid] = atlasdata.ProbeMeta{
		ID: pid, Country: "DE", Version: version, Tags: tags,
		ConnectedDays: float64(secs) / 86400,
	}
	ds.ConnLogs[pid] = entries
}

// longSessions builds entries spanning most of the year so probes pass
// the 30-day filter. addrs lists the address per ~37-day session.
func longSessions(probe int, addrs ...string) []atlasdata.ConnLogEntry {
	var out []atlasdata.ConnLogEntry
	t := simclock.StudyStart
	span := simclock.Duration(37 * simclock.Day)
	for _, a := range addrs {
		if a == "v6" {
			out = append(out, v6e(probe, t, t.Add(span)))
		} else {
			out = append(out, v4e(probe, t, t.Add(span), a))
		}
		t = t.Add(span + 20*simclock.Minute)
	}
	return out
}

func TestFilterCategories(t *testing.T) {
	ds := buildDS(t)

	// 1: short-lived.
	addProbe(ds, 1, atlasdata.V3, nil, v4e(1, 0, 86400, "10.0.0.1"))
	// 2: never changed.
	addProbe(ds, 2, atlasdata.V3, nil, longSessions(2, "10.0.0.2", "10.0.0.2", "10.0.0.2", "10.0.0.2")...)
	// 3: dual stack.
	addProbe(ds, 3, atlasdata.V3, nil, longSessions(3, "10.0.0.3", "v6", "10.0.0.4", "10.0.0.5")...)
	// 4: IPv6 only.
	addProbe(ds, 4, atlasdata.V3, nil, longSessions(4, "v6", "v6", "v6", "v6")...)
	// 5: tagged multihomed.
	addProbe(ds, 5, atlasdata.V3, []string{atlasdata.TagMultihomed},
		longSessions(5, "10.0.0.6", "10.0.0.7", "10.0.0.6", "10.0.0.8")...)
	// 6: behavioural multihomed — fixed 10.0.0.9 alternating.
	addProbe(ds, 6, atlasdata.V3, nil,
		longSessions(6, "10.0.0.9", "10.0.1.1", "10.0.0.9", "10.0.1.2", "10.0.0.9", "10.0.1.3")...)
	// 7: testing-only: testing address then one stable address.
	addProbe(ds, 7, atlasdata.V3, nil,
		longSessions(7, "193.0.0.78", "10.0.0.10", "10.0.0.10", "10.0.0.10")...)
	// 8: analyzable, single AS.
	addProbe(ds, 8, atlasdata.V3, nil,
		longSessions(8, "10.0.0.11", "10.0.1.12", "10.0.0.13", "10.0.1.14")...)
	// 9: analyzable but multi-AS (10/8 AS100 -> 20/8 AS200).
	addProbe(ds, 9, atlasdata.V3, nil,
		longSessions(9, "10.0.0.15", "10.0.0.16", "20.0.0.1", "20.0.0.2")...)

	res := Filter(ds)

	wants := map[Category][]atlasdata.ProbeID{
		CatShortLived:            {1},
		CatNeverChanged:          {2},
		CatDualStack:             {3},
		CatIPv6Only:              {4},
		CatTaggedMultihomed:      {5},
		CatBehaviouralMultihomed: {6},
		CatTestingOnly:           {7},
		CatAnalyzable:            {8, 9},
	}
	for cat, want := range wants {
		got := res.ByCategory[cat]
		if len(got) != len(want) {
			t.Errorf("%v: got %v, want %v", cat, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: got %v, want %v", cat, got, want)
			}
		}
	}

	if len(res.GeoProbes) != 2 {
		t.Errorf("GeoProbes = %v", res.GeoProbes)
	}
	if len(res.ASProbes) != 1 || res.ASProbes[0] != 8 {
		t.Errorf("ASProbes = %v", res.ASProbes)
	}
	if !res.Views[9].MultiAS {
		t.Error("probe 9 should be multi-AS")
	}
	if res.Views[8].ASN != 100 {
		t.Errorf("probe 8 home AS = %v, want 100", res.Views[8].ASN)
	}
}

func TestFilterStripsTestingBeforeChangeCount(t *testing.T) {
	ds := buildDS(t)
	// Testing address followed by real changes: analyzable, and the
	// testing entry must not appear in the view.
	addProbe(ds, 1, atlasdata.V3, nil,
		longSessions(1, "193.0.0.78", "10.0.0.1", "10.0.1.2", "10.0.0.3")...)
	res := Filter(ds)
	view, ok := res.Views[1]
	if !ok {
		t.Fatal("probe 1 should be analyzable")
	}
	if len(view.Entries) != 3 {
		t.Errorf("entries = %d, want 3 after strip", len(view.Entries))
	}
	if len(view.Changes) != 2 {
		t.Errorf("changes = %d, want 2", len(view.Changes))
	}
}

func TestAlternatingDetector(t *testing.T) {
	mk := func(addrs ...string) []atlasdata.ConnLogEntry {
		var out []atlasdata.ConnLogEntry
		t0 := simclock.Time(0)
		for _, a := range addrs {
			out = append(out, v4e(1, t0, t0+100, a))
			t0 += 200
		}
		return out
	}
	if !alternatingAddresses(mk("1.1.1.1", "2.2.2.2", "1.1.1.1", "3.3.3.3", "1.1.1.1", "4.4.4.4")) {
		t.Error("clear alternation not detected")
	}
	if alternatingAddresses(mk("1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4", "5.5.5.5", "6.6.6.6")) {
		t.Error("monotone renumbering misdetected")
	}
	if alternatingAddresses(mk("1.1.1.1", "2.2.2.2", "1.1.1.1")) {
		t.Error("too few runs to conclude")
	}
	// One accidental return among many runs must not trigger: two
	// separated runs only.
	if alternatingAddresses(mk("1.1.1.1", "2.2.2.2", "3.3.3.3", "1.1.1.1", "4.4.4.4", "5.5.5.5", "6.6.6.6", "7.7.7.7", "8.8.8.8")) {
		t.Error("single accidental reuse misdetected")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range Categories {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("category %d has no label", int(c))
		}
	}
}
