package core

import (
	"testing"

	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
)

// TestSparseVsDenseKRootEquivalence validates the sparse k-root
// emission documented in DESIGN.md: because the detectors are anchored
// (network outages at all-lost runs, power outages at reboots), the
// analysis must produce identical outage detections whether background
// rounds arrive every 4 minutes (the real probes' cadence) or every 6
// hours (the default sparse heartbeat).
func TestSparseVsDenseKRootEquivalence(t *testing.T) {
	build := func(heartbeat simclock.Duration) (*sim.World, *FilterResult, *OutageAnalysis) {
		cfg := sim.DefaultConfig()
		cfg.Seed = 31337
		cfg.Scale = 0.06
		// Two simulated months keep the dense (4-minute) run cheap.
		cfg.Start = simclock.StudyStart
		cfg.End = simclock.StudyStart.Add(61 * simclock.Day)
		cfg.FirmwareDays = []int{24}
		cfg.KRootHeartbeat = heartbeat
		w, err := sim.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := Filter(w.Dataset)
		return w, res, AnalyzeOutages(w.Dataset, res)
	}

	wS, resS, oaS := build(6 * simclock.Hour)
	wD, resD, oaD := build(4 * simclock.Minute)

	// Same world modulo round density.
	denseRounds, sparseRounds := 0, 0
	for id := range wD.Dataset.KRoot {
		denseRounds += len(wD.Dataset.KRoot[id])
		sparseRounds += len(wS.Dataset.KRoot[id])
	}
	if denseRounds <= 2*sparseRounds {
		t.Fatalf("dense mode not denser: %d vs %d rounds", denseRounds, sparseRounds)
	}
	if len(resS.GeoProbes) != len(resD.GeoProbes) {
		t.Fatalf("filtering diverged: %d vs %d analyzable", len(resS.GeoProbes), len(resD.GeoProbes))
	}

	for id, stS := range oaS.Stats {
		stD, ok := oaD.Stats[id]
		if !ok {
			t.Fatalf("probe %d missing from dense analysis", id)
		}
		if stS.NetworkGaps != stD.NetworkGaps || stS.NetworkChanged != stD.NetworkChanged {
			t.Errorf("probe %d network stats diverge: sparse %+v dense %+v", id, stS, stD)
		}
		if stS.PowerGaps != stD.PowerGaps || stS.PowerChanged != stD.PowerChanged {
			t.Errorf("probe %d power stats diverge: sparse %+v dense %+v", id, stS, stD)
		}
	}

	// Power-outage duration estimates tighten with density but stay
	// within one heartbeat of each other; gap causes stay identical.
	for id, gapsS := range oaS.Gaps {
		gapsD := oaD.Gaps[id]
		if len(gapsS) != len(gapsD) {
			t.Fatalf("probe %d gap counts diverge: %d vs %d", id, len(gapsS), len(gapsD))
		}
		for i := range gapsS {
			if gapsS[i].Cause != gapsD[i].Cause || gapsS[i].Changed != gapsD[i].Changed {
				t.Errorf("probe %d gap %d classification diverges: %+v vs %+v",
					id, i, gapsS[i], gapsD[i])
			}
		}
	}
}
