package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

// The paper defers IPv6 to future work but cites Plonka & Berger (IMC
// 2015): more than 90% of client IPv6 addresses are ephemeral, and RFC
// 4941 recommends rotating privacy addresses every 24 hours. The
// filtering pipeline discards IPv6 traffic for the IPv4 analyses; this
// file analyses it instead: per-probe IPv6 address lifetimes and the
// ephemeral share, over exactly the dual-stack and IPv6-only logs that
// Table 2 sets aside.

// V6ProbeStats summarises one probe's IPv6 address usage.
type V6ProbeStats struct {
	Probe atlasdata.ProbeID
	// Addresses is the number of distinct IPv6 addresses observed.
	Addresses int
	// Ephemeral counts addresses whose observed lifetime (first use to
	// last use) stayed under two days — the daily-rotation signature of
	// RFC 4941 privacy addresses.
	Ephemeral int
	// Rotating reports a daily-rotation signature: the probe used a new
	// address on (nearly) every active day.
	Rotating bool
}

// EphemeralFrac returns the share of the probe's addresses seen on only
// one day.
func (s V6ProbeStats) EphemeralFrac() float64 {
	if s.Addresses == 0 {
		return 0
	}
	return float64(s.Ephemeral) / float64(s.Addresses)
}

// rotationActiveShare is the distinct-address-per-active-day share above
// which a probe counts as rotating.
const rotationActiveShare = 0.8

// ephemeralLifetime bounds an ephemeral address's observed lifetime: a
// daily-rotated address lives under a day; two days of slack tolerates
// sessions straddling midnight and reconnect jitter.
const ephemeralLifetime = 2 * simclock.Day

// AnalyzeV6Probe computes IPv6 stats from one probe's raw connection
// log (not the filtered view — IPv6 probes never reach the views).
func AnalyzeV6Probe(entries []atlasdata.ConnLogEntry) V6ProbeStats {
	var st V6ProbeStats
	if len(entries) > 0 {
		st.Probe = entries[0].Probe
	}
	type span struct{ first, last simclock.Time }
	spans := map[string]*span{}
	activeDays := map[int]bool{}
	for _, e := range entries {
		if e.IsV4() {
			continue
		}
		if s, ok := spans[e.V6Addr]; ok {
			if e.Start.Before(s.first) {
				s.first = e.Start
			}
			if e.End.After(s.last) {
				s.last = e.End
			}
		} else {
			spans[e.V6Addr] = &span{first: e.Start, last: e.End}
		}
		if d := e.Start.DayWithinStudy(); d >= 0 {
			activeDays[d] = true
		}
	}
	st.Addresses = len(spans)
	for _, s := range spans {
		if s.last.Sub(s.first) < ephemeralLifetime {
			st.Ephemeral++
		}
	}
	if len(activeDays) >= 5 &&
		float64(st.Addresses) >= rotationActiveShare*float64(len(activeDays)) {
		st.Rotating = true
	}
	return st
}

// V6Report aggregates IPv6 behaviour across a dataset.
type V6Report struct {
	// Probes lists per-probe stats for every probe with IPv6 activity,
	// sorted by probe ID.
	Probes []V6ProbeStats
	// EphemeralShare is the population-level fraction of IPv6 addresses
	// seen on one day only.
	EphemeralShare float64
	// RotatingProbes counts probes with the daily-rotation signature.
	RotatingProbes int
}

// AnalyzeV6 runs the IPv6 ephemerality analysis over every probe in the
// dataset that used IPv6 at all.
func AnalyzeV6(ds *atlasdata.Dataset) *V6Report {
	rep := &V6Report{}
	var addrs, ephemeral int
	for _, id := range ds.ProbeIDs() {
		st := AnalyzeV6Probe(ds.ConnLogs[id])
		if st.Addresses == 0 {
			continue
		}
		st.Probe = id
		rep.Probes = append(rep.Probes, st)
		addrs += st.Addresses
		ephemeral += st.Ephemeral
		if st.Rotating {
			rep.RotatingProbes++
		}
	}
	if addrs > 0 {
		rep.EphemeralShare = float64(ephemeral) / float64(addrs)
	}
	sort.Slice(rep.Probes, func(i, j int) bool { return rep.Probes[i].Probe < rep.Probes[j].Probe })
	return rep
}
