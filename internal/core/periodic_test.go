package core

import (
	"math"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

func durOf(probe int, hours float64) AddressDuration {
	start := simclock.Time(1000000)
	return AddressDuration{
		Probe: atlasdata.ProbeID(probe),
		Addr:  ip4.MustParseAddr("10.0.0.1"),
		Start: start,
		End:   start.Add(simclock.Duration(hours * 3600)),
	}
}

func TestQuantizeHours(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{23.6, 24}, {24.4, 24}, {24.6, 25},
		{0.2, 1}, {0.7, 1}, {167.8, 168}, {12.1, 12},
	}
	for _, c := range cases {
		if got := QuantizeHours(c.in); got != c.want {
			t.Errorf("QuantizeHours(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTTFWeighting(t *testing.T) {
	// Paper §4.1's worked example: durations 14.2, 0.7, 7.2 and three
	// near-24h durations. The 24h bucket holds ~3/4 of the total time
	// even though it is only half the count.
	durations := []AddressDuration{
		durOf(1, 14.2), durOf(1, 0.7), durOf(1, 7.2),
		durOf(1, 23.6), durOf(1, 23.6), durOf(1, 23.6),
	}
	ttf := TTF(durations)
	got := ttf.MassAt(24)
	if got < 0.70 || got > 0.80 {
		t.Errorf("f_24 = %v, want ~0.76", got)
	}
}

func TestClassifyPeriodicDaily(t *testing.T) {
	var durations []AddressDuration
	// 300 daily durations plus noise: clearly periodic at 24h.
	for i := 0; i < 300; i++ {
		durations = append(durations, durOf(1, 23.7))
	}
	for i := 0; i < 20; i++ {
		durations = append(durations, durOf(1, float64(i%12)+0.5))
	}
	pp, ok := ClassifyPeriodic(durations)
	if !ok {
		t.Fatal("daily probe not classified periodic")
	}
	if pp.D != 24 {
		t.Errorf("D = %v, want 24", pp.D)
	}
	if pp.Frac < 0.9 {
		t.Errorf("Frac = %v, want > 0.9", pp.Frac)
	}
	if !pp.MaxLeD || !pp.Harmonic {
		t.Errorf("MaxLeD = %v, Harmonic = %v, want both true", pp.MaxLeD, pp.Harmonic)
	}
}

func TestClassifyPeriodicHarmonics(t *testing.T) {
	var durations []AddressDuration
	for i := 0; i < 50; i++ {
		durations = append(durations, durOf(1, 23.8))
	}
	durations = append(durations, durOf(1, 47.7)) // skipped reset: 2x24
	pp, ok := ClassifyPeriodic(durations)
	if !ok || pp.D != 24 {
		t.Fatalf("classification = %+v, %v", pp, ok)
	}
	if pp.MaxLeD {
		t.Error("MaxLeD should be false with a 48h duration present")
	}
	if !pp.Harmonic {
		t.Error("48h duration is harmonic of 24h")
	}

	durations = append(durations, durOf(1, 55)) // non-harmonic
	pp, ok = ClassifyPeriodic(durations)
	if !ok {
		t.Fatal("still periodic")
	}
	if pp.Harmonic {
		t.Error("55h duration breaks the harmonic property")
	}
}

func TestClassifyPeriodicNegative(t *testing.T) {
	var durations []AddressDuration
	// Spread durations: no single mode above 0.25.
	for i := 1; i <= 20; i++ {
		durations = append(durations, durOf(1, float64(i*13)))
	}
	if pp, ok := ClassifyPeriodic(durations); ok {
		t.Errorf("spread durations classified periodic: %+v", pp)
	}
	if _, ok := ClassifyPeriodic(nil); ok {
		t.Error("empty durations classified periodic")
	}
}

func TestClassifyPeriodicSlack(t *testing.T) {
	// A duration at exactly D+5% is still within MAX<=d per the paper's
	// adjusted bound.
	var durations []AddressDuration
	for i := 0; i < 50; i++ {
		durations = append(durations, durOf(1, 24))
	}
	durations = append(durations, durOf(1, 24*1.049))
	pp, ok := ClassifyPeriodic(durations)
	if !ok || !pp.MaxLeD {
		t.Errorf("duration within 5%% slack broke MaxLeD: %+v", pp)
	}
}

func TestHourHistogramCounts(t *testing.T) {
	ds := buildDS(t)
	// A probe with three 24h durations each ending 04:xx GMT.
	day := 24 * simclock.Hour
	t0 := simclock.Date(2015, 3, 1, 4, 10, 0)
	entries := []atlasdata.ConnLogEntry{
		v4e(1, t0.Add(-day), t0, "10.0.0.1"),
		v4e(1, t0.Add(20*simclock.Minute), t0.Add(day), "10.0.0.2"),
		v4e(1, t0.Add(day+40*simclock.Minute), t0.Add(2*day+20*simclock.Minute), "10.0.0.3"),
		v4e(1, t0.Add(2*day+40*simclock.Minute), t0.Add(3*day+20*simclock.Minute), "10.0.0.4"),
		v4e(1, t0.Add(3*day+40*simclock.Minute), t0.Add(4*day), "10.0.0.5"),
	}
	var secs int64
	for _, e := range entries {
		secs += int64(e.End.Sub(e.Start))
	}
	// Stretch connected days over the threshold.
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}
	ds.ConnLogs[1] = entries
	res := Filter(ds)
	if _, ok := res.Views[1]; !ok {
		t.Fatal("probe should be analyzable")
	}
	hist := HourHistogram(res, []atlasdata.ProbeID{1}, 24)
	total := 0
	for h, c := range hist {
		total += c
		if c > 0 && h != 4 {
			t.Errorf("count at hour %d, expected all at hour 4", h)
		}
	}
	if total != 3 {
		t.Errorf("total histogram count = %d, want 3 bounded 24h durations", total)
	}
}

func TestGroupTTFAndAggregations(t *testing.T) {
	ds := buildDS(t)
	addProbe(ds, 1, atlasdata.V3, nil, longSessions(1, "10.0.0.1", "10.0.1.2", "10.0.0.3", "10.0.1.4")...)
	addProbe(ds, 2, atlasdata.V3, nil, longSessions(2, "10.0.0.5", "10.0.1.6", "10.0.0.7", "10.0.1.8")...)
	res := Filter(ds)
	ttfs := ProbeTTFs(res)
	if len(ttfs) != 2 {
		t.Fatalf("ttfs = %d", len(ttfs))
	}
	g := GroupTTF(ttfs, res.GeoProbes)
	if math.Abs(g.Total()-(ttfs[1].Total()+ttfs[2].Total())) > 1e-9 {
		t.Error("group total must equal the sum of member totals")
	}
	byAS := ByAS(res)
	if len(byAS[100]) != 2 {
		t.Errorf("ByAS[100] = %v", byAS[100])
	}
	byCountry := ByCountry(res)
	if len(byCountry["DE"]) != 2 {
		t.Errorf("ByCountry[DE] = %v", byCountry["DE"])
	}
	byCont := ByContinent(res)
	if len(byCont["EU"]) != 2 {
		t.Errorf("ByContinent[EU] = %v", byCont["EU"])
	}
}
