package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

// NetworkOutage is a detected loss-of-connectivity episode during which
// the probe stayed up: a run of k-root rounds with every ping lost and a
// growing LTS (paper §3.4, Table 3). Start and End are the first and
// last all-lost rounds, which under-estimates the true outage by up to
// two round intervals — exactly the paper's stated error bound.
type NetworkOutage struct {
	Probe atlasdata.ProbeID
	Start simclock.Time
	End   simclock.Time
}

// Duration returns the detected outage span. A single-round outage has
// zero span; callers treat it as "under one round interval".
func (n NetworkOutage) Duration() simclock.Duration { return n.End.Sub(n.Start) }

// ltsSyncBound is the LTS value above which a probe has clearly missed
// its controller sync (normal reporting keeps LTS under ~240 s).
const ltsSyncBound = 240

// DetectNetworkOutages finds loss runs in a probe's (time-sorted) k-root
// rounds. A run qualifies when the LTS grows across it (multi-round
// runs) or exceeds the sync bound (single-round runs) — the paper's
// requirement that two independent signals agree.
func DetectNetworkOutages(rounds []atlasdata.KRootRound) []NetworkOutage {
	var out []NetworkOutage
	i := 0
	for i < len(rounds) {
		if !rounds[i].AllLost() {
			i++
			continue
		}
		j := i
		for j+1 < len(rounds) && rounds[j+1].AllLost() {
			j++
		}
		ltsOK := false
		if j > i {
			ltsOK = rounds[j].LTS > rounds[i].LTS
		} else {
			ltsOK = rounds[i].LTS > ltsSyncBound
		}
		if ltsOK {
			out = append(out, NetworkOutage{
				Probe: rounds[i].Probe,
				Start: rounds[i].Timestamp,
				End:   rounds[j].Timestamp,
			})
		}
		i = j + 1
	}
	return out
}

// Reboot is a detected probe reboot from the SOS-uptime dataset: the
// uptime counter reset, implying the probe booted at At (paper §3.5,
// Table 4).
type Reboot struct {
	Probe atlasdata.ProbeID
	// At is the inferred boot instant: report timestamp minus counter.
	At simclock.Time
}

// BootSlack absorbs clock skew between the probe's uptime counter and
// the controller's record timestamps when comparing boot instants.
// Exported for the streaming detector, whose round-retention watermark
// is derived from it.
const BootSlack = 90 * simclock.Second

// DetectReboots finds counter resets in a probe's (time-sorted) uptime
// records. Each record implies a boot instant (timestamp - uptime); a
// boot instant later than the previous one by more than the slack is a
// reboot.
func DetectReboots(recs []atlasdata.UptimeRecord) []Reboot {
	var out []Reboot
	var prevBoot simclock.Time
	for i, r := range recs {
		boot := r.Timestamp.Add(-simclock.Duration(r.Uptime))
		if i > 0 && boot.Sub(prevBoot) > BootSlack {
			out = append(out, Reboot{Probe: r.Probe, At: boot})
		}
		if i == 0 || boot.After(prevBoot) {
			prevBoot = boot
		}
	}
	return out
}

// RebootsPerDay counts, for each study day, how many distinct probes
// rebooted — the paper's Figure 6 series.
func RebootsPerDay(reboots map[atlasdata.ProbeID][]Reboot) []int {
	days := int(simclock.StudyEnd.Sub(simclock.StudyStart) / simclock.Day)
	counts := make([]int, days)
	for _, rs := range reboots {
		seen := make(map[int]bool)
		for _, r := range rs {
			d := r.At.DayWithinStudy()
			if d >= 0 && !seen[d] {
				seen[d] = true
				counts[d]++
			}
		}
	}
	return counts
}

// DetectFirmwareDays finds the days on which firmware updates were
// distributed: the paper flags periods where daily unique-probe reboots
// exceed twice the median for at least two consecutive days, and takes
// the first day of each period (§5.2, Figure 6).
func DetectFirmwareDays(perDay []int) []int {
	if len(perDay) == 0 {
		return nil
	}
	sorted := append([]int(nil), perDay...)
	sort.Ints(sorted)
	median := float64(sorted[len(sorted)/2])
	if len(sorted)%2 == 0 {
		median = (float64(sorted[len(sorted)/2-1]) + float64(sorted[len(sorted)/2])) / 2
	}
	threshold := 2 * median
	var out []int
	for d := 0; d < len(perDay); {
		if float64(perDay[d]) > threshold {
			j := d
			for j+1 < len(perDay) && float64(perDay[j+1]) > threshold {
				j++
			}
			if j > d { // at least two consecutive days
				out = append(out, d)
			}
			d = j + 1
			continue
		}
		d++
	}
	return out
}

// firmwareWindow is how long after a push a probe's first reboot is
// attributed to the firmware install.
const firmwareWindow = 2 * simclock.Day

// FilterFirmwareReboots drops, for each probe, the first reboot that
// falls within the window after each firmware day (§5.2) — those reboots
// are effects of dropped connections, not causes.
func FilterFirmwareReboots(reboots []Reboot, firmwareDays []int) []Reboot {
	if len(firmwareDays) == 0 {
		return reboots
	}
	consumed := make([]bool, len(firmwareDays))
	out := reboots[:0:0]
	for _, r := range reboots {
		dropped := false
		for i, d := range firmwareDays {
			if consumed[i] {
				continue
			}
			pushAt := simclock.StudyStart.Add(simclock.Duration(d) * simclock.Day)
			if !r.At.Before(pushAt) && r.At.Sub(pushAt) <= firmwareWindow {
				consumed[i] = true
				dropped = true
				break
			}
		}
		if !dropped {
			out = append(out, r)
		}
	}
	return out
}

// PingGapThreshold is the minimum silence in the k-root stream around a
// reboot for the reboot to count as a power outage: at the 4-minute
// round cadence, a powered-off probe misses at least one round, so the
// surrounding gap spans at least two intervals. Exported for the
// streaming detector, which resolves reboot gaps online.
const PingGapThreshold = 6 * simclock.Minute

// PowerOutage is a detected loss of power at the CPE/probe: a reboot
// coincident with missing k-root rounds (paper §3.5, §5.1). The outage
// duration is estimated from the gap between the last round before and
// the first round after the reboot, the paper's §3.5 estimator.
type PowerOutage struct {
	Probe    atlasdata.ProbeID
	RebootAt simclock.Time
	// GapStart and GapEnd bound the k-root silence around the reboot.
	GapStart simclock.Time
	GapEnd   simclock.Time
}

// Duration returns the estimated outage duration (the ping gap).
func (p PowerOutage) Duration() simclock.Duration { return p.GapEnd.Sub(p.GapStart) }

// RebootGap is the k-root silence surrounding one reboot, before the
// power-outage qualification is applied: Start is the last round at or
// before the boot instant (or boot minus the threshold when no round
// precedes it), End the first round after. Open marks a reboot with no
// round after it yet — resolvable once more rounds arrive, which is how
// the streaming detector keeps its pairing exact mid-stream.
type RebootGap struct {
	Start simclock.Time
	End   simclock.Time
	Open  bool
}

// ResolveRebootGaps computes each reboot's surrounding k-root silence.
// rounds must be time-sorted; the result is index-aligned with reboots.
func ResolveRebootGaps(reboots []Reboot, rounds []atlasdata.KRootRound) []RebootGap {
	out := make([]RebootGap, len(reboots))
	for k, r := range reboots {
		// Last round at or before the boot instant, first round after.
		i := sort.Search(len(rounds), func(k int) bool {
			return rounds[k].Timestamp.After(r.At)
		})
		g := RebootGap{}
		if i > 0 {
			g.Start = rounds[i-1].Timestamp
		} else {
			g.Start = r.At.Add(-PingGapThreshold) // no earlier round: assume tight
		}
		if i < len(rounds) {
			g.End = rounds[i].Timestamp
		} else {
			g.Open = true // no evidence after the reboot
		}
		out[k] = g
	}
	return out
}

// PowerOutagesFrom qualifies resolved reboot gaps into power outages.
// gaps must be index-aligned with reboots (ResolveRebootGaps); kept is
// the subset of reboots surviving firmware filtering, in the same order
// (boot instants strictly increase, so a two-pointer alignment by At is
// exact). Open gaps and gaps at or under the ping-gap threshold do not
// qualify. Pairing each reboot with its own gap is independent of the
// other reboots, so filtering before or after resolving gaps yields the
// same outages — the seam that lets the streaming detector resolve gaps
// online and apply the (retroactive) firmware filter only at query time.
func PowerOutagesFrom(reboots []Reboot, gaps []RebootGap, kept []Reboot) []PowerOutage {
	var out []PowerOutage
	i := 0
	for _, r := range kept {
		for i < len(reboots) && reboots[i].At != r.At {
			i++
		}
		if i >= len(reboots) {
			break
		}
		g := gaps[i]
		i++
		if g.Open {
			continue
		}
		if g.End.Sub(g.Start) > PingGapThreshold {
			out = append(out, PowerOutage{
				Probe:    r.Probe,
				RebootAt: r.At,
				GapStart: g.Start,
				GapEnd:   g.End,
			})
		}
	}
	return out
}

// DetectPowerOutages pairs reboots with k-root silence. rounds must be
// time-sorted. Reboots without a qualifying silence gap (e.g. a clean
// probe restart between two rounds) are not power outages.
func DetectPowerOutages(reboots []Reboot, rounds []atlasdata.KRootRound) []PowerOutage {
	return PowerOutagesFrom(reboots, ResolveRebootGaps(reboots, rounds), reboots)
}
