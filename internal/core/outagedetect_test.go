package core

import (
	"reflect"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

func round(ts simclock.Time, success int, lts int64) atlasdata.KRootRound {
	return atlasdata.KRootRound{Probe: 1, Timestamp: ts, Sent: 3, Success: success, LTS: lts}
}

func TestDetectNetworkOutagesPaperTable3(t *testing.T) {
	// The paper's Table 3: six all-lost rounds with LTS growing from 151
	// to 1103, bracketed by good rounds.
	base := simclock.Date(2015, 1, 27, 9, 1, 42)
	min := func(m int, s int) simclock.Time { return base.Add(simclock.Duration(m*60 + s)) }
	rounds := []atlasdata.KRootRound{
		round(base, 3, 86),
		round(min(4, 6), 0, 151),
		round(min(8, 3), 0, 388),
		round(min(11, 54), 0, 619),
		round(min(16, 7), 0, 872),
		round(min(19, 58), 0, 1103),
		round(min(23, 57), 3, 1342),
		round(min(27, 54), 3, 146),
	}
	got := DetectNetworkOutages(rounds)
	if len(got) != 1 {
		t.Fatalf("outages = %d, want 1", len(got))
	}
	if got[0].Start != min(4, 6) || got[0].End != min(19, 58) {
		t.Errorf("outage = [%v, %v]", got[0].Start, got[0].End)
	}
}

func TestDetectNetworkOutagesRequiresLTSGrowth(t *testing.T) {
	// All-lost rounds with flat LTS mean the probe still reached the
	// controller: not a network outage.
	rounds := []atlasdata.KRootRound{
		round(0, 3, 100),
		round(240, 0, 100),
		round(480, 0, 100),
		round(720, 3, 100),
	}
	if got := DetectNetworkOutages(rounds); len(got) != 0 {
		t.Errorf("flat-LTS loss run detected as outage: %v", got)
	}
}

func TestDetectNetworkOutagesSingleRound(t *testing.T) {
	// One lost round qualifies only with LTS past the sync bound.
	low := []atlasdata.KRootRound{round(0, 3, 50), round(240, 0, 200), round(480, 3, 60)}
	if got := DetectNetworkOutages(low); len(got) != 0 {
		t.Errorf("single low-LTS loss detected: %v", got)
	}
	high := []atlasdata.KRootRound{round(0, 3, 50), round(240, 0, 500), round(480, 3, 60)}
	got := DetectNetworkOutages(high)
	if len(got) != 1 || got[0].Start != 240 || got[0].End != 240 {
		t.Errorf("single high-LTS loss = %v, want one zero-span outage", got)
	}
}

func TestDetectNetworkOutagesMultipleRuns(t *testing.T) {
	rounds := []atlasdata.KRootRound{
		round(0, 3, 50),
		round(240, 0, 300), round(480, 0, 540),
		round(720, 3, 60),
		round(960, 0, 300), round(1200, 0, 540), round(1440, 0, 780),
		round(1680, 3, 60),
	}
	got := DetectNetworkOutages(rounds)
	if len(got) != 2 {
		t.Fatalf("outages = %d, want 2", len(got))
	}
	if got[0].Duration() != 240 || got[1].Duration() != 480 {
		t.Errorf("durations = %v, %v", got[0].Duration(), got[1].Duration())
	}
}

func TestDetectRebootsPaperTable4(t *testing.T) {
	// Table 4: probe 206's counter drops from 315038 to 19.
	recs := []atlasdata.UptimeRecord{
		{Probe: 206, Timestamp: simclock.Date(2015, 1, 1, 3, 15, 18), Uptime: 262531},
		{Probe: 206, Timestamp: simclock.Date(2015, 1, 1, 17, 50, 26), Uptime: 315038},
		{Probe: 206, Timestamp: simclock.Date(2015, 1, 1, 17, 50, 55), Uptime: 19},
		{Probe: 206, Timestamp: simclock.Date(2015, 1, 1, 17, 53, 59), Uptime: 203},
		{Probe: 206, Timestamp: simclock.Date(2015, 1, 1, 18, 59, 44), Uptime: 4147},
	}
	got := DetectReboots(recs)
	if len(got) != 1 {
		t.Fatalf("reboots = %d, want 1", len(got))
	}
	want := simclock.Date(2015, 1, 1, 17, 50, 36)
	if got[0].At != want {
		t.Errorf("reboot at %v, want %v", got[0].At, want)
	}
}

func TestDetectRebootsIgnoresDrift(t *testing.T) {
	// Counter values consistent with continuous uptime (boot instant
	// stable within slack) are not reboots.
	recs := []atlasdata.UptimeRecord{
		{Probe: 1, Timestamp: 10000, Uptime: 5000},
		{Probe: 1, Timestamp: 20000, Uptime: 15010}, // 10s skew
		{Probe: 1, Timestamp: 30000, Uptime: 24990},
	}
	if got := DetectReboots(recs); len(got) != 0 {
		t.Errorf("drift detected as reboot: %v", got)
	}
}

func TestRebootsPerDayAndFirmwareDetection(t *testing.T) {
	// Background: 5 probes reboot on scattered days; firmware day 100
	// and 101 spike to 40 probes.
	reboots := make(map[atlasdata.ProbeID][]Reboot)
	day := func(d int) simclock.Time {
		return simclock.StudyStart.Add(simclock.Duration(d)*simclock.Day + simclock.Hour)
	}
	for p := 1; p <= 40; p++ {
		id := atlasdata.ProbeID(p)
		reboots[id] = append(reboots[id], Reboot{Probe: id, At: day(100)})
		reboots[id] = append(reboots[id], Reboot{Probe: id, At: day(101)})
	}
	for p := 1; p <= 5; p++ {
		id := atlasdata.ProbeID(p)
		for d := 0; d < 365; d += 7 {
			reboots[id] = append(reboots[id], Reboot{Probe: id, At: day(d)})
		}
	}
	perDay := RebootsPerDay(reboots)
	if len(perDay) != 365 {
		t.Fatalf("perDay length = %d", len(perDay))
	}
	if perDay[100] != 40 || perDay[101] != 40 {
		t.Errorf("spike days = %d, %d, want 40", perDay[100], perDay[101])
	}
	fw := DetectFirmwareDays(perDay)
	if !reflect.DeepEqual(fw, []int{100}) {
		t.Errorf("firmware days = %v, want [100]", fw)
	}
}

func TestDetectFirmwareDaysNeedsTwoConsecutive(t *testing.T) {
	perDay := make([]int, 365)
	for i := range perDay {
		perDay[i] = 10
	}
	perDay[50] = 100 // single-day spike: not a push
	if fw := DetectFirmwareDays(perDay); len(fw) != 0 {
		t.Errorf("single-day spike flagged: %v", fw)
	}
	perDay[200], perDay[201] = 100, 90
	fw := DetectFirmwareDays(perDay)
	if !reflect.DeepEqual(fw, []int{200}) {
		t.Errorf("firmware days = %v, want [200]", fw)
	}
}

func TestFilterFirmwareReboots(t *testing.T) {
	day := func(d int, h int) simclock.Time {
		return simclock.StudyStart.Add(simclock.Duration(d)*simclock.Day + simclock.Duration(h)*simclock.Hour)
	}
	reboots := []Reboot{
		{Probe: 1, At: day(50, 3)},  // background
		{Probe: 1, At: day(100, 5)}, // firmware install
		{Probe: 1, At: day(101, 9)}, // second reboot after push: kept
		{Probe: 1, At: day(200, 1)}, // background
	}
	kept := FilterFirmwareReboots(reboots, []int{100})
	if len(kept) != 3 {
		t.Fatalf("kept = %d, want 3", len(kept))
	}
	for _, r := range kept {
		if r.At == day(100, 5) {
			t.Error("firmware reboot not dropped")
		}
	}
	// No firmware days: identity.
	if got := FilterFirmwareReboots(reboots, nil); len(got) != len(reboots) {
		t.Error("no-push filter should keep everything")
	}
}

func TestDetectPowerOutages(t *testing.T) {
	rounds := []atlasdata.KRootRound{
		round(0, 3, 60),
		round(240, 3, 60),
		// Silence 240..2000 (~29 min) around a reboot at 1500.
		round(2000, 3, 60),
		round(2240, 3, 60),
	}
	reboots := []Reboot{{Probe: 1, At: 1500}}
	got := DetectPowerOutages(reboots, rounds)
	if len(got) != 1 {
		t.Fatalf("power outages = %d, want 1", len(got))
	}
	if got[0].GapStart != 240 || got[0].GapEnd != 2000 {
		t.Errorf("gap = [%v, %v]", got[0].GapStart, got[0].GapEnd)
	}
	if got[0].Duration() != 1760 {
		t.Errorf("duration = %v", got[0].Duration())
	}
}

func TestDetectPowerOutagesRejectsTightGap(t *testing.T) {
	// Rounds straddle the reboot with only one interval missing: a clean
	// restart, not a power outage.
	rounds := []atlasdata.KRootRound{
		round(0, 3, 60), round(240, 3, 60), round(540, 3, 60),
	}
	reboots := []Reboot{{Probe: 1, At: 400}}
	if got := DetectPowerOutages(reboots, rounds); len(got) != 0 {
		t.Errorf("tight gap flagged as power outage: %v", got)
	}
}

func TestDetectPowerOutagesNoTrailingEvidence(t *testing.T) {
	rounds := []atlasdata.KRootRound{round(0, 3, 60)}
	reboots := []Reboot{{Probe: 1, At: 5000}}
	if got := DetectPowerOutages(reboots, rounds); len(got) != 0 {
		t.Error("reboot after the last round must not be classified")
	}
}
