package core

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFigureSVGs(t *testing.T) {
	_, rep := paperWorld(t)
	dir := filepath.Join(t.TempDir(), "figs")
	written, err := WriteFigureSVGs(rep, nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) < 9 {
		t.Fatalf("only %d figures written: %v", len(written), written)
	}
	wantFiles := []string{"fig1.svg", "fig2.svg", "fig3.svg", "fig4.svg", "fig5.svg",
		"fig6.svg", "fig7.svg", "fig8.svg", "fig9-1.svg", "fig9-2.svg"}
	for _, f := range wantFiles {
		path := filepath.Join(dir, f)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s missing: %v", f, err)
			continue
		}
		svg := string(data)
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Errorf("%s is not a standalone SVG", f)
		}
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() != "EOF" {
					t.Errorf("%s not well-formed: %v", f, err)
				}
				break
			}
		}
	}
	// Figure 1's legend carries the continent codes.
	fig1, err := os.ReadFile(filepath.Join(dir, "fig1.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fig1), "EU") || !strings.Contains(string(fig1), "NA") {
		t.Error("fig1.svg legend missing continents")
	}
}
