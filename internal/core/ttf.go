package core

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/geo"
	"dynaddr/internal/stats"
)

// The paper's total time fraction (§4.1): for a probe and an address
// duration d, f_d = d·n(d) / Σ(D) — the fraction of the probe's total
// addressed time spent in durations of length d. Durations are
// quantised to whole hours before aggregation, matching the paper's
// hour-granular modes (12h, 22h, 24h, 28h, 36h, 47h, 48h, 92h, 168h,
// 192h, 337h).

// QuantizeHours rounds a duration in hours to the nearest whole hour,
// with a floor of one hour so sub-hour durations still carry weight.
func QuantizeHours(hours float64) float64 {
	q := float64(int(hours + 0.5))
	if q < 1 {
		q = 1
	}
	return q
}

// TTF builds the total-time-fraction distribution for a set of address
// durations: each duration contributes its own raw length as weight at
// its quantised hour value.
func TTF(durations []AddressDuration) *stats.Weighted {
	hours := make([]float64, len(durations))
	for i, d := range durations {
		hours[i] = d.Hours()
	}
	return TTFFromHours(hours)
}

// TTFFromHours builds the total-time-fraction distribution from raw
// duration lengths in hours — the detector-core seam the streaming
// ingester feeds from its per-probe closed-duration list. Non-positive
// lengths are skipped, exactly as TTF skips them.
func TTFFromHours(hours []float64) *stats.Weighted {
	var w stats.Weighted
	for _, h := range hours {
		if h <= 0 {
			continue
		}
		w.Add(QuantizeHours(h), h)
	}
	return &w
}

// ProbeTTFs computes the per-probe TTF distribution for every analyzable
// probe, from durations bounded by changes on both sides.
func ProbeTTFs(res *FilterResult) map[atlasdata.ProbeID]*stats.Weighted {
	out := make(map[atlasdata.ProbeID]*stats.Weighted, len(res.Views))
	for id, view := range res.Views {
		out[id] = TTF(V4Durations(view.Entries))
	}
	return out
}

// GroupTTF merges the TTF distributions of a set of probes, producing
// the aggregate the paper plots per AS, country or continent. The
// result's Total() is the group's total address time in hours (the
// number the paper prints in figure legends, converted to years).
func GroupTTF(ttfs map[atlasdata.ProbeID]*stats.Weighted, ids []atlasdata.ProbeID) *stats.Weighted {
	var w stats.Weighted
	for _, id := range ids {
		if d, ok := ttfs[id]; ok {
			w.AddDist(d)
		}
	}
	return &w
}

// ByContinent groups geo-analyzable probes by the continent of their
// registered country (Figure 1's aggregation). Probes with unknown
// country codes are skipped, mirroring the paper's handling of
// incomplete metadata.
func ByContinent(res *FilterResult) map[geo.Continent][]atlasdata.ProbeID {
	out := make(map[geo.Continent][]atlasdata.ProbeID)
	for _, id := range res.GeoProbes {
		cont, err := geo.ContinentOf(res.Views[id].Meta.Country)
		if err != nil {
			continue
		}
		out[cont] = append(out[cont], id)
	}
	return out
}

// ByCountry groups geo-analyzable probes by country code.
func ByCountry(res *FilterResult) map[string][]atlasdata.ProbeID {
	out := make(map[string][]atlasdata.ProbeID)
	for _, id := range res.GeoProbes {
		c := res.Views[id].Meta.Country
		out[c] = append(out[c], id)
	}
	return out
}

// ByAS groups AS-analyzable probes by their home AS (Figures 2-3's
// aggregation).
func ByAS(res *FilterResult) map[uint32][]atlasdata.ProbeID {
	out := make(map[uint32][]atlasdata.ProbeID)
	for _, id := range res.ASProbes {
		asn := uint32(res.Views[id].ASN)
		if asn == 0 {
			continue
		}
		out[asn] = append(out[asn], id)
	}
	return out
}
