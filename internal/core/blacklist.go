package core

import (
	"sort"

	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
)

// The paper's motivating application (§1, §6, §8): operators blocklist
// addresses seen misbehaving, implicitly assuming the address keeps
// identifying the same host. This file turns the measurements into
// actionable advice per AS: how long an address-keyed entry stays
// valid, whether the subscriber can shed it on demand by rebooting, and
// whether widening the block to the enclosing prefix helps.

// BlacklistAdvice is the per-AS recommendation.
type BlacklistAdvice struct {
	ASN    uint32
	Probes int

	// MedianHoldHours is the median bounded address duration: the
	// half-life of an address-keyed entry.
	MedianHoldHours float64
	// P90HoldHours is the 90th percentile hold time; entries older than
	// this almost certainly point at a different subscriber.
	P90HoldHours float64
	// EvadableByReboot reports that the AS renumbers on reconnects of
	// any duration (§5.3), so a subscriber escapes an entry at will.
	EvadableByReboot bool
	// PrefixEscapeShare is the share of observed changes that left the
	// enclosing BGP prefix: the failure rate of prefix-widened blocks.
	PrefixEscapeShare float64
	// SuggestedTTL is a conservative entry lifetime: the smaller of the
	// median hold time and 24 hours when reboot-evadable, else the
	// median hold time.
	SuggestedTTL simclock.Duration
}

// rebootEvadableShortRate is the sub-hour renumbering share above which
// an AS counts as evadable on demand.
const rebootEvadableShortRate = 0.5

// AdviseBlacklist computes per-AS advice from a finished report's
// filter, outage and prefix analyses. ASes with fewer than minProbes
// analyzable probes or no bounded durations are skipped.
func AdviseBlacklist(rep *Report, minProbes int) []BlacklistAdvice {
	byAS := ByAS(rep.Filter)
	prefixByASN := make(map[uint32]PrefixChangeRow, len(rep.Table7ByAS))
	for _, r := range rep.Table7ByAS {
		prefixByASN[r.ASN] = r
	}

	var out []BlacklistAdvice
	for asn, ids := range byAS {
		if len(ids) < minProbes {
			continue
		}
		var holds stats.Sample
		for _, id := range ids {
			for _, d := range V4Durations(rep.Filter.Views[id].Entries) {
				holds.Add(d.Hours())
			}
		}
		if holds.Len() == 0 {
			continue
		}
		adv := BlacklistAdvice{
			ASN:             asn,
			Probes:          len(ids),
			MedianHoldHours: holds.Median(),
			P90HoldHours:    holds.Quantile(0.9),
		}
		if rep.Outage != nil {
			bins := rep.Outage.DurationBins(rep.Filter, ids)
			_, ev := InferLinkType(bins)
			adv.EvadableByReboot = ev.ShortN >= linkMinShortSamples &&
				ev.ShortRate >= rebootEvadableShortRate
		}
		if row, ok := prefixByASN[asn]; ok {
			adv.PrefixEscapeShare = row.FracBGP()
		}
		ttl := simclock.Duration(adv.MedianHoldHours * float64(simclock.Hour))
		if adv.EvadableByReboot && ttl > 24*simclock.Hour {
			ttl = 24 * simclock.Hour
		}
		adv.SuggestedTTL = ttl
		out = append(out, adv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probes != out[j].Probes {
			return out[i].Probes > out[j].Probes
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
