package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
)

// The paper's §2.3 names administrative renumbering — an ISP moving
// customers en masse to new address space — and §8 reports finding only
// one instance, deferring systematic detection to future work. This
// detector is that future work: it flags (AS, day) pairs where an
// anomalously large share of the AS's probes changed address on the
// same day, against the AS's own daily baseline so that periodic
// renumberers (where most probes change every day) never trigger.

// AdminEvent is one detected en-masse renumbering.
type AdminEvent struct {
	ASN uint32
	// Day is the zero-based study day of the event.
	Day int
	// Probes is how many of the AS's probes changed address that day;
	// FracOfAS is that count over the AS's analyzable probes.
	Probes   int
	FracOfAS float64
}

// Admin-detection thresholds: at least three probes and half the AS
// changing on one day, on a day at least four times the AS's median
// daily change count (so daily/weekly schedules never qualify).
const (
	adminMinProbes = 3
	adminMinFrac   = 0.5
	adminSpikeMult = 4
)

// DetectAdminRenumbering scans every AS with enough probes for en-masse
// renumbering days. Results sort by day then ASN.
func DetectAdminRenumbering(res *FilterResult) []AdminEvent {
	var out []AdminEvent
	for asn, ids := range ByAS(res) {
		if len(ids) < Table5MinProbes {
			continue
		}
		// perDay[d] = set size of probes with >=1 change on day d.
		perDay := map[int]map[atlasdata.ProbeID]bool{}
		for _, id := range ids {
			for _, ch := range res.Views[id].Changes {
				d := ch.NextStart.DayWithinStudy()
				if d < 0 {
					continue
				}
				if perDay[d] == nil {
					perDay[d] = make(map[atlasdata.ProbeID]bool)
				}
				perDay[d][id] = true
			}
		}
		// Median daily count across the whole study year (days without
		// changes count as zero).
		const studyDays = 365
		counts := make([]int, 0, studyDays)
		for d := 0; d < studyDays; d++ {
			counts = append(counts, len(perDay[d]))
		}
		sorted := append([]int(nil), counts...)
		sort.Ints(sorted)
		median := sorted[len(sorted)/2]

		for d := 0; d < studyDays; d++ {
			n := len(perDay[d])
			if n < adminMinProbes {
				continue
			}
			if float64(n) < adminMinFrac*float64(len(ids)) {
				continue
			}
			if n < adminSpikeMult*(median+1) {
				continue
			}
			out = append(out, AdminEvent{
				ASN: asn, Day: d, Probes: n,
				FracOfAS: float64(n) / float64(len(ids)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Day != out[j].Day {
			return out[i].Day < out[j].Day
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
