package core

import (
	"fmt"
	"sort"

	"dynaddr/internal/atlasdata"
)

// The paper's §5.3 closes with: "We expect that this property can be
// used as evidence in inferring a device's link type." This file makes
// that remark an algorithm: an AS's renumbering-versus-outage-duration
// profile separates PPP/Radius plants (renumber on any interruption),
// DHCP plants (renumbering grows with outage duration as leases lapse),
// and stable plants (addresses survive nearly everything).

// LinkType is the inferred access-technology class of an AS.
type LinkType int

// Link types.
const (
	LinkUnknown LinkType = iota
	LinkPPP
	LinkDHCP
	LinkStable
)

// String names the link type.
func (l LinkType) String() string {
	switch l {
	case LinkPPP:
		return "ppp"
	case LinkDHCP:
		return "dhcp"
	case LinkStable:
		return "stable"
	default:
		return "unknown"
	}
}

// LinkEvidence carries the measurements behind an inference.
type LinkEvidence struct {
	// ShortRate is the renumbering share over outages under one hour;
	// LongRate over outages of 12 hours and more.
	ShortRate float64
	LongRate  float64
	ShortN    int
	LongN     int
}

// String formats the evidence compactly.
func (e LinkEvidence) String() string {
	return fmt.Sprintf("short %0.2f (n=%d), long %0.2f (n=%d)",
		e.ShortRate, e.ShortN, e.LongRate, e.LongN)
}

// Inference thresholds. Short outages cannot lapse any plausible DHCP
// lease (clients renew at half-lease, leases run hours), so a high
// short-outage renumbering share is PPP's signature; growth from a low
// short rate to a substantial long rate is DHCP's; neither is a stable
// plant's.
const (
	linkMinShortSamples = 10
	linkMinLongSamples  = 3
	linkPPPShortRate    = 0.5
	linkDHCPLongRate    = 0.2
)

// InferLinkType classifies one AS's outage-duration profile.
func InferLinkType(bins []DurationBinRow) (LinkType, LinkEvidence) {
	var ev LinkEvidence
	var shortRen, longRen int
	for i, b := range bins {
		switch {
		case i < 5: // < 1 hour
			ev.ShortN += b.Total
			shortRen += b.Renumbered
		case i >= 8: // >= 12 hours
			ev.LongN += b.Total
			longRen += b.Renumbered
		}
	}
	if ev.ShortN > 0 {
		ev.ShortRate = float64(shortRen) / float64(ev.ShortN)
	}
	if ev.LongN > 0 {
		ev.LongRate = float64(longRen) / float64(ev.LongN)
	}
	if ev.ShortN < linkMinShortSamples {
		return LinkUnknown, ev
	}
	switch {
	case ev.ShortRate >= linkPPPShortRate:
		return LinkPPP, ev
	case ev.LongN >= linkMinLongSamples && ev.LongRate >= linkDHCPLongRate && ev.LongRate > ev.ShortRate:
		return LinkDHCP, ev
	case ev.LongN >= linkMinLongSamples:
		return LinkStable, ev
	default:
		return LinkUnknown, ev
	}
}

// LinkTypeRow is one AS's inference.
type LinkTypeRow struct {
	ASN      uint32
	Probes   int
	Type     LinkType
	Evidence LinkEvidence
}

// LinkTypesByAS infers the link type of every AS with enough outage
// evidence, sorted by probe count descending then ASN.
func LinkTypesByAS(oa *OutageAnalysis, res *FilterResult) []LinkTypeRow {
	var rows []LinkTypeRow
	for asn, ids := range ByAS(res) {
		bins := oa.DurationBins(res, ids)
		lt, ev := InferLinkType(bins)
		if lt == LinkUnknown {
			continue
		}
		rows = append(rows, LinkTypeRow{ASN: asn, Probes: len(ids), Type: lt, Evidence: ev})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Probes != rows[j].Probes {
			return rows[i].Probes > rows[j].Probes
		}
		return rows[i].ASN < rows[j].ASN
	})
	return rows
}

// LinkTypeOf is a convenience for a single AS.
func LinkTypeOf(oa *OutageAnalysis, res *FilterResult, ids []atlasdata.ProbeID) (LinkType, LinkEvidence) {
	return InferLinkType(oa.DurationBins(res, ids))
}
