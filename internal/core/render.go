package core

import (
	"fmt"
	"sort"
	"strings"

	"dynaddr/internal/stats"
	"dynaddr/internal/tables"
)

// NameFunc resolves an ASN to a display name; nil and unknown ASNs fall
// back to "AS<number>".
type NameFunc func(asn uint32) string

func displayName(names NameFunc, asn uint32) string {
	if names != nil {
		if n := names(asn); n != "" {
			return n
		}
	}
	return fmt.Sprintf("AS%d", asn)
}

// RenderTable2 formats the probe-filtering summary.
func (r *Report) RenderTable2() *tables.Table {
	t := tables.New("Table 2: probe filtering", "Category", "Probes")
	total := 0
	for _, c := range Categories {
		total += r.Table2[c]
	}
	t.AddRow("Total Probes", tables.I(total))
	for _, c := range Categories {
		if c == CatAnalyzable {
			continue
		}
		t.AddRow(c.String(), tables.I(r.Table2[c]))
	}
	t.AddRow("Analyzable (geography)", tables.I(len(r.Filter.GeoProbes)))
	t.AddRow("Multiple ASes", tables.I(len(r.Filter.GeoProbes)-len(r.Filter.ASProbes)))
	t.AddRow("Analyzable (AS-level)", tables.I(len(r.Filter.ASProbes)))
	return t
}

// RenderTable5 formats the periodic-AS table.
func (r *Report) RenderTable5(names NameFunc) *tables.Table {
	return RenderTable5Rows(r.Table5All, r.Table5, names)
}

// RenderTable5Rows formats Table 5 from explicit row slices — shared by
// the batch Report and the live-analysis Result, so the two modes'
// renderings are eyeball- (and byte-) comparable.
func RenderTable5Rows(all []ASPeriodicRow, rows []ASPeriodicRow, names NameFunc) *tables.Table {
	t := tables.New("Table 5: periodically renumbering ASes",
		"AS", "ASN", "d(h)", "N", "f>0.25", "f>0.5", "f>0.75", "MAX<=d", "Harmonic")
	for _, row := range all {
		t.AddRow("All", "", tables.F(row.D, 0), tables.I(row.N), tables.I(row.NPeriodic),
			tables.Pct(row.FracOver50), tables.Pct(row.FracOver75),
			tables.Pct(row.FracMaxLeD), tables.Pct(row.FracHarmonic))
	}
	for _, row := range rows {
		t.AddRow(displayName(names, row.ASN), tables.I(int(row.ASN)), tables.F(row.D, 0),
			tables.I(row.N), tables.I(row.NPeriodic),
			tables.Pct(row.FracOver50), tables.Pct(row.FracOver75),
			tables.Pct(row.FracMaxLeD), tables.Pct(row.FracHarmonic))
	}
	return t
}

// RenderTable6 formats the outage-renumbering table.
func (r *Report) RenderTable6(names NameFunc) *tables.Table {
	return RenderTable6Rows(r.Table6, names)
}

// RenderTable6Rows formats Table 6 from explicit rows (see
// RenderTable5Rows for why this seam exists).
func RenderTable6Rows(rows []ASOutageRow, names NameFunc) *tables.Table {
	t := tables.New("Table 6: ASes renumbering upon outages",
		"AS", "ASN", "N", "P(ac|nw)>0.8", "P(ac|nw)=1", "P(ac|pw)>0.8", "P(ac|pw)=1")
	for _, row := range rows {
		t.AddRow(displayName(names, row.ASN), tables.I(int(row.ASN)), tables.I(row.N),
			tables.Pct(row.NwOver80), tables.Pct(row.NwEq1),
			tables.Pct(row.PwOver80), tables.Pct(row.PwEq1))
	}
	return t
}

// RenderTable7 formats the prefix-change table.
func (r *Report) RenderTable7(names NameFunc) *tables.Table {
	return RenderTable7Rows(r.Table7All, r.Table7ByAS, names)
}

// RenderTable7Rows formats Table 7 from explicit rows (see
// RenderTable5Rows for why this seam exists).
func RenderTable7Rows(all PrefixChangeRow, rows []PrefixChangeRow, names NameFunc) *tables.Table {
	t := tables.New("Table 7: address changes across prefixes",
		"AS", "ASN", "Changes", "DiffBGP", "%", "Diff/16", "%", "Diff/8", "%")
	t.AddRow("All", "", tables.I(all.Changes),
		tables.I(all.DiffBGP), tables.Pct(all.FracBGP()),
		tables.I(all.DiffS16), tables.Pct(all.FracS16()),
		tables.I(all.DiffS8), tables.Pct(all.FracS8()))
	for _, row := range rows {
		t.AddRow(displayName(names, row.ASN), tables.I(int(row.ASN)), tables.I(row.Changes),
			tables.I(row.DiffBGP), tables.Pct(row.FracBGP()),
			tables.I(row.DiffS16), tables.Pct(row.FracS16()),
			tables.I(row.DiffS8), tables.Pct(row.FracS8()))
	}
	return t
}

// cdfMilestones are the duration marks (hours) at which CDF tables are
// sampled, mirroring the paper's x-axis ticks.
var cdfMilestones = []struct {
	label string
	hours float64
}{
	{"1h", 1}, {"6h", 6}, {"12h", 12}, {"1d", 24}, {"3d", 72},
	{"1w", 168}, {"2w", 336}, {"1mo", 720}, {"2mo", 1440},
}

func cdfValueAt(cdf []stats.Point, hours float64) float64 {
	var y float64
	for _, p := range cdf {
		if p.X <= hours {
			y = p.Y
		} else {
			break
		}
	}
	return y
}

// renderCDFs formats a family of CDFs sampled at the milestone marks.
func renderCDFs(title string, curves []ASCDF, names NameFunc) *tables.Table {
	headers := []string{"Series", "Probes", "Years"}
	for _, m := range cdfMilestones {
		headers = append(headers, m.label)
	}
	t := tables.New(title, headers...)
	for _, c := range curves {
		label := c.Label
		if label == "" {
			label = displayName(names, c.ASN)
		}
		row := []string{label, tables.I(c.Probes), tables.F(c.TotalYears, 2)}
		for _, m := range cdfMilestones {
			row = append(row, tables.F(cdfValueAt(c.CDF, m.hours), 2))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderFigure1 formats the per-continent TTF CDFs.
func (r *Report) RenderFigure1() *tables.Table {
	return renderCDFs("Figure 1: total time fraction CDF by continent", r.Figure1, nil)
}

// RenderFigure2 formats the top-AS TTF CDFs.
func (r *Report) RenderFigure2(names NameFunc) *tables.Table {
	return renderCDFs("Figure 2: total time fraction CDF, top ASes", r.Figure2, names)
}

// RenderFigure3 formats the German-AS TTF CDFs.
func (r *Report) RenderFigure3(names NameFunc) *tables.Table {
	return renderCDFs("Figure 3: total time fraction CDF, German ASes", r.Figure3, names)
}

// RenderHourHists formats Figures 4 and 5: the hour-of-day histograms of
// periodic changes for the two most-periodic ASes.
func (r *Report) RenderHourHists(names NameFunc) *tables.Table {
	t := tables.New("Figures 4/5: hour of day of periodic address changes (GMT)",
		"AS", "d(h)", "Hours 0-5", "6-11", "12-17", "18-23", "NightShare")
	for _, h := range r.HourHists {
		var q [4]int
		total := 0
		for hr, c := range h.Hours {
			q[hr/6] += c
			total += c
		}
		night := 0.0
		if total > 0 {
			night = float64(q[0]) / float64(total)
		}
		t.AddRow(displayName(names, h.ASN), tables.F(h.D, 0),
			tables.I(q[0]), tables.I(q[1]), tables.I(q[2]), tables.I(q[3]),
			tables.Pct(night))
	}
	return t
}

// RenderFigure6 summarises the reboot-per-day series: quartiles plus the
// detected firmware days.
func (r *Report) RenderFigure6() *tables.Table {
	return RenderFigure6Rows(r.Figure6RebootsPerDay, r.Figure6FirmwareDays)
}

// RenderFigure6Rows formats Figure 6 from the explicit series (see
// RenderTable5Rows for why this seam exists).
func RenderFigure6Rows(rebootsPerDay []int, firmwareDays []int) *tables.Table {
	t := tables.New("Figure 6: probes rebooting per day", "Metric", "Value")
	var s stats.Sample
	for _, c := range rebootsPerDay {
		s.Add(float64(c))
	}
	t.AddRow("Days", tables.I(len(rebootsPerDay)))
	t.AddRow("Median reboots/day", tables.F(s.Median(), 1))
	t.AddRow("P95 reboots/day", tables.F(s.Quantile(0.95), 1))
	t.AddRow("Max reboots/day", tables.F(s.Quantile(1), 0))
	days := make([]string, len(firmwareDays))
	for i, d := range firmwareDays {
		days[i] = fmt.Sprintf("%d", d)
	}
	t.AddRow("Firmware days", strings.Join(days, " "))
	return t
}

// renderPacECDFs formats Figures 7/8 sampled at probability milestones.
func renderPacECDFs(title string, curves []PacECDF, names NameFunc) *tables.Table {
	t := tables.New(title, "AS", "Probes", "P=0", "P<=0.5", "P<0.999", "P(ac)=1 share")
	for _, c := range curves {
		at := func(x float64) float64 { return cdfValueAt(c.Points, x) }
		t.AddRow(displayName(names, c.ASN), tables.I(c.Probes),
			tables.F(at(0), 2), tables.F(at(0.5), 2), tables.F(at(0.999), 2),
			tables.F(1-at(0.999), 2))
	}
	return t
}

// RenderFigure7 formats the P(ac|nw) ECDFs.
func (r *Report) RenderFigure7(names NameFunc) *tables.Table {
	return RenderFigure7Rows(r.Figure7, names)
}

// RenderFigure7Rows formats Figure 7 from explicit curves (see
// RenderTable5Rows for why this seam exists).
func RenderFigure7Rows(curves []PacECDF, names NameFunc) *tables.Table {
	return renderPacECDFs("Figure 7: P(address change | network outage) per probe", curves, names)
}

// RenderFigure8 formats the P(ac|pw) ECDFs.
func (r *Report) RenderFigure8(names NameFunc) *tables.Table {
	return RenderFigure8Rows(r.Figure8, names)
}

// RenderFigure8Rows formats Figure 8 from explicit curves (see
// RenderTable5Rows for why this seam exists).
func RenderFigure8Rows(curves []PacECDF, names NameFunc) *tables.Table {
	return renderPacECDFs("Figure 8: P(address change | power outage) per probe, v3 only", curves, names)
}

// RenderLinkTypes formats the per-AS access-technology inferences.
func (r *Report) RenderLinkTypes(names NameFunc) *tables.Table {
	t := tables.New("Extension: link-type inference from outage response",
		"AS", "ASN", "Probes", "Type", "ShortRate", "LongRate")
	for _, row := range r.LinkTypes {
		t.AddRow(displayName(names, row.ASN), tables.I(int(row.ASN)),
			tables.I(row.Probes), row.Type.String(),
			tables.F(row.Evidence.ShortRate, 2), tables.F(row.Evidence.LongRate, 2))
	}
	return t
}

// RenderAdminEvents formats detected administrative renumberings.
func (r *Report) RenderAdminEvents(names NameFunc) *tables.Table {
	t := tables.New("Extension: administrative (en-masse) renumbering events",
		"AS", "ASN", "StudyDay", "Probes", "FracOfAS")
	for _, e := range r.AdminEvents {
		t.AddRow(displayName(names, e.ASN), tables.I(int(e.ASN)),
			tables.I(e.Day), tables.I(e.Probes), tables.Pct(e.FracOfAS))
	}
	return t
}

// RenderChurnAndV6 formats the churn and IPv6 extension summaries.
func (r *Report) RenderChurnAndV6() *tables.Table {
	t := tables.New("Extension: address-space churn and IPv6 ephemerality",
		"Metric", "Value")
	t.AddRow("Mean daily active-set turnover", tables.Pct(r.ChurnMean))
	if r.V6 != nil {
		t.AddRow("IPv6 probes observed", tables.I(len(r.V6.Probes)))
		t.AddRow("IPv6 ephemeral address share", tables.Pct(r.V6.EphemeralShare))
		t.AddRow("IPv6 daily-rotating probes", tables.I(r.V6.RotatingProbes))
	}
	return t
}

// RenderByCountry formats the per-country total-time-fraction summary —
// the paper's §4.2 intermediate aggregation between probes and
// continents. Countries sort by probe count descending.
func (r *Report) RenderByCountry(minProbes int) *tables.Table {
	t := tables.New("Per-country address durations (geographic analysis)",
		"Country", "Probes", "Years", "f@12h", "f@24h", "f@168h", "Mass<=1w")
	ttfs := ProbeTTFs(r.Filter)
	byCountry := ByCountry(r.Filter)
	type row struct {
		country string
		n       int
	}
	var rows []row
	for c, ids := range byCountry {
		if len(ids) >= minProbes {
			rows = append(rows, row{c, len(ids)})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].country < rows[j].country
	})
	for _, rw := range rows {
		g := GroupTTF(ttfs, byCountry[rw.country])
		t.AddRow(rw.country, tables.I(rw.n), tables.F(g.Total()/(24*365), 2),
			tables.F(g.MassAt(12), 2), tables.F(g.MassAt(24), 2),
			tables.F(g.MassAt(168), 2), tables.F(g.FractionAtMost(168), 2))
	}
	return t
}

// RenderBlacklist formats per-AS blocklist guidance.
func RenderBlacklist(advice []BlacklistAdvice, names NameFunc) *tables.Table {
	t := tables.New("Extension: blocklist entry guidance",
		"AS", "ASN", "Probes", "MedianHold", "P90Hold", "RebootEvade", "SuggestedTTL", "PrefixEscape")
	for _, a := range advice {
		evade := "no"
		if a.EvadableByReboot {
			evade = "yes"
		}
		t.AddRow(displayName(names, a.ASN), tables.I(int(a.ASN)), tables.I(a.Probes),
			tables.F(a.MedianHoldHours, 0)+"h", tables.F(a.P90HoldHours, 0)+"h",
			evade, a.SuggestedTTL.String(), tables.Pct(a.PrefixEscapeShare))
	}
	return t
}

// RenderLeaseEstimates formats the naive lease estimator's output,
// including its refusals — the reproducible form of the paper's §8
// negative result.
func RenderLeaseEstimates(ests map[uint32]LeaseEstimate, names NameFunc) *tables.Table {
	t := tables.New("Extension: naive DHCP lease inference (upper bounds only)",
		"AS", "ASN", "Lease<=", "Verdict")
	asns := make([]uint32, 0, len(ests))
	for asn := range ests {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		est := ests[asn]
		bound, verdict := "-", "refused: renumbers on any reconnect (PPP) or never"
		if est.Meaningful {
			bound = est.UpperBound.String()
			verdict = "lease-like behaviour"
		}
		t.AddRow(displayName(names, asn), tables.I(int(asn)), bound, verdict)
	}
	return t
}

// RenderFigure9 formats the outage-duration renumbering histograms.
func (r *Report) RenderFigure9(names NameFunc) *tables.Table {
	t := tables.New("Figure 9: renumbering by outage duration",
		"AS", "Bin", "Outages", "Renumbered", "%")
	for _, f := range r.Figure9 {
		for _, b := range f.Bins {
			t.AddRow(displayName(names, f.ASN), b.Label,
				tables.I(b.Total), tables.I(b.Renumbered), tables.Pct(b.Pct()))
		}
	}
	return t
}
