package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

func TestAssociateGapsPriority(t *testing.T) {
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 1000, "10.0.0.1"),
		v4e(1, 2000, 3000, "10.0.0.2"), // gap 1000-2000: network outage
		v4e(1, 5000, 6000, "10.0.0.2"), // gap 3000-5000: power outage
		v4e(1, 7000, 8000, "10.0.0.3"), // gap 6000-7000: nothing
	}
	networks := []NetworkOutage{{Probe: 1, Start: 1200, End: 1700}}
	powers := []PowerOutage{{Probe: 1, RebootAt: 4000, GapStart: 3100, GapEnd: 4900}}
	gaps := AssociateGaps(entries, networks, powers)
	if len(gaps) != 3 {
		t.Fatalf("gaps = %d, want 3", len(gaps))
	}
	if gaps[0].Cause != NetworkCause || !gaps[0].Changed {
		t.Errorf("gap 0 = %+v, want changed network", gaps[0])
	}
	if gaps[0].OutageDuration != 500 {
		t.Errorf("gap 0 outage duration = %v", gaps[0].OutageDuration)
	}
	if gaps[1].Cause != PowerCause || gaps[1].Changed {
		t.Errorf("gap 1 = %+v, want unchanged power", gaps[1])
	}
	if gaps[1].OutageDuration != 1800 {
		t.Errorf("gap 1 outage duration = %v", gaps[1].OutageDuration)
	}
	if gaps[2].Cause != NoOutage || !gaps[2].Changed {
		t.Errorf("gap 2 = %+v, want changed no-outage", gaps[2])
	}
}

func TestAssociateGapsNetworkBeatsPower(t *testing.T) {
	// Both a network outage and a reboot in the same gap: the paper's
	// priority picks network.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 1000, "10.0.0.1"),
		v4e(1, 5000, 6000, "10.0.0.2"),
	}
	networks := []NetworkOutage{{Probe: 1, Start: 1500, End: 2000}}
	powers := []PowerOutage{{Probe: 1, RebootAt: 3000, GapStart: 2500, GapEnd: 4500}}
	gaps := AssociateGaps(entries, networks, powers)
	if len(gaps) != 1 || gaps[0].Cause != NetworkCause {
		t.Errorf("gaps = %+v, want network priority", gaps)
	}
}

func TestAssociateGapsOutsideGapIgnored(t *testing.T) {
	entries := []atlasdata.ConnLogEntry{
		v4e(1, 0, 1000, "10.0.0.1"),
		v4e(1, 2000, 30000, "10.0.0.2"),
		v4e(1, 31000, 40000, "10.0.0.3"),
	}
	// Outage within the second connection, not a gap (detected e.g. from
	// partial loss), must not classify either gap.
	networks := []NetworkOutage{{Probe: 1, Start: 10000, End: 12000}}
	gaps := AssociateGaps(entries, networks, nil)
	for i, g := range gaps {
		if g.Cause != NoOutage {
			t.Errorf("gap %d cause = %v, want no-outage", i, g.Cause)
		}
	}
}

func TestCauseString(t *testing.T) {
	if NoOutage.String() != "no-outage" || NetworkCause.String() != "network" || PowerCause.String() != "power" {
		t.Error("Cause.String wrong")
	}
}

func TestProbeOutageStatsPac(t *testing.T) {
	st := ProbeOutageStats{NetworkGaps: 4, NetworkChanged: 3, PowerGaps: 2, PowerChanged: 2}
	if p, ok := st.PacNetwork(); !ok || p != 0.75 {
		t.Errorf("PacNetwork = %v %v", p, ok)
	}
	if p, ok := st.PacPower(); !ok || p != 1 {
		t.Errorf("PacPower = %v %v", p, ok)
	}
	empty := ProbeOutageStats{}
	if _, ok := empty.PacNetwork(); ok {
		t.Error("no network gaps should yield no probability")
	}
}

func TestDurationBinEdges(t *testing.T) {
	if len(OutageDurationBins)+1 != len(OutageDurationBinLabels) {
		t.Fatal("bin labels out of sync with edges")
	}
	for i := 1; i < len(OutageDurationBins); i++ {
		if OutageDurationBins[i] <= OutageDurationBins[i-1] {
			t.Fatal("bin edges not ascending")
		}
	}
}

func TestDurationBinRowPct(t *testing.T) {
	r := DurationBinRow{Total: 4, Renumbered: 3}
	if r.Pct() != 0.75 {
		t.Errorf("Pct = %v", r.Pct())
	}
	if (DurationBinRow{}).Pct() != 0 {
		t.Error("empty bin Pct should be 0")
	}
}

// End-to-end mini-world for the outage pipeline: one probe whose gaps we
// fully control.
func TestAnalyzeOutagesEndToEnd(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	t0 := simclock.StudyStart

	// Connection log: 4 long sessions with 3 gaps.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, t0, t0.Add(100*day), "10.0.0.1"),
		// Gap A at day 100: network outage, address changes.
		v4e(1, t0.Add(100*day+2*simclock.Hour), t0.Add(200*day), "10.0.0.2"),
		// Gap B at day 200: power outage (reboot + silence), no change.
		v4e(1, t0.Add(200*day+2*simclock.Hour), t0.Add(300*day), "10.0.0.2"),
		// Gap C at day 300: nothing, address changes.
		v4e(1, t0.Add(300*day+30*simclock.Minute), t0.Add(360*day), "10.0.0.3"),
	}
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 350}
	ds.ConnLogs[1] = entries

	// k-root: good rounds bracketing everything, loss run in gap A with
	// growing LTS, silence in gap B.
	gapA := t0.Add(100 * day)
	gapB := t0.Add(200 * day)
	ds.KRoot[1] = []atlasdata.KRootRound{
		{Probe: 1, Timestamp: t0.Add(day), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: gapA.Add(-2 * simclock.Minute), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: gapA.Add(4 * simclock.Minute), Sent: 3, Success: 0, LTS: 400},
		{Probe: 1, Timestamp: gapA.Add(30 * simclock.Minute), Sent: 3, Success: 0, LTS: 2000},
		{Probe: 1, Timestamp: gapA.Add(2*simclock.Hour + 5*simclock.Minute), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: gapB.Add(-3 * simclock.Minute), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: gapB.Add(2*simclock.Hour + 4*simclock.Minute), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: t0.Add(350 * day), Sent: 3, Success: 3, LTS: 60},
	}
	// Uptime: a reset at gap B (boot just before the post-gap record).
	bootAt := gapB.Add(2 * simclock.Hour)
	ds.Uptime[1] = []atlasdata.UptimeRecord{
		{Probe: 1, Timestamp: t0, Uptime: 500000},
		{Probe: 1, Timestamp: gapA.Add(2 * simclock.Hour), Uptime: int64(gapA.Add(2*simclock.Hour).Sub(t0)) + 500000},
		{Probe: 1, Timestamp: bootAt.Add(2 * simclock.Minute), Uptime: 120},
		{Probe: 1, Timestamp: t0.Add(300*day + 30*simclock.Minute), Uptime: int64(t0.Add(300*day + 30*simclock.Minute).Sub(bootAt))},
	}

	res := Filter(ds)
	if _, ok := res.Views[1]; !ok {
		t.Fatal("probe should be analyzable")
	}
	oa := AnalyzeOutages(ds, res)
	st := oa.Stats[1]
	if st.NetworkGaps != 1 || st.NetworkChanged != 1 {
		t.Errorf("network stats = %+v", st)
	}
	if st.PowerGaps != 1 || st.PowerChanged != 0 {
		t.Errorf("power stats = %+v", st)
	}
	if st.NoOutageGaps != 1 || st.NoOutageChange != 1 {
		t.Errorf("no-outage stats = %+v", st)
	}
}

func TestAnalyzeOutagesV12PowerExcluded(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	t0 := simclock.StudyStart
	entries := []atlasdata.ConnLogEntry{
		v4e(1, t0, t0.Add(100*day), "10.0.0.1"),
		v4e(1, t0.Add(100*day+2*simclock.Hour), t0.Add(300*day), "10.0.0.2"),
	}
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V1, ConnectedDays: 290}
	ds.ConnLogs[1] = entries
	gap := t0.Add(100 * day)
	ds.KRoot[1] = []atlasdata.KRootRound{
		{Probe: 1, Timestamp: gap.Add(-2 * simclock.Minute), Sent: 3, Success: 3, LTS: 60},
		{Probe: 1, Timestamp: gap.Add(2*simclock.Hour + 4*simclock.Minute), Sent: 3, Success: 3, LTS: 60},
	}
	bootAt := gap.Add(2 * simclock.Hour)
	ds.Uptime[1] = []atlasdata.UptimeRecord{
		{Probe: 1, Timestamp: t0, Uptime: 500000},
		{Probe: 1, Timestamp: bootAt.Add(time2(90)), Uptime: 90},
	}
	res := Filter(ds)
	oa := AnalyzeOutages(ds, res)
	st := oa.Stats[1]
	if st.PowerGaps != 0 {
		t.Errorf("v1 probe power gaps = %d, want 0 (excluded)", st.PowerGaps)
	}
}

func time2(s int64) simclock.Duration { return simclock.Duration(s) }
