package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/isp"
	"dynaddr/internal/simclock"
)

func TestDailyActiveSetsSpansSessions(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	// One connection spanning days 10..12 inclusive.
	entries := []atlasdata.ConnLogEntry{
		v4e(1, simclock.StudyStart.Add(10*day+simclock.Hour), simclock.StudyStart.Add(12*day+simclock.Hour), "10.0.0.1"),
	}
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 100}
	ds.ConnLogs[1] = entries
	sets := DailyActiveSets(ds, []atlasdata.ProbeID{1})
	for d := 10; d <= 12; d++ {
		if len(sets[d]) != 1 {
			t.Errorf("day %d active set = %d, want 1", d, len(sets[d]))
		}
	}
	if len(sets[9]) != 0 || len(sets[13]) != 0 {
		t.Error("activity bled outside the session days")
	}
}

func TestDailyChurnStaticAddress(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	entries := []atlasdata.ConnLogEntry{
		v4e(1, simclock.StudyStart, simclock.StudyStart.Add(100*day), "10.0.0.1"),
	}
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 100}
	ds.ConnLogs[1] = entries
	points := DailyChurn(ds, []atlasdata.ProbeID{1})
	if MeanTurnover(points) != 0 {
		t.Errorf("static address produced churn %v", MeanTurnover(points))
	}
}

func TestDailyChurnDailyRenumbering(t *testing.T) {
	ds := buildDS(t)
	day := simclock.Day
	// A fresh address every day for 50 days: 100% daily turnover.
	var entries []atlasdata.ConnLogEntry
	for d := 0; d < 50; d++ {
		addr := ip4OfDay(d)
		entries = append(entries,
			v4e(1, simclock.StudyStart.Add(simclock.Duration(d)*day+simclock.Minute),
				simclock.StudyStart.Add(simclock.Duration(d)*day+23*simclock.Hour), addr))
	}
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 50}
	ds.ConnLogs[1] = entries
	points := DailyChurn(ds, []atlasdata.ProbeID{1})
	active := 0
	var turnover float64
	for _, p := range points[:49] {
		if p.PrevActive > 0 && p.Active > 0 {
			active++
			turnover += p.Turnover()
		}
	}
	if active == 0 {
		t.Fatal("no active churn days")
	}
	if avg := turnover / float64(active); avg < 0.99 {
		t.Errorf("daily renumbering turnover = %v, want ~1.0", avg)
	}
}

func ip4OfDay(d int) string {
	return "10.0." + itoa(d/250) + "." + itoa(1+d%250)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestChurnPointTurnover(t *testing.T) {
	p := ChurnPoint{PrevActive: 10, Active: 10, Appeared: 2, Gone: 2}
	// union = 12, delta = 4.
	if got := p.Turnover(); got < 0.33 || got > 0.34 {
		t.Errorf("Turnover = %v", got)
	}
	if (ChurnPoint{}).Turnover() != 0 {
		t.Error("empty point turnover should be 0")
	}
}

func TestIntegrationChurnShape(t *testing.T) {
	w, rep := paperWorld(t)
	_ = w
	points := DailyChurn(w.Dataset, rep.Filter.GeoProbes)
	mean := MeanTurnover(points)
	// Dynamic renumbering drives substantial daily churn in a probe
	// population dominated by daily/weekly renumberers; the raw vantage
	// analogue in Richter et al. saw 8% across the whole IPv4 space.
	if mean <= 0.05 || mean >= 0.95 {
		t.Errorf("mean daily turnover = %.3f, want a substantial interior value", mean)
	}
	// Static-only population churns near zero.
	var staticIDs []atlasdata.ProbeID
	for id, truth := range w.Truth.Probes {
		if truth.Kind == isp.Static {
			staticIDs = append(staticIDs, id)
		}
	}
	if len(staticIDs) > 0 {
		staticMean := MeanTurnover(DailyChurn(w.Dataset, staticIDs))
		if staticMean > mean/2 {
			t.Errorf("static probes churn %.3f, dynamic population %.3f", staticMean, mean)
		}
	}
}
