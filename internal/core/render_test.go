package core

import (
	"strings"
	"testing"
)

func renderReport(t *testing.T) *Report {
	t.Helper()
	_, rep := paperWorld(t)
	return rep
}

func nameFor(asn uint32) string {
	if asn == 3320 {
		return "DTAG"
	}
	return ""
}

func TestRenderTable2(t *testing.T) {
	rep := renderReport(t)
	out := rep.RenderTable2().String()
	for _, want := range []string{"Total Probes", "Never changed", "Dual Stack",
		"Analyzable (geography)", "Multiple ASes", "Analyzable (AS-level)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable5(t *testing.T) {
	rep := renderReport(t)
	out := rep.RenderTable5(nameFor).String()
	if !strings.Contains(out, "All") {
		t.Error("Table 5 render missing the All rows")
	}
	if !strings.Contains(out, "DTAG") {
		t.Error("Table 5 render should use the name resolver")
	}
	if !strings.Contains(out, "AS3215") {
		t.Error("unresolved ASNs should fall back to ASnnnn form")
	}
}

func TestRenderTable6And7(t *testing.T) {
	rep := renderReport(t)
	if out := rep.RenderTable6(nil).String(); !strings.Contains(out, "P(ac|nw)>0.8") {
		t.Errorf("Table 6 header missing:\n%s", out)
	}
	out := rep.RenderTable7(nil).String()
	if !strings.Contains(out, "All") || !strings.Contains(out, "DiffBGP") {
		t.Errorf("Table 7 render malformed:\n%s", out)
	}
}

func TestRenderFigures(t *testing.T) {
	rep := renderReport(t)
	cases := map[string]string{
		"fig1": rep.RenderFigure1().String(),
		"fig2": rep.RenderFigure2(nil).String(),
		"fig3": rep.RenderFigure3(nil).String(),
		"hh":   rep.RenderHourHists(nil).String(),
		"fig6": rep.RenderFigure6().String(),
		"fig7": rep.RenderFigure7(nil).String(),
		"fig8": rep.RenderFigure8(nil).String(),
		"fig9": rep.RenderFigure9(nil).String(),
	}
	for name, out := range cases {
		if strings.Contains(out, "tables:") {
			t.Errorf("%s render errored: %s", name, out)
		}
		if len(strings.Split(out, "\n")) < 3 {
			t.Errorf("%s render suspiciously short:\n%s", name, out)
		}
	}
	if !strings.Contains(cases["fig1"], "EU") {
		t.Error("Figure 1 should list EU")
	}
	if !strings.Contains(cases["fig6"], "Firmware days") {
		t.Error("Figure 6 should list firmware days")
	}
	if !strings.Contains(cases["fig9"], "<5m") {
		t.Error("Figure 9 should include the paper's first duration bin")
	}
}

func TestCDFValueAt(t *testing.T) {
	rep := renderReport(t)
	for _, c := range rep.Figure1 {
		prev := 0.0
		for _, m := range cdfMilestones {
			v := cdfValueAt(c.CDF, m.hours)
			if v < prev {
				t.Fatalf("%s: CDF sample not monotone at %s", c.Label, m.label)
			}
			prev = v
		}
		if cdfValueAt(c.CDF, 1e12) < cdfValueAt(c.CDF, 1) {
			t.Fatal("tail sample below head sample")
		}
	}
}

func TestRenderByCountry(t *testing.T) {
	rep := renderReport(t)
	out := rep.RenderByCountry(3).String()
	for _, want := range []string{"DE", "FR", "f@24h"} {
		if !strings.Contains(out, want) {
			t.Errorf("country render missing %q:\n%s", want, out)
		}
	}
}
