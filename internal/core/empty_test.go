package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
)

// TestRunOnEmptyDataset: the full pipeline over a dataset with no
// probes must return an empty report, not panic — the behaviour a
// downstream user hits when pointing churnctl at a fresh directory.
func TestRunOnEmptyDataset(t *testing.T) {
	rep := Run(atlasdata.NewDataset(), Options{})
	if len(rep.Filter.GeoProbes) != 0 || len(rep.Filter.ASProbes) != 0 {
		t.Error("empty dataset produced analyzable probes")
	}
	if len(rep.Table5) != 0 || len(rep.Table6) != 0 || len(rep.Table7ByAS) != 0 {
		t.Error("empty dataset produced table rows")
	}
	if rep.Table7All.Changes != 0 {
		t.Error("empty dataset produced changes")
	}
	if len(rep.Figure1) != 0 || len(rep.Figure2) != 0 {
		t.Error("empty dataset produced figures")
	}
	if rep.ChurnMean != 0 {
		t.Error("empty dataset produced churn")
	}
	// Rendering the empty report must not error either.
	for _, s := range []string{
		rep.RenderTable2().String(),
		rep.RenderTable5(nil).String(),
		rep.RenderTable6(nil).String(),
		rep.RenderTable7(nil).String(),
		rep.RenderFigure1().String(),
		rep.RenderFigure6().String(),
		rep.RenderChurnAndV6().String(),
	} {
		if s == "" {
			t.Error("empty report rendered to nothing")
		}
	}
}

// TestRunOnStaticOnlyDataset: a dataset where nothing ever changes must
// flow through every stage cleanly.
func TestRunOnStaticOnlyDataset(t *testing.T) {
	ds := buildDS(t)
	addProbe(ds, 1, atlasdata.V3, nil, longSessions(1, "10.0.0.1", "10.0.0.1", "10.0.0.1", "10.0.0.1")...)
	addProbe(ds, 2, atlasdata.V3, nil, longSessions(2, "10.0.0.2", "10.0.0.2", "10.0.0.2", "10.0.0.2")...)
	rep := Run(ds, Options{})
	if rep.Table2[CatNeverChanged] != 2 {
		t.Errorf("never-changed count = %d", rep.Table2[CatNeverChanged])
	}
	if len(rep.Filter.GeoProbes) != 0 {
		t.Error("static probes leaked into the analyzable set")
	}
}
