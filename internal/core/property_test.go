package core

import (
	"testing"
	"testing/quick"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// genLog builds a synthetic connection log from compact fuzz input:
// each element selects an address from a small alphabet (0 => IPv6
// session), with strictly increasing non-overlapping times.
func genLog(choices []byte) []atlasdata.ConnLogEntry {
	var out []atlasdata.ConnLogEntry
	t := simclock.StudyStart
	for _, c := range choices {
		dur := simclock.Duration(1+int(c%7)) * simclock.Hour
		e := atlasdata.ConnLogEntry{Probe: 1, Start: t, End: t.Add(dur)}
		if c%11 == 0 {
			e.Family = atlasdata.V6
			e.V6Addr = "2001:db8::1"
		} else {
			e.Family = atlasdata.V4
			e.Addr = ip4.FromOctets(10, 0, 0, 1+c%5)
		}
		out = append(out, e)
		t = t.Add(dur + 10*simclock.Minute)
	}
	return out
}

func TestPropertyChangesMatchDurations(t *testing.T) {
	// For any log: every bounded duration is delimited by changes, so
	// a v6-free log satisfies len(durations) == max(0, changes-1) after
	// run collapsing.
	f := func(choices []byte) bool {
		entries := genLog(choices)
		changes := V4Changes(entries)
		durations := V4Durations(entries)
		// Durations never overlap and are ordered.
		for i := 1; i < len(durations); i++ {
			if durations[i].Start < durations[i-1].End {
				return false
			}
		}
		// Every duration is strictly positive and bounded by the log.
		for _, d := range durations {
			if d.Duration() <= 0 {
				return false
			}
			if d.Start < entries[0].Start || d.End > entries[len(entries)-1].End {
				return false
			}
		}
		// Durations cannot outnumber changes-1 (each needs a change on
		// both sides; v6 splits only reduce the count).
		if len(changes) > 0 && len(durations) > len(changes)-1 {
			return false
		}
		if len(changes) == 0 && len(durations) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyChangeEndpointsDiffer(t *testing.T) {
	f := func(choices []byte) bool {
		for _, ch := range V4Changes(genLog(choices)) {
			if ch.From == ch.To {
				return false
			}
			if ch.NextStart < ch.PrevEnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDurationAddressesAppearInLog(t *testing.T) {
	f := func(choices []byte) bool {
		entries := genLog(choices)
		present := map[ip4.Addr]bool{}
		for _, e := range entries {
			if e.IsV4() {
				present[e.Addr] = true
			}
		}
		for _, d := range V4Durations(entries) {
			if !present[d.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTTFMassSumsToOne(t *testing.T) {
	f := func(choices []byte) bool {
		durations := V4Durations(genLog(choices))
		ttf := TTF(durations)
		if len(durations) == 0 {
			return ttf.Total() == 0
		}
		var acc float64
		for _, v := range ttf.Values() {
			acc += ttf.MassAt(v)
		}
		return acc > 0.999 && acc < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGapsCoverLog(t *testing.T) {
	// AssociateGaps yields exactly len(entries)-1 gaps, in order,
	// spanning each inter-connection interval.
	f := func(choices []byte) bool {
		entries := genLog(choices)
		gaps := AssociateGaps(entries, nil, nil)
		if len(entries) == 0 {
			return len(gaps) == 0
		}
		if len(gaps) != len(entries)-1 {
			return false
		}
		for i, g := range gaps {
			if g.PrevEnd != entries[i].End || g.NextStart != entries[i+1].Start {
				return false
			}
			if g.Cause != NoOutage {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRebootDetectionStable(t *testing.T) {
	// Uptime records consistent with continuous operation never yield
	// reboots, whatever the reporting cadence.
	f := func(gaps []uint16) bool {
		var recs []atlasdata.UptimeRecord
		t0 := simclock.StudyStart
		boot := t0.Add(-simclock.Day)
		at := t0
		for _, g := range gaps {
			at = at.Add(simclock.Duration(g) + simclock.Minute)
			recs = append(recs, atlasdata.UptimeRecord{
				Probe: 1, Timestamp: at, Uptime: int64(at.Sub(boot)),
			})
		}
		return len(DetectReboots(recs)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
