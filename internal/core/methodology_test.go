package core

import (
	"fmt"
	"math"
	"testing"

	"dynaddr/internal/radius"
)

// TestMethodologyCrossValidation runs the two measurement methodologies
// the paper's §7 contrasts against the same world and requires them to
// agree:
//
//   - the Atlas-side view (this repository's pipeline): address
//     durations bounded by observed changes, weighted by total time;
//   - the ISP-side view of Maier et al.: Radius accounting sessions,
//     one per address assignment, analysed by session length.
//
// For a heavily periodic ISP the Radius session-length mode must equal
// the Atlas-side total-time-fraction mode — 24 hours for DTAG.
func TestMethodologyCrossValidation(t *testing.T) {
	_, rep := paperWorld(t)
	byAS := ByAS(rep.Filter)

	for _, tc := range []struct {
		asn  uint32
		mode float64
	}{
		{3320, 24},  // DTAG
		{3215, 168}, // Orange
	} {
		ids := byAS[tc.asn]
		if len(ids) == 0 {
			t.Fatalf("no probes for AS%d", tc.asn)
		}

		// ISP side: replay every probe's connection log through the
		// Radius accountant and analyse session lengths.
		acct := radius.NewAccountant()
		for _, id := range ids {
			user := fmt.Sprintf("probe-%d", id)
			if err := radius.AccountConnLog(acct, user, rep.Filter.Views[id].Entries); err != nil {
				t.Fatal(err)
			}
		}
		radiusTTF := radius.SessionDurationTTF(acct.Completed())
		radiusMass := radiusTTF.MassAt(tc.mode)

		// Atlas side: bounded address durations.
		ttfs := ProbeTTFs(rep.Filter)
		atlasTTF := GroupTTF(ttfs, ids)
		atlasMass := atlasTTF.MassAt(tc.mode)

		if radiusMass < 0.3 {
			t.Errorf("AS%d: Radius-side mass at %vh = %.2f, want a dominant mode", tc.asn, tc.mode, radiusMass)
		}
		if atlasMass < 0.3 {
			t.Errorf("AS%d: Atlas-side mass at %vh = %.2f, want a dominant mode", tc.asn, tc.mode, atlasMass)
		}
		// The two views agree within a modest tolerance. They are not
		// identical by construction: Radius sees first/last sessions the
		// Atlas analysis must discard as unbounded (paper Table 1), so
		// the ISP view has slightly more mass overall.
		if math.Abs(radiusMass-atlasMass) > 0.15 {
			t.Errorf("AS%d: methodologies disagree at %vh: radius %.2f vs atlas %.2f",
				tc.asn, tc.mode, radiusMass, atlasMass)
		}
	}
}

// TestMethodologySessionCounts sanity-checks the ledger volume: every
// analyzable probe's address runs become sessions, so the total session
// count must exceed the total change count (changes = sessions - 1 per
// probe, minus v6 interruptions).
func TestMethodologySessionCounts(t *testing.T) {
	_, rep := paperWorld(t)
	acct := radius.NewAccountant()
	changes := 0
	for id, view := range rep.Filter.Views {
		if err := radius.AccountConnLog(acct, fmt.Sprintf("p%d", id), view.Entries); err != nil {
			t.Fatal(err)
		}
		changes += len(view.Changes)
	}
	sessions := len(acct.Completed())
	if sessions <= changes {
		t.Errorf("sessions = %d, changes = %d; ledger lost sessions", sessions, changes)
	}
	if acct.Open() != 0 {
		t.Errorf("%d sessions left open", acct.Open())
	}
}
