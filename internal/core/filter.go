package core

import (
	"sort"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
)

// Category is where the Table 2 filtering pipeline placed a probe.
type Category int

// Filtering categories, in the paper's Table 2 order. Categories are
// exclusive; a probe lands in the first one it matches.
const (
	CatShortLived Category = iota
	CatNeverChanged
	CatDualStack
	CatIPv6Only
	CatTaggedMultihomed
	CatBehaviouralMultihomed
	CatTestingOnly
	CatAnalyzable
)

// String names the category as Table 2 labels it.
func (c Category) String() string {
	switch c {
	case CatShortLived:
		return "Connected under 30 days"
	case CatNeverChanged:
		return "Never changed"
	case CatDualStack:
		return "Dual Stack"
	case CatIPv6Only:
		return "IPv6"
	case CatTaggedMultihomed:
		return "Multihomed / Core / Datacenter (tags)"
	case CatBehaviouralMultihomed:
		return "Multihomed (alternating addresses)"
	case CatTestingOnly:
		return "Only address change from 193.0.0.78"
	case CatAnalyzable:
		return "Analyzable"
	default:
		return "unknown"
	}
}

// Categories lists all categories in Table 2 order.
var Categories = []Category{
	CatShortLived, CatNeverChanged, CatDualStack, CatIPv6Only,
	CatTaggedMultihomed, CatBehaviouralMultihomed, CatTestingOnly,
	CatAnalyzable,
}

// minConnectedDays is the paper's pre-filter: probes connected for an
// aggregate of more than 30 days in 2015.
const minConnectedDays = 30

// ProbeView is a probe that survived filtering, with its cleaned log and
// derived artefacts ready for analysis.
type ProbeView struct {
	Meta    atlasdata.ProbeMeta
	Entries []atlasdata.ConnLogEntry // testing entry stripped
	Changes []AddressChange
	// ASNs annotates Changes: the origin AS of From and To addresses,
	// mapped through the month-matched pfx2as snapshot (0 = unrouted).
	ASNs []struct{ From, To asdb.ASN }
	// MultiAS reports whether any change crossed autonomous systems;
	// such probes stay in the geographic analysis (with cross-AS changes
	// discarded) but leave the AS-level analysis (paper §3.3).
	MultiAS bool
	// ASN is the probe's home AS (the AS of its addresses) when the
	// probe is single-AS, else 0.
	ASN asdb.ASN
}

// FilterResult is the outcome of the Table 2 pipeline over a dataset.
type FilterResult struct {
	// ByCategory maps each category to the probes it absorbed, sorted.
	ByCategory map[Category][]atlasdata.ProbeID
	// Views holds the per-probe analysis artefacts for analyzable probes.
	Views map[atlasdata.ProbeID]*ProbeView
	// GeoProbes is the geography-analyzable set (the paper's 3,038).
	GeoProbes []atlasdata.ProbeID
	// ASProbes is the AS-level-analyzable set (the paper's 2,272):
	// GeoProbes minus multi-AS probes.
	ASProbes []atlasdata.ProbeID
}

// Count returns how many probes landed in a category.
func (r *FilterResult) Count(c Category) int { return len(r.ByCategory[c]) }

// Filter runs the paper's probe-filtering pipeline over a dataset.
func Filter(ds *atlasdata.Dataset) *FilterResult {
	ids := ds.ProbeIDs()
	cats := make([]Category, len(ids))
	views := make([]*ProbeView, len(ids))
	for i, id := range ids {
		cats[i], views[i] = classify(ds, ds.Probes[id])
	}
	return AssembleFilter(ids, cats, views)
}

// ClassifyProbe runs the Table 2 pipeline over one probe: the category
// it lands in and, for analyzable probes, the cleaned per-probe view.
// It reads the dataset without mutating it, so classifications of
// distinct probes may run concurrently — the parallel engine's per-probe
// fan-out seam.
func ClassifyProbe(ds *atlasdata.Dataset, meta atlasdata.ProbeMeta) (Category, *ProbeView) {
	return classify(ds, meta)
}

// AssembleFilter builds a FilterResult from per-probe classifications,
// one slot per probe, listed in ascending probe-ID order (the order
// ds.ProbeIDs returns). views[i] must be non-nil exactly when cats[i]
// is CatAnalyzable. Splitting classification from assembly lets callers
// classify probes on any schedule while the assembled result stays
// identical to the sequential Filter.
func AssembleFilter(ids []atlasdata.ProbeID, cats []Category, views []*ProbeView) *FilterResult {
	res := &FilterResult{
		ByCategory: make(map[Category][]atlasdata.ProbeID),
		Views:      make(map[atlasdata.ProbeID]*ProbeView),
	}
	for i, id := range ids {
		cat := cats[i]
		res.ByCategory[cat] = append(res.ByCategory[cat], id)
		if cat != CatAnalyzable {
			continue
		}
		view := views[i]
		res.Views[id] = view
		res.GeoProbes = append(res.GeoProbes, id)
		if !view.MultiAS {
			res.ASProbes = append(res.ASProbes, id)
		}
	}
	for c := range res.ByCategory {
		ids := res.ByCategory[c]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return res
}

func classify(ds *atlasdata.Dataset, meta atlasdata.ProbeMeta) (Category, *ProbeView) {
	if meta.ConnectedDays <= minConnectedDays {
		return CatShortLived, nil
	}
	raw := ds.ConnLogs[meta.ID]

	var v4, v6 int
	for _, e := range raw {
		if e.IsV4() {
			v4++
		} else {
			v6++
		}
	}
	// Family-based filters come first: a dual-stack log cannot bound
	// IPv4 address durations at all (§3.2).
	if v4 == 0 && v6 > 0 {
		return CatIPv6Only, nil
	}
	if v6 > 0 {
		return CatDualStack, nil
	}

	// A probe whose log shows a single IPv4 address all year (including
	// any testing prefix-entry — those probes changed) never changed.
	if singleAddress(raw) {
		return CatNeverChanged, nil
	}

	for _, tag := range []string{atlasdata.TagMultihomed, atlasdata.TagDatacentre, atlasdata.TagCore} {
		if meta.HasTag(tag) {
			return CatTaggedMultihomed, nil
		}
	}
	if alternatingAddresses(raw) {
		return CatBehaviouralMultihomed, nil
	}

	entries, stripped := StripTestingEntry(raw)
	changes := V4Changes(entries)
	if stripped && len(changes) == 0 {
		return CatTestingOnly, nil
	}
	if len(changes) == 0 {
		// Only change was... none. Possible when the testing strip was
		// not applicable but the log still shows one address; covered by
		// singleAddress above, so reaching here means an empty log.
		return CatNeverChanged, nil
	}

	view := &ProbeView{Meta: meta, Entries: entries, Changes: changes}
	home := asdb.ASN(0)
	consistent := true
	view.ASNs = make([]struct{ From, To asdb.ASN }, len(changes))
	for i, ch := range changes {
		fromASN, _, _ := ds.Pfx2AS.Lookup(ch.From, ch.PrevEnd)
		toASN, _, _ := ds.Pfx2AS.Lookup(ch.To, ch.NextStart)
		view.ASNs[i] = struct{ From, To asdb.ASN }{fromASN, toASN}
		if fromASN != toASN {
			view.MultiAS = true
		}
		for _, asn := range []asdb.ASN{fromASN, toASN} {
			if asn == 0 {
				continue
			}
			if home == 0 {
				home = asn
			} else if home != asn {
				consistent = false
			}
		}
	}
	if consistent && home != 0 {
		view.ASN = home
	}
	return CatAnalyzable, view
}

// singleAddress reports whether every entry is IPv4 with one address.
func singleAddress(entries []atlasdata.ConnLogEntry) bool {
	var addr ip4.Addr
	n := 0
	for _, e := range entries {
		if !e.IsV4() {
			return false
		}
		if n == 0 {
			addr = e.Addr
		} else if e.Addr != addr {
			return false
		}
		n++
	}
	return n > 0
}

// alternatingAddresses implements the paper's behavioural multihomed
// detector (§3.2): the log alternates between one fixed address and
// other, potentially changing, addresses. Operationally: collapse the v4
// log into runs of equal addresses; if some address keeps coming back —
// at least three separated runs covering a quarter of all runs — the
// probe is switching uplinks, not being renumbered, because ISPs
// essentially never hand the same address back repeatedly.
func alternatingAddresses(entries []atlasdata.ConnLogEntry) bool {
	runCount := make(map[uint32]int)
	var prev uint32
	total := 0
	for _, e := range entries {
		if !e.IsV4() {
			continue
		}
		a := uint32(e.Addr)
		if total > 0 && a == prev {
			continue
		}
		runCount[a]++
		prev = a
		total++
	}
	if total < 5 {
		return false
	}
	for _, c := range runCount {
		if c >= 3 && float64(c) >= 0.25*float64(total) {
			return true
		}
	}
	return false
}
