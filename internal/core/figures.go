package core

import (
	"fmt"
	"os"
	"path/filepath"

	"dynaddr/internal/svgplot"
)

// WriteFigureSVGs renders every figure of the report as an SVG file in
// dir (created if needed) and returns the written paths, in figure
// order. Figures whose data is empty are skipped.
func WriteFigureSVGs(rep *Report, names NameFunc, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name, svg string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	cdfSeries := func(curves []ASCDF) []svgplot.Series {
		var out []svgplot.Series
		for _, c := range curves {
			label := c.Label
			if label == "" {
				label = displayName(names, c.ASN)
			}
			s := svgplot.Series{Label: fmt.Sprintf("%s (%.1fy)", label, c.TotalYears)}
			for _, p := range c.CDF {
				s.Points = append(s.Points, svgplot.Point{X: p.X, Y: p.Y})
			}
			out = append(out, s)
		}
		return out
	}

	if len(rep.Figure1) > 0 {
		if err := write("fig1.svg", svgplot.DurationCDF(
			"Figure 1: total time fraction CDF by continent", cdfSeries(rep.Figure1))); err != nil {
			return nil, err
		}
	}
	if len(rep.Figure2) > 0 {
		if err := write("fig2.svg", svgplot.DurationCDF(
			"Figure 2: total time fraction CDF, top ASes", cdfSeries(rep.Figure2))); err != nil {
			return nil, err
		}
	}
	if len(rep.Figure3) > 0 {
		if err := write("fig3.svg", svgplot.DurationCDF(
			"Figure 3: total time fraction CDF, German ASes", cdfSeries(rep.Figure3))); err != nil {
			return nil, err
		}
	}

	// Figures 4/5: one histogram per AS in the hour-of-day analysis.
	for i, h := range rep.HourHists {
		labels := make([]string, 24)
		values := make([]float64, 24)
		for hr, c := range h.Hours {
			labels[hr] = fmt.Sprintf("%d", hr+1)
			values[hr] = float64(c)
		}
		title := fmt.Sprintf("Figure %d: hour of day of %s's d=%.0fh address changes",
			4+i, displayName(names, h.ASN), h.D)
		if err := write(fmt.Sprintf("fig%d.svg", 4+i), svgplot.Histogram(
			title, "Hour of the day (GMT)", "Address changes", labels, values, nil)); err != nil {
			return nil, err
		}
		if i == 1 {
			break
		}
	}

	if len(rep.Figure6RebootsPerDay) > 0 {
		// Daily series as a dense histogram, one bar per week to stay
		// legible; firmware days called out in the title.
		weeks := (len(rep.Figure6RebootsPerDay) + 6) / 7
		labels := make([]string, weeks)
		values := make([]float64, weeks)
		for d, c := range rep.Figure6RebootsPerDay {
			values[d/7] += float64(c)
			if d%7 == 0 && (d/7)%4 == 0 {
				labels[d/7] = fmt.Sprintf("w%d", d/7+1)
			}
		}
		title := fmt.Sprintf("Figure 6: probe reboots per week (firmware pushes at days %v)",
			rep.Figure6FirmwareDays)
		if err := write("fig6.svg", svgplot.Histogram(
			title, "Week of the year", "Rebooted probes", labels, values, nil)); err != nil {
			return nil, err
		}
	}

	pacSeries := func(curves []PacECDF) []svgplot.Series {
		var out []svgplot.Series
		for _, c := range curves {
			s := svgplot.Series{Label: fmt.Sprintf("%s (%d)", displayName(names, c.ASN), c.Probes)}
			for _, p := range c.Points {
				s.Points = append(s.Points, svgplot.Point{X: p.X, Y: p.Y})
			}
			out = append(out, s)
		}
		return out
	}
	if len(rep.Figure7) > 0 {
		if err := write("fig7.svg", svgplot.ProbabilityECDF(
			"Figure 7: P(address change | network outage) per probe",
			"Probability of an address change given a network outage",
			pacSeries(rep.Figure7))); err != nil {
			return nil, err
		}
	}
	if len(rep.Figure8) > 0 {
		if err := write("fig8.svg", svgplot.ProbabilityECDF(
			"Figure 8: P(address change | power outage) per probe (v3)",
			"Probability of an address change given a power outage",
			pacSeries(rep.Figure8))); err != nil {
			return nil, err
		}
	}

	// Figure 9: one overlay histogram per contrast AS.
	for i, f := range rep.Figure9 {
		labels := make([]string, len(f.Bins))
		totals := make([]float64, len(f.Bins))
		renum := make([]float64, len(f.Bins))
		for j, bin := range f.Bins {
			labels[j] = bin.Label
			totals[j] = float64(bin.Total)
			renum[j] = float64(bin.Renumbered)
		}
		title := fmt.Sprintf("Figure 9 (%s): renumbering by outage duration", displayName(names, f.ASN))
		if err := write(fmt.Sprintf("fig9-%d.svg", i+1), svgplot.Histogram(
			title, "Outage duration", "Outages", labels, totals, renum)); err != nil {
			return nil, err
		}
	}
	return written, nil
}
