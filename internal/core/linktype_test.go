package core

import (
	"testing"

	"dynaddr/internal/isp"
)

func mkBins(shortTotal, shortRen, longTotal, longRen int) []DurationBinRow {
	bins := make([]DurationBinRow, len(OutageDurationBinLabels))
	for i := range bins {
		bins[i].Label = OutageDurationBinLabels[i]
	}
	bins[0] = DurationBinRow{Label: "<5m", Total: shortTotal, Renumbered: shortRen}
	bins[9] = DurationBinRow{Label: "1-3d", Total: longTotal, Renumbered: longRen}
	return bins
}

func TestInferLinkTypeUnits(t *testing.T) {
	cases := []struct {
		name string
		bins []DurationBinRow
		want LinkType
	}{
		{"ppp", mkBins(100, 95, 10, 10), LinkPPP},
		{"dhcp", mkBins(100, 1, 10, 6), LinkDHCP},
		{"stable", mkBins(100, 0, 10, 1), LinkStable},
		{"too-few-short", mkBins(4, 4, 10, 10), LinkUnknown},
		{"no-long-evidence", mkBins(100, 2, 1, 1), LinkUnknown},
	}
	for _, c := range cases {
		got, ev := InferLinkType(c.bins)
		if got != c.want {
			t.Errorf("%s: inferred %v (%v), want %v", c.name, got, ev, c.want)
		}
	}
}

func TestLinkTypesRecoverGroundTruth(t *testing.T) {
	w, rep := paperWorld(t)
	_ = w
	rows := LinkTypesByAS(rep.Outage, rep.Filter)
	if len(rows) < 5 {
		t.Fatalf("only %d ASes classified", len(rows))
	}
	byASN := map[uint32]LinkTypeRow{}
	for _, r := range rows {
		byASN[r.ASN] = r
	}

	profiles := isp.PaperProfiles()
	correct, wrong := 0, 0
	for _, p := range profiles {
		row, ok := byASN[uint32(p.ASN)]
		if !ok {
			continue
		}
		var want LinkType
		switch {
		case p.Kind == isp.PPP && p.OutageRenumberFrac >= 0.6:
			want = LinkPPP
		case p.Kind == isp.DHCP:
			// Short-reclaim plants look DHCP; very long reclaim means
			// even day-long outages rarely renumber (stable).
			if p.ReclaimMean <= 7*24*3600 {
				want = LinkDHCP
			} else {
				want = LinkStable
			}
		default:
			continue // mixed-technology PPP and static: either verdict defensible
		}
		if row.Type == want {
			correct++
		} else {
			wrong++
			t.Logf("AS%d (%s): inferred %v, want %v [%v]", p.ASN, p.Name, row.Type, want, row.Evidence)
		}
	}
	if correct < 5 {
		t.Fatalf("too few ground-truth comparisons: %d", correct)
	}
	if frac := float64(correct) / float64(correct+wrong); frac < 0.8 {
		t.Errorf("link-type inference accuracy %.2f (correct=%d wrong=%d)", frac, correct, wrong)
	}
}

func TestLinkTypeStrings(t *testing.T) {
	if LinkPPP.String() != "ppp" || LinkDHCP.String() != "dhcp" ||
		LinkStable.String() != "stable" || LinkUnknown.String() != "unknown" {
		t.Error("LinkType.String wrong")
	}
	ev := LinkEvidence{ShortRate: 0.5, ShortN: 10, LongRate: 0.9, LongN: 4}
	if ev.String() == "" {
		t.Error("evidence must format")
	}
}
