package core

import (
	"fmt"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
)

func v6Entry(probe, day int, addr string) atlasdata.ConnLogEntry {
	start := simclock.StudyStart.Add(simclock.Duration(day)*simclock.Day + simclock.Hour)
	return atlasdata.ConnLogEntry{
		Probe: atlasdata.ProbeID(probe), Start: start, End: start.Add(4 * simclock.Hour),
		Family: atlasdata.V6, V6Addr: addr,
	}
}

func TestAnalyzeV6ProbeRotating(t *testing.T) {
	var entries []atlasdata.ConnLogEntry
	for d := 0; d < 30; d++ {
		entries = append(entries, v6Entry(1, d, fmt.Sprintf("2001:db8::%d", d)))
	}
	st := AnalyzeV6Probe(entries)
	if st.Addresses != 30 || st.Ephemeral != 30 {
		t.Errorf("stats = %+v, want 30 ephemeral addresses", st)
	}
	if !st.Rotating {
		t.Error("daily rotation not detected")
	}
	if st.EphemeralFrac() != 1 {
		t.Errorf("EphemeralFrac = %v", st.EphemeralFrac())
	}
}

func TestAnalyzeV6ProbeStable(t *testing.T) {
	var entries []atlasdata.ConnLogEntry
	for d := 0; d < 30; d++ {
		entries = append(entries, v6Entry(1, d, "2001:db8::1"))
	}
	st := AnalyzeV6Probe(entries)
	if st.Addresses != 1 || st.Ephemeral != 0 || st.Rotating {
		t.Errorf("stable probe stats = %+v", st)
	}
}

func TestAnalyzeV6ProbeIgnoresV4(t *testing.T) {
	entries := []atlasdata.ConnLogEntry{
		v4e(1, simclock.StudyStart, simclock.StudyStart.Add(simclock.Hour), "10.0.0.1"),
	}
	if st := AnalyzeV6Probe(entries); st.Addresses != 0 {
		t.Errorf("v4-only probe has v6 stats: %+v", st)
	}
}

func TestAnalyzeV6SpanningSession(t *testing.T) {
	// An 8-hour session crossing midnight is still a short-lived
	// address: ephemerality is lifetime-based, not calendar-based.
	e := atlasdata.ConnLogEntry{
		Probe:  1,
		Start:  simclock.StudyStart.Add(10*simclock.Day + 20*simclock.Hour),
		End:    simclock.StudyStart.Add(11*simclock.Day + 4*simclock.Hour),
		Family: atlasdata.V6, V6Addr: "2001:db8::7",
	}
	st := AnalyzeV6Probe([]atlasdata.ConnLogEntry{e})
	if st.Ephemeral != 1 {
		t.Errorf("midnight-spanning short-lived address not ephemeral: %+v", st)
	}
	// The same address reappearing a week later is not ephemeral.
	later := e
	later.Start = e.Start.Add(7 * simclock.Day)
	later.End = e.End.Add(7 * simclock.Day)
	st = AnalyzeV6Probe([]atlasdata.ConnLogEntry{e, later})
	if st.Ephemeral != 0 {
		t.Errorf("week-spanning address counted ephemeral: %+v", st)
	}
}

func TestIntegrationV6Ephemerality(t *testing.T) {
	w, _ := paperWorld(t)
	rep := AnalyzeV6(w.Dataset)
	if len(rep.Probes) == 0 {
		t.Fatal("no IPv6 probes analysed")
	}
	// With 60% of v6-capable hosts rotating daily, the address-weighted
	// ephemeral share is dominated by rotators (hundreds of addresses
	// each versus a handful for stable hosts) — the >90% ephemeral
	// shape Plonka & Berger report.
	if rep.EphemeralShare < 0.8 {
		t.Errorf("ephemeral share = %.2f, want > 0.8", rep.EphemeralShare)
	}
	// Rotation detection should agree with the generative truth.
	correct, wrong := 0, 0
	byID := map[atlasdata.ProbeID]V6ProbeStats{}
	for _, st := range rep.Probes {
		byID[st.Probe] = st
	}
	for id, truth := range w.Truth.Probes {
		st, ok := byID[id]
		if !ok || truth.Special == sim.Mover {
			continue
		}
		// Only dual-stack/v6-only probes with decent activity are
		// classifiable.
		if st.Addresses < 5 && !truth.V6Rotating {
			continue
		}
		if st.Rotating == truth.V6Rotating {
			correct++
		} else {
			wrong++
		}
	}
	if correct == 0 {
		t.Fatal("no rotation comparisons possible")
	}
	if frac := float64(correct) / float64(correct+wrong); frac < 0.85 {
		t.Errorf("rotation detection accuracy = %.2f (correct=%d wrong=%d)", frac, correct, wrong)
	}
}
