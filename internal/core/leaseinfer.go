package core

import (
	"dynaddr/internal/simclock"
)

// The paper's §8 records a negative result: "we anticipated that the
// rich dataset ... would enable us to infer the configured duration of
// DHCP leases. It turns out that address reassignment was substantially
// more complex than we expected." This file implements the naive
// estimator the authors anticipated — and makes its failure modes
// explicit, so the negative result is reproducible too.
//
// The estimator's logic: a DHCP client renews at half-lease, so an
// outage shorter than lease/2 can never lapse the lease. The shortest
// outage-duration bin that shows meaningful renumbering therefore
// brackets lease/2 from above. For PPP plants the premise is false —
// any reconnect renumbers — and the estimator must refuse.

// LeaseEstimate is the naive estimator's output for one AS. Only the
// upper bound is sound: an outage shorter than lease/2 can never
// renumber (the client renewed at half-lease before it), so the first
// bin showing *any* renumbering upper-bounds the lease at twice its
// upper edge. No lower bound exists — bins without renumbering are
// equally consistent with "lease intact" and with "lease lapsed but the
// pool had not reclaimed yet". That asymmetry is the complexity the
// paper's §8 ran into.
type LeaseEstimate struct {
	ASN uint32
	// UpperBound is the sound bound: lease <= UpperBound.
	UpperBound simclock.Duration
	// Meaningful reports whether the estimator's premise held. PPP-style
	// plants renumber from the very first populated bin at high rate and
	// yield Meaningful == false — there is no lease to estimate.
	Meaningful bool
}

// pppRefuseRate is the first-bin renumbering share above which the
// estimator concludes the plant does not lease at all.
const pppRefuseRate = 0.2

// leaseMinBinSamples is the per-bin sample floor.
const leaseMinBinSamples = 5

// EstimateLease applies the naive estimator to one AS's outage-duration
// profile (Figure 9's bins).
func EstimateLease(bins []DurationBinRow) LeaseEstimate {
	var est LeaseEstimate
	firstPopulated, onset := -1, -1
	for i, b := range bins {
		if b.Total < leaseMinBinSamples {
			continue
		}
		if firstPopulated < 0 {
			firstPopulated = i
		}
		if b.Renumbered > 0 && onset < 0 {
			onset = i
		}
	}
	if onset < 0 {
		return est // never renumbers: nothing to estimate
	}
	if onset == firstPopulated && bins[onset].Pct() >= pppRefuseRate {
		return est // PPP plant: renumbers immediately, no lease
	}
	var hi float64
	if onset < len(OutageDurationBins) {
		hi = OutageDurationBins[onset]
	} else {
		hi = 2 * OutageDurationBins[len(OutageDurationBins)-1]
	}
	est.UpperBound = simclock.Duration(2 * hi)
	est.Meaningful = true
	return est
}

// EstimateLeases runs the estimator over every AS with outage evidence.
func EstimateLeases(oa *OutageAnalysis, res *FilterResult) map[uint32]LeaseEstimate {
	out := make(map[uint32]LeaseEstimate)
	for asn, ids := range ByAS(res) {
		bins := oa.DurationBins(res, ids)
		total := 0
		for _, b := range bins {
			total += b.Total
		}
		if total < 20 {
			continue
		}
		est := EstimateLease(bins)
		est.ASN = asn
		out[asn] = est
	}
	return out
}
