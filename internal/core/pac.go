package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
)

// ProbeOutageStats aggregates one probe's gap classifications into the
// paper's §5.3 conditional probabilities.
type ProbeOutageStats struct {
	Probe atlasdata.ProbeID

	NetworkGaps    int
	NetworkChanged int
	PowerGaps      int
	PowerChanged   int
	NoOutageGaps   int
	NoOutageChange int
}

// PacNetwork returns P(ac|nw): the fraction of network outages
// contemporaneous with an address change.
func (s ProbeOutageStats) PacNetwork() (float64, bool) {
	if s.NetworkGaps == 0 {
		return 0, false
	}
	return float64(s.NetworkChanged) / float64(s.NetworkGaps), true
}

// PacPower returns P(ac|pw) for power outages.
func (s ProbeOutageStats) PacPower() (float64, bool) {
	if s.PowerGaps == 0 {
		return 0, false
	}
	return float64(s.PowerChanged) / float64(s.PowerGaps), true
}

// OutageAnalysis holds the per-probe gap classifications and outage
// statistics for a filtered dataset.
type OutageAnalysis struct {
	// Gaps maps each analyzable probe to its classified gaps.
	Gaps map[atlasdata.ProbeID][]Gap
	// Stats maps each analyzable probe to its aggregate counts. Power
	// counts are only meaningful for v3 probes; v1/v2 hardware reboots
	// during connection establishment poison the inference (§5.1), so
	// AnalyzeOutages never counts power gaps for them.
	Stats map[atlasdata.ProbeID]ProbeOutageStats
	// FirmwareDays are the detected push days (Figure 6's diamonds).
	FirmwareDays []int
	// RebootsPerDay is Figure 6's series: unique probes rebooting per
	// study day, before firmware filtering.
	RebootsPerDay []int
}

// AnalyzeOutages runs the full §5 pipeline over the analyzable probes:
// detect network outages and reboots, find and filter firmware pushes,
// detect power outages, associate everything with inter-connection gaps.
func AnalyzeOutages(ds *atlasdata.Dataset, res *FilterResult) *OutageAnalysis {
	// Pass 1: reboots for every analyzable probe, to locate firmware
	// pushes from the global daily spike profile.
	reboots := RebootsByProbe(ds, res)
	oa := OutageScaffold(res, reboots)

	// Pass 2: per-probe detection and gap association.
	for id, view := range res.Views {
		oa.Gaps[id], oa.Stats[id] = ProbeOutage(ds, view, reboots[id], oa.FirmwareDays)
	}
	return oa
}

// RebootsByProbe detects uptime-counter resets for every analyzable
// probe — pass 1 of the outage pipeline, whose global daily profile
// locates firmware pushes.
func RebootsByProbe(ds *atlasdata.Dataset, res *FilterResult) map[atlasdata.ProbeID][]Reboot {
	reboots := make(map[atlasdata.ProbeID][]Reboot, len(res.Views))
	for id := range res.Views {
		reboots[id] = DetectReboots(ds.Uptime[id])
	}
	return reboots
}

// OutageScaffold builds an OutageAnalysis with the global state filled
// in — the Figure 6 reboot series and the firmware push days — and
// empty per-probe maps for callers to populate via ProbeOutage. The
// firmware profile is global by nature (a push shows up as a
// population-wide spike), so it must exist before any per-probe pass.
func OutageScaffold(res *FilterResult, reboots map[atlasdata.ProbeID][]Reboot) *OutageAnalysis {
	oa := &OutageAnalysis{
		Gaps:  make(map[atlasdata.ProbeID][]Gap, len(res.Views)),
		Stats: make(map[atlasdata.ProbeID]ProbeOutageStats, len(res.Views)),
	}
	oa.RebootsPerDay = RebootsPerDay(reboots)
	oa.FirmwareDays = DetectFirmwareDays(oa.RebootsPerDay)
	return oa
}

// ProbeOutage runs pass 2 of the outage pipeline for one probe: detect
// network outages, filter firmware reboots, detect power outages, and
// classify every inter-connection gap. It only reads shared state, so
// distinct probes may run concurrently once the firmware days are known.
func ProbeOutage(ds *atlasdata.Dataset, view *ProbeView, reboots []Reboot, firmwareDays []int) ([]Gap, ProbeOutageStats) {
	id := view.Meta.ID
	networks := DetectNetworkOutages(ds.KRoot[id])
	kept := FilterFirmwareReboots(reboots, firmwareDays)
	powers := DetectPowerOutages(kept, ds.KRoot[id])
	gaps := AssociateGaps(view.Entries, networks, powers)

	return gaps, TallyOutageStats(id, gaps, view.Meta.Version == atlasdata.V3)
}

// TallyOutageStats folds one probe's classified gaps into its outage
// statistics — the counting half of ProbeOutage, shared with the
// streaming fold. v3 gates the power counts: v1/v2 hardware reboots
// during connection establishment poison the inference (§5.1).
func TallyOutageStats(id atlasdata.ProbeID, gaps []Gap, v3 bool) ProbeOutageStats {
	st := ProbeOutageStats{Probe: id}
	for _, g := range gaps {
		switch g.Cause {
		case NetworkCause:
			st.NetworkGaps++
			if g.Changed {
				st.NetworkChanged++
			}
		case PowerCause:
			if v3 {
				st.PowerGaps++
				if g.Changed {
					st.PowerChanged++
				}
			}
		default:
			st.NoOutageGaps++
			if g.Changed {
				st.NoOutageChange++
			}
		}
	}
	return st
}

// MinOutagesForPac is the paper's sample floor: conditional
// probabilities are reported for probes with at least three outages of
// the relevant kind.
const MinOutagesForPac = 3

// PacSample collects the per-probe P(ac|nw) or P(ac|pw) values for a set
// of probes — the ECDF inputs of Figures 7 and 8.
func (oa *OutageAnalysis) PacSample(ids []atlasdata.ProbeID, power bool) *stats.Sample {
	return PacSampleOver(oa.Stats, ids, power)
}

// PacSampleOver is PacSample over an explicit stats map — the seam
// shared with the streaming fold, which computes its stats from
// per-probe event state rather than an OutageAnalysis.
func PacSampleOver(all map[atlasdata.ProbeID]ProbeOutageStats, ids []atlasdata.ProbeID, power bool) *stats.Sample {
	var s stats.Sample
	for _, id := range ids {
		st, ok := all[id]
		if !ok {
			continue
		}
		if power {
			if st.PowerGaps >= MinOutagesForPac {
				p, _ := st.PacPower()
				s.Add(p)
			}
		} else {
			if st.NetworkGaps >= MinOutagesForPac {
				p, _ := st.PacNetwork()
				s.Add(p)
			}
		}
	}
	return &s
}

// ASOutageRow is one row of the paper's Table 6.
type ASOutageRow struct {
	ASN uint32
	// N counts probes with at least three network and three power
	// outages.
	N int
	// Fractions of N at the paper's thresholds.
	NwOver80, NwEq1, PwOver80, PwEq1 float64
}

// Table6MinProbes is the row floor: the paper lists ASes with at least
// five probes whose P(ac|nw) exceeds 0.8 (§5.3).
const Table6MinProbes = 5

// OutagesByAS computes Table 6 rows, sorted by N descending then ASN.
// N counts the AS's probes with at least three outages of each kind; the
// row appears only when at least Table6MinProbes of them have
// P(ac|nw) > 0.8 — which is why the paper's table holds only heavy
// renumberers (all European).
func OutagesByAS(oa *OutageAnalysis, res *FilterResult) []ASOutageRow {
	return OutagesRows(oa.Stats, ByAS(res))
}

// OutagesRows computes Table 6 rows from a stats map over arbitrary AS
// groups — the seam shared by the batch pipeline and the streaming fold.
// Ordering and row gates follow OutagesByAS.
func OutagesRows(all map[atlasdata.ProbeID]ProbeOutageStats, groups map[uint32][]atlasdata.ProbeID) []ASOutageRow {
	var rows []ASOutageRow
	for asn, ids := range groups {
		var qual []ProbeOutageStats
		heavy := 0
		for _, id := range ids {
			st := all[id]
			if st.NetworkGaps >= MinOutagesForPac && st.PowerGaps >= MinOutagesForPac {
				qual = append(qual, st)
				if p, _ := st.PacNetwork(); p > 0.8 {
					heavy++
				}
			}
		}
		if heavy < Table6MinProbes {
			continue
		}
		row := ASOutageRow{ASN: asn, N: len(qual)}
		var nw80, nw1, pw80, pw1 int
		for _, st := range qual {
			pnw, _ := st.PacNetwork()
			ppw, _ := st.PacPower()
			if pnw > 0.8 {
				nw80++
			}
			if pnw == 1 {
				nw1++
			}
			if ppw > 0.8 {
				pw80++
			}
			if ppw == 1 {
				pw1++
			}
		}
		n := float64(len(qual))
		row.NwOver80 = float64(nw80) / n
		row.NwEq1 = float64(nw1) / n
		row.PwOver80 = float64(pw80) / n
		row.PwEq1 = float64(pw1) / n
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].N != rows[j].N {
			return rows[i].N > rows[j].N
		}
		return rows[i].ASN < rows[j].ASN
	})
	return rows
}

// OutageDurationBins are Figure 9's histogram edges in seconds:
// <5m, 5-10m, 10-20m, 20-30m, 30-60m, 1-3h, 3-6h, 6-12h, 12-24h, 1-3d,
// 3d-7d, >1w.
var OutageDurationBins = []float64{
	float64(5 * simclock.Minute),
	float64(10 * simclock.Minute),
	float64(20 * simclock.Minute),
	float64(30 * simclock.Minute),
	float64(1 * simclock.Hour),
	float64(3 * simclock.Hour),
	float64(6 * simclock.Hour),
	float64(12 * simclock.Hour),
	float64(24 * simclock.Hour),
	float64(3 * simclock.Day),
	float64(7 * simclock.Day),
}

// OutageDurationBinLabels label the bins above.
var OutageDurationBinLabels = []string{
	"<5m", "5-10m", "10-20m", "20-30m", "30-60m", "1-3h",
	"3-6h", "6-12h", "12-24h", "1-3d", "3d-7d", ">1w",
}

// DurationBinRow is one bar of Figure 9: outages in a duration bin,
// split by whether the gap also changed the address.
type DurationBinRow struct {
	Label      string
	Total      int
	Renumbered int
}

// Pct returns the renumbered share of the bin.
func (r DurationBinRow) Pct() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Renumbered) / float64(r.Total)
}

// DurationBins builds Figure 9 for a set of probes: every network gap
// (all probe versions) and every power gap (v3 only — enforced upstream
// by AnalyzeOutages counting, but the raw gaps here are filtered again
// by version) binned by outage duration.
func (oa *OutageAnalysis) DurationBins(res *FilterResult, ids []atlasdata.ProbeID) []DurationBinRow {
	hist := make([]DurationBinRow, len(OutageDurationBinLabels))
	for i, l := range OutageDurationBinLabels {
		hist[i].Label = l
	}
	binOf := func(d simclock.Duration) int {
		x := float64(d)
		i := sort.SearchFloat64s(OutageDurationBins, x+0.5)
		return i
	}
	for _, id := range ids {
		view, ok := res.Views[id]
		if !ok {
			continue
		}
		v3 := view.Meta.Version == atlasdata.V3
		for _, g := range oa.Gaps[id] {
			if g.Cause == NoOutage {
				continue
			}
			if g.Cause == PowerCause && !v3 {
				continue
			}
			b := binOf(g.OutageDuration)
			hist[b].Total++
			if g.Changed {
				hist[b].Renumbered++
			}
		}
	}
	return hist
}
