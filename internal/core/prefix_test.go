package core

import (
	"testing"

	"dynaddr/internal/atlasdata"
)

func TestPrefixChangesCounting(t *testing.T) {
	ds := buildDS(t)
	// Probe with three changes:
	//  10.0.0.1 -> 10.1.0.2   different BGP (/16s), different /16, same /8
	//  10.1.0.2 -> 10.1.0.3   same BGP, same /16, same /8
	//  10.1.0.3 -> 10.0.0.4   different BGP, different /16, same /8
	addProbe(ds, 1, atlasdata.V3, nil,
		longSessions(1, "10.0.0.1", "10.1.0.2", "10.1.0.3", "10.0.0.4")...)
	res := Filter(ds)
	row := PrefixChangesAll(ds, res)
	if row.Changes != 3 {
		t.Fatalf("changes = %d, want 3", row.Changes)
	}
	if row.DiffBGP != 2 {
		t.Errorf("DiffBGP = %d, want 2", row.DiffBGP)
	}
	if row.DiffS16 != 2 {
		t.Errorf("DiffS16 = %d, want 2", row.DiffS16)
	}
	if row.DiffS8 != 0 {
		t.Errorf("DiffS8 = %d, want 0", row.DiffS8)
	}
	if row.Unrouted != 0 {
		t.Errorf("Unrouted = %d", row.Unrouted)
	}
	if row.FracBGP() < 0.66 || row.FracBGP() > 0.67 {
		t.Errorf("FracBGP = %v", row.FracBGP())
	}
}

func TestPrefixChangesByASSorting(t *testing.T) {
	ds := buildDS(t)
	addProbe(ds, 1, atlasdata.V3, nil,
		longSessions(1, "10.0.0.1", "10.0.1.2", "10.0.0.3", "10.0.1.4")...)
	addProbe(ds, 2, atlasdata.V3, nil,
		longSessions(2, "20.0.0.1", "20.0.0.2", "20.0.0.3")...)
	res := Filter(ds)
	rows := PrefixChangesByAS(ds, res)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].ASN != 100 || rows[0].Changes != 3 {
		t.Errorf("row 0 = %+v, want AS100 with 3 changes", rows[0])
	}
	if rows[1].ASN != 200 || rows[1].Changes != 2 {
		t.Errorf("row 1 = %+v", rows[1])
	}
	// AS200's changes stay inside one /16: zero spread.
	if rows[1].FracBGP() != 0 || rows[1].FracS16() != 0 || rows[1].FracS8() != 0 {
		t.Errorf("AS200 spread = %v/%v/%v, want zero", rows[1].FracBGP(), rows[1].FracS16(), rows[1].FracS8())
	}
}

func TestPrefixChangeRowFracsEmpty(t *testing.T) {
	var row PrefixChangeRow
	if row.FracBGP() != 0 || row.FracS16() != 0 || row.FracS8() != 0 {
		t.Error("empty row fractions should be zero")
	}
}
