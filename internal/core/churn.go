package core

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// The paper's §8 points at Richter et al. (IMC 2016): the set of active
// IPv4 addresses a large vantage sees changes by ~8% day over day, and
// asks how much of that churn dynamic renumbering explains. This file
// computes exactly that series over a dataset: the day-over-day
// turnover of the active address set.

// ChurnPoint is one day's address-set turnover relative to the previous
// day.
type ChurnPoint struct {
	// Day is the zero-based study day (the later of the two compared).
	Day int
	// PrevActive and Active are the sizes of the two daily address sets.
	PrevActive int
	Active     int
	// Appeared counts addresses active today but not yesterday; Gone
	// counts addresses active yesterday but not today.
	Appeared int
	Gone     int
}

// Turnover returns the symmetric-difference ratio: |Δ| / |union|, the
// day-over-day churn share.
func (c ChurnPoint) Turnover() float64 {
	union := c.PrevActive + c.Appeared
	if union == 0 {
		return 0
	}
	return float64(c.Appeared+c.Gone) / float64(union)
}

// DailyActiveSets computes, for each study day, the set of IPv4
// addresses with at least one connection overlapping that day, across
// the given probes.
func DailyActiveSets(ds *atlasdata.Dataset, ids []atlasdata.ProbeID) []map[ip4.Addr]bool {
	days := int(simclock.StudyEnd.Sub(simclock.StudyStart) / simclock.Day)
	sets := make([]map[ip4.Addr]bool, days)
	for i := range sets {
		sets[i] = make(map[ip4.Addr]bool)
	}
	for _, id := range ids {
		for _, e := range ds.ConnLogs[id] {
			if !e.IsV4() {
				continue
			}
			first := e.Start.DayWithinStudy()
			last := e.End.DayWithinStudy()
			if first < 0 && e.Start.Before(simclock.StudyStart) {
				first = 0
			}
			if last < 0 && e.End.After(simclock.StudyStart) {
				last = days - 1
			}
			for d := first; d <= last && d >= 0 && d < days; d++ {
				sets[d][e.Addr] = true
			}
		}
	}
	return sets
}

// DailyChurn computes the day-over-day churn series over the given
// probes (pass a FilterResult's GeoProbes for the paper-aligned
// population, or all probe IDs for the raw vantage view).
func DailyChurn(ds *atlasdata.Dataset, ids []atlasdata.ProbeID) []ChurnPoint {
	sets := DailyActiveSets(ds, ids)
	var out []ChurnPoint
	for d := 1; d < len(sets); d++ {
		prev, cur := sets[d-1], sets[d]
		p := ChurnPoint{Day: d, PrevActive: len(prev), Active: len(cur)}
		for a := range cur {
			if !prev[a] {
				p.Appeared++
			}
		}
		for a := range prev {
			if !cur[a] {
				p.Gone++
			}
		}
		out = append(out, p)
	}
	return out
}

// MeanTurnover averages the turnover across days with activity on both
// sides; days where either set is empty are skipped.
func MeanTurnover(points []ChurnPoint) float64 {
	var sum float64
	n := 0
	for _, p := range points {
		if p.PrevActive == 0 || p.Active == 0 {
			continue
		}
		sum += p.Turnover()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
