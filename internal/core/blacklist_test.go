package core

import (
	"testing"

	"dynaddr/internal/simclock"
)

func TestAdviseBlacklistShapes(t *testing.T) {
	_, rep := paperWorld(t)
	advice := AdviseBlacklist(rep, 5)
	if len(advice) < 5 {
		t.Fatalf("advice for only %d ASes", len(advice))
	}
	byASN := map[uint32]BlacklistAdvice{}
	for _, a := range advice {
		byASN[a.ASN] = a
	}

	dtag, okD := byASN[3320]
	lgi, okL := byASN[6830]
	if !okD || !okL {
		t.Fatal("DTAG or LGI missing from advice")
	}
	// DTAG renumbers daily and on any reconnect: short TTL, evadable.
	if dtag.MedianHoldHours > 30 {
		t.Errorf("DTAG median hold = %.0fh, want ~24h", dtag.MedianHoldHours)
	}
	if !dtag.EvadableByReboot {
		t.Error("DTAG entries should be evadable by reboot")
	}
	if dtag.SuggestedTTL > 26*simclock.Hour {
		t.Errorf("DTAG suggested TTL = %v, want about a day", dtag.SuggestedTTL)
	}
	// LGI holds addresses for days-to-weeks and does not renumber on
	// short reconnects.
	if lgi.MedianHoldHours < dtag.MedianHoldHours {
		t.Error("LGI should hold addresses longer than DTAG")
	}
	if lgi.EvadableByReboot {
		t.Error("LGI entries should not be evadable by reboot")
	}
	if lgi.SuggestedTTL <= dtag.SuggestedTTL {
		t.Error("LGI TTL should exceed DTAG TTL")
	}
	// Percentiles are ordered.
	for _, a := range advice {
		if a.P90HoldHours < a.MedianHoldHours {
			t.Errorf("AS%d: P90 %.0f < median %.0f", a.ASN, a.P90HoldHours, a.MedianHoldHours)
		}
		if a.PrefixEscapeShare < 0 || a.PrefixEscapeShare > 1 {
			t.Errorf("AS%d: escape share %v", a.ASN, a.PrefixEscapeShare)
		}
	}
}

func TestAdviseBlacklistMinProbes(t *testing.T) {
	_, rep := paperWorld(t)
	all := AdviseBlacklist(rep, 1)
	few := AdviseBlacklist(rep, 50)
	if len(few) >= len(all) {
		t.Error("raising the probe floor must shrink the advice list")
	}
	for _, a := range few {
		if a.Probes < 50 {
			t.Errorf("AS%d with %d probes passed the floor", a.ASN, a.Probes)
		}
	}
}
