package core

import (
	"testing"

	"dynaddr/internal/isp"
	"dynaddr/internal/simclock"
)

func TestEstimateLeaseUnits(t *testing.T) {
	// DHCP-like: silent below 3-6h, renumbering from the 6-12h bin.
	bins := make([]DurationBinRow, len(OutageDurationBinLabels))
	for i := range bins {
		bins[i].Label = OutageDurationBinLabels[i]
		bins[i].Total = 50
	}
	bins[7].Renumbered = 20 // 6-12h bin at 40%
	bins[8].Renumbered = 40
	est := EstimateLease(bins)
	if !est.Meaningful {
		t.Fatal("DHCP-shaped profile should yield a meaningful estimate")
	}
	// Lease upper-bounded by twice the onset bin's upper edge: 24h.
	if est.UpperBound != 24*simclock.Hour {
		t.Errorf("upper bound = %v, want 24h (2x onset bin edge)", est.UpperBound)
	}

	// PPP-like: first populated bin renumbers.
	ppp := make([]DurationBinRow, len(OutageDurationBinLabels))
	for i := range ppp {
		ppp[i].Total = 50
		ppp[i].Renumbered = 45
	}
	if got := EstimateLease(ppp); got.Meaningful {
		t.Error("PPP-shaped profile must refuse a lease estimate")
	}

	// No renumbering anywhere: nothing to estimate.
	quiet := make([]DurationBinRow, len(OutageDurationBinLabels))
	for i := range quiet {
		quiet[i].Total = 50
	}
	if got := EstimateLease(quiet); got.Meaningful {
		t.Error("never-renumbering profile must refuse")
	}
}

func TestEstimateLeasesRecoversGroundTruthAndNegativeResult(t *testing.T) {
	w, rep := paperWorld(t)
	_ = w
	ests := EstimateLeases(rep.Outage, rep.Filter)
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}

	// LGI: lease 3h; the estimator must bracket it.
	lgi, ok := ests[6830]
	if !ok {
		t.Fatal("no estimate for LGI")
	}
	if !lgi.Meaningful {
		t.Fatal("LGI estimate should be meaningful (DHCP)")
	}
	truth := 3 * simclock.Hour
	if truth > lgi.UpperBound {
		t.Errorf("LGI lease %v exceeds estimated upper bound %v (bound unsound)", truth, lgi.UpperBound)
	}
	if lgi.UpperBound > 16*truth {
		t.Errorf("LGI upper bound %v uselessly loose for lease %v", lgi.UpperBound, truth)
	}

	// Orange (PPP): the paper's §8 negative result — no meaningful
	// lease exists.
	if orange, ok := ests[3215]; ok && orange.Meaningful {
		t.Errorf("Orange should refuse a lease estimate, got upper bound %v", orange.UpperBound)
	}

	// Across the whole world, every meaningful estimate must belong to a
	// DHCP profile; PPP ISPs must refuse.
	kinds := map[uint32]isp.AssignKind{}
	renumFrac := map[uint32]float64{}
	for _, p := range isp.PaperProfiles() {
		kinds[uint32(p.ASN)] = p.Kind
		renumFrac[uint32(p.ASN)] = p.OutageRenumberFrac
	}
	for asn, est := range ests {
		kind, known := kinds[asn]
		if !known || !est.Meaningful {
			continue
		}
		if kind == isp.PPP && renumFrac[asn] >= 0.6 {
			t.Errorf("AS%d is a renumber-on-reconnect PPP plant but got lease bound %v",
				asn, est.UpperBound)
		}
	}
}
