package core

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/stats"
)

// ASCDF is a labelled cumulative distribution for one aggregation group
// (an AS, country, or continent), with the group's total address time —
// the number the paper prints in figure legends (in years).
type ASCDF struct {
	ASN        uint32
	Label      string
	Probes     int
	TotalYears float64
	CDF        []stats.Point
}

// HourHist is an hour-of-day histogram for one AS's periodic changes
// (Figures 4 and 5).
type HourHist struct {
	ASN   uint32
	D     float64
	Hours [24]int
}

// PacECDF is the per-probe conditional-probability ECDF for one AS
// (Figures 7 and 8).
type PacECDF struct {
	ASN    uint32
	Probes int
	Points []stats.Point
}

// Figure9AS is the outage-duration renumbering profile for one AS.
type Figure9AS struct {
	ASN  uint32
	Bins []DurationBinRow
}

// Report bundles every table and figure of the paper's evaluation,
// computed from one dataset.
type Report struct {
	Filter *FilterResult
	Outage *OutageAnalysis

	// Table2 counts per filtering category, in Table 2 order.
	Table2 map[Category]int

	// Figure1: total-time-fraction CDFs per continent.
	Figure1 []ASCDF
	// Figure2: TTF CDFs for the ASes with the most duration-yielding
	// probes.
	Figure2 []ASCDF
	// Figure3: TTF CDFs for German ASes with enough total time.
	Figure3 []ASCDF

	// Table5 rows plus the "All" summary rows at 24h and 168h.
	Table5    []ASPeriodicRow
	Table5All []ASPeriodicRow

	// Figures 4 and 5: hour-of-day change histograms for the two ASes
	// with the most periodic probes.
	HourHists []HourHist

	// Figure6: reboots per day and detected firmware days.
	Figure6RebootsPerDay []int
	Figure6FirmwareDays  []int

	// Figure7/8: P(ac|nw) and P(ac|pw) ECDFs for the top outage ASes.
	Figure7 []PacECDF
	Figure8 []PacECDF

	// Table6 rows.
	Table6 []ASOutageRow

	// Figure9: duration-binned renumbering for contrast ASes (a DHCP-
	// style AS and a PPP-style AS when available).
	Figure9 []Figure9AS

	// Table7: the all-probes row plus per-AS rows.
	Table7All  PrefixChangeRow
	Table7ByAS []PrefixChangeRow

	// Extensions beyond the paper's evaluation (its §8 future work):

	// LinkTypes are per-AS access-technology inferences from outage
	// response (§5.3's closing remark made an algorithm).
	LinkTypes []LinkTypeRow
	// AdminEvents are detected en-masse administrative renumberings.
	AdminEvents []AdminEvent
	// ChurnMean is the mean day-over-day turnover of the active address
	// set across geo-analyzable probes (the Richter et al. series).
	ChurnMean float64
	// V6 is the IPv6 ephemerality analysis over the probes the IPv4
	// pipeline filters out.
	V6 *V6Report

	// Metrics records how the report was computed (per-stage wall time
	// and record counts). The sequential Run leaves it nil; the staged
	// engine fills it. Excluded from report equality — two reports over
	// the same dataset are equal whatever schedule produced them.
	Metrics *RunMetrics
}

// Options tune report generation.
type Options struct {
	// TopASes is how many ASes Figures 2, 7 and 8 include (default 5).
	TopASes int
	// Figure3Country selects Figure 3's country (default "DE").
	Figure3Country string
	// Figure3MinYears is the minimum total address time for a Figure 3
	// AS, in years (the paper uses 3).
	Figure3MinYears float64
	// Figure9ASNs pins Figure 9's contrast ASes; empty picks the
	// highest- and lowest-renumbering ASes from Table 6 automatically.
	Figure9ASNs []uint32
}

func (o *Options) setDefaults() {
	if o.TopASes == 0 {
		o.TopASes = 5
	}
	if o.Figure3Country == "" {
		o.Figure3Country = "DE"
	}
	if o.Figure3MinYears == 0 {
		o.Figure3MinYears = 3
	}
}

// Run executes the complete analysis pipeline sequentially. The staged
// engine (internal/engine) runs the same stage builders on a worker
// pool; the two produce byte-identical reports.
func Run(ds *atlasdata.Dataset, opts Options) *Report {
	opts.setDefaults()
	rep := &Report{}
	rep.Filter = Filter(ds)
	res := rep.Filter
	rep.Table2 = BuildTable2(res)
	byAS := ByAS(res)

	// Figures 1-3: total-time-fraction CDFs by continent, top AS, and
	// country AS.
	ttfs := ProbeTTFs(res)
	rep.Figure1 = BuildFigure1(res, ttfs)
	rep.Figure2 = BuildFigure2(res, ttfs, byAS, opts.TopASes)
	rep.Figure3 = BuildFigure3(res, ttfs, byAS, opts.Figure3Country, opts.Figure3MinYears)

	// Table 5, the All rows, and the Figures 4/5 hour histograms.
	periodic := ClassifyPeriodicProbes(res)
	rep.Table5 = PeriodicRows(res, periodic)
	rep.Table5All = []ASPeriodicRow{
		PeriodicAllFrom(res, periodic, 24),
		PeriodicAllFrom(res, periodic, 168),
	}
	rep.HourHists = BuildHourHists(res, byAS, rep.Table5)

	// Outage pipeline: Table 6, Figures 6-9.
	rep.Outage = AnalyzeOutages(ds, res)
	rep.Figure6RebootsPerDay = rep.Outage.RebootsPerDay
	rep.Figure6FirmwareDays = rep.Outage.FirmwareDays
	rep.Figure7, rep.Figure8 = BuildPacFigures(rep.Outage, res, byAS, opts.TopASes)
	rep.Table6 = OutagesByAS(rep.Outage, res)
	rep.Figure9 = BuildFigure9(rep.Outage, res, byAS, rep.Table6, opts.Figure9ASNs)

	// Table 7.
	rep.Table7All = PrefixChangesAll(ds, res)
	rep.Table7ByAS = PrefixChangesByAS(ds, res)

	// Extensions.
	rep.LinkTypes = LinkTypesByAS(rep.Outage, res)
	rep.AdminEvents = DetectAdminRenumbering(res)
	rep.ChurnMean = MeanTurnover(DailyChurn(ds, res.GeoProbes))
	rep.V6 = AnalyzeV6(ds)

	return rep
}
