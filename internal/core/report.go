package core

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/geo"
	"dynaddr/internal/stats"
)

// ASCDF is a labelled cumulative distribution for one aggregation group
// (an AS, country, or continent), with the group's total address time —
// the number the paper prints in figure legends (in years).
type ASCDF struct {
	ASN        uint32
	Label      string
	Probes     int
	TotalYears float64
	CDF        []stats.Point
}

// HourHist is an hour-of-day histogram for one AS's periodic changes
// (Figures 4 and 5).
type HourHist struct {
	ASN   uint32
	D     float64
	Hours [24]int
}

// PacECDF is the per-probe conditional-probability ECDF for one AS
// (Figures 7 and 8).
type PacECDF struct {
	ASN    uint32
	Probes int
	Points []stats.Point
}

// Figure9AS is the outage-duration renumbering profile for one AS.
type Figure9AS struct {
	ASN  uint32
	Bins []DurationBinRow
}

// Report bundles every table and figure of the paper's evaluation,
// computed from one dataset.
type Report struct {
	Filter *FilterResult
	Outage *OutageAnalysis

	// Table2 counts per filtering category, in Table 2 order.
	Table2 map[Category]int

	// Figure1: total-time-fraction CDFs per continent.
	Figure1 []ASCDF
	// Figure2: TTF CDFs for the ASes with the most duration-yielding
	// probes.
	Figure2 []ASCDF
	// Figure3: TTF CDFs for German ASes with enough total time.
	Figure3 []ASCDF

	// Table5 rows plus the "All" summary rows at 24h and 168h.
	Table5    []ASPeriodicRow
	Table5All []ASPeriodicRow

	// Figures 4 and 5: hour-of-day change histograms for the two ASes
	// with the most periodic probes.
	HourHists []HourHist

	// Figure6: reboots per day and detected firmware days.
	Figure6RebootsPerDay []int
	Figure6FirmwareDays  []int

	// Figure7/8: P(ac|nw) and P(ac|pw) ECDFs for the top outage ASes.
	Figure7 []PacECDF
	Figure8 []PacECDF

	// Table6 rows.
	Table6 []ASOutageRow

	// Figure9: duration-binned renumbering for contrast ASes (a DHCP-
	// style AS and a PPP-style AS when available).
	Figure9 []Figure9AS

	// Table7: the all-probes row plus per-AS rows.
	Table7All  PrefixChangeRow
	Table7ByAS []PrefixChangeRow

	// Extensions beyond the paper's evaluation (its §8 future work):

	// LinkTypes are per-AS access-technology inferences from outage
	// response (§5.3's closing remark made an algorithm).
	LinkTypes []LinkTypeRow
	// AdminEvents are detected en-masse administrative renumberings.
	AdminEvents []AdminEvent
	// ChurnMean is the mean day-over-day turnover of the active address
	// set across geo-analyzable probes (the Richter et al. series).
	ChurnMean float64
	// V6 is the IPv6 ephemerality analysis over the probes the IPv4
	// pipeline filters out.
	V6 *V6Report
}

// Options tune report generation.
type Options struct {
	// TopASes is how many ASes Figures 2, 7 and 8 include (default 5).
	TopASes int
	// Figure3Country selects Figure 3's country (default "DE").
	Figure3Country string
	// Figure3MinYears is the minimum total address time for a Figure 3
	// AS, in years (the paper uses 3).
	Figure3MinYears float64
	// Figure9ASNs pins Figure 9's contrast ASes; empty picks the
	// highest- and lowest-renumbering ASes from Table 6 automatically.
	Figure9ASNs []uint32
}

func (o *Options) setDefaults() {
	if o.TopASes == 0 {
		o.TopASes = 5
	}
	if o.Figure3Country == "" {
		o.Figure3Country = "DE"
	}
	if o.Figure3MinYears == 0 {
		o.Figure3MinYears = 3
	}
}

// Run executes the complete analysis pipeline.
func Run(ds *atlasdata.Dataset, opts Options) *Report {
	opts.setDefaults()
	rep := &Report{}
	rep.Filter = Filter(ds)
	res := rep.Filter

	rep.Table2 = make(map[Category]int)
	for _, c := range Categories {
		rep.Table2[c] = res.Count(c)
	}

	ttfs := ProbeTTFs(res)

	// Figure 1: continents in the paper's legend order.
	byCont := ByContinent(res)
	for _, cont := range geo.Continents {
		ids := byCont[cont]
		if len(ids) == 0 {
			continue
		}
		g := GroupTTF(ttfs, ids)
		rep.Figure1 = append(rep.Figure1, ASCDF{
			Label:      string(cont),
			Probes:     len(ids),
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}

	// Figure 2: top ASes by probes yielding at least one duration.
	byAS := ByAS(res)
	type asSize struct {
		asn      uint32
		yielding int
	}
	var sizes []asSize
	for asn, ids := range byAS {
		y := 0
		for _, id := range ids {
			if ttfs[id].Len() > 0 {
				y++
			}
		}
		if y > 0 {
			sizes = append(sizes, asSize{asn, y})
		}
	}
	sort.Slice(sizes, func(i, j int) bool {
		if sizes[i].yielding != sizes[j].yielding {
			return sizes[i].yielding > sizes[j].yielding
		}
		return sizes[i].asn < sizes[j].asn
	})
	for i := 0; i < len(sizes) && i < opts.TopASes; i++ {
		asn := sizes[i].asn
		g := GroupTTF(ttfs, byAS[asn])
		rep.Figure2 = append(rep.Figure2, ASCDF{
			ASN:        asn,
			Probes:     sizes[i].yielding,
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}

	// Figure 3: ASes of the chosen country with enough total time.
	countryAS := make(map[uint32][]atlasdata.ProbeID)
	for asn, ids := range byAS {
		var in []atlasdata.ProbeID
		for _, id := range ids {
			if res.Views[id].Meta.Country == opts.Figure3Country {
				in = append(in, id)
			}
		}
		if len(in) > 0 {
			countryAS[asn] = in
		}
	}
	var f3ASNs []uint32
	for asn, ids := range countryAS {
		g := GroupTTF(ttfs, ids)
		if g.Total()/(24*365) >= opts.Figure3MinYears {
			f3ASNs = append(f3ASNs, asn)
			_ = g
		}
	}
	sort.Slice(f3ASNs, func(i, j int) bool { return f3ASNs[i] < f3ASNs[j] })
	for _, asn := range f3ASNs {
		g := GroupTTF(ttfs, countryAS[asn])
		rep.Figure3 = append(rep.Figure3, ASCDF{
			ASN:        asn,
			Probes:     len(countryAS[asn]),
			TotalYears: g.Total() / (24 * 365),
			CDF:        g.CDF(),
		})
	}

	// Table 5 and the All rows.
	rep.Table5 = PeriodicByAS(res)
	rep.Table5All = []ASPeriodicRow{
		PeriodicAll(res, 24),
		PeriodicAll(res, 168),
	}

	// Figures 4/5: hour histograms for the two rows with most periodic
	// probes.
	for i := 0; i < len(rep.Table5) && i < 2; i++ {
		row := rep.Table5[i]
		rep.HourHists = append(rep.HourHists, HourHist{
			ASN:   row.ASN,
			D:     row.D,
			Hours: HourHistogram(res, byAS[row.ASN], row.D),
		})
	}

	// Outage pipeline: Table 6, Figures 6-9.
	rep.Outage = AnalyzeOutages(ds, res)
	rep.Figure6RebootsPerDay = rep.Outage.RebootsPerDay
	rep.Figure6FirmwareDays = rep.Outage.FirmwareDays

	// Figures 7/8 for the top ASes by qualifying probes.
	type pacSize struct {
		asn uint32
		n   int
	}
	var pacSizes []pacSize
	for asn, ids := range byAS {
		n := 0
		for _, id := range ids {
			st := rep.Outage.Stats[id]
			if len(res.Views[id].Changes) > 0 && st.NetworkGaps >= MinOutagesForPac {
				n++
			}
		}
		if n > 0 {
			pacSizes = append(pacSizes, pacSize{asn, n})
		}
	}
	sort.Slice(pacSizes, func(i, j int) bool {
		if pacSizes[i].n != pacSizes[j].n {
			return pacSizes[i].n > pacSizes[j].n
		}
		return pacSizes[i].asn < pacSizes[j].asn
	})
	for i := 0; i < len(pacSizes) && i < opts.TopASes; i++ {
		asn := pacSizes[i].asn
		nw := rep.Outage.PacSample(byAS[asn], false)
		pw := rep.Outage.PacSample(byAS[asn], true)
		rep.Figure7 = append(rep.Figure7, PacECDF{ASN: asn, Probes: nw.Len(), Points: nw.ECDF()})
		rep.Figure8 = append(rep.Figure8, PacECDF{ASN: asn, Probes: pw.Len(), Points: pw.ECDF()})
	}

	rep.Table6 = OutagesByAS(rep.Outage, res)

	// Figure 9 contrast ASes: the paper pins LGI (AS6830, DHCP) against
	// Orange (AS3215, PPP). Use that pair when both exist in the data;
	// otherwise fall back to the Table 6 extremes.
	f9 := opts.Figure9ASNs
	if len(f9) == 0 {
		if _, okL := byAS[6830]; okL {
			if _, okO := byAS[3215]; okO {
				f9 = []uint32{6830, 3215}
			}
		}
	}
	if len(f9) == 0 && len(rep.Table6) > 0 {
		hi, lo := rep.Table6[0], rep.Table6[0]
		for _, r := range rep.Table6 {
			if r.NwOver80 > hi.NwOver80 {
				hi = r
			}
			if r.NwOver80 < lo.NwOver80 {
				lo = r
			}
		}
		f9 = []uint32{lo.ASN, hi.ASN}
	}
	for _, asn := range f9 {
		if ids, ok := byAS[asn]; ok {
			rep.Figure9 = append(rep.Figure9, Figure9AS{
				ASN:  asn,
				Bins: rep.Outage.DurationBins(res, ids),
			})
		}
	}

	// Table 7.
	rep.Table7All = PrefixChangesAll(ds, res)
	rep.Table7ByAS = PrefixChangesByAS(ds, res)

	// Extensions.
	rep.LinkTypes = LinkTypesByAS(rep.Outage, res)
	rep.AdminEvents = DetectAdminRenumbering(res)
	rep.ChurnMean = MeanTurnover(DailyChurn(ds, res.GeoProbes))
	rep.V6 = AnalyzeV6(ds)

	return rep
}
