// Package asdb provides an autonomous-system registry and a deterministic
// IPv4 address-space allocator for synthetic worlds.
//
// The paper maps addresses to ASes via CAIDA's pfx2as dataset and treats
// sibling ASes (same operator, different ASN) as a source of cross-AS
// address changes. The registry records ASN, holder name, country, and
// sibling relations; the allocator hands out non-overlapping, non-reserved
// BGP prefixes so that generated pfx2as snapshots are internally
// consistent.
package asdb

import (
	"fmt"
	"sort"

	"dynaddr/internal/ip4"
)

// ASN is an autonomous system number.
type ASN uint32

// String formats the ASN in the conventional "AS3320" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", a) }

// AS describes one autonomous system.
type AS struct {
	ASN     ASN
	Name    string
	Country string // ISO 3166-1 alpha-2
	// Siblings lists other ASNs operated by the same organisation.
	// Address changes between sibling ASes appear in connection logs as
	// cross-AS changes (paper §3.3) even though no provider switch
	// happened.
	Siblings []ASN
}

// Registry is a set of ASes. The zero value is empty and usable.
type Registry struct {
	byASN map[ASN]AS
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byASN: make(map[ASN]AS)}
}

// Add inserts an AS. It fails on ASN 0 or a duplicate ASN.
func (r *Registry) Add(as AS) error {
	if as.ASN == 0 {
		return fmt.Errorf("asdb: ASN 0 is reserved")
	}
	if r.byASN == nil {
		r.byASN = make(map[ASN]AS)
	}
	if _, dup := r.byASN[as.ASN]; dup {
		return fmt.Errorf("asdb: duplicate %v", as.ASN)
	}
	r.byASN[as.ASN] = as
	return nil
}

// Lookup returns the AS with the given number.
func (r *Registry) Lookup(asn ASN) (AS, bool) {
	as, ok := r.byASN[asn]
	return as, ok
}

// Len returns the number of registered ASes.
func (r *Registry) Len() int { return len(r.byASN) }

// All returns every AS sorted by ASN.
func (r *Registry) All() []AS {
	out := make([]AS, 0, len(r.byASN))
	for _, as := range r.byASN {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// SameOrg reports whether a and b belong to the same organisation:
// either equal, or registered as siblings (in either direction).
func (r *Registry) SameOrg(a, b ASN) bool {
	if a == b {
		return true
	}
	if as, ok := r.byASN[a]; ok {
		for _, s := range as.Siblings {
			if s == b {
				return true
			}
		}
	}
	if bs, ok := r.byASN[b]; ok {
		for _, s := range bs.Siblings {
			if s == a {
				return true
			}
		}
	}
	return false
}

// reserved lists IPv4 ranges the allocator must never hand out: private,
// loopback, link-local, multicast, documentation, and future-use space.
var reserved = []ip4.Prefix{
	ip4.MustParsePrefix("0.0.0.0/8"),
	ip4.MustParsePrefix("10.0.0.0/8"),
	ip4.MustParsePrefix("100.64.0.0/10"),
	ip4.MustParsePrefix("127.0.0.0/8"),
	ip4.MustParsePrefix("169.254.0.0/16"),
	ip4.MustParsePrefix("172.16.0.0/12"),
	ip4.MustParsePrefix("192.0.0.0/24"),
	ip4.MustParsePrefix("192.0.2.0/24"),
	ip4.MustParsePrefix("192.88.99.0/24"),
	ip4.MustParsePrefix("192.168.0.0/16"),
	ip4.MustParsePrefix("198.18.0.0/15"),
	ip4.MustParsePrefix("198.51.100.0/24"),
	ip4.MustParsePrefix("203.0.113.0/24"),
	ip4.MustParsePrefix("224.0.0.0/3"), // multicast + class E
}

// IsReserved reports whether p overlaps any reserved IPv4 range.
func IsReserved(p ip4.Prefix) bool {
	for _, r := range reserved {
		if r.Overlaps(p) {
			return true
		}
	}
	return false
}

// Allocator hands out non-overlapping, non-reserved prefixes in a
// deterministic left-to-right sweep of the IPv4 space. The zero value
// starts the sweep at 1.0.0.0.
type Allocator struct {
	cursor uint64 // next candidate address, as uint64 to detect exhaustion
}

// NewAllocator returns an allocator whose sweep starts at start. Use a
// non-default start to spread synthetic worlds over different /8s.
func NewAllocator(start ip4.Addr) *Allocator {
	return &Allocator{cursor: uint64(start)}
}

// Alloc returns the next free prefix of the given length. Successive
// calls never overlap, regardless of the mix of lengths requested.
func (a *Allocator) Alloc(bits int) (ip4.Prefix, error) {
	if bits < 8 || bits > 24 {
		return ip4.Prefix{}, fmt.Errorf("asdb: prefix length /%d outside supported range /8../24", bits)
	}
	if a.cursor == 0 {
		a.cursor = uint64(ip4.FromOctets(1, 0, 0, 0))
	}
	size := uint64(1) << (32 - uint(bits))
	for a.cursor < 1<<32 {
		// Align the cursor up to the block size.
		base := (a.cursor + size - 1) &^ (size - 1)
		if base >= 1<<32 {
			break
		}
		p := ip4.PrefixFrom(ip4.Addr(base), bits)
		if IsReserved(p) {
			// Skip past the reserved range that collides.
			a.cursor = base + size
			continue
		}
		a.cursor = base + size
		return p, nil
	}
	return ip4.Prefix{}, fmt.Errorf("asdb: IPv4 space exhausted")
}

// AllocN returns n prefixes of the given length.
func (a *Allocator) AllocN(n, bits int) ([]ip4.Prefix, error) {
	out := make([]ip4.Prefix, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc(bits)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RegionAllocator spreads allocations over widely separated regions of
// the IPv4 space. Real ISPs accumulate address blocks over decades from
// different registry ranges, which is why the paper finds a third of
// all address changes crossing even /8 boundaries (Table 7); a single
// left-to-right sweep would put each ISP's whole pool in one /8 and
// erase that effect.
type RegionAllocator struct {
	regions []*Allocator
	// ceilings[i] is the first address region i must not reach.
	ceilings []uint64
}

// NewRegionAllocator splits the unicast space into n equal regions.
func NewRegionAllocator(n int) (*RegionAllocator, error) {
	if n < 1 {
		return nil, fmt.Errorf("asdb: need at least one region")
	}
	lo := uint64(ip4.FromOctets(2, 0, 0, 0))
	hi := uint64(ip4.FromOctets(223, 0, 0, 0))
	span := (hi - lo) / uint64(n)
	if span < 1<<24 {
		return nil, fmt.Errorf("asdb: %d regions leave less than a /8 each", n)
	}
	ra := &RegionAllocator{}
	for i := 0; i < n; i++ {
		start := lo + uint64(i)*span
		ra.regions = append(ra.regions, NewAllocator(ip4.Addr(start)))
		ra.ceilings = append(ra.ceilings, start+span)
	}
	return ra, nil
}

// NumRegions returns the region count.
func (ra *RegionAllocator) NumRegions() int { return len(ra.regions) }

// Alloc allocates a prefix from the given region, failing rather than
// silently bleeding into the next region.
func (ra *RegionAllocator) Alloc(region, bits int) (ip4.Prefix, error) {
	if region < 0 || region >= len(ra.regions) {
		return ip4.Prefix{}, fmt.Errorf("asdb: region %d out of range", region)
	}
	p, err := ra.regions[region].Alloc(bits)
	if err != nil {
		return ip4.Prefix{}, err
	}
	if uint64(p.Addr())+p.NumAddrs() > ra.ceilings[region] {
		return ip4.Prefix{}, fmt.Errorf("asdb: region %d exhausted", region)
	}
	return p, nil
}
