package asdb

import (
	"testing"

	"dynaddr/internal/ip4"
)

func TestRegistryAddLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(AS{ASN: 3320, Name: "DTAG", Country: "DE"}); err != nil {
		t.Fatal(err)
	}
	as, ok := r.Lookup(3320)
	if !ok || as.Name != "DTAG" || as.Country != "DE" {
		t.Errorf("Lookup(3320) = %+v, %v", as, ok)
	}
	if _, ok := r.Lookup(99); ok {
		t.Error("Lookup of unregistered ASN should fail")
	}
}

func TestRegistryRejectsDuplicatesAndZero(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(AS{ASN: 0}); err == nil {
		t.Error("ASN 0 should be rejected")
	}
	if err := r.Add(AS{ASN: 7}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(AS{ASN: 7}); err == nil {
		t.Error("duplicate ASN should be rejected")
	}
}

func TestRegistryZeroValueUsable(t *testing.T) {
	var r Registry
	if err := r.Add(AS{ASN: 1}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Error("zero-value registry should accept Add")
	}
}

func TestAllSorted(t *testing.T) {
	r := NewRegistry()
	for _, asn := range []ASN{30, 10, 20} {
		if err := r.Add(AS{ASN: asn}); err != nil {
			t.Fatal(err)
		}
	}
	all := r.All()
	if len(all) != 3 || all[0].ASN != 10 || all[1].ASN != 20 || all[2].ASN != 30 {
		t.Errorf("All() = %v, want sorted by ASN", all)
	}
}

func TestSameOrg(t *testing.T) {
	r := NewRegistry()
	// Telefonica Germany operates two ASNs (paper Table 5).
	if err := r.Add(AS{ASN: 6805, Name: "Telefonica DE 2", Siblings: []ASN{13184}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(AS{ASN: 13184, Name: "Telefonica DE 1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(AS{ASN: 3320, Name: "DTAG"}); err != nil {
		t.Fatal(err)
	}
	if !r.SameOrg(6805, 6805) {
		t.Error("an AS is its own org")
	}
	if !r.SameOrg(6805, 13184) || !r.SameOrg(13184, 6805) {
		t.Error("sibling relation must hold in both directions")
	}
	if r.SameOrg(6805, 3320) {
		t.Error("unrelated ASes must not be same org")
	}
}

func TestASNString(t *testing.T) {
	if got := ASN(3320).String(); got != "AS3320" {
		t.Errorf("String = %q", got)
	}
}

func TestIsReserved(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"10.0.0.0/8", true},
		{"10.1.0.0/16", true},
		{"9.0.0.0/8", false},
		{"192.168.1.0/24", true},
		{"192.0.2.0/24", true},
		{"193.0.0.0/16", false},
		{"224.0.0.0/8", true},
		{"240.0.0.0/8", true},
		{"8.0.0.0/8", false},
		{"172.16.0.0/16", true},
		{"172.32.0.0/16", false},
	}
	for _, c := range cases {
		if got := IsReserved(ip4.MustParsePrefix(c.in)); got != c.want {
			t.Errorf("IsReserved(%s) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAllocatorNoOverlapNoReserved(t *testing.T) {
	a := NewAllocator(0)
	var got []ip4.Prefix
	// Mixed lengths, enough to cross several /8s including reserved ones.
	for i := 0; i < 400; i++ {
		bits := []int{16, 20, 24, 12}[i%4]
		p, err := a.Alloc(bits)
		if err != nil {
			t.Fatal(err)
		}
		if IsReserved(p) {
			t.Fatalf("allocated reserved prefix %v", p)
		}
		got = append(got, p)
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Overlaps(got[j]) {
				t.Fatalf("allocations overlap: %v and %v", got[i], got[j])
			}
		}
	}
}

func TestAllocatorSkipsPrivateSpace(t *testing.T) {
	// Start right before 10/8; the very next /8 must skip to 11/8 or later.
	a := NewAllocator(ip4.MustParseAddr("9.255.255.255"))
	p, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Overlaps(ip4.MustParsePrefix("10.0.0.0/8")) {
		t.Errorf("allocator handed out %v inside private space", p)
	}
}

func TestAllocatorDeterministic(t *testing.T) {
	a, b := NewAllocator(0), NewAllocator(0)
	for i := 0; i < 100; i++ {
		pa, errA := a.Alloc(18)
		pb, errB := b.Alloc(18)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if pa != pb {
			t.Fatalf("allocators diverged at %d: %v vs %v", i, pa, pb)
		}
	}
}

func TestAllocatorRejectsBadLength(t *testing.T) {
	a := NewAllocator(0)
	for _, bits := range []int{0, 7, 25, 33, -1} {
		if _, err := a.Alloc(bits); err == nil {
			t.Errorf("Alloc(%d) should fail", bits)
		}
	}
}

func TestAllocN(t *testing.T) {
	a := NewAllocator(0)
	ps, err := a.AllocN(5, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 5 {
		t.Fatalf("AllocN returned %d prefixes", len(ps))
	}
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[i].Overlaps(ps[j]) {
				t.Errorf("AllocN prefixes overlap: %v %v", ps[i], ps[j])
			}
		}
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	// Start near the top of unicast space; after the remaining blocks are
	// gone the allocator must report exhaustion, not loop.
	a := NewAllocator(ip4.MustParseAddr("223.255.0.0"))
	var err error
	for i := 0; i < 10; i++ {
		_, err = a.Alloc(16)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Error("allocator should exhaust above 224.0.0.0/3")
	}
}
