package atlasdata

import (
	"path/filepath"
	"reflect"
	"testing"

	"dynaddr/internal/asdb"
	"dynaddr/internal/ip4"
	"dynaddr/internal/pfx2as"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	d.Probes[206] = ProbeMeta{ID: 206, Country: "DE", Version: V3, ConnectedDays: 300}
	d.Probes[207] = ProbeMeta{ID: 207, Country: "FR", Version: V1, Tags: []string{TagCore}, ConnectedDays: 100}
	d.ConnLogs[206] = []ConnLogEntry{
		{Probe: 206, Start: 100, End: 200, Family: V4, Addr: ip4.MustParseAddr("91.55.1.1")},
		{Probe: 206, Start: 300, End: 400, Family: V4, Addr: ip4.MustParseAddr("91.55.2.2")},
	}
	d.ConnLogs[207] = []ConnLogEntry{
		{Probe: 207, Start: 150, End: 250, Family: V6, V6Addr: "2001:db8::2"},
	}
	d.KRoot[206] = []KRootRound{
		{Probe: 206, Timestamp: 120, Sent: 3, Success: 3, LTS: 60},
		{Probe: 206, Timestamp: 360, Sent: 3, Success: 0, LTS: 300},
	}
	d.Uptime[206] = []UptimeRecord{
		{Probe: 206, Timestamp: 100, Uptime: 5000},
		{Probe: 206, Timestamp: 300, Uptime: 20},
	}
	tbl, err := pfx2as.NewTable([]pfx2as.Entry{
		{Prefix: ip4.MustParsePrefix("91.55.0.0/16"), ASN: asdb.ASN(3320)},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Pfx2AS.Put(201501, tbl)
	return d
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Probes, d.Probes) {
		t.Errorf("probes mismatch:\n got %+v\nwant %+v", got.Probes, d.Probes)
	}
	if !reflect.DeepEqual(got.ConnLogs, d.ConnLogs) {
		t.Errorf("connlogs mismatch:\n got %+v\nwant %+v", got.ConnLogs, d.ConnLogs)
	}
	if !reflect.DeepEqual(got.KRoot, d.KRoot) {
		t.Errorf("kroot mismatch")
	}
	if !reflect.DeepEqual(got.Uptime, d.Uptime) {
		t.Errorf("uptime mismatch")
	}
	asn, pfx, ok := got.Pfx2AS.Lookup(ip4.MustParseAddr("91.55.9.9"), 1420100000)
	if !ok || asn != 3320 || pfx.String() != "91.55.0.0/16" {
		t.Errorf("pfx2as lookup after load = %v %v %v", asn, pfx, ok)
	}
}

func TestDatasetValidateCatchesOverlap(t *testing.T) {
	d := sampleDataset(t)
	d.ConnLogs[206] = append(d.ConnLogs[206], ConnLogEntry{
		Probe: 206, Start: 350, End: 500, Family: V4, Addr: ip4.MustParseAddr("91.55.3.3"),
	})
	d.SortRecords()
	if err := d.Validate(); err == nil {
		t.Error("overlapping connections should fail validation")
	}
}

func TestDatasetValidateCatchesOrphans(t *testing.T) {
	d := NewDataset()
	d.ConnLogs[999] = []ConnLogEntry{
		{Probe: 999, Start: 1, End: 2, Family: V4, Addr: 1},
	}
	if err := d.Validate(); err == nil {
		t.Error("records without probe metadata should fail validation")
	}
}

func TestDatasetValidateCatchesWrongProbeID(t *testing.T) {
	d := NewDataset()
	d.Probes[1] = ProbeMeta{ID: 1, Version: V3}
	d.ConnLogs[1] = []ConnLogEntry{
		{Probe: 2, Start: 1, End: 2, Family: V4, Addr: 1},
	}
	if err := d.Validate(); err == nil {
		t.Error("entry filed under wrong probe should fail validation")
	}
}

func TestSortRecords(t *testing.T) {
	d := NewDataset()
	d.Probes[1] = ProbeMeta{ID: 1, Version: V3}
	d.ConnLogs[1] = []ConnLogEntry{
		{Probe: 1, Start: 300, End: 400, Family: V4, Addr: 1},
		{Probe: 1, Start: 100, End: 200, Family: V4, Addr: 2},
	}
	d.KRoot[1] = []KRootRound{
		{Probe: 1, Timestamp: 50, Sent: 3, Success: 3},
		{Probe: 1, Timestamp: 10, Sent: 3, Success: 3},
	}
	d.Uptime[1] = []UptimeRecord{
		{Probe: 1, Timestamp: 9, Uptime: 100},
		{Probe: 1, Timestamp: 3, Uptime: 50},
	}
	d.SortRecords()
	if d.ConnLogs[1][0].Start != 100 || d.KRoot[1][0].Timestamp != 10 || d.Uptime[1][0].Timestamp != 3 {
		t.Error("SortRecords did not sort all streams")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("sorted dataset should validate: %v", err)
	}
}

func TestProbeIDsSorted(t *testing.T) {
	d := NewDataset()
	for _, id := range []ProbeID{30, 10, 20} {
		d.Probes[id] = ProbeMeta{ID: id, Version: V3}
	}
	got := d.ProbeIDs()
	want := []ProbeID{10, 20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ProbeIDs = %v, want %v", got, want)
	}
}

func TestLoadMissingDirFails(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("loading a missing directory should fail")
	}
}
