package atlasdata

import (
	"bytes"
	"testing"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// TestSingleRecordCodecsRoundTrip checks the per-record Marshal/
// Unmarshal pairs the ingest WAL uses as its payload codec: every
// record kind survives a round trip intact and agrees with the batch
// line format.
func TestSingleRecordCodecsRoundTrip(t *testing.T) {
	connV4 := ConnLogEntry{Probe: 1001, Start: simclock.StudyStart,
		End: simclock.StudyStart.Add(3 * simclock.Hour), Family: V4, Addr: ip4.MustParseAddr("192.0.2.7")}
	connV6 := ConnLogEntry{Probe: 1002, Start: simclock.StudyStart,
		End: simclock.StudyStart.Add(simclock.Hour), Family: V6, V6Addr: "2001:db8::42"}
	for _, e := range []ConnLogEntry{connV4, connV6} {
		b, err := MarshalConnLog(e)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalConnLog(b)
		if err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if back != e {
			t.Errorf("connlog round trip: got %+v, want %+v", back, e)
		}
		// The single-record line must be exactly what the batch writer
		// emits for the same entry.
		var batch bytes.Buffer
		if err := WriteConnLogs(&batch, []ConnLogEntry{e}); err != nil {
			t.Fatal(err)
		}
		if want := string(b) + "\n"; batch.String() != want {
			t.Errorf("batch line %q differs from single-record %q", batch.String(), want)
		}
	}

	k := KRootRound{Probe: 1001, Timestamp: simclock.StudyStart.Add(4 * simclock.Minute),
		Sent: 3, Success: 0, LTS: 512}
	kb, err := MarshalKRoot(k)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := UnmarshalKRoot(kb); err != nil || back != k {
		t.Errorf("kroot round trip: got %+v, %v; want %+v", back, err, k)
	}

	u := UptimeRecord{Probe: 1001, Timestamp: simclock.StudyStart.Add(simclock.Day), Uptime: 86000}
	ub, err := MarshalUptime(u)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := UnmarshalUptime(ub); err != nil || back != u {
		t.Errorf("uptime round trip: got %+v, %v; want %+v", back, err, u)
	}

	m := ProbeMeta{ID: 1001, Country: "DE", Version: V3, Tags: []string{"home", "multihomed"}, ConnectedDays: 301.5}
	mb, err := MarshalProbeMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalProbeMeta(mb)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != m.ID || back.Country != m.Country || back.Version != m.Version ||
		back.ConnectedDays != m.ConnectedDays || len(back.Tags) != len(m.Tags) {
		t.Errorf("probe meta round trip: got %+v, want %+v", back, m)
	}
}

func TestSingleRecordCodecsRejectInvalid(t *testing.T) {
	if _, err := MarshalConnLog(ConnLogEntry{Probe: 1}); err == nil {
		t.Error("invalid connlog marshalled")
	}
	if _, err := UnmarshalConnLog([]byte("1\t2")); err == nil {
		t.Error("short connlog record parsed")
	}
	if _, err := UnmarshalKRoot([]byte("1\t2\t3\t4\tx")); err == nil {
		t.Error("bad kroot record parsed")
	}
	if _, err := UnmarshalUptime([]byte("1\t2\t-5")); err == nil {
		t.Error("negative uptime record parsed")
	}
	if _, err := UnmarshalProbeMeta([]byte(`{"id": -3}`)); err == nil {
		t.Error("invalid probe meta parsed")
	}
}
