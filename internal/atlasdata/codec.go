package atlasdata

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// Text formats, one record per line, tab-separated:
//
//	connection logs: probe <TAB> start-unix <TAB> end-unix <TAB> address
//	k-root rounds:   probe <TAB> unix-time <TAB> sent <TAB> success <TAB> lts
//	uptime records:  probe <TAB> unix-time <TAB> uptime-seconds
//
// IPv6 addresses are recognised by containing ':'.

// formatConnLog renders one entry as its text-format line (no newline).
func formatConnLog(e ConnLogEntry) string {
	addr := e.V6Addr
	if e.Family == V4 {
		addr = e.Addr.String()
	}
	return fmt.Sprintf("%d\t%d\t%d\t%s", e.Probe, int64(e.Start), int64(e.End), addr)
}

// parseConnLogFields assembles and validates an entry from the four
// text-format fields.
func parseConnLogFields(f []string) (ConnLogEntry, error) {
	probe, start, end, err := parseCommonHead(f)
	if err != nil {
		return ConnLogEntry{}, err
	}
	e := ConnLogEntry{Probe: probe, Start: start, End: end}
	if strings.Contains(f[3], ":") {
		e.Family = V6
		e.V6Addr = f[3]
	} else {
		addr, err := ip4.ParseAddr(f[3])
		if err != nil {
			return ConnLogEntry{}, err
		}
		e.Family = V4
		e.Addr = addr
	}
	return e, e.Validate()
}

// MarshalConnLog serialises one entry as a self-contained text record —
// the single-record codec the ingest WAL frames its payloads with.
func MarshalConnLog(e ConnLogEntry) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return []byte(formatConnLog(e)), nil
}

// UnmarshalConnLog parses a record written by MarshalConnLog.
func UnmarshalConnLog(b []byte) (ConnLogEntry, error) {
	f := strings.Fields(string(b))
	if len(f) != 4 {
		return ConnLogEntry{}, fmt.Errorf("atlasdata: connlog record: want 4 fields, got %d", len(f))
	}
	return parseConnLogFields(f)
}

// WriteConnLogs serialises connection-log entries.
func WriteConnLogs(w io.Writer, entries []ConnLogEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\n", formatConnLog(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseConnLogs parses connection-log entries in the text format.
func ParseConnLogs(r io.Reader) ([]ConnLogEntry, error) {
	var out []ConnLogEntry
	err := scanLines(r, 4, func(lineno int, f []string) error {
		e, err := parseConnLogFields(f)
		if err != nil {
			return err
		}
		out = append(out, e)
		return nil
	})
	return out, err
}

// formatKRoot renders one round as its text-format line (no newline).
func formatKRoot(k KRootRound) string {
	return fmt.Sprintf("%d\t%d\t%d\t%d\t%d", k.Probe, int64(k.Timestamp), k.Sent, k.Success, k.LTS)
}

// parseKRootFields assembles and validates a round from the five
// text-format fields.
func parseKRootFields(f []string) (KRootRound, error) {
	probe, err := parseProbeID(f[0])
	if err != nil {
		return KRootRound{}, err
	}
	ts, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return KRootRound{}, fmt.Errorf("bad timestamp %q", f[1])
	}
	sent, err1 := strconv.Atoi(f[2])
	success, err2 := strconv.Atoi(f[3])
	lts, err3 := strconv.ParseInt(f[4], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return KRootRound{}, fmt.Errorf("bad numeric field in %v", f)
	}
	k := KRootRound{Probe: probe, Timestamp: simclock.Time(ts), Sent: sent, Success: success, LTS: lts}
	return k, k.Validate()
}

// MarshalKRoot serialises one round as a self-contained text record.
func MarshalKRoot(k KRootRound) ([]byte, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return []byte(formatKRoot(k)), nil
}

// UnmarshalKRoot parses a record written by MarshalKRoot.
func UnmarshalKRoot(b []byte) (KRootRound, error) {
	f := strings.Fields(string(b))
	if len(f) != 5 {
		return KRootRound{}, fmt.Errorf("atlasdata: kroot record: want 5 fields, got %d", len(f))
	}
	return parseKRootFields(f)
}

// WriteKRoot serialises k-root rounds.
func WriteKRoot(w io.Writer, rounds []KRootRound) error {
	bw := bufio.NewWriter(w)
	for _, k := range rounds {
		if err := k.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\n", formatKRoot(k)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseKRoot parses k-root rounds in the text format.
func ParseKRoot(r io.Reader) ([]KRootRound, error) {
	var out []KRootRound
	err := scanLines(r, 5, func(lineno int, f []string) error {
		k, err := parseKRootFields(f)
		if err != nil {
			return err
		}
		out = append(out, k)
		return nil
	})
	return out, err
}

// formatUptime renders one record as its text-format line (no newline).
func formatUptime(u UptimeRecord) string {
	return fmt.Sprintf("%d\t%d\t%d", u.Probe, int64(u.Timestamp), u.Uptime)
}

// parseUptimeFields assembles and validates a record from the three
// text-format fields.
func parseUptimeFields(f []string) (UptimeRecord, error) {
	probe, err := parseProbeID(f[0])
	if err != nil {
		return UptimeRecord{}, err
	}
	ts, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return UptimeRecord{}, fmt.Errorf("bad timestamp %q", f[1])
	}
	up, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return UptimeRecord{}, fmt.Errorf("bad uptime %q", f[2])
	}
	u := UptimeRecord{Probe: probe, Timestamp: simclock.Time(ts), Uptime: up}
	return u, u.Validate()
}

// MarshalUptime serialises one record as a self-contained text record.
func MarshalUptime(u UptimeRecord) ([]byte, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return []byte(formatUptime(u)), nil
}

// UnmarshalUptime parses a record written by MarshalUptime.
func UnmarshalUptime(b []byte) (UptimeRecord, error) {
	f := strings.Fields(string(b))
	if len(f) != 3 {
		return UptimeRecord{}, fmt.Errorf("atlasdata: uptime record: want 3 fields, got %d", len(f))
	}
	return parseUptimeFields(f)
}

// WriteUptime serialises uptime records.
func WriteUptime(w io.Writer, recs []UptimeRecord) error {
	bw := bufio.NewWriter(w)
	for _, u := range recs {
		if err := u.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\n", formatUptime(u)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseUptime parses uptime records in the text format.
func ParseUptime(r io.Reader) ([]UptimeRecord, error) {
	var out []UptimeRecord
	err := scanLines(r, 3, func(lineno int, f []string) error {
		u, err := parseUptimeFields(f)
		if err != nil {
			return err
		}
		out = append(out, u)
		return nil
	})
	return out, err
}

// WriteProbeArchive serialises probe metadata as a JSON array, sorted by
// probe ID, mirroring the RIPE probe-archive API shape the paper scraped.
func WriteProbeArchive(w io.Writer, probes []ProbeMeta) error {
	sorted := make([]ProbeMeta, len(probes))
	copy(sorted, probes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, p := range sorted {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(sorted)
}

// MarshalProbeMeta serialises one probe's metadata as a self-contained
// JSON record.
func MarshalProbeMeta(p ProbeMeta) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// UnmarshalProbeMeta parses a record written by MarshalProbeMeta.
func UnmarshalProbeMeta(b []byte) (ProbeMeta, error) {
	var p ProbeMeta
	if err := json.Unmarshal(b, &p); err != nil {
		return ProbeMeta{}, fmt.Errorf("atlasdata: probe meta record: %v", err)
	}
	return p, p.Validate()
}

// ParseProbeArchive parses probe metadata written by WriteProbeArchive.
func ParseProbeArchive(r io.Reader) ([]ProbeMeta, error) {
	var probes []ProbeMeta
	if err := json.NewDecoder(r).Decode(&probes); err != nil {
		return nil, fmt.Errorf("atlasdata: probe archive: %v", err)
	}
	for _, p := range probes {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return probes, nil
}

func parseProbeID(s string) (ProbeID, error) {
	id, err := strconv.Atoi(s)
	if err != nil || id <= 0 {
		return 0, fmt.Errorf("bad probe ID %q", s)
	}
	return ProbeID(id), nil
}

func parseCommonHead(f []string) (ProbeID, simclock.Time, simclock.Time, error) {
	probe, err := parseProbeID(f[0])
	if err != nil {
		return 0, 0, 0, err
	}
	start, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad start time %q", f[1])
	}
	end, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad end time %q", f[2])
	}
	return probe, simclock.Time(start), simclock.Time(end), nil
}

// scanLines runs fn over every non-blank, non-comment line split into
// exactly nFields tab-or-space separated fields.
func scanLines(r io.Reader, nFields int, fn func(lineno int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != nFields {
			return fmt.Errorf("atlasdata: line %d: want %d fields, got %d", lineno, nFields, len(fields))
		}
		if err := fn(lineno, fields); err != nil {
			return fmt.Errorf("atlasdata: line %d: %v", lineno, err)
		}
	}
	return sc.Err()
}
