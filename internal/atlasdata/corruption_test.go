package atlasdata

import (
	"os"
	"path/filepath"
	"testing"
)

// Failure injection: a dataset directory that has been truncated,
// corrupted or shuffled must fail to load with an error — never load
// silently wrong.

func savedSample(t *testing.T) string {
	t.Helper()
	d := sampleDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func corrupt(t *testing.T, dir, file string, mutate func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsTruncatedConnLogs(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "connlogs.tsv", func(b []byte) []byte {
		// Chop mid-line: the tail line has too few fields.
		return b[:len(b)-10]
	})
	if _, err := Load(dir); err == nil {
		t.Error("truncated connlogs should fail to load")
	}
}

func TestLoadRejectsGarbageProbeArchive(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "probes.json", func([]byte) []byte {
		return []byte("{not json")
	})
	if _, err := Load(dir); err == nil {
		t.Error("garbage probe archive should fail to load")
	}
}

func TestLoadRejectsNegativeUptime(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "uptime.tsv", func(b []byte) []byte {
		return append(b, []byte("206\t1000\t-5\n")...)
	})
	if _, err := Load(dir); err == nil {
		t.Error("negative uptime should fail to load")
	}
}

func TestLoadRejectsOverlappingConnections(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "connlogs.tsv", func(b []byte) []byte {
		// Probe 206 already has sessions at [100,200] and [300,400];
		// inject one overlapping the second.
		return append(b, []byte("206\t350\t500\t91.55.9.9\n")...)
	})
	if _, err := Load(dir); err == nil {
		t.Error("overlapping connections should fail validation on load")
	}
}

func TestLoadRejectsOrphanRecords(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "kroot.tsv", func(b []byte) []byte {
		return append(b, []byte("99999\t1000\t3\t3\t60\n")...)
	})
	if _, err := Load(dir); err == nil {
		t.Error("records for unknown probes should fail validation")
	}
}

func TestLoadRejectsBadPfx2asFile(t *testing.T) {
	dir := savedSample(t)
	corrupt(t, dir, "pfx2as-201501.txt", func([]byte) []byte {
		return []byte("91.55.0.0\tnotalength\t3320\n")
	})
	if _, err := Load(dir); err == nil {
		t.Error("corrupt pfx2as snapshot should fail to load")
	}
}

func TestLoadRejectsMisnamedPfx2asFile(t *testing.T) {
	dir := savedSample(t)
	if err := os.WriteFile(filepath.Join(dir, "pfx2as-janvier.txt"), []byte(""), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("unparseable pfx2as filename should fail to load")
	}
}

func TestLoadToleratesUnsortedRecords(t *testing.T) {
	// Out-of-order lines are legitimate (the paper's scrapes arrived in
	// page order); Load must sort, then validate.
	dir := savedSample(t)
	corrupt(t, dir, "uptime.tsv", func(b []byte) []byte {
		// Prepend the latest record so the file is unsorted.
		return append([]byte("206\t300\t20\n"), b...)
	})
	// This duplicates a record timestamp; rewrite the file cleanly
	// instead: swap the order of the two existing lines.
	path := filepath.Join(dir, "uptime.tsv")
	if err := os.WriteFile(path, []byte("206\t300\t20\n206\t100\t5000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatalf("unsorted records should load: %v", err)
	}
	recs := ds.Uptime[206]
	if len(recs) != 2 || recs[0].Timestamp != 100 {
		t.Errorf("records not sorted on load: %+v", recs)
	}
}
