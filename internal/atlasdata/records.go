// Package atlasdata defines the three RIPE Atlas datasets the paper
// repurposes — connection logs, k-root ping rounds, and SOS-uptime
// records — plus probe metadata, with line-oriented text codecs and a
// directory-based dataset bundle.
//
// Record shapes follow the paper's Tables 1, 3 and 4. The text formats
// are tab-separated, one record per line, so that generated datasets are
// inspectable with standard Unix tools and stable across runs.
package atlasdata

import (
	"fmt"
	"strings"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// ProbeID identifies a RIPE Atlas probe.
type ProbeID int

// Family distinguishes the IP family a connection used. Dual-stack
// probes alternate families, which is one of the paper's filtering
// criteria (§3.2).
type Family uint8

// Address families observed in connection logs.
const (
	V4 Family = iota
	V6
)

// String names the family ("v4" or "v6").
func (f Family) String() string {
	if f == V6 {
		return "v6"
	}
	return "v4"
}

// ConnLogEntry is one controller TCP session from the connection-logs
// dataset (paper Table 1): who connected, from which public address, and
// when the session started and ended.
type ConnLogEntry struct {
	Probe ProbeID
	Start simclock.Time
	End   simclock.Time

	// Family selects which address field is meaningful.
	Family Family
	// Addr is the publicly visible IPv4 address (the CPE's address) when
	// Family is V4.
	Addr ip4.Addr
	// V6Addr is an opaque IPv6 address literal when Family is V6. The
	// analysis only needs IPv6 connections to be recognisable and
	// comparable, so the simulator emits well-formed but unmodeled
	// literals.
	V6Addr string
}

// IsV4 reports whether the session ran over IPv4.
func (e ConnLogEntry) IsV4() bool { return e.Family == V4 }

// AddrKey returns a family-qualified string key for the session's
// address, usable for equality across families.
func (e ConnLogEntry) AddrKey() string {
	if e.Family == V6 {
		return "v6:" + e.V6Addr
	}
	return "v4:" + e.Addr.String()
}

// Validate checks internal consistency.
func (e ConnLogEntry) Validate() error {
	if e.End < e.Start {
		return fmt.Errorf("atlasdata: connection for probe %d ends (%v) before it starts (%v)", e.Probe, e.End, e.Start)
	}
	switch e.Family {
	case V4:
		if !e.Addr.IsValid() {
			return fmt.Errorf("atlasdata: v4 connection for probe %d has no address", e.Probe)
		}
	case V6:
		if !strings.Contains(e.V6Addr, ":") {
			return fmt.Errorf("atlasdata: v6 connection for probe %d has malformed address %q", e.Probe, e.V6Addr)
		}
	default:
		return fmt.Errorf("atlasdata: unknown family %d", e.Family)
	}
	return nil
}

// KRootRound is one built-in measurement round from the k-root ping
// dataset (paper Table 3): three pings to k-root every ~4 minutes plus
// the probe's LTS ("last time synchronised") value in seconds.
type KRootRound struct {
	Probe     ProbeID
	Timestamp simclock.Time
	Sent      int
	Success   int
	// LTS is the number of seconds since the probe last synchronised its
	// clock with the controller. In normal operation it stays below ~240;
	// it grows across a network outage.
	LTS int64
}

// AllLost reports whether every ping in the round was lost — the paper's
// per-round outage signal.
func (k KRootRound) AllLost() bool { return k.Sent > 0 && k.Success == 0 }

// Validate checks internal consistency.
func (k KRootRound) Validate() error {
	if k.Sent < 0 || k.Success < 0 || k.Success > k.Sent {
		return fmt.Errorf("atlasdata: k-root round for probe %d has %d/%d successes", k.Probe, k.Success, k.Sent)
	}
	if k.LTS < 0 {
		return fmt.Errorf("atlasdata: k-root round for probe %d has negative LTS", k.Probe)
	}
	return nil
}

// UptimeRecord is one SOS-uptime report (paper Table 4): the probe's
// seconds-since-boot counter, reported when the probe (re)connects.
type UptimeRecord struct {
	Probe     ProbeID
	Timestamp simclock.Time
	// Uptime is the value of the probe's boot counter at Timestamp. A
	// value smaller than the previous report implies the probe rebooted
	// Uptime seconds before Timestamp.
	Uptime int64
}

// Validate checks internal consistency.
func (u UptimeRecord) Validate() error {
	if u.Uptime < 0 {
		return fmt.Errorf("atlasdata: negative uptime for probe %d", u.Probe)
	}
	return nil
}

// ProbeVersion is the probe hardware generation. Versions 1 and 2 can
// reboot spontaneously when establishing new TCP connections (memory
// fragmentation, paper §5.1), so the power-outage analysis uses only v3.
type ProbeVersion int

// Probe hardware versions deployed during the study year.
const (
	V1 ProbeVersion = 1
	V2 ProbeVersion = 2
	V3 ProbeVersion = 3
)

// Well-known user-provided probe tags the filtering pipeline consumes
// (paper §3.2).
const (
	TagMultihomed = "multihomed"
	TagDatacentre = "datacentre"
	TagCore       = "core"
)

// ProbeMeta is the probe-archive record for one probe: the fields of the
// RIPE Atlas probe API the analysis consumes.
type ProbeMeta struct {
	ID      ProbeID      `json:"id"`
	Country string       `json:"country_code"`
	Version ProbeVersion `json:"version"`
	Tags    []string     `json:"tags,omitempty"`
	// ConnectedDays is the aggregate number of days the probe was
	// connected during the study year; the paper keeps probes with more
	// than 30 days.
	ConnectedDays float64 `json:"connected_days"`
}

// HasTag reports whether the probe carries the given user tag.
func (p ProbeMeta) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Validate checks internal consistency.
func (p ProbeMeta) Validate() error {
	if p.ID <= 0 {
		return fmt.Errorf("atlasdata: probe ID %d out of range", p.ID)
	}
	switch p.Version {
	case V1, V2, V3:
	default:
		return fmt.Errorf("atlasdata: probe %d has unknown version %d", p.ID, p.Version)
	}
	if p.ConnectedDays < 0 {
		return fmt.Errorf("atlasdata: probe %d has negative connected days", p.ID)
	}
	return nil
}
