package atlasdata

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dynaddr/internal/pfx2as"
)

// Dataset bundles everything the analysis pipeline consumes: the three
// per-probe record streams, the probe archive, and the monthly pfx2as
// snapshots. Record slices are kept sorted by timestamp per probe.
type Dataset struct {
	Probes   map[ProbeID]ProbeMeta
	ConnLogs map[ProbeID][]ConnLogEntry
	KRoot    map[ProbeID][]KRootRound
	Uptime   map[ProbeID][]UptimeRecord
	Pfx2AS   *pfx2as.SnapshotStore
}

// NewDataset returns an empty dataset ready for population.
func NewDataset() *Dataset {
	return &Dataset{
		Probes:   make(map[ProbeID]ProbeMeta),
		ConnLogs: make(map[ProbeID][]ConnLogEntry),
		KRoot:    make(map[ProbeID][]KRootRound),
		Uptime:   make(map[ProbeID][]UptimeRecord),
		Pfx2AS:   pfx2as.NewSnapshotStore(),
	}
}

// ProbeIDs returns all probe IDs with metadata, sorted.
func (d *Dataset) ProbeIDs() []ProbeID {
	out := make([]ProbeID, 0, len(d.Probes))
	for id := range d.Probes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortRecords sorts every per-probe record slice by time. Generators
// emit in order, but datasets loaded from disk or assembled by hand may
// not be.
func (d *Dataset) SortRecords() {
	for id := range d.ConnLogs {
		s := d.ConnLogs[id]
		sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	}
	for id := range d.KRoot {
		s := d.KRoot[id]
		sort.Slice(s, func(i, j int) bool { return s[i].Timestamp < s[j].Timestamp })
	}
	for id := range d.Uptime {
		s := d.Uptime[id]
		sort.Slice(s, func(i, j int) bool { return s[i].Timestamp < s[j].Timestamp })
	}
}

// Validate checks cross-record invariants: metadata exists for every
// probe with records, records are sorted, and connections per probe do
// not overlap in time.
func (d *Dataset) Validate() error {
	for id, entries := range d.ConnLogs {
		if _, ok := d.Probes[id]; !ok {
			return fmt.Errorf("atlasdata: connection logs for probe %d without metadata", id)
		}
		for i, e := range entries {
			if err := e.Validate(); err != nil {
				return err
			}
			if e.Probe != id {
				return fmt.Errorf("atlasdata: probe %d log contains entry for probe %d", id, e.Probe)
			}
			if i > 0 {
				prev := entries[i-1]
				if e.Start < prev.Start {
					return fmt.Errorf("atlasdata: probe %d connection logs unsorted at %d", id, i)
				}
				if e.Start < prev.End {
					return fmt.Errorf("atlasdata: probe %d has overlapping connections at %d (%v < %v)", id, i, e.Start, prev.End)
				}
			}
		}
	}
	for id, rounds := range d.KRoot {
		if _, ok := d.Probes[id]; !ok {
			return fmt.Errorf("atlasdata: k-root rounds for probe %d without metadata", id)
		}
		for i, k := range rounds {
			if err := k.Validate(); err != nil {
				return err
			}
			if i > 0 && k.Timestamp < rounds[i-1].Timestamp {
				return fmt.Errorf("atlasdata: probe %d k-root rounds unsorted at %d", id, i)
			}
		}
	}
	for id, recs := range d.Uptime {
		if _, ok := d.Probes[id]; !ok {
			return fmt.Errorf("atlasdata: uptime records for probe %d without metadata", id)
		}
		for i, u := range recs {
			if err := u.Validate(); err != nil {
				return err
			}
			if i > 0 && u.Timestamp < recs[i-1].Timestamp {
				return fmt.Errorf("atlasdata: probe %d uptime records unsorted at %d", id, i)
			}
		}
	}
	return nil
}

// File names inside a dataset directory.
const (
	connLogsFile = "connlogs.tsv"
	kRootFile    = "kroot.tsv"
	uptimeFile   = "uptime.tsv"
	probesFile   = "probes.json"
)

func pfx2asFile(m pfx2as.Month) string { return fmt.Sprintf("pfx2as-%d.txt", int(m)) }

// Save writes the dataset to a directory, creating it if needed. Records
// are flattened in probe-ID order so output is deterministic.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := d.ProbeIDs()

	var conns []ConnLogEntry
	var kroot []KRootRound
	var uptime []UptimeRecord
	var probes []ProbeMeta
	for _, id := range ids {
		probes = append(probes, d.Probes[id])
		conns = append(conns, d.ConnLogs[id]...)
		kroot = append(kroot, d.KRoot[id]...)
		uptime = append(uptime, d.Uptime[id]...)
	}

	if err := writeFileWith(filepath.Join(dir, probesFile), func(f *os.File) error {
		return WriteProbeArchive(f, probes)
	}); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(dir, connLogsFile), func(f *os.File) error {
		return WriteConnLogs(f, conns)
	}); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(dir, kRootFile), func(f *os.File) error {
		return WriteKRoot(f, kroot)
	}); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(dir, uptimeFile), func(f *os.File) error {
		return WriteUptime(f, uptime)
	}); err != nil {
		return err
	}
	if d.Pfx2AS != nil {
		for _, m := range d.Pfx2AS.Months() {
			tbl, _ := d.Pfx2AS.Table(m)
			if err := writeFileWith(filepath.Join(dir, pfx2asFile(m)), func(f *os.File) error {
				return pfx2as.WriteText(f, tbl.Entries())
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Dataset, error) {
	d := NewDataset()

	probes, err := loadWith(filepath.Join(dir, probesFile), ParseProbeArchive)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		d.Probes[p.ID] = p
	}

	conns, err := loadWith(filepath.Join(dir, connLogsFile), ParseConnLogs)
	if err != nil {
		return nil, err
	}
	for _, e := range conns {
		d.ConnLogs[e.Probe] = append(d.ConnLogs[e.Probe], e)
	}

	kroot, err := loadWith(filepath.Join(dir, kRootFile), ParseKRoot)
	if err != nil {
		return nil, err
	}
	for _, k := range kroot {
		d.KRoot[k.Probe] = append(d.KRoot[k.Probe], k)
	}

	uptime, err := loadWith(filepath.Join(dir, uptimeFile), ParseUptime)
	if err != nil {
		return nil, err
	}
	for _, u := range uptime {
		d.Uptime[u.Probe] = append(d.Uptime[u.Probe], u)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "pfx2as-*.txt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	for _, path := range matches {
		var m pfx2as.Month
		base := filepath.Base(path)
		if _, err := fmt.Sscanf(base, "pfx2as-%d.txt", &m); err != nil {
			return nil, fmt.Errorf("atlasdata: unrecognised pfx2as file %q", base)
		}
		entries, err := loadWith(path, pfx2as.ParseText)
		if err != nil {
			return nil, err
		}
		tbl, err := pfx2as.NewTable(entries)
		if err != nil {
			return nil, fmt.Errorf("atlasdata: %s: %v", base, err)
		}
		d.Pfx2AS.Put(m, tbl)
	}

	d.SortRecords()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// writeFileWith writes atomically: content goes to a .tmp sibling that
// is renamed over the target only after a successful write and close,
// so an interrupted Save never leaves a half-written file for Load to
// choke on.
func writeFileWith(path string, fn func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func loadWith[T any](path string, parse func(io.Reader) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, err
	}
	defer f.Close()
	return parse(f)
}
