package atlasdata

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

func TestConnLogRoundTrip(t *testing.T) {
	in := []ConnLogEntry{
		{Probe: 206, Start: 1420082494, End: 1420167457, Family: V4, Addr: ip4.MustParseAddr("91.55.174.103")},
		{Probe: 206, Start: 1420168936, End: 1420220051, Family: V4, Addr: ip4.MustParseAddr("91.55.169.37")},
		{Probe: 207, Start: 1420082494, End: 1420082500, Family: V6, V6Addr: "2001:db8::1"},
	}
	var buf bytes.Buffer
	if err := WriteConnLogs(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseConnLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestConnLogRejectsInvalid(t *testing.T) {
	bad := []ConnLogEntry{
		{Probe: 1, Start: 100, End: 50, Family: V4, Addr: 1},       // ends before start
		{Probe: 1, Start: 100, End: 200, Family: V4},               // no address
		{Probe: 1, Start: 100, End: 200, Family: V6, V6Addr: "no"}, // bad v6
	}
	for i, e := range bad {
		var buf bytes.Buffer
		if err := WriteConnLogs(&buf, []ConnLogEntry{e}); err == nil {
			t.Errorf("case %d: WriteConnLogs accepted invalid entry", i)
		}
	}
}

func TestParseConnLogsErrors(t *testing.T) {
	bad := []string{
		"206\t100\t200",            // too few fields
		"0\t100\t200\t1.2.3.4",     // probe 0
		"206\tabc\t200\t1.2.3.4",   // bad start
		"206\t100\txyz\t1.2.3.4",   // bad end
		"206\t100\t200\t1.2.3.999", // bad address
		"206\t200\t100\t1.2.3.4",   // end before start
	}
	for _, src := range bad {
		if _, err := ParseConnLogs(strings.NewReader(src)); err == nil {
			t.Errorf("ParseConnLogs(%q) should fail", src)
		}
	}
}

func TestParseConnLogsSkipsCommentsAndBlank(t *testing.T) {
	src := "# header\n\n206\t100\t200\t1.2.3.4\n"
	got, err := ParseConnLogs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("parsed %d entries, want 1", len(got))
	}
}

func TestAddrKeyFamilies(t *testing.T) {
	v4 := ConnLogEntry{Family: V4, Addr: ip4.MustParseAddr("1.2.3.4")}
	v6 := ConnLogEntry{Family: V6, V6Addr: "2001:db8::1"}
	if v4.AddrKey() == v6.AddrKey() {
		t.Error("different families must never share address keys")
	}
	if !v4.IsV4() || v6.IsV4() {
		t.Error("IsV4 wrong")
	}
	if got := v4.AddrKey(); got != "v4:1.2.3.4" {
		t.Errorf("AddrKey = %q", got)
	}
}

func TestKRootRoundTrip(t *testing.T) {
	in := []KRootRound{
		{Probe: 16893, Timestamp: 1422349302, Sent: 3, Success: 3, LTS: 86},
		{Probe: 16893, Timestamp: 1422349548, Sent: 3, Success: 0, LTS: 151},
	}
	var buf bytes.Buffer
	if err := WriteKRoot(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseKRoot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestKRootValidate(t *testing.T) {
	bad := []KRootRound{
		{Probe: 1, Sent: 3, Success: 4},  // more successes than sent
		{Probe: 1, Sent: -1, Success: 0}, // negative sent
		{Probe: 1, Sent: 3, Success: 0, LTS: -5},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	good := KRootRound{Probe: 1, Sent: 3, Success: 0, LTS: 100}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if !good.AllLost() {
		t.Error("AllLost should be true for 0/3")
	}
	if (KRootRound{Sent: 0, Success: 0}).AllLost() {
		t.Error("AllLost must be false when nothing was sent")
	}
}

func TestUptimeRoundTrip(t *testing.T) {
	in := []UptimeRecord{
		{Probe: 206, Timestamp: 1420082118, Uptime: 262531},
		{Probe: 206, Timestamp: 1420134626, Uptime: 315038},
		{Probe: 206, Timestamp: 1420134655, Uptime: 19},
	}
	var buf bytes.Buffer
	if err := WriteUptime(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseUptime(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestProbeArchiveRoundTrip(t *testing.T) {
	in := []ProbeMeta{
		{ID: 206, Country: "DE", Version: V3, ConnectedDays: 360},
		{ID: 101, Country: "FR", Version: V1, Tags: []string{TagMultihomed, "home"}, ConnectedDays: 45.5},
	}
	var buf bytes.Buffer
	if err := WriteProbeArchive(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseProbeArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// WriteProbeArchive sorts by ID.
	if len(got) != 2 || got[0].ID != 101 || got[1].ID != 206 {
		t.Fatalf("got %+v", got)
	}
	if !got[0].HasTag(TagMultihomed) || got[0].HasTag(TagCore) {
		t.Error("HasTag wrong")
	}
	if got[1].Country != "DE" || got[1].Version != V3 {
		t.Errorf("probe 206 = %+v", got[1])
	}
}

func TestProbeMetaValidate(t *testing.T) {
	bad := []ProbeMeta{
		{ID: 0, Version: V3},
		{ID: 1, Version: 7},
		{ID: 1, Version: V3, ConnectedDays: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestProbeArchiveParseRejectsInvalid(t *testing.T) {
	src := `[{"id": 0, "version": 3}]`
	if _, err := ParseProbeArchive(strings.NewReader(src)); err == nil {
		t.Error("archive with probe ID 0 should fail")
	}
	if _, err := ParseProbeArchive(strings.NewReader("not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestConnLogTable1Shape(t *testing.T) {
	// Reconstruct the paper's Table 1 rows for probe 206 and verify the
	// codec carries them faithfully (timestamps from Table 1, Jan 2015).
	mk := func(startDay, sh, sm, ss, endDay, eh, em, es int, addr string) ConnLogEntry {
		return ConnLogEntry{
			Probe:  206,
			Start:  simclock.Date(2015, 1, startDay, sh, sm, ss),
			End:    simclock.Date(2015, 1, endDay, eh, em, es),
			Family: V4,
			Addr:   ip4.MustParseAddr(addr),
		}
	}
	rows := []ConnLogEntry{
		mk(1, 3, 22, 16, 1, 17, 34, 11, "91.55.169.37"),
		mk(1, 18, 0, 54, 1, 18, 42, 31, "91.55.132.252"),
		mk(1, 19, 6, 46, 2, 2, 19, 16, "91.55.155.115"),
		mk(2, 2, 41, 55, 3, 2, 18, 0, "91.55.141.95"),
	}
	var buf bytes.Buffer
	if err := WriteConnLogs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ParseConnLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Error("Table 1 rows did not survive the codec")
	}
	// The third row's duration is ~7.2 hours per the paper.
	d := rows[2].End.Sub(rows[2].Start).Hours()
	if d < 7.1 || d > 7.3 {
		t.Errorf("row 3 duration = %.2fh, want ~7.2h", d)
	}
}
