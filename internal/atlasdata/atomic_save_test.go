package atlasdata

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// listTmpFiles returns any *.tmp leftovers in dir.
func listTmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestSaveLeavesNoTempFiles checks a successful Save renames every
// temporary file into place.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	d := sampleDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	if tmps := listTmpFiles(t, dir); len(tmps) != 0 {
		t.Errorf("temp files left after Save: %v", tmps)
	}
}

// TestSaveFailureKeepsPreviousFiles is the atomicity contract: a Save
// that fails mid-write must leave the previous on-disk dataset loadable
// and unchanged, with no half-written targets or stray temp files.
func TestSaveFailureKeepsPreviousFiles(t *testing.T) {
	good := sampleDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := good.Save(dir); err != nil {
		t.Fatal(err)
	}

	// An invalid probe makes the archive writer fail partway through
	// Save, after it has already opened its temp file.
	bad := sampleDataset(t)
	bad.Probes[208] = ProbeMeta{ID: 208, Country: "XX", Version: 9, ConnectedDays: 10}
	if err := bad.Save(dir); err == nil {
		t.Fatal("Save of an invalid dataset should fail")
	}

	if tmps := listTmpFiles(t, dir); len(tmps) != 0 {
		t.Errorf("temp files left after failed Save: %v", tmps)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("previous dataset unloadable after failed Save: %v", err)
	}
	if !reflect.DeepEqual(got.Probes, good.Probes) {
		t.Errorf("failed Save changed the on-disk probes:\n got %+v\nwant %+v", got.Probes, good.Probes)
	}
	if !reflect.DeepEqual(got.ConnLogs, good.ConnLogs) {
		t.Error("failed Save changed the on-disk connection logs")
	}
}

// TestLoadIgnoresStrayTempFile checks recovery from an interrupted
// earlier writer: a leftover pfx2as-*.txt.tmp must not confuse Load's
// snapshot glob.
func TestLoadIgnoresStrayTempFile(t *testing.T) {
	d := sampleDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "pfx2as-201502.txt.tmp")
	if err := os.WriteFile(stray, []byte("garbage that is not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load with stray temp file: %v", err)
	}
	if months := got.Pfx2AS.Months(); len(months) != 1 || months[0] != 201501 {
		t.Errorf("months after load = %v, want [201501]", months)
	}
}
