// Package faultinject is a deterministic, seedable HTTP fault-injection
// middleware: it wraps any http.Handler and probabilistically drops
// connections, injects latency, answers 503, or truncates response
// bodies mid-stream. It exists so the scrape client's retry, backoff
// and error-budget behaviour can be exercised against a real server
// in-process — the repo's stand-in for the flaky year-long probe-page
// scrapes of the paper's §3.1 — and is exposed on atlasd via the
// -chaos-* flags.
//
// Faults are drawn from a seeded SplitMix64 stream, so a given seed
// yields the same fault sequence across runs. (With concurrent clients
// the mapping of faults onto requests still depends on arrival order;
// sequential request streams are fully reproducible.)
package faultinject

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-request fault probabilities. Drop, Error and Truncate
// are mutually exclusive fates drawn from a single uniform variate (so
// their sum must not exceed 1); Delay fires independently and composes
// with any fate.
type Config struct {
	// Seed keys the fault PRNG; zero selects a fixed default seed, so
	// the middleware is always deterministic.
	Seed uint64
	// Drop is the probability a request's connection is severed with no
	// response at all — the client sees a transport error.
	Drop float64
	// Error is the probability of an injected "503 Service Unavailable"
	// instead of the real response.
	Error float64
	// Truncate is the probability the real response body is cut at the
	// halfway point and the connection aborted, so the client reads a
	// syntactically broken prefix and then a transport error.
	Truncate float64
	// DelayProb is the probability DelayBy of extra latency is injected
	// before the request proceeds.
	DelayProb float64
	// DelayBy is the injected latency when a delay fires.
	DelayBy time.Duration
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Error > 0 || c.Truncate > 0 || (c.DelayProb > 0 && c.DelayBy > 0)
}

// Stats counts what the injector has done so far.
type Stats struct {
	Requests  uint64
	Drops     uint64
	Errors    uint64
	Truncates uint64
	Delays    uint64
}

// Injector is the middleware; it implements http.Handler. The fault
// counters are lock-free atomics so concurrent request handlers never
// contend (or race) on bookkeeping; the mutex guards only the PRNG
// state, which must advance serially to stay deterministic.
type Injector struct {
	cfg   Config
	inner http.Handler

	mu    sync.Mutex
	state uint64

	requests  atomic.Uint64
	drops     atomic.Uint64
	errors    atomic.Uint64
	truncates atomic.Uint64
	delays    atomic.Uint64
}

// New wraps inner with fault injection per cfg.
func New(cfg Config, inner http.Handler) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed5eed
	}
	return &Injector{cfg: cfg, inner: inner, state: seed}
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests:  in.requests.Load(),
		Drops:     in.drops.Load(),
		Errors:    in.errors.Load(),
		Truncates: in.truncates.Load(),
		Delays:    in.delays.Load(),
	}
}

type fate int

const (
	fatePass fate = iota
	fateDrop
	fateError
	fateTruncate
)

// next draws one uniform variate in [0, 1) from the seeded stream.
func (in *Injector) next() float64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// decide draws the fate of one request and updates the counters. Only
// the PRNG draws hold the mutex; the counters are atomic.
func (in *Injector) decide() (delay time.Duration, f fate) {
	in.requests.Add(1)
	in.mu.Lock()
	var du, u float64
	if in.cfg.DelayProb > 0 && in.cfg.DelayBy > 0 {
		du = in.next()
	}
	u = in.next()
	in.mu.Unlock()
	if in.cfg.DelayProb > 0 && in.cfg.DelayBy > 0 && du < in.cfg.DelayProb {
		in.delays.Add(1)
		delay = in.cfg.DelayBy
	}
	switch {
	case u < in.cfg.Drop:
		in.drops.Add(1)
		f = fateDrop
	case u < in.cfg.Drop+in.cfg.Error:
		in.errors.Add(1)
		f = fateError
	case u < in.cfg.Drop+in.cfg.Error+in.cfg.Truncate:
		in.truncates.Add(1)
		f = fateTruncate
	}
	return delay, f
}

// ServeHTTP implements http.Handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	delay, f := in.decide()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
	switch f {
	case fateDrop:
		// ErrAbortHandler makes net/http sever the connection without
		// writing a response; the client sees a transport error.
		panic(http.ErrAbortHandler)
	case fateError:
		http.Error(w, "faultinject: injected failure", http.StatusServiceUnavailable)
	case fateTruncate:
		in.truncate(w, r)
	default:
		in.inner.ServeHTTP(w, r)
	}
}

// truncate serves the real response's headers with the real body
// length, writes only the first half of the body, and aborts — so the
// client's read fails partway through a framed response, exactly the
// failure a dying transfer produces.
func (in *Injector) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &recorder{hdr: make(http.Header)}
	in.inner.ServeHTTP(rec, r)
	if rec.status() != http.StatusOK || rec.body.Len() < 2 {
		// Nothing worth truncating; replay the real response.
		rec.replay(w)
		return
	}
	for k, vs := range rec.hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(rec.body.Len()))
	w.WriteHeader(rec.status())
	w.Write(rec.body.Bytes()[:rec.body.Len()/2]) //nolint:errcheck // aborting anyway
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
	panic(http.ErrAbortHandler)
}

// recorder buffers the inner handler's response so truncate can frame
// a partial copy of it.
type recorder struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func (rec *recorder) Header() http.Header { return rec.hdr }

func (rec *recorder) WriteHeader(code int) {
	if rec.code == 0 {
		rec.code = code
	}
}

func (rec *recorder) Write(p []byte) (int, error) {
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	return rec.body.Write(p)
}

func (rec *recorder) status() int {
	if rec.code == 0 {
		return http.StatusOK
	}
	return rec.code
}

func (rec *recorder) replay(w http.ResponseWriter) {
	for k, vs := range rec.hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.status())
	w.Write(rec.body.Bytes()) //nolint:errcheck // best-effort replay
}
