package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"dynaddr/internal/wal"
)

// TestStatsConcurrent is the -race regression for the fault counters:
// many handlers deciding fates at once must neither race nor lose
// increments.
func TestStatsConcurrent(t *testing.T) {
	inj := New(Config{Error: 0.5, DelayProb: 0.5, DelayBy: time.Nanosecond}, okHandler("hi"))
	srv := httptest.NewServer(inj)
	defer srv.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(srv.URL)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	st := inj.Stats()
	if st.Requests != workers*perWorker {
		t.Errorf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Errors == 0 {
		t.Error("no injected errors counted at 50% probability")
	}
}

func TestFaultFSWriteBudget(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.FailWritesAfter(10, nil)

	f, err := ffs.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	// This write crosses the budget: 2 bytes still fit, then ENOSPC.
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got n=%d err=%v", n, err)
	}
	if n != 2 {
		t.Errorf("torn write persisted %d bytes, want 2", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "12345678ab" {
		t.Errorf("on-disk prefix = %q, want torn %q", data, "12345678ab")
	}
	if st := ffs.Stats(); st.WriteFailures == 0 {
		t.Error("write failure not counted")
	}

	// Heal restores writes.
	ffs.Heal()
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestFaultFSSyncAndCreate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	f, err := ffs.OpenFile(filepath.Join(dir, "y"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.FailSyncsAfter(1, nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync within budget: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO on second sync, got %v", err)
	}

	ffs.FailCreates(nil)
	if _, err := ffs.OpenFile(filepath.Join(dir, "z"), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC on create, got %v", err)
	}
	// Re-opening an existing file without O_CREATE is unaffected.
	if _, err := ffs.OpenFile(filepath.Join(dir, "y"), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		t.Fatalf("append open while create fault armed: %v", err)
	}
	if st := ffs.Stats(); st.SyncFailures == 0 || st.CreateFailures == 0 {
		t.Errorf("stats = %+v, want sync and create failures counted", st)
	}

	ffs.Heal()
	if err := wal.ProbeWrite(ffs, dir); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
}

// TestProbeWriteFails pins the degraded-shard re-arm predicate: the
// probe must fail while any write-path fault is armed and succeed once
// healed.
func TestProbeWriteFails(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	ffs.FailWritesAfter(0, nil)
	if err := wal.ProbeWrite(ffs, dir); err == nil {
		t.Error("probe succeeded with writes failing")
	}
	ffs.Heal()

	ffs.FailCreates(nil)
	if err := wal.ProbeWrite(ffs, dir); err == nil {
		t.Error("probe succeeded with creates failing")
	}
	ffs.Heal()

	if err := wal.ProbeWrite(ffs, dir); err != nil {
		t.Errorf("probe after heal: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".probe")); !os.IsNotExist(err) {
		t.Error("probe scratch file left behind")
	}
}
