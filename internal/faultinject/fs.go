package faultinject

import (
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"dynaddr/internal/wal"
)

// FaultFS is a wal.FS wrapper that injects write-path filesystem
// faults: ENOSPC after a byte budget, fsync failures, and segment
// creation failures. It is the disk-side counterpart of the HTTP
// Injector — the stream tier's degraded-mode handling (shard sheds
// with 503, background probe re-arms) is exercised against it, both in
// tests and via the atlasd -fault-wal-* flags.
//
// Reads are never faulted: recovery and replay see exactly what the
// failed writes left on disk, torn tails included. A write that
// exhausts the byte budget mid-call persists its allowed prefix before
// failing, the way a filling disk tears a frame.
//
// All methods are safe for concurrent use; Heal clears every armed
// fault at once (the -fault-wal-heal-after timer calls it).
type FaultFS struct {
	inner wal.FS

	mu        sync.Mutex // guards the error values
	writeErr  error
	syncErr   error
	createErr error

	writeArmed  atomic.Bool
	writeBudget atomic.Int64 // bytes remaining before writes fail
	syncArmed   atomic.Bool
	syncBudget  atomic.Int64 // successful syncs remaining
	createArmed atomic.Bool

	writesFailed  atomic.Uint64
	syncsFailed   atomic.Uint64
	createsFailed atomic.Uint64
}

// FSStats counts the faults a FaultFS has injected.
type FSStats struct {
	WriteFailures  uint64
	SyncFailures   uint64
	CreateFailures uint64
}

// NewFaultFS wraps inner (nil means the real filesystem) with no
// faults armed; arm them with FailWritesAfter and friends.
func NewFaultFS(inner wal.FS) *FaultFS {
	if inner == nil {
		inner = wal.OSFS
	}
	return &FaultFS{inner: inner}
}

// FailWritesAfter arms the disk-full fault: after n more bytes are
// written through the FS, every write fails with err (ENOSPC when err
// is nil) until Heal. The write crossing the budget persists its
// allowed prefix, leaving a torn frame for reopen to repair.
func (fs *FaultFS) FailWritesAfter(n int64, err error) {
	if err == nil {
		err = syscall.ENOSPC
	}
	fs.mu.Lock()
	fs.writeErr = err
	fs.mu.Unlock()
	fs.writeBudget.Store(n)
	fs.writeArmed.Store(true)
}

// FailSyncsAfter arms the fsync fault: after n more successful syncs,
// every file Sync fails with err (EIO when err is nil) until Heal.
func (fs *FaultFS) FailSyncsAfter(n int64, err error) {
	if err == nil {
		err = syscall.EIO
	}
	fs.mu.Lock()
	fs.syncErr = err
	fs.mu.Unlock()
	fs.syncBudget.Store(n)
	fs.syncArmed.Store(true)
}

// FailCreates arms the rotation fault: creating a file (O_CREATE)
// fails with err (ENOSPC when err is nil) until Heal. Appends to
// already-open segments are unaffected.
func (fs *FaultFS) FailCreates(err error) {
	if err == nil {
		err = syscall.ENOSPC
	}
	fs.mu.Lock()
	fs.createErr = err
	fs.mu.Unlock()
	fs.createArmed.Store(true)
}

// Heal clears every armed fault; subsequent writes succeed. Injected
// damage already on disk stays, exactly like a disk that got space
// back.
func (fs *FaultFS) Heal() {
	fs.writeArmed.Store(false)
	fs.syncArmed.Store(false)
	fs.createArmed.Store(false)
}

// Stats returns a snapshot of the injected-fault counters.
func (fs *FaultFS) Stats() FSStats {
	return FSStats{
		WriteFailures:  fs.writesFailed.Load(),
		SyncFailures:   fs.syncsFailed.Load(),
		CreateFailures: fs.createsFailed.Load(),
	}
}

func (fs *FaultFS) getWriteErr() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeErr
}

func (fs *FaultFS) getSyncErr() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncErr
}

func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.inner.MkdirAll(path, perm)
}

func (fs *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return fs.inner.ReadDir(name) }

// Open is the read path (segment scans, directory fsync) and is never
// faulted.
func (fs *FaultFS) Open(name string) (wal.File, error) { return fs.inner.Open(name) }

func (fs *FaultFS) Stat(name string) (os.FileInfo, error)  { return fs.inner.Stat(name) }
func (fs *FaultFS) Truncate(name string, size int64) error { return fs.inner.Truncate(name, size) }
func (fs *FaultFS) Remove(name string) error               { return fs.inner.Remove(name) }

func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if flag&os.O_CREATE != 0 && fs.createArmed.Load() {
		fs.createsFailed.Add(1)
		fs.mu.Lock()
		err := fs.createErr
		fs.mu.Unlock()
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: fs}, nil
}

// faultFile routes writes and syncs through the parent's fault state.
type faultFile struct {
	wal.File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if !f.fs.writeArmed.Load() {
		return f.File.Write(p)
	}
	remaining := f.fs.writeBudget.Add(-int64(len(p)))
	if remaining >= 0 {
		return f.File.Write(p)
	}
	// Budget exhausted mid-write: persist the prefix that still fit,
	// then report the failure — a torn tail, like a real full disk.
	f.fs.writesFailed.Add(1)
	allowed := int64(len(p)) + remaining
	if allowed < 0 {
		allowed = 0
	}
	n := 0
	if allowed > 0 {
		n, _ = f.File.Write(p[:allowed])
	}
	return n, f.fs.getWriteErr()
}

func (f *faultFile) Sync() error {
	if !f.fs.syncArmed.Load() {
		return f.File.Sync()
	}
	if f.fs.syncBudget.Add(-1) >= 0 {
		return f.File.Sync()
	}
	f.fs.syncsFailed.Add(1)
	return f.fs.getSyncErr()
}
