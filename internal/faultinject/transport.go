package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is the client-side counterpart of Injector: an
// http.RoundTripper that injects deterministic faults into outbound
// requests. It exists for inter-peer chaos — a cluster coordinator
// whose HTTP client is wrapped in a Transport sees the same drop /
// 503 / truncation / latency menu the server-side middleware produces,
// plus explicit named partitions: Partition(host) makes every request
// to that host fail with a transport error until Heal, the harness for
// "peer unreachable" without touching the peer process.
//
// Fates draw from the same seeded SplitMix64 stream as Injector, so a
// given seed yields the same fault sequence across runs (sequential
// request streams are fully reproducible).
type Transport struct {
	cfg   Config
	inner http.RoundTripper

	mu      sync.Mutex
	state   uint64
	blocked map[string]bool

	requests  atomic.Uint64
	drops     atomic.Uint64
	errors    atomic.Uint64
	truncates atomic.Uint64
	delays    atomic.Uint64
	parted    atomic.Uint64
}

// NewTransport wraps inner (nil means http.DefaultTransport) with fault
// injection per cfg. A zero cfg injects nothing until Partition is
// called — the explicit-partition harness needs no probabilities.
func NewTransport(cfg Config, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed5eed
	}
	return &Transport{cfg: cfg, inner: inner, state: seed, blocked: make(map[string]bool)}
}

// Partition blocks every request to the given hosts ("host:port" as it
// appears in the request URL) with a transport error — the inter-peer
// network partition.
func (t *Transport) Partition(hosts ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range hosts {
		t.blocked[h] = true
	}
}

// Heal unblocks the given hosts; with no arguments it heals every
// partition.
func (t *Transport) Heal(hosts ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(hosts) == 0 {
		t.blocked = make(map[string]bool)
		return
	}
	for _, h := range hosts {
		delete(t.blocked, h)
	}
}

// Stats returns a snapshot of the fault counters. Partitioned refusals
// count as Drops.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:  t.requests.Load(),
		Drops:     t.drops.Load() + t.parted.Load(),
		Errors:    t.errors.Load(),
		Truncates: t.truncates.Load(),
		Delays:    t.delays.Load(),
	}
}

// next draws one uniform variate in [0, 1). Caller holds mu.
func (t *Transport) next() float64 {
	t.state += 0x9e3779b97f4a7c15
	z := t.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	host := req.URL.Host

	t.mu.Lock()
	if t.blocked[host] {
		t.mu.Unlock()
		t.parted.Add(1)
		return nil, fmt.Errorf("faultinject: partitioned from %s", host)
	}
	var du, u float64
	if t.cfg.DelayProb > 0 && t.cfg.DelayBy > 0 {
		du = t.next()
	}
	u = t.next()
	t.mu.Unlock()

	if t.cfg.DelayProb > 0 && t.cfg.DelayBy > 0 && du < t.cfg.DelayProb {
		t.delays.Add(1)
		tm := time.NewTimer(t.cfg.DelayBy)
		select {
		case <-tm.C:
		case <-req.Context().Done():
			tm.Stop()
			return nil, req.Context().Err()
		}
	}
	switch {
	case u < t.cfg.Drop:
		t.drops.Add(1)
		return nil, fmt.Errorf("faultinject: injected transport error to %s", host)
	case u < t.cfg.Drop+t.cfg.Error:
		t.errors.Add(1)
		// A synthesized 503, as if an intermediary shed the request. The
		// request body (if any) is consumed so connection reuse stays sane.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body) //nolint:errcheck // draining best-effort
			req.Body.Close()
		}
		return synthesized(req, http.StatusServiceUnavailable, "faultinject: injected failure\n"), nil
	case u < t.cfg.Drop+t.cfg.Error+t.cfg.Truncate:
		t.truncates.Add(1)
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remain: resp.ContentLength / 2}
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// synthesized builds an in-memory response without touching the network.
func synthesized(req *http.Request, code int, body string) *http.Response {
	hdr := make(http.Header)
	hdr.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields the first half of the response and then fails
// the read — the client-side view of a dying transfer.
type truncatedBody struct {
	inner  io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("faultinject: response truncated: %w", io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= int64(n)
	if err == io.EOF && b.remain <= 0 {
		err = fmt.Errorf("faultinject: response truncated: %w", io.ErrUnexpectedEOF)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
