package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

// collectFates drives n sequential requests through a fresh injector
// and classifies each outcome from the client's point of view.
func collectFates(t *testing.T, cfg Config, n int, body string) (ok, transport, fivehundred, truncated int) {
	t.Helper()
	srv := httptest.NewServer(New(cfg, okHandler(body)))
	defer srv.Close()
	for i := 0; i < n; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			transport++
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 500:
			fivehundred++
		case err != nil || len(b) < len(body):
			truncated++
		default:
			ok++
		}
	}
	return
}

func TestFaultMixObserved(t *testing.T) {
	body := strings.Repeat("x", 4096)
	cfg := Config{Seed: 99, Drop: 0.1, Error: 0.1, Truncate: 0.1}
	ok, transport, fivehundred, truncated := collectFates(t, cfg, 400, body)
	if ok == 0 || transport == 0 || fivehundred == 0 || truncated == 0 {
		t.Errorf("expected every fault kind at 10%% each over 400 requests; got ok=%d transport=%d 5xx=%d truncated=%d",
			ok, transport, fivehundred, truncated)
	}
	// 30% combined fault rate: ok should dominate but not be total.
	if ok < 200 || ok > 390 {
		t.Errorf("ok=%d out of 400, outside plausible range for 30%% fault rate", ok)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	body := strings.Repeat("y", 1024)
	cfg := Config{Seed: 7, Drop: 0.2, Error: 0.2, Truncate: 0.2}
	type tally struct{ ok, tr, fh, tc int }
	var runs [2]tally
	for i := range runs {
		a, b, c, d := collectFates(t, cfg, 100, body)
		runs[i] = tally{a, b, c, d}
	}
	if runs[0] != runs[1] {
		t.Errorf("same seed produced different fault sequences: %+v vs %+v", runs[0], runs[1])
	}
}

func TestTruncationIsAMidBodyTransportError(t *testing.T) {
	body := strings.Repeat("z", 8192)
	srv := httptest.NewServer(New(Config{Truncate: 1}, okHandler(body)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncation must deliver headers: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read of truncated body succeeded with %d bytes", len(b))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") &&
		!strings.Contains(err.Error(), "reset") {
		t.Errorf("unexpected truncation error: %v", err)
	}
	if len(b) == 0 || len(b) >= len(body) {
		t.Errorf("truncated read returned %d of %d bytes", len(b), len(body))
	}
}

func TestStatsCount(t *testing.T) {
	inj := New(Config{Drop: 1}, okHandler("hi"))
	srv := httptest.NewServer(inj)
	defer srv.Close()
	for i := 0; i < 5; i++ {
		if _, err := http.Get(srv.URL); err == nil {
			t.Fatal("drop fate should sever the connection")
		}
	}
	st := inj.Stats()
	if st.Requests != 5 || st.Drops != 5 {
		t.Errorf("stats = %+v, want 5 requests / 5 drops", st)
	}
}

func TestZeroConfigPassesThrough(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Error("zero config reports Enabled")
	}
	ok, transport, fivehundred, truncated := collectFates(t, cfg, 50, "hello")
	if ok != 50 || transport+fivehundred+truncated != 0 {
		t.Errorf("zero config injected faults: ok=%d transport=%d 5xx=%d truncated=%d",
			ok, transport, fivehundred, truncated)
	}
}
