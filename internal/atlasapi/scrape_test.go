package atlasapi

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynaddr/internal/backoff"
	"dynaddr/internal/core"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/sim"
)

// TestScrapeReproducesAnalysis is the collection-boundary end-to-end
// test: generate a world, publish it through the HTTP endpoints, scrape
// it back through the wire formats, and require the analysis pipeline to
// produce identical results on both copies — the property the paper's
// §3 methodology depends on.
func TestScrapeReproducesAnalysis(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 4242
	cfg.Scale = 0.08
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	client := &Client{
		BaseURL:     srv.URL,
		Months:      world.Dataset.Pfx2AS.Months(),
		Concurrency: 8,
	}
	scraped, err := client.ScrapeAll()
	if err != nil {
		t.Fatal(err)
	}

	// A second scrape at different concurrency must assemble the exact
	// same dataset: order independence.
	sequential := &Client{BaseURL: srv.URL, Months: client.Months, Concurrency: 1}
	scraped2, err := sequential.ScrapeAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scraped.ConnLogs, scraped2.ConnLogs) {
		t.Error("scrape results depend on concurrency")
	}

	if len(scraped.Probes) != len(world.Dataset.Probes) {
		t.Fatalf("scraped %d probes, generated %d", len(scraped.Probes), len(world.Dataset.Probes))
	}
	// Connection logs must survive the page format byte-for-byte in
	// meaning (second-resolution timestamps round-trip exactly).
	if !reflect.DeepEqual(scraped.ConnLogs, world.Dataset.ConnLogs) {
		t.Error("connection logs differ after scrape")
	}
	if !reflect.DeepEqual(scraped.KRoot, world.Dataset.KRoot) {
		t.Error("k-root rounds differ after scrape")
	}
	if !reflect.DeepEqual(scraped.Uptime, world.Dataset.Uptime) {
		t.Error("uptime records differ after scrape")
	}

	repLocal := core.Run(world.Dataset, core.Options{})
	repWire := core.Run(scraped, core.Options{})
	if repLocal.Table7All != repWire.Table7All {
		t.Errorf("Table 7 differs over the wire: %+v vs %+v", repLocal.Table7All, repWire.Table7All)
	}
	if len(repLocal.Table5) != len(repWire.Table5) {
		t.Errorf("Table 5 differs over the wire: %d vs %d rows", len(repLocal.Table5), len(repWire.Table5))
	}
	for i := range repLocal.Table5 {
		if repLocal.Table5[i] != repWire.Table5[i] {
			t.Errorf("Table 5 row %d differs: %+v vs %+v", i, repLocal.Table5[i], repWire.Table5[i])
		}
	}
	for _, c := range core.Categories {
		if repLocal.Table2[c] != repWire.Table2[c] {
			t.Errorf("Table 2 %v differs: %d vs %d", c, repLocal.Table2[c], repWire.Table2[c])
		}
	}
}

// TestClientErrorPropagation exercises the failure paths: missing
// server, missing months.
func TestClientErrorPropagation(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1", // nothing listens here
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}}
	if _, err := c.FetchProbeArchive(); err == nil {
		t.Error("unreachable server should fail")
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = 1
	cfg.Scale = 0.02
	w, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(w.Dataset))
	defer srv.Close()
	c2 := &Client{BaseURL: srv.URL, Months: []pfx2as.Month{209901}}
	if _, err := c2.ScrapeAll(); err == nil {
		t.Error("missing pfx2as month should fail the scrape")
	}
}

// flakyHandler fails the first n requests per path with a 503, then
// delegates to the real server.
type flakyHandler struct {
	inner    http.Handler
	mu       sync.Mutex
	failures map[string]int
	failN    int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	n := f.failures[r.URL.Path]
	f.failures[r.URL.Path] = n + 1
	f.mu.Unlock()
	if n < f.failN {
		http.Error(w, "transient", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestScrapeRetriesTransientFailures(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 3
	cfg.Scale = 0.02
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyHandler{
		inner:    NewServer(world.Dataset),
		failures: make(map[string]int),
		failN:    2,
	}
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Months: world.Dataset.Pfx2AS.Months(), Retries: 3,
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}}
	scraped, err := c.ScrapeAll()
	if err != nil {
		t.Fatalf("scrape with retries failed: %v", err)
	}
	if len(scraped.Probes) != len(world.Dataset.Probes) {
		t.Errorf("scraped %d probes, want %d", len(scraped.Probes), len(world.Dataset.Probes))
	}

	// With retries below the failure count, the scrape must fail.
	flaky2 := &flakyHandler{inner: NewServer(world.Dataset), failures: make(map[string]int), failN: 5}
	srv2 := httptest.NewServer(flaky2)
	defer srv2.Close()
	c2 := &Client{BaseURL: srv2.URL, Retries: 1,
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}}
	if _, err := c2.ScrapeAll(); err == nil {
		t.Error("persistent failures should defeat limited retries")
	}
}

func TestClientDoesNotRetry404(t *testing.T) {
	hits := 0
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Retries: 5,
		Backoff: backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}}
	if _, err := c.FetchProbeArchive(); err == nil {
		t.Fatal("404 should fail")
	}
	if hits != 1 {
		t.Errorf("404 fetched %d times; 4xx must not be retried", hits)
	}
}
