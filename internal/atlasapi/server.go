package atlasapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/obs"
	"dynaddr/internal/pfx2as"
)

// Server publishes a dataset through the collection-era HTTP endpoints:
//
//	GET /api/v1/probe-archive/                 probe metadata (JSON)
//	GET /probes/{id}/connection-history/       sessions (text page)
//	GET /api/v1/measurements/kroot/{id}/       ping results (NDJSON)
//	GET /api/v1/measurements/uptime/{id}/      uptime reports (NDJSON)
//	GET /caida/pfx2as/{yyyymm}.txt             monthly pfx2as snapshot
//	GET /api/v1/analysis                       staged analysis summary
//
// Server is an http.Handler; mount it on any mux or serve it directly.
type Server struct {
	ds      *atlasdata.Dataset
	mux     *http.ServeMux
	metrics *obs.Registry
}

// SetMetrics attaches a registry; engine runs triggered through
// /api/v1/analysis export their RunMetrics into it. Call before
// serving.
func (s *Server) SetMetrics(reg *obs.Registry) { s.metrics = reg }

// NewServer wraps a dataset. The dataset must not be mutated while the
// server is live.
func NewServer(ds *atlasdata.Dataset) *Server {
	s := &Server{ds: ds, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/probe-archive/", s.probeArchive)
	s.mux.HandleFunc("/probes/", s.connectionHistory)
	s.mux.HandleFunc("/api/v1/measurements/kroot/", s.kroot)
	s.mux.HandleFunc("/api/v1/measurements/uptime/", s.uptime)
	s.mux.HandleFunc("/caida/pfx2as/", s.pfx2as)
	s.mux.HandleFunc("/api/v1/analysis", s.analysis)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) probeArchive(w http.ResponseWriter, r *http.Request) {
	probes := make([]atlasdata.ProbeMeta, 0, len(s.ds.Probes))
	for _, id := range s.ds.ProbeIDs() {
		probes = append(probes, s.ds.Probes[id])
	}
	w.Header().Set("Content-Type", "application/json")
	if err := WriteProbeArchive(w, probes); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// probeIDFrom extracts the probe ID from paths like
// /probes/206/connection-history/ or /api/v1/measurements/kroot/206/.
func probeIDFrom(path, prefix string) (atlasdata.ProbeID, error) {
	rest := strings.TrimPrefix(path, prefix)
	rest = strings.Trim(rest, "/")
	// The connection-history path carries a trailing segment.
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id <= 0 {
		return 0, fmt.Errorf("bad probe id %q", rest)
	}
	return atlasdata.ProbeID(id), nil
}

func (s *Server) lookupProbe(w http.ResponseWriter, r *http.Request, prefix string) (atlasdata.ProbeID, bool) {
	id, err := probeIDFrom(r.URL.Path, prefix)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, false
	}
	if _, ok := s.ds.Probes[id]; !ok {
		http.Error(w, fmt.Sprintf("probe %d not found", id), http.StatusNotFound)
		return 0, false
	}
	return id, true
}

func (s *Server) connectionHistory(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(strings.TrimSuffix(r.URL.Path, "/"), "connection-history") {
		http.NotFound(w, r)
		return
	}
	id, ok := s.lookupProbe(w, r, "/probes/")
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := WriteConnectionHistory(w, id, s.ds.ConnLogs[id]); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) kroot(w http.ResponseWriter, r *http.Request) {
	id, ok := s.lookupProbe(w, r, "/api/v1/measurements/kroot/")
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := WriteKRootResults(w, s.ds.KRoot[id]); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) uptime(w http.ResponseWriter, r *http.Request) {
	id, ok := s.lookupProbe(w, r, "/api/v1/measurements/uptime/")
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := WriteUptimeResults(w, s.ds.Uptime[id]); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) pfx2as(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/caida/pfx2as/")
	if name == "" {
		// Month index, for clients discovering what to fetch.
		w.Header().Set("Content-Type", "application/json")
		months := s.ds.Pfx2AS.Months()
		out := make([]int, len(months))
		for i, m := range months {
			out[i] = int(m)
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	m, ok := parseSnapshotName(name)
	if !ok {
		http.Error(w, "want /caida/pfx2as/YYYYMM.txt", http.StatusBadRequest)
		return
	}
	tbl, ok := s.ds.Pfx2AS.Table(pfx2as.Month(m))
	if !ok {
		http.Error(w, fmt.Sprintf("no snapshot for %d", m), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := pfx2as.WriteText(w, tbl.Entries()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseSnapshotName accepts exactly the form YYYYMM.txt — six digits
// with a month part of 01-12 — rejecting trailing or leading garbage
// that fmt.Sscanf-style parsing would let through.
func parseSnapshotName(name string) (int, bool) {
	base, ok := strings.CutSuffix(name, ".txt")
	if !ok || len(base) != 6 {
		return 0, false
	}
	for _, c := range base {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	m, err := strconv.Atoi(base)
	if err != nil {
		return 0, false
	}
	if mm := m % 100; mm < 1 || mm > 12 {
		return 0, false
	}
	return m, true
}

// Months lists the snapshot months the server exposes, for clients.
func (s *Server) Months() []pfx2as.Month { return s.ds.Pfx2AS.Months() }
