package atlasapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/wire"
)

// StreamProducer pushes records into a LiveServer's ingest endpoints
// over HTTP. It implements the generator's RecordSink shape (Meta,
// ConnLog, KRoot, Uptime), so sim.GenerateTo and sim.ReplayDataset can
// drive a remote ingester directly — the producer side of the live
// collection pipeline. Records are buffered in arrival order; how a
// flush leaves the process depends on the codec:
//
//   - CodecJSON (default) POSTs runs of consecutive same-kind records
//     to the deprecated v1 per-kind routes in their text/JSON formats.
//   - CodecBinary frames the whole buffer — cross-kind order intact —
//     as one internal/wire batch POSTed to /api/v2/stream/records.
//   - CodecNDJSON does the same over the v2 NDJSON envelope.
//
// All three preserve the cross-stream interleaving the ingester's
// per-probe state machines observe, so streaming through the producer
// is equivalent to feeding the ingester in process under any codec.
// Transient failures (transport errors, 5xx) are retried with the same
// jittered exponential backoff the scrape client uses; 4xx responses
// are permanent.
//
// Configure it with options (WithCodec, WithBatchSize, WithBackoff, …);
// the exported fields remain settable for older call sites.
//
// The producer is not safe for concurrent use; drive it from one
// goroutine (RecordSink deliveries are sequential by contract) and call
// Flush when the stream ends to drain the buffer.
type StreamProducer struct {
	// BaseURL is the server root, e.g. "http://atlas.example.org".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retries is how many times a failed POST is retried before giving
	// up; zero means 2.
	Retries int
	// Backoff spaces retry attempts; the zero value uses the package
	// defaults (see backoff.Policy).
	Backoff backoff.Policy
	// BatchSize is the number of records buffered before the producer
	// flushes; zero means 128.
	BatchSize int

	ctx    context.Context
	codec  Codec
	jitter backoff.Jitter
	buf    []streamRecord
	wire   wire.BatchWriter
}

// ProducerOption configures a StreamProducer.
type ProducerOption func(*StreamProducer)

// WithCodec selects the flush encoding (default CodecJSON, the v1
// routes). CodecBinary is the high-throughput path.
func WithCodec(c Codec) ProducerOption {
	return func(p *StreamProducer) { p.codec = c }
}

// WithBatchSize sets how many records buffer before an automatic flush.
func WithBatchSize(n int) ProducerOption {
	return func(p *StreamProducer) { p.BatchSize = n }
}

// WithBackoff sets the retry spacing policy.
func WithBackoff(pol backoff.Policy) ProducerOption {
	return func(p *StreamProducer) { p.Backoff = pol }
}

// WithRetries sets how many times a failed POST is retried.
func WithRetries(n int) ProducerOption {
	return func(p *StreamProducer) { p.Retries = n }
}

// WithHTTPClient replaces http.DefaultClient.
func WithHTTPClient(c *http.Client) ProducerOption {
	return func(p *StreamProducer) { p.HTTPClient = c }
}

type recordKind int

const (
	kindMeta recordKind = iota
	kindConn
	kindKRoot
	kindUptime
)

// streamRecord is one buffered record of any kind.
type streamRecord struct {
	kind   recordKind
	meta   atlasdata.ProbeMeta
	conn   atlasdata.ConnLogEntry
	kroot  atlasdata.KRootRound
	uptime atlasdata.UptimeRecord
}

// NewStreamProducer returns a producer that POSTs to baseURL under ctx:
// cancelling the context aborts in-flight POSTs and backoff sleeps.
func NewStreamProducer(ctx context.Context, baseURL string, opts ...ProducerOption) *StreamProducer {
	p := &StreamProducer{BaseURL: baseURL, ctx: ctx, codec: CodecJSON}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

func (p *StreamProducer) context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

func (p *StreamProducer) batchSize() int {
	if p.BatchSize > 0 {
		return p.BatchSize
	}
	return 128
}

func (p *StreamProducer) push(r streamRecord) error {
	p.buf = append(p.buf, r)
	if len(p.buf) >= p.batchSize() {
		return p.Flush()
	}
	return nil
}

// Meta buffers one probe's metadata.
func (p *StreamProducer) Meta(m atlasdata.ProbeMeta) error {
	return p.push(streamRecord{kind: kindMeta, meta: m})
}

// ConnLog buffers one session record.
func (p *StreamProducer) ConnLog(e atlasdata.ConnLogEntry) error {
	return p.push(streamRecord{kind: kindConn, conn: e})
}

// KRoot buffers one ping round.
func (p *StreamProducer) KRoot(k atlasdata.KRootRound) error {
	return p.push(streamRecord{kind: kindKRoot, kroot: k})
}

// Uptime buffers one uptime report.
func (p *StreamProducer) Uptime(u atlasdata.UptimeRecord) error {
	return p.push(streamRecord{kind: kindUptime, uptime: u})
}

// Flush delivers the buffer under the configured codec. The v2 codecs
// send the whole buffer as one batch; CodecJSON POSTs consecutive
// same-kind runs (connection-log runs additionally break on probe
// changes — the v1 endpoint is per-probe). Call it when the stream
// ends; a failed flush leaves the undelivered records buffered, so it
// is safe to retry.
func (p *StreamProducer) Flush() error {
	switch p.codec {
	case CodecBinary:
		return p.flushBinary()
	case CodecNDJSON:
		return p.flushNDJSON()
	}
	for len(p.buf) > 0 {
		n, err := p.sendRun()
		if err != nil {
			return err
		}
		p.buf = p.buf[n:]
	}
	p.buf = nil
	return nil
}

// flushBinary frames the buffer as one wire batch. The batch writer
// (and its buffers) are reused across flushes, so a steady producer
// stops allocating once its batch buffer has grown to size.
func (p *StreamProducer) flushBinary() error {
	if len(p.buf) == 0 {
		p.buf = nil
		return nil
	}
	p.wire.Reset()
	for _, r := range p.buf {
		var err error
		switch r.kind {
		case kindMeta:
			err = p.wire.Meta(r.meta)
		case kindConn:
			err = p.wire.ConnLog(r.conn)
		case kindKRoot:
			err = p.wire.KRoot(r.kroot)
		case kindUptime:
			err = p.wire.Uptime(r.uptime)
		}
		if err != nil {
			return err
		}
	}
	if err := p.post(RouteStreamRecords, ContentTypeBinary, p.wire.Bytes()); err != nil {
		return err
	}
	p.buf = nil
	return nil
}

// envelope converts a buffered record to its NDJSON line shape.
func (r streamRecord) envelope() recordEnvelope {
	switch r.kind {
	case kindMeta:
		return recordEnvelope{
			Kind:          "meta",
			Probe:         int(r.meta.ID),
			Country:       r.meta.Country,
			Version:       int(r.meta.Version),
			Tags:          r.meta.Tags,
			ConnectedDays: r.meta.ConnectedDays,
		}
	case kindConn:
		env := recordEnvelope{
			Kind:  "connlog",
			Probe: int(r.conn.Probe),
			Start: int64(r.conn.Start),
			End:   int64(r.conn.End),
		}
		if r.conn.Family == atlasdata.V6 {
			env.Addr = r.conn.V6Addr
		} else {
			env.Addr = r.conn.Addr.String()
		}
		return env
	case kindKRoot:
		return recordEnvelope{
			Kind:      "kroot",
			Probe:     int(r.kroot.Probe),
			Timestamp: int64(r.kroot.Timestamp),
			Sent:      r.kroot.Sent,
			Success:   r.kroot.Success,
			LTS:       r.kroot.LTS,
		}
	}
	return recordEnvelope{
		Kind:      "uptime",
		Probe:     int(r.uptime.Probe),
		Timestamp: int64(r.uptime.Timestamp),
		Uptime:    r.uptime.Uptime,
	}
}

// flushNDJSON sends the buffer as v2 envelope lines.
func (p *StreamProducer) flushNDJSON() error {
	if len(p.buf) == 0 {
		p.buf = nil
		return nil
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range p.buf {
		if err := enc.Encode(r.envelope()); err != nil {
			return err
		}
	}
	if err := p.post(RouteStreamRecords, ContentTypeNDJSON, body.Bytes()); err != nil {
		return err
	}
	p.buf = nil
	return nil
}

// sendRun posts the longest prefix of the buffer that shares one
// endpoint and returns its length.
func (p *StreamProducer) sendRun() (int, error) {
	kind := p.buf[0].kind
	n := 1
	for n < len(p.buf) && p.buf[n].kind == kind {
		if kind == kindConn && p.buf[n].conn.Probe != p.buf[0].conn.Probe {
			break
		}
		n++
	}
	run := p.buf[:n]
	var buf bytes.Buffer
	var path, contentType string
	switch kind {
	case kindMeta:
		probes := make([]atlasdata.ProbeMeta, n)
		for i, r := range run {
			probes[i] = r.meta
		}
		if err := WriteProbeArchive(&buf, probes); err != nil {
			return 0, err
		}
		path, contentType = "/api/v1/stream/probes", "application/json"
	case kindConn:
		entries := make([]atlasdata.ConnLogEntry, n)
		for i, r := range run {
			entries[i] = r.conn
		}
		if err := WriteConnectionHistory(&buf, run[0].conn.Probe, entries); err != nil {
			return 0, err
		}
		path = fmt.Sprintf("/api/v1/stream/connlogs?probe=%d", run[0].conn.Probe)
		contentType = "text/plain; charset=utf-8"
	case kindKRoot:
		rounds := make([]atlasdata.KRootRound, n)
		for i, r := range run {
			rounds[i] = r.kroot
		}
		if err := WriteKRootResults(&buf, rounds); err != nil {
			return 0, err
		}
		path, contentType = "/api/v1/stream/kroot", "application/x-ndjson"
	case kindUptime:
		recs := make([]atlasdata.UptimeRecord, n)
		for i, r := range run {
			recs[i] = r.uptime
		}
		if err := WriteUptimeResults(&buf, recs); err != nil {
			return 0, err
		}
		path, contentType = "/api/v1/stream/uptime", "application/x-ndjson"
	}
	if err := p.post(path, contentType, buf.Bytes()); err != nil {
		return 0, err
	}
	return n, nil
}

// post sends one batch, retrying transient failures with backoff. The
// body is replayed from memory on each attempt; an attempt that failed
// before the server processed it is safe to resend.
func (p *StreamProducer) post(path, contentType string, body []byte) error {
	ctx := p.context()
	client := p.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	retries := p.Retries
	if retries <= 0 {
		retries = 2
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := p.Backoff.Sleep(ctx, attempt-1, p.jitter.Uint64()); err != nil {
				return fmt.Errorf("atlasapi: POST %s: cancelled during retry backoff: %w (last error: %v)", path, err, lastErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		// Drain whatever follows the captured prefix before closing:
		// closing a body with unread bytes kills the underlying
		// connection, so a sustained producer would open a fresh one per
		// batch instead of reusing its keep-alive connection.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("atlasapi: POST %s: %s: %s", path, resp.Status, msg)
		if resp.StatusCode < 500 {
			break // permanent: the payload or the request is wrong
		}
	}
	return lastErr
}
