package atlasapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/obs"
	"dynaddr/internal/wire"
)

// StreamProducer pushes records into a LiveServer's ingest endpoints
// over HTTP. It implements the generator's RecordSink shape (Meta,
// ConnLog, KRoot, Uptime), so sim.GenerateTo and sim.ReplayDataset can
// drive a remote ingester directly — the producer side of the live
// collection pipeline. Records are buffered in arrival order; how a
// flush leaves the process depends on the codec:
//
//   - CodecJSON (default) POSTs runs of consecutive same-kind records
//     to the deprecated v1 per-kind routes in their text/JSON formats.
//   - CodecBinary frames the whole buffer — cross-kind order intact —
//     as one internal/wire batch POSTed to /api/v2/stream/records.
//   - CodecNDJSON does the same over the v2 NDJSON envelope.
//
// All three preserve the cross-stream interleaving the ingester's
// per-probe state machines observe, so streaming through the producer
// is equivalent to feeding the ingester in process under any codec.
// Transient failures (transport errors, 429, 5xx) are retried with the
// same jittered exponential backoff the scrape client uses, honouring
// server Retry-After pacing hints (capped at the policy maximum);
// other 4xx responses are permanent. Under sustained shedding a
// circuit breaker holds requests off for a cooldown, and batches
// adaptively halve (regrowing on success) so each attempt clears
// admission faster. A partially accepted batch is trimmed to the
// server-reported consumed prefix before the retry — no record is ever
// sent twice.
//
// Configure it with options (WithCodec, WithBatchSize, WithBackoff, …);
// the exported fields remain settable for older call sites.
//
// The producer is not safe for concurrent use; drive it from one
// goroutine (RecordSink deliveries are sequential by contract) and call
// Flush when the stream ends to drain the buffer.
type StreamProducer struct {
	// BaseURL is the server root, e.g. "http://atlas.example.org".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retries is how many times a failed POST is retried before giving
	// up; zero means 2.
	Retries int
	// Backoff spaces retry attempts; the zero value uses the package
	// defaults (see backoff.Policy).
	Backoff backoff.Policy
	// BatchSize is the number of records buffered before the producer
	// flushes; zero means 128.
	BatchSize int

	ctx      context.Context
	codec    Codec
	jitter   backoff.Jitter
	buf      []streamRecord
	wire     wire.BatchWriter
	breaker  backoff.Breaker
	curBatch int
}

// ProducerOption configures a StreamProducer.
type ProducerOption func(*StreamProducer)

// WithCodec selects the flush encoding (default CodecJSON, the v1
// routes). CodecBinary is the high-throughput path.
func WithCodec(c Codec) ProducerOption {
	return func(p *StreamProducer) { p.codec = c }
}

// WithBatchSize sets how many records buffer before an automatic flush.
func WithBatchSize(n int) ProducerOption {
	return func(p *StreamProducer) { p.BatchSize = n }
}

// WithBackoff sets the retry spacing policy.
func WithBackoff(pol backoff.Policy) ProducerOption {
	return func(p *StreamProducer) { p.Backoff = pol }
}

// WithRetries sets how many times a failed POST is retried.
func WithRetries(n int) ProducerOption {
	return func(p *StreamProducer) { p.Retries = n }
}

// WithHTTPClient replaces http.DefaultClient.
func WithHTTPClient(c *http.Client) ProducerOption {
	return func(p *StreamProducer) { p.HTTPClient = c }
}

// WithBreaker tunes the producer's circuit breaker (consecutive
// failures before opening, cooldown while open). The zero-value
// breaker — threshold 5, cooldown 2s — is always active; this option
// only re-parameterises it.
func WithBreaker(threshold int, cooldown time.Duration) ProducerOption {
	return func(p *StreamProducer) {
		p.breaker.Threshold = threshold
		p.breaker.Cooldown = cooldown
	}
}

// WithProducerMetrics registers the producer's breaker-state gauge
// (0 closed, 1 half-open, 2 open) on reg, labelled by name so several
// producers can share a registry.
func WithProducerMetrics(reg *obs.Registry, name string) ProducerOption {
	return func(p *StreamProducer) {
		br := &p.breaker
		reg.GaugeFunc("producer_breaker_state",
			"Producer circuit-breaker position: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch br.State(time.Now()) {
				case backoff.BreakerOpen:
					return 2
				case backoff.BreakerHalfOpen:
					return 1
				}
				return 0
			}, obs.L("producer", name))
	}
}

type recordKind int

const (
	kindMeta recordKind = iota
	kindConn
	kindKRoot
	kindUptime
)

// streamRecord is one buffered record of any kind.
type streamRecord struct {
	kind   recordKind
	meta   atlasdata.ProbeMeta
	conn   atlasdata.ConnLogEntry
	kroot  atlasdata.KRootRound
	uptime atlasdata.UptimeRecord
}

// NewStreamProducer returns a producer that POSTs to baseURL under ctx:
// cancelling the context aborts in-flight POSTs and backoff sleeps.
func NewStreamProducer(ctx context.Context, baseURL string, opts ...ProducerOption) *StreamProducer {
	p := &StreamProducer{BaseURL: baseURL, ctx: ctx, codec: CodecJSON}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

func (p *StreamProducer) context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

func (p *StreamProducer) batchSize() int {
	if p.BatchSize > 0 {
		return p.BatchSize
	}
	return 128
}

func (p *StreamProducer) push(r streamRecord) error {
	p.buf = append(p.buf, r)
	if len(p.buf) >= p.batchSize() {
		return p.Flush()
	}
	return nil
}

// Meta buffers one probe's metadata.
func (p *StreamProducer) Meta(m atlasdata.ProbeMeta) error {
	return p.push(streamRecord{kind: kindMeta, meta: m})
}

// ConnLog buffers one session record.
func (p *StreamProducer) ConnLog(e atlasdata.ConnLogEntry) error {
	return p.push(streamRecord{kind: kindConn, conn: e})
}

// KRoot buffers one ping round.
func (p *StreamProducer) KRoot(k atlasdata.KRootRound) error {
	return p.push(streamRecord{kind: kindKRoot, kroot: k})
}

// Uptime buffers one uptime report.
func (p *StreamProducer) Uptime(u atlasdata.UptimeRecord) error {
	return p.push(streamRecord{kind: kindUptime, uptime: u})
}

// minAdaptiveBatch is the floor the adaptive batch size halves down to
// under sustained rejection (unless the configured batch is smaller).
const minAdaptiveBatch = 16

// effBatch is the current adaptive batch size: how many records one
// POST carries. It starts at the configured BatchSize, halves toward
// minAdaptiveBatch when the server sheds load (smaller batches clear
// admission faster and lose less work per rejection), and doubles back
// once deliveries succeed.
func (p *StreamProducer) effBatch() int {
	if p.curBatch <= 0 {
		p.curBatch = p.batchSize()
	}
	return p.curBatch
}

func (p *StreamProducer) shrinkBatch() {
	floor := minAdaptiveBatch
	if bs := p.batchSize(); bs < floor {
		floor = bs
	}
	if p.curBatch = p.effBatch() / 2; p.curBatch < floor {
		p.curBatch = floor
	}
}

func (p *StreamProducer) growBatch() {
	if p.curBatch = p.effBatch() * 2; p.curBatch > p.batchSize() {
		p.curBatch = p.batchSize()
	}
}

// Flush delivers the buffer under the configured codec. The v2 codecs
// send adaptive-size batches; CodecJSON POSTs consecutive same-kind
// runs (connection-log runs additionally break on probe changes — the
// v1 endpoint is per-probe). Call it when the stream ends; a failed
// flush leaves the undelivered records buffered, so it is safe to
// retry, and a partially accepted batch is trimmed so nothing already
// consumed by the server is re-sent.
func (p *StreamProducer) Flush() error {
	var encode func([]streamRecord) (encodedBatch, error)
	switch p.codec {
	case CodecBinary:
		encode = p.encodeBinary
	case CodecNDJSON:
		encode = p.encodeNDJSON
	default:
		encode = p.encodeRun
	}
	for len(p.buf) > 0 {
		if err := p.deliverOne(encode); err != nil {
			return err
		}
	}
	p.buf = nil
	return nil
}

// encodedBatch is one POST-able prefix of the buffer: where it goes,
// how it is framed, and how many buffered records it carries.
type encodedBatch struct {
	path        string
	contentType string
	body        []byte
	n           int
}

// encodeBinary frames a buffer prefix as one wire batch. The batch
// writer (and its buffers) are reused across flushes, so a steady
// producer stops allocating once its batch buffer has grown to size.
func (p *StreamProducer) encodeBinary(recs []streamRecord) (encodedBatch, error) {
	p.wire.Reset()
	for _, r := range recs {
		var err error
		switch r.kind {
		case kindMeta:
			err = p.wire.Meta(r.meta)
		case kindConn:
			err = p.wire.ConnLog(r.conn)
		case kindKRoot:
			err = p.wire.KRoot(r.kroot)
		case kindUptime:
			err = p.wire.Uptime(r.uptime)
		}
		if err != nil {
			return encodedBatch{}, err
		}
	}
	return encodedBatch{path: RouteStreamRecords, contentType: ContentTypeBinary, body: p.wire.Bytes(), n: len(recs)}, nil
}

// envelope converts a buffered record to its NDJSON line shape.
func (r streamRecord) envelope() recordEnvelope {
	switch r.kind {
	case kindMeta:
		return recordEnvelope{
			Kind:          "meta",
			Probe:         int(r.meta.ID),
			Country:       r.meta.Country,
			Version:       int(r.meta.Version),
			Tags:          r.meta.Tags,
			ConnectedDays: r.meta.ConnectedDays,
		}
	case kindConn:
		env := recordEnvelope{
			Kind:  "connlog",
			Probe: int(r.conn.Probe),
			Start: int64(r.conn.Start),
			End:   int64(r.conn.End),
		}
		if r.conn.Family == atlasdata.V6 {
			env.Addr = r.conn.V6Addr
		} else {
			env.Addr = r.conn.Addr.String()
		}
		return env
	case kindKRoot:
		return recordEnvelope{
			Kind:      "kroot",
			Probe:     int(r.kroot.Probe),
			Timestamp: int64(r.kroot.Timestamp),
			Sent:      r.kroot.Sent,
			Success:   r.kroot.Success,
			LTS:       r.kroot.LTS,
		}
	}
	return recordEnvelope{
		Kind:      "uptime",
		Probe:     int(r.uptime.Probe),
		Timestamp: int64(r.uptime.Timestamp),
		Uptime:    r.uptime.Uptime,
	}
}

// encodeNDJSON frames a buffer prefix as v2 envelope lines.
func (p *StreamProducer) encodeNDJSON(recs []streamRecord) (encodedBatch, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range recs {
		if err := enc.Encode(r.envelope()); err != nil {
			return encodedBatch{}, err
		}
	}
	return encodedBatch{path: RouteStreamRecords, contentType: ContentTypeNDJSON, body: body.Bytes(), n: len(recs)}, nil
}

// encodeRun frames the longest prefix of recs that shares one v1
// endpoint.
func (p *StreamProducer) encodeRun(recs []streamRecord) (encodedBatch, error) {
	kind := recs[0].kind
	n := 1
	for n < len(recs) && recs[n].kind == kind {
		if kind == kindConn && recs[n].conn.Probe != recs[0].conn.Probe {
			break
		}
		n++
	}
	run := recs[:n]
	var buf bytes.Buffer
	var path, contentType string
	switch kind {
	case kindMeta:
		probes := make([]atlasdata.ProbeMeta, n)
		for i, r := range run {
			probes[i] = r.meta
		}
		if err := WriteProbeArchive(&buf, probes); err != nil {
			return encodedBatch{}, err
		}
		path, contentType = "/api/v1/stream/probes", "application/json"
	case kindConn:
		entries := make([]atlasdata.ConnLogEntry, n)
		for i, r := range run {
			entries[i] = r.conn
		}
		if err := WriteConnectionHistory(&buf, run[0].conn.Probe, entries); err != nil {
			return encodedBatch{}, err
		}
		path = fmt.Sprintf("/api/v1/stream/connlogs?probe=%d", run[0].conn.Probe)
		contentType = "text/plain; charset=utf-8"
	case kindKRoot:
		rounds := make([]atlasdata.KRootRound, n)
		for i, r := range run {
			rounds[i] = r.kroot
		}
		if err := WriteKRootResults(&buf, rounds); err != nil {
			return encodedBatch{}, err
		}
		path, contentType = "/api/v1/stream/kroot", "application/x-ndjson"
	case kindUptime:
		recs := make([]atlasdata.UptimeRecord, n)
		for i, r := range run {
			recs[i] = r.uptime
		}
		if err := WriteUptimeResults(&buf, recs); err != nil {
			return encodedBatch{}, err
		}
		path, contentType = "/api/v1/stream/uptime", "application/x-ndjson"
	}
	return encodedBatch{path: path, contentType: contentType, body: buf.Bytes(), n: n}, nil
}

// postResult is what one POST attempt came back with.
type postResult struct {
	status     int
	statusLine string
	retryAfter time.Duration
	// consumed is the batch prefix the server reports having taken —
	// the full batch on 200, the error envelope's "accepted" field
	// otherwise. Either way these records must not be re-sent.
	consumed int
	msg      []byte
}

// postOnce sends one batch attempt. A returned error is a transport
// failure; HTTP-level failures come back in the postResult.
func (p *StreamProducer) postOnce(ctx context.Context, eb encodedBatch) (postResult, error) {
	client := p.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.BaseURL+eb.path, bytes.NewReader(eb.body))
	if err != nil {
		return postResult{}, err
	}
	req.Header.Set("Content-Type", eb.contentType)
	resp, err := client.Do(req)
	if err != nil {
		return postResult{}, err
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	// Drain whatever follows the captured prefix before closing:
	// closing a body with unread bytes kills the underlying
	// connection, so a sustained producer would open a fresh one per
	// batch instead of reusing its keep-alive connection.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
	resp.Body.Close()
	res := postResult{status: resp.StatusCode, statusLine: resp.Status, retryAfter: ParseRetryAfter(resp), msg: msg}
	if resp.StatusCode == http.StatusOK {
		res.consumed = eb.n
		return res, nil
	}
	// Ingest error envelopes carry the consumed batch prefix in
	// "accepted"; responses without one (proxies, panics) leave it 0 and
	// the whole batch is retried, which the ingester tolerates only for
	// idempotent re-sends — hence the server reports it whenever it
	// consumed anything.
	var env struct {
		Accepted int `json:"accepted"`
	}
	if json.Unmarshal(msg, &env) == nil && env.Accepted > 0 {
		if env.Accepted > eb.n {
			env.Accepted = eb.n
		}
		res.consumed = env.Accepted
	}
	return res, nil
}

// deliverOne sends one encoded batch off the front of the buffer,
// retrying transient failures. Between attempts the accepted prefix is
// trimmed and the remainder re-encoded, so a partially consumed batch
// is never duplicated; the circuit breaker paces attempts while the
// server sheds, and 429/503 Retry-After hints replace the backoff
// delay (capped at the policy maximum). Progress (any accepted prefix)
// resets the retry budget.
func (p *StreamProducer) deliverOne(encode func([]streamRecord) (encodedBatch, error)) error {
	ctx := p.context()
	retries := p.Retries
	if retries <= 0 {
		retries = 2
	}
	var lastErr error
	var retryAfter time.Duration
	attempt := 0
	for len(p.buf) > 0 {
		if w := p.breaker.Wait(time.Now()); w > 0 {
			if err := sleepFor(ctx, w); err != nil {
				return fmt.Errorf("atlasapi: POST: cancelled during breaker cooldown: %w (last error: %v)", err, lastErr)
			}
		}
		if attempt > 0 {
			d := retryDelay(p.Backoff, attempt-1, p.jitter.Uint64(), retryAfter)
			if err := sleepFor(ctx, d); err != nil {
				return fmt.Errorf("atlasapi: POST: cancelled during retry backoff: %w (last error: %v)", err, lastErr)
			}
		}
		chunk := p.buf
		if lim := p.effBatch(); len(chunk) > lim {
			chunk = chunk[:lim]
		}
		eb, err := encode(chunk)
		if err != nil {
			return err
		}
		res, err := p.postOnce(ctx, eb)
		if err != nil { // transport failure; nothing was consumed
			p.breaker.Fail(time.Now())
			lastErr = err
			retryAfter = 0
			if ctx.Err() != nil {
				return lastErr
			}
			if attempt++; attempt > retries {
				return lastErr
			}
			continue
		}
		if res.consumed > 0 {
			p.buf = p.buf[res.consumed:]
		}
		if res.status == http.StatusOK {
			p.breaker.OK()
			p.growBatch()
			return nil
		}
		lastErr = fmt.Errorf("atlasapi: POST %s: %s: %s", eb.path, res.statusLine, res.msg)
		if res.status != http.StatusTooManyRequests && res.status < 500 {
			return lastErr // permanent: the payload or the request is wrong
		}
		p.breaker.Fail(time.Now())
		p.shrinkBatch()
		retryAfter = res.retryAfter
		if res.consumed > 0 {
			attempt = 0 // forward progress: keep going at fresh budget
			continue
		}
		if attempt++; attempt > retries {
			return lastErr
		}
	}
	return nil
}
