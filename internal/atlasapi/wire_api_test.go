package atlasapi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/obs"
	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
	"dynaddr/internal/wire"
)

// testWireBatch frames one probe's meta + session + round + report.
func testWireBatch(t *testing.T) []byte {
	t.Helper()
	var w wire.BatchWriter
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Meta(atlasdata.ProbeMeta{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}))
	must(w.ConnLog(atlasdata.ConnLogEntry{
		Probe: 206, Start: liveHour(0), End: liveHour(24),
		Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.1"),
	}))
	must(w.KRoot(atlasdata.KRootRound{Probe: 206, Timestamp: liveHour(12), Sent: 3, Success: 3, LTS: 30}))
	must(w.Uptime(atlasdata.UptimeRecord{Probe: 206, Timestamp: liveHour(12), Uptime: 3600}))
	return append([]byte(nil), w.Bytes()...)
}

func postRaw(t *testing.T, url, contentType string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(msg)
}

// TestV2StreamRecordsBinary posts one framed binary batch and checks
// the ingest lands plus the per-codec counters move.
func TestV2StreamRecordsBinary(t *testing.T) {
	reg := obs.NewRegistry()
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: liveStore(t)})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing, WithLiveMetrics(reg)))
	defer srv.Close()

	code, body := postRaw(t, srv.URL+RouteStreamRecords, ContentTypeBinary, testWireBatch(t))
	if code != 200 || !strings.Contains(body, `"accepted": 4`) {
		t.Fatalf("binary POST: %d %q", code, body)
	}

	snap := ing.Snapshot()
	if snap.Records.Meta != 1 || snap.Records.ConnLogs != 1 || snap.Records.KRoot != 1 || snap.Records.Uptime != 1 {
		t.Fatalf("records after binary batch: %+v", snap.Records)
	}
	if v, ok := gatherValue(t, reg, "ingest_batches_total", obs.L("codec", "binary")); !ok || v != 1 {
		t.Errorf("ingest_batches_total{codec=binary} = %v (present=%v), want 1", v, ok)
	}
	if v, _ := gatherValue(t, reg, "ingest_batch_records_total", obs.L("codec", "binary")); v != 4 {
		t.Errorf("ingest_batch_records_total{codec=binary} = %v, want 4", v)
	}

	// A corrupted batch must reject (400) and count as rejected.
	bad := testWireBatch(t)
	bad[len(bad)-1] ^= 0x01
	if code, _ := postRaw(t, srv.URL+RouteStreamRecords, ContentTypeBinary, bad); code != 400 {
		t.Fatalf("corrupt batch returned %d, want 400", code)
	}
	if v, _ := gatherValue(t, reg, "ingest_batches_rejected_total", obs.L("codec", "binary")); v != 1 {
		t.Errorf("ingest_batches_rejected_total{codec=binary} = %v, want 1", v)
	}
}

func TestV2StreamRecordsNDJSON(t *testing.T) {
	reg := obs.NewRegistry()
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: liveStore(t)})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing, WithLiveMetrics(reg)))
	defer srv.Close()

	lines := `{"kind":"meta","probe":206,"country":"DE","version":3,"connected_days":200}
{"kind":"connlog","probe":206,"start":` + fmt.Sprint(int64(liveHour(0))) + `,"end":` + fmt.Sprint(int64(liveHour(24))) + `,"addr":"10.0.0.1"}
{"kind":"kroot","probe":206,"timestamp":` + fmt.Sprint(int64(liveHour(12))) + `,"sent":3,"success":3,"lts":30}
{"kind":"uptime","probe":206,"timestamp":` + fmt.Sprint(int64(liveHour(12))) + `,"uptime":3600}
`
	code, body := postRaw(t, srv.URL+RouteStreamRecords, ContentTypeNDJSON, []byte(lines))
	if code != 200 || !strings.Contains(body, `"accepted": 4`) {
		t.Fatalf("ndjson POST: %d %q", code, body)
	}
	snap := ing.Snapshot()
	if snap.Records.Meta != 1 || snap.Records.ConnLogs != 1 || snap.Records.KRoot != 1 || snap.Records.Uptime != 1 {
		t.Fatalf("records after ndjson batch: %+v", snap.Records)
	}
	if v, _ := gatherValue(t, reg, "ingest_batch_records_total", obs.L("codec", "ndjson")); v != 4 {
		t.Errorf("ingest_batch_records_total{codec=ndjson} = %v, want 4", v)
	}

	// An unknown kind inside a line is quarantined to the dead-letter
	// queue, not a batch failure: the response reports it and the batch
	// stays 200.
	code, body = postRaw(t, srv.URL+RouteStreamRecords, ContentTypeNDJSON, []byte(`{"kind":"bogus","probe":1}`))
	if code != 200 || !strings.Contains(body, `"accepted": 0`) || !strings.Contains(body, `"quarantined": 1`) {
		t.Fatalf("unknown kind: %d %q, want 200 with quarantined count", code, body)
	}
	ing.Snapshot() // barrier: the quarantine record rides the shard channel
	if dl := ing.DeadLetter(); dl.Total != 1 || dl.ByReason["unknown-kind"] != 1 {
		t.Fatalf("dead letter status = %+v, want 1 unknown-kind entry", dl)
	}
}

func TestV2ContentTypeNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	ing := stream.NewIngester(stream.Config{Shards: 1})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing, WithLiveMetrics(reg)))
	defer srv.Close()

	if code, _ := postRaw(t, srv.URL+RouteStreamRecords, "text/csv", []byte("a,b")); code != http.StatusUnsupportedMediaType {
		t.Fatalf("text/csv returned %d, want 415", code)
	}
	if v, _ := gatherValue(t, reg, "ingest_batches_rejected_total", obs.L("codec", "unknown")); v != 1 {
		t.Errorf("ingest_batches_rejected_total{codec=unknown} = %v, want 1", v)
	}

	// application/json rides the NDJSON fallback.
	if code, body := postRaw(t, srv.URL+RouteStreamRecords, "application/json; charset=utf-8",
		[]byte(`{"kind":"uptime","probe":5,"timestamp":100,"uptime":60}`)); code != 200 || !strings.Contains(body, `"accepted": 1`) {
		t.Fatalf("application/json POST: %d %q", code, body)
	}

	// GET is a 405 regardless of codec.
	resp, err := http.Get(srv.URL + RouteStreamRecords)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET returned %d, want 405", resp.StatusCode)
	}
}

// TestV1DeprecationHeaders: the v1 shims must advertise their successor.
func TestV1DeprecationHeaders(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/v1/stream/uptime", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("empty uptime POST: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation header = %q, want \"true\"", got)
	}
	if got := resp.Header.Get("Link"); !strings.Contains(got, RouteStreamRecords) || !strings.Contains(got, "successor-version") {
		t.Errorf("Link header = %q, want successor-version pointing at %s", got, RouteStreamRecords)
	}
}

// TestV1RoutesDisabled: WithV1Routes(false) retires the shims with 410.
func TestV1RoutesDisabled(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing, WithV1Routes(false)))
	defer srv.Close()

	for _, path := range []string{"/api/v1/stream/probes", "/api/v1/stream/connlogs", "/api/v1/stream/kroot", "/api/v1/stream/uptime"} {
		if code, body := postBody(t, srv.URL+path, ""); code != http.StatusGone || !strings.Contains(body, RouteStreamRecords) {
			t.Errorf("POST %s with v1 off: %d %q, want 410 pointing at v2", path, code, body)
		}
	}
	// v2 and the read side stay up.
	if code, body := postRaw(t, srv.URL+RouteStreamRecords, ContentTypeBinary, testWireBatch(t)); code != 200 {
		t.Fatalf("v2 POST with v1 off: %d %q", code, body)
	}
	resp, err := http.Get(srv.URL + "/api/v1/live/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("summary with v1 off: %d", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestWireReplayEquivalence is the cross-codec oracle: the same dataset
// delivered via the v1 JSON routes, the v2 NDJSON envelope, and the v2
// binary codec must produce byte-identical live summaries and analysis
// artefacts, across shard counts.
func TestWireReplayEquivalence(t *testing.T) {
	world := smallWorld(t, 23, 0.02)
	ds := world.Dataset

	for _, shards := range []int{1, 3} {
		var wantSummary, wantAnalysis string
		for _, codec := range []Codec{CodecJSON, CodecNDJSON, CodecBinary} {
			t.Run(fmt.Sprintf("shards=%d/codec=%s", shards, codec), func(t *testing.T) {
				ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS, Analysis: true})
				defer ing.Close()
				srv := httptest.NewServer(NewLiveServer(ing))
				defer srv.Close()

				p := NewStreamProducer(context.Background(), srv.URL,
					WithCodec(codec), WithBatchSize(64), WithBackoff(fastBackoff))
				if err := sim.ReplayDataset(ds, p); err != nil {
					t.Fatalf("replay via %s: %v", codec, err)
				}
				if err := p.Flush(); err != nil {
					t.Fatalf("flush via %s: %v", codec, err)
				}

				summary := getBody(t, srv.URL+"/api/v1/live/summary")
				analysis := getBody(t, srv.URL+"/api/v1/live/analysis")
				if codec == CodecJSON {
					wantSummary, wantAnalysis = summary, analysis
					return
				}
				if summary != wantSummary {
					t.Errorf("summary differs from v1 JSON path:\n%s\nvs\n%s", summary, wantSummary)
				}
				if analysis != wantAnalysis {
					t.Errorf("analysis differs from v1 JSON path (lengths %d vs %d)", len(analysis), len(wantAnalysis))
				}
			})
		}
	}
}
