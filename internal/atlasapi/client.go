package atlasapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/obs"
	"dynaddr/internal/pfx2as"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// Client scrapes a Server's endpoints and reassembles a dataset — the
// paper's collection step (§3.1: "we scraped each active probe's
// connection logs directly from the probe's webpage"). A year-long
// scrape of ~11k probe pages meets transient failures as a matter of
// course, so the client retries with jittered exponential backoff,
// classifies failures as transient or permanent, and (via
// AllowFailures) can trade isolated probe losses for a partial dataset
// instead of aborting the whole collection.
type Client struct {
	// BaseURL is the server root, e.g. "http://atlas.example.org".
	BaseURL string
	// HTTPClient defaults to a client with a 30-second timeout.
	HTTPClient *http.Client
	// Months lists the pfx2as snapshot months to fetch; empty skips
	// routing data (the analyzer then cannot map addresses to ASes).
	Months []pfx2as.Month
	// Concurrency is the number of probes fetched in parallel during
	// ScrapeAll; zero means 8. The paper scraped 10,977 probe pages —
	// sequential fetching does not survive that scale.
	Concurrency int
	// Retries is how many times a failed fetch is retried before giving
	// up; zero means 2. Only transient failures are retried: transport
	// errors, 5xx responses, and truncated bodies (a response that dies
	// mid-read). 4xx responses and validation errors in a complete body
	// are permanent and fail immediately.
	Retries int
	// Backoff spaces retry attempts with jittered exponential delays;
	// the zero value waits ~100-200ms before the first retry, doubling
	// per attempt up to 5s. Retries never run in a tight loop.
	Backoff backoff.Policy
	// AllowFailures is the per-scrape error budget: how many probes may
	// fail permanently (after retries) before the scrape as a whole is
	// abandoned. Failed probes are skipped — their records are simply
	// absent from the assembled dataset — and listed in the
	// ScrapeReport. Zero keeps the historical all-or-nothing behaviour;
	// negative means unlimited.
	AllowFailures int
	// Metrics, when non-nil, receives request, retry, backoff-sleep and
	// error-budget counters across every fetch this client issues.
	Metrics *obs.Registry

	// jitter feeds Backoff; the zero value is ready to use.
	jitter backoff.Jitter

	cmOnce sync.Once
	cm     *clientMetrics
}

// clientMetrics caches the client's instruments so the per-request
// path never touches the registry. Nil (Metrics unset) records
// nothing; methods are nil-receiver safe.
type clientMetrics struct {
	requests   *obs.Counter
	retries    *obs.Counter
	backoffSec *obs.Histogram
	budget     *obs.Counter
}

func (c *Client) metrics() *clientMetrics {
	c.cmOnce.Do(func() {
		if c.Metrics == nil {
			return
		}
		c.cm = &clientMetrics{
			requests: c.Metrics.Counter("scrape_requests_total",
				"HTTP requests issued by the scrape client, retries included."),
			retries: c.Metrics.Counter("scrape_retries_total",
				"Scrape fetch attempts beyond the first."),
			backoffSec: c.Metrics.Histogram("scrape_backoff_seconds",
				"Backoff sleeps between scrape retries, in seconds (the sum is total time spent backing off).", nil),
			budget: c.Metrics.Counter("scrape_budget_burned_total",
				"Probes skipped under the scrape error budget."),
		}
	})
	return c.cm
}

func (m *clientMetrics) request() {
	if m != nil {
		m.requests.Inc()
	}
}

func (m *clientMetrics) retried(delay time.Duration) {
	if m != nil {
		m.retries.Inc()
		m.backoffSec.Observe(delay.Seconds())
	}
}

func (m *clientMetrics) budgetBurned() {
	if m != nil {
		m.budget.Inc()
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// scrapeStats accumulates request counters across the fetches of one
// scrape. A nil *scrapeStats is valid and counts nothing.
type scrapeStats struct {
	attempts atomic.Int64
	retries  atomic.Int64
}

func (s *scrapeStats) attempt() {
	if s != nil {
		s.attempts.Add(1)
	}
}

func (s *scrapeStats) retry() {
	if s != nil {
		s.retries.Add(1)
	}
}

// retryDelay picks the wait before a retry: the server's Retry-After
// hint when it sent one (capped at the backoff policy's maximum delay,
// so a misbehaving server cannot park the client), else the policy's
// jittered exponential delay. u supplies the jitter entropy for the
// latter case.
func retryDelay(p backoff.Policy, attempt int, u uint64, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if max := p.MaxDelay(); retryAfter > max {
			return max
		}
		return retryAfter
	}
	return p.Delay(attempt, u)
}

// ParseRetryAfter reads a response's Retry-After pacing hint, accepting
// both RFC 7231 forms: delay-seconds ("3") and HTTP-date ("Tue, 29 Oct
// 2024 16:56:32 GMT" and the obsolete date formats http.ParseTime
// knows). A date is converted to a delay against the local clock; dates
// in the past, negative seconds and garbage all mean "no usable hint"
// and return zero. Exported because the cluster coordinator paces its
// per-peer forwarding off the same header its own clients see.
func ParseRetryAfter(resp *http.Response) time.Duration {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// sleepFor waits d or until ctx is done, whichever comes first.
func sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// get fetches a URL and hands the body to parse, converting HTTP errors
// into Go errors with the response text attached. Transient failures
// (transport errors, 429/5xx, truncated bodies) are retried with
// jittered exponential backoff; when the server sends a Retry-After
// pacing hint (it does on 429 and capacity 503s) the hint is honoured
// instead, capped at the policy's maximum delay. Other 4xx and
// validation errors are permanent. Cancelling ctx aborts the in-flight
// request and any backoff sleep.
func get[T any](ctx context.Context, c *Client, path string, parse func(io.Reader) (T, error), st *scrapeStats) (T, error) {
	var zero T
	retries := c.Retries
	if retries <= 0 {
		retries = 2
	}
	cm := c.metrics()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			st.retry()
			// The delay is computed with the same jitter word the sleep
			// consumes, so the recorded backoff is exactly the one served.
			d := retryDelay(c.Backoff, attempt-1, c.jitter.Uint64(), retryAfter)
			cm.retried(d)
			if err := sleepFor(ctx, d); err != nil {
				return zero, fmt.Errorf("atlasapi: GET %s: cancelled during retry backoff: %w (last error: %v)", path, err, lastErr)
			}
		}
		st.attempt()
		cm.request()
		v, retriable, ra, err := getOnce(ctx, c, path, parse)
		if err == nil {
			return v, nil
		}
		lastErr, retryAfter = err, ra
		if !retriable || ctx.Err() != nil {
			break
		}
	}
	return zero, lastErr
}

// trackedReader remembers whether the underlying body reader failed, so
// a parse error caused by a dying transfer can be told apart from a
// validation error in a complete body.
type trackedReader struct {
	r       io.Reader
	readErr error
}

func (t *trackedReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.readErr = err
	}
	return n, err
}

func getOnce[T any](ctx context.Context, c *Client, path string, parse func(io.Reader) (T, error)) (v T, retriable bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return v, false, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return v, true, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		// Drain past the captured prefix so the keep-alive connection
		// survives the error response (see StreamProducer.post).
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
		err := fmt.Errorf("atlasapi: GET %s: %s: %s", path, resp.Status, msg)
		// 429 is the admission controller shedding load — transient by
		// definition, and its Retry-After says exactly when to return.
		retriable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return v, retriable, ParseRetryAfter(resp), err
	}
	body := &trackedReader{r: resp.Body}
	v, err = parse(body)
	if err != nil {
		// A truncated body (transport died mid-read, or a framed
		// response that stops mid-value) is transient; a deterministic
		// validation error in a complete body is permanent and must not
		// burn the retry budget. No drain here: the body is suspect, and
		// Close discarding the connection is the right outcome.
		truncated := body.readErr != nil || errors.Is(err, io.ErrUnexpectedEOF)
		return v, truncated, 0, fmt.Errorf("atlasapi: GET %s: %w", path, err)
	}
	// Parsers stop at the end of the value they decode, which can leave
	// trailing bytes (a final newline, an unread epilogue) on the wire;
	// consume them so the connection returns to the pool.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
	return v, false, 0, nil
}

// FetchProbeArchiveContext retrieves all probe metadata.
func (c *Client) FetchProbeArchiveContext(ctx context.Context) ([]atlasdata.ProbeMeta, error) {
	return get(ctx, c, "/api/v1/probe-archive/", ParseProbeArchive, nil)
}

// FetchProbeArchive is FetchProbeArchiveContext with a background context.
func (c *Client) FetchProbeArchive() ([]atlasdata.ProbeMeta, error) {
	return c.FetchProbeArchiveContext(context.Background())
}

// FetchConnectionHistoryContext retrieves one probe's sessions.
func (c *Client) FetchConnectionHistoryContext(ctx context.Context, id atlasdata.ProbeID) ([]atlasdata.ConnLogEntry, error) {
	return c.fetchConnectionHistory(ctx, id, nil)
}

func (c *Client) fetchConnectionHistory(ctx context.Context, id atlasdata.ProbeID, st *scrapeStats) ([]atlasdata.ConnLogEntry, error) {
	return get(ctx, c, fmt.Sprintf("/probes/%d/connection-history/", id),
		func(r io.Reader) ([]atlasdata.ConnLogEntry, error) {
			return ParseConnectionHistory(r, id)
		}, st)
}

// FetchConnectionHistory is FetchConnectionHistoryContext with a
// background context.
func (c *Client) FetchConnectionHistory(id atlasdata.ProbeID) ([]atlasdata.ConnLogEntry, error) {
	return c.FetchConnectionHistoryContext(context.Background(), id)
}

// FetchKRootContext retrieves one probe's k-root ping rounds.
func (c *Client) FetchKRootContext(ctx context.Context, id atlasdata.ProbeID) ([]atlasdata.KRootRound, error) {
	return c.fetchKRoot(ctx, id, nil)
}

func (c *Client) fetchKRoot(ctx context.Context, id atlasdata.ProbeID, st *scrapeStats) ([]atlasdata.KRootRound, error) {
	return get(ctx, c, fmt.Sprintf("/api/v1/measurements/kroot/%d/", id), ParseKRootResults, st)
}

// FetchKRoot is FetchKRootContext with a background context.
func (c *Client) FetchKRoot(id atlasdata.ProbeID) ([]atlasdata.KRootRound, error) {
	return c.FetchKRootContext(context.Background(), id)
}

// FetchUptimeContext retrieves one probe's uptime reports.
func (c *Client) FetchUptimeContext(ctx context.Context, id atlasdata.ProbeID) ([]atlasdata.UptimeRecord, error) {
	return c.fetchUptime(ctx, id, nil)
}

func (c *Client) fetchUptime(ctx context.Context, id atlasdata.ProbeID, st *scrapeStats) ([]atlasdata.UptimeRecord, error) {
	return get(ctx, c, fmt.Sprintf("/api/v1/measurements/uptime/%d/", id), ParseUptimeResults, st)
}

// FetchUptime is FetchUptimeContext with a background context.
func (c *Client) FetchUptime(id atlasdata.ProbeID) ([]atlasdata.UptimeRecord, error) {
	return c.FetchUptimeContext(context.Background(), id)
}

// FetchMonthsContext discovers which pfx2as snapshot months the server
// offers.
func (c *Client) FetchMonthsContext(ctx context.Context) ([]pfx2as.Month, error) {
	return get(ctx, c, "/caida/pfx2as/", func(r io.Reader) ([]pfx2as.Month, error) {
		var raw []int
		if err := jsonDecode(r, &raw); err != nil {
			return nil, err
		}
		out := make([]pfx2as.Month, len(raw))
		for i, m := range raw {
			out[i] = pfx2as.Month(m)
		}
		return out, nil
	}, nil)
}

// FetchMonths is FetchMonthsContext with a background context.
func (c *Client) FetchMonths() ([]pfx2as.Month, error) {
	return c.FetchMonthsContext(context.Background())
}

// FetchPfx2ASContext retrieves one monthly routing snapshot.
func (c *Client) FetchPfx2ASContext(ctx context.Context, m pfx2as.Month) (*pfx2as.Table, error) {
	return c.fetchPfx2AS(ctx, m, nil)
}

func (c *Client) fetchPfx2AS(ctx context.Context, m pfx2as.Month, st *scrapeStats) (*pfx2as.Table, error) {
	entries, err := get(ctx, c, fmt.Sprintf("/caida/pfx2as/%d.txt", int(m)), pfx2as.ParseText, st)
	if err != nil {
		return nil, err
	}
	return pfx2as.NewTable(entries)
}

// FetchPfx2AS is FetchPfx2ASContext with a background context.
func (c *Client) FetchPfx2AS(m pfx2as.Month) (*pfx2as.Table, error) {
	return c.FetchPfx2ASContext(context.Background(), m)
}

// ProbeFailure records one probe the scrape gave up on after exhausting
// its retries.
type ProbeFailure struct {
	Probe atlasdata.ProbeID
	Err   error
}

// ScrapeReport summarises how a scrape went: how many probes the
// archive listed, how many were fetched, which were skipped under the
// error budget, and the request totals behind it.
type ScrapeReport struct {
	// Probes is the number of probes the archive listed.
	Probes int
	// Scraped is the number of probes whose records were all fetched.
	Scraped int
	// Skipped lists probes abandoned after exhausting retries, in
	// ascending probe-ID order.
	Skipped []ProbeFailure
	// Attempts counts HTTP requests issued, including retries.
	Attempts int64
	// Retries counts attempts beyond the first per fetch.
	Retries int64
	// Elapsed is the wall time of the scrape.
	Elapsed time.Duration
}

// Partial reports whether the dataset is missing any probe's records.
func (r *ScrapeReport) Partial() bool { return len(r.Skipped) > 0 }

// String renders a one-or-two-line human summary.
func (r *ScrapeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scraped %d/%d probes in %v (%d requests, %d retries)",
		r.Scraped, r.Probes, r.Elapsed.Round(time.Millisecond), r.Attempts, r.Retries)
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, "; skipped %d:", len(r.Skipped))
		for i, f := range r.Skipped {
			if i == 5 {
				fmt.Fprintf(&b, " … (%d more)", len(r.Skipped)-i)
				break
			}
			fmt.Fprintf(&b, " probe %d (%v)", f.Probe, f.Err)
		}
	}
	return b.String()
}

// ScrapeAll reassembles a complete dataset with a background context;
// see ScrapeAllContext. The report is discarded — with the default
// zero error budget any probe failure aborts the scrape, so this keeps
// the historical all-or-nothing semantics.
func (c *Client) ScrapeAll() (*atlasdata.Dataset, error) {
	ds, _, err := c.ScrapeAllContext(context.Background())
	return ds, err
}

// ScrapeAllContext reassembles a dataset: the probe archive, then all
// three record streams per probe (fetched Concurrency probes at a
// time), then the configured pfx2as months. The result validates before
// returning; the assembled dataset is independent of fetch order.
//
// Failure semantics: a probe whose fetch fails permanently (after
// retries) consumes one unit of the AllowFailures error budget and is
// skipped — the scrape degrades to a partial dataset rather than
// aborting. Once the budget is blown the scrape cancels its in-flight
// workers, stops dispatching new ones, and returns an error. The
// ScrapeReport is non-nil whenever the archive fetch succeeded, even
// alongside an error, so callers can see how far the scrape got.
// Cancelling ctx aborts in-flight requests and backoff sleeps promptly.
func (c *Client) ScrapeAllContext(ctx context.Context) (*atlasdata.Dataset, *ScrapeReport, error) {
	start := time.Now()
	st := &scrapeStats{}
	probes, err := get(ctx, c, "/api/v1/probe-archive/", ParseProbeArchive, st)
	if err != nil {
		return nil, nil, err
	}
	report := &ScrapeReport{Probes: len(probes)}
	finish := func() {
		report.Attempts = st.attempts.Load()
		report.Retries = st.retries.Load()
		report.Elapsed = time.Since(start)
		sort.Slice(report.Skipped, func(i, j int) bool {
			return report.Skipped[i].Probe < report.Skipped[j].Probe
		})
	}

	ds := atlasdata.NewDataset()
	for _, p := range probes {
		ds.Probes[p.ID] = p
	}

	workers := c.Concurrency
	if workers <= 0 {
		workers = 8
	}
	scrapeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		fatalErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
	)
	blown := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fatalErr != nil
	}
	// skip charges one probe failure against the error budget; blowing
	// the budget cancels every in-flight worker.
	skip := func(id atlasdata.ProbeID, err error) {
		mu.Lock()
		defer mu.Unlock()
		c.metrics().budgetBurned()
		report.Skipped = append(report.Skipped, ProbeFailure{Probe: id, Err: err})
		if c.AllowFailures >= 0 && len(report.Skipped) > c.AllowFailures && fatalErr == nil {
			fatalErr = fmt.Errorf("atlasapi: scrape error budget exhausted (%d probes failed, %d allowed): %w",
				len(report.Skipped), c.AllowFailures, err)
			cancel()
		}
	}
dispatch:
	for _, p := range probes {
		// Stop dispatching as soon as the budget is blown or the caller
		// cancelled — don't queue fetches that are doomed anyway.
		if blown() {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-scrapeCtx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(p atlasdata.ProbeMeta) {
			defer wg.Done()
			defer func() { <-sem }()
			conns, kroot, uptime, err := c.fetchProbeRecords(scrapeCtx, p.ID, st)
			if err != nil {
				if scrapeCtx.Err() != nil {
					// Aborted by cancellation, not a probe failure.
					return
				}
				skip(p.ID, err)
				return
			}
			mu.Lock()
			report.Scraped++
			if len(conns) > 0 {
				ds.ConnLogs[p.ID] = conns
			}
			if len(kroot) > 0 {
				ds.KRoot[p.ID] = kroot
			}
			if len(uptime) > 0 {
				ds.Uptime[p.ID] = uptime
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		finish()
		return nil, report, err
	}
	if blown() {
		finish()
		return nil, report, fatalErr
	}
	// Drop skipped probes' metadata so the partial dataset stays
	// internally consistent: every probe present is fully present.
	for _, f := range report.Skipped {
		delete(ds.Probes, f.Probe)
	}

	for _, m := range c.Months {
		tbl, err := c.fetchPfx2AS(ctx, m, st)
		if err != nil {
			finish()
			return nil, report, fmt.Errorf("pfx2as %v: %w", m, err)
		}
		ds.Pfx2AS.Put(m, tbl)
	}
	ds.SortRecords()
	if err := ds.Validate(); err != nil {
		finish()
		return nil, report, err
	}
	finish()
	return ds, report, nil
}

// fetchProbeRecords pulls one probe's three record streams.
func (c *Client) fetchProbeRecords(ctx context.Context, id atlasdata.ProbeID, st *scrapeStats) (
	conns []atlasdata.ConnLogEntry, kroot []atlasdata.KRootRound, uptime []atlasdata.UptimeRecord, err error) {
	if conns, err = c.fetchConnectionHistory(ctx, id, st); err != nil {
		return nil, nil, nil, fmt.Errorf("probe %d history: %w", id, err)
	}
	if kroot, err = c.fetchKRoot(ctx, id, st); err != nil {
		return nil, nil, nil, fmt.Errorf("probe %d k-root: %w", id, err)
	}
	if uptime, err = c.fetchUptime(ctx, id, st); err != nil {
		return nil, nil, nil, fmt.Errorf("probe %d uptime: %w", id, err)
	}
	return conns, kroot, uptime, nil
}
