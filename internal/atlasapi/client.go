package atlasapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/pfx2as"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// Client scrapes a Server's endpoints and reassembles a dataset — the
// paper's collection step (§3.1: "we scraped each active probe's
// connection logs directly from the probe's webpage").
type Client struct {
	// BaseURL is the server root, e.g. "http://atlas.example.org".
	BaseURL string
	// HTTPClient defaults to a client with a 30-second timeout.
	HTTPClient *http.Client
	// Months lists the pfx2as snapshot months to fetch; empty skips
	// routing data (the analyzer then cannot map addresses to ASes).
	Months []pfx2as.Month
	// Concurrency is the number of probes fetched in parallel during
	// ScrapeAll; zero means 8. The paper scraped 10,977 probe pages —
	// sequential fetching does not survive that scale.
	Concurrency int
	// Retries is how many times a failed fetch is retried before giving
	// up; zero means 2. Long scrapes hit transient failures; a parse
	// error is retried too, since truncated responses parse badly.
	Retries int
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// get fetches a URL and hands the body to parse, converting HTTP errors
// into Go errors with the response text attached. Transient failures
// (transport errors, 5xx) are retried; 4xx are permanent.
func get[T any](c *Client, path string, parse func(io.Reader) (T, error)) (T, error) {
	var zero T
	retries := c.Retries
	if retries <= 0 {
		retries = 2
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		v, retriable, err := getOnce(c, path, parse)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !retriable {
			break
		}
	}
	return zero, lastErr
}

func getOnce[T any](c *Client, path string, parse func(io.Reader) (T, error)) (v T, retriable bool, err error) {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return v, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("atlasapi: GET %s: %s: %s", path, resp.Status, msg)
		return v, resp.StatusCode >= 500, err
	}
	v, err = parse(resp.Body)
	return v, err != nil, err
}

// FetchProbeArchive retrieves all probe metadata.
func (c *Client) FetchProbeArchive() ([]atlasdata.ProbeMeta, error) {
	return get(c, "/api/v1/probe-archive/", ParseProbeArchive)
}

// FetchConnectionHistory retrieves one probe's sessions.
func (c *Client) FetchConnectionHistory(id atlasdata.ProbeID) ([]atlasdata.ConnLogEntry, error) {
	return get(c, fmt.Sprintf("/probes/%d/connection-history/", id),
		func(r io.Reader) ([]atlasdata.ConnLogEntry, error) {
			return ParseConnectionHistory(r, id)
		})
}

// FetchKRoot retrieves one probe's k-root ping rounds.
func (c *Client) FetchKRoot(id atlasdata.ProbeID) ([]atlasdata.KRootRound, error) {
	return get(c, fmt.Sprintf("/api/v1/measurements/kroot/%d/", id), ParseKRootResults)
}

// FetchUptime retrieves one probe's uptime reports.
func (c *Client) FetchUptime(id atlasdata.ProbeID) ([]atlasdata.UptimeRecord, error) {
	return get(c, fmt.Sprintf("/api/v1/measurements/uptime/%d/", id), ParseUptimeResults)
}

// FetchMonths discovers which pfx2as snapshot months the server offers.
func (c *Client) FetchMonths() ([]pfx2as.Month, error) {
	return get(c, "/caida/pfx2as/", func(r io.Reader) ([]pfx2as.Month, error) {
		var raw []int
		if err := jsonDecode(r, &raw); err != nil {
			return nil, err
		}
		out := make([]pfx2as.Month, len(raw))
		for i, m := range raw {
			out[i] = pfx2as.Month(m)
		}
		return out, nil
	})
}

// FetchPfx2AS retrieves one monthly routing snapshot.
func (c *Client) FetchPfx2AS(m pfx2as.Month) (*pfx2as.Table, error) {
	entries, err := get(c, fmt.Sprintf("/caida/pfx2as/%d.txt", int(m)), pfx2as.ParseText)
	if err != nil {
		return nil, err
	}
	return pfx2as.NewTable(entries)
}

// ScrapeAll reassembles a complete dataset: the probe archive, then all
// three record streams per probe (fetched Concurrency probes at a
// time), then the configured pfx2as months. The result validates before
// returning; the assembled dataset is independent of fetch order.
func (c *Client) ScrapeAll() (*atlasdata.Dataset, error) {
	probes, err := c.FetchProbeArchive()
	if err != nil {
		return nil, err
	}
	ds := atlasdata.NewDataset()
	for _, p := range probes {
		ds.Probes[p.ID] = p
	}

	workers := c.Concurrency
	if workers <= 0 {
		workers = 8
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, p := range probes {
		wg.Add(1)
		sem <- struct{}{}
		go func(p atlasdata.ProbeMeta) {
			defer wg.Done()
			defer func() { <-sem }()
			conns, err := c.FetchConnectionHistory(p.ID)
			if err != nil {
				fail(fmt.Errorf("probe %d history: %w", p.ID, err))
				return
			}
			kroot, err := c.FetchKRoot(p.ID)
			if err != nil {
				fail(fmt.Errorf("probe %d k-root: %w", p.ID, err))
				return
			}
			uptime, err := c.FetchUptime(p.ID)
			if err != nil {
				fail(fmt.Errorf("probe %d uptime: %w", p.ID, err))
				return
			}
			mu.Lock()
			if len(conns) > 0 {
				ds.ConnLogs[p.ID] = conns
			}
			if len(kroot) > 0 {
				ds.KRoot[p.ID] = kroot
			}
			if len(uptime) > 0 {
				ds.Uptime[p.ID] = uptime
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for _, m := range c.Months {
		tbl, err := c.FetchPfx2AS(m)
		if err != nil {
			return nil, fmt.Errorf("pfx2as %v: %w", m, err)
		}
		ds.Pfx2AS.Put(m, tbl)
	}
	ds.SortRecords()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
