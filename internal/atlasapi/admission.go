package atlasapi

import (
	"strconv"
	"sync/atomic"
	"time"

	"dynaddr/internal/obs"
)

// Admission defaults used when a config field is zero.
const (
	DefaultMaxInFlight = 256
	DefaultMaxWait     = 100 * time.Millisecond
	DefaultHighWater   = 0.9
	DefaultRetryAfter  = 1 * time.Second
)

// AdmissionConfig parameterises the ingest admission controller.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrent ingest requests across all ingest
	// routes; zero means DefaultMaxInFlight, negative disables the
	// global gate.
	MaxInFlight int
	// MaxWait bounds how long an arriving request queues for a slot
	// before being shed — the bounded-queue part of the gate. Zero means
	// DefaultMaxWait; negative means no waiting (shed immediately when
	// saturated).
	MaxWait time.Duration
	// HighWater is the shard-queue fill fraction (0..1] above which
	// ingest is shed outright: the shards are already backed up, so
	// letting more batches queue only converts fast 429s into slow
	// blocked handlers. Zero means DefaultHighWater; negative disables
	// the pressure check.
	HighWater float64
	// RetryAfter is the pacing hint sent with shed responses (and with
	// degraded-shard 503s). Zero means DefaultRetryAfter.
	RetryAfter time.Duration
	// PerRoute optionally caps concurrent requests per ingest route
	// (route labels: "v2", "probes", "connlogs", "kroot", "uptime"), so
	// one chatty deprecated shim cannot starve the v2 path. Routes
	// absent from the map share only the global gate.
	PerRoute map[string]int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxWait == 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.HighWater == 0 {
		c.HighWater = DefaultHighWater
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Admission is the ingest overload gate: a global (and optionally
// per-route) slot pool with a bounded queue wait, plus a shard-queue
// pressure valve. Requests that cannot be admitted are shed with 429
// and a Retry-After pacing hint instead of piling onto the shard
// channels. It also remembers that it recently shed — the serving tier
// uses Hot to keep answering reads from the last published generation
// while ingest is fighting for its life.
type Admission struct {
	cfg      AdmissionConfig
	slots    chan struct{}            // nil when the global gate is off
	routes   map[string]chan struct{} // per-route gates
	pressure func() float64           // shard-queue fill fraction; nil = none

	reg     *obs.Registry
	lastHot atomic.Int64 // unix nanos of the last shed
}

// NewAdmission builds an admission gate. pressure reports the shard
// queues' worst fill fraction (stream.Ingester.QueuePressure); nil
// disables the pressure valve. reg receives ingest_shed_total; nil
// disables instrumentation.
func NewAdmission(cfg AdmissionConfig, pressure func() float64, reg *obs.Registry) *Admission {
	cfg = cfg.withDefaults()
	a := &Admission{cfg: cfg, pressure: pressure, reg: reg}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	if len(cfg.PerRoute) > 0 {
		a.routes = make(map[string]chan struct{}, len(cfg.PerRoute))
		for route, n := range cfg.PerRoute {
			if n > 0 {
				a.routes[route] = make(chan struct{}, n)
			}
		}
	}
	return a
}

// RetryAfter is the pacing hint shed responses carry.
func (a *Admission) RetryAfter() time.Duration { return a.cfg.RetryAfter }

// Admit tries to claim an ingest slot for route. On success it returns
// a release func the caller must invoke when the request finishes. On
// refusal ok is false and reason says why: "pressure" (shard queues
// over the high-watermark) or "saturated" (no slot freed within the
// queue wait).
func (a *Admission) Admit(route string) (release func(), reason string, ok bool) {
	if a.pressure != nil && a.cfg.HighWater > 0 {
		if p := a.pressure(); p >= a.cfg.HighWater {
			a.shed(route, "pressure")
			return nil, "pressure", false
		}
	}
	release = func() {}
	if a.slots != nil {
		if !a.acquire(a.slots) {
			a.shed(route, "saturated")
			return nil, "saturated", false
		}
		release = func() { <-a.slots }
	}
	if rs := a.routes[route]; rs != nil {
		if !a.acquire(rs) {
			release()
			a.shed(route, "saturated")
			return nil, "saturated", false
		}
		global := release
		release = func() { <-rs; global() }
	}
	return release, "", true
}

// acquire claims one slot, waiting up to the bounded queue wait.
func (a *Admission) acquire(slots chan struct{}) bool {
	select {
	case slots <- struct{}{}:
		return true
	default:
	}
	if a.cfg.MaxWait <= 0 {
		return false
	}
	t := time.NewTimer(a.cfg.MaxWait)
	defer t.Stop()
	select {
	case slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (a *Admission) shed(route, reason string) {
	a.lastHot.Store(time.Now().UnixNano())
	if a.reg != nil {
		a.reg.Counter("ingest_shed_total",
			"Ingest requests shed by admission control, by route and reason.",
			obs.L("route", route), obs.L("reason", reason)).Inc()
	}
}

// Hot reports whether ingest is currently under overload: the shard
// queues are over the high-watermark, or admission shed a request
// within the last two Retry-After windows. The serving tier's pressure
// valve keys on this to serve the last published generation instead of
// competing with ingest for a fresh snapshot barrier.
func (a *Admission) Hot() bool {
	if a.pressure != nil && a.cfg.HighWater > 0 && a.pressure() >= a.cfg.HighWater {
		return true
	}
	last := a.lastHot.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < 2*a.cfg.RetryAfter
}

// retryAfterHeader renders a Retry-After value (integer seconds,
// rounded up so a sub-second hint never becomes "0").
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
