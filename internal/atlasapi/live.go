package atlasapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/obs"
	"dynaddr/internal/stats"
	"dynaddr/internal/stream"
)

// LiveServer publishes a stream.Ingester over HTTP: the write side
// accepts record batches, the read side answers incremental-analysis
// queries.
//
//	POST /api/v2/stream/records           any record mix; codec negotiated by
//	                                      Content-Type (framed binary via
//	                                      application/x-atlas-binary, or the
//	                                      NDJSON envelope fallback)
//	POST /api/v1/stream/probes            deprecated: probe metadata (archive JSON)
//	POST /api/v1/stream/connlogs?probe=N  deprecated: sessions (connection-history text)
//	POST /api/v1/stream/kroot             deprecated: ping results (NDJSON)
//	POST /api/v1/stream/uptime            deprecated: uptime reports (NDJSON)
//	GET  /api/v1/live/summary             stream-wide snapshot (JSON)
//	GET  /api/v1/live/as/{asn}            one AS's aggregates (JSON)
//	GET  /api/v1/live/cursor?probe=N      a probe's resume cursor (JSON)
//	GET  /api/v1/live/analysis            paper tables/figures computed live (JSON)
//
// The v1 stream routes are shims over the v2 dispatch core, kept for
// producers that still speak the batch tier's per-kind wire formats;
// they answer with a Deprecation header and can be disabled entirely
// with WithV1Routes(false).
//
// LiveServer is an http.Handler; mount it on any mux.
type LiveServer struct {
	ing *stream.Ingester
	mux *http.ServeMux

	reg      *obs.Registry
	maxBatch int64
	v1       bool
}

// NewLiveServer wraps an ingester. The caller owns the ingester's
// lifecycle; closing it makes ingest endpoints return 503.
func NewLiveServer(ing *stream.Ingester, opts ...LiveOption) *LiveServer {
	s := &LiveServer{ing: ing, mux: http.NewServeMux(), maxBatch: DefaultMaxBatchBytes, v1: true}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc(RouteStreamRecords, s.postRecords)
	s.mux.HandleFunc("/api/v1/stream/probes", s.postProbes)
	s.mux.HandleFunc("/api/v1/stream/connlogs", s.postConnLogs)
	s.mux.HandleFunc("/api/v1/stream/kroot", s.postKRoot)
	s.mux.HandleFunc("/api/v1/stream/uptime", s.postUptime)
	s.mux.HandleFunc("/api/v1/live/summary", s.summary)
	s.mux.HandleFunc("/api/v1/live/as/", s.asDetail)
	s.mux.HandleFunc("/api/v1/live/cursor", s.cursor)
	s.mux.HandleFunc("/api/v1/live/analysis", s.analysis)
	return s
}

// ServeHTTP implements http.Handler.
func (s *LiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func ingestError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, stream.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or the deadline fired while the send was
		// blocked on backpressure — a capacity condition, not a malformed
		// request. 503 tells a well-behaved producer to back off and retry.
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

// respondAccepted reports how many records an ingest call took.
func respondAccepted(w http.ResponseWriter, n int) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
}

func (s *LiveServer) postProbes(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, func(ctx context.Context, body io.Reader) (int, error) {
		probes, err := ParseProbeArchive(body)
		if err != nil {
			return 0, err
		}
		for i, m := range probes {
			if err := s.ing.MetaContext(ctx, m); err != nil {
				return i, fmt.Errorf("probe %d of %d: %w", i+1, len(probes), err)
			}
		}
		return len(probes), nil
	})
}

func (s *LiveServer) postConnLogs(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, func(ctx context.Context, body io.Reader) (int, error) {
		idStr := r.URL.Query().Get("probe")
		id, err := strconv.Atoi(idStr)
		if err != nil || id <= 0 {
			return 0, fmt.Errorf("bad probe id %q", idStr)
		}
		entries, err := ParseConnectionHistory(body, atlasdata.ProbeID(id))
		if err != nil {
			return 0, err
		}
		for i, e := range entries {
			if err := s.ing.ConnLogContext(ctx, e); err != nil {
				return i, fmt.Errorf("entry %d of %d: %w", i+1, len(entries), err)
			}
		}
		return len(entries), nil
	})
}

func (s *LiveServer) postKRoot(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, func(ctx context.Context, body io.Reader) (int, error) {
		rounds, err := ParseKRootResults(body)
		if err != nil {
			return 0, err
		}
		for i, k := range rounds {
			if err := s.ing.KRootContext(ctx, k); err != nil {
				return i, fmt.Errorf("round %d of %d: %w", i+1, len(rounds), err)
			}
		}
		return len(rounds), nil
	})
}

func (s *LiveServer) postUptime(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, func(ctx context.Context, body io.Reader) (int, error) {
		recs, err := ParseUptimeResults(body)
		if err != nil {
			return 0, err
		}
		for i, u := range recs {
			if err := s.ing.UptimeContext(ctx, u); err != nil {
				return i, fmt.Errorf("record %d of %d: %w", i+1, len(recs), err)
			}
		}
		return len(recs), nil
	})
}

// liveSummary is the JSON shape of /api/v1/live/summary.
type liveSummary struct {
	Shards              int                 `json:"shards"`
	Records             stream.RecordCounts `json:"records"`
	Probes              int                 `json:"probes"`
	Unregistered        int                 `json:"unregistered"`
	Categories          map[string]int      `json:"categories"`
	GeoProbes           int                 `json:"geo_probes"`
	ASProbes            int                 `json:"as_probes"`
	Changes             int64               `json:"changes"`
	NetworkOutages      int64               `json:"network_outages"`
	Reboots             int64               `json:"reboots"`
	OutageLinkedChanges int64               `json:"outage_linked_changes"`
	OpenLossRuns        int                 `json:"open_loss_runs"`
	ASes                []uint32            `json:"ases"`
}

// snapshot takes a point-in-time view bound to the request: if the
// client disconnects while the snapshot marker is queued behind
// backpressure, the handler returns 503 instead of blocking a server
// goroutine indefinitely.
func (s *LiveServer) snapshot(w http.ResponseWriter, r *http.Request) *stream.Snapshot {
	snap, err := s.ing.SnapshotContext(r.Context())
	if err != nil {
		ingestError(w, err)
		return nil
	}
	return snap
}

func (s *LiveServer) summary(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	out := liveSummary{
		Shards:              snap.Shards,
		Records:             snap.Records,
		Probes:              snap.Probes,
		Unregistered:        snap.Unregistered,
		Categories:          make(map[string]int, len(snap.Categories)),
		GeoProbes:           snap.GeoProbes,
		ASProbes:            snap.ASProbes,
		Changes:             snap.Changes,
		NetworkOutages:      snap.NetworkOutages,
		Reboots:             snap.Reboots,
		OutageLinkedChanges: snap.OutageLinkedChanges,
		OpenLossRuns:        snap.OpenLossRuns,
		ASes:                snap.ASNs(),
	}
	for cat, n := range snap.Categories {
		out.Categories[cat.String()] = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// cursor answers a producer's resume query after a restart: how many
// records of each kind the ingester has durably consumed for a probe.
// A producer that skips that many records per kind resumes gap-free and
// duplicate-free (the per-shard WAL preserves per-probe order).
func (s *LiveServer) cursor(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("probe")
	id, err := strconv.Atoi(idStr)
	if err != nil || id <= 0 {
		http.Error(w, fmt.Sprintf("bad probe id %q", idStr), http.StatusBadRequest)
		return
	}
	cur, err := s.ing.Cursor(r.Context(), atlasdata.ProbeID(id))
	if err != nil {
		ingestError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(cur); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// analysis serves the full paper-answer fold — periodic renumbering,
// outage attribution, prefix dynamics, churn — computed from the
// ingester's live detector state at a barrier bound to the request.
// 404 distinguishes "this ingester runs without the analysis engine"
// from the transient 503s backpressure produces.
func (s *LiveServer) analysis(w http.ResponseWriter, r *http.Request) {
	res, err := s.ing.AnalysisContext(r.Context())
	if err != nil {
		if errors.Is(err, stream.ErrAnalysisDisabled) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		ingestError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(res); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// liveASDetail is the JSON shape of /api/v1/live/as/{asn}.
type liveASDetail struct {
	ASN                 uint32        `json:"asn"`
	Probes              int           `json:"probes"`
	Sessions            int64         `json:"sessions"`
	Changes             int64         `json:"changes"`
	NetworkOutages      int64         `json:"network_outages"`
	Reboots             int64         `json:"reboots"`
	OutageLinkedChanges int64         `json:"outage_linked_changes"`
	TotalHours          float64       `json:"total_hours"`
	Modes               []stats.Point `json:"modes,omitempty"`
	CDF                 []stats.Point `json:"cdf,omitempty"`
}

// modeThreshold is the exact-value mass fraction past which a duration
// counts as a renumbering mode in live AS queries (the paper's vertical
// CDF segments).
const modeThreshold = 0.05

func (s *LiveServer) asDetail(w http.ResponseWriter, r *http.Request) {
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/api/v1/live/as/"), "/")
	asn, err := strconv.ParseUint(rest, 10, 32)
	if err != nil || asn == 0 {
		http.Error(w, fmt.Sprintf("bad asn %q", rest), http.StatusBadRequest)
		return
	}
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	agg := snap.AS(uint32(asn))
	if agg == nil {
		http.Error(w, fmt.Sprintf("no analyzable probes in AS%d", asn), http.StatusNotFound)
		return
	}
	out := liveASDetail{
		ASN:                 agg.ASN,
		Probes:              agg.Probes,
		Sessions:            agg.Sessions,
		Changes:             agg.Changes,
		NetworkOutages:      agg.NetworkOutages,
		Reboots:             agg.Reboots,
		OutageLinkedChanges: agg.OutageLinkedChanges,
		TotalHours:          agg.TTF.Total(),
		Modes:               agg.TTF.Modes(modeThreshold),
		CDF:                 agg.TTF.CDF(),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
