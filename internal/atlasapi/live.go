package atlasapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/obs"
	"dynaddr/internal/serve"
	"dynaddr/internal/stream"
)

// LiveServer publishes a stream.Ingester over HTTP: the write side
// accepts record batches, the read side answers incremental-analysis
// queries.
//
//	POST /api/v2/stream/records           any record mix; codec negotiated by
//	                                      Content-Type (framed binary via
//	                                      application/x-atlas-binary, or the
//	                                      NDJSON envelope fallback)
//	POST /api/v1/stream/probes            deprecated: probe metadata (archive JSON)
//	POST /api/v1/stream/connlogs?probe=N  deprecated: sessions (connection-history text)
//	POST /api/v1/stream/kroot             deprecated: ping results (NDJSON)
//	POST /api/v1/stream/uptime            deprecated: uptime reports (NDJSON)
//	GET  /api/v1/live/summary             stream-wide snapshot (JSON)
//	GET  /api/v1/live/as/{asn}            one AS's aggregates (JSON)
//	GET  /api/v1/live/continents          per-continent aggregates, Figure 1 (JSON)
//	GET  /api/v1/live/cursor?probe=N      a probe's resume cursor (JSON)
//	GET  /api/v1/live/analysis            paper tables/figures computed live (JSON)
//	GET  /api/v1/live/deadletter          quarantine counts and recent samples (JSON)
//
// Every live GET carries an ETag keyed on (checkpoint generation,
// applied sequence) and honours If-None-Match with 304; Cache-Control
// is no-cache, so intermediaries revalidate rather than serve blind.
// With WithServeTier the snapshot-derived endpoints are served from the
// tier's pinned generations — byte-identical to the authoritative fold
// (both render through internal/serve) with bounded staleness. Cursors
// always take an authoritative barrier: a stale cursor would make a
// resuming producer re-send applied records.
//
// Errors are answered in a JSON envelope {"error": ..., "status": ...}.
// 4xx/503 bodies describe the client or capacity condition; 500 bodies
// are generic, with the real error logged server-side (WithErrorLog).
//
// The v1 stream routes are shims over the v2 dispatch core, kept for
// producers that still speak the batch tier's per-kind wire formats;
// they answer with a Deprecation header and can be disabled entirely
// with WithV1Routes(false).
//
// LiveServer is an http.Handler; mount it on any mux.
type LiveServer struct {
	ing *stream.Ingester
	mux *http.ServeMux

	reg      *obs.Registry
	tier     *serve.Tier
	adm      *Admission
	logf     func(format string, args ...any)
	maxBatch int64
	v1       bool

	// Cluster peer mode (WithClusterNode): the inter-peer endpoints are
	// mounted and labelled with this node ID.
	nodeID  string
	cluster bool
}

// NewLiveServer wraps an ingester. The caller owns the ingester's
// lifecycle; closing it makes ingest endpoints return 503.
func NewLiveServer(ing *stream.Ingester, opts ...LiveOption) *LiveServer {
	s := &LiveServer{ing: ing, mux: http.NewServeMux(), maxBatch: DefaultMaxBatchBytes, v1: true, logf: log.Printf}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc(RouteStreamRecords, s.postRecords)
	s.mux.HandleFunc("/api/v1/stream/probes", s.postProbes)
	s.mux.HandleFunc("/api/v1/stream/connlogs", s.postConnLogs)
	s.mux.HandleFunc("/api/v1/stream/kroot", s.postKRoot)
	s.mux.HandleFunc("/api/v1/stream/uptime", s.postUptime)
	s.mux.HandleFunc("/api/v1/live/summary", s.summary)
	s.mux.HandleFunc("/api/v1/live/as/", s.asDetail)
	s.mux.HandleFunc("/api/v1/live/continents", s.continents)
	s.mux.HandleFunc("/api/v1/live/cursor", s.cursor)
	s.mux.HandleFunc("/api/v1/live/analysis", s.analysis)
	s.mux.HandleFunc("/api/v1/live/deadletter", s.deadletter)
	if s.cluster {
		s.mux.HandleFunc(RouteClusterView, s.clusterView)
		s.mux.HandleFunc(RouteClusterAnalysisView, s.clusterAnalysisView)
		s.mux.HandleFunc(RouteClusterInfo, s.clusterInfo)
		s.mux.HandleFunc(RouteClusterRelease, s.clusterRelease)
		s.mux.HandleFunc(RouteClusterAdopt, s.clusterAdopt)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *LiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorEnvelope is the JSON error shape every live endpoint answers
// with — including paths that previously fell through to http.Error's
// text/plain, which broke clients keyed on the advertised Content-Type.
// Ingest failures additionally report Accepted: the prefix of the batch
// the server consumed (routed or quarantined) before the error, which a
// partial-accept producer trims from its buffer instead of re-sending.
type errorEnvelope struct {
	Error    string `json:"error"`
	Status   int    `json:"status"`
	Accepted int    `json:"accepted,omitempty"`
}

// apiError writes the envelope. msg must describe only the client's
// request or the service's capacity, never internal state — 500 paths
// go through internalError instead.
func apiError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorEnvelope{Error: msg, Status: code}) //nolint:errcheck // headers are gone; nothing to do
}

// internalError answers a generic 500 and logs the real error
// server-side: internal error text (paths, addresses, shard state) is
// operator information, not API surface.
func (s *LiveServer) internalError(w http.ResponseWriter, r *http.Request, err error) {
	s.logf("atlasapi: %s %s: %v", r.Method, r.URL.Path, err)
	apiError(w, http.StatusInternalServerError, "internal server error")
}

// retryAfter is the pacing hint capacity responses (429/503) carry.
func (s *LiveServer) retryAfter() time.Duration {
	if s.adm != nil {
		return s.adm.RetryAfter()
	}
	return DefaultRetryAfter
}

// ingestError maps an ingest failure to its status: capacity
// conditions (closed ingester, degraded shards, backpressure the
// client abandoned) answer 503 with a Retry-After pacing hint, and
// everything else is the client's 400. consumed is the batch prefix
// already routed or quarantined, reported so the producer can trim.
func (s *LiveServer) ingestError(w http.ResponseWriter, err error, consumed int) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, stream.ErrClosed), errors.Is(err, stream.ErrDegraded):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or the deadline fired while the send was
		// blocked on backpressure — a capacity condition, not a malformed
		// request. 503 tells a well-behaved producer to back off and retry.
		code = http.StatusServiceUnavailable
	case errors.Is(err, stream.ErrNotOwner):
		// A cluster peer got records for a partition it does not own —
		// the coordinator (or a stale producer) misrouted. 421 tells the
		// sender to re-resolve ownership, not to retry here.
		code = http.StatusMisdirectedRequest
	}
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterHeader(s.retryAfter()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorEnvelope{Error: err.Error(), Status: code, Accepted: consumed}) //nolint:errcheck // headers are gone; nothing to do
}

// respondAccepted reports how many records an ingest call took. The
// "accepted" shape is pinned by producers and the CI smokes; the
// quarantined count appears only when records were dead-lettered.
func respondAccepted(w http.ResponseWriter, st stream.WireStats) {
	w.Header().Set("Content-Type", "application/json")
	if st.Quarantined > 0 {
		fmt.Fprintf(w, "{\"accepted\": %d, \"quarantined\": %d}\n", st.Accepted, st.Quarantined)
		return
	}
	fmt.Fprintf(w, "{\"accepted\": %d}\n", st.Accepted)
}

func (s *LiveServer) postProbes(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, "probes", func(ctx context.Context, body io.Reader) (int, error) {
		probes, err := ParseProbeArchive(body)
		if err != nil {
			return 0, err
		}
		for i, m := range probes {
			if err := s.ing.MetaContext(ctx, m); err != nil {
				return i, fmt.Errorf("probe %d of %d: %w", i+1, len(probes), err)
			}
		}
		return len(probes), nil
	})
}

func (s *LiveServer) postConnLogs(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, "connlogs", func(ctx context.Context, body io.Reader) (int, error) {
		idStr := r.URL.Query().Get("probe")
		id, err := strconv.Atoi(idStr)
		if err != nil || id <= 0 {
			return 0, fmt.Errorf("bad probe id %q", idStr)
		}
		entries, err := ParseConnectionHistory(body, atlasdata.ProbeID(id))
		if err != nil {
			return 0, err
		}
		for i, e := range entries {
			if err := s.ing.ConnLogContext(ctx, e); err != nil {
				return i, fmt.Errorf("entry %d of %d: %w", i+1, len(entries), err)
			}
		}
		return len(entries), nil
	})
}

func (s *LiveServer) postKRoot(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, "kroot", func(ctx context.Context, body io.Reader) (int, error) {
		rounds, err := ParseKRootResults(body)
		if err != nil {
			return 0, err
		}
		for i, k := range rounds {
			if err := s.ing.KRootContext(ctx, k); err != nil {
				return i, fmt.Errorf("round %d of %d: %w", i+1, len(rounds), err)
			}
		}
		return len(rounds), nil
	})
}

func (s *LiveServer) postUptime(w http.ResponseWriter, r *http.Request) {
	s.v1Shim(w, r, "uptime", func(ctx context.Context, body io.Reader) (int, error) {
		recs, err := ParseUptimeResults(body)
		if err != nil {
			return 0, err
		}
		for i, u := range recs {
			if err := s.ing.UptimeContext(ctx, u); err != nil {
				return i, fmt.Errorf("record %d of %d: %w", i+1, len(recs), err)
			}
		}
		return len(recs), nil
	})
}

// writeJSON answers a fully rendered artifact under conditional-GET
// semantics: the ETag (keyed on checkpoint generation + applied
// sequence) goes out on hits and misses alike, If-None-Match turns a
// revalidation into a bodyless 304, and Cache-Control: no-cache makes
// intermediaries revalidate instead of serving stale blind. Rendering
// before writing is also what retired the half-written-body 500s: by
// the time any byte leaves, the body cannot fail anymore.
func (s *LiveServer) writeJSON(w http.ResponseWriter, r *http.Request, route, etag string, body []byte) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if serve.ETagMatch(r.Header.Get("If-None-Match"), etag) {
		s.tier.ObserveRequest(route, true)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.tier.ObserveRequest(route, false)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

// generation pins the serving tier's current read view, refreshing if
// the staleness window lapsed. Callers must only use it when s.tier is
// non-nil.
//
// Pressure valve: while ingest is overloaded (admission is shedding or
// the shard queues are over the high-watermark), a lapsed staleness
// window would make every read race ingest for a snapshot barrier —
// exactly when barriers are slowest. Reads keep serving the last
// published generation instead; freshness resumes when ingest cools.
func (s *LiveServer) generation(w http.ResponseWriter, r *http.Request) *serve.Generation {
	if s.adm != nil && s.adm.Hot() {
		if gen := s.tier.Current(); gen != nil {
			return gen
		}
	}
	gen, err := s.tier.Generation(r.Context())
	if err != nil {
		s.ingestError(w, err, 0)
		return nil
	}
	return gen
}

// snapshot takes a point-in-time view bound to the request: if the
// client disconnects while the snapshot marker is queued behind
// backpressure, the handler returns 503 instead of blocking a server
// goroutine indefinitely.
func (s *LiveServer) snapshot(w http.ResponseWriter, r *http.Request) *stream.Snapshot {
	snap, err := s.ing.SnapshotContext(r.Context())
	if err != nil {
		s.ingestError(w, err, 0)
		return nil
	}
	return snap
}

func (s *LiveServer) summary(w http.ResponseWriter, r *http.Request) {
	if s.tier != nil {
		if gen := s.generation(w, r); gen != nil {
			s.writeJSON(w, r, "summary", gen.ETag(), gen.SummaryJSON())
		}
		return
	}
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	body, err := serve.RenderSummary(snap)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	s.writeJSON(w, r, "summary", serve.ETag(snap.Version), body)
}

// continents serves the per-continent aggregates — the paper's Figure 1
// grouping as a continuously updated product.
func (s *LiveServer) continents(w http.ResponseWriter, r *http.Request) {
	if s.tier != nil {
		if gen := s.generation(w, r); gen != nil {
			s.writeJSON(w, r, "continents", gen.ETag(), gen.ContinentsJSON())
		}
		return
	}
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	body, err := serve.RenderContinents(snap)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	s.writeJSON(w, r, "continents", serve.ETag(snap.Version), body)
}

// cursor answers a producer's resume query after a restart: how many
// records of each kind the ingester has durably consumed for a probe.
// A producer that skips that many records per kind resumes gap-free and
// duplicate-free (the per-shard WAL preserves per-probe order). The
// cursor is never served from a cached generation — it validates with
// the owning shard's version instead, so revalidation still works.
func (s *LiveServer) cursor(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("probe")
	id, err := strconv.Atoi(idStr)
	if err != nil || id <= 0 {
		apiError(w, http.StatusBadRequest, fmt.Sprintf("bad probe id %q", idStr))
		return
	}
	cur, ver, err := s.ing.CursorVersioned(r.Context(), atlasdata.ProbeID(id))
	if err != nil {
		s.ingestError(w, err, 0)
		return
	}
	body, err := serve.RenderCursor(cur)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	s.writeJSON(w, r, "cursor", serve.ETag(ver), body)
}

// analysis serves the full paper-answer fold — periodic renumbering,
// outage attribution, prefix dynamics, churn — from the pinned
// generation when the tier is on, else computed at a barrier bound to
// the request. 404 distinguishes "this ingester runs without the
// analysis engine" from the transient 503s backpressure produces.
func (s *LiveServer) analysis(w http.ResponseWriter, r *http.Request) {
	if s.tier != nil {
		gen := s.generation(w, r)
		if gen == nil {
			return
		}
		body := gen.AnalysisJSON()
		if body == nil {
			apiError(w, http.StatusNotFound, stream.ErrAnalysisDisabled.Error())
			return
		}
		s.writeJSON(w, r, "analysis", gen.AnalysisETag(), body)
		return
	}
	res, ver, err := s.ing.AnalysisVersioned(r.Context())
	if err != nil {
		if errors.Is(err, stream.ErrAnalysisDisabled) {
			apiError(w, http.StatusNotFound, err.Error())
			return
		}
		s.ingestError(w, err, 0)
		return
	}
	body, err := serve.RenderAnalysis(res)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	s.writeJSON(w, r, "analysis", serve.ETag(ver), body)
}

// deadletter reports the quarantine state: process-lifetime counts by
// rejection reason plus a ring of recent samples (payloads omitted —
// drain the durable logs with churnctl -deadletter for those). It is an
// operator endpoint: no caching, always computed fresh, never behind
// the serve tier or admission control.
func (s *LiveServer) deadletter(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.ing.DeadLetter()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(st) //nolint:errcheck // client gone; nothing to do
}

func (s *LiveServer) asDetail(w http.ResponseWriter, r *http.Request) {
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/api/v1/live/as/"), "/")
	asn, err := strconv.ParseUint(rest, 10, 32)
	if err != nil || asn == 0 {
		apiError(w, http.StatusBadRequest, fmt.Sprintf("bad asn %q", rest))
		return
	}
	if s.tier != nil {
		gen := s.generation(w, r)
		if gen == nil {
			return
		}
		body, ok, err := gen.ASJSON(uint32(asn))
		if err != nil {
			s.internalError(w, r, err)
			return
		}
		if !ok {
			apiError(w, http.StatusNotFound, fmt.Sprintf("no analyzable probes in AS%d", asn))
			return
		}
		s.writeJSON(w, r, "as", gen.ETag(), body)
		return
	}
	snap := s.snapshot(w, r)
	if snap == nil {
		return
	}
	agg := snap.AS(uint32(asn))
	if agg == nil {
		apiError(w, http.StatusNotFound, fmt.Sprintf("no analyzable probes in AS%d", asn))
		return
	}
	body, err := serve.RenderASDetail(agg)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	s.writeJSON(w, r, "as", serve.ETag(snap.Version), body)
}
