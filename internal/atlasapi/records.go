package atlasapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/obs"
	"dynaddr/internal/serve"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
)

// RouteStreamRecords is the v2 ingest endpoint: one POST route for all
// four record kinds, codec negotiated via Content-Type. The v1
// per-kind routes are deprecated shims over the same dispatch core.
const RouteStreamRecords = "/api/v2/stream/records"

// Content types the v2 endpoint negotiates.
const (
	// ContentTypeBinary selects the internal/wire framed binary codec —
	// the zero-allocation hot path.
	ContentTypeBinary = "application/x-atlas-binary"
	// ContentTypeNDJSON selects the NDJSON envelope fallback: one JSON
	// object per line with a "kind" discriminator.
	ContentTypeNDJSON = "application/x-ndjson"
)

// DefaultMaxBatchBytes bounds a v2 batch body unless WithMaxBatchBytes
// overrides it. It matches the wire format's per-frame payload bound.
const DefaultMaxBatchBytes = 16 << 20

// Codec names an ingest encoding, used as the producer option and the
// per-codec metrics label.
type Codec string

// Ingest codecs, most compatible first.
const (
	// CodecJSON is the v1 surface: per-kind routes speaking the batch
	// tier's text/JSON wire formats.
	CodecJSON Codec = "json"
	// CodecNDJSON is the v2 NDJSON envelope.
	CodecNDJSON Codec = "ndjson"
	// CodecBinary is the v2 framed binary codec.
	CodecBinary Codec = "binary"
)

// LiveOption configures a LiveServer.
type LiveOption func(*LiveServer)

// WithLiveMetrics attaches an obs registry: batch and record counters
// split by codec (accepted and rejected).
func WithLiveMetrics(reg *obs.Registry) LiveOption {
	return func(s *LiveServer) { s.reg = reg }
}

// WithMaxBatchBytes bounds v2 batch bodies (default
// DefaultMaxBatchBytes). Oversized bodies are rejected with 400 before
// they buffer.
func WithMaxBatchBytes(n int64) LiveOption {
	return func(s *LiveServer) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithV1Routes toggles the deprecated v1 per-kind stream routes
// (default on). When off they answer 410 Gone, pointing at the v2
// endpoint.
func WithV1Routes(on bool) LiveOption {
	return func(s *LiveServer) { s.v1 = on }
}

// WithServeTier serves the snapshot-derived live GETs (summary,
// continents, AS detail, analysis) from the tier's pinned generations
// instead of taking an authoritative barrier per request. The tier must
// wrap the same ingester.
func WithServeTier(t *serve.Tier) LiveOption {
	return func(s *LiveServer) { s.tier = t }
}

// WithAdmission gates the ingest routes behind an admission controller:
// requests beyond its in-flight budget (or arriving while the shard
// queues are over the high-watermark) are shed with 429 and a
// Retry-After pacing hint instead of queueing without bound. The same
// controller drives the serve-tier pressure valve.
func WithAdmission(a *Admission) LiveOption {
	return func(s *LiveServer) { s.adm = a }
}

// WithErrorLog routes server-side error logging (the real text behind
// generic 500 bodies). Default log.Printf; nil discards.
func WithErrorLog(logf func(format string, args ...any)) LiveOption {
	return func(s *LiveServer) {
		if logf == nil {
			logf = func(string, ...any) {}
		}
		s.logf = logf
	}
}

// batchPool recycles body buffers across v2 batch requests so steady
// ingest does not re-grow a buffer per POST.
var batchPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// batchPoolFactor caps what returns to batchPool, as a multiple of the
// configured batch bound. bytes.Buffer.ReadFrom over-allocates past the
// body size, so a cap of exactly maxBatch would evict every full-size
// batch's buffer and defeat the pool; 4x keeps those while refusing to
// pin pathological growth forever.
const batchPoolFactor = 4

// poolable reports whether a buffer of capacity c should be pooled
// under batch bound max.
func poolable(c, max int64) bool { return c <= batchPoolFactor*max }

// putBatchBuf returns a body buffer to the pool, dropping oversized
// ones for the garbage collector instead.
func (s *LiveServer) putBatchBuf(buf *bytes.Buffer) {
	if !poolable(int64(buf.Cap()), s.maxBatch) {
		return
	}
	buf.Reset()
	batchPool.Put(buf)
}

// negotiateCodec maps a request Content-Type to an ingest codec. An
// absent Content-Type falls back to the NDJSON envelope; an unknown
// one is a 415.
func negotiateCodec(contentType string) (Codec, error) {
	if contentType == "" {
		return CodecNDJSON, nil
	}
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return "", fmt.Errorf("unparseable Content-Type %q", contentType)
	}
	switch mt {
	case ContentTypeBinary:
		return CodecBinary, nil
	case ContentTypeNDJSON, "application/json":
		return CodecNDJSON, nil
	}
	return "", fmt.Errorf("unsupported Content-Type %q (want %s or %s)", mt, ContentTypeBinary, ContentTypeNDJSON)
}

func (s *LiveServer) batchAccepted(codec Codec, n int) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("ingest_batches_total",
		"Ingest batches accepted, by codec.", obs.L("codec", string(codec))).Inc()
	s.reg.Counter("ingest_batch_records_total",
		"Records accepted from ingest batches, by codec.", obs.L("codec", string(codec))).Add(int64(n))
}

func (s *LiveServer) batchRejected(codec Codec) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("ingest_batches_rejected_total",
		"Ingest batches rejected, by codec.", obs.L("codec", string(codec))).Inc()
}

// admit claims an ingest slot for route, answering 429 with a
// Retry-After pacing hint when admission refuses. The returned release
// must be deferred when ok.
func (s *LiveServer) admit(w http.ResponseWriter, route string) (release func(), ok bool) {
	if s.adm == nil {
		return func() {}, true
	}
	release, reason, ok := s.adm.Admit(route)
	if !ok {
		w.Header().Set("Retry-After", retryAfterHeader(s.adm.RetryAfter()))
		apiError(w, http.StatusTooManyRequests, "ingest overloaded ("+reason+"); retry after the indicated delay")
		return nil, false
	}
	return release, true
}

// postRecords is the v2 dispatch core: admission, codec negotiation,
// decode straight into the shards, answer {"accepted": n}.
func (s *LiveServer) postRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	release, ok := s.admit(w, "v2")
	if !ok {
		return
	}
	defer release()
	codec, err := negotiateCodec(r.Header.Get("Content-Type"))
	if err != nil {
		s.batchRejected(Codec("unknown"))
		apiError(w, http.StatusUnsupportedMediaType, err.Error())
		return
	}
	var st stream.WireStats
	switch codec {
	case CodecBinary:
		st, err = s.ingestBinary(w, r)
	default:
		st, err = s.ingestNDJSON(w, r)
	}
	if err != nil {
		s.batchRejected(codec)
		s.ingestError(w, err, st.Consumed())
		return
	}
	s.batchAccepted(codec, st.Accepted)
	respondAccepted(w, st)
}

// ingestBinary buffers the body (pooled, bounded) and hands the raw
// frames to the ingester — no intermediate structs, zero heap
// allocations per v4 record.
func (s *LiveServer) ingestBinary(w http.ResponseWriter, r *http.Request) (stream.WireStats, error) {
	buf := batchPool.Get().(*bytes.Buffer)
	defer s.putBatchBuf(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.maxBatch)); err != nil {
		return stream.WireStats{}, fmt.Errorf("reading batch: %w", err)
	}
	return s.ing.IngestWire(r.Context(), buf.Bytes())
}

// recordEnvelope is one line of the v2 NDJSON fallback: a "kind"
// discriminator plus that kind's fields. The producer's NDJSON codec
// emits exactly this shape.
type recordEnvelope struct {
	Kind  string `json:"kind"`
	Probe int    `json:"probe"`

	// meta
	Country       string   `json:"country,omitempty"`
	Version       int      `json:"version,omitempty"`
	Tags          []string `json:"tags,omitempty"`
	ConnectedDays float64  `json:"connected_days,omitempty"`

	// connlog ("addr" carries either family; a literal with a colon is v6)
	Start int64  `json:"start,omitempty"`
	End   int64  `json:"end,omitempty"`
	Addr  string `json:"addr,omitempty"`

	// kroot / uptime
	Timestamp int64 `json:"timestamp,omitempty"`
	Sent      int   `json:"sent,omitempty"`
	Success   int   `json:"success,omitempty"`
	LTS       int64 `json:"lts,omitempty"`
	Uptime    int64 `json:"uptime,omitempty"`
}

// ingest dispatches one envelope to the ingester's typed entry points.
func (e *recordEnvelope) ingest(ctx context.Context, ing *stream.Ingester) error {
	id := atlasdata.ProbeID(e.Probe)
	switch e.Kind {
	case "meta":
		return ing.MetaContext(ctx, atlasdata.ProbeMeta{
			ID:            id,
			Country:       e.Country,
			Version:       atlasdata.ProbeVersion(e.Version),
			Tags:          e.Tags,
			ConnectedDays: e.ConnectedDays,
		})
	case "connlog":
		entry := atlasdata.ConnLogEntry{
			Probe: id,
			Start: simclock.Time(e.Start),
			End:   simclock.Time(e.End),
		}
		if strings.Contains(e.Addr, ":") {
			entry.Family = atlasdata.V6
			entry.V6Addr = e.Addr
		} else {
			addr, err := ip4.ParseAddr(e.Addr)
			if err != nil {
				return err
			}
			entry.Family = atlasdata.V4
			entry.Addr = addr
		}
		return ing.ConnLogContext(ctx, entry)
	case "kroot":
		return ing.KRootContext(ctx, atlasdata.KRootRound{
			Probe:     id,
			Timestamp: simclock.Time(e.Timestamp),
			Sent:      e.Sent,
			Success:   e.Success,
			LTS:       e.LTS,
		})
	case "uptime":
		return ing.UptimeContext(ctx, atlasdata.UptimeRecord{
			Probe:     id,
			Timestamp: simclock.Time(e.Timestamp),
			Uptime:    e.Uptime,
		})
	}
	return fmt.Errorf("unknown record kind %q", e.Kind)
}

// ingestAbort reports whether an ingest failure is a capacity or
// lifecycle condition that must fail the batch (closed or degraded
// ingester, cancelled request) rather than a per-record defect the
// dead-letter queue absorbs.
func ingestAbort(err error) bool {
	return errors.Is(err, stream.ErrClosed) || errors.Is(err, stream.ErrDegraded) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// knownEnvelopeKind reports whether an NDJSON envelope names one of the
// four record streams.
func knownEnvelopeKind(k string) bool {
	switch k {
	case "meta", "connlog", "kroot", "uptime":
		return true
	}
	return false
}

// ingestNDJSON streams the envelope fallback line by line. A line that
// fails to parse, names an unknown kind, or fails validation is
// quarantined to the dead-letter queue and the batch continues; only
// framing failures of the batch itself (oversize, truncated body) and
// capacity conditions abort.
func (s *LiveServer) ingestNDJSON(w http.ResponseWriter, r *http.Request) (stream.WireStats, error) {
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.maxBatch))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var st stream.WireStats
	quar := func(kind string, probe atlasdata.ProbeID, reason string, cause error, line []byte) error {
		err := s.ing.Quarantine(r.Context(), kind, probe, reason, cause.Error(), line)
		if err != nil {
			return fmt.Errorf("record %d: quarantine: %w", st.Consumed(), err)
		}
		st.Quarantined++
		return nil
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var env recordEnvelope
		if err := json.Unmarshal(line, &env); err != nil {
			if qerr := quar("frame", 0, "decode", err, line); qerr != nil {
				return st, qerr
			}
			continue
		}
		if !knownEnvelopeKind(env.Kind) {
			err := fmt.Errorf("unknown record kind %q", env.Kind)
			if qerr := quar("frame", atlasdata.ProbeID(env.Probe), "unknown-kind", err, line); qerr != nil {
				return st, qerr
			}
			continue
		}
		if err := env.ingest(r.Context(), s.ing); err != nil {
			if ingestAbort(err) {
				return st, fmt.Errorf("record %d (%s): %w", st.Consumed(), env.Kind, err)
			}
			if qerr := quar(env.Kind, atlasdata.ProbeID(env.Probe), "validate", err, line); qerr != nil {
				return st, qerr
			}
			continue
		}
		st.Accepted++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("reading batch: %w", err)
	}
	return st, nil
}

// v1Shim frames a deprecated per-kind route over the shared
// accept/reject core: admission, deprecation headers, method check,
// per-codec counters, and the common {"accepted": n} response. route is
// the admission label ("probes", "connlogs", "kroot", "uptime").
func (s *LiveServer) v1Shim(w http.ResponseWriter, r *http.Request, route string, ingest func(ctx context.Context, body io.Reader) (int, error)) {
	if !s.v1 {
		apiError(w, http.StatusGone, "v1 stream routes disabled; POST "+RouteStreamRecords)
		return
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+RouteStreamRecords+`>; rel="successor-version"`)
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	release, ok := s.admit(w, route)
	if !ok {
		return
	}
	defer release()
	n, err := ingest(r.Context(), r.Body)
	if err != nil {
		s.batchRejected(CodecJSON)
		s.ingestError(w, err, n)
		return
	}
	s.batchAccepted(CodecJSON, n)
	respondAccepted(w, stream.WireStats{Accepted: n})
}
