package atlasapi

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/sim"
)

// TestConcurrentScrapes runs several full scrapes against one live
// Server at once. The server promises the dataset is never mutated while
// served; this locks that contract in under the race detector and checks
// every concurrent scrape assembles the identical dataset.
func TestConcurrentScrapes(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 11
	cfg.Scale = 0.03
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	type scrapeResult struct {
		ds  *atlasdata.Dataset
		err error
	}
	const scrapers = 6
	results := make([]*scrapeResult, scrapers)
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{
				BaseURL:     srv.URL,
				Months:      world.Dataset.Pfx2AS.Months(),
				Concurrency: 4,
			}
			ds, err := c.ScrapeAll()
			results[i] = &scrapeResult{ds: ds, err: err}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("scraper %d: %v", i, r.err)
		}
		if len(r.ds.Probes) != len(world.Dataset.Probes) {
			t.Errorf("scraper %d got %d probes, want %d", i, len(r.ds.Probes), len(world.Dataset.Probes))
		}
		if !reflect.DeepEqual(r.ds.ConnLogs, results[0].ds.ConnLogs) {
			t.Errorf("scraper %d assembled different connection logs", i)
		}
	}
}
