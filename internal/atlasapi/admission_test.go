package atlasapi

import (
	"testing"
	"time"

	"dynaddr/internal/obs"
)

func TestAdmissionGlobalGate(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxWait: -1}, nil, reg)

	rel1, _, ok := a.Admit("v2")
	rel2, _, ok2 := a.Admit("v2")
	if !ok || !ok2 {
		t.Fatal("first two requests must be admitted")
	}
	if _, reason, ok := a.Admit("v2"); ok || reason != "saturated" {
		t.Fatalf("third request: ok=%v reason=%q, want shed saturated", ok, reason)
	}
	if !a.Hot() {
		t.Fatal("Hot() must be true right after a shed")
	}
	if v, _ := gatherValue(t, reg, "ingest_shed_total", obs.L("route", "v2"), obs.L("reason", "saturated")); v != 1 {
		t.Fatalf("ingest_shed_total{v2,saturated} = %v, want 1", v)
	}

	// Releasing a slot readmits.
	rel1()
	rel3, _, ok := a.Admit("v2")
	if !ok {
		t.Fatal("request after release must be admitted")
	}
	rel2()
	rel3()
	// Full release: both slots available again.
	r1, _, ok1 := a.Admit("v2")
	r2, _, ok2 := a.Admit("v2")
	if !ok1 || !ok2 {
		t.Fatal("slots leaked: full release did not restore capacity")
	}
	r1()
	r2()
}

func TestAdmissionBoundedQueueWait(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxWait: 50 * time.Millisecond}, nil, nil)
	rel, _, ok := a.Admit("v2")
	if !ok {
		t.Fatal("first request must be admitted")
	}

	// A queued request is admitted when the slot frees within MaxWait.
	done := make(chan bool, 1)
	go func() {
		rel2, _, ok := a.Admit("v2")
		if ok {
			rel2()
		}
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	rel()
	if !<-done {
		t.Fatal("queued request must win the freed slot inside MaxWait")
	}

	// With the slot held past MaxWait, the wait gives up.
	rel, _, _ = a.Admit("v2")
	start := time.Now()
	if _, reason, ok := a.Admit("v2"); ok || reason != "saturated" {
		t.Fatalf("after MaxWait: ok=%v reason=%q, want shed saturated", ok, reason)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("shed after %v, want a bounded queue wait of ~50ms first", waited)
	}
	rel()
}

func TestAdmissionPerRouteGate(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxInFlight: 10,
		MaxWait:     -1,
		PerRoute:    map[string]int{"probes": 1},
	}, nil, nil)

	rel, _, ok := a.Admit("probes")
	if !ok {
		t.Fatal("first shim request must be admitted")
	}
	// The shim's own lane is full; the v2 lane is untouched.
	if _, reason, ok := a.Admit("probes"); ok || reason != "saturated" {
		t.Fatalf("second shim request: ok=%v reason=%q, want shed", ok, reason)
	}
	rel2, _, ok := a.Admit("v2")
	if !ok {
		t.Fatal("v2 must not be starved by a saturated shim route")
	}
	rel2()
	rel()
	// The per-route shed released its global slot: all 10 still usable.
	var rels []func()
	for i := 0; i < 10; i++ {
		r, _, ok := a.Admit("v2")
		if !ok {
			t.Fatalf("global slot %d unavailable: per-route shed leaked a global slot", i)
		}
		rels = append(rels, r)
	}
	for _, r := range rels {
		r()
	}
}

func TestAdmissionPressureValve(t *testing.T) {
	pressure := 0.0
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4}, func() float64 { return pressure }, nil)

	if _, _, ok := a.Admit("v2"); !ok {
		t.Fatal("low pressure must admit")
	}
	if a.Hot() {
		t.Fatal("Hot() with idle queues and no sheds")
	}

	pressure = 0.95 // over the 0.9 default high-watermark
	if _, reason, ok := a.Admit("v2"); ok || reason != "pressure" {
		t.Fatalf("over high-watermark: ok=%v reason=%q, want shed pressure", ok, reason)
	}
	if !a.Hot() {
		t.Fatal("Hot() must report the pressure overload")
	}
}

func TestRetryAfterHeader(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	} {
		if got := retryAfterHeader(tc.d); got != tc.want {
			t.Errorf("retryAfterHeader(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
