package atlasapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/serve"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
)

// liveStore maps 10.0.0.0/16 to AS64500 for the study's first month, so
// live ingest can attribute the test probe's sessions.
func liveStore(t *testing.T) *pfx2as.SnapshotStore {
	t.Helper()
	tbl, err := pfx2as.NewTable([]pfx2as.Entry{
		{Prefix: ip4.MustParsePrefix("10.0.0.0/16"), ASN: asdb.ASN(64500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := pfx2as.NewSnapshotStore()
	store.Put(201501, tbl)
	return store
}

func liveHour(h int) simclock.Time {
	return simclock.StudyStart.Add(simclock.Duration(h) * simclock.Hour)
}

func postBody(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestLiveServerEndToEnd drives one probe's records through the HTTP
// ingest endpoints in the batch wire formats and reads the analysis back
// through the live query endpoints.
func TestLiveServerEndToEnd(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: liveStore(t)})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing))
	defer srv.Close()

	// Probe metadata in the archive shape.
	var archive bytes.Buffer
	meta := []atlasdata.ProbeMeta{{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}}
	if err := WriteProbeArchive(&archive, meta); err != nil {
		t.Fatal(err)
	}
	if code, body := postBody(t, srv.URL+"/api/v1/stream/probes", archive.String()); code != 200 || !strings.Contains(body, `"accepted": 1`) {
		t.Fatalf("probes ingest: %d %q", code, body)
	}

	// Three sessions on two addresses of AS64500: two address changes,
	// one interior 24h address duration (the middle session).
	entries := []atlasdata.ConnLogEntry{
		{Probe: 206, Start: liveHour(0), End: liveHour(24), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.1")},
		{Probe: 206, Start: liveHour(25), End: liveHour(49), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.2")},
		{Probe: 206, Start: liveHour(50), End: liveHour(80), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.3")},
	}
	var history bytes.Buffer
	if err := WriteConnectionHistory(&history, 206, entries); err != nil {
		t.Fatal(err)
	}
	if code, body := postBody(t, srv.URL+"/api/v1/stream/connlogs?probe=206", history.String()); code != 200 || !strings.Contains(body, `"accepted": 3`) {
		t.Fatalf("connlogs ingest: %d %q", code, body)
	}

	// Two good ping rounds and an uptime reset (one reboot).
	var kroot bytes.Buffer
	if err := WriteKRootResults(&kroot, []atlasdata.KRootRound{
		{Probe: 206, Timestamp: liveHour(1), Sent: 3, Success: 3, LTS: 60},
		{Probe: 206, Timestamp: liveHour(2), Sent: 3, Success: 3, LTS: 55},
	}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postBody(t, srv.URL+"/api/v1/stream/kroot", kroot.String()); code != 200 {
		t.Fatalf("kroot ingest: %d", code)
	}
	var uptime bytes.Buffer
	if err := WriteUptimeResults(&uptime, []atlasdata.UptimeRecord{
		{Probe: 206, Timestamp: liveHour(10), Uptime: 10 * 3600},
		{Probe: 206, Timestamp: liveHour(20), Uptime: 600},
	}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postBody(t, srv.URL+"/api/v1/stream/uptime", uptime.String()); code != 200 {
		t.Fatalf("uptime ingest: %d", code)
	}

	// Summary reflects everything ingested so far.
	resp, err := http.Get(srv.URL + "/api/v1/live/summary")
	if err != nil {
		t.Fatal(err)
	}
	var sum serve.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := stream.RecordCounts{Meta: 1, ConnLogs: 3, KRoot: 2, Uptime: 2}
	if sum.Records != want {
		t.Errorf("summary records = %+v, want %+v", sum.Records, want)
	}
	if sum.Probes != 1 || sum.Changes != 2 || sum.Reboots != 1 {
		t.Errorf("summary = probes %d changes %d reboots %d, want 1/2/1",
			sum.Probes, sum.Changes, sum.Reboots)
	}
	if sum.Categories[core.CatAnalyzable.String()] != 1 {
		t.Errorf("categories = %v, want one analyzable probe", sum.Categories)
	}
	if len(sum.ASes) != 1 || sum.ASes[0] != 64500 {
		t.Errorf("ases = %v, want [64500]", sum.ASes)
	}

	// Per-AS detail: three sessions, two changes, the middle session's
	// 24 hours of interior address-duration mass.
	resp, err = http.Get(srv.URL + "/api/v1/live/as/64500")
	if err != nil {
		t.Fatal(err)
	}
	var det serve.ASDetail
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if det.ASN != 64500 || det.Probes != 1 || det.Sessions != 3 || det.Changes != 2 {
		t.Errorf("as detail = %+v", det)
	}
	if det.TotalHours != 24 {
		t.Errorf("TotalHours = %v, want 24", det.TotalHours)
	}
	if len(det.CDF) == 0 {
		t.Error("as detail missing CDF")
	}

	// Cursor: the probe's resume position reflects every record above.
	resp, err = http.Get(srv.URL + "/api/v1/live/cursor?probe=206")
	if err != nil {
		t.Fatal(err)
	}
	var cur stream.ProbeCursor
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantCur := stream.ProbeCursor{Probe: 206, Meta: 1, ConnLogs: 3, KRoot: 2, Uptime: 2}
	if cur != wantCur {
		t.Errorf("cursor = %+v, want %+v", cur, wantCur)
	}
	// An unseen probe has the zero cursor, not an error.
	resp, err = http.Get(srv.URL + "/api/v1/live/cursor?probe=999")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cur != (stream.ProbeCursor{Probe: 999}) {
		t.Errorf("unseen probe cursor = %+v, want zero counts", cur)
	}
	if resp, err := http.Get(srv.URL + "/api/v1/live/cursor?probe=bogus"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor probe id: %d, want 400", resp.StatusCode)
	}
}

// TestLiveAnalysisEndpoint reads the full paper-answer fold back over
// HTTP from an analysis-enabled ingester, and pins the 404 an
// analysis-disabled ingester answers with.
func TestLiveAnalysisEndpoint(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: liveStore(t), Analysis: true})
	defer ing.Close()
	srv := httptest.NewServer(NewLiveServer(ing))
	defer srv.Close()

	var archive bytes.Buffer
	if err := WriteProbeArchive(&archive, []atlasdata.ProbeMeta{
		{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200},
	}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postBody(t, srv.URL+"/api/v1/stream/probes", archive.String()); code != 200 {
		t.Fatalf("probes ingest: %d", code)
	}
	entries := []atlasdata.ConnLogEntry{
		{Probe: 206, Start: liveHour(0), End: liveHour(24), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.1")},
		{Probe: 206, Start: liveHour(25), End: liveHour(49), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.2")},
	}
	var history bytes.Buffer
	if err := WriteConnectionHistory(&history, 206, entries); err != nil {
		t.Fatal(err)
	}
	if code, _ := postBody(t, srv.URL+"/api/v1/stream/connlogs?probe=206", history.String()); code != 200 {
		t.Fatalf("connlogs ingest: %d", code)
	}

	resp, err := http.Get(srv.URL + "/api/v1/live/analysis")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("analysis = %d, want 200", resp.StatusCode)
	}
	var res liveanalysis.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Probes != 1 {
		t.Errorf("analysis probes = %d, want 1", res.Probes)
	}
	if res.Table7All.Changes != 1 {
		t.Errorf("Table7All.Changes = %d, want 1", res.Table7All.Changes)
	}
	if len(res.Churn) == 0 {
		t.Error("analysis churn is empty, want the change's study-day window")
	}

	// An ingester built without the engine answers 404, not 400/503.
	plain := stream.NewIngester(stream.Config{Shards: 1})
	defer plain.Close()
	psrv := httptest.NewServer(NewLiveServer(plain))
	defer psrv.Close()
	resp, err = http.Get(psrv.URL + "/api/v1/live/analysis")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("analysis on disabled ingester = %d, want 404", resp.StatusCode)
	}
}

// TestIngestErrorStatusMapping pins the status codes the ingest error
// translator hands producers: capacity conditions (closed ingester,
// degraded shards, cancelled or timed-out context) are 503 retry-later
// with a Retry-After pacing hint, only malformed input is 400.
func TestIngestErrorStatusMapping(t *testing.T) {
	s := &LiveServer{}
	for _, err := range []error{stream.ErrClosed, stream.ErrDegraded, context.Canceled, context.DeadlineExceeded} {
		rec := httptest.NewRecorder()
		s.ingestError(rec, fmt.Errorf("entry 3 of 9: %w", err), 3)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%v mapped to %d, want 503", err, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%v: 503 without Retry-After", err)
		}
		var env struct {
			Accepted int `json:"accepted"`
		}
		if jerr := json.Unmarshal(rec.Body.Bytes(), &env); jerr != nil || env.Accepted != 3 {
			t.Errorf("%v: envelope accepted = %d (parse err %v), want 3", err, env.Accepted, jerr)
		}
	}
	rec := httptest.NewRecorder()
	s.ingestError(rec, errors.New("probe 3: bad record"), 0)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("validation error mapped to %d, want 400", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Error("400 carries Retry-After; pacing hints are for capacity conditions")
	}
}

// TestLiveServerErrors exercises the ingest and query failure paths.
func TestLiveServerErrors(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	srv := httptest.NewServer(NewLiveServer(ing))
	defer srv.Close()

	// GET on an ingest endpoint: method not allowed.
	for _, path := range []string{"/api/v1/stream/probes", "/api/v1/stream/connlogs",
		"/api/v1/stream/kroot", "/api/v1/stream/uptime"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}

	// Malformed bodies and query parameters.
	badPosts := []struct{ path, body string }{
		{"/api/v1/stream/probes", "not json"},
		{"/api/v1/stream/connlogs?probe=206", "one\tfield-short"},
		{"/api/v1/stream/connlogs", "# empty, but no probe id"},
		{"/api/v1/stream/connlogs?probe=abc", ""},
		{"/api/v1/stream/connlogs?probe=-2", ""},
		{"/api/v1/stream/kroot", "{not ndjson"},
		{"/api/v1/stream/uptime", `{"prb_id": 1, "timestamp": 10, "uptime": -5}`},
	}
	for _, bp := range badPosts {
		if code, _ := postBody(t, srv.URL+bp.path, bp.body); code != http.StatusBadRequest {
			t.Errorf("POST %s with bad body = %d, want 400", bp.path, code)
		}
	}

	// Query-side errors.
	for path, wantCode := range map[string]int{
		"/api/v1/live/as/64500": http.StatusNotFound, // nothing ingested
		"/api/v1/live/as/abc":   http.StatusBadRequest,
		"/api/v1/live/as/0":     http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
	}

	// After Close, valid ingest turns into 503 but queries still work.
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	var archive bytes.Buffer
	if err := WriteProbeArchive(&archive, []atlasdata.ProbeMeta{
		{ID: 5, Country: "NL", Version: atlasdata.V3, ConnectedDays: 100},
	}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postBody(t, srv.URL+"/api/v1/stream/probes", archive.String()); code != http.StatusServiceUnavailable {
		t.Errorf("ingest after close = %d, want 503", code)
	}
	resp, err := http.Get(srv.URL + "/api/v1/live/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("summary after close = %d, want 200", resp.StatusCode)
	}
}
