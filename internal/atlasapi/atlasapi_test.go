package atlasapi

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

func sampleEntries() []atlasdata.ConnLogEntry {
	return []atlasdata.ConnLogEntry{
		{
			Probe:  206,
			Start:  simclock.Date(2015, 1, 1, 3, 22, 16),
			End:    simclock.Date(2015, 1, 1, 17, 34, 11),
			Family: atlasdata.V4, Addr: ip4.MustParseAddr("91.55.169.37"),
		},
		{
			Probe:  206,
			Start:  simclock.Date(2015, 1, 1, 18, 0, 54),
			End:    simclock.Date(2015, 1, 2, 2, 19, 16),
			Family: atlasdata.V6, V6Addr: "2001:db8:ce::2",
		},
	}
}

func TestConnectionHistoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConnectionHistory(&buf, 206, sampleEntries()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.HasPrefix(page, "# RIPE Atlas connection history for probe 206") {
		t.Errorf("page header missing: %q", page)
	}
	if !strings.Contains(page, "Jan  1 03:22:16 2015\tJan  1 17:34:11 2015\t91.55.169.37") {
		t.Errorf("Table 1-style row missing:\n%s", page)
	}
	got, err := ParseConnectionHistory(strings.NewReader(page), 206)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEntries()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, sampleEntries())
	}
}

func TestConnectionHistoryRejectsWrongProbe(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConnectionHistory(&buf, 999, sampleEntries()); err == nil {
		t.Error("entries for probe 206 on page 999 should fail")
	}
}

func TestConnectionHistoryParseErrors(t *testing.T) {
	bad := []string{
		"only\ttwo",
		"not a time\tJan  1 17:34:11 2015\t1.2.3.4",
		"Jan  1 03:22:16 2015\tbad\t1.2.3.4",
		"Jan  1 03:22:16 2015\tJan  1 17:34:11 2015\t1.2.3.999",
		"Jan  2 03:22:16 2015\tJan  1 17:34:11 2015\t1.2.3.4", // ends before start
	}
	for _, line := range bad {
		if _, err := ParseConnectionHistory(strings.NewReader(line), 1); err == nil {
			t.Errorf("ParseConnectionHistory(%q) should fail", line)
		}
	}
}

func TestProbeArchiveRoundTrip(t *testing.T) {
	in := []atlasdata.ProbeMeta{
		{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 300},
		{ID: 207, Country: "FR", Version: atlasdata.V1,
			Tags: []string{atlasdata.TagMultihomed, "home"}, ConnectedDays: 45.5},
	}
	var buf bytes.Buffer
	if err := WriteProbeArchive(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"slug": "multihomed"`) {
		t.Errorf("tags not in archive-object shape:\n%s", buf.String())
	}
	got, err := ParseProbeArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 206 || got[1].Tags[0] != atlasdata.TagMultihomed {
		t.Errorf("parsed archive = %+v", got)
	}
	if got[1].ConnectedDays < 45.4 || got[1].ConnectedDays > 45.6 {
		t.Errorf("ConnectedDays = %v", got[1].ConnectedDays)
	}
}

func TestKRootResultsRoundTrip(t *testing.T) {
	in := []atlasdata.KRootRound{
		{Probe: 16893, Timestamp: 1422349302, Sent: 3, Success: 3, LTS: 86},
		{Probe: 16893, Timestamp: 1422349548, Sent: 3, Success: 0, LTS: 151},
	}
	var buf bytes.Buffer
	if err := WriteKRootResults(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Loss shows as "*" items, like real Atlas results.
	if !strings.Contains(buf.String(), `"x":"*"`) {
		t.Errorf("loss markers missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"msm_id":1001`) {
		t.Error("k-root measurement id missing")
	}
	got, err := ParseKRootResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUptimeResultsRoundTrip(t *testing.T) {
	in := []atlasdata.UptimeRecord{
		{Probe: 206, Timestamp: 1420082118, Uptime: 262531},
		{Probe: 206, Timestamp: 1420134655, Uptime: 19},
	}
	var buf bytes.Buffer
	if err := WriteUptimeResults(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseUptimeResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	ds := atlasdata.NewDataset()
	ds.Probes[206] = atlasdata.ProbeMeta{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 300}
	ds.ConnLogs[206] = sampleEntries()
	ds.KRoot[206] = []atlasdata.KRootRound{{Probe: 206, Timestamp: 1420082118, Sent: 3, Success: 3, LTS: 60}}
	ds.Uptime[206] = []atlasdata.UptimeRecord{{Probe: 206, Timestamp: 1420082118, Uptime: 5}}

	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()

	fetch := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/api/v1/probe-archive/"); code != 200 || !strings.Contains(body, `"id": 206`) {
		t.Errorf("archive endpoint: %d %q", code, body)
	}
	if code, body := fetch("/probes/206/connection-history/"); code != 200 || !strings.Contains(body, "91.55.169.37") {
		t.Errorf("history endpoint: %d %q", code, body)
	}
	if code, _ := fetch("/probes/999/connection-history/"); code != 404 {
		t.Errorf("missing probe should 404, got %d", code)
	}
	if code, _ := fetch("/probes/abc/connection-history/"); code != 400 {
		t.Errorf("bad probe id should 400, got %d", code)
	}
	if code, body := fetch("/api/v1/measurements/kroot/206/"); code != 200 || !strings.Contains(body, `"msm_id":1001`) {
		t.Errorf("kroot endpoint: %d %q", code, body)
	}
	if code, _ := fetch("/api/v1/measurements/uptime/206/"); code != 200 {
		t.Errorf("uptime endpoint: %d", code)
	}
	if code, _ := fetch("/caida/pfx2as/209912.txt"); code != 404 {
		t.Errorf("missing snapshot should 404, got %d", code)
	}
	if code, _ := fetch("/caida/pfx2as/bogus"); code != 400 {
		t.Errorf("bad snapshot name should 400, got %d", code)
	}
}

// TestPfx2ASNameValidation locks in the strict YYYYMM.txt snapshot-name
// check: exactly six digits, month 01-12, nothing before or after —
// the garbage fmt.Sscanf-style parsing used to accept must 400.
func TestPfx2ASNameValidation(t *testing.T) {
	malformed := []string{
		"bogus",
		"201501",       // missing extension
		"201501.txtZZ", // trailing garbage
		"x201501.txt",  // leading garbage
		"20150.txt",    // five digits
		"2015011.txt",  // seven digits
		"-20151.txt",   // sign sneaking into six characters
		"201500.txt",   // month 00
		"201513.txt",   // month 13
		"209999.txt",   // month 99
		"20a501.txt",   // non-digit
		"201501.TXT",   // wrong-case extension
		".txt",         // empty base
		"  2015 1.txt", // embedded spaces
	}
	for _, name := range malformed {
		if m, ok := parseSnapshotName(name); ok {
			t.Errorf("parseSnapshotName(%q) accepted as %d", name, m)
		}
	}
	wellFormed := map[string]int{
		"201501.txt": 201501,
		"201512.txt": 201512,
		"209912.txt": 209912,
		"000101.txt": 101,
	}
	for name, want := range wellFormed {
		m, ok := parseSnapshotName(name)
		if !ok || m != want {
			t.Errorf("parseSnapshotName(%q) = %d, %v; want %d, true", name, m, ok, want)
		}
	}

	// Over HTTP: malformed names 400 before the store is consulted,
	// well-formed missing months 404.
	ds := atlasdata.NewDataset()
	srv := httptest.NewServer(NewServer(ds))
	defer srv.Close()
	for _, name := range malformed {
		if strings.ContainsAny(name, " ") {
			continue // not expressible in a raw request path
		}
		resp, err := http.Get(srv.URL + "/caida/pfx2as/" + name)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %q = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/caida/pfx2as/201506.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("well-formed missing month = %d, want 404", resp.StatusCode)
	}
}

func BenchmarkConnectionHistoryRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteConnectionHistory(&buf, 206, sampleEntries()); err != nil {
		b.Fatal(err)
	}
	page := buf.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseConnectionHistory(strings.NewReader(page), 206); err != nil {
			b.Fatal(err)
		}
	}
}
