package atlasapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/faultinject"
	"dynaddr/internal/sim"
)

// fastBackoff keeps retry tests quick while still exercising the sleep
// path.
var fastBackoff = backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}

func smallWorld(t *testing.T, seed uint64, scale float64) *sim.World {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// TestRetryAttemptsAreSpaced is the regression test for the old
// zero-delay retry loop: consecutive attempts against a struggling
// server must be separated by at least half the nominal backoff delay
// (the jitter floor), growing exponentially.
func TestRetryAttemptsAreSpaced(t *testing.T) {
	var (
		mu    sync.Mutex
		times []time.Time
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "[]")
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Retries: 3,
		Backoff: backoff.Policy{Base: 60 * time.Millisecond, Max: time.Second}}
	if _, err := c.FetchProbeArchive(); err != nil {
		t.Fatalf("fetch after transient failures: %v", err)
	}
	if len(times) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(times))
	}
	// Jitter floor: attempt n+1 waits at least Base<<n / 2.
	if gap := times[1].Sub(times[0]); gap < 25*time.Millisecond {
		t.Errorf("first retry after %v; want >= ~30ms backoff", gap)
	}
	if gap := times[2].Sub(times[1]); gap < 50*time.Millisecond {
		t.Errorf("second retry after %v; want >= ~60ms backoff", gap)
	}
}

// TestPermanentParseErrorsNotRetried: a deterministically malformed 200
// body must not burn the retry budget — validation errors are permanent.
func TestPermanentParseErrorsNotRetried(t *testing.T) {
	cases := []struct {
		name, path, body string
		fetch            func(c *Client) error
	}{
		{"archive syntax", "/api/v1/probe-archive/", "this is not JSON",
			func(c *Client) error { _, err := c.FetchProbeArchive(); return err }},
		{"history fields", "/probes/5/connection-history/", "only two\tfields\n",
			func(c *Client) error { _, err := c.FetchConnectionHistory(5); return err }},
		{"kroot validation", "/api/v1/measurements/kroot/5/", `{"prb_id": 5, "sent": 1, "rcvd": 3}` + "\n",
			func(c *Client) error { _, err := c.FetchKRoot(5); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hits := 0
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits++
				io.WriteString(w, tc.body)
			}))
			defer srv.Close()
			c := &Client{BaseURL: srv.URL, Retries: 5, Backoff: fastBackoff}
			if err := tc.fetch(c); err == nil {
				t.Fatal("malformed body should fail")
			}
			if hits != 1 {
				t.Errorf("malformed 200 body fetched %d times; validation errors must not retry", hits)
			}
		})
	}
}

// truncatingHandler serves the inner handler but cuts the body of the
// first request to each path mid-stream, like a dying transfer.
type truncatingHandler struct {
	inner http.Handler
	mu    sync.Mutex
	seen  map[string]bool
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	first := !h.seen[r.URL.Path]
	h.seen[r.URL.Path] = true
	h.mu.Unlock()
	if !first {
		h.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if len(body) < 2 {
		h.inner.ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.Code)
	w.Write(body[:len(body)/2])
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
	panic(http.ErrAbortHandler)
}

// TestTruncatedBodiesAreRetried: a 200 whose body dies mid-read is
// transient — unlike a validation error — and must be retried.
func TestTruncatedBodiesAreRetried(t *testing.T) {
	world := smallWorld(t, 5, 0.02)
	h := &truncatingHandler{inner: NewServer(world.Dataset), seen: make(map[string]bool)}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Months: world.Dataset.Pfx2AS.Months(),
		Retries: 3, Backoff: fastBackoff}
	scraped, err := c.ScrapeAll()
	if err != nil {
		t.Fatalf("scrape through truncated-then-clean responses: %v", err)
	}
	if !reflect.DeepEqual(scraped.ConnLogs, world.Dataset.ConnLogs) {
		t.Error("connection logs differ after truncation retries")
	}
}

// TestCancellationMidBackoffReturnsPromptly: a context cancelled while
// the client sleeps between retries must abort the fetch immediately,
// not after the (long) backoff delay.
func TestCancellationMidBackoffReturnsPromptly(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Retries: 5,
		Backoff: backoff.Policy{Base: 30 * time.Second, Max: 30 * time.Second}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.FetchProbeArchiveContext(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled fetch returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error does not carry context.Canceled: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancelled fetch took %v to return", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled fetch never returned")
	}
}

// probe404Handler permanently 404s the connection-history page of the
// given probes, leaving everything else intact.
type probe404Handler struct {
	inner http.Handler
	bad   map[atlasdata.ProbeID]bool
	mu    sync.Mutex
	hits  int
}

func (h *probe404Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/probes/") {
		h.mu.Lock()
		h.hits++
		h.mu.Unlock()
		for id := range h.bad {
			if strings.HasPrefix(r.URL.Path, fmt.Sprintf("/probes/%d/", id)) {
				http.NotFound(w, r)
				return
			}
		}
	}
	h.inner.ServeHTTP(w, r)
}

func (h *probe404Handler) historyHits() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits
}

// TestScrapeErrorBudgetYieldsPartialDataset: isolated permanent probe
// failures within the budget degrade the scrape to a partial dataset
// with a structured report instead of aborting.
func TestScrapeErrorBudgetYieldsPartialDataset(t *testing.T) {
	world := smallWorld(t, 9, 0.04)
	ids := world.Dataset.ProbeIDs()
	if len(ids) < 4 {
		t.Fatalf("world too small: %d probes", len(ids))
	}
	bad := map[atlasdata.ProbeID]bool{ids[0]: true, ids[2]: true}
	h := &probe404Handler{inner: NewServer(world.Dataset), bad: bad}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Months: world.Dataset.Pfx2AS.Months(),
		Retries: 2, Backoff: fastBackoff, AllowFailures: 2}
	ds, rep, err := c.ScrapeAllContext(context.Background())
	if err != nil {
		t.Fatalf("scrape within budget failed: %v", err)
	}
	if !rep.Partial() || len(rep.Skipped) != 2 {
		t.Fatalf("report = %v, want exactly 2 skipped probes", rep)
	}
	if rep.Skipped[0].Probe != ids[0] || rep.Skipped[1].Probe != ids[2] {
		t.Errorf("skipped %v, want probes %d and %d (ascending)", rep.Skipped, ids[0], ids[2])
	}
	if rep.Scraped != len(ids)-2 || rep.Probes != len(ids) {
		t.Errorf("report counts %d/%d, want %d/%d", rep.Scraped, rep.Probes, len(ids)-2, len(ids))
	}
	for id := range bad {
		if _, ok := ds.Probes[id]; ok {
			t.Errorf("skipped probe %d still present in dataset", id)
		}
		if _, ok := ds.ConnLogs[id]; ok {
			t.Errorf("skipped probe %d has connection logs", id)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("partial dataset does not validate: %v", err)
	}

	// The same scrape with a zero budget must abort.
	c2 := &Client{BaseURL: srv.URL, Retries: 2, Backoff: fastBackoff}
	if _, _, err := c2.ScrapeAllContext(context.Background()); err == nil {
		t.Error("zero error budget should abort on the first failed probe")
	}
}

// TestScrapeStopsDispatchingAfterBudgetBlown is the regression test for
// the old behaviour of queueing fetches for every remaining probe after
// the scrape was already doomed.
func TestScrapeStopsDispatchingAfterBudgetBlown(t *testing.T) {
	world := smallWorld(t, 9, 0.04)
	ids := world.Dataset.ProbeIDs()
	bad := make(map[atlasdata.ProbeID]bool, len(ids))
	for _, id := range ids {
		bad[id] = true // every probe's history 404s permanently
	}
	h := &probe404Handler{inner: NewServer(world.Dataset), bad: bad}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Concurrency: 1, Retries: 2, Backoff: fastBackoff}
	if _, _, err := c.ScrapeAllContext(context.Background()); err == nil {
		t.Fatal("scrape should fail with every probe broken")
	}
	if hits := h.historyHits(); hits > 3 {
		t.Errorf("server saw %d history fetches after the budget was blown on the first; want early stop (got %d probes total)",
			hits, len(ids))
	}
}

// TestScrapeUnderFaultInjection is the acceptance bar: 10% dropped
// connections plus 5% truncated bodies, and the scrape still assembles
// a complete, validating dataset.
func TestScrapeUnderFaultInjection(t *testing.T) {
	world := smallWorld(t, 21, 0.03)
	inj := faultinject.New(faultinject.Config{Seed: 1234, Drop: 0.10, Truncate: 0.05},
		NewServer(world.Dataset))
	srv := httptest.NewServer(inj)
	defer srv.Close()

	c := &Client{
		BaseURL:       srv.URL,
		Months:        world.Dataset.Pfx2AS.Months(),
		Retries:       8,
		Backoff:       backoff.Policy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		AllowFailures: 3,
	}
	ds, rep, err := c.ScrapeAllContext(context.Background())
	if err != nil {
		t.Fatalf("scrape under chaos failed: %v (report: %v)", err, rep)
	}
	if rep.Scraped+len(rep.Skipped) != rep.Probes {
		t.Errorf("report doesn't account for all probes: %v", rep)
	}
	st := inj.Stats()
	if st.Drops == 0 && st.Truncates == 0 {
		t.Errorf("fault injector fired nothing over %d requests; test proves too little", st.Requests)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded despite injected faults")
	}
	if !rep.Partial() {
		// The common case: retries absorbed every fault and the scraped
		// dataset is byte-identical to the source.
		if !reflect.DeepEqual(ds.ConnLogs, world.Dataset.ConnLogs) {
			t.Error("connection logs differ after chaos scrape")
		}
		if !reflect.DeepEqual(ds.Uptime, world.Dataset.Uptime) {
			t.Error("uptime records differ after chaos scrape")
		}
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("chaos-scraped dataset does not validate: %v", err)
	}
}

// TestScrapeCancelMidScrape: cancelling the scrape context while
// workers are mid-flight returns promptly and reports the cancellation.
func TestScrapeCancelMidScrape(t *testing.T) {
	world := smallWorld(t, 13, 0.05)
	inj := faultinject.New(faultinject.Config{Seed: 5, DelayProb: 1, DelayBy: 25 * time.Millisecond},
		NewServer(world.Dataset))
	srv := httptest.NewServer(inj)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Months: world.Dataset.Pfx2AS.Months(),
		Retries: 3, Backoff: backoff.Policy{Base: 500 * time.Millisecond, Max: time.Second}}
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		ds  *atlasdata.Dataset
		err error
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		ds, _, err := c.ScrapeAllContext(ctx)
		done <- result{ds, err}
	}()
	time.Sleep(80 * time.Millisecond) // some probe fetches are in flight now
	cancel()
	select {
	case res := <-done:
		if res.err == nil || !errors.Is(res.err, context.Canceled) {
			t.Errorf("cancelled scrape returned %v, want context.Canceled", res.err)
		}
		if res.ds != nil {
			t.Error("cancelled scrape returned a dataset")
		}
		// "Within one backoff interval": the slowest exit path is a
		// worker sleeping out its current backoff check plus one
		// in-flight request; well under 2 * Base here.
		if elapsed := time.Since(start); elapsed > 80*time.Millisecond+2*c.Backoff.Base {
			t.Errorf("cancelled scrape took %v to return", elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled scrape never returned")
	}
}
