package atlasapi

import (
	"net/http"
	"strings"
	"time"

	"dynaddr/internal/obs"
)

// routeLabel collapses a request path to a bounded set of route
// labels. Paths carry probe IDs, ASNs, and snapshot names; using the
// raw path as a label value would grow one time series per probe.
func routeLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/probes/"):
		return "/probes/{id}/connection-history/"
	case strings.HasPrefix(path, "/api/v1/probe-archive/"):
		return "/api/v1/probe-archive/{date}"
	case strings.HasPrefix(path, "/api/v1/measurements/kroot/"):
		return "/api/v1/measurements/kroot/{id}/"
	case strings.HasPrefix(path, "/api/v1/measurements/uptime/"):
		return "/api/v1/measurements/uptime/{id}/"
	case strings.HasPrefix(path, "/caida/pfx2as/"):
		return "/caida/pfx2as/{snapshot}"
	case strings.HasPrefix(path, "/api/v1/live/as/"):
		return "/api/v1/live/as/{asn}"
	case path == "/api/v1/analysis",
		path == RouteStreamRecords,
		path == "/api/v1/live/summary",
		path == "/api/v1/live/continents",
		path == "/api/v1/live/analysis",
		path == "/api/v1/live/cursor",
		path == "/api/v1/stream/probes",
		path == "/api/v1/stream/connlogs",
		path == "/api/v1/stream/kroot",
		path == "/api/v1/stream/uptime":
		return path
	default:
		return "other"
	}
}

// statusWriter captures the response status for the status-class
// label. It forwards Flush because the fault injector's truncate mode
// asserts http.Flusher on the chain it wraps.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// InstrumentHTTP records per-route request counts by status class, an
// in-flight gauge, and a latency histogram. A panic unwinding through
// the chain (the fault injector aborts responses with
// http.ErrAbortHandler) is recorded under class "aborted" — or "5xx"
// for a genuine handler panic — and re-panicked for RecoverPanics
// above to deal with.
func InstrumentHTTP(reg *obs.Registry, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		inFlight := reg.Gauge("http_in_flight",
			"Requests currently being served.", obs.L("route", route))
		inFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			inFlight.Dec()
			reg.Histogram("http_request_seconds",
				"HTTP request latency in seconds.", nil,
				obs.L("route", route)).ObserveSince(start)
			class := ""
			if v := recover(); v != nil {
				class = "5xx"
				if err, ok := v.(error); ok && err == http.ErrAbortHandler {
					class = "aborted"
				}
				defer panic(v)
			} else {
				status := sw.status
				if status == 0 {
					status = http.StatusOK
				}
				class = statusClass(status)
			}
			reg.Counter("http_requests_total",
				"HTTP requests served, by route and status class.",
				obs.L("route", route), obs.L("class", class)).Inc()
		}()
		h.ServeHTTP(sw, r)
	})
}
