package atlasapi

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"dynaddr/internal/obs"
)

func sumFamily(reg *obs.Registry, name string) (value float64, count int64) {
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
		for _, m := range f.Metrics {
			value += m.Value
			count += m.Count
		}
	}
	return value, count
}

// TestClientMetricsRetries: requests, retries and backoff sleeps land
// in the registry with exact counts.
func TestClientMetricsRetries(t *testing.T) {
	var (
		mu   sync.Mutex
		hits int
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "[]")
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := &Client{BaseURL: srv.URL, Retries: 3, Backoff: fastBackoff, Metrics: reg}
	if _, err := c.FetchProbeArchive(); err != nil {
		t.Fatalf("fetch after transient failures: %v", err)
	}

	if v, _ := sumFamily(reg, "scrape_requests_total"); v != 3 {
		t.Errorf("scrape_requests_total = %v, want 3", v)
	}
	if v, _ := sumFamily(reg, "scrape_retries_total"); v != 2 {
		t.Errorf("scrape_retries_total = %v, want 2", v)
	}
	if _, n := sumFamily(reg, "scrape_backoff_seconds"); n != 2 {
		t.Errorf("scrape_backoff_seconds count = %d, want 2 (one sleep per retry)", n)
	}
}

// TestClientMetricsBudgetBurn: probes skipped under the error budget
// are counted.
func TestClientMetricsBudgetBurn(t *testing.T) {
	world := smallWorld(t, 11, 0.02)
	inner := NewServer(world.Dataset)
	// Fail one probe's history permanently (404): after retries the
	// scrape skips it against the budget.
	var victim string
	for id := range world.Dataset.Probes {
		victim = "/probes/" + strconv.Itoa(int(id)) + "/connection-history/"
		break
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == victim {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c := &Client{BaseURL: srv.URL, Retries: 1, Backoff: fastBackoff,
		AllowFailures: 2, Metrics: reg}
	ds, rep, err := c.ScrapeAllContext(context.Background())
	if err != nil {
		t.Fatalf("scrape with budget: %v", err)
	}
	if ds == nil || len(rep.Skipped) != 1 {
		t.Fatalf("skipped = %d, want exactly the victim probe", len(rep.Skipped))
	}
	if v, _ := sumFamily(reg, "scrape_budget_burned_total"); v != 1 {
		t.Errorf("scrape_budget_burned_total = %v, want 1", v)
	}
}
