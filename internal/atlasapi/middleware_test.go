package atlasapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecoverPanics(t *testing.T) {
	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, format)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	})
	h := RecoverPanics(mux, logf)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "kaboom") {
		t.Errorf("500 body %q does not name the panic", rec.Body.String())
	}
	if len(logged) != 1 {
		t.Errorf("panic logged %d times, want 1", len(logged))
	}

	// Normal handlers pass through untouched.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "fine" {
		t.Errorf("wrapped handler: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverPanicsPassesAbortHandler(t *testing.T) {
	h := RecoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(string, ...any) { t.Error("ErrAbortHandler must not be logged as a defect") })
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Errorf("recovered %v, want re-panicked ErrAbortHandler", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

func TestHealthEndpoints(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	h.Register(mux)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", rec.Code)
	}
	h.SetReady(true)
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz after ready = %d, want 200", rec.Code)
	}
	h.SetReady(false)
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after un-ready = %d, want 503", rec.Code)
	}
}
