package atlasapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecoverPanics(t *testing.T) {
	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, format)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	})
	h := RecoverPanics(mux, logf)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", rec.Code)
	}
	// The body is the standard error envelope with a generic message:
	// panic values can carry internal state and must reach the log, not
	// the client.
	if body := rec.Body.String(); body != "{\"error\":\"internal server error\",\"status\":500}\n" {
		t.Errorf("500 body = %q, want generic error envelope", body)
	}
	if strings.Contains(rec.Body.String(), "kaboom") {
		t.Errorf("500 body %q leaks the panic value", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("500 Content-Type = %q, want application/json", ct)
	}
	if len(logged) != 1 {
		t.Errorf("panic logged %d times, want 1", len(logged))
	}

	// Normal handlers pass through untouched.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "fine" {
		t.Errorf("wrapped handler: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverPanicsPassesAbortHandler(t *testing.T) {
	h := RecoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(string, ...any) { t.Error("ErrAbortHandler must not be logged as a defect") })
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Errorf("recovered %v, want re-panicked ErrAbortHandler", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

func TestHealthEndpoints(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	h.Register(mux)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	// envelope asserts the body is JSON with the expected error/status
	// fields ("" means a non-error body).
	envelope := func(rec *httptest.ResponseRecorder, wantErr string) {
		t.Helper()
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q, want application/json", ct)
		}
		var env map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("body %q is not JSON: %v", rec.Body, err)
		}
		errText, _ := env["error"].(string)
		if wantErr == "" {
			if errText != "" {
				t.Errorf("unexpected error envelope: %q", rec.Body)
			}
			return
		}
		status, _ := env["status"].(float64)
		if !strings.Contains(errText, wantErr) || int(status) != rec.Code {
			t.Errorf("envelope = %q, want error containing %q with status %d", rec.Body, wantErr, rec.Code)
		}
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	} else {
		envelope(rec, "")
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", rec.Code)
	} else {
		envelope(rec, "starting")
	}
	h.SetReady(true)
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz after ready = %d, want 200", rec.Code)
	}
	h.SetReady(false)
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after un-ready = %d, want 503", rec.Code)
	}
}

// TestHealthDegradedShards: while any shard is in read-only degraded
// mode, /readyz answers 503 with the count so load balancers drain the
// instance; recovery flips it back without touching SetReady.
func TestHealthDegradedShards(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	h.Register(mux)
	h.SetReady(true)

	degraded := 0
	h.SetDegraded(func() int { return degraded })

	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec
	}

	if rec := get(); rec.Code != http.StatusOK {
		t.Fatalf("/readyz with 0 degraded shards = %d, want 200", rec.Code)
	}
	degraded = 2
	rec := get()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with degraded shards = %d, want 503", rec.Code)
	}
	var env struct {
		Error          string `json:"error"`
		Status         int    `json:"status"`
		DegradedShards int    `json:"degraded_shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("degraded body %q is not JSON: %v", rec.Body, err)
	}
	if env.Status != 503 || env.DegradedShards != 2 || !strings.Contains(env.Error, "degraded") {
		t.Fatalf("degraded envelope = %+v", env)
	}
	degraded = 0
	if rec := get(); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after shards re-armed = %d, want 200", rec.Code)
	}
	// Detaching restores plain readiness semantics.
	h.SetDegraded(nil)
	if rec := get(); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after detach = %d, want 200", rec.Code)
	}
}

// TestHealthNodeID: cluster deployments label the health envelopes with
// a node_id so smoke scripts can tell peers apart; the single-node
// default (no SetNodeID, or empty) must keep the envelopes
// byte-identical to the pre-cluster output.
func TestHealthNodeID(t *testing.T) {
	get := func(h *Health, path string) *httptest.ResponseRecorder {
		mux := http.NewServeMux()
		h.Register(mux)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	// Single-node: exact legacy bytes, with and without an explicit
	// empty SetNodeID.
	for _, prep := range []func(*Health){func(*Health) {}, func(h *Health) { h.SetNodeID("") }} {
		var h Health
		prep(&h)
		if got := get(&h, "/healthz").Body.String(); got != "{\"status\": \"ok\"}\n" {
			t.Errorf("single-node /healthz body = %q, want legacy envelope", got)
		}
		if got := get(&h, "/readyz").Body.String(); got != "{\"error\": \"starting\", \"status\": 503}\n" {
			t.Errorf("single-node /readyz (starting) body = %q, want legacy envelope", got)
		}
		h.SetReady(true)
		if got := get(&h, "/readyz").Body.String(); got != "{\"status\": \"ready\"}\n" {
			t.Errorf("single-node /readyz body = %q, want legacy envelope", got)
		}
	}

	// Cluster node: envelopes carry node_id and stay valid JSON.
	var h Health
	h.SetNodeID("peer-2")
	h.SetReady(true)
	h.SetDegraded(func() int { return 1 })
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := get(&h, path)
		var env struct {
			NodeID string `json:"node_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s body %q is not JSON: %v", path, rec.Body, err)
		}
		if env.NodeID != "peer-2" {
			t.Errorf("%s node_id = %q, want peer-2", path, env.NodeID)
		}
	}
}
