package atlasapi

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
)

// overloadServer records every ingest POST's NDJSON line count and
// replies from a scripted queue of responses.
type overloadServer struct {
	mu      sync.Mutex
	batches [][]string // lines of each POST, in arrival order
	times   []time.Time
	script  []func(w http.ResponseWriter, n int) // response per request; last repeats
}

func (s *overloadServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	s.mu.Lock()
	s.batches = append(s.batches, lines)
	s.times = append(s.times, time.Now())
	idx := len(s.batches) - 1
	if idx >= len(s.script) {
		idx = len(s.script) - 1
	}
	respond := s.script[idx]
	s.mu.Unlock()
	respond(w, len(lines))
}

func accept(w http.ResponseWriter, n int) {
	fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
}

// shed answers a 429 with a partial-accept envelope.
func shed(accepted int) func(http.ResponseWriter, int) {
	return func(w http.ResponseWriter, n int) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, "{\"error\": \"ingest overloaded\", \"status\": 429, \"accepted\": %d}\n", accepted)
	}
}

func producerRecords(n int) []atlasdata.UptimeRecord {
	out := make([]atlasdata.UptimeRecord, n)
	for i := range out {
		out[i] = atlasdata.UptimeRecord{Probe: 42, Timestamp: simclock.Time(1000 + 60*i), Uptime: int64(60 * (i + 1))}
	}
	return out
}

// TestProducerPartialAcceptTrim: a 503/429 whose error envelope reports
// a consumed prefix must trim exactly that prefix — the retry carries
// only the tail, and no record is ever delivered twice.
func TestProducerPartialAcceptTrim(t *testing.T) {
	srv := &overloadServer{script: []func(http.ResponseWriter, int){
		shed(2), // first POST: 5 records sent, server kept 2
		accept,  // second POST: remainder accepted
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	p := NewStreamProducer(context.Background(), ts.URL,
		WithCodec(CodecNDJSON),
		WithBackoff(fastBackoff),
		WithBreaker(100, time.Millisecond)) // keep the breaker out of this test
	// The 1s Retry-After hint must also be capped at fastBackoff's 4ms
	// maximum — a shedding server cannot stall the producer beyond its
	// own policy.
	start := time.Now()
	for _, u := range producerRecords(5) {
		if err := p.Uptime(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("flush took %v: Retry-After hint not capped at the policy maximum", elapsed)
	}

	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.batches) != 2 {
		t.Fatalf("%d POSTs, want 2", len(srv.batches))
	}
	if len(srv.batches[0]) != 5 || len(srv.batches[1]) != 3 {
		t.Fatalf("batch sizes %d then %d, want 5 then 3 (trimmed to the consumed prefix)", len(srv.batches[0]), len(srv.batches[1]))
	}
	// The retry's lines are exactly the tail of the original batch.
	for i, line := range srv.batches[1] {
		if want := srv.batches[0][2+i]; line != want {
			t.Fatalf("retry line %d = %s, want %s (records must not be re-sent or reordered)", i, line, want)
		}
	}
}

// TestProducerAdaptiveBatch: sustained shedding halves the batch toward
// the floor; success doubles it back toward the configured size.
func TestProducerAdaptiveBatch(t *testing.T) {
	srv := &overloadServer{script: []func(http.ResponseWriter, int){
		shed(0), // 64 → shrink
		shed(0), // 32 → shrink
		accept,  // 16 → grow
		accept,  // 32 → grow
		accept,  // 16 (the remainder)
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	p := NewStreamProducer(context.Background(), ts.URL,
		WithCodec(CodecNDJSON),
		WithBatchSize(64),
		WithRetries(5),
		WithBackoff(fastBackoff),
		WithBreaker(100, time.Millisecond))
	for _, u := range producerRecords(64) {
		if err := p.Uptime(u); err != nil {
			t.Fatal(err)
		}
	}
	// push flushed at 64 buffered records; everything is delivered.
	srv.mu.Lock()
	defer srv.mu.Unlock()
	var sizes []int
	for _, b := range srv.batches {
		sizes = append(sizes, len(b))
	}
	want := []int{64, 32, 16, 32, 16}
	if fmt.Sprint(sizes) != fmt.Sprint(want) {
		t.Fatalf("batch size sequence %v, want %v", sizes, want)
	}
}

// TestProducerBreakerPacing: after Threshold consecutive rejections the
// breaker opens and the next attempt waits out the cooldown, giving the
// server a quiet window.
func TestProducerBreakerPacing(t *testing.T) {
	srv := &overloadServer{script: []func(http.ResponseWriter, int){shed(0)}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const cooldown = 250 * time.Millisecond
	p := NewStreamProducer(context.Background(), ts.URL,
		WithCodec(CodecNDJSON),
		WithRetries(2),
		WithBackoff(fastBackoff),
		WithBreaker(2, cooldown))
	for _, u := range producerRecords(4) {
		if err := p.Uptime(u); err != nil {
			t.Fatal(err)
		}
	}
	err := p.Flush()
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("flush against an always-shedding server: %v, want a 429 error", err)
	}

	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.times) != 3 {
		t.Fatalf("%d attempts, want 3 (initial + 2 retries)", len(srv.times))
	}
	// Attempts 1→2: breaker still closed (one failure), spaced only by
	// backoff. Attempts 2→3: two consecutive failures opened it, so the
	// third waits out the cooldown.
	if gap := srv.times[2].Sub(srv.times[1]); gap < cooldown-20*time.Millisecond {
		t.Fatalf("attempt 3 came %v after attempt 2, want >=%v (breaker cooldown)", gap, cooldown)
	}
	if gap := srv.times[1].Sub(srv.times[0]); gap > cooldown {
		t.Fatalf("attempt 2 came %v after attempt 1, want well under the cooldown (breaker must not be open yet)", gap)
	}
}
