package atlasapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynaddr/internal/sim"
)

func analysisWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = 515
	cfg.Scale = 0.05
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func TestAnalysisEndpoint(t *testing.T) {
	world := analysisWorld(t)
	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/analysis?parallel=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out analysisSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.GeoProbes == 0 || out.Table7Changes == 0 {
		t.Fatalf("empty analysis: %+v", out)
	}
	if out.Metrics == nil || out.Metrics.Parallelism != 2 {
		t.Fatalf("metrics missing or wrong: %+v", out.Metrics)
	}
	if out.Metrics.Stage("filter") == nil {
		t.Fatal("no filter stage metric")
	}
}

func TestAnalysisEndpointStageSubset(t *testing.T) {
	world := analysisWorld(t)
	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/analysis?stages=filter")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out analysisSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.GeoProbes == 0 {
		t.Fatal("filter stage did not run")
	}
	if out.Table7Changes != 0 || out.ChurnMean != 0 {
		t.Fatalf("unselected stages ran: %+v", out)
	}
	if n := len(out.Metrics.Stages); n != 1 {
		t.Fatalf("%d stage metrics, want 1", n)
	}
}

func TestAnalysisEndpointErrors(t *testing.T) {
	world := analysisWorld(t)
	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	for _, q := range []string{"?stages=bogus", "?parallel=x", "?parallel=-1"} {
		resp, err := http.Get(srv.URL + "/api/v1/analysis" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	resp, err := http.Post(srv.URL+"/api/v1/analysis", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}
}

func TestAnalysisEndpointCancelled(t *testing.T) {
	world := analysisWorld(t)
	srv := httptest.NewServer(NewServer(world.Dataset))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/v1/analysis", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// The run may have finished before the cancel landed; both
		// outcomes are fine — the property under test is no hang/panic.
		resp.Body.Close()
	}
}
