package atlasapi

import (
	"encoding/json"
	"errors"
	"net/http"

	"dynaddr/internal/stream"
)

// Inter-peer cluster routes, mounted only in cluster peer mode
// (WithClusterNode). They carry mergeable state between a peer and its
// coordinator:
//
//	GET  /api/v1/cluster/view          mergeable snapshot contribution (PeerView)
//	GET  /api/v1/cluster/analysisview  mergeable analysis contribution
//	GET  /api/v1/cluster/info          node identity + partition ownership + version
//	POST /api/v1/cluster/partitions/release  {"partition": N} → PartitionState
//	POST /api/v1/cluster/partitions/adopt    PartitionState → {"adopted": N}
//
// View responses are uncacheable by design: a coordinator always wants
// the current barrier, and the merged artifact gets its own ETag from
// the summed version.
const (
	RouteClusterView         = "/api/v1/cluster/view"
	RouteClusterAnalysisView = "/api/v1/cluster/analysisview"
	RouteClusterInfo         = "/api/v1/cluster/info"
	RouteClusterRelease      = "/api/v1/cluster/partitions/release"
	RouteClusterAdopt        = "/api/v1/cluster/partitions/adopt"
)

// WithClusterNode puts the server in cluster peer mode: the inter-peer
// endpoints are mounted and /api/v1/cluster/info reports this node ID.
func WithClusterNode(nodeID string) LiveOption {
	return func(s *LiveServer) {
		s.nodeID = nodeID
		s.cluster = true
	}
}

// ClusterInfo is the /api/v1/cluster/info envelope: who this peer is
// and what it owns, plus its stream position at a consistent barrier.
type ClusterInfo struct {
	NodeID          string         `json:"node_id"`
	TotalPartitions int            `json:"total_partitions"`
	Partitions      []int          `json:"partitions"`
	Version         stream.Version `json:"version"`
}

func (s *LiveServer) clusterView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	pv, err := s.ing.PeerView(r.Context())
	if err != nil {
		s.ingestError(w, err, 0)
		return
	}
	writeClusterJSON(w, pv)
}

func (s *LiveServer) clusterAnalysisView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	pv, err := s.ing.AnalysisPeerView(r.Context())
	if err != nil {
		if errors.Is(err, stream.ErrAnalysisDisabled) {
			apiError(w, http.StatusNotFound, err.Error())
			return
		}
		s.ingestError(w, err, 0)
		return
	}
	writeClusterJSON(w, pv)
}

func (s *LiveServer) clusterInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap, err := s.ing.SnapshotContext(r.Context())
	if err != nil {
		s.ingestError(w, err, 0)
		return
	}
	writeClusterJSON(w, ClusterInfo{
		NodeID:          s.nodeID,
		TotalPartitions: s.ing.TotalPartitions(),
		Partitions:      s.ing.OwnedPartitions(),
		Version:         snap.Version,
	})
}

// clusterRelease hands a partition's complete state to the caller (the
// coordinator, mid-rebalance) and stops owning it. The response body is
// the partition's shipping form; the caller POSTs it verbatim to the
// adopting peer. Errors map like ingest errors: releasing an unowned
// partition is the caller's 421, a degraded one a 503.
func (s *LiveServer) clusterRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Partition *int `json:"partition"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil || req.Partition == nil {
		apiError(w, http.StatusBadRequest, "body must be {\"partition\": N}")
		return
	}
	st, err := s.ing.ReleasePartition(*req.Partition)
	switch {
	case err == nil:
	case errors.Is(err, stream.ErrNotOwner), errors.Is(err, stream.ErrDegraded), errors.Is(err, stream.ErrClosed):
		s.ingestError(w, err, 0)
		return
	default:
		// Disk-level failures carry paths — operator information.
		s.internalError(w, r, err)
		return
	}
	writeClusterJSON(w, st)
}

func (s *LiveServer) clusterAdopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var st stream.PartitionState
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBatch)).Decode(&st); err != nil {
		apiError(w, http.StatusBadRequest, "bad partition state: "+err.Error())
		return
	}
	if err := s.ing.AdoptPartition(&st); err != nil {
		s.ingestError(w, err, 0)
		return
	}
	writeClusterJSON(w, map[string]int{"adopted": st.Partition})
}

func writeClusterJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}
