package atlasapi

import (
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
)

// RecoverPanics wraps a handler so a panic in request handling answers
// 500 and is logged instead of killing the serving goroutine's
// connection with an opaque reset — one bad request must not take the
// ingest tier down. The body is the standard JSON error envelope with a
// generic message: the panic value is operator information and goes to
// the log, never to the client. http.ErrAbortHandler is re-panicked: it
// is the sanctioned way to abort a response, not a defect.
func RecoverPanics(h http.Handler, logf func(format string, args ...any)) http.Handler {
	if logf == nil {
		logf = log.Printf
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && err == http.ErrAbortHandler {
				panic(v)
			}
			logf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
			// If the handler already wrote a status this is a no-op write
			// on a broken response; nothing better is possible.
			apiError(w, http.StatusInternalServerError, "internal server error")
		}()
		h.ServeHTTP(w, r)
	})
}

// Health serves the liveness and readiness endpoints:
//
//	GET /healthz  200 as long as the process serves HTTP (liveness)
//	GET /readyz   200 once SetReady(true) and no shard is degraded;
//	              503 before readiness or while shards are degraded
//
// atlasd starts its listener before WAL recovery so orchestrators see
// liveness immediately, and flips readiness only after recovery
// finishes and the live endpoints are mounted. SetDegraded additionally
// wires readiness to the ingester's degraded-shard count: while any
// shard is in read-only degraded mode (WAL failure pending re-arm),
// /readyz answers 503 with the count, so load balancers drain the
// instance until the background probe heals it. 503 bodies use the
// standard JSON error envelope.
type Health struct {
	ready    atomic.Bool
	degraded atomic.Value // func() int
	nodeID   atomic.Value // string
}

// SetReady flips the readiness state.
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// SetNodeID labels the health envelopes with the process's cluster node
// ID, so smoke scripts hitting several peers behind one address space
// can tell them apart. The empty default (single-node mode) leaves the
// envelopes byte-identical to the pre-cluster output.
func (h *Health) SetNodeID(id string) { h.nodeID.Store(id) }

// NodeID reports the configured cluster node ID ("" single-node).
func (h *Health) NodeID() string {
	if v, ok := h.nodeID.Load().(string); ok {
		return v
	}
	return ""
}

// nodeField renders the optional `, "node_id": "..."` envelope suffix.
func (h *Health) nodeField() string {
	if id := h.NodeID(); id != "" {
		return fmt.Sprintf(", %q: %q", "node_id", id)
	}
	return ""
}

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// SetDegraded wires a degraded-shard counter (typically wrapping
// stream.Ingester.DegradedShards) into readiness. A nil fn detaches it.
func (h *Health) SetDegraded(fn func() int) {
	if fn == nil {
		fn = func() int { return 0 }
	}
	h.degraded.Store(fn)
}

// Degraded reports the wired degraded-shard count (zero when detached).
func (h *Health) Degraded() int {
	if fn, ok := h.degraded.Load().(func() int); ok {
		return fn()
	}
	return 0
}

// Register mounts /healthz and /readyz on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status": "ok"%s}`+"\n", h.nodeField())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error": "starting", "status": 503%s}`+"\n", h.nodeField())
			return
		}
		if n := h.Degraded(); n > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error": "%d shard(s) degraded after WAL failure, re-arm pending", "status": 503, "degraded_shards": %d%s}`+"\n", n, n, h.nodeField())
			return
		}
		fmt.Fprintf(w, `{"status": "ready"%s}`+"\n", h.nodeField())
	})
}
