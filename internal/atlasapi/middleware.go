package atlasapi

import (
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
)

// RecoverPanics wraps a handler so a panic in request handling answers
// 500 and is logged instead of killing the serving goroutine's
// connection with an opaque reset — one bad request must not take the
// ingest tier down. http.ErrAbortHandler is re-panicked: it is the
// sanctioned way to abort a response, not a defect.
func RecoverPanics(h http.Handler, logf func(format string, args ...any)) http.Handler {
	if logf == nil {
		logf = log.Printf
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && err == http.ErrAbortHandler {
				panic(v)
			}
			logf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
			// If the handler already wrote a status this is a no-op write
			// on a broken response; nothing better is possible.
			http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
		}()
		h.ServeHTTP(w, r)
	})
}

// Health serves the liveness and readiness endpoints:
//
//	GET /healthz  200 as long as the process serves HTTP (liveness)
//	GET /readyz   200 once SetReady(true), 503 before (readiness)
//
// atlasd starts its listener before WAL recovery so orchestrators see
// liveness immediately, and flips readiness only after recovery
// finishes and the live endpoints are mounted.
type Health struct {
	ready atomic.Bool
}

// SetReady flips the readiness state.
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// Register mounts /healthz and /readyz on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status": "ok"}`)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status": "starting"}`)
			return
		}
		fmt.Fprintln(w, `{"status": "ready"}`)
	})
}
