package atlasapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/obs"
	"dynaddr/internal/serve"
	"dynaddr/internal/stream"
	"dynaddr/internal/wal"
)

// cacheFixture boots a durable ingester (CheckpointEvery=1 so every
// record completes a checkpoint and rolls the generation), a
// manual-staleness serve tier, and a LiveServer wired through it.
func cacheFixture(t *testing.T, reg *obs.Registry) (*stream.Ingester, *serve.Tier, *LiveServer) {
	t.Helper()
	ing := stream.NewIngester(stream.Config{
		Shards: 2, Pfx2AS: liveStore(t), Analysis: true,
		WALDir: t.TempDir(), Sync: wal.SyncNever, CheckpointEvery: 1,
	})
	t.Cleanup(func() { ing.Close() })
	tier := serve.NewTier(ing, serve.WithMaxStaleness(-1), serve.WithMetrics(reg))
	ls := NewLiveServer(ing, WithServeTier(tier), WithErrorLog(nil))
	return ing, tier, ls
}

func getWithETag(t *testing.T, ls *LiveServer, path, inm string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	rec := httptest.NewRecorder()
	ls.ServeHTTP(rec, req)
	return rec
}

var etagRe = regexp.MustCompile(`^"g(\d+)-s(\d+)"$`)

func parseETag(t *testing.T, etag string) (gen, seq uint64) {
	t.Helper()
	m := etagRe.FindStringSubmatch(etag)
	if m == nil {
		t.Fatalf("malformed ETag %q", etag)
	}
	gen, _ = strconv.ParseUint(m[1], 10, 64)
	seq, _ = strconv.ParseUint(m[2], 10, 64)
	return gen, seq
}

// TestConditionalGETMatrix drives the revalidation protocol end to end
// on the cached endpoints: fresh validator → 304, stale validator →
// 200 with the new ETag, no validator → 200, and a checkpoint-generation
// rollover always invalidates.
func TestConditionalGETMatrix(t *testing.T) {
	ing, tier, ls := cacheFixture(t, nil)

	if err := ing.Meta(atlasdata.ProbeMeta{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(atlasdata.ConnLogEntry{Probe: 206, Start: liveHour(0), End: liveHour(24), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.1")}); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(atlasdata.ConnLogEntry{Probe: 206, Start: liveHour(25), End: liveHour(49), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/api/v1/live/summary", "/api/v1/live/continents", "/api/v1/live/as/64500"} {
		t.Run(path, func(t *testing.T) {
			// No validator → 200 with a well-formed ETag.
			rec := getWithETag(t, ls, path, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("unconditional GET: %d %s", rec.Code, rec.Body)
			}
			e1 := rec.Header().Get("ETag")
			g1, _ := parseETag(t, e1)
			if g1 == 0 {
				t.Fatalf("generation 0 on a durable ingester with CheckpointEvery=1: %s", e1)
			}
			if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
				t.Errorf("Cache-Control = %q, want no-cache", cc)
			}

			// Fresh validator → 304, no body, same ETag.
			rec = getWithETag(t, ls, path, e1)
			if rec.Code != http.StatusNotModified {
				t.Fatalf("fresh If-None-Match: %d, want 304", rec.Code)
			}
			if rec.Body.Len() != 0 {
				t.Errorf("304 carried a body: %q", rec.Body)
			}
			if got := rec.Header().Get("ETag"); got != e1 {
				t.Errorf("304 ETag = %s, want %s", got, e1)
			}

			// Wildcard validator → 304.
			if rec := getWithETag(t, ls, path, "*"); rec.Code != http.StatusNotModified {
				t.Errorf("If-None-Match * : %d, want 304", rec.Code)
			}

			// Garbage validator → 200.
			if rec := getWithETag(t, ls, path, `"bogus"`); rec.Code != http.StatusOK {
				t.Errorf("stale If-None-Match: %d, want 200", rec.Code)
			}

			// Ingest one record: CheckpointEvery=1 rolls the generation, so
			// the old validator must stop matching after a refresh.
			if err := ing.KRoot(atlasdata.KRootRound{Probe: 206, Timestamp: liveHour(30), Sent: 3, Success: 3, LTS: 30}); err != nil {
				t.Fatal(err)
			}
			if _, err := tier.Refresh(context.Background()); err != nil {
				t.Fatal(err)
			}
			rec = getWithETag(t, ls, path, e1)
			if rec.Code != http.StatusOK {
				t.Fatalf("rollover If-None-Match: %d, want 200", rec.Code)
			}
			e2 := rec.Header().Get("ETag")
			g2, s2 := parseETag(t, e2)
			if e2 == e1 {
				t.Fatalf("ETag unchanged across a generation rollover: %s", e1)
			}
			if g2 <= g1 {
				t.Errorf("generation did not advance: g%d then g%d", g1, g2)
			}
			if s2 == 0 {
				t.Error("sequence 0 after ingest")
			}
		})
	}
}

// TestConditionalGETCursor checks the cursor endpoint revalidates on
// the owning shard's version even though it never serves from cache.
func TestConditionalGETCursor(t *testing.T) {
	ing, _, ls := cacheFixture(t, nil)
	if err := ing.Meta(atlasdata.ProbeMeta{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}); err != nil {
		t.Fatal(err)
	}
	rec := getWithETag(t, ls, "/api/v1/live/cursor?probe=206", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cursor GET: %d %s", rec.Code, rec.Body)
	}
	e1 := rec.Header().Get("ETag")
	if rec = getWithETag(t, ls, "/api/v1/live/cursor?probe=206", e1); rec.Code != http.StatusNotModified {
		t.Fatalf("cursor revalidation: %d, want 304", rec.Code)
	}
	if err := ing.KRoot(atlasdata.KRootRound{Probe: 206, Timestamp: liveHour(1), Sent: 3, Success: 3, LTS: 30}); err != nil {
		t.Fatal(err)
	}
	rec = getWithETag(t, ls, "/api/v1/live/cursor?probe=206", e1)
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") == e1 {
		t.Fatalf("cursor after ingest: %d etag=%s, want 200 with a new etag", rec.Code, rec.Header().Get("ETag"))
	}
}

// TestServeMetricsCount checks the serve tier's hit/miss counters move
// with the request outcomes the CI smoke step asserts on.
func TestServeMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	ing, tier, ls := cacheFixture(t, reg)
	if err := ing.Meta(atlasdata.ProbeMeta{ID: 206, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := getWithETag(t, ls, "/api/v1/live/summary", "")
	etag := rec.Header().Get("ETag")
	getWithETag(t, ls, "/api/v1/live/summary", etag)

	var hits, misses float64
	for _, fam := range reg.Gather() {
		for _, s := range fam.Metrics {
			route := ""
			for _, l := range s.Labels {
				if l.Name == "route" {
					route = l.Value
				}
			}
			if route != "summary" {
				continue
			}
			switch fam.Name {
			case "serve_hits_total":
				hits = s.Value
			case "serve_misses_total":
				misses = s.Value
			}
		}
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("summary hits=%v misses=%v, want 1/1", hits, misses)
	}
}

// TestErrorEnvelope pins the error contract: every error body is the
// JSON envelope, and 500s never leak internal error text — it goes to
// the server log instead.
func TestErrorEnvelope(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1, Pfx2AS: liveStore(t)})
	defer ing.Close()
	var logged []string
	ls := NewLiveServer(ing, WithErrorLog(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}))

	// 400: descriptive client-error envelope.
	rec := getWithETag(t, ls, "/api/v1/live/as/banana", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad asn: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var env struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %q", rec.Body)
	}
	if env.Status != http.StatusBadRequest || !strings.Contains(env.Error, "banana") {
		t.Errorf("envelope = %+v", env)
	}

	// 500: generic body, real error only in the log.
	const secret = "dial unix /var/run/shard-007.sock: connection refused"
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/api/v1/live/summary", nil)
	ls.internalError(rec, req, errors.New(secret))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("internalError status: %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "shard-007") {
		t.Fatalf("500 body leaked internal error text: %q", rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error != "internal server error" || env.Status != 500 {
		t.Errorf("500 envelope = %+v (err %v)", env, err)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], secret) {
		t.Errorf("server log = %q, want the real error", logged)
	}

	// 429: admission sheds with the same envelope plus a Retry-After
	// pacing hint.
	shedding := NewLiveServer(ing, WithAdmission(NewAdmission(
		AdmissionConfig{MaxInFlight: 1}, func() float64 { return 1.0 }, nil)))
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, RouteStreamRecords, strings.NewReader(""))
	req.Header.Set("Content-Type", ContentTypeNDJSON)
	shedding.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed POST = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed 429 is missing the Retry-After header")
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Status != http.StatusTooManyRequests || !strings.Contains(env.Error, "overloaded") {
		t.Errorf("shed envelope = %q (err %v)", rec.Body, err)
	}
}

// TestProducerKeepAliveReuse is the body-drain regression: a server
// whose responses are larger than the producer's 512-byte error
// prefix must still see one connection across many flushes. Before the
// drain fix, closing a body with unread bytes killed the connection and
// every flush dialed a new one.
func TestProducerKeepAliveReuse(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A verbose 200: padding pushes the body past the 512-byte
		// prefix the producer reads, leaving unread bytes to drain.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\": 1, \"pad\": %q}\n", strings.Repeat("x", 2048))
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	p := NewStreamProducer(context.Background(), srv.URL,
		WithHTTPClient(client), WithBatchSize(1))
	for i := 0; i < 5; i++ {
		if err := p.Meta(atlasdata.ProbeMeta{ID: atlasdata.ProbeID(100 + i), Country: "DE", Version: atlasdata.V3}); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("server saw %d connections across 5 flushes, want 1 (keep-alive broken)", got)
	}
}

// TestBatchPoolCap pins the pool admission policy: buffers grown past
// batchPoolFactor× the configured batch limit are dropped instead of
// pinned in the pool forever.
func TestBatchPoolCap(t *testing.T) {
	const max = 1 << 20
	cases := []struct {
		cap  int64
		want bool
	}{
		{0, true},
		{max, true},
		{batchPoolFactor * max, true},
		{batchPoolFactor*max + 1, false},
	}
	for _, c := range cases {
		if got := poolable(c.cap, max); got != c.want {
			t.Errorf("poolable(%d, %d) = %v, want %v", c.cap, max, got, c.want)
		}
	}
}
