package atlasapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dynaddr/internal/core"
	"dynaddr/internal/engine"
)

// analysisSummary is the JSON shape of /api/v1/analysis: the report's
// headline numbers plus the engine's run metrics. Fields owned by
// stages the request excluded stay at their zero values.
type analysisSummary struct {
	GeoProbes     int              `json:"geo_probes"`
	ASProbes      int              `json:"as_probes"`
	Categories    map[string]int   `json:"categories,omitempty"`
	Table5Rows    int              `json:"table5_rows"`
	Table6Rows    int              `json:"table6_rows"`
	Table7Changes int              `json:"table7_changes"`
	LinkTypeRows  int              `json:"linktype_rows"`
	AdminEvents   int              `json:"admin_events"`
	ChurnMean     float64          `json:"churn_mean"`
	Metrics       *core.RunMetrics `json:"metrics"`
}

// analysis runs the staged engine over the served dataset under the
// request's context, so a disconnecting client aborts the run at the
// next stage or probe boundary instead of computing a report nobody
// will read.
//
//	GET /api/v1/analysis?parallel=4&stages=filter,outage
//
// Both parameters are optional: parallel defaults to GOMAXPROCS,
// stages to all (dependencies of the named stages join automatically).
func (s *Server) analysis(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	workers := 0
	if v := q.Get("parallel"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad parallel %q", v), http.StatusBadRequest)
			return
		}
		workers = n
	}
	stages, err := engine.ParseStages(q.Get("stages"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := engine.Run(r.Context(), s.ds, engine.Config{
		Parallelism: workers,
		Stages:      stages,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; there is nobody to answer.
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	engine.ExportMetrics(s.metrics, rep.Metrics)

	out := analysisSummary{
		Table5Rows:   len(rep.Table5),
		Table6Rows:   len(rep.Table6),
		LinkTypeRows: len(rep.LinkTypes),
		AdminEvents:  len(rep.AdminEvents),
		ChurnMean:    rep.ChurnMean,
		Metrics:      rep.Metrics,
	}
	out.Table7Changes = rep.Table7All.Changes
	if rep.Filter != nil {
		out.GeoProbes = len(rep.Filter.GeoProbes)
		out.ASProbes = len(rep.Filter.ASProbes)
		out.Categories = make(map[string]int, len(rep.Table2))
		for cat, n := range rep.Table2 {
			out.Categories[cat.String()] = n
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
