package atlasapi

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"dynaddr/internal/obs"
)

// gatherValue finds one series' value in a registry snapshot.
func gatherValue(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) (float64, bool) {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
	series:
		for _, m := range f.Metrics {
			if len(m.Labels) != len(labels) {
				continue
			}
			for _, want := range labels {
				found := false
				for _, got := range m.Labels {
					if got == want {
						found = true
						break
					}
				}
				if !found {
					continue series
				}
			}
			return m.Value, true
		}
	}
	return 0, false
}

func TestInstrumentHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/analysis", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/api/v1/stream/uptime", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	srv := httptest.NewServer(InstrumentHTTP(reg, mux))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/analysis")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/api/v1/stream/uptime")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	checks := []struct {
		route, class string
		want         float64
	}{
		{"/api/v1/analysis", "2xx", 3},
		{"/api/v1/stream/uptime", "4xx", 1},
		{"other", "4xx", 1}, // the mux 404s unknown paths
	}
	for _, c := range checks {
		got, ok := gatherValue(t, reg, "http_requests_total",
			obs.L("route", c.route), obs.L("class", c.class))
		if !ok || got != c.want {
			t.Errorf("http_requests_total{route=%q,class=%q} = %v (present=%v), want %v",
				c.route, c.class, got, ok, c.want)
		}
	}
	if v, ok := gatherValue(t, reg, "http_in_flight", obs.L("route", "/api/v1/analysis")); !ok || v != 0 {
		t.Errorf("http_in_flight = %v (present=%v), want 0 after requests finish", v, ok)
	}
	// The latency histogram's _count shows up in Gather as Count.
	for _, f := range reg.Gather() {
		if f.Name != "http_request_seconds" {
			continue
		}
		var total int64
		for _, m := range f.Metrics {
			total += m.Count
		}
		if total != 5 {
			t.Errorf("http_request_seconds observations = %d, want 5", total)
		}
	}
}

// TestInstrumentHTTPPanic: a handler panic is recorded (class 5xx for
// a real panic, "aborted" for http.ErrAbortHandler), the in-flight
// gauge is restored, and the panic keeps unwinding to RecoverPanics.
func TestInstrumentHTTPPanic(t *testing.T) {
	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/analysis", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	mux.HandleFunc("/api/v1/live/summary", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	srv := httptest.NewServer(RecoverPanics(InstrumentHTTP(reg, mux), func(string, ...any) {}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/analysis")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	// ErrAbortHandler kills the connection; the client sees a transport
	// error, which is the point.
	if resp, err := http.Get(srv.URL + "/api/v1/live/summary"); err == nil {
		resp.Body.Close()
	}

	if v, ok := gatherValue(t, reg, "http_requests_total",
		obs.L("route", "/api/v1/analysis"), obs.L("class", "5xx")); !ok || v != 1 {
		t.Errorf("panic not recorded as 5xx: %v (present=%v)", v, ok)
	}
	if v, ok := gatherValue(t, reg, "http_requests_total",
		obs.L("route", "/api/v1/live/summary"), obs.L("class", "aborted")); !ok || v != 1 {
		t.Errorf("abort not recorded: %v (present=%v)", v, ok)
	}
	if v, _ := gatherValue(t, reg, "http_in_flight", obs.L("route", "/api/v1/analysis")); v != 0 {
		t.Errorf("http_in_flight = %v after panic, want 0", v)
	}
}

func TestInstrumentHTTPNilRegistry(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := InstrumentHTTP(nil, inner); got == nil {
		t.Fatal("nil registry must still return a working handler")
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/probes/123/connection-history/": "/probes/{id}/connection-history/",
		"/api/v1/measurements/kroot/99/":  "/api/v1/measurements/kroot/{id}/",
		"/api/v1/measurements/uptime/7/":  "/api/v1/measurements/uptime/{id}/",
		"/caida/pfx2as/201507.txt":        "/caida/pfx2as/{snapshot}",
		"/api/v1/live/as/3320":            "/api/v1/live/as/{asn}",
		"/api/v1/stream/connlogs":         "/api/v1/stream/connlogs",
		"/api/v2/stream/records":          "/api/v2/stream/records",
		"/api/v1/analysis":                "/api/v1/analysis",
		"/api/v1/probe-archive/":          "/api/v1/probe-archive/{date}",
		"/favicon.ico":                    "other",
		"/probes/123/../../etc/passwd":    "/probes/{id}/connection-history/",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
