package atlasapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynaddr/internal/backoff"
)

func TestRetryDelay(t *testing.T) {
	p := backoff.Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	// No hint: the policy's jittered exponential delay.
	if d := retryDelay(p, 0, 0, 0); d != 5*time.Millisecond {
		t.Errorf("no hint: delay = %v, want the policy's jitter floor 5ms", d)
	}
	// A hint inside the cap is used as-is (no jitter: the server said
	// exactly when to come back).
	if d := retryDelay(p, 0, 0, 30*time.Millisecond); d != 30*time.Millisecond {
		t.Errorf("hint 30ms: delay = %v, want 30ms", d)
	}
	// A hint past the cap is clamped: a misconfigured or hostile server
	// cannot park the client.
	if d := retryDelay(p, 0, 0, time.Hour); d != 80*time.Millisecond {
		t.Errorf("hint 1h: delay = %v, want the 80ms cap", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		v    string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"soon", 0},
		{"Tue, 29 Oct 2024 16:56:32 GMT", 0},    // HTTP-date in the past: no usable hint
		{"Tue, 29 Oct 2024 16:56:32 UTC+1", 0},  // not an RFC 7231 date
		{"2024-10-29T16:56:32Z", 0},             // RFC 3339 is not an HTTP-date
		{"99999999999999999999999999999999", 0}, // overflows delay-seconds, not a date
	} {
		if got := ParseRetryAfter(mk(tc.v)); got != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
		}
	}

	// The HTTP-date form is relative to the local clock, so a future
	// date must be generated at test time. Allow scheduling slop on the
	// low side; the hint can never exceed the true distance.
	future := time.Now().Add(90 * time.Second)
	for _, layout := range []string{http.TimeFormat, time.RFC850, time.ANSIC} {
		got := ParseRetryAfter(mk(future.UTC().Format(layout)))
		if got <= 80*time.Second || got > 91*time.Second {
			t.Errorf("ParseRetryAfter(%s date 90s out) = %v, want ~90s", layout, got)
		}
	}
}

// TestClientHonorsRetryAfter is the spacing regression test for the 429
// path: when the server sheds load with a Retry-After hint, the client's
// next attempt waits out the hint instead of retrying on the (much
// shorter) backoff schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	var (
		mu    sync.Mutex
		times []time.Time
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "[]")
	}))
	defer srv.Close()

	// Base 1ms: the policy alone would retry within ~1ms. Max 2s keeps
	// the 1s hint inside the cap, so the hint must set the spacing.
	c := &Client{BaseURL: srv.URL, Retries: 1, Backoff: backoff.Policy{Base: time.Millisecond, Max: 2 * time.Second}}
	if _, err := c.FetchMonths(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("%d attempts, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry after %v, want >=1s (the server's Retry-After hint)", gap)
	}
}

// TestClientCapsRetryAfter: a server demanding an hour-long pause gets
// clamped to the policy's maximum delay — the client stays responsive.
func TestClientCapsRetryAfter(t *testing.T) {
	var (
		mu    sync.Mutex
		calls int
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "[]")
	}))
	defer srv.Close()

	start := time.Now()
	c := &Client{BaseURL: srv.URL, Retries: 1, Backoff: backoff.Policy{Base: time.Millisecond, Max: 50 * time.Millisecond}}
	if _, err := c.FetchMonths(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch took %v: the 1h Retry-After hint was not capped", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("%d attempts, want 2 (429 must stay retriable)", calls)
	}
}
