// Package atlasapi implements the external data-interchange formats the
// paper's collection pipeline consumed — RIPE-Atlas-style connection
// history pages, the probe-archive JSON API, and measurement-result
// streams — plus an HTTP server that publishes a dataset through those
// endpoints and a scraping client that reassembles a dataset from them.
//
// The paper (§3.1) scraped each probe's connection-history page and the
// probe-archive API over HTTP; this package reproduces that boundary so
// the generator and the analyzer can live on different sides of a
// network, and so the analyzer's ingestion is exercised against
// wire formats rather than in-process structs.
package atlasapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// timeLayout is the connection-history page timestamp format, the style
// of the paper's Table 1 ("Dec 31 03:21:34 2014"), always GMT.
const timeLayout = "Jan _2 15:04:05 2006"

// WriteConnectionHistory renders one probe's connection-history page:
// a comment header followed by one session per line with start, end and
// peer address, tab-separated.
func WriteConnectionHistory(w io.Writer, probe atlasdata.ProbeID, entries []atlasdata.ConnLogEntry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# RIPE Atlas connection history for probe %d\n", probe); err != nil {
		return err
	}
	for _, e := range entries {
		if e.Probe != probe {
			return fmt.Errorf("atlasapi: entry for probe %d on probe %d's page", e.Probe, probe)
		}
		if err := e.Validate(); err != nil {
			return err
		}
		addr := e.V6Addr
		if e.IsV4() {
			addr = e.Addr.String()
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n",
			e.Start.Std().Format(timeLayout), e.End.Std().Format(timeLayout), addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseConnectionHistory parses a connection-history page back into
// entries for the given probe.
func ParseConnectionHistory(r io.Reader, probe atlasdata.ProbeID) ([]atlasdata.ConnLogEntry, error) {
	var out []atlasdata.ConnLogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("atlasapi: history line %d: want 3 tab-separated fields, got %d", lineno, len(fields))
		}
		start, err := time.ParseInLocation(timeLayout, strings.TrimSpace(fields[0]), time.UTC)
		if err != nil {
			return nil, fmt.Errorf("atlasapi: history line %d: %v", lineno, err)
		}
		end, err := time.ParseInLocation(timeLayout, strings.TrimSpace(fields[1]), time.UTC)
		if err != nil {
			return nil, fmt.Errorf("atlasapi: history line %d: %v", lineno, err)
		}
		e := atlasdata.ConnLogEntry{
			Probe: probe,
			Start: simclock.Time(start.Unix()),
			End:   simclock.Time(end.Unix()),
		}
		addr := strings.TrimSpace(fields[2])
		if strings.Contains(addr, ":") {
			e.Family = atlasdata.V6
			e.V6Addr = addr
		} else {
			a, err := ip4.ParseAddr(addr)
			if err != nil {
				return nil, fmt.Errorf("atlasapi: history line %d: %v", lineno, err)
			}
			e.Family = atlasdata.V4
			e.Addr = a
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("atlasapi: history line %d: %v", lineno, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// archiveProbe mirrors the RIPE probe-archive API object shape the
// paper's §3 consumed: tags are objects with slugs, the firmware version
// doubles as the hardware version signal, and uptime is reported in
// seconds.
type archiveProbe struct {
	ID              int          `json:"id"`
	CountryCode     string       `json:"country_code"`
	FirmwareVersion int          `json:"firmware_version"`
	Tags            []archiveTag `json:"tags"`
	TotalUptime     int64        `json:"total_uptime"`
}

type archiveTag struct {
	Slug string `json:"slug"`
}

// WriteProbeArchive renders probe metadata in the archive API shape.
func WriteProbeArchive(w io.Writer, probes []atlasdata.ProbeMeta) error {
	out := make([]archiveProbe, 0, len(probes))
	for _, p := range probes {
		if err := p.Validate(); err != nil {
			return err
		}
		ap := archiveProbe{
			ID:              int(p.ID),
			CountryCode:     p.Country,
			FirmwareVersion: int(p.Version),
			TotalUptime:     int64(p.ConnectedDays * 86400),
		}
		for _, t := range p.Tags {
			ap.Tags = append(ap.Tags, archiveTag{Slug: t})
		}
		out = append(out, ap)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ParseProbeArchive parses the archive API shape into probe metadata.
func ParseProbeArchive(r io.Reader) ([]atlasdata.ProbeMeta, error) {
	var in []archiveProbe
	// %w keeps io.ErrUnexpectedEOF visible so the scrape client can
	// classify a truncated body as transient rather than permanent.
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("atlasapi: probe archive: %w", err)
	}
	out := make([]atlasdata.ProbeMeta, 0, len(in))
	for _, ap := range in {
		p := atlasdata.ProbeMeta{
			ID:            atlasdata.ProbeID(ap.ID),
			Country:       ap.CountryCode,
			Version:       atlasdata.ProbeVersion(ap.FirmwareVersion),
			ConnectedDays: float64(ap.TotalUptime) / 86400,
		}
		for _, t := range ap.Tags {
			p.Tags = append(p.Tags, t.Slug)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// pingResult mirrors the Atlas measurement-result shape for the built-in
// k-root ping (§3.4, Table 3): per-round sent/received counts, the LTS
// value, and a result array with one object per ping ("*" marks loss).
type pingResult struct {
	PrbID     int        `json:"prb_id"`
	MsmID     int        `json:"msm_id"`
	Timestamp int64      `json:"timestamp"`
	Sent      int        `json:"sent"`
	Rcvd      int        `json:"rcvd"`
	LTS       int64      `json:"lts"`
	Result    []pingItem `json:"result"`
}

type pingItem struct {
	RTT float64 `json:"rtt,omitempty"`
	X   string  `json:"x,omitempty"`
}

// kRootMsmID is the RIPE Atlas measurement ID of the built-in ping to
// k-root.
const kRootMsmID = 1001

// WriteKRootResults renders k-root rounds as newline-delimited JSON
// measurement results.
func WriteKRootResults(w io.Writer, rounds []atlasdata.KRootRound) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, k := range rounds {
		if err := k.Validate(); err != nil {
			return err
		}
		pr := pingResult{
			PrbID: int(k.Probe), MsmID: kRootMsmID,
			Timestamp: int64(k.Timestamp), Sent: k.Sent, Rcvd: k.Success, LTS: k.LTS,
		}
		for i := 0; i < k.Sent; i++ {
			if i < k.Success {
				// Deterministic synthetic RTT; the analysis never reads it.
				pr.Result = append(pr.Result, pingItem{RTT: 20 + float64(i)})
			} else {
				pr.Result = append(pr.Result, pingItem{X: "*"})
			}
		}
		if err := enc.Encode(pr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseKRootResults parses newline-delimited ping results.
func ParseKRootResults(r io.Reader) ([]atlasdata.KRootRound, error) {
	var out []atlasdata.KRootRound
	dec := json.NewDecoder(r)
	for {
		var pr pingResult
		if err := dec.Decode(&pr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("atlasapi: ping results: %w", err)
		}
		k := atlasdata.KRootRound{
			Probe:     atlasdata.ProbeID(pr.PrbID),
			Timestamp: simclock.Time(pr.Timestamp),
			Sent:      pr.Sent, Success: pr.Rcvd, LTS: pr.LTS,
		}
		if err := k.Validate(); err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// uptimeResult mirrors the SOS-uptime report shape (§3.5, Table 4).
type uptimeResult struct {
	PrbID     int   `json:"prb_id"`
	Timestamp int64 `json:"timestamp"`
	Uptime    int64 `json:"uptime"`
}

// WriteUptimeResults renders uptime records as newline-delimited JSON.
func WriteUptimeResults(w io.Writer, recs []atlasdata.UptimeRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, u := range recs {
		if err := u.Validate(); err != nil {
			return err
		}
		if err := enc.Encode(uptimeResult{
			PrbID: int(u.Probe), Timestamp: int64(u.Timestamp), Uptime: u.Uptime,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseUptimeResults parses newline-delimited uptime reports.
func ParseUptimeResults(r io.Reader) ([]atlasdata.UptimeRecord, error) {
	var out []atlasdata.UptimeRecord
	dec := json.NewDecoder(r)
	for {
		var ur uptimeResult
		if err := dec.Decode(&ur); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("atlasapi: uptime results: %w", err)
		}
		u := atlasdata.UptimeRecord{
			Probe:     atlasdata.ProbeID(ur.PrbID),
			Timestamp: simclock.Time(ur.Timestamp),
			Uptime:    ur.Uptime,
		}
		if err := u.Validate(); err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}
