package atlasapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
)

// The producer must satisfy the generator's sink contract, so
// sim.GenerateTo / sim.ReplayDataset can drive a remote ingester.
var _ sim.RecordSink = (*StreamProducer)(nil)

// TestStreamProducerReplayEquivalence drives a dataset into a live
// ingester over HTTP — through a flaky front that 503s the first two
// requests to every path — and requires the resulting snapshot to match
// an in-process replay exactly.
func TestStreamProducerReplayEquivalence(t *testing.T) {
	world := smallWorld(t, 17, 0.02)
	ds := world.Dataset

	remote := stream.NewIngester(stream.Config{Shards: 3, Pfx2AS: ds.Pfx2AS})
	defer remote.Close()
	flaky := &flakyHandler{inner: NewLiveServer(remote), failures: make(map[string]int), failN: 2}
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	p := NewStreamProducer(context.Background(), srv.URL)
	p.Retries = 4
	p.Backoff = fastBackoff
	p.BatchSize = 32
	if err := sim.ReplayDataset(ds, p); err != nil {
		t.Fatalf("replay through producer: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	local := stream.NewIngester(stream.Config{Shards: 3, Pfx2AS: ds.Pfx2AS})
	defer local.Close()
	if err := sim.ReplayDataset(ds, local); err != nil {
		t.Fatal(err)
	}

	got, want := remote.Snapshot(), local.Snapshot()
	if got.Records != want.Records {
		t.Errorf("record counts differ over the wire: %+v vs %+v", got.Records, want.Records)
	}
	if got.Probes != want.Probes || got.Changes != want.Changes ||
		got.NetworkOutages != want.NetworkOutages || got.Reboots != want.Reboots ||
		got.OutageLinkedChanges != want.OutageLinkedChanges {
		t.Errorf("stream tallies differ over the wire:\n%+v\nvs\n%+v", got, want)
	}
	if !reflect.DeepEqual(got.ASNs(), want.ASNs()) {
		t.Errorf("AS sets differ: %v vs %v", got.ASNs(), want.ASNs())
	}
}

// TestStreamProducerPermanentErrorsSurface: a 4xx from the ingest
// endpoint (bad payload, bad probe id) must fail fast, not retry.
func TestStreamProducerPermanentErrorsSurface(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}))
	defer srv.Close()

	world := smallWorld(t, 17, 0.02)
	p := NewStreamProducer(context.Background(), srv.URL)
	p.Retries = 5
	p.Backoff = fastBackoff
	p.BatchSize = 1
	err := p.Meta(world.Dataset.Probes[world.Dataset.ProbeIDs()[0]])
	if err == nil {
		t.Fatal("404 from ingest endpoint should fail the producer")
	}
	if hits != 1 {
		t.Errorf("producer POSTed %d times against a 404; 4xx must not retry", hits)
	}
}

// TestStreamProducerCancellation: cancelling the producer's context
// releases a retry loop promptly.
func TestStreamProducerCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	world := smallWorld(t, 17, 0.02)
	p := NewStreamProducer(ctx, srv.URL)
	p.BatchSize = 1
	if err := p.Meta(world.Dataset.Probes[world.Dataset.ProbeIDs()[0]]); err == nil {
		t.Fatal("cancelled producer should fail to deliver")
	}
}
