// Package ip4 provides compact IPv4 address and prefix value types used
// throughout the dynaddr codebase.
//
// The standard library's netip types would work, but the analysis and the
// simulator manipulate millions of addresses as map keys and sort keys; a
// bare uint32 representation keeps those paths allocation-free and makes
// prefix arithmetic (mask extraction, containment, iteration) explicit.
package ip4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero value is 0.0.0.0,
// which the package treats as "unset" (see IsValid).
type Addr uint32

// FromOctets assembles an address from its four dotted-quad octets.
func FromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.7".
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ip4: invalid address %q: want 4 octets", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		if tok == "" {
			return 0, fmt.Errorf("ip4: invalid address %q: empty octet", s)
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ip4: invalid address %q: %v", s, err)
		}
		parts[i] = v
	}
	return FromOctets(byte(parts[0]), byte(parts[1]), byte(parts[2]), byte(parts[3])), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IsValid reports whether a is not the zero (unset) address.
func (a Addr) IsValid() bool { return a != 0 }

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	// strconv.AppendUint into a stack buffer keeps this allocation-light;
	// address formatting is on the hot path of dataset serialization.
	buf := make([]byte, 0, 15)
	buf = strconv.AppendUint(buf, uint64(o1), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o2), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o3), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o4), 10)
	return string(buf)
}

// Slash8 returns the enclosing /8 prefix of a.
func (a Addr) Slash8() Prefix { return PrefixFrom(a, 8) }

// Slash16 returns the enclosing /16 prefix of a.
func (a Addr) Slash16() Prefix { return PrefixFrom(a, 16) }

// Slash24 returns the enclosing /24 prefix of a.
func (a Addr) Slash24() Prefix { return PrefixFrom(a, 24) }

// Prefix returns the enclosing prefix of a with the given length.
func (a Addr) Prefix(bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ip4: prefix length %d out of range", bits)
	}
	return PrefixFrom(a, bits), nil
}

func mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Prefix is an IPv4 CIDR prefix. The zero value is invalid (use IsValid).
type Prefix struct {
	addr Addr
	bits uint8
	set  bool // distinguishes the zero Prefix from a genuine 0.0.0.0/0
}

// PrefixFrom builds a prefix from an address and a length, masking host
// bits. It panics if bits is out of [0,32]; constructing prefixes from
// untrusted input should go through ParsePrefix instead.
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("ip4: prefix length %d out of range", bits))
	}
	return Prefix{addr: a & mask(bits), bits: uint8(bits), set: true}
}

// ParsePrefix parses CIDR notation such as "91.55.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ip4: invalid prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ip4: invalid prefix length in %q", s)
	}
	if a&mask(bits) != a {
		return Prefix{}, fmt.Errorf("ip4: prefix %q has host bits set", s)
	}
	return Prefix{addr: a, bits: uint8(bits), set: true}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// IsValid reports whether p was constructed (as opposed to the zero value).
func (p Prefix) IsValid() bool { return p.set }

// Addr returns the network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a lies inside p.
func (p Prefix) Contains(a Addr) bool {
	return p.set && a&mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if !p.set || !q.set {
		return false
	}
	if p.bits <= q.bits {
		return q.addr&mask(int(p.bits)) == p.addr
	}
	return p.addr&mask(int(q.bits)) == q.addr
}

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// First returns the first (network) address in p.
func (p Prefix) First() Addr { return p.addr }

// Last returns the last (broadcast) address in p.
func (p Prefix) Last() Addr { return p.addr | ^mask(int(p.bits)) }

// Nth returns the i'th address in p, wrapping modulo the prefix size so
// that deterministic pool allocation can index past the end safely.
func (p Prefix) Nth(i uint64) Addr {
	return p.addr + Addr(i%p.NumAddrs())
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	if !p.set {
		return "invalid"
	}
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Compare orders prefixes by network address, then by length (shorter
// first). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	default:
		return 0
	}
}

// TestingAddr is the RIPE NCC address 193.0.0.78 used to test probes
// before shipping them to volunteers (paper §3.3). Connection-log entries
// from this address are filtered before analysis.
var TestingAddr = FromOctets(193, 0, 0, 78)
