package ip4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"192.0.2.7", FromOctets(192, 0, 2, 7), true},
		{"91.55.174.103", FromOctets(91, 55, 174, 103), true},
		{"193.0.0.78", TestingAddr, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseAddr(%q) unexpected error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseAddr(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := FromOctets(10, 20, 30, 40)
	o1, o2, o3, o4 := a.Octets()
	if o1 != 10 || o2 != 20 || o3 != 30 || o4 != 40 {
		t.Errorf("Octets() = %d.%d.%d.%d, want 10.20.30.40", o1, o2, o3, o4)
	}
}

func TestSlashPrefixes(t *testing.T) {
	a := MustParseAddr("91.55.174.103")
	if got, want := a.Slash8().String(), "91.0.0.0/8"; got != want {
		t.Errorf("Slash8 = %s, want %s", got, want)
	}
	if got, want := a.Slash16().String(), "91.55.0.0/16"; got != want {
		t.Errorf("Slash16 = %s, want %s", got, want)
	}
	if got, want := a.Slash24().String(), "91.55.174.0/24"; got != want {
		t.Errorf("Slash24 = %s, want %s", got, want)
	}
}

func TestPrefixParse(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"91.55.0.0/16", true},
		{"0.0.0.0/0", true},
		{"10.0.0.1/32", true},
		{"10.0.0.1/31", false}, // host bits set
		{"10.0.0.0/33", false},
		{"10.0.0.0/-1", false},
		{"10.0.0.0", false},
		{"bogus/8", false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if c.ok && err != nil {
			t.Errorf("ParsePrefix(%q): %v", c.in, err)
		}
		if c.ok && !p.IsValid() {
			t.Errorf("ParsePrefix(%q) returned invalid prefix", c.in)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePrefix(%q) = %v, want error", c.in, p)
		}
	}
}

func TestPrefixRoundTrip(t *testing.T) {
	f := func(u uint32, b uint8) bool {
		bits := int(b % 33)
		p := PrefixFrom(Addr(u), bits)
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("91.55.0.0/16")
	if !p.Contains(MustParseAddr("91.55.174.103")) {
		t.Error("91.55.0.0/16 should contain 91.55.174.103")
	}
	if p.Contains(MustParseAddr("91.56.0.0")) {
		t.Error("91.55.0.0/16 should not contain 91.56.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("0.0.0.0/0 should contain everything")
	}
	var zero Prefix
	if zero.Contains(0) {
		t.Error("zero Prefix must not contain anything")
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Every address's enclosing prefix of every length contains it.
	f := func(u uint32, b uint8) bool {
		bits := int(b % 33)
		a := Addr(u)
		p, err := a.Prefix(bits)
		return err == nil && p.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	p16 := MustParsePrefix("91.55.0.0/16")
	p24in := MustParsePrefix("91.55.174.0/24")
	p24out := MustParsePrefix("91.56.1.0/24")
	if !p16.Overlaps(p24in) || !p24in.Overlaps(p16) {
		t.Error("nested prefixes must overlap symmetrically")
	}
	if p16.Overlaps(p24out) || p24out.Overlaps(p16) {
		t.Error("disjoint prefixes must not overlap")
	}
	var zero Prefix
	if zero.Overlaps(p16) || p16.Overlaps(zero) {
		t.Error("invalid prefixes never overlap")
	}
}

func TestPrefixFirstLastNth(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if got, want := p.First(), MustParseAddr("10.1.2.0"); got != want {
		t.Errorf("First = %v, want %v", got, want)
	}
	if got, want := p.Last(), MustParseAddr("10.1.2.255"); got != want {
		t.Errorf("Last = %v, want %v", got, want)
	}
	if got, want := p.NumAddrs(), uint64(256); got != want {
		t.Errorf("NumAddrs = %d, want %d", got, want)
	}
	if got, want := p.Nth(7), MustParseAddr("10.1.2.7"); got != want {
		t.Errorf("Nth(7) = %v, want %v", got, want)
	}
	// Nth wraps modulo the prefix size.
	if got, want := p.Nth(256+7), MustParseAddr("10.1.2.7"); got != want {
		t.Errorf("Nth(263) = %v, want %v", got, want)
	}
}

func TestPrefixNthStaysInside(t *testing.T) {
	f := func(u uint32, b uint8, i uint64) bool {
		bits := int(b % 33)
		p := PrefixFrom(Addr(u), bits)
		return p.Contains(p.Nth(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix with same base must sort first")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower base must sort first")
	}
	if a.Compare(a) != 0 {
		t.Error("prefix must compare equal to itself")
	}
}

func TestAddrPrefixRangeError(t *testing.T) {
	a := MustParseAddr("10.0.0.1")
	if _, err := a.Prefix(33); err == nil {
		t.Error("Prefix(33) should error")
	}
	if _, err := a.Prefix(-1); err == nil {
		t.Error("Prefix(-1) should error")
	}
}

func TestZeroAddrInvalid(t *testing.T) {
	var a Addr
	if a.IsValid() {
		t.Error("zero Addr must be invalid")
	}
	if !MustParseAddr("0.0.0.1").IsValid() {
		t.Error("0.0.0.1 must be valid")
	}
}

func BenchmarkAddrString(b *testing.B) {
	a := MustParseAddr("203.0.113.254")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.String()
	}
}

func BenchmarkParseAddr(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("91.55.174.103"); err != nil {
			b.Fatal(err)
		}
	}
}
