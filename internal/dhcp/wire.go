package dhcp

import (
	"encoding/binary"
	"fmt"

	"dynaddr/internal/ip4"
)

// This file implements the RFC 2131 wire format: the fixed-format BOOTP
// header, the options area behind the magic cookie, and the DHCP message
// types of the DISCOVER/OFFER/REQUEST/ACK exchange. The behavioural
// lease model in dhcp.go describes *when* addresses change; the wire
// layer pins down *what the packets carrying those decisions look like*,
// and wireserver.go drives the same policy through actual messages.

// Op codes (RFC 2131 §2).
const (
	OpBootRequest byte = 1
	OpBootReply   byte = 2
)

// MessageType is DHCP option 53's value.
type MessageType byte

// DHCP message types (RFC 2132 §9.6).
const (
	Discover MessageType = 1
	Offer    MessageType = 2
	Request  MessageType = 3
	Decline  MessageType = 4
	Ack      MessageType = 5
	Nak      MessageType = 6
	Release  MessageType = 7
	Inform   MessageType = 8
)

// String names the message type.
func (t MessageType) String() string {
	switch t {
	case Discover:
		return "DHCPDISCOVER"
	case Offer:
		return "DHCPOFFER"
	case Request:
		return "DHCPREQUEST"
	case Decline:
		return "DHCPDECLINE"
	case Ack:
		return "DHCPACK"
	case Nak:
		return "DHCPNAK"
	case Release:
		return "DHCPRELEASE"
	case Inform:
		return "DHCPINFORM"
	default:
		return fmt.Sprintf("DHCP(%d)", byte(t))
	}
}

// Well-known option codes used by the exchange (RFC 2132).
const (
	OptPad           byte = 0
	OptSubnetMask    byte = 1
	OptRequestedIP   byte = 50
	OptLeaseTime     byte = 51
	OptMessageType   byte = 53
	OptServerID      byte = 54
	OptRenewalTime   byte = 58
	OptRebindingTime byte = 59
	OptEnd           byte = 255
)

// Option is one TLV in the options area.
type Option struct {
	Code byte
	Data []byte
}

// Message is a DHCP packet.
type Message struct {
	Op     byte
	HType  byte // hardware type; 1 = Ethernet
	HLen   byte // hardware address length
	Hops   byte
	XID    uint32
	Secs   uint16
	Flags  uint16
	CIAddr ip4.Addr // client's current address, when renewing
	YIAddr ip4.Addr // "your" address, assigned by the server
	SIAddr ip4.Addr
	GIAddr ip4.Addr
	CHAddr [16]byte // client hardware address
	// SName and File are carried zero-filled; the exchange does not use
	// them.
	Options []Option
}

// headerLen is the fixed BOOTP header length: through the file field.
const headerLen = 236

// magicCookie introduces the options area (RFC 2131 §3).
var magicCookie = [4]byte{99, 130, 83, 99}

// Marshal serialises the message.
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, headerLen, headerLen+64)
	buf[0], buf[1], buf[2], buf[3] = m.Op, m.HType, m.HLen, m.Hops
	binary.BigEndian.PutUint32(buf[4:], m.XID)
	binary.BigEndian.PutUint16(buf[8:], m.Secs)
	binary.BigEndian.PutUint16(buf[10:], m.Flags)
	binary.BigEndian.PutUint32(buf[12:], uint32(m.CIAddr))
	binary.BigEndian.PutUint32(buf[16:], uint32(m.YIAddr))
	binary.BigEndian.PutUint32(buf[20:], uint32(m.SIAddr))
	binary.BigEndian.PutUint32(buf[24:], uint32(m.GIAddr))
	copy(buf[28:44], m.CHAddr[:])
	// 44..108 sname, 108..236 file: zero.
	buf = append(buf, magicCookie[:]...)
	for _, opt := range m.Options {
		if opt.Code == OptPad || opt.Code == OptEnd {
			return nil, fmt.Errorf("dhcp: explicit pad/end options are not allowed")
		}
		if len(opt.Data) > 255 {
			return nil, fmt.Errorf("dhcp: option %d data too long (%d)", opt.Code, len(opt.Data))
		}
		buf = append(buf, opt.Code, byte(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	buf = append(buf, OptEnd)
	return buf, nil
}

// Unmarshal parses a DHCP packet. It is safe on arbitrary input.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerLen+4 {
		return nil, fmt.Errorf("dhcp: packet too short (%d bytes)", len(b))
	}
	var m Message
	m.Op, m.HType, m.HLen, m.Hops = b[0], b[1], b[2], b[3]
	m.XID = binary.BigEndian.Uint32(b[4:])
	m.Secs = binary.BigEndian.Uint16(b[8:])
	m.Flags = binary.BigEndian.Uint16(b[10:])
	m.CIAddr = ip4.Addr(binary.BigEndian.Uint32(b[12:]))
	m.YIAddr = ip4.Addr(binary.BigEndian.Uint32(b[16:]))
	m.SIAddr = ip4.Addr(binary.BigEndian.Uint32(b[20:]))
	m.GIAddr = ip4.Addr(binary.BigEndian.Uint32(b[24:]))
	copy(m.CHAddr[:], b[28:44])
	if [4]byte(b[headerLen:headerLen+4]) != magicCookie {
		return nil, fmt.Errorf("dhcp: bad magic cookie")
	}
	opts := b[headerLen+4:]
	for i := 0; i < len(opts); {
		code := opts[i]
		switch code {
		case OptEnd:
			return &m, nil
		case OptPad:
			i++
			continue
		}
		if i+2 > len(opts) {
			return nil, fmt.Errorf("dhcp: truncated option header at %d", i)
		}
		length := int(opts[i+1])
		if i+2+length > len(opts) {
			return nil, fmt.Errorf("dhcp: truncated option %d", code)
		}
		data := make([]byte, length)
		copy(data, opts[i+2:i+2+length])
		m.Options = append(m.Options, Option{Code: code, Data: data})
		i += 2 + length
	}
	return nil, fmt.Errorf("dhcp: options not terminated")
}

// Option returns the first option with the given code.
func (m *Message) Option(code byte) ([]byte, bool) {
	for _, opt := range m.Options {
		if opt.Code == code {
			return opt.Data, true
		}
	}
	return nil, false
}

// Type returns the DHCP message type from option 53.
func (m *Message) Type() (MessageType, bool) {
	data, ok := m.Option(OptMessageType)
	if !ok || len(data) != 1 {
		return 0, false
	}
	return MessageType(data[0]), true
}

// SetType appends option 53.
func (m *Message) SetType(t MessageType) {
	m.Options = append(m.Options, Option{Code: OptMessageType, Data: []byte{byte(t)}})
}

// AddrOption returns an option's payload as an IPv4 address.
func (m *Message) AddrOption(code byte) (ip4.Addr, bool) {
	data, ok := m.Option(code)
	if !ok || len(data) != 4 {
		return 0, false
	}
	return ip4.Addr(binary.BigEndian.Uint32(data)), true
}

// SetAddrOption appends an address-valued option.
func (m *Message) SetAddrOption(code byte, a ip4.Addr) {
	data := make([]byte, 4)
	binary.BigEndian.PutUint32(data, uint32(a))
	m.Options = append(m.Options, Option{Code: code, Data: data})
}

// U32Option returns an option's payload as a big-endian uint32 (lease
// and timer options).
func (m *Message) U32Option(code byte) (uint32, bool) {
	data, ok := m.Option(code)
	if !ok || len(data) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(data), true
}

// SetU32Option appends a uint32-valued option.
func (m *Message) SetU32Option(code byte, v uint32) {
	data := make([]byte, 4)
	binary.BigEndian.PutUint32(data, v)
	m.Options = append(m.Options, Option{Code: code, Data: data})
}
