package dhcp

import (
	"testing"
	"testing/quick"

	"dynaddr/internal/ip4"
	"dynaddr/internal/isp"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Op: OpBootRequest, HType: 1, HLen: 6,
		XID: 0xDEADBEEF, Secs: 7, Flags: 0x8000,
		CIAddr: ip4.MustParseAddr("10.0.0.1"),
		YIAddr: ip4.MustParseAddr("10.0.0.2"),
		SIAddr: ip4.MustParseAddr("10.0.0.3"),
		GIAddr: ip4.MustParseAddr("10.0.0.4"),
	}
	m.CHAddr = [16]byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}
	m.SetType(Discover)
	m.SetAddrOption(OptRequestedIP, ip4.MustParseAddr("10.0.0.9"))
	m.SetU32Option(OptLeaseTime, 3600)

	packet, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(packet)
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != m.XID || got.CIAddr != m.CIAddr || got.CHAddr != m.CHAddr {
		t.Errorf("header mismatch: %+v", got)
	}
	if mt, ok := got.Type(); !ok || mt != Discover {
		t.Errorf("type = %v %v", mt, ok)
	}
	if addr, ok := got.AddrOption(OptRequestedIP); !ok || addr.String() != "10.0.0.9" {
		t.Errorf("requested IP = %v %v", addr, ok)
	}
	if lease, ok := got.U32Option(OptLeaseTime); !ok || lease != 3600 {
		t.Errorf("lease = %v %v", lease, ok)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil packet should fail")
	}
	if _, err := Unmarshal(make([]byte, 100)); err == nil {
		t.Error("short packet should fail")
	}
	// Valid length, bad cookie.
	b := make([]byte, headerLen+8)
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad cookie should fail")
	}
	// Good cookie, unterminated options.
	copy(b[headerLen:], magicCookie[:])
	b[headerLen+4] = OptMessageType
	b[headerLen+5] = 1
	b[headerLen+6] = byte(Discover)
	b[headerLen+7] = OptPad
	if _, err := Unmarshal(b); err == nil {
		t.Error("unterminated options should fail")
	}
	// Truncated option.
	b2 := make([]byte, headerLen+6)
	copy(b2[headerLen:], magicCookie[:])
	b2[headerLen+4] = OptLeaseTime
	b2[headerLen+5] = 200 // claims 200 bytes that are not there
	if _, err := Unmarshal(b2); err == nil {
		t.Error("truncated option should fail")
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsBadOptions(t *testing.T) {
	m := &Message{}
	m.Options = append(m.Options, Option{Code: OptEnd})
	if _, err := m.Marshal(); err == nil {
		t.Error("explicit end option should fail")
	}
	m2 := &Message{}
	m2.Options = append(m2.Options, Option{Code: 10, Data: make([]byte, 300)})
	if _, err := m2.Marshal(); err == nil {
		t.Error("oversized option should fail")
	}
}

func TestMessageTypeStrings(t *testing.T) {
	for mt, want := range map[MessageType]string{
		Discover: "DHCPDISCOVER", Offer: "DHCPOFFER", Request: "DHCPREQUEST",
		Ack: "DHCPACK", Nak: "DHCPNAK", Release: "DHCPRELEASE",
	} {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
}

// --- wire server/client ---

func newWire(t *testing.T) (*WireServer, *fakePool) {
	t.Helper()
	pool := newFakePool()
	srv, err := NewWireServer(pool, ip4.MustParseAddr("10.0.0.254"), 4*simclock.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return srv, pool
}

func TestWireDORA(t *testing.T) {
	srv, _ := newWire(t)
	c := NewWireClient(srv, []byte{1, 2, 3, 4, 5, 6})
	now := simclock.StudyStart
	addr, err := c.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	if !addr.IsValid() || c.Addr() != addr {
		t.Fatalf("acquired %v", addr)
	}
	if c.LeaseExpires() != now.Add(4*simclock.Hour) {
		t.Errorf("lease expires %v", c.LeaseExpires())
	}
	if srv.Bindings() != 1 {
		t.Errorf("bindings = %d", srv.Bindings())
	}
}

func TestWireRenewKeepsAddress(t *testing.T) {
	srv, _ := newWire(t)
	c := NewWireClient(srv, []byte{1})
	now := simclock.StudyStart
	addr, err := c.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		now = now.Add(2 * simclock.Hour)
		got, err := c.Renew(now)
		if err != nil {
			t.Fatal(err)
		}
		if got != addr {
			t.Fatalf("renewal %d changed address: %v -> %v", i, addr, got)
		}
	}
}

func TestWireReacquireAfterShortOutage(t *testing.T) {
	// The §4.3.1 behaviour at the message level: a client that went
	// silent and came back before any sweep gets its old address.
	srv, _ := newWire(t)
	c := NewWireClient(srv, []byte{2})
	now := simclock.StudyStart
	addr, err := c.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * simclock.Minute) // outage, no release
	got, err := c.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	if got != addr {
		t.Errorf("reacquire changed address: %v -> %v", addr, got)
	}
}

func TestWireSweepChangesAddress(t *testing.T) {
	// After expiry + sweep, another client takes the address; the
	// returning client gets a different one. Uses the production
	// AddressPool, whose TryReacquire honours requested addresses.
	pool, err := isp.NewAddressPool(
		[]ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/24")}, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWireServer(pool, ip4.MustParseAddr("10.0.0.254"), 4*simclock.Hour)
	if err != nil {
		t.Fatal(err)
	}
	a := NewWireClient(srv, []byte{3})
	now := simclock.StudyStart
	addrA, err := a.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	// Lease lapses; the operator sweeps.
	now = now.Add(10 * simclock.Hour)
	if n := srv.ExpireBefore(now); n != 1 {
		t.Fatalf("swept %d bindings, want 1", n)
	}
	// Another client explicitly requests the freed address and gets it.
	b := NewWireClient(srv, []byte{4})
	b.addr = addrA // INIT-REBOOT: B claims the address A used to hold
	addrB, err := b.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	if addrB != addrA {
		t.Fatalf("requested swept address not honoured: got %v, want %v", addrB, addrA)
	}
	// The original client returns and must get something else.
	got, err := a.Acquire(now.Add(simclock.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if got == addrA {
		t.Error("swept client got its old address back while another client holds it")
	}
}

func TestWireReleaseFreesAddress(t *testing.T) {
	srv, pool := newWire(t)
	c := NewWireClient(srv, []byte{5})
	now := simclock.StudyStart
	addr, err := c.Acquire(now)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(now.Add(simclock.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Addr().IsValid() {
		t.Error("client still holds an address after release")
	}
	if srv.Bindings() != 0 {
		t.Error("binding survived release")
	}
	if pool.held[addr] {
		t.Error("pool still holds the released address")
	}
}

func TestWireRenewUnknownClientNAKs(t *testing.T) {
	srv, _ := newWire(t)
	c := NewWireClient(srv, []byte{6})
	c.addr = ip4.MustParseAddr("10.9.9.9") // believes it has a lease
	if _, err := c.Renew(simclock.StudyStart); err == nil {
		t.Error("renewal without a binding should NAK")
	}
}

func TestWireServerValidation(t *testing.T) {
	if _, err := NewWireServer(nil, 1, simclock.Hour); err == nil {
		t.Error("nil pool should fail")
	}
	if _, err := NewWireServer(newFakePool(), 1, 0); err == nil {
		t.Error("zero lease should fail")
	}
	if _, err := NewWireServer(newFakePool(), 0, simclock.Hour); err == nil {
		t.Error("unset server ID should fail")
	}
}

func TestWireServerRejectsMalformed(t *testing.T) {
	srv, _ := newWire(t)
	if _, err := srv.Handle([]byte{1, 2, 3}, simclock.StudyStart); err == nil {
		t.Error("garbage packet should fail")
	}
	// A reply packet sent to the server.
	m := &Message{Op: OpBootReply}
	m.SetType(Offer)
	packet, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(packet, simclock.StudyStart); err == nil {
		t.Error("server must reject replies")
	}
	// A request without a message type.
	m2 := &Message{Op: OpBootRequest}
	packet2, err := m2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(packet2, simclock.StudyStart); err == nil {
		t.Error("typeless request should fail")
	}
}

func BenchmarkMessageMarshalUnmarshal(b *testing.B) {
	m := &Message{Op: OpBootRequest, HType: 1, HLen: 6, XID: 7}
	m.SetType(Request)
	m.SetAddrOption(OptRequestedIP, ip4.MustParseAddr("91.55.1.2"))
	m.SetU32Option(OptLeaseTime, 14400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packet, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(packet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDORA(b *testing.B) {
	pool := newFakePool()
	srv, err := NewWireServer(pool, ip4.MustParseAddr("10.0.0.254"), 4*simclock.Hour)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewWireClient(srv, []byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if _, err := c.Acquire(simclock.StudyStart); err != nil {
			b.Fatal(err)
		}
	}
}
