package dhcp

import (
	"fmt"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// WireServer is a message-level DHCP server: it speaks the RFC 2131
// packet exchange over marshalled bytes, maintains per-client bindings
// keyed by hardware address, and implements the §4.3.1 design goal the
// paper leans on — a returning client is offered its previous address
// whenever possible. Address changes therefore happen only when a
// binding has been expired *and* swept (the pool-pressure event the
// behavioural model draws probabilistically).
type WireServer struct {
	pool     Pool
	serverID ip4.Addr
	lease    simclock.Duration

	bindings map[[16]byte]*binding
}

type binding struct {
	addr    ip4.Addr
	expires simclock.Time
	offered bool // true between OFFER and REQUEST
}

// NewWireServer builds a server over a pool. serverID is the server's
// own address, included as option 54.
func NewWireServer(pool Pool, serverID ip4.Addr, lease simclock.Duration) (*WireServer, error) {
	if pool == nil {
		return nil, fmt.Errorf("dhcp: nil pool")
	}
	if lease <= 0 {
		return nil, fmt.Errorf("dhcp: non-positive lease")
	}
	if !serverID.IsValid() {
		return nil, fmt.Errorf("dhcp: server needs an address")
	}
	return &WireServer{
		pool: pool, serverID: serverID, lease: lease,
		bindings: make(map[[16]byte]*binding),
	}, nil
}

// Bindings returns the number of live bindings.
func (s *WireServer) Bindings() int { return len(s.bindings) }

// ExpireBefore releases every binding whose lease lapsed before t —
// the reclaim agent. How aggressively an operator runs this is exactly
// the pool-pressure knob of the behavioural model's ReclaimMean.
func (s *WireServer) ExpireBefore(t simclock.Time) int {
	n := 0
	for ch, b := range s.bindings {
		if b.expires.Before(t) {
			s.pool.Release(b.addr)
			delete(s.bindings, ch)
			n++
		}
	}
	return n
}

// Handle processes one marshalled DHCP message at simulated time now
// and returns the marshalled reply, or nil when the message needs no
// reply (e.g. RELEASE).
func (s *WireServer) Handle(packet []byte, now simclock.Time) ([]byte, error) {
	msg, err := Unmarshal(packet)
	if err != nil {
		return nil, err
	}
	if msg.Op != OpBootRequest {
		return nil, fmt.Errorf("dhcp: server got op %d", msg.Op)
	}
	t, ok := msg.Type()
	if !ok {
		return nil, fmt.Errorf("dhcp: request without message type")
	}
	var reply *Message
	switch t {
	case Discover:
		reply = s.handleDiscover(msg, now)
	case Request:
		reply = s.handleRequest(msg, now)
	case Release:
		s.handleRelease(msg)
		return nil, nil
	default:
		return nil, fmt.Errorf("dhcp: server cannot handle %v", t)
	}
	return reply.Marshal()
}

func (s *WireServer) reply(req *Message, t MessageType, yiaddr ip4.Addr) *Message {
	m := &Message{
		Op: OpBootReply, HType: req.HType, HLen: req.HLen,
		XID: req.XID, CHAddr: req.CHAddr,
		YIAddr: yiaddr, SIAddr: s.serverID,
	}
	m.SetType(t)
	m.SetAddrOption(OptServerID, s.serverID)
	if t != Nak {
		m.SetU32Option(OptLeaseTime, uint32(s.lease))
		m.SetU32Option(OptRenewalTime, uint32(s.lease/2))
	}
	return m
}

func (s *WireServer) handleDiscover(req *Message, now simclock.Time) *Message {
	b, ok := s.bindings[req.CHAddr]
	if !ok {
		// §4.3.1: prefer the address the client asks for, else a fresh
		// one.
		var addr ip4.Addr
		if wanted, has := req.AddrOption(OptRequestedIP); has && s.tryWanted(wanted) {
			addr = wanted
		} else {
			addr = s.pool.Acquire(0)
		}
		b = &binding{addr: addr}
		s.bindings[req.CHAddr] = b
	}
	b.offered = true
	return s.reply(req, Offer, b.addr)
}

// tryWanted attempts to reserve the client's requested address, which
// only concrete pools supporting reacquisition can honour.
func (s *WireServer) tryWanted(addr ip4.Addr) bool {
	type reacquirer interface{ TryReacquire(ip4.Addr) bool }
	if r, ok := s.pool.(reacquirer); ok {
		return r.TryReacquire(addr)
	}
	return false
}

func (s *WireServer) handleRequest(req *Message, now simclock.Time) *Message {
	b, ok := s.bindings[req.CHAddr]
	if !ok {
		return s.reply(req, Nak, 0)
	}
	// The client states which address it believes it holds: option 50
	// in SELECTING, ciaddr when renewing.
	claimed, has := req.AddrOption(OptRequestedIP)
	if !has {
		claimed = req.CIAddr
	}
	if claimed != b.addr {
		return s.reply(req, Nak, 0)
	}
	b.offered = false
	b.expires = now.Add(s.lease)
	return s.reply(req, Ack, b.addr)
}

func (s *WireServer) handleRelease(req *Message) {
	if b, ok := s.bindings[req.CHAddr]; ok {
		s.pool.Release(b.addr)
		delete(s.bindings, req.CHAddr)
	}
}

// WireClient drives the client half of the exchange against a
// WireServer, exercising the codec on every step.
type WireClient struct {
	srv    *WireServer
	chaddr [16]byte
	xid    uint32

	addr    ip4.Addr
	expires simclock.Time
}

// NewWireClient builds a client with the given hardware address.
func NewWireClient(srv *WireServer, hwaddr []byte) *WireClient {
	c := &WireClient{srv: srv}
	copy(c.chaddr[:], hwaddr)
	return c
}

// Addr returns the client's current address (invalid before Acquire).
func (c *WireClient) Addr() ip4.Addr { return c.addr }

// LeaseExpires returns when the current lease lapses.
func (c *WireClient) LeaseExpires() simclock.Time { return c.expires }

func (c *WireClient) exchange(m *Message, now simclock.Time) (*Message, error) {
	c.xid++
	m.Op = OpBootRequest
	m.HType, m.HLen = 1, 6
	m.XID = c.xid
	m.CHAddr = c.chaddr
	packet, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	replyBytes, err := c.srv.Handle(packet, now)
	if err != nil {
		return nil, err
	}
	if replyBytes == nil {
		return nil, nil
	}
	reply, err := Unmarshal(replyBytes)
	if err != nil {
		return nil, err
	}
	if reply.XID != c.xid {
		return nil, fmt.Errorf("dhcp: reply XID %d for request %d", reply.XID, c.xid)
	}
	return reply, nil
}

// Acquire performs the DISCOVER/OFFER/REQUEST/ACK exchange. A client
// that previously held an address asks for it back (INIT-REBOOT style).
func (c *WireClient) Acquire(now simclock.Time) (ip4.Addr, error) {
	disc := &Message{}
	disc.SetType(Discover)
	if c.addr.IsValid() {
		disc.SetAddrOption(OptRequestedIP, c.addr)
	}
	offer, err := c.exchange(disc, now)
	if err != nil {
		return 0, err
	}
	if t, _ := offer.Type(); t != Offer {
		return 0, fmt.Errorf("dhcp: expected OFFER, got %v", t)
	}

	req := &Message{}
	req.SetType(Request)
	req.SetAddrOption(OptRequestedIP, offer.YIAddr)
	ack, err := c.exchange(req, now)
	if err != nil {
		return 0, err
	}
	return c.applyAck(ack, now)
}

// Renew extends the lease in place (RENEWING state: unicast REQUEST
// with ciaddr set).
func (c *WireClient) Renew(now simclock.Time) (ip4.Addr, error) {
	if !c.addr.IsValid() {
		return 0, fmt.Errorf("dhcp: renew without a lease")
	}
	req := &Message{CIAddr: c.addr}
	req.SetType(Request)
	ack, err := c.exchange(req, now)
	if err != nil {
		return 0, err
	}
	return c.applyAck(ack, now)
}

func (c *WireClient) applyAck(ack *Message, now simclock.Time) (ip4.Addr, error) {
	switch t, _ := ack.Type(); t {
	case Ack:
		c.addr = ack.YIAddr
		leaseSecs, ok := ack.U32Option(OptLeaseTime)
		if !ok {
			return 0, fmt.Errorf("dhcp: ACK without lease time")
		}
		c.expires = now.Add(simclock.Duration(leaseSecs))
		return c.addr, nil
	case Nak:
		c.addr = 0
		return 0, fmt.Errorf("dhcp: NAK")
	default:
		return 0, fmt.Errorf("dhcp: expected ACK, got %v", t)
	}
}

// Release gives the address back.
func (c *WireClient) Release(now simclock.Time) error {
	if !c.addr.IsValid() {
		return nil
	}
	rel := &Message{CIAddr: c.addr}
	rel.SetType(Release)
	if _, err := c.exchange(rel, now); err != nil {
		return err
	}
	c.addr = 0
	return nil
}
