// Package dhcp models RFC 2131-flavoured dynamic address assignment from
// the perspective of one customer session.
//
// The paper's reading of DHCP (§2.1, §5.4): a connected client renews
// its lease half-way through and keeps its address indefinitely; only an
// interruption long enough to let the lease lapse — combined with enough
// pool pressure that the address is handed to someone else — produces an
// address change. That is exactly the state machine here: Connect,
// Disconnect, Reconnect, with the lease clock and a reclaim model in
// between.
package dhcp

import (
	"fmt"
	"math"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// Pool abstracts the ISP's address pool. Implementations decide which
// prefix a new address comes from (which is what the paper's Table 7
// measures); this package only decides *whether* a new address is needed.
// The session holds its address in the pool across disconnects — RFC
// 2131 §4.3.1 servers remember bindings — and the reclaim model below
// decides when pool pressure overrides that memory.
type Pool interface {
	// Acquire returns a fresh address, avoiding exclude when valid.
	Acquire(exclude ip4.Addr) ip4.Addr
	// Release returns addr to the pool.
	Release(addr ip4.Addr)
}

// Config parameterises lease behaviour.
type Config struct {
	// LeaseDuration is the DHCP lease length. Clients renew at half the
	// lease, so a connected client's lease never lapses.
	LeaseDuration simclock.Duration
	// ReclaimMean is the mean time after lease expiry until the pool
	// hands the address to another customer. Small values model heavy
	// pool pressure (scarce IPv4 space); large values model idle pools
	// where even day-long outages keep the address.
	ReclaimMean simclock.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LeaseDuration <= 0 {
		return fmt.Errorf("dhcp: lease duration must be positive, got %v", c.LeaseDuration)
	}
	if c.ReclaimMean <= 0 {
		return fmt.Errorf("dhcp: reclaim mean must be positive, got %v", c.ReclaimMean)
	}
	return nil
}

// Session is the DHCP client state for one CPE. Create with NewSession.
type Session struct {
	cfg  Config
	pool Pool
	rnd  *rng.RNG

	addr      ip4.Addr
	connected bool
	// leaseEnd is when the current lease lapses if not renewed. While
	// connected the client renews at half-lease, so leaseEnd is only
	// meaningful after Disconnect.
	leaseEnd simclock.Time
}

// NewSession returns a session using the given pool and randomness.
func NewSession(cfg Config, pool Pool, rnd *rng.RNG) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pool == nil || rnd == nil {
		return nil, fmt.Errorf("dhcp: nil pool or rng")
	}
	return &Session{cfg: cfg, pool: pool, rnd: rnd}, nil
}

// Addr returns the currently assigned address (invalid before Connect).
func (s *Session) Addr() ip4.Addr { return s.addr }

// Connected reports whether the client currently holds a live session.
func (s *Session) Connected() bool { return s.connected }

// Connect performs the initial DHCPDISCOVER/OFFER exchange and returns
// the assigned address.
func (s *Session) Connect(t simclock.Time) ip4.Addr {
	if s.connected {
		return s.addr
	}
	if !s.addr.IsValid() {
		s.addr = s.pool.Acquire(0)
	}
	s.connected = true
	return s.addr
}

// Disconnect records loss of connectivity (power or network) at t. The
// client stops renewing; the lease will lapse between half a lease and a
// full lease after t depending on where in the renewal cycle the outage
// struck. We draw that residual uniformly.
func (s *Session) Disconnect(t simclock.Time) {
	if !s.connected {
		return
	}
	s.connected = false
	residual := simclock.Duration(s.cfg.LeaseDuration/2) +
		simclock.Duration(s.rnd.Int63n(int64(s.cfg.LeaseDuration/2)+1))
	s.leaseEnd = t.Add(residual)
}

// Reconnect re-establishes connectivity at t and returns the address plus
// whether it changed. Per RFC 2131 §4.3.1 the server prefers to return
// the client's previous address: if the lease is still valid, or the
// address was not yet reclaimed, the client keeps it.
func (s *Session) Reconnect(t simclock.Time) (addr ip4.Addr, changed bool) {
	if s.connected {
		return s.addr, false
	}
	defer func() { s.connected = true }()
	if !s.addr.IsValid() {
		s.addr = s.pool.Acquire(0)
		return s.addr, false
	}
	if !t.After(s.leaseEnd) {
		// Lease still valid: same address, guaranteed.
		return s.addr, false
	}
	// Lease lapsed. The address survives unless the pool reassigned it in
	// the (t - leaseEnd) window; reclaim is memoryless with the
	// configured mean.
	lapsed := t.Sub(s.leaseEnd)
	pReclaimed := 1 - math.Exp(-float64(lapsed)/float64(s.cfg.ReclaimMean))
	if s.rnd.Bool(pReclaimed) {
		old := s.addr
		s.pool.Release(old)
		s.addr = s.pool.Acquire(old)
		return s.addr, s.addr != old
	}
	return s.addr, false
}

// ForceRenumber discards the client's binding and assigns a fresh
// address, modelling a server-side reconfiguration: the paper's
// administrative renumbering (§2.3). The session stays connected.
func (s *Session) ForceRenumber(t simclock.Time) (addr ip4.Addr, changed bool) {
	old := s.addr
	if old.IsValid() {
		s.pool.Release(old)
	}
	s.addr = s.pool.Acquire(old)
	return s.addr, old.IsValid() && s.addr != old
}
