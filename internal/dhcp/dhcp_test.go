package dhcp

import (
	"testing"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// fakePool hands out sequential addresses and tracks which are held.
type fakePool struct {
	next uint32
	held map[ip4.Addr]bool
}

func newFakePool() *fakePool {
	return &fakePool{next: 0x0A000001, held: map[ip4.Addr]bool{}}
}

func (p *fakePool) Acquire(exclude ip4.Addr) ip4.Addr {
	for {
		a := ip4.Addr(p.next)
		p.next++
		if a == exclude || p.held[a] {
			continue
		}
		p.held[a] = true
		return a
	}
}

func (p *fakePool) Release(a ip4.Addr) { delete(p.held, a) }

func newSession(t *testing.T, cfg Config, pool Pool) *Session {
	t.Helper()
	s, err := NewSession(cfg, pool, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var defaultCfg = Config{LeaseDuration: 4 * simclock.Hour, ReclaimMean: 6 * simclock.Hour}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{LeaseDuration: 0, ReclaimMean: 1},
		{LeaseDuration: 1, ReclaimMean: 0},
		{LeaseDuration: -1, ReclaimMean: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestNewSessionRejectsNil(t *testing.T) {
	if _, err := NewSession(defaultCfg, nil, rng.New(1)); err == nil {
		t.Error("nil pool should fail")
	}
	if _, err := NewSession(defaultCfg, newFakePool(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestConnectAssignsOnce(t *testing.T) {
	s := newSession(t, defaultCfg, newFakePool())
	a1 := s.Connect(simclock.StudyStart)
	if !a1.IsValid() {
		t.Fatal("Connect returned invalid address")
	}
	if !s.Connected() {
		t.Error("session should be connected")
	}
	if a2 := s.Connect(simclock.StudyStart.Add(simclock.Hour)); a2 != a1 {
		t.Error("double Connect must not change the address")
	}
}

func TestShortOutageKeepsAddress(t *testing.T) {
	// An outage shorter than half the lease can never lapse the lease, so
	// the address must survive, deterministically.
	s := newSession(t, defaultCfg, newFakePool())
	a1 := s.Connect(simclock.StudyStart)
	at := simclock.StudyStart.Add(10 * simclock.Hour)
	s.Disconnect(at)
	a2, changed := s.Reconnect(at.Add(30 * simclock.Minute))
	if changed || a2 != a1 {
		t.Errorf("30m outage changed address: %v -> %v", a1, a2)
	}
	if !s.Connected() {
		t.Error("should be reconnected")
	}
}

func TestManyShortOutagesNeverChange(t *testing.T) {
	s := newSession(t, defaultCfg, newFakePool())
	a := s.Connect(simclock.StudyStart)
	at := simclock.StudyStart
	for i := 0; i < 500; i++ {
		at = at.Add(6 * simclock.Hour)
		s.Disconnect(at)
		got, changed := s.Reconnect(at.Add(simclock.Minute))
		if changed || got != a {
			t.Fatalf("short outage %d changed address", i)
		}
	}
}

func TestLongOutagesEventuallyChange(t *testing.T) {
	// Far beyond lease + reclaim mean, reclaim probability approaches 1.
	changes := 0
	for trial := 0; trial < 50; trial++ {
		pool := newFakePool()
		s, err := NewSession(defaultCfg, pool, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		a1 := s.Connect(simclock.StudyStart)
		at := simclock.StudyStart.Add(24 * simclock.Hour)
		s.Disconnect(at)
		a2, changed := s.Reconnect(at.Add(7 * simclock.Day))
		if changed != (a1 != a2) {
			t.Fatal("changed flag inconsistent with addresses")
		}
		if changed {
			changes++
		}
	}
	if changes < 45 {
		t.Errorf("week-long outages changed address only %d/50 times", changes)
	}
}

func TestChangeProbabilityGrowsWithOutageDuration(t *testing.T) {
	// The paper's Figure 9 (LGI): renumbering likelihood increases with
	// outage duration. Sample many sessions at two durations.
	changeFrac := func(outage simclock.Duration) float64 {
		changes := 0
		const n = 400
		for trial := 0; trial < n; trial++ {
			s, err := NewSession(defaultCfg, newFakePool(), rng.New(uint64(1000+trial)))
			if err != nil {
				t.Fatal(err)
			}
			s.Connect(simclock.StudyStart)
			at := simclock.StudyStart.Add(48 * simclock.Hour)
			s.Disconnect(at)
			if _, changed := s.Reconnect(at.Add(outage)); changed {
				changes++
			}
		}
		return float64(changes) / n
	}
	short := changeFrac(1 * simclock.Hour)
	medium := changeFrac(12 * simclock.Hour)
	long := changeFrac(3 * simclock.Day)
	if short > 0.05 {
		t.Errorf("1h outage change fraction = %v, want ~0 (lease is 4h)", short)
	}
	if medium <= short {
		t.Errorf("12h change fraction (%v) should exceed 1h (%v)", medium, short)
	}
	if long <= medium {
		t.Errorf("3d change fraction (%v) should exceed 12h (%v)", long, medium)
	}
	if long < 0.9 {
		t.Errorf("3d outage change fraction = %v, want > 0.9", long)
	}
}

func TestReconnectWithoutDisconnectIsNoop(t *testing.T) {
	s := newSession(t, defaultCfg, newFakePool())
	a := s.Connect(simclock.StudyStart)
	got, changed := s.Reconnect(simclock.StudyStart.Add(simclock.Hour))
	if changed || got != a {
		t.Error("Reconnect while connected must be a no-op")
	}
}

func TestReconnectBeforeConnect(t *testing.T) {
	s := newSession(t, defaultCfg, newFakePool())
	got, changed := s.Reconnect(simclock.StudyStart)
	if changed || !got.IsValid() {
		t.Error("Reconnect before Connect should assign an initial address")
	}
}

func TestDisconnectTwiceKeepsFirstLease(t *testing.T) {
	s := newSession(t, defaultCfg, newFakePool())
	s.Connect(simclock.StudyStart)
	at := simclock.StudyStart.Add(simclock.Hour)
	s.Disconnect(at)
	first := s.leaseEnd
	s.Disconnect(at.Add(simclock.Hour)) // no-op while disconnected
	if s.leaseEnd != first {
		t.Error("second Disconnect must not extend the lease")
	}
}

func TestReclaimReleasesOldAddress(t *testing.T) {
	// When the address changes, the old one must be returned to the pool
	// so the held set does not grow without bound.
	pool := newFakePool()
	s := newSession(t, Config{LeaseDuration: simclock.Hour, ReclaimMean: simclock.Minute}, pool)
	a1 := s.Connect(simclock.StudyStart)
	at := simclock.StudyStart.Add(2 * simclock.Hour)
	s.Disconnect(at)
	a2, changed := s.Reconnect(at.Add(10 * simclock.Day))
	if !changed || a2 == a1 {
		t.Fatal("a 10-day outage with minute-scale reclaim must change the address")
	}
	if pool.held[a1] {
		t.Error("old address still held after reclaim")
	}
	if !pool.held[a2] {
		t.Error("new address not held")
	}
}
