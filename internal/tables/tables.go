// Package tables renders aligned plain-text tables and CSV, the output
// formats of every experiment binary and bench harness in this
// repository. It deliberately mirrors the row/column shapes of the
// paper's tables so that side-by-side comparison is easy.
package tables

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates a header and rows of string cells. The zero value is
// unusable; construct with New.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns an empty table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Missing cells render empty; extra cells are an
// error surfaced at render time.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built by applying Sprintf-style formatting to
// each (format, value) pair positionally; it is a convenience for the
// common "every column has its own verb" case.
func (t *Table) AddRowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Fields(fmt.Sprintf(format, args...)))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			return fmt.Errorf("tables: row has %d cells, header has %d", len(row), len(t.headers))
		}
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := width - len(cell); i < len(widths)-1 && pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i, width := range widths {
		rule[i] = strings.Repeat("-", width)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string, panicking only on a malformed
// table (row wider than the header).
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return "tables: " + err.Error()
	}
	return sb.String()
}

// RenderCSV writes the table as CSV (header first, no title line).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			return fmt.Errorf("tables: row has %d cells, header has %d", len(row), len(t.headers))
		}
		padded := make([]string, len(t.headers))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Pct formats a fraction as a percentage with no decimals, e.g. 0.768 ->
// "77%". The paper's tables report integer percentages.
func Pct(frac float64) string { return fmt.Sprintf("%.0f%%", frac*100) }

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }
