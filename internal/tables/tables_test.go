package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tbl := New("Sample", "AS", "ASN", "Country")
	tbl.AddRow("Orange", "3215", "France")
	tbl.AddRow("BT", "2856", "U.K.")
	got := tbl.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5 (title, header, rule, 2 rows):\n%s", len(lines), got)
	}
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "AS      ") {
		t.Errorf("header not padded to widest cell: %q", lines[1])
	}
	// Columns must start at the same offset in every row.
	asnCol := strings.Index(lines[1], "ASN")
	for _, line := range lines[3:] {
		if len(line) <= asnCol {
			t.Errorf("row %q shorter than header column offset", line)
		}
	}
	if strings.Index(lines[3], "3215") != asnCol {
		t.Errorf("ASN column misaligned:\n%s", got)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := New("", "A", "B")
	tbl.AddRow("1", "2")
	got := tbl.String()
	if strings.HasPrefix(got, "\n") {
		t.Error("empty title must not produce a leading blank line")
	}
	if !strings.HasPrefix(got, "A  B") {
		t.Errorf("first line should be the header: %q", got)
	}
}

func TestRenderShortRowPads(t *testing.T) {
	tbl := New("", "A", "B", "C")
	tbl.AddRow("1")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRejectsWideRow(t *testing.T) {
	tbl := New("", "A")
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err == nil {
		t.Error("row wider than header should fail")
	}
	if err := tbl.RenderCSV(&buf); err == nil {
		t.Error("CSV render of wide row should fail")
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := New("ignored title", "AS", "Pct")
	tbl.AddRow("Orange", "68%")
	tbl.AddRow("with,comma", "5%")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "AS,Pct\nOrange,68%\n\"with,comma\",5%\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestAddRowf(t *testing.T) {
	tbl := New("", "AS", "N", "Frac")
	tbl.AddRowf("%s %d %.2f", "DTAG", 63, 0.76)
	if tbl.NumRows() != 1 {
		t.Fatal("AddRowf did not add a row")
	}
	if got := tbl.String(); !strings.Contains(got, "DTAG  63  0.76") {
		t.Errorf("render = %q", got)
	}
}

func TestHelpers(t *testing.T) {
	if got := Pct(0.768); got != "77%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0); got != "0%" {
		t.Errorf("Pct(0) = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := I(42); got != "42" {
		t.Errorf("I = %q", got)
	}
}

func TestNoTrailingSpaces(t *testing.T) {
	tbl := New("", "A", "BBBBBB")
	tbl.AddRow("x", "y")
	for _, line := range strings.Split(tbl.String(), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("line has trailing spaces: %q", line)
		}
	}
}
