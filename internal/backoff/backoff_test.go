package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond}
	// u = 0 selects the minimum of the jitter range: exactly d/2.
	wantMin := []time.Duration{50, 100, 200, 400, 400, 400} // ms, capped at Max/2
	for attempt, want := range wantMin {
		got := p.Delay(attempt, 0)
		if got != want*time.Millisecond {
			t.Errorf("Delay(%d, 0) = %v, want %v", attempt, got, want*time.Millisecond)
		}
	}
}

func TestDelayJitterStaysInRange(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second}
	j := NewJitter(7)
	for i := 0; i < 1000; i++ {
		d := p.Delay(2, j.Uint64()) // nominal 400ms
		if d < 200*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("jittered delay %v outside [200ms, 400ms]", d)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if d := p.Delay(0, 0); d != DefaultBase/2 {
		t.Errorf("zero policy Delay(0,0) = %v, want %v", d, DefaultBase/2)
	}
	// A Base above DefaultMax must not produce Max < Base.
	big := Policy{Base: 10 * time.Second}
	if d := big.Delay(0, 0); d != 5*time.Second {
		t.Errorf("big-base Delay(0,0) = %v, want 5s", d)
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	p := Policy{Base: time.Minute, Max: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- p.Sleep(ctx, 0, 0) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Sleep returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("Sleep took %v to notice cancellation", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
}

func TestJitterDeterministic(t *testing.T) {
	a, b := NewJitter(42), NewJitter(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at word %d: %d vs %d", i, av, bv)
		}
	}
	var zero Jitter
	if zero.Uint64() != NewJitter(0).Uint64() {
		t.Error("zero-value Jitter disagrees with NewJitter(0)")
	}
}
