package backoff

import (
	"sync"
	"time"
)

// Breaker defaults used when a field is zero.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: Wait returns the remaining cooldown.
	BreakerOpen
	// BreakerHalfOpen allows trial requests after the cooldown; one
	// success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	}
	return "half-open"
}

// Breaker is a consecutive-failure circuit breaker for a single
// upstream: after Threshold consecutive Fail calls it opens and Wait
// reports the remaining Cooldown, so the caller stops hammering a
// server that is shedding load and gives it a quiet window to recover.
// Once the cooldown lapses the breaker is half-open: requests may flow
// again, and the next OK closes it while the next Fail re-opens it for
// another full cooldown.
//
// Time is passed in by the caller (like Policy's jitter word), keeping
// the breaker deterministic under test. The zero value is ready to use.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// zero means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long the breaker stays open; zero means
	// DefaultBreakerCooldown.
	Cooldown time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return DefaultBreakerThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return DefaultBreakerCooldown
}

// Fail records one failed request. Reaching the threshold (or failing
// a half-open trial) opens the breaker for a full cooldown from now.
func (b *Breaker) Fail(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold() {
		b.openUntil = now.Add(b.cooldown())
	}
}

// OK records one successful request, closing the breaker.
func (b *Breaker) OK() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
}

// Wait returns how long the caller must hold off before its next
// request: zero when closed or half-open, the remaining cooldown when
// open.
func (b *Breaker) Wait(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w := b.openUntil.Sub(now); w > 0 {
		return w
	}
	return 0
}

// State reports the breaker's position at now.
func (b *Breaker) State(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fails < b.threshold():
		return BreakerClosed
	case b.openUntil.After(now):
		return BreakerOpen
	}
	return BreakerHalfOpen
}

// MaxDelay exposes the policy's delay cap — the bound a server-supplied
// Retry-After hint is clamped to, so a misconfigured or hostile server
// cannot park a client indefinitely.
func (p Policy) MaxDelay() time.Duration { return p.max() }
