// Package backoff implements jittered exponential backoff for retry
// loops that talk to struggling servers. The paper's collection step
// scraped ~11k probe pages repeatedly for a year (§3.1); at that scale
// transient failures are the norm and tight retry loops amplify them.
// Policy spaces attempts exponentially with "equal jitter" (each delay
// is drawn uniformly from [d/2, d]), so synchronized clients spread out
// instead of hammering a recovering server in lockstep.
//
// Policy is a pure value: the jitter word is passed in by the caller,
// usually from a Jitter source, which keeps the schedule testable and
// the package free of hidden global randomness.
package backoff

import (
	"context"
	"sync"
	"time"
)

// Defaults used when a Policy field is zero.
const (
	DefaultBase = 200 * time.Millisecond
	DefaultMax  = 5 * time.Second
)

// Policy describes a jittered exponential backoff schedule. The zero
// value is ready to use: 200ms before the first retry, doubling per
// attempt, capped at 5s, each delay jittered down to no less than half
// its nominal value.
type Policy struct {
	// Base is the nominal delay before the first retry; zero means
	// DefaultBase.
	Base time.Duration
	// Max caps the exponential growth; zero means DefaultMax.
	Max time.Duration
}

func (p Policy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return DefaultBase
}

func (p Policy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	max := DefaultMax
	if b := p.base(); b > max {
		max = b
	}
	return max
}

// Delay returns the jittered delay before retry number attempt
// (0-based: attempt 0 is the wait before the first retry). u supplies
// the jitter entropy; any uint64 works, typically from a Jitter source.
// The result lies in [d/2, d] where d = min(Base<<attempt, Max).
func (p Policy) Delay(attempt int, u uint64) time.Duration {
	d := p.base()
	max := p.max()
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(u%uint64(half+1))
}

// Sleep waits Delay(attempt, u) or until ctx is done, whichever comes
// first, returning ctx.Err() in the latter case. Cancellation mid-sleep
// returns promptly — this is what makes retry loops abortable.
func (p Policy) Sleep(ctx context.Context, attempt int, u uint64) error {
	t := time.NewTimer(p.Delay(attempt, u))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Jitter is a concurrency-safe deterministic source of jitter words
// (SplitMix64). The zero value is ready to use with a fixed default
// seed; NewJitter picks an explicit seed for reproducible schedules.
type Jitter struct {
	mu    sync.Mutex
	state uint64
}

// NewJitter returns a source seeded with seed (zero selects the default
// seed, so NewJitter(0) and a zero-value Jitter agree).
func NewJitter(seed uint64) *Jitter {
	j := &Jitter{state: seed}
	return j
}

// Uint64 returns the next jitter word.
func (j *Jitter) Uint64() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state += 0x9e3779b97f4a7c15
	z := j.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
