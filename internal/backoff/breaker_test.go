package backoff

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: 10 * time.Second}
	now := time.Unix(1000, 0)

	if got := b.State(now); got != BreakerClosed {
		t.Fatalf("fresh breaker state = %v, want closed", got)
	}
	if w := b.Wait(now); w != 0 {
		t.Fatalf("fresh breaker Wait = %v, want 0", w)
	}

	// Failures below the threshold keep it closed.
	b.Fail(now)
	b.Fail(now)
	if got := b.State(now); got != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	// The third consecutive failure opens it for a full cooldown.
	b.Fail(now)
	if got := b.State(now); got != BreakerOpen {
		t.Fatalf("state after 3/3 failures = %v, want open", got)
	}
	if w := b.Wait(now.Add(4 * time.Second)); w != 6*time.Second {
		t.Fatalf("Wait mid-cooldown = %v, want 6s", w)
	}

	// Cooldown elapsed: half-open, no wait.
	later := now.Add(10 * time.Second)
	if got := b.State(later); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if w := b.Wait(later); w != 0 {
		t.Fatalf("Wait after cooldown = %v, want 0", w)
	}

	// A half-open failure re-opens for another full cooldown...
	b.Fail(later)
	if got := b.State(later); got != BreakerOpen {
		t.Fatalf("state after half-open failure = %v, want open", got)
	}
	if w := b.Wait(later); w != 10*time.Second {
		t.Fatalf("Wait after re-open = %v, want full 10s", w)
	}
	// ...and one success closes it completely.
	b.OK()
	if got := b.State(later); got != BreakerClosed {
		t.Fatalf("state after OK = %v, want closed", got)
	}
	if w := b.Wait(later); w != 0 {
		t.Fatalf("Wait after OK = %v, want 0", w)
	}

	// An interleaved success resets the consecutive count.
	b.Fail(later)
	b.Fail(later)
	b.OK()
	b.Fail(later)
	b.Fail(later)
	if got := b.State(later); got != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	var b Breaker
	now := time.Unix(0, 0)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		b.Fail(now)
	}
	if got := b.State(now); got != BreakerOpen {
		t.Fatalf("zero-value breaker after %d failures = %v, want open", DefaultBreakerThreshold, got)
	}
	if w := b.Wait(now); w != DefaultBreakerCooldown {
		t.Fatalf("zero-value cooldown = %v, want %v", w, DefaultBreakerCooldown)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
