// Package rng provides a small, splittable, deterministic pseudo-random
// number generator for the dataset simulator.
//
// The simulator needs reproducibility at two granularities: the whole
// world must be regenerable from a single seed, and each probe's event
// stream must be independent of how many other probes exist (so adding a
// probe to a config does not perturb every other probe's trace). A
// splittable generator gives both: the world seed derives a stream per
// probe by hashing the probe identifier, and each stream is a SplitMix64
// sequence. math/rand's global state offers neither property.
package rng

import "math"

const (
	gamma = 0x9E3779B97F4A7C15 // golden-ratio increment used by SplitMix64
)

// RNG is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; prefer New or a Split from a seeded parent.
type RNG struct {
	base  uint64 // identity of this stream; fixed at construction
	state uint64 // advances with each draw
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{base: seed, state: seed} }

// mix64 is the SplitMix64 output function (Stafford variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	return mix64(r.state)
}

// Split derives an independent child generator keyed by label. Child
// streams depend only on the parent's construction seed and the label —
// not on draws taken from the parent or on sibling splits — so adding a
// probe to a world never perturbs another probe's trace.
func (r *RNG) Split(label string) *RNG {
	h := r.base + gamma
	for i := 0; i < len(label); i++ {
		h = mix64(h ^ uint64(label[i]))
	}
	seed := mix64(h)
	return &RNG{base: seed, state: seed}
}

// SplitN derives an independent child generator keyed by an integer,
// e.g. a probe index. Same stability guarantees as Split.
func (r *RNG) SplitN(n uint64) *RNG {
	seed := mix64(mix64(r.base+gamma) ^ n)
	return &RNG{base: seed, state: seed}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Pareto returns a Pareto(xm, alpha) distributed value. Outage durations
// in residential networks are heavy-tailed: most last minutes, a few last
// days; Pareto matches that shape (paper Figure 9's bin occupancy).
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Normal returns a normally distributed value via Box-Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Categorical draws an index from the (unnormalised) weight vector w.
// It panics if w is empty or sums to a non-positive value.
func (r *RNG) Categorical(w []float64) int {
	var total float64
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if len(w) == 0 || total <= 0 {
		panic("rng: Categorical with empty or non-positive weights")
	}
	x := r.Float64() * total
	for i, v := range w {
		if v <= 0 {
			continue
		}
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
