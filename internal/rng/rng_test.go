package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitStableUnderSiblings(t *testing.T) {
	// A child stream must not depend on how many siblings were split
	// before it, nor on draws taken from the parent afterwards.
	parent1 := New(7)
	childA1 := parent1.Split("probe-17")

	parent2 := New(7)
	_ = parent2.Split("probe-1")
	_ = parent2.Split("probe-2")
	parent2.Uint64() // advance the parent
	childA2 := parent2.Split("probe-17")

	for i := 0; i < 100; i++ {
		v1, v2 := childA1.Uint64(), childA2.Uint64()
		if v1 != v2 {
			t.Fatalf("split child diverged at %d: %x vs %x", i, v1, v2)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	p := New(7)
	a, b := p.Split("x"), p.Split("y")
	if a.Uint64() == b.Uint64() {
		t.Error("differently-labelled children produced identical first draw")
	}
}

func TestSplitNMatchesDistinctStreams(t *testing.T) {
	p := New(9)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		v := p.SplitN(i).Uint64()
		if seen[v] {
			t.Fatalf("SplitN(%d) collided with an earlier stream", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBoolEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(42)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-42) > 1 {
		t.Errorf("Exp(42) sample mean = %v, want ~42", mean)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(60, 1.2)
		if v < 60 {
			t.Fatalf("Pareto(60, 1.2) below xm: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha 1.2, a non-trivial fraction of draws should exceed 10*xm.
	r := New(19)
	n, big := 100000, 0
	for i := 0; i < n; i++ {
		if r.Pareto(60, 1.2) > 600 {
			big++
		}
	}
	frac := float64(big) / float64(n)
	// P(X > 10 xm) = 10^-1.2 ≈ 0.063.
	if frac < 0.04 || frac > 0.09 {
		t.Errorf("Pareto tail mass = %v, want ~0.063", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Errorf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestCategorical(t *testing.T) {
	r := New(29)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / float64(n)
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("category 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(31)
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) should panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(41)
	s := []int{1, 2, 2, 3, 5, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	Shuffle(r, s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum || len(s) != 6 {
		t.Errorf("Shuffle changed contents: %v", s)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Split("probe-123456")
	}
}
