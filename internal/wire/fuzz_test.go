package wire

import (
	"encoding/binary"
	"testing"

	"dynaddr/internal/atlasdata"
)

// fuzzSeedBatch builds a well-formed four-kind batch for the corpus.
func fuzzSeedBatch(tb testing.TB) []byte {
	tb.Helper()
	var w BatchWriter
	if err := w.Meta(atlasdata.ProbeMeta{ID: 9, Country: "NL", Version: 3, Tags: []string{"home"}, ConnectedDays: 42.25}); err != nil {
		tb.Fatal(err)
	}
	if err := w.ConnLog(atlasdata.ConnLogEntry{Probe: 9, Start: 100, End: 200, Family: atlasdata.V4, Addr: 0x0A0B0C0D}); err != nil {
		tb.Fatal(err)
	}
	if err := w.ConnLog(atlasdata.ConnLogEntry{Probe: 9, Start: 300, End: 400, Family: atlasdata.V6, V6Addr: "2001:db8::9"}); err != nil {
		tb.Fatal(err)
	}
	if err := w.KRoot(atlasdata.KRootRound{Probe: 9, Timestamp: 150, Sent: 10, Success: 8, LTS: 3}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Uptime(atlasdata.UptimeRecord{Probe: 9, Timestamp: 150, Uptime: 3600}); err != nil {
		tb.Fatal(err)
	}
	return append([]byte(nil), w.Bytes()...)
}

// FuzzFrames drives hostile batches through the full binary decode
// path: frame iteration plus per-kind record decoding. Any input must
// either decode or error — never panic — and a length prefix must
// never drive an allocation beyond the bytes actually present.
func FuzzFrames(f *testing.F) {
	valid := fuzzSeedBatch(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // torn tail
	f.Add(valid[:FrameHeaderSize-2])         // header fragment
	f.Add([]byte{})                          // empty batch
	flipped := append([]byte(nil), valid...) // bit flip in first payload
	flipped[FrameHeaderSize+1] ^= 0x40
	f.Add(flipped)
	oversized := make([]byte, FrameHeaderSize+4)
	binary.LittleEndian.PutUint32(oversized, MaxFramePayload+7)
	f.Add(oversized) // oversized length prefix
	zero := make([]byte, FrameHeaderSize)
	f.Add(zero) // zero length prefix

	f.Fuzz(func(t *testing.T, b []byte) {
		it := Frames(b)
		for {
			payload, done, err := it.Next()
			if err != nil {
				if off := it.Offset(); off < 0 || off > len(b) {
					t.Fatalf("error offset %d outside batch of %d bytes", off, len(b))
				}
				return
			}
			if done {
				return
			}
			kind, err := PayloadKind(payload)
			if err != nil {
				continue
			}
			switch kind {
			case KindMeta:
				if m, err := DecodeMeta(payload); err == nil {
					// A decoded record must re-encode; the codec has no
					// unreachable states.
					if _, err := AppendMeta(nil, m); err != nil {
						t.Fatalf("re-encode meta %+v: %v", m, err)
					}
				}
			case KindConn:
				if e, err := DecodeConnLog(payload); err == nil {
					if _, err := AppendConnLog(nil, e); err != nil {
						t.Fatalf("re-encode conn %+v: %v", e, err)
					}
				}
			case KindKRoot:
				if k, err := DecodeKRoot(payload); err == nil {
					if _, err := AppendKRoot(nil, k); err != nil {
						t.Fatalf("re-encode kroot %+v: %v", k, err)
					}
				}
			case KindUptime:
				if u, err := DecodeUptime(payload); err == nil {
					if _, err := AppendUptime(nil, u); err != nil {
						t.Fatalf("re-encode uptime %+v: %v", u, err)
					}
				}
			}
		}
	})
}
