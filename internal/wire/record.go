package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// Kind tags a frame payload's record type. The byte values deliberately
// match the stream tier's WAL record kinds (meta, conn, kroot, uptime,
// in that order), so a WAL payload's kind byte and a wire payload's
// kind byte mean the same thing.
type Kind uint8

// Record kinds, in WAL order.
const (
	KindMeta Kind = iota
	KindConn
	KindKRoot
	KindUptime
	kindCount
)

// String names the kind for errors and metrics.
func (k Kind) String() string {
	switch k {
	case KindMeta:
		return "meta"
	case KindConn:
		return "connlog"
	case KindKRoot:
		return "kroot"
	case KindUptime:
		return "uptime"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrRecord marks a payload that framed correctly but does not decode
// as a record: unknown kind byte, short body, trailing bytes, or a
// field out of range.
var ErrRecord = errors.New("wire: malformed record")

// PayloadKind returns a framed payload's kind byte without decoding
// the body.
func PayloadKind(payload []byte) (Kind, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("%w: empty payload", ErrRecord)
	}
	k := Kind(payload[0])
	if k >= kindCount {
		return 0, fmt.Errorf("%w: unknown kind %d", ErrRecord, payload[0])
	}
	return k, nil
}

// PayloadProbe returns a framed payload's probe ID without decoding the
// body: every record layout places a u32 LE probe ID immediately after
// the kind byte, by design, so a router can split a batch by probe
// owner while only touching 5 bytes per record. The kind byte is
// validated; the rest of the body is not (the owning peer's decoder
// remains the authority on body validity).
func PayloadProbe(payload []byte) (atlasdata.ProbeID, error) {
	if _, err := PayloadKind(payload); err != nil {
		return 0, err
	}
	if len(payload) < 5 {
		return 0, fmt.Errorf("%w: payload too short for probe ID", ErrRecord)
	}
	return atlasdata.ProbeID(binary.LittleEndian.Uint32(payload[1:5])), nil
}

// Record bodies are fixed-width little-endian, one layout per kind,
// preceded by the kind byte:
//
//	meta:   u32 probe, u8 version, f64 connected-days, u8 country len +
//	        bytes, u8 tag count, then per tag u8 len + bytes
//	conn:   u32 probe, i64 start, i64 end, u8 family,
//	        then u32 v4 addr | u16 v6 len + bytes
//	kroot:  u32 probe, i64 timestamp, u16 sent, u16 success, i64 lts
//	uptime: u32 probe, i64 timestamp, i64 uptime
//
// Probe IDs are positive and fit comfortably in 32 bits (RIPE Atlas IDs
// are small integers); timestamps are the simulation's unix seconds.
// Decoders reject trailing bytes so a payload has exactly one valid
// reading.

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendProbe guards the int→u32 narrowing: an ID outside the wire
// range must fail at encode time, not decode as a different probe.
func appendProbe(dst []byte, id atlasdata.ProbeID) ([]byte, error) {
	if id < 0 || int64(id) > math.MaxUint32 {
		return dst, fmt.Errorf("%w: probe ID %d outside wire range", ErrRecord, id)
	}
	return appendU32(dst, uint32(id)), nil
}

func appendI64(dst []byte, v int64) []byte {
	u := uint64(v)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

// cursor is a bounds-checked little-endian reader over one payload.
// Methods record the first failure; callers check err once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated %s at offset %d", ErrRecord, what, c.off)
	}
}

func (c *cursor) u8(what string) uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16(what string) uint16 {
	if c.err != nil || c.off+2 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32(what string) uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) i64(what string) int64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return int64(v)
}

// bytes returns n raw bytes as a subslice (no copy, no allocation).
func (c *cursor) bytes(n int, what string) []byte {
	if c.err != nil || c.off+n > len(c.b) {
		c.fail(what)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// finish rejects trailing bytes and returns the first error.
func (c *cursor) finish(kind Kind) error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes after %s record", ErrRecord, len(c.b)-c.off, kind)
	}
	return nil
}

// AppendMeta appends a probe-metadata payload (kind byte + body).
func AppendMeta(dst []byte, m atlasdata.ProbeMeta) ([]byte, error) {
	if len(m.Country) > math.MaxUint8 {
		return dst, fmt.Errorf("%w: country %q too long", ErrRecord, m.Country)
	}
	if len(m.Tags) > math.MaxUint8 {
		return dst, fmt.Errorf("%w: %d tags", ErrRecord, len(m.Tags))
	}
	dst = append(dst, byte(KindMeta))
	dst, err := appendProbe(dst, m.ID)
	if err != nil {
		return dst, err
	}
	dst = append(dst, byte(m.Version))
	dst = appendI64(dst, int64(math.Float64bits(m.ConnectedDays)))
	dst = append(dst, byte(len(m.Country)))
	dst = append(dst, m.Country...)
	dst = append(dst, byte(len(m.Tags)))
	for _, t := range m.Tags {
		if len(t) > math.MaxUint8 {
			return dst, fmt.Errorf("%w: tag %q too long", ErrRecord, t)
		}
		dst = append(dst, byte(len(t)))
		dst = append(dst, t...)
	}
	return dst, nil
}

// DecodeMeta decodes a payload written by AppendMeta. Metadata arrives
// once per probe, so its string materialisation is off the hot path.
func DecodeMeta(payload []byte) (atlasdata.ProbeMeta, error) {
	c := cursor{b: payload, off: 1}
	var m atlasdata.ProbeMeta
	m.ID = atlasdata.ProbeID(c.u32("probe id"))
	m.Version = atlasdata.ProbeVersion(c.u8("version"))
	m.ConnectedDays = math.Float64frombits(uint64(c.i64("connected days")))
	m.Country = string(c.bytes(int(c.u8("country length")), "country"))
	nTags := int(c.u8("tag count"))
	if nTags > 0 && c.err == nil {
		m.Tags = make([]string, 0, nTags)
		for i := 0; i < nTags; i++ {
			m.Tags = append(m.Tags, string(c.bytes(int(c.u8("tag length")), "tag")))
		}
	}
	if err := c.finish(KindMeta); err != nil {
		return atlasdata.ProbeMeta{}, err
	}
	return m, nil
}

// Family bytes on the wire.
const (
	familyV4 = 4
	familyV6 = 6
)

// AppendConnLog appends a connection-session payload.
func AppendConnLog(dst []byte, e atlasdata.ConnLogEntry) ([]byte, error) {
	dst = append(dst, byte(KindConn))
	dst, err := appendProbe(dst, e.Probe)
	if err != nil {
		return dst, err
	}
	dst = appendI64(dst, int64(e.Start))
	dst = appendI64(dst, int64(e.End))
	if e.Family == atlasdata.V6 {
		if len(e.V6Addr) > math.MaxUint16 {
			return dst, fmt.Errorf("%w: v6 address too long", ErrRecord)
		}
		dst = append(dst, familyV6)
		dst = appendU16(dst, uint16(len(e.V6Addr)))
		return append(dst, e.V6Addr...), nil
	}
	dst = append(dst, familyV4)
	return appendU32(dst, uint32(e.Addr)), nil
}

// DecodeConnLog decodes a payload written by AppendConnLog. IPv4
// sessions — the analysis hot path — decode with zero allocations; an
// IPv6 session materialises its address string.
func DecodeConnLog(payload []byte) (atlasdata.ConnLogEntry, error) {
	c := cursor{b: payload, off: 1}
	var e atlasdata.ConnLogEntry
	e.Probe = atlasdata.ProbeID(c.u32("probe id"))
	e.Start = simclock.Time(c.i64("start"))
	e.End = simclock.Time(c.i64("end"))
	switch fam := c.u8("family"); {
	case c.err != nil:
	case fam == familyV4:
		e.Family = atlasdata.V4
		e.Addr = ip4.Addr(c.u32("v4 address"))
	case fam == familyV6:
		e.Family = atlasdata.V6
		e.V6Addr = string(c.bytes(int(c.u16("v6 length")), "v6 address"))
	default:
		return atlasdata.ConnLogEntry{}, fmt.Errorf("%w: unknown family byte %d", ErrRecord, fam)
	}
	if err := c.finish(KindConn); err != nil {
		return atlasdata.ConnLogEntry{}, err
	}
	return e, nil
}

// AppendKRoot appends a k-root round payload.
func AppendKRoot(dst []byte, k atlasdata.KRootRound) ([]byte, error) {
	if k.Sent > math.MaxUint16 || k.Success > math.MaxUint16 || k.Sent < 0 || k.Success < 0 {
		return dst, fmt.Errorf("%w: ping counts %d/%d out of range", ErrRecord, k.Success, k.Sent)
	}
	dst = append(dst, byte(KindKRoot))
	dst, err := appendProbe(dst, k.Probe)
	if err != nil {
		return dst, err
	}
	dst = appendI64(dst, int64(k.Timestamp))
	dst = appendU16(dst, uint16(k.Sent))
	dst = appendU16(dst, uint16(k.Success))
	return appendI64(dst, k.LTS), nil
}

// DecodeKRoot decodes a payload written by AppendKRoot. Zero
// allocations.
func DecodeKRoot(payload []byte) (atlasdata.KRootRound, error) {
	c := cursor{b: payload, off: 1}
	var k atlasdata.KRootRound
	k.Probe = atlasdata.ProbeID(c.u32("probe id"))
	k.Timestamp = simclock.Time(c.i64("timestamp"))
	k.Sent = int(c.u16("sent"))
	k.Success = int(c.u16("success"))
	k.LTS = c.i64("lts")
	if err := c.finish(KindKRoot); err != nil {
		return atlasdata.KRootRound{}, err
	}
	return k, nil
}

// AppendUptime appends an uptime-report payload.
func AppendUptime(dst []byte, u atlasdata.UptimeRecord) ([]byte, error) {
	dst = append(dst, byte(KindUptime))
	dst, err := appendProbe(dst, u.Probe)
	if err != nil {
		return dst, err
	}
	dst = appendI64(dst, int64(u.Timestamp))
	return appendI64(dst, u.Uptime), nil
}

// DecodeUptime decodes a payload written by AppendUptime. Zero
// allocations.
func DecodeUptime(payload []byte) (atlasdata.UptimeRecord, error) {
	c := cursor{b: payload, off: 1}
	var u atlasdata.UptimeRecord
	u.Probe = atlasdata.ProbeID(c.u32("probe id"))
	u.Timestamp = simclock.Time(c.i64("timestamp"))
	u.Uptime = c.i64("uptime")
	if err := c.finish(KindUptime); err != nil {
		return atlasdata.UptimeRecord{}, err
	}
	return u, nil
}
