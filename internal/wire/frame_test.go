package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"),
		[]byte("hello, frames"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var batch []byte
	for _, p := range payloads {
		batch = AppendFrame(batch, p)
	}
	it := Frames(batch)
	for i, want := range payloads {
		got, done, err := it.Next()
		if err != nil || done {
			t.Fatalf("frame %d: done=%v err=%v", i, done, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, done, err := it.Next(); !done || err != nil {
		t.Fatalf("expected clean end, done=%v err=%v", done, err)
	}
	if it.Offset() != len(batch) {
		t.Fatalf("offset %d after clean end, want %d", it.Offset(), len(batch))
	}
}

func TestFrameIterRejectsCorruption(t *testing.T) {
	valid := AppendFrame(nil, []byte("payload one"))
	oversized := make([]byte, FrameHeaderSize)
	binary.LittleEndian.PutUint32(oversized, MaxFramePayload+1)
	zeroLen := make([]byte, FrameHeaderSize)

	flipped := append([]byte(nil), valid...)
	flipped[FrameHeaderSize+2] ^= 0x10 // corrupt a payload byte

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"header fragment", valid[:FrameHeaderSize-3], ErrTornFrame},
		{"truncated payload", valid[:len(valid)-4], ErrTornFrame},
		{"oversized length", oversized, ErrFrameLength},
		{"zero length", zeroLen, ErrFrameLength},
		{"bit flip", flipped, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := Frames(tc.b)
			_, done, err := it.Next()
			if done {
				t.Fatal("unexpected clean end")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFrameIterOffsetAtTornTail pins the truncation contract the WAL
// relies on: after a good frame and a torn tail, Offset points at the
// start of the torn frame.
func TestFrameIterOffsetAtTornTail(t *testing.T) {
	good := AppendFrame(nil, []byte("intact"))
	tail := AppendFrame(nil, []byte("this one gets torn"))
	b := append(append([]byte(nil), good...), tail[:len(tail)-5]...)

	it := Frames(b)
	if _, done, err := it.Next(); done || err != nil {
		t.Fatalf("first frame: done=%v err=%v", done, err)
	}
	if _, _, err := it.Next(); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("err = %v, want ErrTornFrame", err)
	}
	if it.Offset() != len(good) {
		t.Fatalf("offset %d, want %d (start of torn frame)", it.Offset(), len(good))
	}
}

func TestFrameIterZeroAlloc(t *testing.T) {
	var batch []byte
	payload := bytes.Repeat([]byte{0x5C}, 64)
	for i := 0; i < 128; i++ {
		batch = AppendFrame(batch, payload)
	}
	allocs := testing.AllocsPerRun(100, func() {
		it := Frames(batch)
		for {
			_, done, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				return
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("frame iteration allocated %.1f times per batch, want 0", allocs)
	}
}

func TestPutParseFrameHeader(t *testing.T) {
	payload := []byte("check the header fields")
	var hdr [FrameHeaderSize]byte
	PutFrameHeader(hdr[:], payload)
	length, sum := ParseFrameHeader(hdr[:])
	if int(length) != len(payload) {
		t.Fatalf("length %d, want %d", length, len(payload))
	}
	if sum != Checksum(payload) {
		t.Fatalf("sum %#x, want %#x", sum, Checksum(payload))
	}
}
