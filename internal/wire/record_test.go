package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
)

func TestMetaRoundTrip(t *testing.T) {
	cases := []atlasdata.ProbeMeta{
		{ID: 1, Country: "DE", Version: 3, Tags: []string{"dsl", "home"}, ConnectedDays: 123.5},
		{ID: 4294967295, Country: "", Version: 1, ConnectedDays: 0},
		{ID: 77, Country: "US", Version: 2, Tags: []string{""}, ConnectedDays: math.Inf(1)},
	}
	for _, want := range cases {
		payload, err := AppendMeta(nil, want)
		if err != nil {
			t.Fatalf("AppendMeta(%+v): %v", want, err)
		}
		if k, err := PayloadKind(payload); err != nil || k != KindMeta {
			t.Fatalf("PayloadKind = %v, %v", k, err)
		}
		got, err := DecodeMeta(payload)
		if err != nil {
			t.Fatalf("DecodeMeta: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestConnLogRoundTrip(t *testing.T) {
	cases := []atlasdata.ConnLogEntry{
		{Probe: 10, Start: 100, End: 200, Family: atlasdata.V4, Addr: ip4.Addr(0x0A000001)},
		{Probe: 11, Start: -5, End: 0, Family: atlasdata.V4, Addr: 0},
		{Probe: 12, Start: 300, End: 400, Family: atlasdata.V6, V6Addr: "2001:db8::1"},
	}
	for _, want := range cases {
		payload, err := AppendConnLog(nil, want)
		if err != nil {
			t.Fatalf("AppendConnLog(%+v): %v", want, err)
		}
		got, err := DecodeConnLog(payload)
		if err != nil {
			t.Fatalf("DecodeConnLog: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestKRootRoundTrip(t *testing.T) {
	want := atlasdata.KRootRound{Probe: 55, Timestamp: 1420070400, Sent: 10, Success: 9, LTS: -1}
	payload, err := AppendKRoot(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeKRoot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestUptimeRoundTrip(t *testing.T) {
	want := atlasdata.UptimeRecord{Probe: 55, Timestamp: 1420070400, Uptime: 86400}
	payload, err := AppendUptime(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUptime(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := AppendMeta(nil, atlasdata.ProbeMeta{ID: -1}); !errors.Is(err, ErrRecord) {
		t.Fatalf("negative probe ID: err = %v", err)
	}
	if _, err := AppendConnLog(nil, atlasdata.ConnLogEntry{Probe: math.MaxUint32 + 1}); !errors.Is(err, ErrRecord) {
		t.Fatalf("oversized probe ID: err = %v", err)
	}
	if _, err := AppendKRoot(nil, atlasdata.KRootRound{Probe: 1, Sent: math.MaxUint16 + 1}); !errors.Is(err, ErrRecord) {
		t.Fatalf("oversized sent count: err = %v", err)
	}
	if _, err := AppendKRoot(nil, atlasdata.KRootRound{Probe: 1, Success: -2}); !errors.Is(err, ErrRecord) {
		t.Fatalf("negative success count: err = %v", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	conn, err := AppendConnLog(nil, atlasdata.ConnLogEntry{Probe: 1, Start: 1, End: 2, Family: atlasdata.V4, Addr: 9})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := AppendMeta(nil, atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: 1})
	if err != nil {
		t.Fatal(err)
	}

	badFamily := append([]byte(nil), conn...)
	badFamily[1+4+8+8] = 9 // family byte

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0x7F, 0, 0}},
		{"truncated conn", conn[:len(conn)-2]},
		{"trailing bytes", append(append([]byte(nil), conn...), 0)},
		{"unknown family", badFamily},
		{"truncated meta", meta[:len(meta)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var decErr error
			if len(tc.payload) > 0 {
				switch Kind(tc.payload[0]) {
				case KindMeta:
					_, decErr = DecodeMeta(tc.payload)
				case KindConn:
					_, decErr = DecodeConnLog(tc.payload)
				default:
					_, decErr = PayloadKind(tc.payload)
				}
			} else {
				_, decErr = PayloadKind(tc.payload)
			}
			if !errors.Is(decErr, ErrRecord) {
				t.Fatalf("err = %v, want ErrRecord", decErr)
			}
		})
	}
}

// TestDecodeZeroAlloc pins the hot-path contract: v4 sessions, k-root
// rounds, and uptime reports decode without touching the heap.
func TestDecodeZeroAlloc(t *testing.T) {
	conn, err := AppendConnLog(nil, atlasdata.ConnLogEntry{Probe: 1, Start: 1, End: 2, Family: atlasdata.V4, Addr: 9})
	if err != nil {
		t.Fatal(err)
	}
	kroot, err := AppendKRoot(nil, atlasdata.KRootRound{Probe: 1, Timestamp: 3, Sent: 10, Success: 9, LTS: 1})
	if err != nil {
		t.Fatal(err)
	}
	uptime, err := AppendUptime(nil, atlasdata.UptimeRecord{Probe: 1, Timestamp: 3, Uptime: 4})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeConnLog(conn); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeKRoot(kroot); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeUptime(uptime); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-path decode allocated %.1f times per run, want 0", allocs)
	}
}

func TestBatchWriterRoundTrip(t *testing.T) {
	var w BatchWriter
	if err := w.Meta(atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: 2, ConnectedDays: 9.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.ConnLog(atlasdata.ConnLogEntry{Probe: 1, Start: 10, End: 20, Family: atlasdata.V4, Addr: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.KRoot(atlasdata.KRootRound{Probe: 1, Timestamp: 15, Sent: 10, Success: 10, LTS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Uptime(atlasdata.UptimeRecord{Probe: 1, Timestamp: 15, Uptime: 5}); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", w.Records())
	}
	if w.Len() != len(w.Bytes()) {
		t.Fatalf("Len() = %d, Bytes() has %d", w.Len(), len(w.Bytes()))
	}

	wantKinds := []Kind{KindMeta, KindConn, KindKRoot, KindUptime}
	it := Frames(w.Bytes())
	for i, want := range wantKinds {
		payload, done, err := it.Next()
		if err != nil || done {
			t.Fatalf("frame %d: done=%v err=%v", i, done, err)
		}
		k, err := PayloadKind(payload)
		if err != nil || k != want {
			t.Fatalf("frame %d: kind %v err=%v, want %v", i, k, err, want)
		}
	}
	if _, done, _ := it.Next(); !done {
		t.Fatal("expected clean end")
	}

	w.Reset()
	if w.Len() != 0 || w.Records() != 0 {
		t.Fatalf("after Reset: Len=%d Records=%d", w.Len(), w.Records())
	}
}
