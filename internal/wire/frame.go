// Package wire defines the binary interchange format of the live
// ingest tier: a length-prefixed, CRC32C-checked frame layer shared
// with the write-ahead log, and a fixed-width binary record codec for
// the four record kinds the stream accepts (probe metadata, connection
// sessions, k-root rounds, uptime reports).
//
// A wire batch — the body of a POST /api/v2/stream/records request
// with Content-Type application/x-atlas-binary — is a plain
// concatenation of frames:
//
//	[4B little-endian payload length][4B little-endian CRC32C of payload][payload]
//
// which is byte-for-byte the frame layout of a WAL segment
// (internal/wal builds its segments through this package), so one
// reader handles both: a WAL segment can be shipped to a peer as a
// batch, and a batch can be appended to a log without reframing. Each
// frame payload is one record: a kind byte followed by the kind's
// fixed-width little-endian body (see record.go).
//
// The decode path is allocation-free: FrameIter yields subslices of
// the batch buffer, and the per-kind Decode functions return value
// structs, so ingesting a binary batch costs zero heap allocations per
// record (the one exception is an IPv6 session address, which must
// materialise its string). Corrupt input — torn frames, flipped bits,
// oversized length prefixes — is rejected with an error before any
// length-driven allocation can happen, so a hostile batch cannot make
// the decoder allocate more than the bytes it actually sent.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// FrameHeaderSize is the fixed per-frame overhead: 4 bytes of
	// payload length plus 4 bytes of CRC32C, both little-endian.
	FrameHeaderSize = 8
	// MaxFramePayload bounds a single frame's payload. A length prefix
	// beyond it is treated as corruption, not as a huge record — the
	// same rule the WAL applies to its segments.
	MaxFramePayload = 16 << 20
)

// castagnoli is the CRC32C polynomial table; Castagnoli matches the
// WAL's historical choice and has hardware support on current CPUs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of a frame payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Framing errors. FrameIter wraps them with the batch offset; use
// errors.Is to classify.
var (
	// ErrTornFrame marks a frame whose header or payload extends past
	// the end of the input — a truncated batch or a torn WAL tail.
	ErrTornFrame = errors.New("wire: torn frame")
	// ErrFrameLength marks a length prefix of zero or beyond
	// MaxFramePayload.
	ErrFrameLength = errors.New("wire: frame length out of range")
	// ErrChecksum marks a payload whose CRC32C does not match its
	// header.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// PutFrameHeader writes payload's frame header (length + CRC32C) into
// hdr, which must be at least FrameHeaderSize bytes.
func PutFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
}

// ParseFrameHeader splits a frame header into its declared payload
// length and checksum. It does not validate either; callers check the
// length against MaxFramePayload and the remaining input, then the
// checksum against the payload actually read.
func ParseFrameHeader(hdr []byte) (length, sum uint32) {
	return binary.LittleEndian.Uint32(hdr[0:4]), binary.LittleEndian.Uint32(hdr[4:8])
}

// AppendFrame appends one framed payload to dst and returns the
// extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	PutFrameHeader(hdr[:], payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// FrameIter walks the frames of a batch in place. Payloads are
// subslices of the input — valid until the caller releases the batch
// buffer — so iteration allocates nothing.
type FrameIter struct {
	b   []byte
	off int
}

// Frames returns an iterator over b's frames.
func Frames(b []byte) FrameIter { return FrameIter{b: b} }

// Offset returns the byte offset of the next unread frame — on error,
// the offset of the frame that failed, which for a torn WAL tail is
// exactly where the segment should be truncated.
func (it *FrameIter) Offset() int { return it.off }

// Next returns the next frame's payload. done is true at the clean end
// of the input; an error describes the first malformed frame, wrapped
// around one of ErrTornFrame, ErrFrameLength, ErrChecksum.
func (it *FrameIter) Next() (payload []byte, done bool, err error) {
	rest := it.b[it.off:]
	if len(rest) == 0 {
		return nil, true, nil
	}
	if len(rest) < FrameHeaderSize {
		return nil, false, fmt.Errorf("%w: %d byte header fragment at offset %d", ErrTornFrame, len(rest), it.off)
	}
	length, sum := ParseFrameHeader(rest)
	if length == 0 || length > MaxFramePayload {
		return nil, false, fmt.Errorf("%w: %d at offset %d", ErrFrameLength, length, it.off)
	}
	if uint32(len(rest)-FrameHeaderSize) < length {
		return nil, false, fmt.Errorf("%w: payload of %d bytes exceeds remaining %d at offset %d",
			ErrTornFrame, length, len(rest)-FrameHeaderSize, it.off)
	}
	payload = rest[FrameHeaderSize : FrameHeaderSize+length]
	if Checksum(payload) != sum {
		return nil, false, fmt.Errorf("%w: frame at offset %d", ErrChecksum, it.off)
	}
	it.off += FrameHeaderSize + int(length)
	return payload, false, nil
}
