package wire

import "dynaddr/internal/atlasdata"

// BatchWriter accumulates framed records into one contiguous batch —
// the body of a binary POST /api/v2/stream/records request, or a run
// of frames to append to a peer's log. The zero value is ready to use;
// Reset keeps the capacity, so a producer reuses one writer (and its
// scratch buffer) across batches without reallocating.
type BatchWriter struct {
	buf     []byte
	scratch []byte
	records int
}

// add frames one encoded payload.
func (w *BatchWriter) add(payload []byte, err error) error {
	if err != nil {
		return err
	}
	w.buf = AppendFrame(w.buf, payload)
	w.records++
	return nil
}

// Meta appends one probe-metadata record.
func (w *BatchWriter) Meta(m atlasdata.ProbeMeta) error {
	var err error
	w.scratch, err = AppendMeta(w.scratch[:0], m)
	return w.add(w.scratch, err)
}

// ConnLog appends one connection-session record.
func (w *BatchWriter) ConnLog(e atlasdata.ConnLogEntry) error {
	var err error
	w.scratch, err = AppendConnLog(w.scratch[:0], e)
	return w.add(w.scratch, err)
}

// KRoot appends one k-root round record.
func (w *BatchWriter) KRoot(k atlasdata.KRootRound) error {
	var err error
	w.scratch, err = AppendKRoot(w.scratch[:0], k)
	return w.add(w.scratch, err)
}

// Uptime appends one uptime-report record.
func (w *BatchWriter) Uptime(u atlasdata.UptimeRecord) error {
	var err error
	w.scratch, err = AppendUptime(w.scratch[:0], u)
	return w.add(w.scratch, err)
}

// Bytes returns the accumulated batch. The slice aliases the writer's
// buffer and is invalidated by the next append or Reset.
func (w *BatchWriter) Bytes() []byte { return w.buf }

// Len returns the batch size in bytes.
func (w *BatchWriter) Len() int { return len(w.buf) }

// Records returns how many records the batch holds.
func (w *BatchWriter) Records() int { return w.records }

// Reset empties the batch, keeping capacity.
func (w *BatchWriter) Reset() {
	w.buf = w.buf[:0]
	w.records = 0
}
