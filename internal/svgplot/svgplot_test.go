package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func TestDurationCDFWellFormed(t *testing.T) {
	svg := DurationCDF("Figure 1", []Series{
		{Label: "EU", Points: []Point{{24, 0.3}, {168, 0.7}, {1440, 1}}},
		{Label: "NA", Points: []Point{{720, 0.4}, {1440, 1}}},
	})
	wellFormed(t, svg)
	for _, want := range []string{"Figure 1", "EU", "NA", "1d", "1mo", "<path"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestDurationCDFClampsOutOfRange(t *testing.T) {
	// Durations beyond the axis must clamp, not escape the plot box.
	svg := DurationCDF("clamp", []Series{
		{Label: "x", Points: []Point{{0.01, 0.2}, {99999, 1}}},
	})
	wellFormed(t, svg)
	// No x coordinate may exceed the plot's right edge in the path.
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("SVG contains non-finite coordinates")
	}
}

func TestProbabilityECDFWellFormed(t *testing.T) {
	svg := ProbabilityECDF("Figure 7", "P(ac|nw)", []Series{
		{Label: "Orange", Points: []Point{{0, 0.2}, {1, 1}}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "P(ac|nw)") {
		t.Error("x label missing")
	}
}

func TestHistogramWellFormed(t *testing.T) {
	svg := Histogram("Figure 9", "Outage duration", "Outages",
		[]string{"<5m", "5-10m"}, []float64{100, 40}, []float64{80, 10})
	wellFormed(t, svg)
	if !strings.Contains(svg, "&lt;5m") {
		t.Error("bar labels must be XML-escaped")
	}
	if strings.Count(svg, "<rect") < 5 { // bg, frame, 2 bars, 2 overlays, legend
		t.Errorf("too few rects:\n%s", svg)
	}
}

func TestHistogramEmpty(t *testing.T) {
	svg := Histogram("empty", "x", "y", nil, nil, nil)
	wellFormed(t, svg)
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != `a&lt;b&gt;&amp;&quot;c&quot;` {
		t.Errorf("escape = %q", got)
	}
}

func TestManySeriesRecyclePalette(t *testing.T) {
	var series []Series
	for i := 0; i < 12; i++ {
		series = append(series, Series{Label: "s", Points: []Point{{24, 1}}})
	}
	wellFormed(t, DurationCDF("many", series))
}
