// Package svgplot renders the paper's figure types — step CDFs on a
// log-scaled duration axis, probability ECDFs, and histograms — as
// standalone SVG documents, using only the standard library.
//
// The goal is faithful figure regeneration, not a charting framework:
// the axes, scales and series shapes mirror the paper's Figures 1-9.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is an (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// palette holds distinguishable stroke colours, recycled when series
// outnumber it.
var palette = []string{
	"#1b6ca8", "#c23b22", "#2e8540", "#8031a7", "#b8860b",
	"#008080", "#d81b60", "#5d4037",
}

// Chart geometry.
const (
	width      = 720
	height     = 440
	marginL    = 70
	marginR    = 160 // room for the legend
	marginT    = 40
	marginB    = 55
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	fontFamily = "sans-serif"
)

type buf struct{ strings.Builder }

func (b *buf) f(format string, args ...any) { fmt.Fprintf(&b.Builder, format, args...) }

func open(b *buf, title string) {
	b.f(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.f(`<rect width="%d" height="%d" fill="white"/>`, width, height)
	b.f(`<text x="%d" y="24" font-family="%s" font-size="16" font-weight="bold">%s</text>`,
		marginL, fontFamily, escape(title))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// durationTicks are the paper's x-axis marks for duration CDFs.
var durationTicks = []struct {
	hours float64
	label string
}{
	{1, "1h"}, {6, "6h"}, {12, "12h"}, {24, "1d"}, {72, "3d"},
	{168, "1w"}, {336, "2w"}, {720, "1mo"}, {1440, "2mo"},
}

// DurationCDF renders step CDFs over a log-scaled hour axis — the shape
// of the paper's Figures 1-3. Series points are (hours, cumulative
// fraction).
func DurationCDF(title string, series []Series) string {
	var b buf
	open(&b, title)

	minX, maxX := 1.0, 1440.0
	xOf := func(hours float64) float64 {
		if hours < minX {
			hours = minX
		}
		if hours > maxX {
			hours = maxX
		}
		frac := (math.Log(hours) - math.Log(minX)) / (math.Log(maxX) - math.Log(minX))
		return marginL + frac*plotW
	}
	yOf := func(fraction float64) float64 {
		return marginT + (1-fraction)*plotH
	}

	drawFrame(&b)
	for _, tick := range durationTicks {
		x := xOf(tick.hours)
		b.f(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc" stroke-dasharray="3,3"/>`,
			x, marginT, x, marginT+plotH)
		b.f(`<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`,
			x, marginT+plotH+18, fontFamily, tick.label)
	}
	yTicksAndLabel(&b, "Fraction of total address-duration")
	b.f(`<text x="%d" y="%d" font-family="%s" font-size="12" text-anchor="middle">IP address-duration (log scale)</text>`,
		marginL+plotW/2, height-12, fontFamily)

	for i, s := range series {
		color := palette[i%len(palette)]
		if len(s.Points) > 0 {
			var path strings.Builder
			// Step function: start at the x-axis floor.
			fmt.Fprintf(&path, "M %.1f %.1f", xOf(minX), yOf(0))
			prevY := 0.0
			for _, p := range s.Points {
				fmt.Fprintf(&path, " L %.1f %.1f L %.1f %.1f",
					xOf(p.X), yOf(prevY), xOf(p.X), yOf(p.Y))
				prevY = p.Y
			}
			fmt.Fprintf(&path, " L %.1f %.1f", xOf(maxX), yOf(prevY))
			b.f(`<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`, path.String(), color)
		}
		legendEntry(&b, i, s.Label, color)
	}
	b.f(`</svg>`)
	return b.String()
}

// ProbabilityECDF renders per-probe probability ECDFs on a linear [0,1]
// axis — the paper's Figures 7 and 8. Series points are (probability,
// cumulative fraction of probes).
func ProbabilityECDF(title, xLabel string, series []Series) string {
	var b buf
	open(&b, title)
	xOf := func(p float64) float64 { return marginL + p*plotW }
	yOf := func(f float64) float64 { return marginT + (1-f)*plotH }

	drawFrame(&b)
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		x := xOf(v)
		b.f(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc" stroke-dasharray="3,3"/>`,
			x, marginT, x, marginT+plotH)
		b.f(`<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%.1f</text>`,
			x, marginT+plotH+18, fontFamily, v)
	}
	yTicksAndLabel(&b, "Fraction of probes")
	b.f(`<text x="%d" y="%d" font-family="%s" font-size="12" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-12, fontFamily, escape(xLabel))

	for i, s := range series {
		color := palette[i%len(palette)]
		if len(s.Points) > 0 {
			var path strings.Builder
			fmt.Fprintf(&path, "M %.1f %.1f", xOf(0), yOf(0))
			prevY := 0.0
			for _, p := range s.Points {
				fmt.Fprintf(&path, " L %.1f %.1f L %.1f %.1f",
					xOf(p.X), yOf(prevY), xOf(p.X), yOf(p.Y))
				prevY = p.Y
			}
			fmt.Fprintf(&path, " L %.1f %.1f", xOf(1), yOf(prevY))
			b.f(`<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`, path.String(), color)
		}
		legendEntry(&b, i, s.Label, color)
	}
	b.f(`</svg>`)
	return b.String()
}

// Histogram renders labelled bars with an optional highlighted overlay
// share per bar (the paper's Figure 9 style: total outages with the
// renumbered share shaded). overlay may be nil for plain histograms
// (Figures 4-6).
func Histogram(title, xLabel, yLabel string, labels []string, values []float64, overlay []float64) string {
	var b buf
	open(&b, title)
	maxV := 1.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	n := len(values)
	if n == 0 {
		n = 1
	}
	barW := float64(plotW) / float64(n) * 0.72
	gap := float64(plotW) / float64(n)

	drawFrame(&b)
	for i, v := range values {
		x := marginL + float64(i)*gap + (gap-barW)/2
		h := v / maxV * plotH
		y := marginT + plotH - h
		b.f(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#cfd8dc" stroke="#607d8b"/>`,
			x, y, barW, h)
		if overlay != nil && i < len(overlay) && overlay[i] > 0 {
			oh := overlay[i] / maxV * plotH
			b.f(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#1b6ca8"/>`,
				x, marginT+plotH-oh, barW, oh)
		}
		if i < len(labels) {
			b.f(`<text x="%.1f" y="%d" font-family="%s" font-size="10" text-anchor="middle">%s</text>`,
				x+barW/2, marginT+plotH+16, fontFamily, escape(labels[i]))
		}
	}
	// y ticks at 0, max/2, max.
	for _, frac := range []float64{0, 0.5, 1} {
		y := marginT + (1-frac)*plotH
		b.f(`<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%.0f</text>`,
			marginL-8, y+4, fontFamily, frac*maxV)
	}
	b.f(`<text x="20" y="%d" font-family="%s" font-size="12" transform="rotate(-90 20 %d)" text-anchor="middle">%s</text>`,
		marginT+plotH/2, fontFamily, marginT+plotH/2, escape(yLabel))
	b.f(`<text x="%d" y="%d" font-family="%s" font-size="12" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-12, fontFamily, escape(xLabel))
	if overlay != nil {
		legendEntry(&b, 0, "renumbered", "#1b6ca8")
		legendEntry(&b, 1, "all outages", "#cfd8dc")
	}
	b.f(`</svg>`)
	return b.String()
}

func drawFrame(b *buf) {
	b.f(`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="black"/>`,
		marginL, marginT, plotW, plotH)
}

func yTicksAndLabel(b *buf, label string) {
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		y := marginT + (1-v)*plotH
		b.f(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc" stroke-dasharray="3,3"/>`,
			marginL, y, marginL+plotW, y)
		b.f(`<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%.1f</text>`,
			marginL-8, y+4, fontFamily, v)
	}
	b.f(`<text x="20" y="%d" font-family="%s" font-size="12" transform="rotate(-90 20 %d)" text-anchor="middle">%s</text>`,
		marginT+plotH/2, fontFamily, marginT+plotH/2, escape(label))
}

func legendEntry(b *buf, i int, label, color string) {
	x := width - marginR + 14
	y := marginT + 10 + i*20
	b.f(`<rect x="%d" y="%d" width="14" height="10" fill="%s"/>`, x, y, color)
	b.f(`<text x="%d" y="%d" font-family="%s" font-size="12">%s</text>`,
		x+20, y+9, fontFamily, escape(label))
}
