package stats

import (
	"encoding/json"
	"fmt"
)

// weightedJSON is the stable wire shape of a Weighted distribution:
// values ascending, masses positionally aligned, and the accumulated
// total carried verbatim. encoding/json renders float64 with the
// shortest representation that parses back to the same bits, so a
// marshal/unmarshal round trip reproduces the distribution exactly —
// the property the ingest checkpoint format relies on for byte-
// identical recovery.
type weightedJSON struct {
	Values []float64 `json:"values,omitempty"`
	Masses []float64 `json:"masses,omitempty"`
	Total  float64   `json:"total"`
}

// MarshalJSON implements json.Marshaler with an exact, deterministic
// encoding (values sorted ascending).
func (w *Weighted) MarshalJSON() ([]byte, error) {
	enc := weightedJSON{Total: w.total}
	if len(w.mass) > 0 {
		enc.Values = w.Values()
		enc.Masses = make([]float64, len(enc.Values))
		for i, v := range enc.Values {
			enc.Masses[i] = w.mass[v]
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON implements json.Unmarshaler. The stored total is
// restored verbatim rather than re-accumulated, so a distribution
// round-trips to bitwise-equal state regardless of how its weights
// were originally ordered.
func (w *Weighted) UnmarshalJSON(b []byte) error {
	var dec weightedJSON
	if err := json.Unmarshal(b, &dec); err != nil {
		return err
	}
	if len(dec.Values) != len(dec.Masses) {
		return fmt.Errorf("stats: weighted distribution with %d values but %d masses",
			len(dec.Values), len(dec.Masses))
	}
	w.mass = nil
	w.total = dec.Total
	if len(dec.Values) > 0 {
		w.mass = make(map[float64]float64, len(dec.Values))
		for i, v := range dec.Values {
			w.mass[v] = dec.Masses[i]
		}
	}
	return nil
}
