// Package stats provides the small statistical toolkit the analyses
// need: weighted discrete distributions (for the paper's total-time-
// fraction metric), empirical CDFs, quantiles, and histograms with
// explicit bin edges (for the paper's outage-duration bins).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is one step of a cumulative distribution: the fraction of mass
// at values <= X.
type Point struct {
	X float64
	Y float64
}

// Weighted is a discrete distribution over float64 values where each
// value carries accumulated weight. The paper's total time fraction is
// exactly this: each address duration d contributes weight d·n(d).
// The zero value is empty and usable.
type Weighted struct {
	mass  map[float64]float64
	total float64
}

// Add accumulates weight at value. Non-positive weights are ignored.
func (w *Weighted) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	if w.mass == nil {
		w.mass = make(map[float64]float64)
	}
	w.mass[value] += weight
	w.total += weight
}

// AddDist merges another distribution into w. Values are merged in
// ascending order so the floating-point accumulation of the total is
// deterministic: merging the same distributions in the same sequence
// yields bitwise-equal totals regardless of how the inputs were built —
// the property the parallel analysis engine relies on to produce
// byte-identical reports on any schedule.
func (w *Weighted) AddDist(other *Weighted) {
	if len(other.mass) == 0 {
		return
	}
	for _, v := range other.Values() {
		w.Add(v, other.mass[v])
	}
}

// Total returns the total accumulated weight.
func (w *Weighted) Total() float64 { return w.total }

// MassOf returns the absolute weight accumulated exactly at value.
func (w *Weighted) MassOf(value float64) float64 { return w.mass[value] }

// Clone returns an independent copy of the distribution.
func (w *Weighted) Clone() *Weighted {
	c := &Weighted{total: w.total}
	if w.mass != nil {
		c.mass = make(map[float64]float64, len(w.mass))
		for v, m := range w.mass {
			c.mass[v] = m
		}
	}
	return c
}

// Len returns the number of distinct values carrying mass.
func (w *Weighted) Len() int { return len(w.mass) }

// MassAt returns the fraction of total weight concentrated exactly at
// value — the paper's f_d for a duration d when weights are d·n(d).
func (w *Weighted) MassAt(value float64) float64 {
	if w.total == 0 {
		return 0
	}
	return w.mass[value] / w.total
}

// FractionAtMost returns the fraction of total weight at values <= x.
func (w *Weighted) FractionAtMost(x float64) float64 {
	if w.total == 0 {
		return 0
	}
	var acc float64
	for v, m := range w.mass {
		if v <= x {
			acc += m
		}
	}
	return acc / w.total
}

// CDF returns the cumulative distribution as sorted points, one per
// distinct value. Plot these to reproduce the paper's Figures 1-3.
func (w *Weighted) CDF() []Point {
	if len(w.mass) == 0 {
		return nil
	}
	values := make([]float64, 0, len(w.mass))
	for v := range w.mass {
		values = append(values, v)
	}
	sort.Float64s(values)
	out := make([]Point, len(values))
	var acc float64
	for i, v := range values {
		acc += w.mass[v]
		out[i] = Point{X: v, Y: acc / w.total}
	}
	return out
}

// Modes returns the values whose exact-value mass fraction is at least
// threshold, sorted by descending mass. These are the vertical segments
// in the paper's CDFs — the periodic renumbering signatures.
func (w *Weighted) Modes(threshold float64) []Point {
	var out []Point
	for v, m := range w.mass {
		if frac := m / w.total; w.total > 0 && frac >= threshold {
			out = append(out, Point{X: v, Y: frac})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y > out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// MaxValue returns the largest value carrying mass, or 0 for an empty
// distribution.
func (w *Weighted) MaxValue() float64 {
	var best float64
	first := true
	for v := range w.mass {
		if first || v > best {
			best, first = v, false
		}
	}
	return best
}

// Values returns all distinct values carrying mass, sorted ascending.
func (w *Weighted) Values() []float64 {
	out := make([]float64, 0, len(w.mass))
	for v := range w.mass {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// Sample is an unweighted collection of observations with quantile and
// ECDF queries. The zero value is empty and usable.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation; NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean; NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// FractionAtMost returns the fraction of observations <= x.
func (s *Sample) FractionAtMost(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// ECDF returns the empirical CDF as sorted points, one per distinct
// observation. The paper's Figures 7 and 8 are ECDFs of per-probe
// conditional probabilities.
func (s *Sample) ECDF() []Point {
	if len(s.xs) == 0 {
		return nil
	}
	s.ensureSorted()
	var out []Point
	n := float64(len(s.xs))
	for i := 0; i < len(s.xs); i++ {
		// Collapse runs of equal values into one step.
		if i+1 < len(s.xs) && s.xs[i+1] == s.xs[i] {
			continue
		}
		out = append(out, Point{X: s.xs[i], Y: float64(i+1) / n})
	}
	return out
}

// Histogram counts observations into bins with explicit edges. An
// observation x lands in bin i when edges[i] <= x < edges[i+1]; values
// below the first edge land in bin 0's underflow sibling (bin -1 is not
// kept — they go to bin 0) and values at or above the last edge land in
// the final overflow bin. Build with NewHistogram.
type Histogram struct {
	edges  []float64 // interior edges, ascending; len(edges)+1 bins
	counts []int
}

// NewHistogram builds a histogram with the given ascending interior
// edges, producing len(edges)+1 bins: (-inf, e0), [e0, e1), ...,
// [eLast, +inf).
func NewHistogram(edges ...float64) (*Histogram, error) {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: histogram edges not strictly ascending at %d", i)
		}
	}
	return &Histogram{edges: edges, counts: make([]int, len(edges)+1)}, nil
}

// BinOf returns the bin index x falls into.
func (h *Histogram) BinOf(x float64) int {
	// First edge e with x < e; bin index equals count of edges <= x.
	return sort.SearchFloat64s(h.edges, math.Nextafter(x, math.Inf(1)))
}

// Add counts one observation.
func (h *Histogram) Add(x float64) { h.counts[h.BinOf(x)]++ }

// Counts returns the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// Total returns the number of observations added.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.counts {
		t += c
	}
	return t
}
