package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedPaperExample(t *testing.T) {
	// Paper §4.1, Table 1 example: the CPE spent roughly three quarters
	// of the measured time in 24-hour durations even though only half the
	// durations were 24h. Model: durations 14.2, 0.7, 7.2, 23.6, 23.6,
	// 23.6 hours, each weighted by its own length.
	durations := []float64{14.2, 0.7, 7.2, 23.6, 23.6, 23.6}
	var w Weighted
	for _, d := range durations {
		w.Add(d, d)
	}
	frac24 := w.MassAt(23.6)
	if frac24 < 0.70 || frac24 > 0.80 {
		t.Errorf("mass at ~24h = %v, want ~0.76", frac24)
	}
}

func TestWeightedMassAndTotal(t *testing.T) {
	var w Weighted
	w.Add(24, 48) // two 24h durations: weight 24*2
	w.Add(12, 12)
	if w.Total() != 60 {
		t.Errorf("Total = %v", w.Total())
	}
	if got := w.MassAt(24); got != 0.8 {
		t.Errorf("MassAt(24) = %v, want 0.8", got)
	}
	if got := w.MassAt(99); got != 0 {
		t.Errorf("MassAt(99) = %v, want 0", got)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWeightedIgnoresNonPositive(t *testing.T) {
	var w Weighted
	w.Add(5, 0)
	w.Add(5, -3)
	if w.Total() != 0 || w.Len() != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestWeightedCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var w Weighted
		for i, v := range vals {
			w.Add(math.Abs(v), float64(i%7)+0.5)
		}
		cdf := w.CDF()
		prevX := math.Inf(-1)
		prevY := 0.0
		for _, p := range cdf {
			if p.X <= prevX || p.Y < prevY || p.Y > 1+1e-9 {
				return false
			}
			prevX, prevY = p.X, p.Y
		}
		return len(cdf) == 0 || math.Abs(cdf[len(cdf)-1].Y-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedFractionAtMost(t *testing.T) {
	var w Weighted
	w.Add(1, 1)
	w.Add(2, 1)
	w.Add(3, 2)
	if got := w.FractionAtMost(2); got != 0.5 {
		t.Errorf("FractionAtMost(2) = %v, want 0.5", got)
	}
	if got := w.FractionAtMost(0.5); got != 0 {
		t.Errorf("FractionAtMost(0.5) = %v, want 0", got)
	}
	if got := w.FractionAtMost(3); got != 1 {
		t.Errorf("FractionAtMost(3) = %v, want 1", got)
	}
}

func TestWeightedModes(t *testing.T) {
	var w Weighted
	w.Add(24, 76)
	w.Add(48, 10)
	w.Add(1, 14)
	modes := w.Modes(0.25)
	if len(modes) != 1 || modes[0].X != 24 {
		t.Errorf("Modes(0.25) = %v, want just 24", modes)
	}
	all := w.Modes(0.05)
	if len(all) != 3 || all[0].X != 24 {
		t.Errorf("Modes(0.05) = %v, want 24 first", all)
	}
}

func TestWeightedAddDistAndMax(t *testing.T) {
	var a, b Weighted
	a.Add(1, 1)
	b.Add(2, 3)
	a.AddDist(&b)
	if a.Total() != 4 || a.MassAt(2) != 0.75 {
		t.Errorf("AddDist merge wrong: total=%v", a.Total())
	}
	if a.MaxValue() != 2 {
		t.Errorf("MaxValue = %v", a.MaxValue())
	}
	var empty Weighted
	if empty.MaxValue() != 0 {
		t.Error("empty MaxValue should be 0")
	}
	if got := empty.MassAt(1); got != 0 {
		t.Errorf("empty MassAt = %v", got)
	}
}

func TestWeightedValuesSorted(t *testing.T) {
	var w Weighted
	for _, v := range []float64{5, 1, 3} {
		w.Add(v, 1)
	}
	vals := w.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 3 || vals[2] != 5 {
		t.Errorf("Values = %v", vals)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("Q1 = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Median()) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample quantile/mean should be NaN")
	}
	if s.FractionAtMost(5) != 0 {
		t.Error("empty FractionAtMost should be 0")
	}
	if s.ECDF() != nil {
		t.Error("empty ECDF should be nil")
	}
}

func TestSampleFractionAtMost(t *testing.T) {
	var s Sample
	for _, x := range []float64{0, 0, 0.5, 1, 1} {
		s.Add(x)
	}
	if got := s.FractionAtMost(0); got != 0.4 {
		t.Errorf("FractionAtMost(0) = %v, want 0.4", got)
	}
	if got := s.FractionAtMost(0.9); got != 0.6 {
		t.Errorf("FractionAtMost(0.9) = %v, want 0.6", got)
	}
	if got := s.FractionAtMost(1); got != 1 {
		t.Errorf("FractionAtMost(1) = %v, want 1", got)
	}
}

func TestSampleECDFCollapsesTies(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 1, 1, 2} {
		s.Add(x)
	}
	ecdf := s.ECDF()
	if len(ecdf) != 2 {
		t.Fatalf("ECDF has %d points, want 2", len(ecdf))
	}
	if ecdf[0].X != 1 || ecdf[0].Y != 0.75 || ecdf[1].Y != 1 {
		t.Errorf("ECDF = %v", ecdf)
	}
}

func TestSampleAddAfterQueryResorts(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Median()
	s.Add(1)
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) after late Add = %v, want 1", got)
	}
}

func TestHistogramBins(t *testing.T) {
	h, err := NewHistogram(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins() != 4 {
		t.Fatalf("NumBins = %d, want 4", h.NumBins())
	}
	cases := []struct {
		x   float64
		bin int
	}{
		{5, 0}, {9.99, 0},
		{10, 1}, {19.99, 1},
		{20, 2},
		{30, 3}, {1e9, 3},
	}
	for _, c := range cases {
		if got := h.BinOf(c.x); got != c.bin {
			t.Errorf("BinOf(%v) = %d, want %d", c.x, got, c.bin)
		}
	}
	for _, c := range cases {
		h.Add(c.x)
	}
	counts := h.Counts()
	want := []int{2, 2, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d count = %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramRejectsBadEdges(t *testing.T) {
	if _, err := NewHistogram(10, 10); err == nil {
		t.Error("duplicate edges should fail")
	}
	if _, err := NewHistogram(20, 10); err == nil {
		t.Error("descending edges should fail")
	}
	if _, err := NewHistogram(); err != nil {
		t.Error("edge-free histogram (one bin) should be allowed")
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h, err := NewHistogram(-100, 0, 100)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		return h.Total() <= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
