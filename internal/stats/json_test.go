package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// TestWeightedJSONRoundTripExact checks the checkpoint-codec contract:
// a marshal/unmarshal cycle reproduces every mass and the accumulated
// total bitwise, including totals whose float accumulation order left
// them off the "ideal" sum.
func TestWeightedJSONRoundTripExact(t *testing.T) {
	w := &Weighted{}
	// Accumulate in an order that exercises float rounding: repeated
	// small irrational-ish weights at hour-quantised values.
	for i := 1; i <= 500; i++ {
		w.Add(float64(i%7)*24+1, 0.1*float64(i))
		w.Add(168, 1.0/float64(i))
	}

	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Weighted
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}

	if got, want := back.Total(), w.Total(); got != want {
		t.Errorf("total: %v, want bitwise-equal %v (diff %g)", got, want, math.Abs(got-want))
	}
	if back.Len() != w.Len() {
		t.Fatalf("len: %d, want %d", back.Len(), w.Len())
	}
	for _, v := range w.Values() {
		if got, want := back.MassOf(v), w.MassOf(v); got != want {
			t.Errorf("mass at %v: %v, want bitwise-equal %v", v, got, want)
		}
	}

	// A second round trip must be byte-identical output (deterministic
	// encoding).
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("re-marshal not byte-identical")
	}
}

func TestWeightedJSONEmptyAndErrors(t *testing.T) {
	var w Weighted
	b, err := json.Marshal(&w)
	if err != nil {
		t.Fatal(err)
	}
	var back Weighted
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || back.Total() != 0 {
		t.Errorf("empty round trip: len=%d total=%v", back.Len(), back.Total())
	}
	if err := json.Unmarshal([]byte(`{"values":[1,2],"masses":[3],"total":3}`), &back); err == nil {
		t.Error("mismatched values/masses lengths accepted")
	}
}
