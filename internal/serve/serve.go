package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/obs"
	"dynaddr/internal/stream"
)

// Tier maintains materialized live-query answers over an ingester.
//
// A refresh takes one snapshot barrier (plus one analysis barrier when
// the state moved), pre-renders every stream-wide artifact, and
// publishes an immutable *Generation behind an atomic pointer. Readers
// pin whatever generation is current — snapshot isolation: a reader
// never observes a half-applied batch, because barriers only complete
// between records and a published generation never mutates. Staleness
// is bounded by MaxStaleness, and refreshes are coalesced: any number
// of concurrent readers arriving past the window cost one barrier, not
// N. That is what decouples dashboard read traffic from ingest — the
// authoritative shards see at most one marker per window regardless of
// reader count.
type Tier struct {
	ing      *stream.Ingester
	maxStale time.Duration
	now      func() time.Time
	m        *tierMetrics

	cur atomic.Pointer[Generation]
	mu  sync.Mutex // serializes refreshes; readers never take it on the hit path
}

// DefaultMaxStaleness bounds how old a served generation may be before
// a read triggers a refresh barrier.
const DefaultMaxStaleness = 500 * time.Millisecond

// Option configures a Tier.
type Option func(*Tier)

// WithMaxStaleness sets the refresh window. Zero means every read
// refreshes (the cache then only saves rendering and 304 bandwidth,
// not barriers); negative means manual — the tier refreshes only on
// the first read and explicit Refresh calls, which tests use to pin
// generations deterministically.
func WithMaxStaleness(d time.Duration) Option {
	return func(t *Tier) { t.maxStale = d }
}

// WithMetrics publishes serve_* metrics into reg (nil is a no-op, like
// every obs instrument).
func WithMetrics(reg *obs.Registry) Option {
	return func(t *Tier) { t.m = newTierMetrics(reg, t) }
}

// WithClock overrides the tier's clock, for staleness tests.
func WithClock(now func() time.Time) Option {
	return func(t *Tier) { t.now = now }
}

// NewTier wraps an ingester. The caller owns the ingester's lifecycle;
// the tier holds no background goroutines — all refreshes happen on
// reader goroutines.
func NewTier(ing *stream.Ingester, opts ...Option) *Tier {
	t := &Tier{ing: ing, maxStale: DefaultMaxStaleness, now: time.Now}
	for _, opt := range opts {
		opt(t)
	}
	if t.m == nil {
		t.m = newTierMetrics(nil, t)
	}
	return t
}

// Generation is one immutable published read view: the pinned snapshot,
// the analysis fold taken in the same refresh, and the pre-rendered
// response bytes the live handlers serve verbatim.
type Generation struct {
	// Version is the stream position of the snapshot barrier; it keys the
	// ETags of every snapshot-derived artifact.
	Version stream.Version
	// AnalysisVersion is the position of the analysis barrier from the
	// same refresh. It can run ahead of Version (records may land between
	// the two barriers) but never behind.
	AnalysisVersion stream.Version
	// Snap is the pinned snapshot the artifacts were rendered from.
	Snap *stream.Snapshot
	// Analysis is the pinned fold, nil when the ingester runs without the
	// analysis engine.
	Analysis *liveanalysis.Result

	built      time.Time
	summary    []byte
	continents []byte
	analysis   []byte // nil when analysis is disabled
	as         *asCache
}

// asCache memoizes per-AS renders lazily: a generation may cover tens
// of thousands of ASes and most are never queried before the
// generation retires.
type asCache struct {
	mu sync.Mutex
	m  map[uint32][]byte
}

// SummaryJSON returns the summary endpoint's exact response bytes.
func (g *Generation) SummaryJSON() []byte { return g.summary }

// ContinentsJSON returns the continents endpoint's exact response bytes.
func (g *Generation) ContinentsJSON() []byte { return g.continents }

// AnalysisJSON returns the analysis endpoint's exact response bytes,
// nil when the ingester runs without the analysis engine.
func (g *Generation) AnalysisJSON() []byte { return g.analysis }

// ASJSON returns one AS detail's exact response bytes, rendering and
// memoizing on first use. ok is false when no analyzable probe maps to
// the AS in this generation.
func (g *Generation) ASJSON(asn uint32) (body []byte, ok bool, err error) {
	g.as.mu.Lock()
	defer g.as.mu.Unlock()
	if body, ok := g.as.m[asn]; ok {
		return body, true, nil
	}
	agg := g.Snap.AS(asn)
	if agg == nil {
		return nil, false, nil
	}
	body, err = RenderASDetail(agg)
	if err != nil {
		return nil, true, err
	}
	g.as.m[asn] = body
	return body, true, nil
}

// ETag is the cache validator for every snapshot-derived artifact.
func (g *Generation) ETag() string { return ETag(g.Version) }

// AnalysisETag is the validator for the analysis artifact.
func (g *Generation) AnalysisETag() string { return ETag(g.AnalysisVersion) }

// Built reports when the generation was published.
func (g *Generation) Built() time.Time { return g.built }

// Current returns the published generation without refreshing; nil
// before the first refresh.
func (t *Tier) Current() *Generation { return t.cur.Load() }

// Generation returns a generation no older than the staleness window,
// refreshing synchronously (and coalesced under the tier mutex) when
// the current one has expired. This is the read path: fresh hits cost
// two atomic loads and no locks.
func (t *Tier) Generation(ctx context.Context) (*Generation, error) {
	if g := t.cur.Load(); g != nil && !t.expired(g) {
		t.m.observeAge(t.now().Sub(g.built))
		return g, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Double-check: another reader may have refreshed while we queued.
	if g := t.cur.Load(); g != nil && !t.expired(g) {
		t.m.observeAge(t.now().Sub(g.built))
		return g, nil
	}
	return t.refreshLocked(ctx)
}

// Refresh forces a new generation regardless of staleness.
func (t *Tier) Refresh(ctx context.Context) (*Generation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refreshLocked(ctx)
}

func (t *Tier) expired(g *Generation) bool {
	if t.maxStale < 0 {
		return false // manual mode: generations never expire on their own
	}
	return t.now().Sub(g.built) > t.maxStale
}

func (t *Tier) refreshLocked(ctx context.Context) (*Generation, error) {
	start := t.now()
	snap, err := t.ing.SnapshotContext(ctx)
	if err != nil {
		return nil, err
	}
	if prev := t.cur.Load(); prev != nil && prev.Version == snap.Version {
		// Nothing was applied since the previous barrier, so every
		// artifact — the analysis fold included — is unchanged. Republish
		// with a fresh build time, sharing the rendered bytes and the
		// per-AS memo, and skip the analysis barrier entirely.
		next := *prev
		next.built = start
		t.cur.Store(&next)
		t.m.refreshed(t.now().Sub(start), true)
		return &next, nil
	}

	g := &Generation{
		Version: snap.Version,
		Snap:    snap,
		built:   start,
		as:      &asCache{m: make(map[uint32][]byte)},
	}
	if g.summary, err = RenderSummary(snap); err != nil {
		return nil, err
	}
	if g.continents, err = RenderContinents(snap); err != nil {
		return nil, err
	}
	res, aver, err := t.ing.AnalysisVersioned(ctx)
	switch {
	case errors.Is(err, stream.ErrAnalysisDisabled):
		// Served as 404 downstream; the generation stays valid.
	case err != nil:
		return nil, err
	default:
		g.Analysis = res
		g.AnalysisVersion = aver
		if g.analysis, err = RenderAnalysis(res); err != nil {
			return nil, err
		}
	}
	t.cur.Store(g)
	t.m.refreshed(t.now().Sub(start), false)
	return g, nil
}

// ObserveRequest records a serve-tier read outcome: hit means the
// client revalidated (304, no body); miss means a full body was served.
// Nil-receiver safe so handlers can call it without a tier configured.
func (t *Tier) ObserveRequest(route string, hit bool) {
	if t == nil {
		return
	}
	t.m.request(route, hit)
}

// tierMetrics holds the serve-tier instruments. All fields are nil-safe
// (obs instruments no-op on nil), and per-route counters are prebuilt
// so the request path is two map lookups and an atomic add.
type tierMetrics struct {
	routes     map[string]*routeCounters
	other      *routeCounters
	refreshes  *obs.Counter
	reused     *obs.Counter
	refreshSec *obs.Histogram
	ageSec     *obs.Histogram
}

type routeCounters struct {
	hits   *obs.Counter
	misses *obs.Counter
}

// Routes the serve tier distinguishes in its hit/miss counters.
var meteredRoutes = []string{"summary", "continents", "analysis", "as", "cursor"}

func newTierMetrics(reg *obs.Registry, t *Tier) *tierMetrics {
	m := &tierMetrics{routes: make(map[string]*routeCounters, len(meteredRoutes))}
	for _, route := range append(append([]string(nil), meteredRoutes...), "other") {
		rc := &routeCounters{
			hits:   reg.Counter("serve_hits_total", "Conditional-GET revalidations answered 304 by the serve tier.", obs.L("route", route)),
			misses: reg.Counter("serve_misses_total", "Full bodies served by the serve tier.", obs.L("route", route)),
		}
		if route == "other" {
			m.other = rc
		} else {
			m.routes[route] = rc
		}
	}
	m.refreshes = reg.Counter("serve_refreshes_total", "Generation refreshes taken by the serve tier.")
	m.reused = reg.Counter("serve_refreshes_reused_total", "Refreshes that republished an unchanged generation without re-rendering.")
	m.refreshSec = reg.Histogram("serve_refresh_seconds", "Wall time of a serve-tier refresh (barriers plus rendering).", nil)
	m.ageSec = reg.Histogram("serve_staleness_seconds", "Age of the generation at each served read.", nil)
	if reg != nil && t != nil {
		reg.GaugeFunc("serve_generation_seq", "Applied-record sequence of the published generation.", func() float64 {
			g := t.cur.Load()
			if g == nil {
				return 0
			}
			return float64(g.Version.Seq)
		})
	}
	return m
}

func (m *tierMetrics) request(route string, hit bool) {
	rc, ok := m.routes[route]
	if !ok {
		rc = m.other
	}
	if hit {
		rc.hits.Inc()
	} else {
		rc.misses.Inc()
	}
}

func (m *tierMetrics) refreshed(d time.Duration, reusedPrev bool) {
	m.refreshes.Inc()
	if reusedPrev {
		m.reused.Inc()
	}
	m.refreshSec.Observe(d.Seconds())
}

func (m *tierMetrics) observeAge(d time.Duration) {
	m.ageSec.Observe(d.Seconds())
}
