// Package serve is the read-side serving tier: materialized per-AS and
// per-continent aggregates pinned to immutable snapshot generations,
// refreshed from the shard barrier path so cached answers stay
// byte-identical to the authoritative fold, and ETag helpers keyed on
// (checkpoint generation, applied sequence) for HTTP revalidation.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"dynaddr/internal/geo"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/stats"
	"dynaddr/internal/stream"
)

// Summary is the JSON shape of GET /api/v1/live/summary. It lives here
// so the cached tier and the authoritative handler render through the
// same code — byte-identical by construction, not by test alone.
type Summary struct {
	Shards              int                 `json:"shards"`
	Records             stream.RecordCounts `json:"records"`
	Probes              int                 `json:"probes"`
	Unregistered        int                 `json:"unregistered"`
	Categories          map[string]int      `json:"categories"`
	GeoProbes           int                 `json:"geo_probes"`
	ASProbes            int                 `json:"as_probes"`
	Changes             int64               `json:"changes"`
	NetworkOutages      int64               `json:"network_outages"`
	Reboots             int64               `json:"reboots"`
	OutageLinkedChanges int64               `json:"outage_linked_changes"`
	OpenLossRuns        int                 `json:"open_loss_runs"`
	ASes                []uint32            `json:"ases"`
}

// BuildSummary projects a snapshot into the summary shape.
func BuildSummary(snap *stream.Snapshot) Summary {
	out := Summary{
		Shards:              snap.Shards,
		Records:             snap.Records,
		Probes:              snap.Probes,
		Unregistered:        snap.Unregistered,
		Categories:          make(map[string]int, len(snap.Categories)),
		GeoProbes:           snap.GeoProbes,
		ASProbes:            snap.ASProbes,
		Changes:             snap.Changes,
		NetworkOutages:      snap.NetworkOutages,
		Reboots:             snap.Reboots,
		OutageLinkedChanges: snap.OutageLinkedChanges,
		OpenLossRuns:        snap.OpenLossRuns,
		ASes:                snap.ASNs(),
	}
	for cat, n := range snap.Categories {
		out.Categories[cat.String()] = n
	}
	return out
}

// RenderSummary renders the summary endpoint's exact response bytes.
func RenderSummary(snap *stream.Snapshot) ([]byte, error) {
	return marshalLine(BuildSummary(snap))
}

// ASDetail is the JSON shape of GET /api/v1/live/as/{asn}.
type ASDetail struct {
	ASN                 uint32        `json:"asn"`
	Probes              int           `json:"probes"`
	Sessions            int64         `json:"sessions"`
	Changes             int64         `json:"changes"`
	NetworkOutages      int64         `json:"network_outages"`
	Reboots             int64         `json:"reboots"`
	OutageLinkedChanges int64         `json:"outage_linked_changes"`
	TotalHours          float64       `json:"total_hours"`
	Modes               []stats.Point `json:"modes,omitempty"`
	CDF                 []stats.Point `json:"cdf,omitempty"`
}

// ModeThreshold is the exact-value mass fraction past which a duration
// counts as a renumbering mode in live AS queries (the paper's vertical
// CDF segments).
const ModeThreshold = 0.05

// RenderASDetail renders one AS aggregate's exact response bytes.
func RenderASDetail(agg *stream.ASAggregate) ([]byte, error) {
	return marshalLine(ASDetail{
		ASN:                 agg.ASN,
		Probes:              agg.Probes,
		Sessions:            agg.Sessions,
		Changes:             agg.Changes,
		NetworkOutages:      agg.NetworkOutages,
		Reboots:             agg.Reboots,
		OutageLinkedChanges: agg.OutageLinkedChanges,
		TotalHours:          agg.TTF.Total(),
		Modes:               agg.TTF.Modes(ModeThreshold),
		CDF:                 agg.TTF.CDF(),
	})
}

// ContinentRow is one continent's entry in GET /api/v1/live/continents
// — the paper's Figure 1 grouping as a continuously served product.
type ContinentRow struct {
	Continent           string        `json:"continent"`
	Probes              int           `json:"probes"`
	Changes             int64         `json:"changes"`
	NetworkOutages      int64         `json:"network_outages"`
	Reboots             int64         `json:"reboots"`
	OutageLinkedChanges int64         `json:"outage_linked_changes"`
	ConnectedDays       float64       `json:"connected_days"`
	TotalHours          float64       `json:"total_hours"`
	CDF                 []stats.Point `json:"cdf,omitempty"`
}

// Continents is the JSON shape of GET /api/v1/live/continents.
type Continents struct {
	Continents []ContinentRow `json:"continents"`
}

// RenderContinents renders the continents endpoint's exact response
// bytes: one row per populated continent in the paper's Figure 1 legend
// order (a fixed order, so the bytes are deterministic).
func RenderContinents(snap *stream.Snapshot) ([]byte, error) {
	out := Continents{Continents: []ContinentRow{}}
	for _, cont := range geo.Continents {
		ca := snap.Continent(cont)
		if ca == nil {
			continue
		}
		out.Continents = append(out.Continents, ContinentRow{
			Continent:           string(ca.Continent),
			Probes:              ca.Probes,
			Changes:             ca.Changes,
			NetworkOutages:      ca.NetworkOutages,
			Reboots:             ca.Reboots,
			OutageLinkedChanges: ca.OutageLinkedChanges,
			ConnectedDays:       ca.ConnectedDays,
			TotalHours:          ca.TTF.Total(),
			CDF:                 ca.TTF.CDF(),
		})
	}
	return marshalLine(out)
}

// RenderAnalysis renders the analysis endpoint's exact response bytes.
func RenderAnalysis(res *liveanalysis.Result) ([]byte, error) {
	return marshalLine(res)
}

// RenderCursor renders the cursor endpoint's exact response bytes.
func RenderCursor(cur stream.ProbeCursor) ([]byte, error) {
	return marshalLine(cur)
}

// marshalLine matches json.NewEncoder(w).Encode's output — Marshal plus
// a trailing newline — so pre-rendered artifacts are byte-identical to
// what the handlers streamed before the cache existed.
func marshalLine(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(data) + 1)
	buf.Write(data)
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// ETag formats a stream position as a strong entity tag. Both
// components only grow, so a tag uniquely identifies analysis state
// within one server process.
func ETag(v stream.Version) string {
	return fmt.Sprintf("\"g%d-s%d\"", v.Generation, v.Seq)
}

// ETagMatch implements If-None-Match against a strong ETag: a comma-
// separated candidate list, "*" matching anything, and weak validators
// (W/ prefix) compared by their opaque tag — weak comparison is what
// RFC 9110 prescribes for If-None-Match.
func ETagMatch(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}
