package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/serve"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
)

func testStore(t testing.TB) *pfx2as.SnapshotStore {
	t.Helper()
	tbl, err := pfx2as.NewTable([]pfx2as.Entry{
		{Prefix: ip4.MustParsePrefix("10.0.0.0/16"), ASN: 64500},
		{Prefix: ip4.MustParsePrefix("192.168.0.0/16"), ASN: 64501},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := pfx2as.NewSnapshotStore()
	for m := 201501; m <= 201512; m++ {
		store.Put(pfx2as.Month(m), tbl)
	}
	return store
}

func hour(h int) simclock.Time {
	return simclock.StudyStart.Add(simclock.Duration(h) * simclock.Hour)
}

// feed ingests a small multi-probe, multi-continent fixture: sessions
// with address changes, a rejected out-of-order entry, ping rounds, and
// an uptime reset, spread over enough probes that any shard count > 1
// actually splits them.
func feed(t testing.TB, ing *stream.Ingester) {
	t.Helper()
	countries := []string{"DE", "US", "JP", "BR", "ZA", "AU", "FR", "NL"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, cc := range countries {
		id := atlasdata.ProbeID(100 + i)
		must(ing.Meta(atlasdata.ProbeMeta{ID: id, Country: cc, Version: atlasdata.V3, ConnectedDays: 150 + float64(i)}))
		a := fmt.Sprintf("10.0.%d.1", i)
		b := fmt.Sprintf("10.0.%d.2", i)
		must(ing.ConnLog(atlasdata.ConnLogEntry{Probe: id, Start: hour(0), End: hour(20 + i), Family: atlasdata.V4, Addr: ip4.MustParseAddr(a)}))
		must(ing.ConnLog(atlasdata.ConnLogEntry{Probe: id, Start: hour(24 + i), End: hour(50), Family: atlasdata.V4, Addr: ip4.MustParseAddr(b)}))
		// Rejected: starts before the previous session ended.
		must(ing.ConnLog(atlasdata.ConnLogEntry{Probe: id, Start: hour(1), End: hour(2), Family: atlasdata.V4, Addr: ip4.MustParseAddr(a)}))
		must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: hour(21), Sent: 3, Success: 0, LTS: 600}))
		must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: hour(22), Sent: 3, Success: 3, LTS: 30}))
		must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: hour(30), Uptime: 30 * 3600}))
		must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: hour(40), Uptime: 60}))
	}
}

// TestTierEquivalence is the tentpole's acceptance oracle: for every
// shard count, each cached artifact must be byte-identical to the
// authoritative fold rendered at the same barrier — and identical
// across shard counts, because mergeViews folds in probe-ID order.
func TestTierEquivalence(t *testing.T) {
	ctx := context.Background()
	type artifacts struct{ summary, continents, analysis []byte }
	var first *artifacts
	for _, shards := range []int{1, 2, 7} {
		ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: testStore(t), Analysis: true})
		feed(t, ing)
		tier := serve.NewTier(ing, serve.WithMaxStaleness(-1))
		gen, err := tier.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}

		// Against the authoritative fold at the same stream position.
		snap, err := ing.SnapshotContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != gen.Version {
			t.Fatalf("shards=%d: stream moved between barriers: %+v vs %+v", shards, snap.Version, gen.Version)
		}
		wantSum, err := serve.RenderSummary(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gen.SummaryJSON(), wantSum) {
			t.Errorf("shards=%d: cached summary differs from authoritative render", shards)
		}
		wantCont, err := serve.RenderContinents(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gen.ContinentsJSON(), wantCont) {
			t.Errorf("shards=%d: cached continents differ from authoritative render", shards)
		}
		if gen.AnalysisJSON() == nil {
			t.Fatalf("shards=%d: analysis enabled but cached analysis is nil", shards)
		}
		body, ok, err := gen.ASJSON(64500)
		if err != nil || !ok {
			t.Fatalf("shards=%d: ASJSON(64500) ok=%v err=%v", shards, ok, err)
		}
		wantAS, err := serve.RenderASDetail(snap.AS(64500))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, wantAS) {
			t.Errorf("shards=%d: cached AS detail differs from authoritative render", shards)
		}
		if _, ok, err := gen.ASJSON(64999); err != nil || ok {
			t.Errorf("shards=%d: ASJSON for unknown AS: ok=%v err=%v, want false/nil", shards, ok, err)
		}

		// Across shard counts.
		got := &artifacts{gen.SummaryJSON(), gen.ContinentsJSON(), gen.AnalysisJSON()}
		if first == nil {
			first = got
		} else {
			// The summary reports the shard count itself; normalize that
			// one field before demanding equality.
			if !bytes.Equal(stripShards(t, first.summary), stripShards(t, got.summary)) {
				t.Errorf("shards=%d: summary differs from shards=1", shards)
			}
			if !bytes.Equal(first.continents, got.continents) {
				t.Errorf("shards=%d: continents differ from shards=1", shards)
			}
			if !bytes.Equal(first.analysis, got.analysis) {
				t.Errorf("shards=%d: analysis differs from shards=1", shards)
			}
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// stripShards removes the summary's shard-count field, the one value
// that legitimately differs across shard counts.
func stripShards(t testing.TB, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "shards")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestContinentsShape decodes the continents artifact and checks the
// fixture's geography actually landed: 8 countries over 6 continents,
// every row carrying the fixture's per-probe change count.
func TestContinentsShape(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: testStore(t)})
	defer ing.Close()
	feed(t, ing)
	tier := serve.NewTier(ing, serve.WithMaxStaleness(-1))
	gen, err := tier.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var cont serve.Continents
	if err := json.Unmarshal(gen.ContinentsJSON(), &cont); err != nil {
		t.Fatal(err)
	}
	if len(cont.Continents) != 6 {
		t.Fatalf("got %d continent rows, want 6: %s", len(cont.Continents), gen.ContinentsJSON())
	}
	probes := 0
	for _, row := range cont.Continents {
		probes += row.Probes
		if row.Probes == 0 {
			t.Errorf("continent %s has zero probes", row.Continent)
		}
	}
	if probes != 8 {
		t.Errorf("continent probes sum to %d, want 8", probes)
	}
}

// TestGenerationImmutable pins snapshot isolation: a generation handed
// to a reader must not change underneath it when ingest continues and a
// newer generation is published.
func TestGenerationImmutable(t *testing.T) {
	ctx := context.Background()
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: testStore(t)})
	defer ing.Close()
	feed(t, ing)
	tier := serve.NewTier(ing, serve.WithMaxStaleness(-1))
	g1, err := tier.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pinnedSummary := append([]byte(nil), g1.SummaryJSON()...)
	pinnedVersion := g1.Version

	id := atlasdata.ProbeID(900)
	if err := ing.Meta(atlasdata.ProbeMeta{ID: id, Country: "IT", Version: atlasdata.V3, ConnectedDays: 99}); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(atlasdata.ConnLogEntry{Probe: id, Start: hour(0), End: hour(10), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.99.1")}); err != nil {
		t.Fatal(err)
	}
	g2, err := tier.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version == pinnedVersion {
		t.Fatal("version did not advance after ingest")
	}
	if g2.ETag() == g1.ETag() {
		t.Errorf("ETag unchanged across generations: %s", g1.ETag())
	}
	if !bytes.Equal(g1.SummaryJSON(), pinnedSummary) {
		t.Error("pinned generation's summary bytes changed after a newer publish")
	}
	if g1.Version != pinnedVersion {
		t.Error("pinned generation's version changed after a newer publish")
	}
}

// TestRefreshDedup checks that a refresh with no new records republishes
// the previous generation's artifacts (same bytes, same version) rather
// than re-rendering, and that the republished copy is still served.
func TestRefreshDedup(t *testing.T) {
	ctx := context.Background()
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: testStore(t)})
	defer ing.Close()
	feed(t, ing)
	tier := serve.NewTier(ing, serve.WithMaxStaleness(-1))
	g1, err := tier.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tier.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version != g1.Version {
		t.Fatalf("version moved without ingest: %+v vs %+v", g1.Version, g2.Version)
	}
	// Shared backing arrays, not merely equal content: the dedup path
	// must not re-render.
	if &g1.SummaryJSON()[0] != &g2.SummaryJSON()[0] {
		t.Error("dedup refresh re-rendered the summary instead of sharing bytes")
	}
	if got := tier.Current(); got != g2 {
		t.Error("Current() does not serve the republished generation")
	}
}

// TestAnalysisDisabled checks the tier stays useful without the
// analysis engine: snapshot artifacts render, analysis stays nil.
func TestAnalysisDisabled(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1, Pfx2AS: testStore(t)})
	defer ing.Close()
	feed(t, ing)
	tier := serve.NewTier(ing, serve.WithMaxStaleness(-1))
	gen, err := tier.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen.AnalysisJSON() != nil {
		t.Error("analysis bytes present with the engine disabled")
	}
	if gen.SummaryJSON() == nil || gen.ContinentsJSON() == nil {
		t.Error("snapshot artifacts missing")
	}
}

func TestETagMatch(t *testing.T) {
	etag := serve.ETag(stream.Version{Generation: 3, Seq: 17})
	if etag != `"g3-s17"` {
		t.Fatalf("ETag = %s, want %q", etag, `"g3-s17"`)
	}
	cases := []struct {
		inm  string
		want bool
	}{
		{"", false},
		{`"g3-s17"`, true},
		{`"g3-s16"`, false},
		{`"g1-s1", "g3-s17"`, true},
		{`W/"g3-s17"`, true},
		{"*", true},
	}
	for _, c := range cases {
		if got := serve.ETagMatch(c.inm, etag); got != c.want {
			t.Errorf("ETagMatch(%q, %s) = %v, want %v", c.inm, etag, got, c.want)
		}
	}
}
