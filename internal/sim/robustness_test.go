package sim

import (
	"testing"

	"dynaddr/internal/isp"
	"dynaddr/internal/outage"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// TestGenerateRandomConfigsAlwaysValid sweeps randomised configurations
// and requires every generated dataset to satisfy the cross-record
// invariants (sorted, non-overlapping, metadata-complete). The walker
// has many interacting event sources (outages, forced renumbers,
// firmware, switches, admin days, v6 rotation); this is the net that
// catches ordering regressions between them.
func TestGenerateRandomConfigsAlwaysValid(t *testing.T) {
	r := rng.New(20160714)
	for trial := 0; trial < 12; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = r.Uint64()
		cfg.Scale = 0.02 + r.Float64()*0.08
		cfg.IPv6OnlyFrac = r.Float64() * 0.1
		cfg.DualStackFrac = r.Float64() * 0.4
		cfg.MultihomedFrac = r.Float64() * 0.1
		cfg.MoverFrac = r.Float64() * 0.1
		cfg.TestingAddrFrac = r.Float64() * 0.2
		cfg.ShortLivedFrac = r.Float64() * 0.1
		cfg.V6DailyRotateFrac = r.Float64()
		cfg.SpontaneousPerYear = r.Float64() * 40
		cfg.FirmwareParticipation = r.Float64()
		cfg.KRootHeartbeat = simclock.Duration(1+r.Intn(24)) * simclock.Hour
		// Occasionally shrink the interval.
		if r.Bool(0.3) {
			cfg.Start = simclock.StudyStart
			cfg.End = simclock.StudyStart.Add(simclock.Duration(40+r.Intn(200)) * simclock.Day)
			cfg.FirmwareDays = []int{10, 30}
		}
		w, err := Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d (seed %d): %v", trial, cfg.Seed, err)
		}
		if err := w.Dataset.Validate(); err != nil {
			t.Fatalf("trial %d (seed %d): invalid dataset: %v", trial, cfg.Seed, err)
		}
		for id, truth := range w.Truth.Probes {
			if _, ok := w.Dataset.Probes[id]; !ok {
				t.Fatalf("trial %d: truth probe %d missing from dataset", trial, id)
			}
			if truth.V4AddressChanges < 0 {
				t.Fatalf("trial %d: negative change count", trial)
			}
		}
	}
}

// TestGenerateCustomProfileMatrix exercises profile corner cases: a
// single-prefix PPP ISP, a zero-outage ISP, a sync-anchored weekly ISP,
// and an admin-renumbering static ISP, all in one world.
func TestGenerateCustomProfileMatrix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Profiles = []isp.Profile{
		{
			Name: "OnePrefix", ASN: 901, Country: "DE", Kind: isp.PPP,
			Cohorts:            []isp.Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
			OutageRenumberFrac: 1, SameAddrProb: 0.3,
			NumPrefixes: 1, PrefixBits: 16, CrossPrefixProb: 0,
			DefaultProbes: 4,
		},
		{
			Name: "NoOutages", ASN: 902, Country: "FR", Kind: isp.DHCP,
			Lease: 2 * simclock.Hour, ReclaimMean: simclock.Day,
			Outage:      outageQuiet(),
			NumPrefixes: 2, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 4,
		},
		{
			Name: "WeeklyNight", ASN: 903, Country: "GB", Kind: isp.PPP,
			Cohorts:  []isp.Cohort{{Period: 168 * simclock.Hour, Weight: 1}},
			SyncFrac: 1, SyncStartHour: 2, SyncEndHour: 5,
			OutageRenumberFrac: 1,
			NumPrefixes:        2, PrefixBits: 16, CrossPrefixProb: 1,
			DefaultProbes: 4,
		},
		{
			Name: "AdminStatic", ASN: 904, Country: "NL", Kind: isp.Static,
			NumPrefixes: 2, PrefixBits: 16, AdminRenumberDay: 200,
			DefaultProbes: 4,
		},
	}
	cfg.IPv6OnlyFrac, cfg.DualStackFrac, cfg.MultihomedFrac, cfg.MoverFrac = 0, 0, 0, 0
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	// With SameAddrProb 0.3 the single-prefix ISP must sometimes hand
	// the same address back (harmonic) and sometimes not.
	var same, diff int
	for id, truth := range w.Truth.Probes {
		if truth.ISP != "OnePrefix" {
			continue
		}
		entries := w.Dataset.ConnLogs[id]
		for i := 1; i < len(entries); i++ {
			if entries[i].Addr == entries[i-1].Addr {
				same++
			} else {
				diff++
			}
		}
	}
	if same == 0 || diff == 0 {
		t.Errorf("SameAddrProb 0.3 should mix: same=%d diff=%d", same, diff)
	}
	// The admin-renumbering static ISP's probes changed exactly once.
	for id, truth := range w.Truth.Probes {
		if truth.ISP != "AdminStatic" {
			continue
		}
		if !truth.AdminRenumbered {
			t.Errorf("probe %d missed the admin renumbering", id)
		}
		if truth.V4AddressChanges != 1 {
			t.Errorf("probe %d changed %d times, want exactly the admin event", id, truth.V4AddressChanges)
		}
	}
}

func outageQuiet() outage.Config {
	return outage.Config{
		PowerPerYear: 0, NetworkPerYear: 0, ShortFrac: 0.5,
		ParetoXm: 90, ParetoAlpha: 0.75, MaxDuration: simclock.Day,
	}
}
