package sim

import (
	"sort"

	"dynaddr/internal/atlasdata"
)

// RecordSink consumes a live record stream: probe metadata plus the
// three record kinds, delivered in per-probe time order. The stream
// Ingester satisfies this interface; so does anything else that wants
// to watch a world being generated record by record.
type RecordSink interface {
	Meta(atlasdata.ProbeMeta) error
	ConnLog(atlasdata.ConnLogEntry) error
	KRoot(atlasdata.KRootRound) error
	Uptime(atlasdata.UptimeRecord) error
}

// GenerateTo builds a world exactly like Generate while also driving
// sink record by record: each probe's metadata is emitted as soon as
// its timeline has been simulated, followed by its connection-log,
// k-root and uptime records merged into a single time-ordered stream.
// Emission happens per probe during generation, not from the finished
// dataset, so a consumer observes the world the way a controller would
// — incrementally.
func GenerateTo(cfg Config, sink RecordSink) (*World, error) {
	return generateWorld(cfg, sink)
}

// ReplayDataset streams an existing dataset into sink in the same
// order GenerateTo would: probes ascending, records per probe merged by
// time. The dataset must be sorted (Load and Generate both guarantee
// this).
func ReplayDataset(ds *atlasdata.Dataset, sink RecordSink) error {
	for _, id := range ds.ProbeIDs() {
		if err := emitProbe(ds, id, sink); err != nil {
			return err
		}
	}
	return nil
}

// emitProbe streams one probe's metadata and records. The three record
// streams are merged by timestamp; on ties, connection entries go
// first (the session exists before measurements run inside it), then
// k-root rounds, then uptime records.
func emitProbe(ds *atlasdata.Dataset, id atlasdata.ProbeID, sink RecordSink) error {
	if meta, ok := ds.Probes[id]; ok {
		if err := sink.Meta(meta); err != nil {
			return err
		}
	}
	conns := ds.ConnLogs[id]
	rounds := ds.KRoot[id]
	ups := ds.Uptime[id]
	var ci, ki, ui int
	for ci < len(conns) || ki < len(rounds) || ui < len(ups) {
		// Pick the earliest head across the three streams.
		const (
			pickConn = iota
			pickKRoot
			pickUptime
		)
		pick := -1
		var best int64
		consider := func(kind int, ts int64) {
			if pick < 0 || ts < best {
				pick, best = kind, ts
			}
		}
		if ci < len(conns) {
			consider(pickConn, int64(conns[ci].Start))
		}
		if ki < len(rounds) {
			consider(pickKRoot, int64(rounds[ki].Timestamp))
		}
		if ui < len(ups) {
			consider(pickUptime, int64(ups[ui].Timestamp))
		}
		var err error
		switch pick {
		case pickConn:
			err = sink.ConnLog(conns[ci])
			ci++
		case pickKRoot:
			err = sink.KRoot(rounds[ki])
			ki++
		case pickUptime:
			err = sink.Uptime(ups[ui])
			ui++
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// sortProbeRecords time-orders one probe's record slices in place, so a
// probe can be emitted before the dataset-wide SortRecords pass runs.
func sortProbeRecords(ds *atlasdata.Dataset, id atlasdata.ProbeID) {
	if s := ds.ConnLogs[id]; s != nil {
		sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	}
	if s := ds.KRoot[id]; s != nil {
		sort.Slice(s, func(i, j int) bool { return s[i].Timestamp < s[j].Timestamp })
	}
	if s := ds.Uptime[id]; s != nil {
		sort.Slice(s, func(i, j int) bool { return s[i].Timestamp < s[j].Timestamp })
	}
}
