package sim

import (
	"fmt"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/dhcp"
	"dynaddr/internal/ip4"
	"dynaddr/internal/isp"
	"dynaddr/internal/outage"
	"dynaddr/internal/ppp"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// lineBackend abstracts how the CPE's line gets and keeps its address.
type lineBackend interface {
	// Start assigns the initial address at t.
	Start(t simclock.Time) ip4.Addr
	// Current returns the address currently assigned to the CPE.
	Current() ip4.Addr
	// Resume handles connectivity returning at to after an interruption
	// that began at from, and reports whether the address changed.
	Resume(from, to simclock.Time) (ip4.Addr, bool)
	// ForcedAt returns the next ISP-forced disconnect strictly after
	// `after`, if the line has one. Each call may consume randomness;
	// the walker calls it once per session establishment.
	ForcedAt(after simclock.Time) (simclock.Time, bool)
	// ForcedRenumber executes the forced reassignment, effective at t.
	ForcedRenumber(t simclock.Time) (ip4.Addr, bool)
	// AdminRenumber executes an administrative reassignment: the ISP
	// discards the binding regardless of assignment technology.
	AdminRenumber(t simclock.Time) (ip4.Addr, bool)
}

// --- static line ---

type staticLine struct {
	pool *isp.AddressPool
	addr ip4.Addr
}

func (l *staticLine) Start(t simclock.Time) ip4.Addr {
	if !l.addr.IsValid() {
		l.addr = l.pool.Acquire(0)
	}
	return l.addr
}
func (l *staticLine) Current() ip4.Addr { return l.addr }
func (l *staticLine) Resume(from, to simclock.Time) (ip4.Addr, bool) {
	return l.addr, false
}
func (l *staticLine) ForcedAt(simclock.Time) (simclock.Time, bool) { return 0, false }
func (l *staticLine) ForcedRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.addr, false
}
func (l *staticLine) AdminRenumber(t simclock.Time) (ip4.Addr, bool) {
	old := l.addr
	if old.IsValid() {
		l.pool.Release(old)
	}
	l.addr = l.pool.Acquire(old)
	return l.addr, old.IsValid() && l.addr != old
}

// --- DHCP line ---

type dhcpLine struct {
	sess *dhcp.Session
}

func (l *dhcpLine) Start(t simclock.Time) ip4.Addr { return l.sess.Connect(t) }
func (l *dhcpLine) Current() ip4.Addr              { return l.sess.Addr() }
func (l *dhcpLine) Resume(from, to simclock.Time) (ip4.Addr, bool) {
	l.sess.Disconnect(from)
	return l.sess.Reconnect(to)
}
func (l *dhcpLine) ForcedAt(simclock.Time) (simclock.Time, bool) { return 0, false }
func (l *dhcpLine) ForcedRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.sess.Addr(), false
}
func (l *dhcpLine) AdminRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.sess.ForceRenumber(t)
}

// --- PPP line ---

type pppLine struct {
	sess   *ppp.Session
	rnd    *rng.RNG
	period simclock.Duration
	// Sync-anchored lines reset at anchorEpoch + k*period (the CPE's
	// configured nightly reconnect); free-running lines reset period
	// after the last assignment.
	sync        bool
	anchorEpoch simclock.Time
	skipProb    float64
	jitterProb  float64
	renumber    bool
	lastAssign  simclock.Time
}

func (l *pppLine) Start(t simclock.Time) ip4.Addr {
	addr, _ := l.sess.Connect(t)
	l.lastAssign = t
	return addr
}

func (l *pppLine) Current() ip4.Addr { return l.sess.Addr() }

func (l *pppLine) Resume(from, to simclock.Time) (ip4.Addr, bool) {
	if !l.renumber {
		// Mixed-technology customer: the line keeps its address across
		// interruptions (paper Table 6's sub-0.8 probes).
		return l.sess.Addr(), false
	}
	l.sess.Disconnect(from)
	addr, changed := l.sess.Connect(to)
	l.lastAssign = to
	return addr, changed
}

func (l *pppLine) ForcedAt(after simclock.Time) (simclock.Time, bool) {
	if l.period <= 0 {
		return 0, false
	}
	var t simclock.Time
	if l.sync {
		// Next anchor instant at least an hour away, so a reconnect just
		// before the anchor does not immediately re-reset.
		base := after.Add(simclock.Hour)
		delta := base.Sub(l.anchorEpoch)
		k := int64(delta / l.period)
		if delta%l.period != 0 || delta < 0 {
			k++
		}
		if delta < 0 {
			k = 0
		}
		t = l.anchorEpoch.Add(simclock.Duration(k) * l.period)
	} else {
		t = l.lastAssign.Add(l.period)
		for !t.After(after) {
			t = t.Add(l.period)
		}
	}
	// Skipped resets leave the session running a whole extra period —
	// the paper's harmonic durations.
	for l.rnd.Bool(l.skipProb) {
		t = t.Add(l.period)
	}
	// Jitter drifts the reset off the harmonic grid entirely.
	if l.jitterProb > 0 && l.rnd.Bool(l.jitterProb) {
		half := int64(l.period / 2)
		t = t.Add(simclock.Duration(l.rnd.Int63n(2*half+1) - half))
	}
	if !t.After(after) {
		t = after.Add(l.period)
	}
	return t, true
}

func (l *pppLine) ForcedRenumber(t simclock.Time) (ip4.Addr, bool) {
	l.sess.Disconnect(t)
	addr, changed := l.sess.Connect(t)
	l.lastAssign = t
	return addr, changed
}

func (l *pppLine) AdminRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.ForcedRenumber(t)
}

// newBackend builds the line backend for a profile, behavioural or
// wire-level per the configuration.
func (w *walker) newBackend(p isp.Profile, pool *isp.AddressPool, rnd *rng.RNG) (lineBackend, error) {
	if w.cfg.WireBackends {
		return w.newWireBackend(p, pool, rnd)
	}
	switch p.Kind {
	case isp.Static:
		return &staticLine{pool: pool}, nil
	case isp.DHCP:
		sess, err := dhcp.NewSession(dhcp.Config{
			LeaseDuration: p.Lease,
			ReclaimMean:   p.ReclaimMean,
		}, pool, rnd.Split("dhcp"))
		if err != nil {
			return nil, err
		}
		return &dhcpLine{sess: sess}, nil
	case isp.PPP:
		sess, err := ppp.NewSession(ppp.Config{SameAddrProb: p.SameAddrProb}, pool, rnd.Split("ppp"))
		if err != nil {
			return nil, err
		}
		return &pppLine{
			sess:        sess,
			rnd:         rnd.Split("forced"),
			period:      w.spec.cohort.Period,
			sync:        w.spec.syncAnchored,
			anchorEpoch: simclock.StudyStart.Add(w.spec.anchorOffset),
			skipProb:    p.SkipProb,
			jitterProb:  p.JitterProb,
			renumber:    w.spec.renumberOnOutage,
		}, nil
	default:
		return nil, fmt.Errorf("sim: unknown assignment kind %v", p.Kind)
	}
}

// breakKind classifies connection breaks inside the walker.
type breakKind int

const (
	bkOutage breakKind = iota
	bkForced
	bkFirmware
	bkSpontaneous
	bkSwitch
	bkAdmin
	bkV6Rotate
	bkDepart
)

// walker simulates one probe's year and emits its records.
type walker struct {
	cfg      *Config
	spec     probeSpec
	pool     *isp.AddressPool
	rnd      *rng.RNG
	firmware []simclock.Time

	conns  []atlasdata.ConnLogEntry
	rounds []atlasdata.KRootRound
	ups    []atlasdata.UptimeRecord

	lastBoot      simclock.Time
	connectedSecs int64
	// noEmit intervals suppress heartbeat rounds (gaps, outages,
	// reboots) so background rounds never contradict event emission.
	noEmit []timeSpan

	truth ProbeTruth
}

type timeSpan struct{ from, to simclock.Time }

// sessionFamily decides how one controller session is addressed.
type sessionFamily int

const (
	famV4 sessionFamily = iota
	famV6
	famFixedUplink
)

func (w *walker) pickFamily() sessionFamily {
	switch w.spec.special {
	case IPv6Only:
		return famV6
	case DualStack:
		if w.rnd.Bool(0.5) {
			return famV6
		}
		return famV4
	case Multihomed:
		if w.rnd.Bool(0.5) {
			return famFixedUplink
		}
		return famV4
	default:
		return famV4
	}
}

// v6Addr returns the probe's IPv6 address as of at. Hosts with RFC 4941
// privacy extensions rotate the interface identifier daily; others keep
// a serial that advances only on rare CPE-level events.
func (w *walker) v6Addr(at simclock.Time) string {
	serial := w.spec.v6Serial + 1
	if w.spec.v6Rotate {
		serial = int(at.Sub(simclock.StudyStart)/simclock.Day) + 1
	}
	return fmt.Sprintf("2001:db8:%x::%d", int(w.spec.id), serial)
}

func (w *walker) emitSession(start, end simclock.Time, fam sessionFamily, v4 ip4.Addr) {
	if !start.Before(end) {
		return
	}
	e := atlasdata.ConnLogEntry{Probe: w.spec.id, Start: start, End: end}
	switch fam {
	case famV6:
		e.Family = atlasdata.V6
		e.V6Addr = w.v6Addr(start)
	case famFixedUplink:
		e.Family = atlasdata.V4
		e.Addr = w.spec.fixedAddr
	default:
		e.Family = atlasdata.V4
		e.Addr = v4
	}
	w.conns = append(w.conns, e)
	w.connectedSecs += int64(end.Sub(start))
}

func (w *walker) emitUptime(t simclock.Time) {
	w.ups = append(w.ups, atlasdata.UptimeRecord{
		Probe: w.spec.id, Timestamp: t, Uptime: int64(t.Sub(w.lastBoot)),
	})
}

func (w *walker) goodRound(t simclock.Time) {
	w.rounds = append(w.rounds, atlasdata.KRootRound{
		Probe: w.spec.id, Timestamp: t, Sent: 3, Success: 3,
		LTS: 30 + w.rnd.Int63n(205),
	})
}

// kRootInterval is the real probes' built-in measurement cadence.
const kRootInterval = 4 * simclock.Minute

// emitNetworkOutageRounds writes the loss signature the paper's Table 3
// shows: a good round just before the outage, all-lost rounds with
// growing LTS throughout, and the detector-visible first/last loss
// rounds guaranteed present. Long outages are thinned in the middle.
func (w *walker) emitNetworkOutageRounds(ev outage.Event, resume simclock.Time) {
	pre := ev.Start.Add(-simclock.Duration(30 + w.rnd.Int63n(210)))
	w.goodRound(pre)

	lastSync := pre
	emitLoss := func(t simclock.Time) {
		w.rounds = append(w.rounds, atlasdata.KRootRound{
			Probe: w.spec.id, Timestamp: t, Sent: 3, Success: 0,
			LTS: int64(t.Sub(lastSync)),
		})
	}
	first := ev.Start.Add(simclock.Duration(10 + w.rnd.Int63n(110)))
	if first.After(ev.End()) {
		first = ev.End()
	}
	last := ev.End().Add(-simclock.Duration(5 + w.rnd.Int63n(25)))
	if !first.Before(last) {
		// Very short outage: a single lost round.
		emitLoss(first)
	} else {
		emitLoss(first)
		// Interior rounds at the 4-minute cadence, thinned to at most 24.
		interior := int64(last.Sub(first) / kRootInterval)
		step := kRootInterval
		if interior > 24 {
			step = simclock.Duration(int64(last.Sub(first)) / 24)
		}
		for t := first.Add(step); t.Before(last); t = t.Add(step) {
			emitLoss(t)
		}
		emitLoss(last)
	}
	w.goodRound(resume.Add(simclock.Duration(30 + w.rnd.Int63n(90))))
	w.suppressHeartbeats(pre.Add(-kRootInterval), resume.Add(2*kRootInterval))
}

// emitPowerOutageSilence brackets a power outage with good rounds and
// leaves silence between them; the analysis infers the outage from the
// reboot plus this ping gap.
func (w *walker) emitPowerOutageSilence(ev outage.Event, resume simclock.Time) {
	pre := ev.Start.Add(-simclock.Duration(30 + w.rnd.Int63n(210)))
	w.goodRound(pre)
	w.goodRound(resume.Add(simclock.Duration(60 + w.rnd.Int63n(120))))
	w.suppressHeartbeats(pre.Add(-kRootInterval), resume.Add(2*kRootInterval))
}

func (w *walker) suppressHeartbeats(from, to simclock.Time) {
	w.noEmit = append(w.noEmit, timeSpan{from: from, to: to})
}

func (w *walker) suppressed(t simclock.Time) bool {
	for _, s := range w.noEmit {
		if !t.Before(s.from) && !t.After(s.to) {
			return true
		}
	}
	return false
}

// run simulates the probe and appends its records to ds.
func (w *walker) run(ds *atlasdata.Dataset) (ProbeTruth, error) {
	spec := &w.spec
	w.truth = ProbeTruth{
		ID: spec.id, ISP: spec.profile.Name, ASN: spec.profile.ASN,
		Country: spec.country, Version: spec.version, Special: spec.special,
		Kind: spec.profile.Kind, Period: spec.cohort.Period,
		SyncAnchored: spec.syncAnchored, RenumberOnOutage: spec.renumberOnOutage,
		TestingFirst: spec.testingFirst, ShortLived: spec.shortLived,
		V6Rotating: spec.v6Rotate,
	}

	events, err := outage.Generate(spec.profile.OutageConfig(), w.rnd.Split("outages"), spec.install, spec.depart)
	if err != nil {
		return ProbeTruth{}, err
	}
	var fw []simclock.Time
	frnd := w.rnd.Split("firmware")
	for _, t := range w.firmware {
		if t.After(spec.install) && t.Before(spec.depart) && frnd.Bool(w.cfg.FirmwareParticipation) {
			// Pushes roll out in stages; installs spread over ~36 hours,
			// which is what makes the reboot spike span the two-plus
			// consecutive days the paper's detector keys on (§5.2).
			fw = append(fw, t.Add(simclock.Duration(frnd.Int63n(int64(36*simclock.Hour)))))
		}
	}

	backend, err := w.newBackend(spec.profile, w.pool, w.rnd)
	if err != nil {
		return ProbeTruth{}, err
	}

	// The probe booted some time before the study; a fresh uptime
	// counter at install would itself read as a reboot.
	w.lastBoot = spec.install.Add(-simclock.Duration(simclock.Day) - simclock.Duration(w.rnd.Int63n(int64(30*simclock.Day))))

	connStart := spec.install
	// Testing-address first entry: the probe still carries the address
	// it used at RIPE NCC before shipping (paper §3.3).
	if spec.testingFirst {
		testEnd := connStart.Add(simclock.Duration(6+w.rnd.Intn(42)) * simclock.Hour)
		if testEnd.After(spec.depart) {
			testEnd = spec.depart
		}
		w.emitUptime(connStart)
		w.emitSession(connStart, testEnd, famV4, ip4.TestingAddr)
		gap := simclock.Duration(10+w.rnd.Intn(20)) * simclock.Minute
		connStart = testEnd.Add(gap)
		w.suppressHeartbeats(testEnd, connStart)
		if !connStart.Before(spec.depart) {
			w.flush(ds)
			return w.truth, nil
		}
	}

	addr := backend.Start(connStart)
	w.emitUptime(connStart)
	fam := w.pickFamily()

	// Rotating hosts' IPv6 sessions die when the privacy address's
	// lifetime lapses at the next day boundary (RFC 4941), so the
	// controller connection re-establishes — from the next day's
	// address.
	v6RotAt := simclock.Time(0)
	hasV6Rot := false
	scheduleV6Rotation := func() {
		hasV6Rot = spec.v6Rotate && fam == famV6
		if hasV6Rot {
			v6RotAt = connStart.TruncateDay().Add(simclock.Day).
				Add(simclock.Duration(w.rnd.Int63n(1800)))
		}
	}
	scheduleV6Rotation()

	spontRnd := w.rnd.Split("spontaneous")
	nextSpont := func(after simclock.Time) simclock.Time {
		if w.cfg.SpontaneousPerYear <= 0 {
			return spec.depart.Add(simclock.Day)
		}
		mean := float64(365*simclock.Day) / w.cfg.SpontaneousPerYear
		return after.Add(simclock.Duration(spontRnd.Exp(mean)) + simclock.Minute)
	}
	spont := nextSpont(connStart)

	forcedT, hasForced := backend.ForcedAt(connStart)
	switched := spec.special != Mover // true once the mover has switched

	// Administrative renumbering: the ISP migrates everyone on one day,
	// staged over a few hours per customer.
	adminAt := simclock.Time(0)
	adminPending := false
	if spec.profile.AdminRenumberDay > 0 {
		adminAt = simclock.StudyStart.
			Add(simclock.Duration(spec.profile.AdminRenumberDay) * simclock.Day).
			Add(simclock.Duration(w.rnd.Int63n(int64(6 * simclock.Hour))))
		adminPending = adminAt.After(spec.install) && adminAt.Before(spec.depart)
	}

	oi, fi := 0, 0
	for {
		// Discard events that fell inside a previous gap.
		for oi < len(events) && !events[oi].Start.After(connStart) {
			oi++
		}
		for fi < len(fw) && !fw[fi].After(connStart) {
			fi++
		}
		for !spont.After(connStart) {
			spont = nextSpont(connStart)
		}
		if hasForced && !forcedT.After(connStart) {
			forcedT, hasForced = backend.ForcedAt(connStart)
		}
		// A gap can jump past the planned ISP switch; move it forward so
		// the mover still moves.
		if !switched && !spec.switchAt.After(connStart) {
			spec.switchAt = connStart.Add(simclock.Hour)
		}
		if adminPending && !adminAt.After(connStart) {
			adminAt = connStart.Add(30 * simclock.Minute)
		}

		bestT := spec.depart
		bestKind := bkDepart
		var bestOutage outage.Event
		if oi < len(events) && events[oi].Start.Before(bestT) {
			bestT, bestKind, bestOutage = events[oi].Start, bkOutage, events[oi]
		}
		if fi < len(fw) && fw[fi].Before(bestT) {
			bestT, bestKind = fw[fi], bkFirmware
		}
		if spont.Before(bestT) {
			bestT, bestKind = spont, bkSpontaneous
		}
		if hasForced && forcedT.Before(bestT) {
			bestT, bestKind = forcedT, bkForced
		}
		if !switched && spec.switchAt.After(connStart) && spec.switchAt.Before(bestT) {
			bestT, bestKind = spec.switchAt, bkSwitch
		}
		if adminPending && adminAt.Before(bestT) {
			bestT, bestKind = adminAt, bkAdmin
		}
		if hasV6Rot && v6RotAt.After(connStart) && v6RotAt.Before(bestT) {
			bestT, bestKind = v6RotAt, bkV6Rotate
		}

		if bestKind == bkDepart {
			w.emitSession(connStart, spec.depart, fam, addr)
			break
		}

		w.emitSession(connStart, bestT, fam, addr)

		var resume simclock.Time
		changed := false
		rebootedInGap := false

		switch bestKind {
		case bkOutage:
			oi++
			end := bestOutage.End()
			if bestOutage.Kind == outage.Power {
				resume = end.Add(simclock.Duration(60 + w.rnd.Int63n(240)))
				w.lastBoot = end.Add(simclock.Duration(20 + w.rnd.Int63n(40)))
				w.truth.PowerOutages++
				w.truth.Reboots++
				rebootedInGap = true
				w.emitPowerOutageSilence(bestOutage, resume)
				if spec.special == DualStack && w.rnd.Bool(0.3) {
					spec.v6Serial++
				}
			} else {
				resume = end.Add(simclock.Duration(30 + w.rnd.Int63n(210)))
				w.truth.NetworkOutages++
				w.emitNetworkOutageRounds(bestOutage, resume)
			}
			addr, changed = backend.Resume(bestT, resume)
			forcedT, hasForced = backend.ForcedAt(resume)

		case bkForced:
			resume = bestT.Add(simclock.Duration(18+w.rnd.Intn(11)) * simclock.Minute)
			addr, changed = backend.ForcedRenumber(resume)
			forcedT, hasForced = backend.ForcedAt(resume)
			// CPE is up throughout; built-in measurements keep flowing.
			w.goodRound(bestT.Add(simclock.Duration(60 + w.rnd.Int63n(600))))
			w.suppressHeartbeats(bestT, resume)

		case bkFirmware:
			fi++
			resume = bestT.Add(simclock.Duration(3+w.rnd.Intn(6)) * simclock.Minute)
			w.lastBoot = bestT.Add(simclock.Duration(45 + w.rnd.Int63n(75)))
			w.truth.Reboots++
			w.truth.FirmwareReboots++
			rebootedInGap = true
			w.suppressHeartbeats(bestT.Add(-kRootInterval), resume.Add(2*kRootInterval))

		case bkSpontaneous:
			resume = bestT.Add(simclock.Duration(2+w.rnd.Intn(19)) * simclock.Minute)
			w.goodRound(bestT.Add(simclock.Duration(30 + w.rnd.Int63n(120))))
			w.suppressHeartbeats(bestT, resume)

		case bkV6Rotate:
			resume = bestT.Add(simclock.Duration(1+w.rnd.Intn(3)) * simclock.Minute)
			w.goodRound(bestT.Add(simclock.Duration(20 + w.rnd.Int63n(60))))
			w.suppressHeartbeats(bestT, resume)

		case bkAdmin:
			adminPending = false
			resume = bestT.Add(simclock.Duration(10+w.rnd.Intn(21)) * simclock.Minute)
			addr, changed = backend.AdminRenumber(resume)
			forcedT, hasForced = backend.ForcedAt(resume)
			w.truth.AdminRenumbered = changed
			w.goodRound(bestT.Add(simclock.Duration(60 + w.rnd.Int63n(300))))
			w.suppressHeartbeats(bestT, resume)

		case bkSwitch:
			switched = true
			resume = bestT.Add(simclock.Duration(5+w.rnd.Intn(26)) * simclock.Minute)
			// The probe now sits behind a different ISP: redraw the line
			// parameters from the new profile's ground truth.
			spec.cohort = spec.secondISP.PickCohort(w.rnd.Categorical)
			spec.syncAnchored = false
			if spec.secondISP.Kind == isp.PPP {
				spec.renumberOnOutage = w.rnd.Bool(spec.secondISP.OutageRenumberFrac)
			}
			backend, err = w.newBackend(spec.secondISP, spec.secondPool, w.rnd.Split("second"))
			if err != nil {
				return ProbeTruth{}, err
			}
			addr = backend.Start(resume)
			changed = true
			forcedT, hasForced = backend.ForcedAt(resume)
			w.goodRound(bestT.Add(simclock.Duration(60 + w.rnd.Int63n(300))))
			w.suppressHeartbeats(bestT, resume)
		}

		if changed {
			w.truth.V4AddressChanges++
			// v1/v2 hardware can reboot while re-establishing the TCP
			// connection after an address change (§5.1) — unless the
			// gap already contains a power-outage reboot.
			if !rebootedInGap && spec.version != atlasdata.V3 && w.rnd.Bool(w.cfg.V12RebootProb) {
				w.lastBoot = resume.Add(-simclock.Duration(30 + w.rnd.Int63n(90)))
				w.truth.Reboots++
				w.suppressHeartbeats(w.lastBoot.Add(-2*kRootInterval), resume.Add(kRootInterval))
			}
		}

		if !resume.Before(spec.depart) {
			break
		}
		connStart = resume
		w.emitUptime(connStart)
		fam = w.pickFamily()
		scheduleV6Rotation()
	}

	w.emitHeartbeats()
	w.flush(ds)
	return w.truth, nil
}

// emitHeartbeats lays down background good rounds outside suppressed
// windows.
func (w *walker) emitHeartbeats() {
	hb := w.cfg.KRootHeartbeat
	if hb <= 0 {
		return
	}
	for t := w.spec.install.Add(hb); t.Before(w.spec.depart); t = t.Add(hb) {
		if !w.suppressed(t) {
			w.goodRound(t)
		}
	}
}

// flush moves the probe's records and metadata into the dataset.
func (w *walker) flush(ds *atlasdata.Dataset) {
	ds.Probes[w.spec.id] = atlasdata.ProbeMeta{
		ID:            w.spec.id,
		Country:       w.spec.country,
		Version:       w.spec.version,
		Tags:          w.spec.tags,
		ConnectedDays: float64(w.connectedSecs) / 86400,
	}
	ds.ConnLogs[w.spec.id] = w.conns
	ds.KRoot[w.spec.id] = w.rounds
	ds.Uptime[w.spec.id] = w.ups
}
