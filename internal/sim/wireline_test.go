package sim

import (
	"testing"

	"dynaddr/internal/simclock"
)

func wireConfig(seed uint64) Config {
	cfg := tinyConfig(seed)
	cfg.WireBackends = true
	return cfg
}

func TestWireWorldValidAndDeterministic(t *testing.T) {
	w1 := generate(t, wireConfig(21))
	if err := w1.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	w2 := generate(t, wireConfig(21))
	for id, c1 := range w1.Dataset.ConnLogs {
		c2 := w2.Dataset.ConnLogs[id]
		if len(c1) != len(c2) {
			t.Fatalf("probe %d: wire mode nondeterministic (%d vs %d sessions)", id, len(c1), len(c2))
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("probe %d session %d differs across identical wire runs", id, i)
			}
		}
	}
}

func TestWireWorldPeriodicSemantics(t *testing.T) {
	// Wire-level PPP lines must renumber on the same daily schedule as
	// the behavioural model: the paper shapes hold either way.
	w := generate(t, wireConfig(23))
	for id, truth := range w.Truth.Probes {
		switch truth.ISP {
		case "PeriodicNet":
			if truth.V4AddressChanges < 200 {
				t.Errorf("wire-mode periodic probe %d changed only %d times", id, truth.V4AddressChanges)
			}
			entries := w.Dataset.ConnLogs[id]
			day, total := 0, 0
			for i := 1; i < len(entries); i++ {
				if entries[i].Addr == entries[i-1].Addr {
					continue
				}
				dur := entries[i].Start.Sub(entries[i-1].Start)
				total++
				if dur > 23*simclock.Hour && dur < 26*simclock.Hour {
					day++
				}
			}
			if total > 0 && float64(day)/float64(total) < 0.5 {
				t.Errorf("wire-mode probe %d: only %d/%d spans near 24h", id, day, total)
			}
		case "StaticNet":
			if truth.V4AddressChanges != 0 {
				t.Errorf("wire-mode static probe %d changed %d times", id, truth.V4AddressChanges)
			}
		}
	}
}

func TestWireWorldDHCPSemantics(t *testing.T) {
	// Wire-level DHCP lines keep addresses through short interruptions
	// (renewal over the wire) and change only rarely under a 30-day
	// reclaim mean.
	w := generate(t, wireConfig(25))
	var changes, probes int
	for _, truth := range w.Truth.Probes {
		if truth.ISP != "LeaseNet" {
			continue
		}
		probes++
		changes += truth.V4AddressChanges
	}
	if probes == 0 {
		t.Fatal("no LeaseNet probes")
	}
	if avg := float64(changes) / float64(probes); avg > 12 {
		t.Errorf("wire-mode DHCP probes average %.1f changes/year; too churny", avg)
	}
}

func TestWireVsBehaviouralShapeAgreement(t *testing.T) {
	// The two backends are different implementations of the same ISP
	// policies; their worlds must agree on the aggregate shape even
	// though individual draws differ.
	wBehav := generate(t, tinyConfig(27))
	wWire := generate(t, wireConfig(27))

	meanChanges := func(w *World, ispName string) float64 {
		var sum, n float64
		for _, truth := range w.Truth.Probes {
			if truth.ISP == ispName {
				sum += float64(truth.V4AddressChanges)
				n++
			}
		}
		if n == 0 {
			return -1
		}
		return sum / n
	}
	for _, ispName := range []string{"PeriodicNet", "LeaseNet", "StaticNet"} {
		b := meanChanges(wBehav, ispName)
		wi := meanChanges(wWire, ispName)
		if b < 0 || wi < 0 {
			t.Fatalf("%s missing from a world", ispName)
		}
		// Within 25% of each other (or both tiny).
		if b > 5 || wi > 5 {
			ratio := wi / b
			if ratio < 0.75 || ratio > 1.33 {
				t.Errorf("%s: wire %.1f vs behavioural %.1f changes/probe", ispName, wi, b)
			}
		}
	}
}
