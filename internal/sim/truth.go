package sim

import (
	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/isp"
	"dynaddr/internal/simclock"
)

// Special classifies a probe's population cohort.
type Special int

// Probe cohorts. The analysis pipeline should filter everything except
// Normal and Mover (movers survive the geographic analysis with their
// cross-AS changes discarded).
const (
	Normal Special = iota
	IPv6Only
	DualStack
	Multihomed
	Mover
)

// String names the cohort.
func (s Special) String() string {
	switch s {
	case Normal:
		return "normal"
	case IPv6Only:
		return "ipv6-only"
	case DualStack:
		return "dual-stack"
	case Multihomed:
		return "multihomed"
	case Mover:
		return "mover"
	default:
		return "unknown"
	}
}

// ProbeTruth records the generative ground truth for one probe, letting
// experiments check what the analysis pipeline recovers against what the
// simulator actually did.
type ProbeTruth struct {
	ID      atlasdata.ProbeID
	ISP     string
	ASN     asdb.ASN
	Country string
	Version atlasdata.ProbeVersion
	Special Special
	Kind    isp.AssignKind

	// Period is the forced session lifetime of the probe's cohort; zero
	// means unlimited.
	Period simclock.Duration
	// SyncAnchored reports whether the CPE defers periodic resets to its
	// chosen nightly anchor (the DTAG pattern).
	SyncAnchored bool
	// RenumberOnOutage reports whether this customer's line receives a
	// fresh address on every reconnect.
	RenumberOnOutage bool
	// TestingFirst reports whether the first connection-log entry uses
	// the RIPE testing address.
	TestingFirst bool
	// ShortLived reports whether the probe was connected under 30 days.
	ShortLived bool

	// V4AddressChanges counts the IPv4 address changes the simulator
	// actually produced between consecutive v4-visible sessions.
	V4AddressChanges int
	// PowerOutages and NetworkOutages count generated outage events.
	PowerOutages   int
	NetworkOutages int
	// Reboots counts all probe reboots (outage-, firmware- and
	// fragmentation-induced).
	Reboots int
	// FirmwareReboots counts reboots caused by firmware pushes.
	FirmwareReboots int
	// AdminRenumbered reports that the probe's ISP executed its en-masse
	// administrative renumbering while the probe was live.
	AdminRenumbered bool
	// V6Rotating reports that the probe's host rotates its IPv6 address
	// daily (RFC 4941 privacy extensions).
	V6Rotating bool
}

// Truth is the generative journal for a whole world.
type Truth struct {
	Probes map[atlasdata.ProbeID]ProbeTruth
	// FirmwareDays echoes the zero-based study-day indices of pushes.
	FirmwareDays []int
}
