// Package sim generates synthetic RIPE Atlas datasets: it simulates a
// population of probes behind CPE devices in ISPs with configured
// address-assignment behaviour across the 2015 study year, and emits the
// connection-logs, k-root-ping and SOS-uptime datasets plus the probe
// archive and monthly pfx2as snapshots — the exact inputs the paper's
// analysis pipeline consumes.
//
// Every generative mechanism the paper names is modelled: DHCP lease
// renewal and reclaim, PPP session caps with skipped and jittered resets,
// synchronised nightly reconnect windows, power and network outages,
// firmware-push reboot storms, v1/v2 memory-fragmentation reboots,
// dual-stack and IPv6-only probes, multihomed address alternation, the
// 193.0.0.78 testing address, probes that move between ISPs, and
// sibling-ASN pools.
//
// The k-root stream is emitted sparsely: rounds appear adjacent to every
// connection break and during network outages (where all pings fail and
// LTS grows), plus a configurable heartbeat. The analysis detectors are
// anchored — network outages at all-lost runs, power outages at reboots —
// so sparse and dense emission are equivalent; a test asserts this.
package sim

import (
	"fmt"

	"dynaddr/internal/isp"
	"dynaddr/internal/simclock"
)

// Config parameterises a synthetic world.
type Config struct {
	// Seed drives all randomness; identical configs with identical seeds
	// produce byte-identical datasets.
	Seed uint64

	// Start and End bound the simulated interval; zero values mean the
	// paper's study year (all of 2015).
	Start, End simclock.Time

	// Scale multiplies every profile's DefaultProbes. 1.0 mirrors the
	// paper's per-AS deployment sizes; tests use smaller worlds.
	Scale float64

	// Profiles lists the ISPs to simulate; nil means isp.PaperProfiles().
	Profiles []isp.Profile

	// Population mix, as fractions of all probes (paper Table 2 shapes
	// the defaults). Draws are independent per probe with this priority:
	// IPv6-only, dual-stack, multihomed, mover.
	IPv6OnlyFrac   float64
	DualStackFrac  float64
	MultihomedFrac float64
	MoverFrac      float64
	// TaggedMultihomedFrac is the share of multihomed probes whose hosts
	// volunteered a "multihomed"/"datacentre"/"core" tag (§3.2).
	TaggedMultihomedFrac float64
	// TestingAddrFrac is the share of probes whose first connection-log
	// entry still shows the RIPE testing address 193.0.0.78 (§3.3).
	TestingAddrFrac float64
	// ShortLivedFrac is the share of probes connected fewer than 30
	// aggregate days, which the paper excludes before analysis.
	ShortLivedFrac float64
	// V6DailyRotateFrac is the share of IPv6-capable probes (dual-stack
	// and IPv6-only) whose hosts rotate their IPv6 address daily — RFC
	// 4941 privacy extensions, which the paper cites as recommending a
	// 24-hour address lifetime and defers IPv6 analysis to future work.
	V6DailyRotateFrac float64

	// VersionWeights gives the relative shares of probe hardware
	// versions v1, v2, v3. The paper reports >75% v3.
	VersionWeights [3]float64
	// V12RebootProb is the probability that a v1/v2 probe spontaneously
	// reboots while re-establishing a TCP connection after an address
	// change (memory fragmentation, §5.1).
	V12RebootProb float64

	// FirmwareDays lists zero-based study-year day indices on which the
	// controller pushes a firmware update; affected probes reboot once.
	FirmwareDays []int
	// FirmwareParticipation is the probability a given probe installs a
	// given push.
	FirmwareParticipation float64

	// SpontaneousPerYear is the rate of controller-TCP breaks with no
	// outage and no address change.
	SpontaneousPerYear float64

	// KRootHeartbeat is the cadence of background k-root rounds outside
	// event neighbourhoods; zero disables heartbeats (event-adjacent
	// rounds are always emitted). Dense mode for small worlds is 4
	// minutes, the real probes' cadence.
	KRootHeartbeat simclock.Duration

	// WireBackends routes every address decision through the actual
	// protocol exchanges — PPPoE discovery + IPCP for PPP lines, DHCP
	// DORA/renew messages for DHCP lines — instead of the behavioural
	// models. Slower; used to prove the datasets can be produced by the
	// protocols the paper describes. Wire mode has no SameAddrProb
	// harmonics (Radius-style pools never hand the same address back by
	// policy).
	WireBackends bool
}

// DefaultConfig returns the paper-shaped world configuration.
func DefaultConfig() Config {
	return Config{
		Seed:  1,
		Start: simclock.StudyStart,
		End:   simclock.StudyEnd,
		Scale: 1.0,

		IPv6OnlyFrac:         0.02,
		DualStackFrac:        0.30,
		MultihomedFrac:       0.06,
		MoverFrac:            0.03,
		TaggedMultihomedFrac: 0.25,
		TestingAddrFrac:      0.04,
		ShortLivedFrac:       0.02,
		V6DailyRotateFrac:    0.6,

		VersionWeights: [3]float64{0.10, 0.12, 0.78},
		V12RebootProb:  0.5,

		// Five pushes, the count the paper observes in 2015 (§5.2):
		// late Jan, late Mar, mid Apr, early Jul, early Oct.
		FirmwareDays:          []int{24, 81, 103, 186, 277},
		FirmwareParticipation: 0.5,

		SpontaneousPerYear: 14,
		KRootHeartbeat:     6 * simclock.Hour,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("sim: Scale must be positive, got %v", c.Scale)
	}
	start, end := c.Interval()
	if !start.Before(end) {
		return fmt.Errorf("sim: empty interval [%v, %v)", start, end)
	}
	fracs := []struct {
		name string
		v    float64
	}{
		{"IPv6OnlyFrac", c.IPv6OnlyFrac},
		{"DualStackFrac", c.DualStackFrac},
		{"MultihomedFrac", c.MultihomedFrac},
		{"MoverFrac", c.MoverFrac},
		{"TaggedMultihomedFrac", c.TaggedMultihomedFrac},
		{"TestingAddrFrac", c.TestingAddrFrac},
		{"ShortLivedFrac", c.ShortLivedFrac},
		{"V6DailyRotateFrac", c.V6DailyRotateFrac},
		{"V12RebootProb", c.V12RebootProb},
		{"FirmwareParticipation", c.FirmwareParticipation},
	}
	for _, f := range fracs {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("sim: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if c.IPv6OnlyFrac+c.DualStackFrac+c.MultihomedFrac+c.MoverFrac > 1 {
		return fmt.Errorf("sim: special-cohort fractions exceed 1")
	}
	var vw float64
	for _, w := range c.VersionWeights {
		if w < 0 {
			return fmt.Errorf("sim: negative version weight")
		}
		vw += w
	}
	if vw <= 0 {
		return fmt.Errorf("sim: version weights sum to zero")
	}
	days := int(end.Sub(start) / simclock.Day)
	for _, d := range c.FirmwareDays {
		if d < 0 || d >= days {
			return fmt.Errorf("sim: firmware day %d outside interval (%d days)", d, days)
		}
	}
	if c.SpontaneousPerYear < 0 {
		return fmt.Errorf("sim: negative spontaneous rate")
	}
	if c.KRootHeartbeat < 0 {
		return fmt.Errorf("sim: negative heartbeat")
	}
	return nil
}

// Interval returns the configured simulation bounds, defaulting to the
// 2015 study year.
func (c Config) Interval() (start, end simclock.Time) {
	start, end = c.Start, c.End
	if start == 0 && end == 0 {
		start, end = simclock.StudyStart, simclock.StudyEnd
	}
	return start, end
}

// EffectiveProfiles returns the configured profile list, defaulting to
// the paper registry.
func (c Config) EffectiveProfiles() []isp.Profile {
	if c.Profiles != nil {
		return c.Profiles
	}
	return isp.PaperProfiles()
}
