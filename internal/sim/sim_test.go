package sim

import (
	"reflect"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/isp"
	"dynaddr/internal/outage"
	"dynaddr/internal/simclock"
)

// tinyProfiles is a fast world: one periodic PPP ISP, one DHCP ISP, one
// static ISP.
func tinyProfiles() []isp.Profile {
	return []isp.Profile{
		{
			Name: "PeriodicNet", ASN: 100, Country: "DE", Kind: isp.PPP,
			Cohorts:  []isp.Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
			SkipProb: 0.001, SameAddrProb: 0.001,
			OutageRenumberFrac: 1.0,
			NumPrefixes:        2, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 6,
		},
		{
			Name: "LeaseNet", ASN: 200, Country: "US", Kind: isp.DHCP,
			Lease: 4 * simclock.Hour, ReclaimMean: 30 * simclock.Day,
			NumPrefixes: 2, PrefixBits: 16, CrossPrefixProb: 0.3,
			DefaultProbes: 6,
		},
		{
			Name: "StaticNet", ASN: 300, Country: "FR", Kind: isp.Static,
			NumPrefixes: 1, PrefixBits: 16,
			DefaultProbes: 4,
		},
	}
}

func tinyConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Profiles = tinyProfiles()
	cfg.Scale = 1
	// Make cohorts deterministic-ish for the tiny world: no special
	// cohorts, so every probe exercises the plain v4 path.
	cfg.IPv6OnlyFrac = 0
	cfg.DualStackFrac = 0
	cfg.MultihomedFrac = 0
	cfg.MoverFrac = 0
	cfg.TestingAddrFrac = 0
	cfg.ShortLivedFrac = 0
	cfg.VersionWeights = [3]float64{0, 0, 1}
	return cfg
}

func generate(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scale should fail")
	}
	bad = DefaultConfig()
	bad.DualStackFrac = 0.9
	bad.MultihomedFrac = 0.2
	if err := bad.Validate(); err == nil {
		t.Error("cohort fractions over 1 should fail")
	}
	bad = DefaultConfig()
	bad.FirmwareDays = []int{400}
	if err := bad.Validate(); err == nil {
		t.Error("firmware day outside year should fail")
	}
	bad = DefaultConfig()
	bad.VersionWeights = [3]float64{0, 0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero version weights should fail")
	}
}

func TestGenerateTinyWorld(t *testing.T) {
	w := generate(t, tinyConfig(7))
	if err := w.Dataset.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	if len(w.Dataset.Probes) != 16 {
		t.Errorf("probe count = %d, want 16", len(w.Dataset.Probes))
	}
	if len(w.Truth.Probes) != len(w.Dataset.Probes) {
		t.Error("truth and dataset probe counts differ")
	}
	if months := w.Dataset.Pfx2AS.Months(); len(months) != 12 {
		t.Errorf("pfx2as months = %d, want 12", len(months))
	}
}

func TestDeterminism(t *testing.T) {
	w1 := generate(t, tinyConfig(42))
	w2 := generate(t, tinyConfig(42))
	if !reflect.DeepEqual(w1.Dataset.ConnLogs, w2.Dataset.ConnLogs) {
		t.Error("connection logs differ across identical runs")
	}
	if !reflect.DeepEqual(w1.Dataset.KRoot, w2.Dataset.KRoot) {
		t.Error("k-root rounds differ across identical runs")
	}
	if !reflect.DeepEqual(w1.Dataset.Uptime, w2.Dataset.Uptime) {
		t.Error("uptime records differ across identical runs")
	}
	if !reflect.DeepEqual(w1.Truth, w2.Truth) {
		t.Error("truth journals differ across identical runs")
	}
}

func TestSeedsDiffer(t *testing.T) {
	w1 := generate(t, tinyConfig(1))
	w2 := generate(t, tinyConfig(2))
	if reflect.DeepEqual(w1.Dataset.ConnLogs, w2.Dataset.ConnLogs) {
		t.Error("different seeds produced identical connection logs")
	}
}

func TestPeriodicProbesRenumberDaily(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, truth := range w.Truth.Probes {
		if truth.ISP != "PeriodicNet" {
			continue
		}
		// A daily-renumbered probe alive all year sees hundreds of
		// changes.
		if truth.V4AddressChanges < 200 {
			t.Errorf("probe %d in PeriodicNet changed only %d times", id, truth.V4AddressChanges)
		}
		// Check the dominant address duration is ~24h in the logs.
		entries := w.Dataset.ConnLogs[id]
		var day, total int
		for i := 1; i < len(entries); i++ {
			if entries[i].Addr == entries[i-1].Addr {
				continue
			}
			dur := entries[i].Start.Sub(entries[i-1].Start)
			total++
			if dur > 23*simclock.Hour && dur < 26*simclock.Hour {
				day++
			}
		}
		if total > 0 && float64(day)/float64(total) < 0.5 {
			t.Errorf("probe %d: only %d/%d inter-change spans near 24h", id, day, total)
		}
	}
}

func TestStaticProbesNeverChange(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, truth := range w.Truth.Probes {
		if truth.ISP != "StaticNet" {
			continue
		}
		if truth.V4AddressChanges != 0 {
			t.Errorf("static probe %d changed %d times", id, truth.V4AddressChanges)
		}
		entries := w.Dataset.ConnLogs[id]
		for i := 1; i < len(entries); i++ {
			if entries[i].Addr != entries[0].Addr {
				t.Errorf("static probe %d has multiple addresses", id)
				break
			}
		}
	}
}

func TestDHCPLongReclaimRarelyChanges(t *testing.T) {
	w := generate(t, tinyConfig(7))
	var changes, probes int
	for _, truth := range w.Truth.Probes {
		if truth.ISP != "LeaseNet" {
			continue
		}
		probes++
		changes += truth.V4AddressChanges
	}
	if probes == 0 {
		t.Fatal("no LeaseNet probes")
	}
	if avg := float64(changes) / float64(probes); avg > 12 {
		t.Errorf("30-day-reclaim DHCP probes average %.1f changes/year; too churny", avg)
	}
}

func TestKRootInvariants(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, rounds := range w.Dataset.KRoot {
		for i, r := range rounds {
			if err := r.Validate(); err != nil {
				t.Fatalf("probe %d round %d: %v", id, i, err)
			}
			if i > 0 && r.Timestamp < rounds[i-1].Timestamp {
				t.Fatalf("probe %d rounds unsorted at %d", id, i)
			}
			// Loss rounds carry LTS that exceeds the sync cadence.
			if r.AllLost() && r.LTS < 10 {
				t.Errorf("probe %d: all-lost round with tiny LTS %d", id, r.LTS)
			}
		}
		// Within a loss run the LTS must grow.
		for i := 1; i < len(rounds); i++ {
			if rounds[i].AllLost() && rounds[i-1].AllLost() && rounds[i].LTS <= rounds[i-1].LTS {
				t.Errorf("probe %d: LTS not growing within loss run at %d", id, i)
			}
		}
	}
}

func TestUptimeResetsMatchTruthReboots(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, truth := range w.Truth.Probes {
		recs := w.Dataset.Uptime[id]
		resets := 0
		for i := 1; i < len(recs); i++ {
			// A reset shows as the counter dropping below the elapsed
			// wall time since the previous record.
			elapsed := int64(recs[i].Timestamp.Sub(recs[i-1].Timestamp))
			if recs[i].Uptime < recs[i-1].Uptime+elapsed-60 && recs[i].Uptime < elapsed {
				resets++
			}
		}
		if resets != truth.Reboots {
			t.Errorf("probe %d: %d uptime resets vs %d truth reboots", id, resets, truth.Reboots)
		}
	}
}

func TestOutageCountsPlausible(t *testing.T) {
	w := generate(t, tinyConfig(7))
	var power, network int
	for _, truth := range w.Truth.Probes {
		power += truth.PowerOutages
		network += truth.NetworkOutages
	}
	if power == 0 || network == 0 {
		t.Errorf("outages missing: power=%d network=%d", power, network)
	}
}

func TestFirmwareRebootSpikes(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.FirmwareParticipation = 1.0
	w := generate(t, cfg)
	// Count probes whose truth says they installed each push.
	fwReboots := 0
	for _, truth := range w.Truth.Probes {
		fwReboots += truth.FirmwareReboots
	}
	if fwReboots < len(w.Truth.Probes)*len(cfg.FirmwareDays)/2 {
		t.Errorf("firmware reboots = %d, expected most of %d probes x %d pushes",
			fwReboots, len(w.Truth.Probes), len(cfg.FirmwareDays))
	}
}

func TestSpecialCohortsAppear(t *testing.T) {
	cfg := tinyConfig(13)
	cfg.IPv6OnlyFrac = 0.1
	cfg.DualStackFrac = 0.3
	cfg.MultihomedFrac = 0.15
	cfg.MoverFrac = 0.1
	cfg.TestingAddrFrac = 0.2
	cfg.Profiles[0].DefaultProbes = 40
	cfg.Profiles[1].DefaultProbes = 40
	w := generate(t, cfg)
	counts := map[Special]int{}
	testing_ := 0
	for _, truth := range w.Truth.Probes {
		counts[truth.Special]++
		if truth.TestingFirst {
			testing_++
		}
	}
	for _, s := range []Special{IPv6Only, DualStack, Multihomed, Mover} {
		if counts[s] == 0 {
			t.Errorf("cohort %v absent from world", s)
		}
	}
	if testing_ == 0 {
		t.Error("no testing-address probes")
	}
	// Verify record shapes for each cohort.
	for id, truth := range w.Truth.Probes {
		entries := w.Dataset.ConnLogs[id]
		switch truth.Special {
		case IPv6Only:
			for _, e := range entries {
				if e.IsV4() && e.Addr != 0 && !truth.TestingFirst {
					t.Errorf("IPv6-only probe %d has v4 session", id)
					break
				}
			}
		case DualStack:
			var v4, v6 bool
			for _, e := range entries {
				if e.IsV4() {
					v4 = true
				} else {
					v6 = true
				}
			}
			if !v4 || !v6 {
				t.Errorf("dual-stack probe %d uses one family only", id)
			}
		}
		if truth.TestingFirst && len(entries) > 0 {
			if entries[0].Family != atlasdata.V4 || entries[0].Addr != ip4.TestingAddr {
				t.Errorf("testing-first probe %d first entry = %v", id, entries[0].Addr)
			}
		}
	}
}

func TestMoverChangesAS(t *testing.T) {
	cfg := tinyConfig(17)
	cfg.MoverFrac = 0.5
	w := generate(t, cfg)
	foundCrossAS := false
	for id, truth := range w.Truth.Probes {
		if truth.Special != Mover {
			continue
		}
		entries := w.Dataset.ConnLogs[id]
		var asns = map[uint32]bool{}
		for _, e := range entries {
			if !e.IsV4() {
				continue
			}
			if asn, _, ok := w.Dataset.Pfx2AS.Lookup(e.Addr, e.Start); ok {
				asns[uint32(asn)] = true
			}
		}
		if len(asns) > 1 {
			foundCrossAS = true
		}
	}
	if !foundCrossAS {
		t.Error("no mover produced cross-AS address changes")
	}
}

func TestAllAddressesRoutable(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, entries := range w.Dataset.ConnLogs {
		for _, e := range entries {
			if !e.IsV4() {
				continue
			}
			if _, _, ok := w.Dataset.Pfx2AS.Lookup(e.Addr, e.Start); !ok {
				t.Fatalf("probe %d used unroutable address %v", id, e.Addr)
			}
		}
	}
}

func TestSyncAnchoredChangesLandInWindow(t *testing.T) {
	profiles := []isp.Profile{{
		Name: "NightReset", ASN: 100, Country: "DE", Kind: isp.PPP,
		Cohorts:  []isp.Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
		SyncFrac: 1.0, SyncStartHour: 0, SyncEndHour: 6,
		SkipProb: 0.001, SameAddrProb: 0.001,
		OutageRenumberFrac: 1.0,
		NumPrefixes:        2, PrefixBits: 16, CrossPrefixProb: 0.5,
		DefaultProbes: 5,
		// Suppress outages so nearly every change is the nightly reset.
		Outage: outage.Config{
			PowerPerYear: 0.5, NetworkPerYear: 0.5, ShortFrac: 0.5,
			ParetoXm: 90, ParetoAlpha: 0.75, MaxDuration: simclock.Day,
		},
	}}
	cfg := tinyConfig(19)
	cfg.Profiles = profiles
	w := generate(t, cfg)
	inWindow, total := 0, 0
	for id, entries := range w.Dataset.ConnLogs {
		_ = id
		for i := 1; i < len(entries); i++ {
			if entries[i].Addr == entries[i-1].Addr {
				continue
			}
			total++
			if h := entries[i-1].End.HourOfDay(); h < 6 {
				inWindow++
			}
		}
	}
	if total == 0 {
		t.Fatal("no address changes generated")
	}
	if frac := float64(inWindow) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of changes in the nightly window", frac*100)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.Scale = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("bad config should fail")
	}
	cfg = tinyConfig(1)
	cfg.Profiles = []isp.Profile{{Name: "broken"}}
	if _, err := Generate(cfg); err == nil {
		t.Error("bad profile should fail")
	}
}

func TestConnectedDaysAccounting(t *testing.T) {
	w := generate(t, tinyConfig(7))
	for id, meta := range w.Dataset.Probes {
		var secs int64
		for _, e := range w.Dataset.ConnLogs[id] {
			secs += int64(e.End.Sub(e.Start))
		}
		if got, want := meta.ConnectedDays, float64(secs)/86400; got < want-0.01 || got > want+0.01 {
			t.Errorf("probe %d ConnectedDays = %v, want %v", id, got, want)
		}
	}
}
