package sim

import (
	"fmt"
	"math"

	"dynaddr/internal/dhcp"
	"dynaddr/internal/ip4"
	"dynaddr/internal/isp"
	"dynaddr/internal/ppp"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// Wire-backed line backends: the same lineBackend contract as the
// behavioural models in probe.go, but every address decision travels
// through the actual protocol exchanges — PPPoE discovery + IPCP
// negotiation for PPP lines, DHCP DORA/renew messages for DHCP lines.
// Config.WireBackends selects them; a test asserts the generated worlds
// recover the same paper shapes either way. The wire path is slower (it
// marshals and parses every packet), which is exactly its value: the
// datasets can be produced by the protocols the paper describes, not
// just by models of them.

// wirePPPLine drives ppp wire machinery. Periodic scheduling, skip and
// jitter logic is shared with the behavioural model via an embedded
// scheduler.
type wirePPPLine struct {
	ac   *ppp.AccessConcentrator
	ipcp *ppp.IPCPServer
	rnd  *rng.RNG

	hostUniq []byte
	session  uint16
	addr     ip4.Addr

	sched    pppSchedule
	renumber bool
}

// pppSchedule factors the forced-disconnect timing out of pppLine so
// both the behavioural and wire backends share it exactly.
type pppSchedule struct {
	rnd         *rng.RNG
	period      simclock.Duration
	sync        bool
	anchorEpoch simclock.Time
	skipProb    float64
	jitterProb  float64
	lastAssign  simclock.Time
}

func (s *pppSchedule) next(after simclock.Time) (simclock.Time, bool) {
	if s.period <= 0 {
		return 0, false
	}
	var t simclock.Time
	if s.sync {
		base := after.Add(simclock.Hour)
		delta := base.Sub(s.anchorEpoch)
		k := int64(delta / s.period)
		if delta%s.period != 0 || delta < 0 {
			k++
		}
		if delta < 0 {
			k = 0
		}
		t = s.anchorEpoch.Add(simclock.Duration(k) * s.period)
	} else {
		t = s.lastAssign.Add(s.period)
		for !t.After(after) {
			t = t.Add(s.period)
		}
	}
	for s.rnd.Bool(s.skipProb) {
		t = t.Add(s.period)
	}
	if s.jitterProb > 0 && s.rnd.Bool(s.jitterProb) {
		half := int64(s.period / 2)
		t = t.Add(simclock.Duration(s.rnd.Int63n(2*half+1) - half))
	}
	if !t.After(after) {
		t = after.Add(s.period)
	}
	return t, true
}

func (l *wirePPPLine) establish(t simclock.Time) ip4.Addr {
	sid, addr, err := ppp.EstablishSession(l.ac, l.ipcp, l.hostUniq)
	if err != nil {
		// The in-memory exchange only fails on programming errors.
		panic(fmt.Sprintf("sim: wire ppp establish: %v", err))
	}
	l.session, l.addr = sid, addr
	l.sched.lastAssign = t
	return addr
}

func (l *wirePPPLine) teardown() {
	if l.session == 0 {
		return
	}
	if err := ppp.TeardownSession(l.ac, l.ipcp, l.session); err != nil {
		panic(fmt.Sprintf("sim: wire ppp teardown: %v", err))
	}
	l.session = 0
}

func (l *wirePPPLine) Start(t simclock.Time) ip4.Addr { return l.establish(t) }
func (l *wirePPPLine) Current() ip4.Addr              { return l.addr }

func (l *wirePPPLine) Resume(from, to simclock.Time) (ip4.Addr, bool) {
	if !l.renumber {
		return l.addr, false
	}
	old := l.addr
	l.teardown()
	addr := l.establish(to)
	return addr, addr != old
}

func (l *wirePPPLine) ForcedAt(after simclock.Time) (simclock.Time, bool) {
	return l.sched.next(after)
}

func (l *wirePPPLine) ForcedRenumber(t simclock.Time) (ip4.Addr, bool) {
	old := l.addr
	l.teardown()
	addr := l.establish(t)
	return addr, addr != old
}

func (l *wirePPPLine) AdminRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.ForcedRenumber(t)
}

// wireDHCPLine drives the dhcp message-level server/client pair. Lease
// bookkeeping mirrors dhcp.Session: while connected the client renews in
// place; across an interruption the lease keeps running and, once
// lapsed, pool pressure (the reclaim draw) hands the address to a
// phantom competitor before the client returns.
type wireDHCPLine struct {
	srv    *dhcp.WireServer
	client *dhcp.WireClient
	pool   *isp.AddressPool
	rnd    *rng.RNG

	lease       simclock.Duration
	reclaimMean simclock.Duration
	leaseEnd    simclock.Time
	connected   bool
}

func (l *wireDHCPLine) Start(t simclock.Time) ip4.Addr {
	addr, err := l.client.Acquire(t)
	if err != nil {
		panic(fmt.Sprintf("sim: wire dhcp acquire: %v", err))
	}
	l.connected = true
	return addr
}

func (l *wireDHCPLine) Current() ip4.Addr { return l.client.Addr() }

func (l *wireDHCPLine) Resume(from, to simclock.Time) (ip4.Addr, bool) {
	if l.connected {
		// First interruption bookkeeping: residual lease at disconnect.
		residual := simclock.Duration(l.lease/2) +
			simclock.Duration(l.rnd.Int63n(int64(l.lease/2)+1))
		l.leaseEnd = from.Add(residual)
		l.connected = false
	}
	old := l.client.Addr()
	defer func() { l.connected = true }()
	if !to.After(l.leaseEnd) {
		// Lease still valid: renew in place over the wire.
		if _, err := l.client.Renew(to); err != nil {
			panic(fmt.Sprintf("sim: wire dhcp renew: %v", err))
		}
		return old, false
	}
	lapsed := to.Sub(l.leaseEnd)
	pReclaimed := reclaimProbability(lapsed, l.reclaimMean)
	if l.rnd.Bool(pReclaimed) {
		// Pool pressure: the server sweeps the lapsed binding and a
		// phantom competitor claims the freed address before the client
		// returns.
		l.srv.ExpireBefore(to)
		l.pool.TryReacquire(old)
	}
	addr, err := l.client.Acquire(to)
	if err != nil {
		panic(fmt.Sprintf("sim: wire dhcp reacquire: %v", err))
	}
	return addr, addr != old
}

func (l *wireDHCPLine) ForcedAt(simclock.Time) (simclock.Time, bool) { return 0, false }
func (l *wireDHCPLine) ForcedRenumber(t simclock.Time) (ip4.Addr, bool) {
	return l.client.Addr(), false
}

func (l *wireDHCPLine) AdminRenumber(t simclock.Time) (ip4.Addr, bool) {
	// Server-side reconfiguration: drop the binding, hand the old
	// address to the phantom, re-acquire.
	old := l.client.Addr()
	l.srv.ExpireBefore(t.Add(100 * 365 * simclock.Day)) // drop unconditionally
	l.pool.TryReacquire(old)
	addr, err := l.client.Acquire(t)
	if err != nil {
		panic(fmt.Sprintf("sim: wire dhcp admin renumber: %v", err))
	}
	return addr, addr != old
}

// newWireBackend builds the wire-level counterpart of newBackend.
func (w *walker) newWireBackend(p isp.Profile, pool *isp.AddressPool, rnd *rng.RNG) (lineBackend, error) {
	switch p.Kind {
	case isp.Static:
		return &staticLine{pool: pool}, nil
	case isp.DHCP:
		srv, err := dhcp.NewWireServer(pool, pool.Prefixes()[0].Nth(1), p.Lease)
		if err != nil {
			return nil, err
		}
		hw := make([]byte, 6)
		r := rnd.Split("dhcp-hw")
		for i := range hw {
			hw[i] = byte(r.Uint64())
		}
		return &wireDHCPLine{
			srv:    srv,
			client: dhcp.NewWireClient(srv, hw),
			pool:   pool,
			rnd:    rnd.Split("dhcp-wire"),
			lease:  p.Lease, reclaimMean: p.ReclaimMean,
		}, nil
	case isp.PPP:
		ipcp, err := ppp.NewIPCPServer(pool)
		if err != nil {
			return nil, err
		}
		r := rnd.Split("ppp-wire")
		return &wirePPPLine{
			ac:       ppp.NewAccessConcentrator(p.Name),
			ipcp:     ipcp,
			rnd:      r,
			hostUniq: []byte(fmt.Sprintf("probe-%d", w.spec.id)),
			renumber: w.spec.renumberOnOutage,
			sched: pppSchedule{
				rnd:         rnd.Split("forced"),
				period:      w.spec.cohort.Period,
				sync:        w.spec.syncAnchored,
				anchorEpoch: simclock.StudyStart.Add(w.spec.anchorOffset),
				skipProb:    p.SkipProb,
				jitterProb:  p.JitterProb,
			},
		}, nil
	default:
		return nil, fmt.Errorf("sim: unknown assignment kind %v", p.Kind)
	}
}

// reclaimProbability is the shared memoryless reclaim model.
func reclaimProbability(lapsed, mean simclock.Duration) float64 {
	if lapsed <= 0 || mean <= 0 {
		return 0
	}
	return 1 - math.Exp(-float64(lapsed)/float64(mean))
}
