package sim

import (
	"fmt"
	"math"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/geo"
	"dynaddr/internal/ip4"
	"dynaddr/internal/isp"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// firstProbeID is where synthetic probe numbering starts.
const firstProbeID = 1000

// uplink2ASN originates the shared static /16 that multihomed probes use
// as their second, fixed-address uplink.
const uplink2ASN asdb.ASN = 65010

// World is a fully built synthetic deployment: the datasets plus the
// generative ground truth.
type World struct {
	Dataset *atlasdata.Dataset
	Truth   *Truth
	// Registry maps ASNs to operator metadata, including siblings.
	Registry *asdb.Registry
}

// Generate builds a world from the configuration.
func Generate(cfg Config) (*World, error) {
	return generateWorld(cfg, nil)
}

// generate builds the world, optionally emitting each probe's records
// to sink as that probe's timeline finishes simulating (see GenerateTo).
func generateWorld(cfg Config, sink RecordSink) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	profiles := cfg.EffectiveProfiles()
	if err := isp.ValidateAll(profiles); err != nil {
		return nil, err
	}
	start, end := cfg.Interval()
	root := rng.New(cfg.Seed)

	// --- Address plan: allocate prefixes, build pools, pfx2as, registry.
	// Prefixes scatter over separated regions of the space so that pools
	// genuinely span /8s (see asdb.RegionAllocator); consecutive prefix
	// pairs share a region, so some cross-prefix changes still stay
	// inside one /8 — the paper's DiffBGP > Diff/8 ordering.
	alloc, err := asdb.NewRegionAllocator(9)
	if err != nil {
		return nil, err
	}
	registry := asdb.NewRegistry()
	var routeEntries []pfx2as.Entry

	type ispState struct {
		profile isp.Profile
		pool    *isp.AddressPool
	}
	ispStates := make([]*ispState, 0, len(profiles))
	for pi, p := range profiles {
		prefixes := make([]ip4.Prefix, 0, p.NumPrefixes)
		for i := 0; i < p.NumPrefixes; i++ {
			region := (pi*3 + i/2) % alloc.NumRegions()
			pfx, err := alloc.Alloc(region, p.PrefixBits)
			if err != nil {
				return nil, fmt.Errorf("sim: allocating prefixes for %q: %v", p.Name, err)
			}
			prefixes = append(prefixes, pfx)
		}
		pool, err := isp.NewAddressPool(prefixes, p.CrossPrefixProb, root.Split("pool/"+p.Name))
		if err != nil {
			return nil, fmt.Errorf("sim: pool for %q: %v", p.Name, err)
		}
		for i, pfx := range prefixes {
			origin := p.ASN
			if p.SiblingASN != 0 && i%2 == 1 {
				origin = p.SiblingASN
			}
			routeEntries = append(routeEntries, pfx2as.Entry{Prefix: pfx, ASN: origin})
		}
		country := p.Country
		if country == "" {
			country = "NL" // pan-European operators are registered in one seat
		}
		if err := registry.Add(asdb.AS{ASN: p.ASN, Name: p.Name, Country: country, Siblings: siblingList(p)}); err != nil {
			return nil, err
		}
		if p.SiblingASN != 0 {
			if err := registry.Add(asdb.AS{ASN: p.SiblingASN, Name: p.Name + " (sibling)", Country: country, Siblings: []asdb.ASN{p.ASN}}); err != nil {
				return nil, err
			}
		}
		ispStates = append(ispStates, &ispState{profile: p, pool: pool})
	}

	// Static second-uplink space for multihomed probes.
	uplinkPrefix, err := alloc.Alloc(0, 16)
	if err != nil {
		return nil, err
	}
	routeEntries = append(routeEntries, pfx2as.Entry{Prefix: uplinkPrefix, ASN: uplink2ASN})
	if err := registry.Add(asdb.AS{ASN: uplink2ASN, Name: "Uplink2 Transit", Country: "DE"}); err != nil {
		return nil, err
	}
	// The RIPE testing address must be routable so IP-to-AS mapping can
	// attribute it (the paper maps it to RIPE NCC's AS3333).
	routeEntries = append(routeEntries, pfx2as.Entry{
		Prefix: ip4.MustParsePrefix("193.0.0.0/21"), ASN: 3333,
	})
	if err := registry.Add(asdb.AS{ASN: 3333, Name: "RIPE NCC", Country: "NL"}); err != nil {
		return nil, err
	}

	// Monthly pfx2as snapshots: routing is held stable across the year
	// (the paper found essentially one administrative renumbering event
	// in 2015; see DESIGN.md).
	ds := atlasdata.NewDataset()
	table, err := pfx2as.NewTable(routeEntries)
	if err != nil {
		return nil, err
	}
	for t := start; t.Before(end); {
		m := pfx2as.MonthOf(t)
		ds.Pfx2AS.Put(m, table)
		std := t.Std()
		t = simclock.Date(std.Year(), std.Month()+1, 1, 0, 0, 0)
	}

	// --- Probe population.
	truth := &Truth{
		Probes:       make(map[atlasdata.ProbeID]ProbeTruth),
		FirmwareDays: append([]int(nil), cfg.FirmwareDays...),
	}
	firmwareTimes := make([]simclock.Time, len(cfg.FirmwareDays))
	for i, d := range cfg.FirmwareDays {
		firmwareTimes[i] = start.Add(simclock.Duration(d) * simclock.Day)
	}

	// Movers need a second dynamic ISP. People switch providers locally,
	// so prefer an ISP in the same country, then the same continent,
	// then anything dynamic.
	dynIdx := make([]int, 0, len(ispStates))
	for i, st := range ispStates {
		if st.profile.Kind != isp.Static {
			dynIdx = append(dynIdx, i)
		}
	}
	if len(dynIdx) == 0 {
		return nil, fmt.Errorf("sim: no dynamic ISPs configured")
	}
	pickSecondISP := func(self int, country string, prnd *rng.RNG) int {
		var sameCountry, sameCont []int
		selfCont, selfContErr := geo.ContinentOf(country)
		for _, j := range dynIdx {
			if j == self {
				continue
			}
			pc := ispStates[j].profile.Country
			if pc == country && pc != "" {
				sameCountry = append(sameCountry, j)
			}
			if selfContErr == nil && pc != "" {
				if cont, err := geo.ContinentOf(pc); err == nil && cont == selfCont {
					sameCont = append(sameCont, j)
				}
			}
		}
		switch {
		case len(sameCountry) > 0:
			return sameCountry[prnd.Intn(len(sameCountry))]
		case len(sameCont) > 0:
			return sameCont[prnd.Intn(len(sameCont))]
		default:
			j := dynIdx[prnd.Intn(len(dynIdx))]
			if j == self && len(dynIdx) > 1 {
				j = dynIdx[(indexOf(dynIdx, j)+1)%len(dynIdx)]
			}
			return j
		}
	}

	euCodes := geo.CodesIn(geo.Europe)
	nextID := atlasdata.ProbeID(firstProbeID)
	for si, st := range ispStates {
		p := st.profile
		n := int(math.Round(float64(p.DefaultProbes) * cfg.Scale))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			id := nextID
			nextID++
			prnd := root.SplitN(uint64(id))

			spec := buildSpec(cfg, p, id, prnd, euCodes, start, end)
			if spec.special == Mover {
				j := pickSecondISP(si, spec.country, prnd)
				spec.secondISP = ispStates[j].profile
				spec.secondPool = ispStates[j].pool
			}
			if spec.special == Multihomed {
				spec.fixedAddr = uplinkPrefix.Nth(uint64(id-firstProbeID) + 10)
			}

			w := &walker{
				cfg:      &cfg,
				spec:     spec,
				pool:     st.pool,
				rnd:      prnd.Split("walk"),
				firmware: firmwareTimes,
			}
			pt, err := w.run(ds)
			if err != nil {
				return nil, fmt.Errorf("sim: probe %d (%s): %v", id, p.Name, err)
			}
			truth.Probes[id] = pt
			if sink != nil {
				sortProbeRecords(ds, id)
				if err := emitProbe(ds, id, sink); err != nil {
					return nil, fmt.Errorf("sim: emitting probe %d: %v", id, err)
				}
			}
		}
		_ = si
	}

	ds.SortRecords()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("sim: generated dataset invalid: %v", err)
	}
	return &World{Dataset: ds, Truth: truth, Registry: registry}, nil
}

func siblingList(p isp.Profile) []asdb.ASN {
	if p.SiblingASN == 0 {
		return nil
	}
	return []asdb.ASN{p.SiblingASN}
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return 0
}

// probeSpec is everything decided about a probe before its timeline runs.
type probeSpec struct {
	id      atlasdata.ProbeID
	profile isp.Profile
	country string
	version atlasdata.ProbeVersion
	special Special
	tags    []string

	cohort           isp.Cohort
	syncAnchored     bool
	anchorOffset     simclock.Duration // offset of the reset anchor within the period
	renumberOnOutage bool
	testingFirst     bool
	shortLived       bool

	install simclock.Time
	depart  simclock.Time

	// Mover extras.
	secondISP  isp.Profile
	secondPool *isp.AddressPool
	switchAt   simclock.Time

	// Multihomed extra.
	fixedAddr ip4.Addr

	// Dual-stack / IPv6 extra.
	v6Serial int
	// v6Rotate marks hosts using RFC 4941 privacy addresses (daily
	// rotation).
	v6Rotate bool
}

func buildSpec(cfg Config, p isp.Profile, id atlasdata.ProbeID, prnd *rng.RNG, euCodes []string, start, end simclock.Time) probeSpec {
	spec := probeSpec{id: id, profile: p}

	spec.country = p.Country
	if spec.country == "" {
		spec.country = euCodes[prnd.Intn(len(euCodes))]
	}

	switch prnd.Categorical(cfg.VersionWeights[:]) {
	case 0:
		spec.version = atlasdata.V1
	case 1:
		spec.version = atlasdata.V2
	default:
		spec.version = atlasdata.V3
	}

	// Special cohort: one uniform draw against stacked fractions keeps
	// the categories exclusive.
	u := prnd.Float64()
	switch {
	case u < cfg.IPv6OnlyFrac:
		spec.special = IPv6Only
		spec.v6Rotate = prnd.Bool(cfg.V6DailyRotateFrac)
	case u < cfg.IPv6OnlyFrac+cfg.DualStackFrac:
		spec.special = DualStack
		spec.v6Rotate = prnd.Bool(cfg.V6DailyRotateFrac)
	case u < cfg.IPv6OnlyFrac+cfg.DualStackFrac+cfg.MultihomedFrac:
		spec.special = Multihomed
		if prnd.Bool(cfg.TaggedMultihomedFrac) {
			tags := []string{atlasdata.TagMultihomed, atlasdata.TagDatacentre, atlasdata.TagCore}
			spec.tags = []string{tags[prnd.Intn(len(tags))]}
		}
	case u < cfg.IPv6OnlyFrac+cfg.DualStackFrac+cfg.MultihomedFrac+cfg.MoverFrac:
		if p.Kind != isp.Static {
			spec.special = Mover
		}
	}

	spec.cohort = p.PickCohort(prnd.Categorical)
	if spec.cohort.Period > 0 && prnd.Bool(p.SyncFrac) {
		spec.syncAnchored = true
		// Anchor second-of-period inside the nightly window; for daily
		// periods this is literally the CPE's configured reconnect hour.
		windowSpan := (p.SyncEndHour - p.SyncStartHour) * 3600
		daySecond := p.SyncStartHour*3600 + prnd.Intn(windowSpan)
		spec.anchorOffset = simclock.Duration(daySecond)
	} else if spec.cohort.Period > 0 {
		spec.anchorOffset = simclock.Duration(prnd.Int63n(int64(spec.cohort.Period)))
	}
	if p.Kind == isp.PPP {
		spec.renumberOnOutage = prnd.Bool(p.OutageRenumberFrac)
	}

	spec.testingFirst = prnd.Bool(cfg.TestingAddrFrac)
	spec.shortLived = prnd.Bool(cfg.ShortLivedFrac)

	// Install/depart: most probes run all year; some join late or retire.
	span := end.Sub(start)
	spec.install = start
	if prnd.Bool(0.15) {
		spec.install = start.Add(simclock.Duration(prnd.Int63n(int64(span / 2))))
	}
	spec.depart = end
	if spec.shortLived {
		spec.depart = spec.install.Add(simclock.Duration(5+prnd.Intn(20)) * simclock.Day)
	} else if prnd.Bool(0.05) {
		spec.depart = end - simclock.Time(prnd.Int63n(int64(span/4)))
	}
	if !spec.install.Before(spec.depart) {
		spec.depart = spec.install.Add(simclock.Day)
	}
	if spec.depart.After(end) {
		spec.depart = end
	}

	if spec.special == Mover {
		// Switch somewhere in the middle half of the probe's life.
		life := spec.depart.Sub(spec.install)
		spec.switchAt = spec.install.Add(life/4 + simclock.Duration(prnd.Int63n(int64(life/2)+1)))
	}
	return spec
}
