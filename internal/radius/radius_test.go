package radius

import (
	"testing"
	"testing/quick"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{Code: CodeAccountingRequest, Identifier: 42}
	p.Authenticator = [16]byte{1, 2, 3}
	p.AddU32Attr(AttrAcctStatusType, AcctStart)
	p.AddAttr(AttrUserName, []byte("customer-206"))
	p.AddAddrAttr(AttrFramedIPAddress, ip4.MustParseAddr("91.55.1.2"))

	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != p.Code || got.Identifier != 42 || got.Authenticator != p.Authenticator {
		t.Errorf("header = %+v", got)
	}
	if st, ok := got.U32Attr(AttrAcctStatusType); !ok || st != AcctStart {
		t.Errorf("status = %v %v", st, ok)
	}
	if user, ok := got.Attr(AttrUserName); !ok || string(user) != "customer-206" {
		t.Errorf("user = %q %v", user, ok)
	}
	if addr, ok := got.AddrAttr(AttrFramedIPAddress); !ok || addr.String() != "91.55.1.2" {
		t.Errorf("addr = %v %v", addr, ok)
	}
	if _, ok := got.Attr(AttrAcctSessionTime); ok {
		t.Error("absent attribute reported present")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10), // short
		{4, 1, 0, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // length < header
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Bad attribute length.
	p := &Packet{Code: CodeAccountingRequest}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, AttrUserName, 1) // length 1 < minimum 2
	b[2] = byte(len(b) >> 8)
	b[3] = byte(len(b))
	if _, err := Unmarshal(b); err == nil {
		t.Error("attribute length 1 should fail")
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAccountantStartStop(t *testing.T) {
	a := NewAccountant()
	start := NewAccountingRequest(1, AcctStart, "u1", "s1", ip4.MustParseAddr("10.0.0.1"), 1000, 0)
	if err := a.roundTrip(start); err != nil {
		t.Fatal(err)
	}
	if a.Open() != 1 {
		t.Fatalf("open = %d", a.Open())
	}
	stop := NewAccountingRequest(2, AcctStop, "u1", "s1", ip4.MustParseAddr("10.0.0.1"), 87400, 86400)
	if err := a.roundTrip(stop); err != nil {
		t.Fatal(err)
	}
	if a.Open() != 0 {
		t.Error("session still open after stop")
	}
	done := a.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d", len(done))
	}
	s := done[0]
	if s.User != "u1" || s.Addr.String() != "10.0.0.1" || s.Duration != simclock.Day {
		t.Errorf("session = %+v", s)
	}
}

func TestAccountantErrors(t *testing.T) {
	a := NewAccountant()
	// Stop for unknown session.
	stop := NewAccountingRequest(1, AcctStop, "u", "nope", 1, 100, 50)
	if err := a.roundTrip(stop); err == nil {
		t.Error("stop for unknown session should fail")
	}
	// Non-accounting code.
	p := &Packet{Code: CodeAccessRequest}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Handle(b); err == nil {
		t.Error("access request should be rejected")
	}
	// Missing status type.
	p2 := &Packet{Code: CodeAccountingRequest}
	p2.AddAttr(AttrAcctSessionID, []byte("x"))
	if b, err = p2.Marshal(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Handle(b); err == nil {
		t.Error("request without status should be rejected")
	}
}

func TestAccountConnLog(t *testing.T) {
	mk := func(start, end simclock.Time, addr string) atlasdata.ConnLogEntry {
		return atlasdata.ConnLogEntry{
			Probe: 1, Start: start, End: end,
			Family: atlasdata.V4, Addr: ip4.MustParseAddr(addr),
		}
	}
	entries := []atlasdata.ConnLogEntry{
		mk(0, 1000, "10.0.0.1"),
		mk(1100, 2000, "10.0.0.1"), // same address: one session
		mk(2100, 5000, "10.0.0.2"),
	}
	a := NewAccountant()
	if err := AccountConnLog(a, "probe-1", entries); err != nil {
		t.Fatal(err)
	}
	done := a.Completed()
	if len(done) != 2 {
		t.Fatalf("sessions = %d, want 2", len(done))
	}
	if done[0].Duration != 2000 || done[1].Duration != 2900 {
		t.Errorf("durations = %v, %v", done[0].Duration, done[1].Duration)
	}
	byUser := SessionsByUser(done)
	if len(byUser["probe-1"]) != 2 {
		t.Errorf("per-user grouping = %v", byUser)
	}
}

func TestSessionDurationTTF(t *testing.T) {
	sessions := []Session{
		{Duration: 24 * simclock.Hour},
		{Duration: 24*simclock.Hour - 20*simclock.Minute},
		{Duration: 2 * simclock.Hour},
	}
	ttf := SessionDurationTTF(sessions)
	if got := ttf.MassAt(24); got < 0.9 {
		t.Errorf("mass at 24h = %v, want > 0.9 (time-weighted)", got)
	}
}

func BenchmarkAccountingRoundTrip(b *testing.B) {
	a := NewAccountant()
	addr := ip4.MustParseAddr("10.0.0.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sid := "s"
		start := NewAccountingRequest(1, AcctStart, "u", sid, addr, 1000, 0)
		if err := a.roundTrip(start); err != nil {
			b.Fatal(err)
		}
		stop := NewAccountingRequest(2, AcctStop, "u", sid, addr, 2000, 1000)
		if err := a.roundTrip(stop); err != nil {
			b.Fatal(err)
		}
	}
}
