// Package radius implements the RADIUS accounting wire format (RFC
// 2865/2866) and a session accountant.
//
// The paper's closest prior work, Maier et al. (IMC 2009), measured
// dynamic addressing from the ISP side via Radius accounting logs; the
// paper (§5.3, §7) notes that the European ISPs it identifies as
// renumbering on every reconnect use PPPoE+Radius, and corroborates its
// Atlas-side inferences against that ISP view. This package provides
// that ISP view: accounting packets, the Start/Stop session ledger, and
// the session-duration analysis of the Maier methodology — so the two
// measurement methodologies can be cross-validated on one world.
package radius

import (
	"encoding/binary"
	"fmt"

	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// Packet codes (RFC 2865 §3, RFC 2866 §4).
const (
	CodeAccessRequest      byte = 1
	CodeAccessAccept       byte = 2
	CodeAccessReject       byte = 3
	CodeAccountingRequest  byte = 4
	CodeAccountingResponse byte = 5
)

// Attribute types used by accounting (RFC 2865 §5, RFC 2866 §5).
const (
	AttrUserName        byte = 1
	AttrNASIPAddress    byte = 4
	AttrFramedIPAddress byte = 8
	AttrAcctStatusType  byte = 40
	AttrAcctSessionID   byte = 44
	AttrAcctSessionTime byte = 46
	AttrEventTimestamp  byte = 55
)

// Acct-Status-Type values (RFC 2866 §5.1).
const (
	AcctStart         uint32 = 1
	AcctStop          uint32 = 2
	AcctInterimUpdate uint32 = 3
	AcctAccountingOn  uint32 = 7
	AcctAccountingOff uint32 = 8
)

// Attribute is one AVP.
type Attribute struct {
	Type  byte
	Value []byte
}

// Packet is a RADIUS packet. The authenticator is carried opaque; this
// package does not implement the shared-secret MD5 scheme (the paper's
// data path never depends on it and the stdlib-only rule forbids
// crypto/md5's use for security anyway).
type Packet struct {
	Code          byte
	Identifier    byte
	Authenticator [16]byte
	Attributes    []Attribute
}

// headerLen is the fixed RADIUS header size.
const headerLen = 20

// Marshal serialises the packet.
func (p *Packet) Marshal() ([]byte, error) {
	length := headerLen
	for _, a := range p.Attributes {
		if len(a.Value) > 253 {
			return nil, fmt.Errorf("radius: attribute %d too long", a.Type)
		}
		length += 2 + len(a.Value)
	}
	if length > 4096 {
		return nil, fmt.Errorf("radius: packet exceeds 4096 bytes")
	}
	out := make([]byte, headerLen, length)
	out[0] = p.Code
	out[1] = p.Identifier
	binary.BigEndian.PutUint16(out[2:], uint16(length))
	copy(out[4:20], p.Authenticator[:])
	for _, a := range p.Attributes {
		out = append(out, a.Type, byte(2+len(a.Value)))
		out = append(out, a.Value...)
	}
	return out, nil
}

// Unmarshal parses a RADIUS packet; safe on arbitrary input.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("radius: packet too short (%d)", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < headerLen || length > len(b) {
		return nil, fmt.Errorf("radius: bad length %d", length)
	}
	p := &Packet{Code: b[0], Identifier: b[1]}
	copy(p.Authenticator[:], b[4:20])
	attrs := b[headerLen:length]
	for i := 0; i < len(attrs); {
		if i+2 > len(attrs) {
			return nil, fmt.Errorf("radius: truncated attribute header")
		}
		alen := int(attrs[i+1])
		if alen < 2 || i+alen > len(attrs) {
			return nil, fmt.Errorf("radius: bad attribute length %d", alen)
		}
		val := make([]byte, alen-2)
		copy(val, attrs[i+2:i+alen])
		p.Attributes = append(p.Attributes, Attribute{Type: attrs[i], Value: val})
		i += alen
	}
	return p, nil
}

// Attr returns the first attribute of the given type.
func (p *Packet) Attr(typ byte) ([]byte, bool) {
	for _, a := range p.Attributes {
		if a.Type == typ {
			return a.Value, true
		}
	}
	return nil, false
}

// U32Attr reads a 4-byte integer attribute.
func (p *Packet) U32Attr(typ byte) (uint32, bool) {
	v, ok := p.Attr(typ)
	if !ok || len(v) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(v), true
}

// AddAttr appends an attribute.
func (p *Packet) AddAttr(typ byte, value []byte) {
	p.Attributes = append(p.Attributes, Attribute{Type: typ, Value: value})
}

// AddU32Attr appends a 4-byte integer attribute.
func (p *Packet) AddU32Attr(typ byte, v uint32) {
	val := make([]byte, 4)
	binary.BigEndian.PutUint32(val, v)
	p.AddAttr(typ, val)
}

// AddAddrAttr appends an IPv4-address attribute.
func (p *Packet) AddAddrAttr(typ byte, a ip4.Addr) {
	p.AddU32Attr(typ, uint32(a))
}

// AddrAttr reads an IPv4-address attribute.
func (p *Packet) AddrAttr(typ byte) (ip4.Addr, bool) {
	v, ok := p.U32Attr(typ)
	return ip4.Addr(v), ok
}

// NewAccountingRequest builds an Accounting-Request carrying the
// standard session attributes.
func NewAccountingRequest(id byte, status uint32, user string, sessionID string, addr ip4.Addr, at simclock.Time, sessionSecs uint32) *Packet {
	p := &Packet{Code: CodeAccountingRequest, Identifier: id}
	p.AddU32Attr(AttrAcctStatusType, status)
	p.AddAttr(AttrUserName, []byte(user))
	p.AddAttr(AttrAcctSessionID, []byte(sessionID))
	p.AddAddrAttr(AttrFramedIPAddress, addr)
	p.AddU32Attr(AttrEventTimestamp, uint32(at))
	if status == AcctStop {
		p.AddU32Attr(AttrAcctSessionTime, sessionSecs)
	}
	return p
}
