package radius

import (
	"fmt"
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
)

// Session is one completed accounting session: a user held an address
// from Start for Duration. This is exactly the record Maier et al.
// analysed (the paper's §7: "used access to the Radius server ... to
// identify why DSL sessions terminated").
type Session struct {
	User     string
	ID       string
	Addr     ip4.Addr
	Start    simclock.Time
	Duration simclock.Duration
}

// Accountant ingests accounting packets and keeps the session ledger.
type Accountant struct {
	open      map[string]*Session // by Acct-Session-Id
	completed []Session
	nextIdent byte
}

// NewAccountant returns an empty ledger.
func NewAccountant() *Accountant {
	return &Accountant{open: make(map[string]*Session)}
}

// Open returns the number of in-progress sessions.
func (a *Accountant) Open() int { return len(a.open) }

// Completed returns the finished sessions in completion order.
func (a *Accountant) Completed() []Session {
	out := make([]Session, len(a.completed))
	copy(out, a.completed)
	return out
}

// Handle processes one marshalled Accounting-Request and returns the
// marshalled Accounting-Response.
func (a *Accountant) Handle(b []byte) ([]byte, error) {
	p, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if p.Code != CodeAccountingRequest {
		return nil, fmt.Errorf("radius: accountant got code %d", p.Code)
	}
	status, ok := p.U32Attr(AttrAcctStatusType)
	if !ok {
		return nil, fmt.Errorf("radius: request without Acct-Status-Type")
	}
	sid, ok := p.Attr(AttrAcctSessionID)
	if !ok {
		return nil, fmt.Errorf("radius: request without Acct-Session-Id")
	}
	switch status {
	case AcctStart:
		user, _ := p.Attr(AttrUserName)
		addr, _ := p.AddrAttr(AttrFramedIPAddress)
		ts, _ := p.U32Attr(AttrEventTimestamp)
		a.open[string(sid)] = &Session{
			User: string(user), ID: string(sid), Addr: addr,
			Start: simclock.Time(ts),
		}
	case AcctStop:
		s, live := a.open[string(sid)]
		if !live {
			return nil, fmt.Errorf("radius: stop for unknown session %q", sid)
		}
		secs, ok := p.U32Attr(AttrAcctSessionTime)
		if !ok {
			return nil, fmt.Errorf("radius: stop without Acct-Session-Time")
		}
		s.Duration = simclock.Duration(secs)
		a.completed = append(a.completed, *s)
		delete(a.open, string(sid))
	case AcctInterimUpdate:
		// Ledger state is authoritative; interim updates are a no-op.
	default:
		return nil, fmt.Errorf("radius: unsupported status %d", status)
	}
	resp := &Packet{Code: CodeAccountingResponse, Identifier: p.Identifier}
	return resp.Marshal()
}

// AccountConnLog replays one probe's IPv4 connection log into the
// accountant as the ISP's Radius would have seen it: one session per
// maximal run of connections sharing an address, Start at the run's
// first connection and Stop at its last. This is the bridge that lets
// the Maier-style ISP-side methodology run against the same world the
// Atlas-side pipeline measures.
func AccountConnLog(a *Accountant, user string, entries []atlasdata.ConnLogEntry) error {
	i := 0
	seq := 0
	for i < len(entries) {
		if !entries[i].IsV4() {
			i++
			continue
		}
		j := i
		for j+1 < len(entries) && entries[j+1].IsV4() && entries[j+1].Addr == entries[i].Addr {
			j++
		}
		start, end := entries[i].Start, entries[j].End
		seq++
		sid := fmt.Sprintf("%s-%d", user, seq)

		startReq := NewAccountingRequest(a.ident(), AcctStart, user, sid, entries[i].Addr, start, 0)
		if err := a.roundTrip(startReq); err != nil {
			return err
		}
		stopReq := NewAccountingRequest(a.ident(), AcctStop, user, sid, entries[i].Addr, end, uint32(end.Sub(start)))
		if err := a.roundTrip(stopReq); err != nil {
			return err
		}
		i = j + 1
	}
	return nil
}

func (a *Accountant) ident() byte {
	a.nextIdent++
	return a.nextIdent
}

// roundTrip marshals, handles and validates the response, exercising
// the codec end to end for every record.
func (a *Accountant) roundTrip(req *Packet) error {
	b, err := req.Marshal()
	if err != nil {
		return err
	}
	respBytes, err := a.Handle(b)
	if err != nil {
		return err
	}
	resp, err := Unmarshal(respBytes)
	if err != nil {
		return err
	}
	if resp.Code != CodeAccountingResponse || resp.Identifier != req.Identifier {
		return fmt.Errorf("radius: bad accounting response")
	}
	return nil
}

// SessionDurationTTF computes the total-time-fraction distribution of
// completed session durations, quantised to whole hours — the Maier
// methodology's per-ISP session-length distribution, directly
// comparable with the Atlas-side analysis's address-duration TTF.
func SessionDurationTTF(sessions []Session) *stats.Weighted {
	var w stats.Weighted
	for _, s := range sessions {
		hours := s.Duration.Hours()
		if hours <= 0 {
			continue
		}
		q := float64(int(hours + 0.5))
		if q < 1 {
			q = 1
		}
		w.Add(q, hours)
	}
	return &w
}

// SessionsByUser groups completed sessions per user.
func SessionsByUser(sessions []Session) map[string][]Session {
	out := make(map[string][]Session)
	for _, s := range sessions {
		out[s.User] = append(out[s.User], s)
	}
	for u := range out {
		ss := out[u]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	return out
}
