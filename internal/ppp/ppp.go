// Package ppp models PPP/PPPoE address assignment with a Radius-style
// pool that keeps no memory of a customer's previous address.
//
// The paper's ground truth (§4.3.2, §5.3, corroborated by a large
// European ISP): DSL lines using PPPoE+Radius receive a fresh address
// from the dynamic pool on *every* session establishment — after an
// outage of any duration, a CPE reboot, or the ISP's forced periodic
// disconnect (Zwangstrennung). Session lifetime limits, typically 24
// hours or a week, produce the paper's periodic renumbering modes.
package ppp

import (
	"fmt"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// Pool abstracts the ISP's dynamic address pool; see dhcp.Pool for the
// contract. PPP only ever calls Acquire and Release — it never tries to
// reacquire, because Radius does not remember.
type Pool interface {
	Acquire(exclude ip4.Addr) ip4.Addr
	Release(addr ip4.Addr)
}

// Config parameterises session behaviour.
type Config struct {
	// MaxAge is the ISP-imposed session lifetime; zero means unlimited.
	// After MaxAge the ISP tears the session down and the CPE
	// re-establishes it, receiving a new address (paper §4).
	MaxAge simclock.Duration
	// SameAddrProb is the probability that, by chance, the pool hands the
	// reconnecting customer the address it just released. The paper
	// observes this as "harmonic" durations: a skipped-looking renumber
	// that is really the same address assigned twice in a row (§4.4.2).
	SameAddrProb float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxAge < 0 {
		return fmt.Errorf("ppp: negative MaxAge %v", c.MaxAge)
	}
	if c.SameAddrProb < 0 || c.SameAddrProb >= 1 {
		return fmt.Errorf("ppp: SameAddrProb %v outside [0,1)", c.SameAddrProb)
	}
	return nil
}

// Session is the PPP state for one CPE. Create with NewSession.
type Session struct {
	cfg  Config
	pool Pool
	rnd  *rng.RNG

	addr      ip4.Addr
	connected bool
	start     simclock.Time
}

// NewSession returns a session using the given pool and randomness.
func NewSession(cfg Config, pool Pool, rnd *rng.RNG) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pool == nil || rnd == nil {
		return nil, fmt.Errorf("ppp: nil pool or rng")
	}
	return &Session{cfg: cfg, pool: pool, rnd: rnd}, nil
}

// Addr returns the currently assigned address (invalid before Connect).
func (s *Session) Addr() ip4.Addr { return s.addr }

// Connected reports whether a PPP session is currently established.
func (s *Session) Connected() bool { return s.connected }

// Connect establishes a session at t, assigning a fresh address. If a
// previous address exists it is released first; with probability
// SameAddrProb the pool returns that same address again (the harmonic
// case), otherwise a different one.
func (s *Session) Connect(t simclock.Time) (addr ip4.Addr, changed bool) {
	if s.connected {
		return s.addr, false
	}
	old := s.addr
	if old.IsValid() {
		s.pool.Release(old)
		if s.rnd.Bool(s.cfg.SameAddrProb) {
			// Radius happened to hand back the same address.
			s.addr = old
		} else {
			s.addr = s.pool.Acquire(old)
		}
	} else {
		s.addr = s.pool.Acquire(0)
	}
	s.connected = true
	s.start = t
	return s.addr, old.IsValid() && s.addr != old
}

// Disconnect tears the session down at t. PPP keeps no lease state; the
// address goes back to the pool conceptually at the Radius server, which
// is modelled at the next Connect.
func (s *Session) Disconnect(t simclock.Time) {
	s.connected = false
}

// SessionStart returns when the current session was established.
func (s *Session) SessionStart() simclock.Time { return s.start }

// ForcedDisconnectAt returns the time at which the ISP will tear down a
// session established at start, or zero-ok=false if sessions are
// unlimited.
func (s *Session) ForcedDisconnectAt() (simclock.Time, bool) {
	if s.cfg.MaxAge <= 0 || !s.connected {
		return 0, false
	}
	return s.start.Add(s.cfg.MaxAge), true
}
