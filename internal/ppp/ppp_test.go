package ppp

import (
	"testing"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

type fakePool struct {
	next uint32
	held map[ip4.Addr]bool
}

func newFakePool() *fakePool {
	return &fakePool{next: 0x0A000001, held: map[ip4.Addr]bool{}}
}

func (p *fakePool) Acquire(exclude ip4.Addr) ip4.Addr {
	for {
		a := ip4.Addr(p.next)
		p.next++
		if a == exclude || p.held[a] {
			continue
		}
		p.held[a] = true
		return a
	}
}

func (p *fakePool) Release(a ip4.Addr) { delete(p.held, a) }

func TestConfigValidate(t *testing.T) {
	good := []Config{{}, {MaxAge: simclock.Day}, {MaxAge: simclock.Week, SameAddrProb: 0.1}}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
	bad := []Config{{MaxAge: -1}, {SameAddrProb: -0.1}, {SameAddrProb: 1}}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d should fail", i)
		}
	}
}

func TestNewSessionRejectsNil(t *testing.T) {
	if _, err := NewSession(Config{}, nil, rng.New(1)); err == nil {
		t.Error("nil pool should fail")
	}
	if _, err := NewSession(Config{}, newFakePool(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestEveryReconnectChangesAddress(t *testing.T) {
	// The defining PPP behaviour (paper §5.3): any reconnect yields a new
	// address when SameAddrProb is zero.
	s, err := NewSession(Config{MaxAge: simclock.Day}, newFakePool(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	at := simclock.StudyStart
	addr, changed := s.Connect(at)
	if changed || !addr.IsValid() {
		t.Fatal("first connect should assign without 'changed'")
	}
	prev := addr
	for i := 0; i < 200; i++ {
		at = at.Add(simclock.Hour)
		s.Disconnect(at)
		addr, changed = s.Connect(at.Add(simclock.Minute))
		if !changed || addr == prev {
			t.Fatalf("reconnect %d kept address %v", i, prev)
		}
		prev = addr
	}
}

func TestSameAddrProbProducesRepeats(t *testing.T) {
	s, err := NewSession(Config{SameAddrProb: 0.5}, newFakePool(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	at := simclock.StudyStart
	prev, _ := s.Connect(at)
	repeats, total := 0, 400
	for i := 0; i < total; i++ {
		at = at.Add(simclock.Hour)
		s.Disconnect(at)
		addr, changed := s.Connect(at)
		if addr == prev {
			repeats++
			if changed {
				t.Fatal("same address must not be reported as changed")
			}
		} else if !changed {
			t.Fatal("different address must be reported as changed")
		}
		prev = addr
	}
	frac := float64(repeats) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("repeat fraction = %v, want ~0.5", frac)
	}
}

func TestConnectWhileConnectedIsNoop(t *testing.T) {
	s, err := NewSession(Config{}, newFakePool(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := s.Connect(simclock.StudyStart)
	a2, changed := s.Connect(simclock.StudyStart.Add(simclock.Hour))
	if changed || a2 != a1 {
		t.Error("Connect while connected must be a no-op")
	}
}

func TestForcedDisconnectAt(t *testing.T) {
	s, err := NewSession(Config{MaxAge: simclock.Day}, newFakePool(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ForcedDisconnectAt(); ok {
		t.Error("no forced disconnect before Connect")
	}
	start := simclock.StudyStart.Add(3 * simclock.Hour)
	s.Connect(start)
	at, ok := s.ForcedDisconnectAt()
	if !ok || at != start.Add(simclock.Day) {
		t.Errorf("ForcedDisconnectAt = %v %v, want start+24h", at, ok)
	}
	if s.SessionStart() != start {
		t.Errorf("SessionStart = %v", s.SessionStart())
	}
	s.Disconnect(at)
	if _, ok := s.ForcedDisconnectAt(); ok {
		t.Error("no forced disconnect while down")
	}
}

func TestUnlimitedSessionsNeverForced(t *testing.T) {
	s, err := NewSession(Config{MaxAge: 0}, newFakePool(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Connect(simclock.StudyStart)
	if _, ok := s.ForcedDisconnectAt(); ok {
		t.Error("MaxAge 0 means unlimited sessions")
	}
}

func TestConnectedFlag(t *testing.T) {
	s, err := NewSession(Config{}, newFakePool(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Connected() {
		t.Error("new session must start disconnected")
	}
	s.Connect(simclock.StudyStart)
	if !s.Connected() {
		t.Error("Connect must set connected")
	}
	s.Disconnect(simclock.StudyStart.Add(simclock.Hour))
	if s.Connected() {
		t.Error("Disconnect must clear connected")
	}
}
