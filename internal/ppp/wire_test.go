package ppp

import (
	"testing"
	"testing/quick"

	"dynaddr/internal/ip4"
)

func TestPPPoEPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Code: CodePADR, SessionID: 0x1234,
		Tags: []Tag{
			{Type: TagHostUniq, Data: []byte("probe-206")},
			{Type: TagACCookie, Data: []byte{1, 2, 3, 4}},
		},
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodePADR || got.SessionID != 0x1234 {
		t.Errorf("header = %+v", got)
	}
	if hu, ok := got.Tag(TagHostUniq); !ok || string(hu) != "probe-206" {
		t.Errorf("host-uniq = %q %v", hu, ok)
	}
	if _, ok := got.Tag(TagACName); ok {
		t.Error("absent tag reported present")
	}
}

func TestPPPoEUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x11, CodePADI},                   // too short
		{0x21, CodePADI, 0, 0, 0, 0},       // wrong ver/type
		{0x11, CodePADI, 0, 0, 0, 10},      // declared payload missing
		{0x11, CodePADI, 0, 0, 0, 3, 1, 1}, // truncated tag header
	}
	for i, b := range cases {
		if _, err := UnmarshalPacket(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPPPoEUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalPacket(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDiscoveryExchange(t *testing.T) {
	ac := NewAccessConcentrator("MX480.POP01")
	sid, err := Discover(ac, []byte("cpe-1"))
	if err != nil {
		t.Fatal(err)
	}
	if sid == 0 {
		t.Fatal("session id 0 granted")
	}
	if ac.Sessions() != 1 {
		t.Errorf("sessions = %d", ac.Sessions())
	}
	sid2, err := Discover(ac, []byte("cpe-2"))
	if err != nil {
		t.Fatal(err)
	}
	if sid2 == sid {
		t.Error("duplicate session id")
	}
	if err := Terminate(ac, sid); err != nil {
		t.Fatal(err)
	}
	if ac.Sessions() != 1 {
		t.Errorf("sessions after PADT = %d", ac.Sessions())
	}
}

func TestDiscoveryBadCookieRefused(t *testing.T) {
	ac := NewAccessConcentrator("AC")
	padr := &Packet{Code: CodePADR, Tags: []Tag{
		{Type: TagHostUniq, Data: []byte("x")},
		{Type: TagACCookie, Data: []byte("forged")},
	}}
	b, err := padr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ac.Handle(b)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := UnmarshalPacket(reply)
	if err != nil {
		t.Fatal(err)
	}
	if _, refused := pads.Tag(TagSessionErr); !refused {
		t.Error("forged cookie should be refused")
	}
	if ac.Sessions() != 0 {
		t.Error("refused PADR created a session")
	}
}

func TestIPCPPacketRoundTrip(t *testing.T) {
	p := withIPAddress(IPCPConfigureNak, 7, ip4.MustParseAddr("91.55.1.2"))
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalIPCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != IPCPConfigureNak || got.Identifier != 7 {
		t.Errorf("header = %+v", got)
	}
	if addr, ok := got.IPAddress(); !ok || addr.String() != "91.55.1.2" {
		t.Errorf("address = %v %v", addr, ok)
	}
}

func TestIPCPUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalIPCP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIPCPNegotiation(t *testing.T) {
	srv, err := NewIPCPServer(newFakePool())
	if err != nil {
		t.Fatal(err)
	}
	addr, err := NegotiateAddress(srv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !addr.IsValid() {
		t.Fatal("no address negotiated")
	}
	if srv.Live() != 1 {
		t.Errorf("live sessions = %d", srv.Live())
	}
	// A second request on the same session re-confirms the same address.
	again, err := NegotiateAddressConfirm(srv, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	if again != addr {
		t.Errorf("re-confirmation changed address: %v -> %v", addr, again)
	}
	if err := ReleaseAddress(srv, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Live() != 0 {
		t.Error("address survived termination")
	}
}

func TestWireSessionsGetFreshAddresses(t *testing.T) {
	// The paper's §5.3 Radius behaviour at the wire level: every fresh
	// PPPoE session negotiates a different address, because the IPCP
	// server has no memory of previous customers.
	ac := NewAccessConcentrator("AC")
	srv, err := NewIPCPServer(newFakePool())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ip4.Addr]bool{}
	for i := 0; i < 50; i++ {
		sid, addr, err := EstablishSession(ac, srv, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if seen[addr] {
			t.Fatalf("session %d reused address %v", i, addr)
		}
		seen[addr] = true
		if err := TeardownSession(ac, srv, sid); err != nil {
			t.Fatal(err)
		}
	}
	if ac.Sessions() != 0 || srv.Live() != 0 {
		t.Errorf("leaked sessions: pppoe=%d ipcp=%d", ac.Sessions(), srv.Live())
	}
}

func TestIPCPRejectsAddresslessRequest(t *testing.T) {
	srv, err := NewIPCPServer(newFakePool())
	if err != nil {
		t.Fatal(err)
	}
	req := &IPCPPacket{Code: IPCPConfigureRequest, Identifier: 1}
	b, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	replyBytes, err := srv.Handle(9, b)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := UnmarshalIPCP(replyBytes)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != IPCPConfigureReject {
		t.Errorf("expected Reject, got %d", reply.Code)
	}
}

func BenchmarkEstablishSession(b *testing.B) {
	ac := NewAccessConcentrator("AC")
	srv, err := NewIPCPServer(newFakePool())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sid, _, err := EstablishSession(ac, srv, []byte{byte(i), byte(i >> 8)})
		if err != nil {
			b.Fatal(err)
		}
		if err := TeardownSession(ac, srv, sid); err != nil {
			b.Fatal(err)
		}
	}
}
