package ppp

import (
	"encoding/binary"
	"fmt"

	"dynaddr/internal/ip4"
)

// This file implements IPCP (RFC 1332), the NCP that assigns the IPv4
// address once the PPP link is up — the exact mechanism the paper's
// §2.2 describes. The canonical dynamic-assignment dance: the client
// Configure-Requests address 0.0.0.0, the ISP Configure-Naks with the
// address the Radius pool picked, the client re-requests it, and the
// ISP Configure-Acks.

// IPCP/LCP packet codes (RFC 1661 §5, reused by RFC 1332).
const (
	IPCPConfigureRequest byte = 1
	IPCPConfigureAck     byte = 2
	IPCPConfigureNak     byte = 3
	IPCPConfigureReject  byte = 4
	IPCPTerminateRequest byte = 5
	IPCPTerminateAck     byte = 6
)

// IPCP option types (RFC 1332).
const (
	IPCPOptIPAddress byte = 3
)

// IPCPPacket is one IPCP packet: code, identifier and options.
type IPCPPacket struct {
	Code       byte
	Identifier byte
	Options    []Option
}

// Option is a configuration option TLV (shared shape with LCP).
type Option struct {
	Type byte
	Data []byte
}

// Marshal serialises the packet with the RFC 1661 length field.
func (p *IPCPPacket) Marshal() ([]byte, error) {
	length := 4
	for _, o := range p.Options {
		if len(o.Data) > 253 {
			return nil, fmt.Errorf("ipcp: option %d too long", o.Type)
		}
		length += 2 + len(o.Data)
	}
	if length > 0xFFFF {
		return nil, fmt.Errorf("ipcp: packet too long")
	}
	out := make([]byte, 4, length)
	out[0] = p.Code
	out[1] = p.Identifier
	binary.BigEndian.PutUint16(out[2:], uint16(length))
	for _, o := range p.Options {
		out = append(out, o.Type, byte(2+len(o.Data)))
		out = append(out, o.Data...)
	}
	return out, nil
}

// UnmarshalIPCP parses an IPCP packet; safe on arbitrary input.
func UnmarshalIPCP(b []byte) (*IPCPPacket, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ipcp: packet too short")
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < 4 || length > len(b) {
		return nil, fmt.Errorf("ipcp: bad length %d", length)
	}
	p := &IPCPPacket{Code: b[0], Identifier: b[1]}
	opts := b[4:length]
	for i := 0; i < len(opts); {
		if i+2 > len(opts) {
			return nil, fmt.Errorf("ipcp: truncated option header")
		}
		olen := int(opts[i+1])
		if olen < 2 || i+olen > len(opts) {
			return nil, fmt.Errorf("ipcp: bad option length %d", olen)
		}
		data := make([]byte, olen-2)
		copy(data, opts[i+2:i+olen])
		p.Options = append(p.Options, Option{Type: opts[i], Data: data})
		i += olen
	}
	return p, nil
}

// IPAddress extracts the IP-Address option.
func (p *IPCPPacket) IPAddress() (ip4.Addr, bool) {
	for _, o := range p.Options {
		if o.Type == IPCPOptIPAddress && len(o.Data) == 4 {
			return ip4.Addr(binary.BigEndian.Uint32(o.Data)), true
		}
	}
	return 0, false
}

// withIPAddress builds a packet carrying one IP-Address option.
func withIPAddress(code, id byte, a ip4.Addr) *IPCPPacket {
	data := make([]byte, 4)
	binary.BigEndian.PutUint32(data, uint32(a))
	return &IPCPPacket{Code: code, Identifier: id,
		Options: []Option{{Type: IPCPOptIPAddress, Data: data}}}
}

// IPCPServer is the ISP side of address negotiation: a Radius-style
// allocator with no memory of previous customers, over a shared pool.
type IPCPServer struct {
	pool Pool
	// assigned tracks the address bound to each PPPoE session so
	// Terminate can release it.
	assigned map[uint16]ip4.Addr
}

// NewIPCPServer builds a server over a pool.
func NewIPCPServer(pool Pool) (*IPCPServer, error) {
	if pool == nil {
		return nil, fmt.Errorf("ipcp: nil pool")
	}
	return &IPCPServer{pool: pool, assigned: make(map[uint16]ip4.Addr)}, nil
}

// Live returns the number of sessions holding addresses.
func (s *IPCPServer) Live() int { return len(s.assigned) }

// Handle processes one marshalled IPCP packet for a PPPoE session.
func (s *IPCPServer) Handle(session uint16, b []byte) ([]byte, error) {
	p, err := UnmarshalIPCP(b)
	if err != nil {
		return nil, err
	}
	switch p.Code {
	case IPCPConfigureRequest:
		want, ok := p.IPAddress()
		if !ok {
			reply := &IPCPPacket{Code: IPCPConfigureReject, Identifier: p.Identifier}
			return reply.Marshal()
		}
		bound, have := s.assigned[session]
		if !have {
			// Fresh session: allocate now, regardless of what the client
			// asked for — Radius does not remember (§5.3).
			bound = s.pool.Acquire(0)
			s.assigned[session] = bound
		}
		if want != bound {
			return withIPAddress(IPCPConfigureNak, p.Identifier, bound).Marshal()
		}
		return withIPAddress(IPCPConfigureAck, p.Identifier, bound).Marshal()
	case IPCPTerminateRequest:
		if addr, ok := s.assigned[session]; ok {
			s.pool.Release(addr)
			delete(s.assigned, session)
		}
		reply := &IPCPPacket{Code: IPCPTerminateAck, Identifier: p.Identifier}
		return reply.Marshal()
	default:
		return nil, fmt.Errorf("ipcp: server cannot handle code %d", p.Code)
	}
}

// NegotiateAddress runs the client side of IPCP for a session and
// returns the assigned address: request 0.0.0.0, accept the Nak'd
// address, confirm.
func NegotiateAddress(s *IPCPServer, session uint16) (ip4.Addr, error) {
	req := withIPAddress(IPCPConfigureRequest, 1, 0)
	b, err := req.Marshal()
	if err != nil {
		return 0, err
	}
	replyBytes, err := s.Handle(session, b)
	if err != nil {
		return 0, err
	}
	reply, err := UnmarshalIPCP(replyBytes)
	if err != nil {
		return 0, err
	}
	if reply.Code != IPCPConfigureNak {
		return 0, fmt.Errorf("ipcp: expected Nak for 0.0.0.0, got code %d", reply.Code)
	}
	offered, ok := reply.IPAddress()
	if !ok {
		return 0, fmt.Errorf("ipcp: Nak without address")
	}

	confirm := withIPAddress(IPCPConfigureRequest, 2, offered)
	if b, err = confirm.Marshal(); err != nil {
		return 0, err
	}
	if replyBytes, err = s.Handle(session, b); err != nil {
		return 0, err
	}
	if reply, err = UnmarshalIPCP(replyBytes); err != nil {
		return 0, err
	}
	if reply.Code != IPCPConfigureAck {
		return 0, fmt.Errorf("ipcp: expected Ack, got code %d", reply.Code)
	}
	return offered, nil
}

// NegotiateAddressConfirm re-requests an address the client already
// holds (e.g. after an LCP renegotiation within the same session) and
// expects an immediate Ack.
func NegotiateAddressConfirm(s *IPCPServer, session uint16, addr ip4.Addr) (ip4.Addr, error) {
	req := withIPAddress(IPCPConfigureRequest, 4, addr)
	b, err := req.Marshal()
	if err != nil {
		return 0, err
	}
	replyBytes, err := s.Handle(session, b)
	if err != nil {
		return 0, err
	}
	reply, err := UnmarshalIPCP(replyBytes)
	if err != nil {
		return 0, err
	}
	switch reply.Code {
	case IPCPConfigureAck:
		return addr, nil
	case IPCPConfigureNak:
		got, _ := reply.IPAddress()
		return got, nil
	default:
		return 0, fmt.Errorf("ipcp: unexpected code %d", reply.Code)
	}
}

// ReleaseAddress runs IPCP termination for a session.
func ReleaseAddress(s *IPCPServer, session uint16) error {
	term := &IPCPPacket{Code: IPCPTerminateRequest, Identifier: 3}
	b, err := term.Marshal()
	if err != nil {
		return err
	}
	replyBytes, err := s.Handle(session, b)
	if err != nil {
		return err
	}
	reply, err := UnmarshalIPCP(replyBytes)
	if err != nil {
		return err
	}
	if reply.Code != IPCPTerminateAck {
		return fmt.Errorf("ipcp: expected Terminate-Ack, got code %d", reply.Code)
	}
	return nil
}

// EstablishSession performs the full wire-level session bring-up the
// paper's §2.2 describes: PPPoE discovery, then IPCP address
// negotiation. It returns the session ID and assigned address.
func EstablishSession(ac *AccessConcentrator, ipcp *IPCPServer, hostUniq []byte) (uint16, ip4.Addr, error) {
	sid, err := Discover(ac, hostUniq)
	if err != nil {
		return 0, 0, err
	}
	addr, err := NegotiateAddress(ipcp, sid)
	if err != nil {
		return 0, 0, err
	}
	return sid, addr, nil
}

// TeardownSession releases the address and terminates the PPPoE session
// — what a forced periodic disconnect or a CPE reboot does on the wire.
func TeardownSession(ac *AccessConcentrator, ipcp *IPCPServer, sid uint16) error {
	if err := ReleaseAddress(ipcp, sid); err != nil {
		return err
	}
	return Terminate(ac, sid)
}
