package ppp

import (
	"encoding/binary"
	"fmt"
)

// This file implements the PPPoE discovery stage (RFC 2516): the
// four-packet PADI/PADO/PADR/PADS exchange that establishes a session
// between a CPE and the ISP's access concentrator, plus PADT teardown.
// The paper's §2.2 names PPP session establishment as the moment a DSL
// customer's address is assigned — ipcp.go performs that assignment —
// and §4's forced periodic disconnects are, on the wire, PADTs.

// PPPoE version/type byte: version 1, type 1.
const VerType byte = 0x11

// Discovery packet codes (RFC 2516 §5).
const (
	CodePADI byte = 0x09
	CodePADO byte = 0x07
	CodePADR byte = 0x19
	CodePADS byte = 0x65
	CodePADT byte = 0xA7
)

// Discovery tag types (RFC 2516 appendix A).
const (
	TagEndOfList   uint16 = 0x0000
	TagServiceName uint16 = 0x0101
	TagACName      uint16 = 0x0102
	TagHostUniq    uint16 = 0x0103
	TagACCookie    uint16 = 0x0104
	TagSessionErr  uint16 = 0x0203
)

// Tag is one discovery TLV.
type Tag struct {
	Type uint16
	Data []byte
}

// Packet is a PPPoE discovery packet.
type Packet struct {
	Code      byte
	SessionID uint16
	Tags      []Tag
}

// Marshal serialises the packet.
func (p *Packet) Marshal() ([]byte, error) {
	payload := make([]byte, 0, 32)
	for _, tag := range p.Tags {
		if len(tag.Data) > 0xFFFF {
			return nil, fmt.Errorf("pppoe: tag %#x too long", tag.Type)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint16(hdr[0:], tag.Type)
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(tag.Data)))
		payload = append(payload, hdr[:]...)
		payload = append(payload, tag.Data...)
	}
	if len(payload) > 0xFFFF {
		return nil, fmt.Errorf("pppoe: payload too long")
	}
	out := make([]byte, 6, 6+len(payload))
	out[0] = VerType
	out[1] = p.Code
	binary.BigEndian.PutUint16(out[2:], p.SessionID)
	binary.BigEndian.PutUint16(out[4:], uint16(len(payload)))
	return append(out, payload...), nil
}

// UnmarshalPacket parses a discovery packet; safe on arbitrary input.
func UnmarshalPacket(b []byte) (*Packet, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("pppoe: packet too short (%d)", len(b))
	}
	if b[0] != VerType {
		return nil, fmt.Errorf("pppoe: bad version/type %#x", b[0])
	}
	p := &Packet{Code: b[1], SessionID: binary.BigEndian.Uint16(b[2:])}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if 6+length > len(b) {
		return nil, fmt.Errorf("pppoe: declared payload %d exceeds packet", length)
	}
	payload := b[6 : 6+length]
	for i := 0; i < len(payload); {
		if i+4 > len(payload) {
			return nil, fmt.Errorf("pppoe: truncated tag header at %d", i)
		}
		typ := binary.BigEndian.Uint16(payload[i:])
		tlen := int(binary.BigEndian.Uint16(payload[i+2:]))
		if typ == TagEndOfList {
			break
		}
		if i+4+tlen > len(payload) {
			return nil, fmt.Errorf("pppoe: truncated tag %#x", typ)
		}
		data := make([]byte, tlen)
		copy(data, payload[i+4:i+4+tlen])
		p.Tags = append(p.Tags, Tag{Type: typ, Data: data})
		i += 4 + tlen
	}
	return p, nil
}

// Tag returns the first tag of the given type.
func (p *Packet) Tag(typ uint16) ([]byte, bool) {
	for _, tag := range p.Tags {
		if tag.Type == typ {
			return tag.Data, true
		}
	}
	return nil, false
}

// AccessConcentrator is the ISP-side discovery endpoint: it answers
// PADIs with PADOs, grants session IDs on PADR, and tears sessions down
// on PADT. The cookie check follows RFC 2516's DoS-resistance scheme.
type AccessConcentrator struct {
	Name string

	nextSession uint16
	cookieSeed  uint32
	sessions    map[uint16][]byte // session id -> host-uniq
}

// NewAccessConcentrator builds a concentrator with the given AC-Name.
func NewAccessConcentrator(name string) *AccessConcentrator {
	return &AccessConcentrator{
		Name:       name,
		cookieSeed: 0x5EED,
		sessions:   make(map[uint16][]byte),
	}
}

// Sessions returns the number of live sessions.
func (ac *AccessConcentrator) Sessions() int { return len(ac.sessions) }

func (ac *AccessConcentrator) cookieFor(hostUniq []byte) []byte {
	h := ac.cookieSeed
	for _, b := range hostUniq {
		h = h*31 + uint32(b)
	}
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], h)
	return out[:]
}

// Handle processes one marshalled discovery packet, returning the
// marshalled reply or nil when no reply is due (PADT).
func (ac *AccessConcentrator) Handle(b []byte) ([]byte, error) {
	p, err := UnmarshalPacket(b)
	if err != nil {
		return nil, err
	}
	switch p.Code {
	case CodePADI:
		hostUniq, _ := p.Tag(TagHostUniq)
		pado := &Packet{Code: CodePADO, Tags: []Tag{
			{Type: TagACName, Data: []byte(ac.Name)},
			{Type: TagACCookie, Data: ac.cookieFor(hostUniq)},
		}}
		if hostUniq != nil {
			pado.Tags = append(pado.Tags, Tag{Type: TagHostUniq, Data: hostUniq})
		}
		return pado.Marshal()
	case CodePADR:
		hostUniq, _ := p.Tag(TagHostUniq)
		cookie, ok := p.Tag(TagACCookie)
		if !ok || string(cookie) != string(ac.cookieFor(hostUniq)) {
			pads := &Packet{Code: CodePADS, Tags: []Tag{
				{Type: TagSessionErr, Data: []byte("bad cookie")},
			}}
			return pads.Marshal()
		}
		ac.nextSession++
		if ac.nextSession == 0 { // session 0 is reserved
			ac.nextSession = 1
		}
		sid := ac.nextSession
		ac.sessions[sid] = hostUniq
		pads := &Packet{Code: CodePADS, SessionID: sid}
		if hostUniq != nil {
			pads.Tags = append(pads.Tags, Tag{Type: TagHostUniq, Data: hostUniq})
		}
		return pads.Marshal()
	case CodePADT:
		delete(ac.sessions, p.SessionID)
		return nil, nil
	default:
		return nil, fmt.Errorf("pppoe: concentrator cannot handle code %#x", p.Code)
	}
}

// Discover runs the client half of the exchange against ac and returns
// the granted session ID.
func Discover(ac *AccessConcentrator, hostUniq []byte) (uint16, error) {
	padi := &Packet{Code: CodePADI, Tags: []Tag{
		{Type: TagServiceName, Data: nil},
		{Type: TagHostUniq, Data: hostUniq},
	}}
	b, err := padi.Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := ac.Handle(b)
	if err != nil {
		return 0, err
	}
	pado, err := UnmarshalPacket(reply)
	if err != nil {
		return 0, err
	}
	if pado.Code != CodePADO {
		return 0, fmt.Errorf("pppoe: expected PADO, got %#x", pado.Code)
	}
	cookie, _ := pado.Tag(TagACCookie)

	padr := &Packet{Code: CodePADR, Tags: []Tag{
		{Type: TagHostUniq, Data: hostUniq},
		{Type: TagACCookie, Data: cookie},
	}}
	if b, err = padr.Marshal(); err != nil {
		return 0, err
	}
	if reply, err = ac.Handle(b); err != nil {
		return 0, err
	}
	pads, err := UnmarshalPacket(reply)
	if err != nil {
		return 0, err
	}
	if pads.Code != CodePADS {
		return 0, fmt.Errorf("pppoe: expected PADS, got %#x", pads.Code)
	}
	if msg, bad := pads.Tag(TagSessionErr); bad {
		return 0, fmt.Errorf("pppoe: session refused: %s", msg)
	}
	if pads.SessionID == 0 {
		return 0, fmt.Errorf("pppoe: PADS without session id")
	}
	return pads.SessionID, nil
}

// Terminate sends a PADT for the session.
func Terminate(ac *AccessConcentrator, sessionID uint16) error {
	padt := &Packet{Code: CodePADT, SessionID: sessionID}
	b, err := padt.Marshal()
	if err != nil {
		return err
	}
	_, err = ac.Handle(b)
	return err
}
