package stream

import (
	"strconv"
	"time"

	"dynaddr/internal/obs"
)

// applySampleMask samples apply-latency timing at 1 in 64 records.
// Two time.Now calls per record would be the single largest cost the
// instrumentation adds to the ingest hot path; at 1/64 the histogram
// still converges on the true distribution while the timing cost
// amortises to well under the <5% overhead budget.
const applySampleMask = 63

// shardMetrics is one shard's instrumentation handle, resolved once at
// construction so the hot path never touches the registry. A nil
// *shardMetrics (metrics disabled) records nothing; its methods are
// nil-receiver safe so apply() carries no call-site branches.
//
// The counters are per-shard (skew between shards is the signal that a
// probe-hash imbalance or a stalled shard exists); the latency and
// checkpoint-duration histograms are shared across shards because
// their distributions describe the machine, not the sharding.
type shardMetrics struct {
	accepted [4]*obs.Counter // indexed by recordKind: meta, conn, kroot, uptime
	rejected *obs.Counter
	applySec *obs.Histogram
	ckpts    *obs.Counter
	ckptSec  *obs.Histogram
	replayed *obs.Counter
	tick     uint64 // shard-goroutine-local sample counter

	// pend buffers accepted-by-kind (0..3) and rejected (4) counts
	// between flushes. One atomic add per record costs ~10ns on older
	// hardware — a measurable slice of the ~200ns apply path — so the
	// hot path does plain shard-local increments and flush publishes
	// them every 64 records and at every barrier (snapshot, shutdown,
	// end of recovery replay). Readers at a barrier always see exact
	// totals; a mid-stream scrape can trail live ingest by up to 63
	// records.
	pend [5]int64
}

func newShardMetrics(reg *obs.Registry, index int) *shardMetrics {
	if reg == nil {
		return nil
	}
	shard := obs.L("shard", strconv.Itoa(index))
	kind := func(k string) *obs.Counter {
		return reg.Counter("ingest_records_total",
			"Records applied to ingest state by this process, including WAL replay after recovery.",
			shard, obs.L("kind", k))
	}
	return &shardMetrics{
		accepted: [4]*obs.Counter{kind("meta"), kind("connlog"), kind("kroot"), kind("uptime")},
		rejected: reg.Counter("ingest_records_rejected_total",
			"Records rejected for time-order or validation violations.", shard),
		applySec: reg.Histogram("ingest_apply_seconds",
			"Per-record apply latency in seconds, sampled 1 in 64.", nil),
		ckpts: reg.Counter("wal_checkpoints_total",
			"Shard checkpoints written.", shard),
		ckptSec: reg.Histogram("wal_checkpoint_seconds",
			"Checkpoint duration in seconds (sync, serialize, truncate).", nil),
		replayed: reg.Counter("wal_recovery_records_total",
			"WAL records replayed past the checkpoint during recovery.", shard),
	}
}

// sampleStart advances the sample counter and returns a start time for
// the 1-in-64 records whose apply latency is measured. The same 1-in-64
// tick also flushes the pending record counts.
func (m *shardMetrics) sampleStart() (time.Time, bool) {
	if m == nil {
		return time.Time{}, false
	}
	m.tick++
	if m.tick&applySampleMask != 0 {
		return time.Time{}, false
	}
	m.flush()
	return time.Now(), true
}

func (m *shardMetrics) accept(kind recordKind) {
	if m != nil {
		m.pend[kind]++
	}
}

func (m *shardMetrics) reject() {
	if m != nil {
		m.pend[4]++
	}
}

// flush publishes the buffered record counts to the shared counters.
// Called on the shard goroutine only.
func (m *shardMetrics) flush() {
	if m == nil {
		return
	}
	for kind, n := range m.pend[:4] {
		if n != 0 {
			m.accepted[kind].Add(n)
			m.pend[kind] = 0
		}
	}
	if m.pend[4] != 0 {
		m.rejected.Add(m.pend[4])
		m.pend[4] = 0
	}
}

func (m *shardMetrics) checkpointed(d time.Duration) {
	if m != nil {
		m.ckpts.Inc()
		m.ckptSec.Observe(d.Seconds())
	}
}

func (m *shardMetrics) replayedRecord() {
	if m != nil {
		m.replayed.Inc()
	}
}

// analysisMetrics is one shard's live-analysis instrumentation. Unlike
// shardMetrics it has zero hot-path presence: every value is computed
// and published only at an analysis barrier, from the view the shard
// just built. Nil (metrics or analysis disabled) records nothing.
type analysisMetrics struct {
	folds    *obs.Counter
	probes   *obs.Gauge
	gaps     *obs.Gauge
	networks *obs.Gauge
	reboots  *obs.Gauge
	churn    *obs.Gauge
}

func newAnalysisMetrics(reg *obs.Registry, index int) *analysisMetrics {
	if reg == nil {
		return nil
	}
	shard := obs.L("shard", strconv.Itoa(index))
	gauge := func(name, help string) *obs.Gauge {
		return reg.Gauge(name, help, shard)
	}
	return &analysisMetrics{
		folds: reg.Counter("liveanalysis_folds_total",
			"Analysis barriers served by this shard.", shard),
		probes: gauge("liveanalysis_probes",
			"Analyzable probes contributing events at the last analysis barrier."),
		gaps: gauge("liveanalysis_gaps",
			"Gap events held for analyzable probes at the last analysis barrier."),
		networks: gauge("liveanalysis_network_outages",
			"Qualified network outages held at the last analysis barrier."),
		reboots: gauge("liveanalysis_reboots",
			"Detected reboots held at the last analysis barrier."),
		churn: gauge("liveanalysis_churn_days",
			"Distinct study days with address-change churn at the last analysis barrier."),
	}
}

// observe publishes the sizes of a freshly built analysis view. Called
// on the shard goroutine at the barrier.
func (m *analysisMetrics) observe(v *analysisView) {
	if m == nil {
		return
	}
	m.folds.Inc()
	var gaps, networks, reboots int
	for i := range v.events {
		gaps += len(v.events[i].Gaps)
		networks += len(v.events[i].Networks)
		reboots += len(v.events[i].Reboots)
	}
	m.probes.Set(float64(len(v.events)))
	m.gaps.Set(float64(gaps))
	m.networks.Set(float64(networks))
	m.reboots.Set(float64(reboots))
	m.churn.Set(float64(len(v.churn)))
}

// registerQueueDepth exposes the shard's channel backlog as a callback
// gauge: len(chan) is read at gather time, so the hot path pays
// nothing for it.
func registerQueueDepth(reg *obs.Registry, index int, ch chan record) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ingest_queue_depth",
		"Records waiting in the shard's channel.",
		func() float64 { return float64(len(ch)) },
		obs.L("shard", strconv.Itoa(index)))
}
