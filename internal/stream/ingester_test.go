package stream_test

import (
	"fmt"
	"sync"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
)

var t0 = simclock.StudyStart

func at(h int) simclock.Time { return t0.Add(simclock.Duration(h) * simclock.Hour) }

func meta(id atlasdata.ProbeID) atlasdata.ProbeMeta {
	return atlasdata.ProbeMeta{ID: id, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}
}

func conn(id atlasdata.ProbeID, start, end simclock.Time, addr string) atlasdata.ConnLogEntry {
	return atlasdata.ConnLogEntry{
		Probe: id, Start: start, End: end,
		Family: atlasdata.V4, Addr: ip4.MustParseAddr(addr),
	}
}

func testStore(t *testing.T) *pfx2as.SnapshotStore {
	t.Helper()
	tbl, err := pfx2as.NewTable([]pfx2as.Entry{
		{Prefix: ip4.MustParsePrefix("10.0.0.0/16"), ASN: 64500},
		{Prefix: ip4.MustParsePrefix("10.1.0.0/16"), ASN: 64500},
		{Prefix: ip4.MustParsePrefix("192.168.0.0/16"), ASN: 64501},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := pfx2as.NewSnapshotStore()
	for m := 201501; m <= 201512; m++ {
		store.Put(pfx2as.Month(m), tbl)
	}
	return store
}

// TestStateMachineBasics drives one probe through a change, a bounded
// duration, a network outage inside the change gap, and a reboot, then
// checks every aggregate the snapshot exposes for it.
func TestStateMachineBasics(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: testStore(t)})
	id := atlasdata.ProbeID(206)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ing.Meta(meta(id)))

	// Three addresses: A for 0-24h, B for 25-49h, C from 50h on. The B
	// run is bounded by changes on both sides — one 24h duration.
	must(ing.ConnLog(conn(id, at(0), at(24), "10.0.0.1")))
	// The A→B gap contains an all-lost k-root run with growing LTS: a
	// network outage, so the first change is outage-linked.
	must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(24).Add(10 * simclock.Minute), Sent: 3, Success: 0, LTS: 300}))
	must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(24).Add(20 * simclock.Minute), Sent: 3, Success: 0, LTS: 900}))
	must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(24).Add(30 * simclock.Minute), Sent: 3, Success: 3, LTS: 30}))
	must(ing.ConnLog(conn(id, at(25), at(49), "10.1.0.1")))
	must(ing.ConnLog(conn(id, at(50), at(80), "10.0.0.9")))

	// A reboot: first report sets the baseline, the second one implies a
	// boot instant far past it.
	must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(60), Uptime: int64(60 * 3600)}))
	must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(70), Uptime: 600}))

	snap := ing.Snapshot()
	if snap.Probes != 1 || snap.Unregistered != 0 {
		t.Fatalf("probes=%d unregistered=%d", snap.Probes, snap.Unregistered)
	}
	if snap.Changes != 2 {
		t.Errorf("changes = %d, want 2", snap.Changes)
	}
	if snap.NetworkOutages != 1 {
		t.Errorf("network outages = %d, want 1", snap.NetworkOutages)
	}
	if snap.OutageLinkedChanges != 1 {
		t.Errorf("outage-linked changes = %d, want 1", snap.OutageLinkedChanges)
	}
	if snap.Reboots != 1 {
		t.Errorf("reboots = %d, want 1", snap.Reboots)
	}
	if snap.Categories[core.CatAnalyzable] != 1 {
		t.Errorf("categories = %v, want one analyzable", snap.Categories)
	}
	agg := snap.AS(64500)
	if agg == nil {
		t.Fatal("no aggregate for AS64500")
	}
	if agg.Probes != 1 || agg.Changes != 2 {
		t.Errorf("AS64500 probes=%d changes=%d, want 1/2", agg.Probes, agg.Changes)
	}
	// The one bounded duration: address B held 25h-49h = 24 hours.
	if got := agg.TTF.MassOf(24); got != 24 {
		t.Errorf("TTF mass at 24h = %v, want 24", got)
	}
	if agg.Sessions != 3 {
		t.Errorf("AS64500 sessions = %d, want 3", agg.Sessions)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiASProbeExcluded checks that a probe whose change crosses
// ASes stays out of the per-AS aggregates, mirroring the batch filter.
func TestMultiASProbeExcluded(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1, Pfx2AS: testStore(t)})
	id := atlasdata.ProbeID(301)
	if err := ing.Meta(meta(id)); err != nil {
		t.Fatal(err)
	}
	for i, addr := range []string{"10.0.0.1", "192.168.0.1", "10.0.0.2"} {
		e := conn(id, at(i*24), at(i*24+20), addr)
		if err := ing.ConnLog(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ing.Snapshot()
	if snap.GeoProbes != 1 {
		t.Errorf("geo probes = %d, want 1", snap.GeoProbes)
	}
	if snap.ASProbes != 0 || len(snap.PerAS) != 0 {
		t.Errorf("multi-AS probe leaked into AS aggregates: %d probes, %d ASes",
			snap.ASProbes, len(snap.PerAS))
	}
}

// TestOutOfOrderRejection checks that records violating per-probe time
// order are counted as rejected, not folded into state.
func TestOutOfOrderRejection(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	id := atlasdata.ProbeID(55)
	if err := ing.ConnLog(conn(id, at(10), at(20), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	// Overlaps the previous session: rejected.
	if err := ing.ConnLog(conn(id, at(15), at(30), "10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	if err := ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(10), Sent: 3, Success: 3, LTS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(5), Sent: 3, Success: 3, LTS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(10), Uptime: 100}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(9), Uptime: 100}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ing.Snapshot()
	if snap.Records.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", snap.Records.Rejected)
	}
	if snap.Changes != 0 {
		t.Errorf("rejected conn entry still produced a change")
	}
}

// TestInvalidRecordsError checks that malformed records fail the ingest
// call itself.
func TestInvalidRecordsError(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	defer ing.Close()
	bad := atlasdata.ConnLogEntry{Probe: 1, Start: at(5), End: at(1), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.0.0.1")}
	if err := ing.ConnLog(bad); err == nil {
		t.Error("backwards connection accepted")
	}
	if err := ing.KRoot(atlasdata.KRootRound{Probe: 1, Sent: 1, Success: 2}); err == nil {
		t.Error("k-root round with more successes than pings accepted")
	}
	if err := ing.Uptime(atlasdata.UptimeRecord{Probe: 1, Uptime: -1}); err == nil {
		t.Error("negative uptime accepted")
	}
	if err := ing.Meta(atlasdata.ProbeMeta{ID: 0, Version: atlasdata.V3}); err == nil {
		t.Error("zero probe ID accepted")
	}
}

// TestClosedIngester checks ErrClosed semantics and that Snapshot still
// works after Close.
func TestClosedIngester(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 2})
	if err := ing.ConnLog(conn(7, at(0), at(1), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if err := ing.ConnLog(conn(7, at(2), at(3), "10.0.0.1")); err != stream.ErrClosed {
		t.Errorf("ingest after close = %v, want ErrClosed", err)
	}
	snap := ing.Snapshot()
	if snap.Records.ConnLogs != 1 {
		t.Errorf("post-close snapshot lost records: %+v", snap.Records)
	}
}

// TestConcurrentIngest hammers the ingester from many goroutines with
// interleaved snapshots — the -race workout — and checks nothing is
// lost. A tiny buffer forces the backpressure path.
func TestConcurrentIngest(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 4, Buffer: 2})
	const workers = 8
	const perWorker = 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := atlasdata.ProbeID(1000 + w)
			if err := ing.Meta(meta(id)); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				e := conn(id, at(2*i), at(2*i+1), fmt.Sprintf("10.0.%d.%d", w, i%250+1))
				if err := ing.ConnLog(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Snapshots race with ingest; each must be internally consistent.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			snap := ing.Snapshot()
			if snap.Records.Rejected != 0 {
				t.Errorf("spurious rejections under concurrency: %+v", snap.Records)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ing.Snapshot()
	if want := int64(workers * perWorker); snap.Records.ConnLogs != want {
		t.Errorf("conn records = %d, want %d", snap.Records.ConnLogs, want)
	}
	if snap.Probes != workers {
		t.Errorf("probes = %d, want %d", snap.Probes, workers)
	}
}

// TestSnapshotSeesPriorIngest locks in the consistency contract: a
// record whose ingest call returned is visible to a later Snapshot.
func TestSnapshotSeesPriorIngest(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 3})
	defer ing.Close()
	for i := 0; i < 50; i++ {
		id := atlasdata.ProbeID(100 + i)
		if err := ing.ConnLog(conn(id, at(0), at(1), "10.0.0.1")); err != nil {
			t.Fatal(err)
		}
		snap := ing.Snapshot()
		if snap.Records.ConnLogs < int64(i+1) {
			t.Fatalf("snapshot after %d ingests reports %d conn records",
				i+1, snap.Records.ConnLogs)
		}
	}
}
