// Package stream turns the batch analysis pipeline into a live one: an
// Ingester accepts connection-log, k-root and SOS-uptime records as an
// ordered-per-probe event stream and maintains incremental analysis
// state, so "what is this AS's churn right now" is answerable while
// records are still arriving — the collection reality of the paper's §3,
// where probes reconnect to controllers continuously.
//
// Architecture: records are hashed by probe ID onto N shards, each a
// goroutine owning the per-probe state machines for its probes and fed
// through a bounded channel (a full shard exerts backpressure on
// producers). Each state machine detects IPv4 address changes and closes
// address durations as they become bounded (feeding an online
// total-time-fraction accumulator, f_d = d·n(d)/Σ(D)), tracks open
// k-root loss runs, spots uptime-counter resets, and correlates address
// changes with outage evidence in the surrounding gap. Snapshot()
// returns a consistent point-in-time view: it includes every record
// whose Ingest call returned before Snapshot was called.
//
// Classification (the paper's Table 2) is inherently retrospective — a
// probe "becomes" dual-stack the moment its first IPv6 session arrives —
// so category assignment and per-AS aggregation happen at snapshot time
// from the incrementally maintained per-probe features, using exactly
// the rules of core.Filter. Streaming a complete dataset through the
// ingester therefore reproduces the batch pipeline's per-AS change
// counts and total-time-fraction tallies exactly (see the replay-
// equivalence test).
package stream

import (
	"time"

	"dynaddr/internal/obs"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/wal"
)

// Config parameterises an Ingester.
type Config struct {
	// Shards is the number of shard goroutines; probe IDs are hashed
	// across them. Zero means 4. A durable ingester's shard count is
	// part of its on-disk layout: reopening a WAL directory with a
	// different count is refused, because resharding would break the
	// per-probe ordering the logs preserve by construction.
	Shards int
	// Buffer is the per-shard channel capacity; a full shard blocks its
	// producers (backpressure). Zero means 256.
	Buffer int
	// Pfx2AS maps addresses to origin ASes, month-matched, for per-AS
	// aggregation. Nil disables AS attribution (everything maps to 0).
	// Recovery replays WAL records through the same state machines, so
	// the store must be the same one the original run used for the
	// recovered aggregates to match.
	Pfx2AS *pfx2as.SnapshotStore

	// TotalPartitions is the cluster-wide partition count probe IDs are
	// hashed over. Zero means Shards — the single-node case, where every
	// partition is local and "partition" and "shard" coincide. In a
	// cluster every peer shares the same TotalPartitions (it is the
	// routing invariant recorded in the WAL meta file) and owns a subset.
	TotalPartitions int
	// OwnedPartitions lists the partitions this ingester owns, i.e. runs
	// a shard for. Nil means all of them (single-node). Non-nil — even
	// empty — overrides Shards with its length: a cluster peer runs
	// exactly one shard per owned partition so that partition state
	// (WAL directory, checkpoint, dead letters) can be shipped whole to
	// another peer on rebalance. Records for unowned partitions are
	// refused with ErrNotOwner.
	OwnedPartitions []int

	// WALDir, when set, makes the ingester durable: each shard appends
	// every record to its own write-ahead log under WALDir/shard-NNN
	// before applying it, checkpoints its state periodically, and can be
	// reconstructed after a crash with Recover. Empty means in-memory
	// only (the pre-durability behaviour).
	WALDir string
	// Sync is the WAL fsync policy; the zero value is wal.SyncAlways.
	Sync wal.SyncPolicy
	// CheckpointEvery is the number of records a shard applies between
	// checkpoints (serialize state, atomically replace the checkpoint
	// file, drop WAL segments the checkpoint covers). Zero means 4096;
	// negative disables periodic checkpoints (the WAL then grows until
	// the process exits).
	CheckpointEvery int
	// SegmentBytes is the WAL segment rotation size; zero means the wal
	// package default (1 MiB).
	SegmentBytes int64
	// FS routes the shard WALs' filesystem operations; nil means the
	// real filesystem. The chaos harness passes a faultinject.FaultFS
	// here to drive shards into degraded mode with injected ENOSPC and
	// fsync failures.
	FS wal.FS
	// RearmEvery is how often a degraded shard probes its WAL directory
	// for recovered writability (a successful probe reopens the log and
	// flushes parked records). Zero means 500ms.
	RearmEvery time.Duration

	// Metrics, when non-nil, receives ingest and WAL instrumentation
	// (per-shard record counters, queue-depth gauges, sampled apply
	// latency, fsync and checkpoint timings). Nil disables
	// instrumentation entirely — the hot path then pays one nil check
	// per record.
	Metrics *obs.Registry

	// Analysis enables the live analysis engine: every probe state
	// additionally maintains a liveanalysis.Detector at apply time, and
	// Analysis()/AnalysisContext() answer the paper's tables and figures
	// from the current stream position. Detector state rides inside the
	// shard checkpoints, so recovery restores the analysis exactly.
	// Disabled, the ingest hot path pays one nil check per record.
	Analysis bool
}

func (c Config) withDefaults() Config {
	if c.OwnedPartitions != nil {
		c.Shards = len(c.OwnedPartitions)
	}
	if c.Shards <= 0 && c.OwnedPartitions == nil {
		c.Shards = 4
	}
	if c.TotalPartitions <= 0 {
		c.TotalPartitions = c.Shards
		if c.TotalPartitions <= 0 {
			c.TotalPartitions = 1
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.RearmEvery <= 0 {
		c.RearmEvery = 500 * time.Millisecond
	}
	return c
}

// Thresholds mirrored from the batch pipeline (internal/core); the
// streaming detectors must agree with the batch ones record for record.
const (
	// ltsSyncBound is the LTS value above which a single lost round
	// already implies a missed controller sync (core.DetectNetworkOutages).
	ltsSyncBound = 240
	// bootSlackSecs absorbs clock skew between the probe's uptime counter
	// and record timestamps when comparing boot instants (core.DetectReboots).
	bootSlackSecs = 90
	// minConnectedDays is the paper's Table 2 pre-filter (core.Filter).
	minConnectedDays = 30
)

// recentEvidence bounds the per-probe ring buffers of closed outages and
// reboots kept for gap correlation. Changes arrive close in time to the
// outage that caused them, so a short memory suffices.
const recentEvidence = 8
