package stream

import (
	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
)

// span is a half-open-ish time interval used for gap/outage overlap.
type span struct{ from, to simclock.Time }

func (s span) overlaps(o span) bool { return !s.to.Before(o.from) && !o.to.Before(s.from) }

func (s span) contains(t simclock.Time) bool { return !t.Before(s.from) && !t.After(s.to) }

// addrRun is the current same-address run inside the live IPv4 segment
// of a probe's stripped connection log.
type addrRun struct {
	active bool
	// bounded records whether the run began at an observed address
	// change; only bounded runs that also end at a change yield durations
	// (the batch pipeline's interior runs).
	bounded    bool
	addr       ip4.Addr
	start, end simclock.Time
}

// lossRun is an open run of all-lost k-root rounds.
type lossRun struct {
	active            bool
	start, end        simclock.Time
	firstLTS, lastLTS int64
	rounds            int
}

// probeState is one probe's incremental analysis state. It maintains,
// record by record, every feature the batch Table 2 classifier and the
// per-AS aggregations consume, so a snapshot can classify and aggregate
// without revisiting history.
type probeState struct {
	id      atlasdata.ProbeID
	meta    atlasdata.ProbeMeta
	hasMeta bool

	// Processed-record counters by kind, counting every record the shard
	// consumed for this probe — accepted or rejected. They form the
	// probe's resume cursor: because the shard WAL preserves per-probe
	// order, the counts identify exactly how far into a probe's stream
	// the durable state reaches, so a producer can resume after a crash
	// without gaps or duplicates.
	metaCount   int64
	connCount   int64
	kRootCount  int64
	uptimeCount int64

	// Raw-log classification features (mirroring core.classify, which
	// inspects the log before the testing-entry strip).
	rawEntries    int
	v4Count       int
	v6Count       int
	connectedSecs int64
	sessions      int64
	// allV4Single tracks core's singleAddress: every entry IPv4 with one
	// address.
	allV4Single bool
	firstV4Addr ip4.Addr
	// Alternating-address (behavioural multihomed) run counting over the
	// raw IPv4 entries.
	runCount    map[uint32]int
	runPrevAddr uint32
	runTotal    int

	// Stripped-log machines: change detection and duration runs operate
	// on the log with a leading testing-address entry removed (§3.3).
	stripped      bool
	prevSet       bool
	prevIsV4      bool
	prevAddr      ip4.Addr
	prevEnd       simclock.Time
	lastConnStart simclock.Time
	lastConnEnd   simclock.Time
	seg           addrRun

	changes int64
	ttf     stats.Weighted

	// Home-AS derivation over observed changes (mirroring core.classify).
	homeASN        asdb.ASN
	homeConsistent bool
	multiAS        bool

	// Rolling outage-change correlator state.
	hasGap        bool
	lastGap       span
	lastGapLinked bool
	outageLinked  int64
	recentOutages []span          // ring, newest last
	recentReboots []simclock.Time // ring, newest last

	// k-root loss-run machine.
	loss           lossRun
	networkOutages int64
	lastKRoot      simclock.Time
	kRootSeen      bool

	// Uptime machine.
	upSeen     bool
	prevBoot   simclock.Time
	lastUptime simclock.Time
	reboots    int64

	rejected int64

	// det, when live analysis is enabled, accumulates the paper-answer
	// event state (durations, gaps, outages, reboot gaps, prefix
	// counters) alongside the classification features above. Nil when
	// analysis is off — every hook below is guarded, so the disabled
	// path costs one nil check per record. churn points at the owning
	// shard's shared day table (nil alongside det).
	det   *liveanalysis.Detector
	churn *liveanalysis.ChurnTable
}

func newProbeState(id atlasdata.ProbeID, churn *liveanalysis.ChurnTable) *probeState {
	ps := &probeState{
		id:             id,
		allV4Single:    true,
		homeConsistent: true,
		runCount:       make(map[uint32]int),
	}
	if churn != nil {
		ps.det = liveanalysis.NewDetector()
		ps.churn = churn
	}
	return ps
}

func (ps *probeState) setMeta(m atlasdata.ProbeMeta) {
	ps.meta = m
	ps.hasMeta = true
}

// onConn feeds one connection-log entry through the raw feature
// trackers and the stripped-log change/duration machines. Entries that
// violate the per-probe time order (start before the previous entry's
// end) are rejected, mirroring Dataset.Validate's no-overlap invariant.
func (ps *probeState) onConn(e atlasdata.ConnLogEntry, pfx *pfx2as.SnapshotStore) bool {
	if ps.rawEntries > 0 && e.Start.Before(ps.lastConnEnd) {
		ps.rejected++
		return false
	}
	ps.lastConnStart = e.Start
	ps.lastConnEnd = e.End

	// Raw features, testing entry included.
	ps.rawEntries++
	ps.sessions++
	ps.connectedSecs += int64(e.End.Sub(e.Start))
	if e.IsV4() {
		ps.v4Count++
		if ps.v4Count == 1 {
			ps.firstV4Addr = e.Addr
		} else if e.Addr != ps.firstV4Addr {
			ps.allV4Single = false
		}
		a := uint32(e.Addr)
		if ps.runTotal == 0 || a != ps.runPrevAddr {
			ps.runCount[a]++
			ps.runPrevAddr = a
			ps.runTotal++
		}
	} else {
		ps.v6Count++
		ps.allV4Single = false
	}

	// Strip a leading testing-address entry from the analysis log.
	if ps.rawEntries == 1 && e.IsV4() && e.Addr == ip4.TestingAddr {
		ps.stripped = true
		return true
	}

	// Live analysis: one gap event per consecutive stripped-entry pair
	// (core.GapSpans); causes are assigned only at query time, after
	// firmware filtering has settled the power evidence.
	if ps.det != nil && ps.prevSet {
		ps.det.OnGap(ps.prevEnd, e.Start, ps.prevIsV4 && e.IsV4() && e.Addr != ps.prevAddr)
	}

	// Address-change detection: directly consecutive IPv4 entries with
	// different addresses (core.V4Changes).
	if ps.prevSet && ps.prevIsV4 && e.IsV4() && e.Addr != ps.prevAddr {
		ps.onChange(ps.prevAddr, e.Addr, ps.prevEnd, e.Start, pfx)
	}

	// Duration runs: maximal IPv4 segments, interior runs only
	// (core.V4Durations). A run closes — and, if change-bounded on both
	// sides, yields a duration into the online TTF accumulator — when a
	// different-address IPv4 entry arrives in the same segment. An IPv6
	// entry breaks the segment and discards the open run.
	if e.IsV4() {
		switch {
		case ps.seg.active && ps.seg.addr == e.Addr:
			ps.seg.end = e.End
		case ps.seg.active:
			if ps.seg.bounded {
				ps.closeDuration()
			}
			ps.seg = addrRun{active: true, bounded: true, addr: e.Addr, start: e.Start, end: e.End}
		default:
			ps.seg = addrRun{active: true, addr: e.Addr, start: e.Start, end: e.End}
		}
	} else {
		ps.seg = addrRun{}
	}

	ps.prevSet = true
	ps.prevIsV4 = e.IsV4()
	ps.prevAddr = e.Addr
	ps.prevEnd = e.End
	return true
}

// closeDuration folds a both-sides-bounded address duration into the
// probe's total-time-fraction distribution, exactly as core.TTF does:
// weight d at the hour-quantised value.
func (ps *probeState) closeDuration() {
	hours := ps.seg.end.Sub(ps.seg.start).Hours()
	// The analysis event list keeps non-positive durations too — the
	// batch V4Durations list does, and they count toward the periodic
	// classifier's minimum-durations gate.
	if ps.det != nil {
		ps.det.OnClosedDuration(hours)
	}
	if hours <= 0 {
		return
	}
	ps.ttf.Add(core.QuantizeHours(hours), hours)
}

// onChange records an observed address change, updates home-AS state,
// and correlates the change's gap with outage evidence seen so far.
func (ps *probeState) onChange(from, to ip4.Addr, prevEnd, nextStart simclock.Time, pfx *pfx2as.SnapshotStore) {
	ps.changes++

	var fromASN, toASN asdb.ASN
	var fromPfx, toPfx ip4.Prefix
	var okFrom, okTo bool
	if pfx != nil {
		fromASN, fromPfx, okFrom = pfx.Lookup(from, prevEnd)
		toASN, toPfx, okTo = pfx.Lookup(to, nextStart)
	}
	if ps.det != nil {
		ps.det.OnChangeDual(ps.churn.Row(nextStart), from, to, fromPfx, toPfx, okFrom, okTo)
	}
	if fromASN != toASN {
		ps.multiAS = true
	}
	for _, asn := range []asdb.ASN{fromASN, toASN} {
		if asn == 0 {
			continue
		}
		if ps.homeASN == 0 {
			ps.homeASN = asn
		} else if ps.homeASN != asn {
			ps.homeConsistent = false
		}
	}

	gap := span{from: prevEnd, to: nextStart}
	ps.hasGap = true
	ps.lastGap = gap
	ps.lastGapLinked = false
	if ps.gapHasEvidence(gap) {
		ps.lastGapLinked = true
		ps.outageLinked++
	}
}

// gapHasEvidence reports whether any outage evidence seen so far falls
// inside the gap: an open or recently closed loss run overlapping it, or
// a recent reboot whose boot instant lies within it.
func (ps *probeState) gapHasEvidence(gap span) bool {
	if ps.loss.active && gap.overlaps(span{from: ps.loss.start, to: ps.loss.end}) {
		return true
	}
	for _, o := range ps.recentOutages {
		if gap.overlaps(o) {
			return true
		}
	}
	for _, t := range ps.recentReboots {
		if gap.contains(t) {
			return true
		}
	}
	return false
}

// linkEvidence marks the most recent change's gap as outage-linked if
// the newly arrived evidence falls inside it. Evidence for a gap can
// trail the change (the closing good round arrives after the session
// re-establishes), so correlation runs in both directions.
func (ps *probeState) linkEvidence(ev span) {
	if ps.hasGap && !ps.lastGapLinked && ps.lastGap.overlaps(ev) {
		ps.lastGapLinked = true
		ps.outageLinked++
	}
}

// onKRoot feeds one k-root round through the loss-run machine. Rounds
// must arrive in per-probe time order.
func (ps *probeState) onKRoot(k atlasdata.KRootRound) bool {
	if ps.kRootSeen && k.Timestamp.Before(ps.lastKRoot) {
		ps.rejected++
		return false
	}
	ps.kRootSeen = true
	ps.lastKRoot = k.Timestamp
	if ps.det != nil {
		// Reboot-gap resolution cares about round presence, not outcome.
		ps.det.OnRound(k.Timestamp)
	}

	if k.AllLost() {
		if !ps.loss.active {
			ps.loss = lossRun{active: true, start: k.Timestamp, end: k.Timestamp,
				firstLTS: k.LTS, lastLTS: k.LTS, rounds: 1}
		} else {
			ps.loss.end = k.Timestamp
			ps.loss.lastLTS = k.LTS
			ps.loss.rounds++
		}
		return true
	}
	if ps.loss.active {
		ps.closeLossRun()
	}
	return true
}

// closeLossRun ends the open loss run, qualifying it as a network outage
// under the batch rule: growing LTS across multi-round runs, or LTS past
// the sync bound for single-round runs (core.DetectNetworkOutages).
func (ps *probeState) closeLossRun() {
	run := ps.loss
	ps.loss = lossRun{}
	n, ok := ps.qualifyLossRun(run)
	if !ok {
		return
	}
	ps.networkOutages++
	if ps.det != nil {
		ps.det.OnNetworkOutage(n)
	}
	ev := span{from: run.start, to: run.end}
	ps.recentOutages = appendRing(ps.recentOutages, ev)
	ps.linkEvidence(ev)
}

// qualifyLossRun applies the batch qualification rule to a loss run
// without consuming it — shared between the closing path above and the
// snapshot barrier, which must finalize a still-open run the way the
// batch detector closes its trailing run at end-of-input.
func (ps *probeState) qualifyLossRun(run lossRun) (core.NetworkOutage, bool) {
	if !run.active {
		return core.NetworkOutage{}, false
	}
	qualifies := false
	if run.rounds > 1 {
		qualifies = run.lastLTS > run.firstLTS
	} else {
		qualifies = run.firstLTS > ltsSyncBound
	}
	if !qualifies {
		return core.NetworkOutage{}, false
	}
	return core.NetworkOutage{Probe: ps.id, Start: run.start, End: run.end}, true
}

// onUptime feeds one SOS-uptime record through the reboot detector
// (core.DetectReboots): a boot instant later than the previous one by
// more than the slack is a reboot.
func (ps *probeState) onUptime(u atlasdata.UptimeRecord) bool {
	if ps.upSeen && u.Timestamp.Before(ps.lastUptime) {
		ps.rejected++
		return false
	}
	ps.lastUptime = u.Timestamp

	boot := u.Timestamp.Add(-simclock.Duration(u.Uptime))
	if ps.upSeen && boot.Sub(ps.prevBoot) > bootSlackSecs*simclock.Second {
		ps.reboots++
		if ps.det != nil {
			ps.det.OnReboot(core.Reboot{Probe: ps.id, At: boot})
		}
		ps.recentReboots = appendRing(ps.recentReboots, boot)
		ps.linkEvidence(span{from: boot, to: boot})
	}
	if !ps.upSeen || boot.After(ps.prevBoot) {
		ps.prevBoot = boot
	}
	ps.upSeen = true
	if ps.det != nil {
		ps.det.OnUptime(u.Timestamp)
	}
	return true
}

func appendRing[T any](ring []T, v T) []T {
	if len(ring) >= recentEvidence {
		copy(ring, ring[1:])
		ring[len(ring)-1] = v
		return ring
	}
	return append(ring, v)
}

// connectedDays returns the probe's aggregate connected time in days:
// the registered metadata's figure when available, never less than what
// the stream itself has accumulated (live registration may precede the
// records).
func (ps *probeState) connectedDays() float64 {
	acc := float64(ps.connectedSecs) / 86400
	if ps.hasMeta && ps.meta.ConnectedDays > acc {
		return ps.meta.ConnectedDays
	}
	return acc
}

// category classifies the probe under the paper's Table 2 pipeline,
// mirroring core.classify clause for clause over the incrementally
// maintained features.
func (ps *probeState) category() core.Category {
	if ps.connectedDays() <= minConnectedDays {
		return core.CatShortLived
	}
	if ps.v4Count == 0 && ps.v6Count > 0 {
		return core.CatIPv6Only
	}
	if ps.v6Count > 0 {
		return core.CatDualStack
	}
	if ps.rawEntries > 0 && ps.allV4Single {
		return core.CatNeverChanged
	}
	for _, tag := range []string{atlasdata.TagMultihomed, atlasdata.TagDatacentre, atlasdata.TagCore} {
		if ps.hasMeta && ps.meta.HasTag(tag) {
			return core.CatTaggedMultihomed
		}
	}
	if ps.alternating() {
		return core.CatBehaviouralMultihomed
	}
	if ps.stripped && ps.changes == 0 {
		return core.CatTestingOnly
	}
	if ps.changes == 0 {
		return core.CatNeverChanged
	}
	return core.CatAnalyzable
}

// alternating mirrors core's behavioural multihomed detector: some
// address keeps coming back — at least three separated runs covering a
// quarter of all runs.
func (ps *probeState) alternating() bool {
	if ps.runTotal < 5 {
		return false
	}
	for _, c := range ps.runCount {
		if c >= 3 && float64(c) >= 0.25*float64(ps.runTotal) {
			return true
		}
	}
	return false
}

// summarize produces the immutable per-probe view a snapshot aggregates.
func (ps *probeState) summarize() probeSummary {
	sum := probeSummary{
		ID:             ps.id,
		HasMeta:        ps.hasMeta,
		Sessions:       ps.sessions,
		Changes:        ps.changes,
		NetworkOutages: ps.networkOutages,
		Reboots:        ps.reboots,
		OutageLinked:   ps.outageLinked,
		OpenLossRun:    ps.loss.active,
		MultiAS:        ps.multiAS,
		ConnectedDays:  ps.connectedDays(),
		TTF:            ps.ttf.Clone(),
	}
	if ps.hasMeta {
		sum.Category = ps.category()
		sum.Country = ps.meta.Country
	}
	if ps.homeConsistent && ps.homeASN != 0 {
		sum.ASN = uint32(ps.homeASN)
	}
	return sum
}
