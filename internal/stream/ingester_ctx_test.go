package stream

// White-box: the backpressure-cancellation test needs to park a shard
// goroutine so a producer genuinely blocks on a full buffer.

import (
	"context"
	"errors"
	"testing"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// TestIngestContextCancelled checks that a producer blocked on shard
// backpressure is released with ctx.Err() when its context is
// cancelled, instead of waiting for the shard to drain.
func TestIngestContextCancelled(t *testing.T) {
	in := NewIngester(Config{Shards: 1, Buffer: 1})

	// Park the shard goroutine: it picks up the snapshot marker and
	// blocks writing the view to an unbuffered channel nobody reads yet.
	snapCh := make(chan *shardView)
	in.shards[0].in <- record{kind: kindSnapshot, snap: snapCh}

	// Fill the single buffer slot. This send completes once the shard
	// has taken the marker, so afterwards the shard is parked and the
	// buffer is full: the next send must block.
	m := atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}
	if err := in.Meta(m); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	entry := atlasdata.ConnLogEntry{
		Probe:  1,
		Start:  simclock.StudyStart,
		End:    simclock.StudyStart.Add(simclock.Hour),
		Family: atlasdata.V4,
		Addr:   ip4.MustParseAddr("10.0.0.1"),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- in.ConnLogContext(ctx, entry) }()

	select {
	case err := <-errCh:
		t.Fatalf("send returned %v before cancellation; backpressure not engaged", err)
	case <-time.After(50 * time.Millisecond):
	}

	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled producer still blocked")
	}

	// Unpark the shard and shut down cleanly; the buffered Meta record
	// must still be processed (cancellation lost only the blocked send).
	<-snapCh
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := in.Snapshot(); snap.Records.Meta != 1 {
		t.Fatalf("meta records = %d, want 1", snap.Records.Meta)
	}
}
