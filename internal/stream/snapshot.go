package stream

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/geo"
	"dynaddr/internal/stats"
)

// probeSummary is the immutable per-probe view a shard hands to the
// snapshot merger.
type probeSummary struct {
	ID             atlasdata.ProbeID
	HasMeta        bool
	Category       core.Category
	Country        string // ISO code from probe metadata, "" when unregistered
	ASN            uint32 // home AS when consistent and known, else 0
	MultiAS        bool
	Sessions       int64
	Changes        int64
	NetworkOutages int64
	Reboots        int64
	OutageLinked   int64
	OpenLossRun    bool
	ConnectedDays  float64
	TTF            *stats.Weighted
}

// shardView is one shard's contribution to a snapshot.
type shardView struct {
	counts       RecordCounts
	ver          Version
	sessionsByAS map[uint32]int64
	probes       []probeSummary // sorted by probe ID
}

// ASAggregate is the per-AS incremental analysis state exposed by a
// snapshot: the streaming equivalent of the batch pipeline's per-AS
// grouping over analyzable single-AS probes.
type ASAggregate struct {
	ASN    uint32 `json:"asn"`
	Probes int    `json:"probes"`
	// Sessions counts IPv4 sessions attributed to this AS by the address
	// seen at session start (raw traffic view, all probes).
	Sessions int64 `json:"sessions"`
	// Changes is the total observed address changes across the AS's
	// analyzable probes — the batch pipeline's per-AS change count.
	Changes        int64 `json:"changes"`
	NetworkOutages int64 `json:"network_outages"`
	Reboots        int64 `json:"reboots"`
	// OutageLinkedChanges counts changes whose surrounding gap contained
	// outage evidence (loss run overlap or reboot instant).
	OutageLinkedChanges int64 `json:"outage_linked_changes"`
	// TTF is the AS's total-time-fraction distribution: weight d·n(d) at
	// each quantised duration d, merged across probes in ascending probe-
	// ID order (matching the batch GroupTTF exactly).
	TTF *stats.Weighted `json:"-"`
}

// ContinentAggregate is the per-continent slice of the snapshot — the
// paper's Figure 1 grouping (probe address-duration behaviour by the
// continent of the probe's country) maintained as a continuously
// updated product over the analyzable probes.
type ContinentAggregate struct {
	Continent geo.Continent `json:"continent"`
	Probes    int           `json:"probes"`
	Changes   int64         `json:"changes"`

	NetworkOutages      int64 `json:"network_outages"`
	Reboots             int64 `json:"reboots"`
	OutageLinkedChanges int64 `json:"outage_linked_changes"`
	// ConnectedDays sums the analyzable probes' connected time, the
	// denominator for per-continent change-rate readings.
	ConnectedDays float64 `json:"connected_days"`
	// TTF is the continent's total-time-fraction distribution, merged in
	// ascending probe-ID order like the per-AS aggregates.
	TTF *stats.Weighted `json:"-"`
}

// Snapshot is a consistent point-in-time view of an Ingester's state.
type Snapshot struct {
	Shards  int          `json:"shards"`
	Records RecordCounts `json:"records"`
	// Probes counts every probe the stream has seen records for;
	// Unregistered counts those still missing metadata (they are excluded
	// from classification and per-AS aggregates).
	Probes       int `json:"probes"`
	Unregistered int `json:"unregistered"`
	// Categories is the live Table 2: registered probes by classification.
	Categories map[core.Category]int `json:"-"`
	// GeoProbes / ASProbes mirror the batch filter's analyzable sets.
	GeoProbes int `json:"geo_probes"`
	ASProbes  int `json:"as_probes"`
	// Stream-wide event totals (all probes, registered or not).
	Changes             int64 `json:"changes"`
	NetworkOutages      int64 `json:"network_outages"`
	Reboots             int64 `json:"reboots"`
	OutageLinkedChanges int64 `json:"outage_linked_changes"`
	OpenLossRuns        int   `json:"open_loss_runs"`
	// PerAS holds the per-AS aggregates over analyzable single-AS probes.
	PerAS map[uint32]*ASAggregate `json:"-"`
	// PerContinent holds the Figure 1 aggregates over analyzable probes
	// whose country code maps to a known continent.
	PerContinent map[geo.Continent]*ContinentAggregate `json:"-"`
	// Version is the stream position the snapshot was taken at — the sum
	// of the shards' checkpoint generations and consumed-record counts.
	// Excluded from the JSON shape: it keys caches, it is not analysis
	// output, and it must not perturb the byte-equality recovery oracle
	// (an in-memory replay is generation 0; a recovered one is not).
	Version Version `json:"-"`
}

// AS returns the aggregate for one AS, or nil if no analyzable probe
// maps there.
func (s *Snapshot) AS(asn uint32) *ASAggregate { return s.PerAS[asn] }

// Continent returns the aggregate for one continent, or nil if no
// analyzable probe maps there.
func (s *Snapshot) Continent(c geo.Continent) *ContinentAggregate { return s.PerContinent[c] }

// ASNs returns the ASes present in the snapshot, ascending.
func (s *Snapshot) ASNs() []uint32 {
	out := make([]uint32, 0, len(s.PerAS))
	for asn := range s.PerAS {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeViews folds per-shard views into one snapshot. Probe summaries
// are visited in ascending probe-ID order across all shards so per-AS
// TTF merging reproduces the batch GroupTTF accumulation order exactly.
func mergeViews(views []*shardView, shards int) *Snapshot {
	snap := &Snapshot{
		Shards:       shards,
		Categories:   make(map[core.Category]int),
		PerAS:        make(map[uint32]*ASAggregate),
		PerContinent: make(map[geo.Continent]*ContinentAggregate),
	}
	var all []probeSummary
	for _, v := range views {
		snap.Records.add(v.counts)
		snap.Version.add(v.ver)
		all = append(all, v.probes...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })

	sessions := make(map[uint32]int64)
	for _, v := range views {
		for asn, n := range v.sessionsByAS {
			sessions[asn] += n
		}
	}

	for _, p := range all {
		snap.Probes++
		snap.Changes += p.Changes
		snap.NetworkOutages += p.NetworkOutages
		snap.Reboots += p.Reboots
		snap.OutageLinkedChanges += p.OutageLinked
		if p.OpenLossRun {
			snap.OpenLossRuns++
		}
		if !p.HasMeta {
			snap.Unregistered++
			continue
		}
		snap.Categories[p.Category]++
		if p.Category != core.CatAnalyzable {
			continue
		}
		snap.GeoProbes++
		// Figure 1 groups analyzable probes geographically; AS consistency
		// does not gate the continent view. Unknown country codes are
		// filterable, not fatal, matching the batch pipeline's handling of
		// incomplete metadata.
		if cont, err := geo.ContinentOf(p.Country); err == nil {
			ca, ok := snap.PerContinent[cont]
			if !ok {
				ca = &ContinentAggregate{Continent: cont, TTF: &stats.Weighted{}}
				snap.PerContinent[cont] = ca
			}
			ca.Probes++
			ca.Changes += p.Changes
			ca.NetworkOutages += p.NetworkOutages
			ca.Reboots += p.Reboots
			ca.OutageLinkedChanges += p.OutageLinked
			ca.ConnectedDays += p.ConnectedDays
			ca.TTF.AddDist(p.TTF)
		}
		if p.MultiAS {
			continue
		}
		snap.ASProbes++
		if p.ASN == 0 {
			continue
		}
		agg, ok := snap.PerAS[p.ASN]
		if !ok {
			agg = &ASAggregate{ASN: p.ASN, TTF: &stats.Weighted{}}
			snap.PerAS[p.ASN] = agg
		}
		agg.Probes++
		agg.Changes += p.Changes
		agg.NetworkOutages += p.NetworkOutages
		agg.Reboots += p.Reboots
		agg.OutageLinkedChanges += p.OutageLinked
		agg.TTF.AddDist(p.TTF)
	}
	for asn, n := range sessions {
		if agg, ok := snap.PerAS[asn]; ok {
			agg.Sessions = n
		}
	}
	return snap
}
