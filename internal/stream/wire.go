package stream

import (
	"context"
	"fmt"

	"dynaddr/internal/wire"
)

// The wire codec's kind bytes are defined to match the WAL-persisted
// record kinds. The conversions below are compile-time anchored so a
// reordering on either side fails to build rather than silently
// mislabelling records.
var _ = [1]struct{}{}[recordKind(wire.KindMeta)-kindMeta]
var _ = [1]struct{}{}[recordKind(wire.KindConn)-kindConn]
var _ = [1]struct{}{}[recordKind(wire.KindKRoot)-kindKRoot]
var _ = [1]struct{}{}[recordKind(wire.KindUptime)-kindUptime]

// IngestWire decodes a binary wire batch (concatenated internal/wire
// frames) straight into the shards: each frame becomes one record
// envelope on its probe's shard channel, with no intermediate structs,
// per-record interfaces, or reflection. IPv4 sessions, k-root rounds,
// and uptime reports take zero heap allocations per record; probe
// metadata and IPv6 sessions allocate only their strings.
//
// It returns the number of records routed. On a malformed frame,
// record, or validation failure, ingestion stops at the offending
// record — everything before it is already in flight, mirroring the
// v1 handlers' partial-batch semantics.
func (in *Ingester) IngestWire(ctx context.Context, batch []byte) (int, error) {
	it := wire.Frames(batch)
	n := 0
	for {
		payload, done, err := it.Next()
		if err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		if done {
			return n, nil
		}
		kind, err := wire.PayloadKind(payload)
		if err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		switch kind {
		case wire.KindMeta:
			m, err := wire.DecodeMeta(payload)
			if err == nil {
				err = m.Validate()
			}
			if err == nil {
				err = in.send(ctx, m.ID, record{kind: kindMeta, meta: m})
			}
			if err != nil {
				return n, fmt.Errorf("record %d (meta): %w", n, err)
			}
		case wire.KindConn:
			e, err := wire.DecodeConnLog(payload)
			if err == nil {
				err = e.Validate()
			}
			if err == nil {
				err = in.send(ctx, e.Probe, record{kind: kindConn, conn: e})
			}
			if err != nil {
				return n, fmt.Errorf("record %d (connlog): %w", n, err)
			}
		case wire.KindKRoot:
			k, err := wire.DecodeKRoot(payload)
			if err == nil {
				err = k.Validate()
			}
			if err == nil {
				err = in.send(ctx, k.Probe, record{kind: kindKRoot, kroot: k})
			}
			if err != nil {
				return n, fmt.Errorf("record %d (kroot): %w", n, err)
			}
		case wire.KindUptime:
			u, err := wire.DecodeUptime(payload)
			if err == nil {
				err = u.Validate()
			}
			if err == nil {
				err = in.send(ctx, u.Probe, record{kind: kindUptime, uptime: u})
			}
			if err != nil {
				return n, fmt.Errorf("record %d (uptime): %w", n, err)
			}
		}
		n++
	}
}
