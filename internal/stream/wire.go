package stream

import (
	"context"
	"fmt"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/wire"
)

// The wire codec's kind bytes are defined to match the WAL-persisted
// record kinds. The conversions below are compile-time anchored so a
// reordering on either side fails to build rather than silently
// mislabelling records.
var _ = [1]struct{}{}[recordKind(wire.KindMeta)-kindMeta]
var _ = [1]struct{}{}[recordKind(wire.KindConn)-kindConn]
var _ = [1]struct{}{}[recordKind(wire.KindKRoot)-kindKRoot]
var _ = [1]struct{}{}[recordKind(wire.KindUptime)-kindUptime]

// WireStats summarises one wire batch ingest: how many records were
// routed into the shards and how many were dead-lettered instead.
type WireStats struct {
	Accepted    int
	Quarantined int
}

// Consumed is the count of records drawn from the batch, accepted or
// quarantined — the prefix a partial-accept producer must not re-send.
func (st WireStats) Consumed() int { return st.Accepted + st.Quarantined }

// IngestWire decodes a binary wire batch (concatenated internal/wire
// frames) straight into the shards: each frame becomes one record
// envelope on its probe's shard channel, with no intermediate structs,
// per-record interfaces, or reflection. IPv4 sessions, k-root rounds,
// and uptime reports take zero heap allocations per record; probe
// metadata and IPv6 sessions allocate only their strings.
//
// Failure semantics: a record that fails decode or validation inside
// an otherwise well-framed batch is quarantined to the dead-letter
// queue and ingestion continues — one poison record no longer fails
// its batch. Frame-level corruption (bad CRC, torn frame) still aborts
// at the offending frame, as do send failures (closed, cancelled, or
// degraded shard): everything before the abort is already in flight,
// and the error reports Consumed() records as the non-resend prefix.
func (in *Ingester) IngestWire(ctx context.Context, batch []byte) (WireStats, error) {
	it := wire.Frames(batch)
	var st WireStats
	for {
		payload, done, err := it.Next()
		if err != nil {
			return st, fmt.Errorf("record %d: %w", st.Consumed(), err)
		}
		if done {
			return st, nil
		}
		// The hot path stays closure-free: a per-record defect routes
		// through quarantineWire (cold, never inlined into this loop) and
		// the happy path is a plain decode+validate+send per kind.
		kind, err := wire.PayloadKind(payload)
		if err != nil {
			if qerr := in.quarantineWire(ctx, &st, "frame", 0, "unknown-kind", err, payload); qerr != nil {
				return st, qerr
			}
			continue
		}
		var (
			probe     atlasdata.ProbeID
			kindLabel string
			reason    string
			rec       record
		)
		switch kind {
		case wire.KindMeta:
			kindLabel = "meta"
			m, derr := wire.DecodeMeta(payload)
			if derr != nil {
				err, reason = derr, "decode"
				break
			}
			probe = m.ID
			if verr := m.Validate(); verr != nil {
				err, reason = verr, "validate"
				break
			}
			rec = record{kind: kindMeta, meta: m}
		case wire.KindConn:
			kindLabel = "connlog"
			e, derr := wire.DecodeConnLog(payload)
			if derr != nil {
				err, reason = derr, "decode"
				break
			}
			probe = e.Probe
			if verr := e.Validate(); verr != nil {
				err, reason = verr, "validate"
				break
			}
			rec = record{kind: kindConn, conn: e}
		case wire.KindKRoot:
			kindLabel = "kroot"
			k, derr := wire.DecodeKRoot(payload)
			if derr != nil {
				err, reason = derr, "decode"
				break
			}
			probe = k.Probe
			if verr := k.Validate(); verr != nil {
				err, reason = verr, "validate"
				break
			}
			rec = record{kind: kindKRoot, kroot: k}
		case wire.KindUptime:
			kindLabel = "uptime"
			u, derr := wire.DecodeUptime(payload)
			if derr != nil {
				err, reason = derr, "decode"
				break
			}
			probe = u.Probe
			if verr := u.Validate(); verr != nil {
				err, reason = verr, "validate"
				break
			}
			rec = record{kind: kindUptime, uptime: u}
		}
		if err != nil {
			if qerr := in.quarantineWire(ctx, &st, kindLabel, probe, reason, err, payload); qerr != nil {
				return st, qerr
			}
			continue
		}
		if err := in.send(ctx, probe, rec); err != nil {
			return st, fmt.Errorf("record %d (%s): %w", st.Consumed(), kindLabel, err)
		}
		st.Accepted++
	}
}

// quarantineWire dead-letters one undecodable wire record; its own
// error is a send failure and aborts the batch like any other.
//
//go:noinline
func (in *Ingester) quarantineWire(ctx context.Context, st *WireStats, kindLabel string, probe atlasdata.ProbeID, reason string, cause error, payload []byte) error {
	if err := in.Quarantine(ctx, kindLabel, probe, reason, cause.Error(), payload); err != nil {
		return fmt.Errorf("record %d (%s): quarantine: %w", st.Consumed(), kindLabel, err)
	}
	st.Quarantined++
	return nil
}
