package stream_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
	"dynaddr/internal/wire"
)

// wireBatch builds a mixed four-kind batch exercising one probe per
// shard-worth of IDs.
func wireBatch(t *testing.T, probes int) []byte {
	t.Helper()
	var w wire.BatchWriter
	for i := 0; i < probes; i++ {
		id := atlasdata.ProbeID(100 + i)
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		must(w.Meta(meta(id)))
		must(w.ConnLog(conn(id, at(0), at(24), "10.0.0.1")))
		must(w.ConnLog(conn(id, at(25), at(49), "10.1.0.1")))
		must(w.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(30), Sent: 3, Success: 3, LTS: 30}))
		must(w.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(40), Uptime: 3600}))
	}
	return append([]byte(nil), w.Bytes()...)
}

// TestIngestWireEquivalence pins the core wire contract: a binary batch
// and the equivalent typed calls land in byte-identical snapshots.
func TestIngestWireEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			bin := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: testStore(t)})
			typed := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: testStore(t)})

			batch := wireBatch(t, 9)
			st, err := bin.IngestWire(context.Background(), batch)
			if err != nil {
				t.Fatal(err)
			}
			if st.Accepted != 9*5 || st.Quarantined != 0 {
				t.Fatalf("routed %d records (%d quarantined), want %d routed", st.Accepted, st.Quarantined, 9*5)
			}
			for i := 0; i < 9; i++ {
				id := atlasdata.ProbeID(100 + i)
				must := func(err error) {
					t.Helper()
					if err != nil {
						t.Fatal(err)
					}
				}
				must(typed.Meta(meta(id)))
				must(typed.ConnLog(conn(id, at(0), at(24), "10.0.0.1")))
				must(typed.ConnLog(conn(id, at(25), at(49), "10.1.0.1")))
				must(typed.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(30), Sent: 3, Success: 3, LTS: 30}))
				must(typed.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(40), Uptime: 3600}))
			}

			a, err := json.Marshal(bin.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(typed.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("snapshots differ:\nwire:  %s\ntyped: %s", a, b)
			}
			if err := bin.Close(); err != nil {
				t.Fatal(err)
			}
			if err := typed.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIngestWireStopsAtMalformedRecord(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1, Pfx2AS: testStore(t)})
	defer ing.Close()

	var w wire.BatchWriter
	if err := w.Meta(meta(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.ConnLog(conn(1, at(0), at(5), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	batch := append([]byte(nil), w.Bytes()...)

	// Bit-flip inside the second frame's payload: frame-level corruption
	// still aborts the batch — the framing itself is untrustworthy past
	// that point.
	torn := append([]byte(nil), batch...)
	torn[len(torn)-3] ^= 0x04
	st, err := ing.IngestWire(context.Background(), torn)
	if !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if st.Accepted != 1 || st.Quarantined != 0 {
		t.Fatalf("routed %d records (%d quarantined) before the bad frame, want 1 routed", st.Accepted, st.Quarantined)
	}

	// An invalid record (end before start) in a well-framed batch is
	// quarantined to the dead-letter queue, not a batch failure.
	w.Reset()
	if err := w.ConnLog(atlasdata.ConnLogEntry{Probe: 2, Start: at(5), End: at(1), Family: atlasdata.V4, Addr: 9}); err != nil {
		t.Fatal(err)
	}
	st, err = ing.IngestWire(context.Background(), w.Bytes())
	if err != nil {
		t.Fatalf("invalid record failed the batch: %v", err)
	}
	if st.Accepted != 0 || st.Quarantined != 1 {
		t.Fatalf("invalid record: accepted %d, quarantined %d; want 0/1", st.Accepted, st.Quarantined)
	}
	// Quarantine rides the shard channel like any record; a snapshot
	// barrier orders the read after it lands.
	ing.Snapshot()
	dl := ing.DeadLetter()
	if dl.Total != 1 || dl.ByReason["validate"] != 1 {
		t.Fatalf("dead letter status = %+v, want 1 validate entry", dl)
	}
}

func TestIngestWireClosed(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := ing.IngestWire(context.Background(), wireBatch(t, 1))
	if !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestWireKindCorrespondence guards the WAL-kind/wire-kind agreement
// from the test side too: names must line up with the stream's record
// order (the byte values are already compile-time anchored).
func TestWireKindCorrespondence(t *testing.T) {
	want := []string{"meta", "connlog", "kroot", "uptime"}
	got := []string{wire.KindMeta.String(), wire.KindConn.String(), wire.KindKRoot.String(), wire.KindUptime.String()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kind names %v, want %v", got, want)
	}
}

// TestIngestWireZeroAlloc pins the acceptance criterion: the binary
// decode hot path (v4 sessions, k-root rounds, uptime reports) takes
// zero per-record heap allocations end to end — frame iteration,
// record decode, and the shard channel send.
func TestIngestWireZeroAlloc(t *testing.T) {
	const records = 3 * 256
	var w wire.BatchWriter
	for i := 0; i < 256; i++ {
		ts := at(1).Add(simclock.Duration(i) * simclock.Minute)
		if err := w.ConnLog(atlasdata.ConnLogEntry{Probe: 1, Start: ts, End: ts, Family: atlasdata.V4, Addr: 7}); err != nil {
			t.Fatal(err)
		}
		if err := w.KRoot(atlasdata.KRootRound{Probe: 1, Timestamp: ts, Sent: 3, Success: 3, LTS: 30}); err != nil {
			t.Fatal(err)
		}
		if err := w.Uptime(atlasdata.UptimeRecord{Probe: 1, Timestamp: ts, Uptime: 3600}); err != nil {
			t.Fatal(err)
		}
	}
	batch := append([]byte(nil), w.Bytes()...)

	// Buffer big enough that sends never block on the shard goroutine.
	ing := stream.NewIngester(stream.Config{Shards: 1, Buffer: records * 4, Pfx2AS: testStore(t)})
	defer ing.Close()
	ctx := context.Background()

	// Warm-up: creates the probe state and map buckets, then a barrier so
	// the shard is idle before measuring.
	if _, err := ing.IngestWire(ctx, batch); err != nil {
		t.Fatal(err)
	}
	ing.Snapshot()

	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ing.IngestWire(ctx, batch); err != nil {
			t.Fatal(err)
		}
		ing.Snapshot() // drain barrier: apply work finishes inside the run
	})
	// Snapshot itself allocates (it builds a view), so budget a small
	// constant per run; what must not appear is anything proportional to
	// the record count.
	perRecord := allocs / records
	if perRecord > 0.05 {
		t.Fatalf("%.2f allocations per run = %.4f per record, want ~0", allocs, perRecord)
	}
}
